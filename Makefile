# Verify loop for the StarT-Voyager reproduction.
#
#   make             build + unit tests (tier-1)
#   make lint        gofmt + go vet + voyager-vet determinism suite + race tests
#   make bench-json  canonical instrumented run -> BENCH_observability.json (+ trace)
#   make bench-diff  headline latencies vs BENCH_baseline.json (fail on >10% regression)
#   make faults      fault-injection smoke matrix -> FAULTS_matrix.json
#   make ci          everything CI runs

GO ?= go

.PHONY: all build test fmt vet voyager-vet race lint bench-json bench-diff bench-baseline faults ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# gofmt -l prints offending files; any output is a failure.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# The determinism analyzer suite (nowalltime, noglobalrand, nomaporder,
# nogoroutine, simtimeunits). -novet because `make lint` runs go vet itself.
voyager-vet:
	$(GO) run ./cmd/voyager-vet -novet ./...

# The engine and core protocol layers are the only packages whose tests spin
# real goroutines (sim.Proc handoff); run them under the race detector.
race:
	$(GO) test -race ./internal/sim/... ./internal/core/...

lint: fmt vet voyager-vet race

# The canonical instrumented run: metrics registry dump plus a Perfetto
# trace, both byte-identical across invocations (diffable in CI).
bench-json:
	$(GO) run ./cmd/voyager-bench -fig none \
		-metrics BENCH_observability.json -trace TRACE_observability.json

# Headline latency regression gate: recompute the per-mechanism traced
# end-to-end means and fail if any exceeds the committed baseline by >10%.
bench-diff:
	$(GO) run ./cmd/voyager-bench -fig none -diff BENCH_baseline.json

# Refresh the committed baseline after an intentional performance change.
bench-baseline:
	$(GO) run ./cmd/voyager-bench -fig none -headline BENCH_baseline.json

# The fault-injection smoke matrix: {drop, corrupt, outage, node-death} x
# three seeds of reliable traffic, with every cell's metrics registry dumped
# to one JSON artifact. A cell that loses or duplicates a message panics.
faults:
	$(GO) run ./cmd/voyager-bench -fig none -fault-matrix \
		-fault-seeds 1,2,3 -faults-json FAULTS_matrix.json

ci: build test lint bench-json bench-diff faults
