# Verify loop for the StarT-Voyager reproduction.
#
#   make             build + unit tests (tier-1)
#   make lint        gofmt + go vet + voyager-vet analyzer suite + race tests
#   make vet-json    voyager-vet findings as JSON -> VET_findings.json
#   make bench-json  canonical instrumented run -> BENCH_observability.json (+ trace)
#   make bench-diff  headline latencies vs BENCH_baseline.json (fail on >10% regression)
#   make faults      fault-injection smoke matrix -> FAULTS_matrix.json
#   make faults-check  parallel (-parallel 4) fault matrix byte-compared to sequential
#   make bench-micro   simulation-core microbenchmarks -> BENCH_micro.json
#   make bench-scale   64/256/1024-node footprint + scale sweep vs BENCH_scale.json
#   make bench-scale-baseline  refresh the committed scale baseline
#   make series      windowed telemetry sample -> SERIES_sample.json + SERIES_report.txt
#   make prof        simulated-time profile byte-compared to PROF_sample.* goldens
#   make prof-baseline  refresh the committed profile goldens
#   make chaos       short-budget chaos sweep, byte-compared to CHAOS_findings.json
#   make ci          everything CI runs

GO ?= go

.PHONY: all build test fmt vet voyager-vet vet-json race lint bench-json bench-diff bench-baseline faults faults-check bench-micro bench-scale bench-scale-baseline series prof prof-baseline chaos ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# gofmt -l prints offending files; any output is a failure.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# The full analyzer suite (nowalltime, noglobalrand, nomaporder,
# nogoroutine, simtimeunits, spanleak, noalloc). Any finding — including a
# new allocation in a //voyager:noalloc function — fails the build. -novet
# because `make lint` runs go vet itself.
voyager-vet:
	$(GO) run ./cmd/voyager-vet -novet ./...

# Machine-readable analyzer findings -> VET_findings.json (an empty array
# when the tree is clean). Exits nonzero on findings, like voyager-vet, but
# always leaves the artifact behind for CI upload.
vet-json:
	@$(GO) run ./cmd/voyager-vet -novet -json ./... > VET_findings.json; \
	st=$$?; cat VET_findings.json; exit $$st

# The engine and core protocol layers are the only packages whose tests spin
# real goroutines (sim.Proc handoff); run them under the race detector.
race:
	$(GO) test -race ./internal/sim/... ./internal/core/...

lint: fmt vet voyager-vet race

# The canonical instrumented run: metrics registry dump plus a Perfetto
# trace, both byte-identical across invocations (diffable in CI).
bench-json:
	$(GO) run ./cmd/voyager-bench -fig none \
		-metrics BENCH_observability.json -trace TRACE_observability.json

# Headline latency regression gate: recompute the per-mechanism traced
# end-to-end means and fail if any exceeds the committed baseline by >10%.
bench-diff:
	$(GO) run ./cmd/voyager-bench -fig none -diff BENCH_baseline.json

# Refresh the committed baseline after an intentional performance change.
bench-baseline:
	$(GO) run ./cmd/voyager-bench -fig none -headline BENCH_baseline.json

# The fault-injection smoke matrix: {drop, corrupt, outage, node-death} x
# three seeds of reliable traffic, with every cell's metrics registry dumped
# to one JSON artifact. A cell that loses or duplicates a message panics.
faults:
	$(GO) run ./cmd/voyager-bench -fig none -fault-matrix \
		-fault-seeds 1,2,3 -faults-json FAULTS_matrix.json -parallel 4

# Determinism gate for the parallel run harness: the fault matrix fanned
# across 4 workers must be byte-for-byte the sequential run, artifact
# included.
faults-check:
	$(GO) run ./cmd/voyager-bench -fig none -fault-matrix \
		-fault-seeds 1,2,3 -faults-json /tmp/FAULTS_seq.json \
		| grep -v '^fault metrics:' > /tmp/FAULTS_seq.txt
	$(GO) run ./cmd/voyager-bench -fig none -fault-matrix \
		-fault-seeds 1,2,3 -faults-json /tmp/FAULTS_par.json -parallel 4 \
		| grep -v '^fault metrics:' > /tmp/FAULTS_par.txt
	cmp /tmp/FAULTS_seq.json /tmp/FAULTS_par.json
	cmp /tmp/FAULTS_seq.txt /tmp/FAULTS_par.txt
	@echo "faults-check: parallel output is byte-identical to sequential"

# Simulation-core microbenchmarks (event heap vs the boxed baseline, Proc
# handoff, queue traffic, whole-node run) -> BENCH_micro.json. Wall-clock
# numbers are host-dependent; the committed artifact records the trajectory
# and the allocs/op invariants, which the unit tests also enforce.
bench-micro:
	$(GO) run ./cmd/voyager-bench -fig none -micro BENCH_micro.json

# Machine-size sweep (64/256/1024-node fat trees): per-node heap footprint,
# construction time, MPI allreduce/samplesort completion, and the per-level
# hotspot saturation profile. The gate recomputes the sweep and fails if any
# bytes/node figure regressed >10% against the committed BENCH_scale.json;
# simulated-time columns are pinned by unit tests, wall-clock columns are
# informational.
bench-scale:
	$(GO) run ./cmd/voyager-bench -fig none -scale-diff BENCH_scale.json

# Refresh the committed scale baseline after an intentional footprint change.
bench-scale-baseline:
	$(GO) run ./cmd/voyager-bench -fig none -scale BENCH_scale.json

# Windowed time-series telemetry sample: a reliable run under a 5% drop
# plan exports its voyager-series/v1 document, and voyager-stats renders
# the link/credit heatmaps and stall attribution. Both artifacts are
# byte-identical across invocations (the series and report golden tests
# under `make test` pin the formats).
series:
	$(GO) run ./cmd/voyager-run -nodes 4 -mech reliable -count 50 \
		-faults 'seed=7,drop=0.05' -series SERIES_sample.json -series-window 20us
	$(GO) run ./cmd/voyager-stats -top 8 SERIES_sample.json > SERIES_report.txt

# Simulated-time profile golden: the headline reliable-ring run captured
# with the profiler and exported in all three formats (voyager-prof/v1 JSON,
# folded flame-graph stacks, pprof protobuf) plus the rendered report, each
# byte-compared to the committed artifact. The inertness tests under
# `make test` prove the profiled run is the same run as the unprofiled one.
prof:
	$(GO) run ./cmd/voyager-run -nodes 4 -mech reliable -count 50 \
		-faults 'seed=7,drop=0.05' -prof /tmp/PROF_sample.json \
		-prof-folded /tmp/PROF_sample.folded -prof-pprof /tmp/PROF_sample.pb
	$(GO) run ./cmd/voyager-prof -top 8 /tmp/PROF_sample.json > /tmp/PROF_report.txt
	cmp /tmp/PROF_sample.json PROF_sample.json
	cmp /tmp/PROF_sample.folded PROF_sample.folded
	cmp /tmp/PROF_sample.pb PROF_sample.pb
	cmp /tmp/PROF_report.txt PROF_report.txt
	@echo "prof: profile artifacts match the committed goldens"

# Refresh the committed profile goldens after an intentional timing or
# attribution change.
prof-baseline:
	$(GO) run ./cmd/voyager-run -nodes 4 -mech reliable -count 50 \
		-faults 'seed=7,drop=0.05' -prof PROF_sample.json \
		-prof-folded PROF_sample.folded -prof-pprof PROF_sample.pb
	$(GO) run ./cmd/voyager-prof -top 8 PROF_sample.json > PROF_report.txt

# Short-budget chaos sweep: fuzzed fault plans run through the invariant
# oracles (exactly-once, conservation, quiescence, telescoping, metrics,
# memcheck) under the deadlock watchdog, fanned across 4 workers. The report
# is byte-deterministic, so it is compared against the committed baseline
# CHAOS_findings.json (empty findings = the machine is clean); any diff —
# a new violation or a changed plan stream — fails the build. voyager-chaos
# itself exits nonzero on findings, so CHAOS_found.json survives for upload.
chaos:
	$(GO) run ./cmd/voyager-chaos -cells 8 -msgs 6 -nodes 3 -parallel 4 \
		-shrink -out CHAOS_found.json
	cmp CHAOS_found.json CHAOS_findings.json
	@echo "chaos: sweep matches the committed baseline (no findings)"

ci: build test lint bench-json bench-diff bench-scale faults faults-check series prof chaos
