module startvoyager

go 1.22
