// Mpi-allreduce runs MPI-style collectives on an eight-node machine: a
// distributed dot product via Allreduce, a Bcast/Gather round trip, and an
// Alltoall transpose — all over Basic messages on the simulated NIU.
package main

import (
	"fmt"
	"log"

	"startvoyager/internal/core"
	"startvoyager/internal/mpi"
	"startvoyager/internal/sim"
)

const (
	nodes   = 8
	perRank = 1000 // vector elements per rank
)

func main() {
	m := core.NewMachine(nodes)
	dots := make([]float64, nodes)
	var gathered int

	for r := 0; r < nodes; r++ {
		r := r
		c := mpi.World(m, r)
		m.Go(r, "rank", func(p *sim.Proc, a *core.API) {
			// Local slice of two distributed vectors x=1.5, y=2.0.
			local := 0.0
			for i := 0; i < perRank; i++ {
				local += 1.5 * 2.0
			}
			// Global dot product.
			dots[r] = c.Allreduce(p, mpi.Sum, []float64{local})[0]

			// Root broadcasts a parameter block; everyone checks it.
			params := c.Bcast(p, 0, pick(r == 0, []byte("lr=0.01;epochs=3"), nil))
			if string(params) != "lr=0.01;epochs=3" {
				log.Fatalf("rank %d got params %q", r, params)
			}

			// Gather per-rank progress at root.
			res := c.Gather(p, 0, []byte{byte(r)})
			if r == 0 {
				gathered = len(res)
			}

			// Alltoall transpose of a tiny matrix row.
			row := make([][]byte, nodes)
			for i := range row {
				row[i] = []byte{byte(r), byte(i)}
			}
			col := c.Alltoall(p, row)
			for from, cell := range col {
				if cell[0] != byte(from) || cell[1] != byte(r) {
					log.Fatalf("rank %d: bad transpose cell from %d: %v", r, from, cell)
				}
			}
			c.Barrier(p)
		})
	}
	m.Run()

	want := float64(nodes * perRank * 3)
	for r, d := range dots {
		if d != want {
			log.Fatalf("rank %d allreduce = %v, want %v", r, d, want)
		}
	}
	fmt.Printf("MPI collectives on %d nodes over Basic messages\n", nodes)
	fmt.Printf("  allreduce dot product  = %.0f (all ranks agree)\n", dots[0])
	fmt.Printf("  bcast/gather           = ok (%d contributions)\n", gathered)
	fmt.Printf("  alltoall transpose     = ok\n")
	fmt.Printf("simulated time: %v\n", m.Eng.Now())
	st := m.Nodes[0].Ctrl.Stats()
	fmt.Printf("node 0 NIU: tx=%d rx=%d messages\n", st.TxMessages, st.RxMessages)
}

func pick(cond bool, a, b []byte) []byte {
	if cond {
		return a
	}
	return b
}
