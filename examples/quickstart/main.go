// Quickstart: build a two-node StarT-Voyager machine and exchange messages
// with all four default message-passing mechanisms (Basic, Express, TagOn,
// DMA), printing the observed one-way latency of each.
package main

import (
	"fmt"
	"log"

	"startvoyager/internal/core"
	"startvoyager/internal/sim"
)

func main() {
	m := core.NewMachine(2)

	type result struct {
		name string
		lat  sim.Time
	}
	var results []result

	m.Go(0, "sender", func(p *sim.Proc, a *core.API) {
		// Basic: up to 88 bytes, composed in cached aSRAM and launched with
		// a pointer update.
		start := p.Now()
		a.SendBasic(p, 1, []byte("basic hello"))
		a.RecvBasic(p) // echo
		results = append(results, result{"basic   (round trip)", p.Now() - start})

		// Express: five bytes in a single uncached store.
		start = p.Now()
		a.SendExpress(p, 1, []byte{1, 2, 3, 4, 5})
		a.RecvExpress(p)
		results = append(results, result{"express (round trip)", p.Now() - start})

		// TagOn: a Basic message that picks up 80 bytes directly from the
		// aSRAM on its way out — the processor never copies them.
		a.StageASram(p, 0x8000, make([]byte, 80))
		start = p.Now()
		a.SendTagOn(p, 1, []byte("hdr"), 0x8000, 80)
		a.RecvBasic(p)
		results = append(results, result{"tagon   (round trip)", p.Now() - start})

		// DMA: the firmware engine moves 4 KB of DRAM with the hardware
		// block units; the receiver gets a completion notification.
		a.Poke(0x10_0000, []byte("bulk data..."))
		start = p.Now()
		a.DmaPush(p, 1, 0x10_0000, 0x20_0000, 4096, 42)
		src, pl := a.RecvBasic(p) // receiver acks after its notification
		_ = src
		results = append(results, result{"dma 4KB (to notify)", p.Now() - start})
		if string(pl) != "dma-ok" {
			log.Fatalf("unexpected ack %q", pl)
		}
	})

	m.Go(1, "echo", func(p *sim.Proc, a *core.API) {
		_, pl := a.RecvBasic(p)
		a.SendBasic(p, 0, pl)

		_, epl := a.RecvExpress(p)
		a.SendExpress(p, 0, epl[:])

		_, tpl := a.RecvBasic(p)
		a.SendBasic(p, 0, tpl[:3])

		a.RecvNotify(p)
		a.SendBasic(p, 0, []byte("dma-ok"))
	})

	m.Run()

	fmt.Println("StarT-Voyager quickstart — 2 nodes, Arctic fat tree")
	for _, r := range results {
		fmt.Printf("  %-22s %v\n", r.name, r.lat)
	}
	st := m.Nodes[0].Ctrl.Stats()
	fmt.Printf("simulated time: %v (node 0 sent %d messages, received %d)\n",
		m.Eng.Now(), st.TxMessages, st.RxMessages)
}
