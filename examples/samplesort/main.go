// Samplesort runs a complete parallel application — sample sort of 8,000
// keys across 8 nodes — over the simulated machine's MPI library, the kind
// of "entire system workload" study the paper says the platform exists to
// run. The result is verified against a sequential sort, and per-node NIU
// statistics show what the hardware did underneath.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"startvoyager/internal/core"
	"startvoyager/internal/mpi"
	"startvoyager/internal/sim"
)

const (
	nodes   = 8
	perRank = 1000
)

func encode(keys []uint32) []byte {
	b := make([]byte, 4*len(keys))
	for i, k := range keys {
		binary.BigEndian.PutUint32(b[i*4:], k)
	}
	return b
}

func decode(b []byte) []uint32 {
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.BigEndian.Uint32(b[i*4:])
	}
	return out
}

func main() {
	rng := rand.New(rand.NewSource(42))
	input := make([][]uint32, nodes)
	var all []uint32
	for r := range input {
		input[r] = make([]uint32, perRank)
		for i := range input[r] {
			input[r][i] = rng.Uint32() % 1_000_000
			all = append(all, input[r][i])
		}
	}
	want := append([]uint32(nil), all...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

	m := core.NewMachine(nodes)
	sorted := make([][]uint32, nodes)
	for r := 0; r < nodes; r++ {
		r := r
		c := mpi.World(m, r)
		m.Go(r, "sort", func(p *sim.Proc, a *core.API) {
			keys := append([]uint32(nil), input[r]...)
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			a.Compute(p, sim.Time(len(keys))*50) // model the local sort

			// Regular samples -> root picks splitters -> broadcast.
			samples := make([]uint32, 0, nodes-1)
			for i := 1; i < nodes; i++ {
				samples = append(samples, keys[i*len(keys)/nodes])
			}
			gathered := c.Gather(p, 0, encode(samples))
			var splitters []uint32
			if r == 0 {
				var pool []uint32
				for _, g := range gathered {
					pool = append(pool, decode(g)...)
				}
				sort.Slice(pool, func(i, j int) bool { return pool[i] < pool[j] })
				for i := 1; i < nodes; i++ {
					splitters = append(splitters, pool[i*len(pool)/nodes])
				}
			}
			splitters = decode(c.Bcast(p, 0, encode(splitters)))

			// Partition into buckets and exchange.
			buckets := make([][]uint32, nodes)
			for _, k := range keys {
				b := sort.Search(len(splitters), func(i int) bool { return k < splitters[i] })
				buckets[b] = append(buckets[b], k)
			}
			parts := make([][]byte, nodes)
			for i := range parts {
				parts[i] = encode(buckets[i])
			}
			recv := c.Alltoall(p, parts)
			var mine []uint32
			for _, part := range recv {
				mine = append(mine, decode(part)...)
			}
			sort.Slice(mine, func(i, j int) bool { return mine[i] < mine[j] })
			a.Compute(p, sim.Time(len(mine))*50)
			sorted[r] = mine
			c.Barrier(p)
		})
	}
	m.Run()

	// Verify: concatenation equals the sequential sort.
	var got []uint32
	for _, s := range sorted {
		got = append(got, s...)
	}
	if len(got) != len(want) {
		log.Fatalf("lost keys: %d of %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			log.Fatalf("mismatch at %d: %d != %d", i, got[i], want[i])
		}
	}
	fmt.Printf("parallel sample sort: %d keys on %d nodes — verified against sequential sort\n",
		len(want), nodes)
	fmt.Printf("simulated time: %v\n", m.Eng.Now())
	var tx, rx uint64
	for _, n := range m.Nodes {
		st := n.Ctrl.Stats()
		tx += st.TxMessages
		rx += st.RxMessages
	}
	fmt.Printf("NIU traffic: %d messages sent, %d received across the machine\n", tx, rx)
	fmt.Printf("node 0 aP busy: %v of %v (%.0f%%)\n",
		m.Nodes[0].APMeter.BusyTime(), m.Eng.Now(),
		100*float64(m.Nodes[0].APMeter.BusyTime())/float64(m.Eng.Now()))
}
