// Reflective demonstrates the paper's §5 extension — emulating Shrimp /
// Memory Channel reflective memory on StarT-Voyager — and compares its two
// implementations: sP firmware versus pure aBIU hardware. A producer node
// publishes a sequence counter and payload into the reflective window; a
// consumer on another node simply polls its local copy.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"startvoyager/internal/cluster"
	"startvoyager/internal/core"
	"startvoyager/internal/niu/biu"
	"startvoyager/internal/sim"
)

const (
	items   = 50
	seqOff  = 0  // sequence word (published last: release semantics)
	dataOff = 64 // payload line
)

func run(mode biu.ReflectMode) (lat sim.Time, spBusy sim.Time) {
	cfg := cluster.DefaultConfig(2)
	cfg.ReflectSize = 64 << 10
	m := core.NewMachineConfig(cfg)
	m.API(0).ReflectConfigure(mode, []biu.ReflectEntry{
		{From: 0, To: 64 << 10, Subs: []int{1}}})

	var total sim.Time
	m.Go(0, "producer", func(p *sim.Proc, a *core.API) {
		for i := 1; i <= items; i++ {
			payload := make([]byte, 32)
			binary.BigEndian.PutUint32(payload, uint32(i*100))
			a.ReflectStore(p, dataOff, payload)
			var seq [8]byte
			binary.BigEndian.PutUint64(seq[:], uint64(i))
			a.ReflectStoreWord(p, seqOff, seq[:]) // publish
			a.Compute(p, 5*sim.Microsecond)       // produce every 5 us
		}
	})
	m.Go(1, "consumer", func(p *sim.Proc, a *core.API) {
		last := uint64(0)
		for last < items {
			var seq [8]byte
			a.ReflectLoadUncached(p, seqOff, seq[:])
			v := binary.BigEndian.Uint64(seq[:])
			if v == last {
				continue
			}
			last = v
			payload := make([]byte, 32)
			a.ReflectLoad(p, dataOff, payload)
			if got := binary.BigEndian.Uint32(payload); got < uint32(v*100) {
				log.Fatalf("consumer saw stale payload %d for seq %d", got, v)
			}
		}
		total = p.Now()
	})
	m.Run()
	return total / items, m.Nodes[0].FW.BusyTime()
}

func main() {
	fmt.Println("Reflective memory (Shrimp / Memory Channel emulation, paper §5)")
	fmt.Printf("%d published items, producer node 0 -> consumer node 1\n\n", items)
	for _, mode := range []biu.ReflectMode{biu.ReflectFirmware, biu.ReflectHardware} {
		lat, sp := run(mode)
		fmt.Printf("  %-9s mode: %-9v per item, producer sP busy %v\n", mode, lat, sp)
	}
	fmt.Println("\nthe hardware mode is the paper's point: the same mechanism moved from")
	fmt.Println("firmware into the aBIU FPGA, compared on one platform with all else equal")
}
