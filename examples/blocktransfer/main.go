// Blocktransfer runs the paper's Section 6 experiment end to end: the same
// 32 KB block transfer implemented five ways — aP-managed messages, sP-
// managed TagOn messages, hardware block operations, and the two optimistic
// S-COMA-gated variants — and prints the latency, occupancy and bandwidth
// comparison.
package main

import (
	"fmt"

	"startvoyager/internal/blockxfer"
	"startvoyager/internal/stats"
)

func main() {
	const size = 32 << 10
	fmt.Printf("Block transfer of %s, node 0 -> node 1 (paper §6)\n\n",
		stats.FormatBytes(size))
	t := &stats.Table{
		Columns: []string{"approach", "latency", "notify", "consume-done",
			"bandwidth", "aP-src", "sP-src", "sP-dst"},
	}
	us := func(v float64) string { return fmt.Sprintf("%.1fus", v/1000) }
	for _, a := range []blockxfer.Approach{blockxfer.A1, blockxfer.A2,
		blockxfer.A3, blockxfer.A4, blockxfer.A5} {
		m := blockxfer.Measure(a, size)
		t.AddRow(a.String(),
			us(float64(m.Latency)), us(float64(m.NotifyAt)), us(float64(m.ConsumeDone)),
			fmt.Sprintf("%.1fMB/s", m.Bandwidth),
			us(float64(m.APSrcBusy)), us(float64(m.SPSrcBusy)), us(float64(m.SPDstBusy)))
	}
	fmt.Print(t)
	fmt.Println("\nReading the table the way the paper does:")
	fmt.Println(" - approach 1 pays the aP bus twice per side: worst latency & bandwidth, aP saturated")
	fmt.Println(" - approach 2 moves the load to the sPs (see sP columns): mid bandwidth")
	fmt.Println(" - approach 3 runs in the block units: best bandwidth, everyone idle")
	fmt.Println(" - approaches 4/5 notify at 25% of the data: consume-done drops;")
	fmt.Println("   approach 5's aBIU state updates also erase the receiving-sP cost of 4")
}
