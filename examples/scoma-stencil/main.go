// Scoma-stencil runs a 1-D Jacobi heat-diffusion stencil on four nodes over
// the S-COMA shared-memory window — the kind of shared-memory application
// the paper's NIU supports without any message-passing code — and verifies
// the result against a sequential computation.
//
// The temperature array lives in the global S-COMA space; each node owns a
// contiguous strip and reads one halo cell from each neighbour's strip
// through the coherence protocol. Iterations are separated by a
// message-passing barrier (mixing paradigms on one machine is exactly the
// platform's point).
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"startvoyager/internal/core"
	"startvoyager/internal/mpi"
	"startvoyager/internal/sim"
)

const (
	cells = 64 // total cells (small: every cell crosses the protocol)
	iters = 10
	nodes = 4
)

func cellOff(i int) uint32 { return uint32(i) * 8 }

func load(p *sim.Proc, a *core.API, buf uint32, i int) float64 {
	var b [8]byte
	a.ScomaLoad(p, buf+cellOff(i), b[:])
	return math.Float64frombits(binary.BigEndian.Uint64(b[:]))
}

func store(p *sim.Proc, a *core.API, buf uint32, i int, v float64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(v))
	a.ScomaStore(p, buf+cellOff(i), b[:])
}

func main() {
	m := core.NewMachine(nodes)

	// Two buffers (current and next) in the global S-COMA space. Their
	// backing pages are distributed round-robin across home nodes.
	bufA, bufB := uint32(0), uint32(64<<10)

	// Initial condition: a hot spike in the middle, poked into the home
	// backing copies before the machine starts.
	init := make([]float64, cells)
	init[cells/2] = 100.0

	// Reference sequential result.
	want := append([]float64(nil), init...)
	for it := 0; it < iters; it++ {
		next := make([]float64, cells)
		for i := 1; i < cells-1; i++ {
			next[i] = 0.25*want[i-1] + 0.5*want[i] + 0.25*want[i+1]
		}
		want = next
	}

	// Node 0 writes the initial condition through the window (the protocol
	// will distribute it on demand).
	per := cells / nodes
	final := make([]float64, cells)
	for r := 0; r < nodes; r++ {
		r := r
		comm := mpi.World(m, r)
		m.Go(r, "stencil", func(p *sim.Proc, a *core.API) {
			if r == 0 {
				for i := 0; i < cells; i++ {
					store(p, a, bufA, i, init[i])
					store(p, a, bufB, i, 0)
				}
			}
			comm.Barrier(p)
			lo, hi := r*per, (r+1)*per
			cur, nxt := bufA, bufB
			for it := 0; it < iters; it++ {
				for i := lo; i < hi; i++ {
					if i == 0 || i == cells-1 {
						store(p, a, nxt, i, 0)
						continue
					}
					v := 0.25*load(p, a, cur, i-1) + 0.5*load(p, a, cur, i) +
						0.25*load(p, a, cur, i+1)
					store(p, a, nxt, i, v)
				}
				comm.Barrier(p)
				cur, nxt = nxt, cur
			}
			if r == 0 {
				for i := 0; i < cells; i++ {
					final[i] = load(p, a, bufA, i)
					if iters%2 == 1 {
						final[i] = load(p, a, bufB, i)
					}
				}
			}
		})
	}
	m.Run()

	maxErr := 0.0
	for i := range want {
		if e := math.Abs(final[i] - want[i]); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 1e-12 {
		log.Fatalf("stencil diverged from sequential result: max error %g", maxErr)
	}
	fmt.Printf("1-D stencil over S-COMA shared memory: %d cells x %d iterations on %d nodes\n",
		cells, iters, nodes)
	fmt.Printf("verified against sequential computation (max error %g)\n", maxErr)
	fmt.Printf("simulated time: %v\n", m.Eng.Now())
	for i, s := range m.Scomas {
		st := s.Stats()
		fmt.Printf("  node %d directory: gets=%d getx=%d invals=%d recalls=%d\n",
			i, st.Gets, st.GetXs, st.Invals, st.Recalls)
	}
}
