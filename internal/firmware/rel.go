package firmware

import (
	"encoding/binary"
	"fmt"

	"startvoyager/internal/arctic"
	"startvoyager/internal/niu/ctrl"
	"startvoyager/internal/niu/txrx"
	"startvoyager/internal/sim"
	"startvoyager/internal/stats"
)

// The R-Basic reliable-delivery service: Basic-message semantics that survive
// a lossy network. It is pure sP firmware in the paper's sense — no hardware
// changes, just three new service message types and two logical queues.
//
// Protocol (Go-Back-N, per directed (sender, receiver) pair):
//
//   - The aP submits a send as SvcRelSend to its own sP (node-local traffic,
//     outside the fault plane). The sP assigns the next sequence number for
//     the destination and transmits SvcRelData [seq, payload] on the Low
//     lane, keeping a copy in a bounded retransmit buffer (at most Window
//     in flight; excess sends queue behind them).
//   - The receiving sP accepts only seq == recvNext: in-order messages are
//     delivered to the local RelLogicalQ, older duplicates are suppressed,
//     and out-of-order futures are dropped (a Go-Back-N retransmit will
//     bring them back in order). Every receipt triggers a cumulative ACK
//     [recvNext] on the High lane so ACKs bypass congested data traffic.
//   - The sender retires entries covered by a cumulative ACK and reports
//     each as a RelOK status on the local RelStatusLogicalQ. If the ACK
//     timer expires, every in-flight entry is retransmitted and the timeout
//     doubles (capped at BackoffCap). After MaxRetries consecutive timeouts
//     the peer is declared unreachable: all queued sends fail with
//     RelUnreachable and future sends fail immediately.

// RelMaxPayload bounds a reliable message's payload so every encoding —
// SvcRelSend (6-byte header), SvcRelData (4-byte), local delivery (2-byte
// origin prefix) — fits a Basic frame.
const RelMaxPayload = 80

// Reliable-send completion codes (RelStatusLogicalQ payload byte 4).
const (
	RelOK          byte = 0 // delivered and acknowledged exactly once
	RelUnreachable byte = 1 // retry budget exhausted; peer presumed dead
)

// RelConfig parameterizes the R-Basic service.
type RelConfig struct {
	NumNodes   int
	Timeout    sim.Time // initial retransmit timeout (default 30 us)
	MaxRetries int      // consecutive timeouts before declaring the peer dead (default 6)
	BackoffCap sim.Time // upper bound on the backed-off timeout (default 500 us)
	Window     int      // retransmit-buffer entries per peer (default 8)
}

// WithDefaults fills zero fields with the default parameter set.
func (c RelConfig) WithDefaults() RelConfig {
	if c.Timeout == 0 {
		c.Timeout = 30 * sim.Microsecond
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 6
	}
	if c.BackoffCap == 0 {
		c.BackoffCap = 500 * sim.Microsecond
	}
	if c.Window == 0 {
		c.Window = 8
	}
	return c
}

// SendBound returns the worst-case sim time between submitting a reliable
// send and its status arriving: the full backoff ladder (MaxRetries + 1
// timer expiries, each min(2^i*Timeout, BackoffCap)) plus slack for the
// final status to cross the node-local path. Callers polling for a status
// can bound their wait with this and know a verdict must have landed.
func (c RelConfig) SendBound() sim.Time {
	c = c.WithDefaults()
	var total sim.Time
	rto := c.Timeout
	for i := 0; i <= c.MaxRetries; i++ {
		total += rto
		rto = 2 * rto
		if rto > c.BackoffCap {
			rto = c.BackoffCap
		}
	}
	return total + 4*c.Timeout
}

// RelStats counts R-Basic activity on one node.
type RelStats struct {
	Sends         uint64 // SvcRelSend submissions accepted
	Delivered     uint64 // in-order payloads handed to the local aP
	Retransmits   uint64 // data frames re-sent on timeout
	DupSuppressed uint64 // duplicate arrivals discarded (already delivered)
	OooDropped    uint64 // out-of-order futures discarded
	Acks          uint64 // cumulative ACK frames received
	Failures      uint64 // sends failed with RelUnreachable
}

// relEntry is one send in the retransmit buffer.
type relEntry struct {
	seq     uint32
	tag     uint32
	payload []byte

	// Causal trace identity: one message id for the logical send, reused
	// across every retransmission with a bumped attempt counter, parented to
	// the aP's SvcRelSend submission.
	msg     uint64
	parent  uint64
	attempt uint32
}

// relPeer is the per-(this node, remote node) protocol state.
type relPeer struct {
	node int

	// Sender side.
	nextSeq  uint32
	inflight []*relEntry // transmitted, awaiting ACK (≤ Window)
	pending  []*relEntry // accepted but waiting for window space
	rto      sim.Time
	retries  int
	timerGen uint64 // bumping this invalidates the armed timer
	failed   bool

	// Receiver side.
	recvNext uint32
}

// Rel is one node's R-Basic service instance. Peer state materializes on the
// first exchange with that peer: protocol state is per directed pair, so
// eager allocation would cost O(nodes²) machine-wide — prohibitive at 1024
// nodes when real traffic touches a tiny fraction of the pairs.
type Rel struct {
	e     *Engine
	cfg   RelConfig
	peers []*relPeer // nil until first use; see peer()

	stats       RelStats
	backoffHist *stats.Histogram // rto at each expiry (ns)
}

// NewRel builds and registers the R-Basic service on e.
func NewRel(e *Engine, cfg RelConfig) *Rel {
	cfg = cfg.WithDefaults()
	if cfg.NumNodes <= 0 {
		panic("firmware: RelConfig.NumNodes required")
	}
	r := &Rel{
		e: e, cfg: cfg,
		peers:       make([]*relPeer, cfg.NumNodes),
		backoffHist: stats.NewHistogram(stats.ExpBounds(int64(cfg.Timeout), 2, 8)...),
	}
	e.Register(SvcRelSend, r.onSend)
	e.Register(SvcRelData, r.onData)
	e.Register(SvcRelAck, r.onAck)
	return r
}

// peer returns node i's protocol state, materializing it on first use.
func (r *Rel) peer(i int) *relPeer {
	p := r.peers[i]
	if p == nil {
		p = &relPeer{node: i, rto: r.cfg.Timeout}
		r.peers[i] = p
	}
	return p
}

// Config returns the (defaults-filled) parameter set.
func (r *Rel) Config() RelConfig { return r.cfg }

// Stats returns a snapshot of counters.
func (r *Rel) Stats() RelStats { return r.stats }

// Quiesced reports whether every peer's sender state has drained: nothing
// awaiting an ACK, nothing queued behind the window. With the event queue
// drained this must hold — a non-empty buffer with no armed timer means a
// send was silently abandoned, which is the quiescence oracle's target.
func (r *Rel) Quiesced() error {
	for _, peer := range r.peers {
		if peer == nil {
			continue
		}
		if len(peer.inflight) > 0 || len(peer.pending) > 0 {
			return fmt.Errorf("firmware: node %d rel peer %d not quiesced: %d in flight, %d pending",
				r.e.node, peer.node, len(peer.inflight), len(peer.pending))
		}
	}
	return nil
}

// RegisterMetrics registers the service's counters under reg.
func (r *Rel) RegisterMetrics(reg *stats.Registry) {
	reg.Gauge("rel_sends", func() int64 { return int64(r.stats.Sends) })
	reg.Gauge("rel_delivered", func() int64 { return int64(r.stats.Delivered) })
	reg.Gauge("retransmits", func() int64 { return int64(r.stats.Retransmits) })
	reg.Gauge("dup_suppressed", func() int64 { return int64(r.stats.DupSuppressed) })
	reg.Gauge("ooo_dropped", func() int64 { return int64(r.stats.OooDropped) })
	reg.Gauge("rel_acks", func() int64 { return int64(r.stats.Acks) })
	reg.Gauge("rel_failures", func() int64 { return int64(r.stats.Failures) })
	reg.Histogram("backoff_ns", r.backoffHist)
}

// onSend handles SvcRelSend from the local aP: dst(2) tag(4) payload.
func (r *Rel) onSend(p *sim.Proc, src uint16, body []byte) {
	if len(body) < 6 {
		panic(fmt.Sprintf("firmware: node %d: short RelSend body (%d bytes)", r.e.node, len(body)))
	}
	dst := int(binary.BigEndian.Uint16(body[0:]))
	tag := binary.BigEndian.Uint32(body[2:])
	payload := append([]byte(nil), body[6:]...)
	if dst < 0 || dst >= r.cfg.NumNodes {
		panic(fmt.Sprintf("firmware: node %d: RelSend to bad node %d", r.e.node, dst))
	}
	r.stats.Sends++
	if dst == r.e.node {
		// Node-local reliable send: the loopback path cannot lose data.
		r.stats.Delivered++
		r.deliverLocal(p, uint16(r.e.node), payload, r.e.curMsg.ID)
		r.status(p, tag, RelOK, r.e.curMsg.ID)
		return
	}
	peer := r.peer(dst)
	if peer.failed {
		r.stats.Failures++
		r.status(p, tag, RelUnreachable, r.e.curMsg.ID)
		return
	}
	ent := &relEntry{seq: peer.nextSeq, tag: tag, payload: payload,
		msg: r.e.sim.NewMsgID(), parent: r.e.curMsg.ID}
	r.e.traceMsg("msg-send", sim.MsgTag{ID: ent.msg, Parent: ent.parent},
		sim.Int("dst", dst))
	peer.pending = append(peer.pending, ent)
	peer.nextSeq++
	r.fillWindow(p, peer)
}

// onData handles SvcRelData from a remote sender: seq(4) payload.
func (r *Rel) onData(p *sim.Proc, src uint16, body []byte) {
	if len(body) < 4 {
		panic(fmt.Sprintf("firmware: node %d: short RelData body (%d bytes)", r.e.node, len(body)))
	}
	seq := binary.BigEndian.Uint32(body[0:])
	peer := r.peer(int(src))
	switch d := int32(seq - peer.recvNext); {
	case d == 0:
		peer.recvNext++
		r.stats.Delivered++
		// Handing the payload to the aP costs sP data movement.
		r.e.Occupy(p, sim.Time(len(body)-4)*r.e.costs.PerByte)
		r.deliverLocal(p, src, body[4:], r.e.curMsg.ID)
	case d < 0:
		// Already delivered: a retransmit crossed our ACK. Re-ACK so the
		// sender can retire it.
		r.stats.DupSuppressed++
		if r.e.sim.Observed() {
			r.e.sim.Instant(r.e.node, "fw", "rel-dup",
				sim.Int("src", int(src)), sim.I64("seq", int64(seq)))
		}
	default:
		// A gap means an earlier frame was lost; drop the future and let
		// Go-Back-N retransmit the whole window in order.
		r.stats.OooDropped++
	}
	// Cumulative ACK on the High lane (every arrival, including duplicates:
	// the dup means our previous ACK may have been lost).
	var ack [4]byte
	binary.BigEndian.PutUint32(ack[:], peer.recvNext)
	r.e.SendSvc(p, int(src), SvcRelAck, ack[:], arctic.High, nil)
}

// onAck handles a cumulative ACK from the receiver: recvNext(4).
func (r *Rel) onAck(p *sim.Proc, src uint16, body []byte) {
	if len(body) < 4 {
		panic(fmt.Sprintf("firmware: node %d: short RelAck body (%d bytes)", r.e.node, len(body)))
	}
	ackNext := binary.BigEndian.Uint32(body[0:])
	peer := r.peer(int(src))
	r.stats.Acks++
	progressed := false
	for len(peer.inflight) > 0 && int32(peer.inflight[0].seq-ackNext) < 0 {
		ent := peer.inflight[0]
		peer.inflight = peer.inflight[1:]
		progressed = true
		r.status(p, ent.tag, RelOK, ent.msg)
	}
	if !progressed {
		return
	}
	// Forward progress: the path works, so reset the backoff ladder.
	peer.retries = 0
	peer.rto = r.cfg.Timeout
	r.fillWindow(p, peer)
	if len(peer.inflight) == 0 {
		peer.timerGen++ // disarm; nothing awaits an ACK
	} else {
		r.armTimer(peer)
	}
}

// fillWindow transmits pending entries while window space remains, then
// (re)arms the ACK timer if anything is in flight.
func (r *Rel) fillWindow(p *sim.Proc, peer *relPeer) {
	sent := false
	for len(peer.inflight) < r.cfg.Window && len(peer.pending) > 0 {
		ent := peer.pending[0]
		peer.pending = peer.pending[1:]
		peer.inflight = append(peer.inflight, ent)
		r.transmit(p, peer, ent)
		sent = true
	}
	if sent && len(peer.inflight) > 0 {
		r.armTimer(peer)
	}
}

// transmit sends one data frame on the Low lane. Every attempt reuses the
// entry's message id with a bumped attempt counter, so the path analyzer sees
// one causal chain per logical send and can charge the retransmit penalty.
func (r *Rel) transmit(p *sim.Proc, peer *relPeer, ent *relEntry) {
	body := make([]byte, 4+len(ent.payload))
	binary.BigEndian.PutUint32(body[0:], ent.seq)
	copy(body[4:], ent.payload)
	r.e.Occupy(p, sim.Time(len(ent.payload))*r.e.costs.PerByte)
	ent.attempt++
	r.e.SendSvcTagged(p, peer.node, SvcRelData, body, arctic.Low,
		sim.MsgTag{ID: ent.msg, Attempt: ent.attempt, Parent: ent.parent}, nil)
}

// armTimer schedules the ACK timeout, invalidating any earlier timer.
func (r *Rel) armTimer(peer *relPeer) {
	peer.timerGen++
	gen := peer.timerGen
	r.e.sim.Schedule(peer.rto, func() {
		if gen != peer.timerGen || len(peer.inflight) == 0 {
			return // superseded by an ACK or a newer transmission
		}
		r.e.Go("rel-rto", func(p *sim.Proc) { r.onTimeout(p, peer, gen) })
	})
}

// onTimeout retransmits the whole in-flight window (Go-Back-N) with doubled
// timeout, or gives up on the peer once the retry budget is spent.
func (r *Rel) onTimeout(p *sim.Proc, peer *relPeer, gen uint64) {
	if gen != peer.timerGen || len(peer.inflight) == 0 || peer.failed {
		return
	}
	peer.retries++
	if peer.retries > r.cfg.MaxRetries {
		r.failPeer(p, peer)
		return
	}
	r.backoffHist.ObserveTime(peer.rto)
	if r.e.sim.Observed() {
		r.e.sim.Instant(r.e.node, "fw", "rel-rto",
			sim.Int("peer", peer.node), sim.Int("retry", peer.retries),
			sim.I64("rto_ns", int64(peer.rto)))
	}
	r.e.Occupy(p, r.e.costs.Dispatch)
	for _, ent := range peer.inflight {
		r.stats.Retransmits++
		r.transmit(p, peer, ent)
	}
	peer.rto = 2 * peer.rto
	if peer.rto > r.cfg.BackoffCap {
		peer.rto = r.cfg.BackoffCap
	}
	r.armTimer(peer)
}

// failPeer declares the peer unreachable and fails every queued send.
func (r *Rel) failPeer(p *sim.Proc, peer *relPeer) {
	peer.failed = true
	peer.timerGen++
	if r.e.sim.Observed() {
		r.e.sim.Instant(r.e.node, "fw", "rel-peer-dead", sim.Int("peer", peer.node))
	}
	for _, ent := range peer.inflight {
		r.stats.Failures++
		r.status(p, ent.tag, RelUnreachable, ent.msg)
	}
	for _, ent := range peer.pending {
		r.stats.Failures++
		r.status(p, ent.tag, RelUnreachable, ent.msg)
	}
	peer.inflight, peer.pending = nil, nil
}

// deliverLocal lands an in-order payload on the node's RelLogicalQ, prefixed
// with the true origin node (the frame's SrcNode is this node: the final hop
// is a node-local SendMsg). parent links the new local message to its cause
// (explicit because failPeer runs outside handler context, where curMsg is
// not valid).
func (r *Rel) deliverLocal(p *sim.Proc, origin uint16, payload []byte, parent uint64) {
	buf := make([]byte, 2+len(payload))
	binary.BigEndian.PutUint16(buf[0:], origin)
	copy(buf[2:], payload)
	r.e.IssueCommand(p, 0, &ctrl.SendMsg{
		Frame: &txrx.Frame{Kind: txrx.Data, LogicalQ: RelLogicalQ, Payload: buf,
			Trace: sim.MsgTag{Parent: parent}},
		Dest:     uint16(r.e.node),
		Priority: arctic.High,
	})
}

// status reports a send's outcome on the node's RelStatusLogicalQ:
// tag(4) code(1).
func (r *Rel) status(p *sim.Proc, tag uint32, code byte, parent uint64) {
	var buf [5]byte
	binary.BigEndian.PutUint32(buf[0:], tag)
	buf[4] = code
	r.e.IssueCommand(p, 0, &ctrl.SendMsg{
		Frame: &txrx.Frame{Kind: txrx.Data, LogicalQ: RelStatusLogicalQ, Payload: buf[:],
			Trace: sim.MsgTag{Parent: parent}},
		Dest:     uint16(r.e.node),
		Priority: arctic.High,
	})
}
