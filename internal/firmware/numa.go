package firmware

import (
	"encoding/binary"
	"fmt"

	"startvoyager/internal/arctic"
	"startvoyager/internal/bus"
	"startvoyager/internal/niu/biu"
	"startvoyager/internal/niu/ctrl"
	"startvoyager/internal/sim"
)

// NumaConfig describes the NUMA window layout. The window's global address
// space is partitioned contiguously: bytes [home*Segment, (home+1)*Segment)
// live in node home's DRAM at LocalBase.
type NumaConfig struct {
	Window    bus.Range
	Segment   uint32 // bytes of the window owned by each home node
	LocalBase uint32 // home-local DRAM address backing its segment
}

// Numa is the default NUMA firmware: aP accesses in the window are captured
// by the aBIU and forwarded here; reads fetch the word from the home node's
// memory and complete the retried bus operation through SupplyFill, writes
// are posted through to the home. There is no caching and no coherence
// state — that is S-COMA's job.
type Numa struct {
	e   *Engine
	cfg NumaConfig

	stats NumaStats
}

// NumaStats counts protocol activity.
type NumaStats struct {
	Reads, Writes, HomeReads, HomeWrites uint64
}

// NewNuma installs the NUMA protocol on a node's firmware engine.
func NewNuma(e *Engine, cfg NumaConfig) *Numa {
	n := &Numa{e: e, cfg: cfg}
	e.SetNumaCapture(n.onCapture)
	e.Register(SvcNumaRead, n.onRead)
	e.Register(SvcNumaReply, n.onReply)
	e.Register(SvcNumaWrite, n.onWrite)
	e.Register(SvcNumaWriteAck, n.onWriteAck)
	return n
}

// Stats returns a snapshot of counters.
func (n *Numa) Stats() NumaStats { return n.stats }

// home maps a window address to (home node, home-local DRAM address).
func (n *Numa) home(addr uint32) (int, uint32) {
	off := n.cfg.Window.Offset(addr)
	return int(off / n.cfg.Segment), n.cfg.LocalBase + off%n.cfg.Segment
}

func (n *Numa) onCapture(p *sim.Proc, op biu.CapturedOp) {
	home, _ := n.home(op.Addr)
	switch {
	case op.Kind.IsRead():
		n.stats.Reads++
		body := make([]byte, 5)
		binary.BigEndian.PutUint32(body, op.Addr)
		body[4] = byte(op.Size)
		n.e.SendSvc(p, home, SvcNumaRead, body, arctic.Low, nil)
	default:
		n.stats.Writes++
		body := make([]byte, 5+len(op.Data))
		binary.BigEndian.PutUint32(body, op.Addr)
		body[4] = byte(op.Size)
		copy(body[5:], op.Data)
		n.e.SendSvc(p, home, SvcNumaWrite, body, arctic.Low, nil)
	}
}

// onRead services a remote read at the home node.
func (n *Numa) onRead(p *sim.Proc, src uint16, body []byte) {
	addr := binary.BigEndian.Uint32(body)
	size := int(body[4])
	_, local := n.home(addr)
	n.stats.HomeReads++
	kind := bus.ReadWord
	if size == bus.LineSize {
		kind = bus.ReadLine
		local &^= bus.LineSize - 1
	}
	tx := &bus.Transaction{Kind: kind, Addr: local, Data: make([]byte, size)}
	requester := int(src)
	n.e.IssueCommand(p, 0, &ctrl.BusOp{
		Base: ctrl.Base{Done: func() {
			n.e.Go("numa-reply", func(p *sim.Proc) {
				n.e.Occupy(p, n.e.costs.Handler)
				reply := make([]byte, 4+len(tx.Data))
				binary.BigEndian.PutUint32(reply, addr)
				copy(reply[4:], tx.Data)
				n.e.SendSvc(p, requester, SvcNumaReply, reply, arctic.High, nil)
			})
		}},
		Tx: tx,
	})
}

// onReply completes a stalled read at the requesting node.
func (n *Numa) onReply(p *sim.Proc, src uint16, body []byte) {
	addr := binary.BigEndian.Uint32(body)
	n.e.ABIU().SupplyFill(addr, body[4:])
}

// onWrite applies a remote write at the home node, then acknowledges it so
// the client's retried store can complete — a completed NUMA store is
// therefore globally ordered by the home.
func (n *Numa) onWrite(p *sim.Proc, src uint16, body []byte) {
	addr := binary.BigEndian.Uint32(body)
	size := int(body[4])
	data := body[5:]
	if len(data) != size {
		panic(fmt.Sprintf("firmware: node %d: NUMA write size %d with %d data bytes",
			n.e.node, size, len(data)))
	}
	_, local := n.home(addr)
	n.stats.HomeWrites++
	kind := bus.WriteWord
	if size == bus.LineSize {
		kind = bus.WriteLine
		local &^= bus.LineSize - 1
	}
	requester := int(src)
	n.e.IssueCommand(p, 0, &ctrl.BusOp{
		Base: ctrl.Base{Done: func() {
			n.e.Go("numa-wack", func(p *sim.Proc) {
				n.e.Occupy(p, n.e.costs.Handler)
				n.e.SendSvc(p, requester, SvcNumaWriteAck, body[:4], arctic.High, nil)
			})
		}},
		Tx: &bus.Transaction{Kind: kind, Addr: local, Data: append([]byte(nil), data...)},
	})
}

// onWriteAck releases the client's retried store.
func (n *Numa) onWriteAck(p *sim.Proc, src uint16, body []byte) {
	addr := binary.BigEndian.Uint32(body)
	key := addr &^ 7
	n.e.ABIU().SupplyWriteAck(key)
}
