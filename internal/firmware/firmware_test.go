package firmware

import (
	"testing"
	"testing/quick"

	"startvoyager/internal/arctic"
	"startvoyager/internal/bus"
	"startvoyager/internal/niu/biu"
	"startvoyager/internal/niu/ctrl"
	"startvoyager/internal/niu/sram"
	"startvoyager/internal/niu/txrx"
	"startvoyager/internal/sim"
)

func TestDmaRequestRoundTrip(t *testing.T) {
	f := func(pull bool, peer uint8, src, dst, tag uint32, ln uint16, nq uint16) bool {
		r := DmaRequest{Pull: pull, PeerNode: int(peer), SrcAddr: src, DstAddr: dst,
			Len: int(ln), NotifyQ: nq, Tag: tag}
		return DecodeDmaRequest(EncodeDmaRequest(r)) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeShortDmaRequestPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	DecodeDmaRequest(make([]byte, 4))
}

func TestDefaultCosts(t *testing.T) {
	c := DefaultCosts()
	if c.Dispatch == 0 || c.Handler == 0 || c.PerByte == 0 || c.CmdIssue == 0 {
		t.Fatalf("zero defaults: %+v", c)
	}
}

// fwRig builds a standalone firmware engine over a minimal NIU.
type fwRig struct {
	eng *sim.Engine
	c   *ctrl.Ctrl
	fw  *Engine
	a   *biu.ABIU
	sS  *sram.SRAM
}

type nullNet struct{}

func (nullNet) Inject(int, arctic.Priority, []byte, sim.MsgTag) {}
func (nullNet) Poke()                                           {}
func (nullNet) Ready(arctic.Priority) bool                      { return true }

func newFwRig(t *testing.T) *fwRig {
	t.Helper()
	eng := sim.NewEngine()
	aS := sram.New("a", 64<<10)
	sS := sram.New("s", 64<<10)
	cls := sram.NewCls(64)
	b := bus.New(eng, "b", bus.DefaultConfig())
	ccfg := ctrl.DefaultConfig()
	ccfg.MissQueue = 14
	c := ctrl.New(eng, 0, aS, sS, cls, ccfg)
	m := biu.Map{Sram: bus.Range{Base: 0xF000_0000, Size: 64 << 10}}
	a := biu.NewABIU(eng, 0, b, c, aS, cls, m, biu.DefaultConfig())
	sb := biu.NewSBIU(a, c)
	fw := New(eng, 0, sb, 13, 14, Costs{})
	c.SetPorts(a, nullNet{}, fw)
	c.ConfigureRx(13, ctrl.RxConfig{Buf: sS, Base: 0x1000, EntryBytes: 96, Entries: 16,
		ShadowBase: 0x800, Logical: SvcLogicalQ, Interrupt: true, Enabled: true})
	c.ConfigureRx(14, ctrl.RxConfig{Buf: sS, Base: 0x2000, EntryBytes: 96, Entries: 16,
		ShadowBase: 0x808, Logical: MissLogicalQ, Interrupt: true, Enabled: true})
	return &fwRig{eng: eng, c: c, fw: fw, a: a, sS: sS}
}

func (r *fwRig) deliver(t *testing.T, f *txrx.Frame) {
	t.Helper()
	w, err := txrx.Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	if !r.c.TryReceive(w, sim.MsgTag{}) {
		t.Fatal("delivery refused")
	}
}

func TestDispatch(t *testing.T) {
	r := newFwRig(t)
	var gotSrc uint16
	var gotBody []byte
	r.fw.Register(0x55, func(p *sim.Proc, src uint16, body []byte) {
		gotSrc, gotBody = src, append([]byte(nil), body...)
	})
	r.fw.Start()
	r.deliver(t, &txrx.Frame{Kind: txrx.Data, SrcNode: 3, LogicalQ: SvcLogicalQ,
		Payload: []byte{0x55, 1, 2, 3}})
	r.eng.Run()
	if gotSrc != 3 || len(gotBody) != 3 || gotBody[0] != 1 {
		t.Fatalf("dispatch: src=%d body=%v", gotSrc, gotBody)
	}
	if r.fw.Stats().Messages != 1 {
		t.Fatalf("stats %+v", r.fw.Stats())
	}
	if r.fw.BusyTime() == 0 {
		t.Fatal("no sP occupancy recorded")
	}
}

func TestDispatchDrainsBatch(t *testing.T) {
	r := newFwRig(t)
	count := 0
	r.fw.Register(0x10, func(p *sim.Proc, src uint16, body []byte) { count++ })
	r.fw.Start()
	for i := 0; i < 5; i++ {
		r.deliver(t, &txrx.Frame{Kind: txrx.Data, LogicalQ: SvcLogicalQ, Payload: []byte{0x10}})
	}
	r.eng.Run()
	if count != 5 {
		t.Fatalf("handled %d of 5", count)
	}
}

func TestMissQueueHandler(t *testing.T) {
	r := newFwRig(t)
	var missLq uint16
	r.fw.SetMissHandler(func(p *sim.Proc, src uint16, lq uint16, body []byte) {
		missLq = lq
	})
	r.fw.Start()
	// Logical queue 777 is resident nowhere: CTRL diverts to the miss queue.
	r.deliver(t, &txrx.Frame{Kind: txrx.Data, LogicalQ: 777, Payload: []byte("lost")})
	r.eng.Run()
	if missLq != 777 {
		t.Fatalf("miss handler saw lq=%d", missLq)
	}
	if r.fw.Stats().MissServed != 1 {
		t.Fatalf("stats %+v", r.fw.Stats())
	}
}

func TestUnknownServicePanics(t *testing.T) {
	r := newFwRig(t)
	r.fw.Start()
	r.deliver(t, &txrx.Frame{Kind: txrx.Data, LogicalQ: SvcLogicalQ, Payload: []byte{0x99}})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown service")
		}
	}()
	r.eng.Run()
}

func TestDuplicateRegisterPanics(t *testing.T) {
	r := newFwRig(t)
	r.fw.Register(1, func(*sim.Proc, uint16, []byte) {})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	r.fw.Register(1, func(*sim.Proc, uint16, []byte) {})
}

func TestDoubleStartPanics(t *testing.T) {
	r := newFwRig(t)
	r.fw.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	r.fw.Start()
}

func TestProtViolationRouted(t *testing.T) {
	r := newFwRig(t)
	var gotQ int
	r.fw.SetProtViolationHandler(func(p *sim.Proc, q int) { gotQ = q })
	r.fw.Start()
	r.eng.Schedule(0, func() { r.fw.ProtViolation(7) })
	r.eng.Run()
	if gotQ != 7 {
		t.Fatalf("prot handler got %d", gotQ)
	}
	if r.fw.Stats().ProtViols != 1 {
		t.Fatalf("stats %+v", r.fw.Stats())
	}
}

func TestOccupancySerialized(t *testing.T) {
	// Two firmware activities occupying the sP must serialize.
	r := newFwRig(t)
	var done [2]sim.Time
	for i := 0; i < 2; i++ {
		i := i
		r.fw.Go("w", func(p *sim.Proc) {
			r.fw.Occupy(p, 1000)
			done[i] = p.Now()
		})
	}
	r.eng.Run()
	if done[0] != 1000 || done[1] != 2000 {
		t.Fatalf("occupancy not serialized: %v", done)
	}
}
