package firmware

import (
	"encoding/binary"

	"startvoyager/internal/bus"
	"startvoyager/internal/niu/ctrl"
	"startvoyager/internal/sim"
)

// MissRing implements the receive-queue-caching story of the paper: CTRL
// keeps a small number of logical receive queues resident in hardware;
// messages for any other logical destination divert to the miss/overflow
// queue, and this firmware writes them to their "non-resident (DRAM)
// location" — a ring buffer in main memory that the aP polls with ordinary
// cached loads (bus snooping keeps the polls coherent).
//
// Ring layout in DRAM:
//
//	Base+0   producer counter (8 bytes, written by firmware)
//	Base+8   consumer counter (8 bytes, written by the aP)
//	Base+32  slots: src(2) logicalQ(2) len(2) pad(2) payload (RingSlotBytes each)
type MissRing struct {
	e       *Engine
	base    uint32
	entries int

	producer uint32 // firmware's copy

	stats MissRingStats
}

// RingSlotBytes is the DRAM ring slot size (three cache lines).
const RingSlotBytes = 96

// RingHeaderBytes is the ring bookkeeping area before the first slot.
const RingHeaderBytes = 32

// MissRingStats counts overflow servicing.
type MissRingStats struct {
	Written uint64
	Dropped uint64 // ring full
}

// NewMissRing installs the default miss/overflow servicer, backing
// non-resident logical queues with a DRAM ring of the given geometry.
func NewMissRing(e *Engine, base uint32, entries int) *MissRing {
	r := &MissRing{e: e, base: base, entries: entries}
	e.SetMissHandler(r.onMiss)
	return r
}

// Stats returns a snapshot of counters.
func (r *MissRing) Stats() MissRingStats { return r.stats }

// Base returns the ring's DRAM base address.
func (r *MissRing) Base() uint32 { return r.base }

// Entries returns the ring capacity.
func (r *MissRing) Entries() int { return r.entries }

func (r *MissRing) slotAddr(ptr uint32) uint32 {
	return r.base + RingHeaderBytes + (ptr%uint32(r.entries))*RingSlotBytes
}

// onMiss writes one diverted message into the DRAM ring with command-queue
// bus operations, then publishes the new producer counter.
func (r *MissRing) onMiss(p *sim.Proc, src uint16, logicalQ uint16, payload []byte) {
	// Check for space: read the aP-owned consumer counter from DRAM.
	cons := &bus.Transaction{Kind: bus.ReadWord, Addr: r.base + 8, Data: make([]byte, 8)}
	g := sim.NewGate(p.Engine())
	r.e.IssueCommand(p, 0, &ctrl.BusOp{Base: ctrl.Base{Done: g.Open}, Tx: cons})
	g.Wait(p)
	consumer := uint32(binary.BigEndian.Uint64(cons.Data))
	if r.producer-consumer >= uint32(r.entries) {
		r.stats.Dropped++
		return
	}

	slot := make([]byte, RingSlotBytes)
	binary.BigEndian.PutUint16(slot[0:], src)
	binary.BigEndian.PutUint16(slot[2:], logicalQ)
	binary.BigEndian.PutUint16(slot[4:], uint16(len(payload)))
	copy(slot[8:], payload)
	addr := r.slotAddr(r.producer)
	for off := 0; off < RingSlotBytes; off += bus.LineSize {
		r.e.IssueCommand(p, 0, &ctrl.BusOp{
			Tx: &bus.Transaction{Kind: bus.WriteLine, Addr: addr + uint32(off),
				Data: slot[off : off+bus.LineSize]},
		})
	}
	r.producer++
	var prod [8]byte
	binary.BigEndian.PutUint64(prod[:], uint64(r.producer))
	// The producer update is ordered after the slot writes by the command
	// queue, so the aP never sees a counter ahead of the data.
	r.e.IssueCommand(p, 0, &ctrl.BusOp{
		Tx: &bus.Transaction{Kind: bus.WriteWord, Addr: r.base, Data: prod[:]},
	})
	r.stats.Written++
}
