package firmware

import (
	"encoding/binary"

	"startvoyager/internal/arctic"
	"startvoyager/internal/bus"
	"startvoyager/internal/niu/biu"
	"startvoyager/internal/niu/ctrl"
	"startvoyager/internal/niu/txrx"
	"startvoyager/internal/sim"
)

// Reflect is the firmware half of reflective memory (the paper's Shrimp /
// Memory Channel emulation, §5 "Extending Default Mechanisms"):
//
//   - in ReflectFirmware mode it receives captured writes from the aBIU and
//     sends the update messages (sP occupancy per write);
//   - in ReflectDeferred mode it services flush requests by reading the
//     aBIU's hardware dirty bits and propagating only the modified lines —
//     the clsSRAM-assisted diff-ing the paper describes for update-based
//     multi-writer protocols.
//
// ReflectHardware mode needs no firmware at all: the aBIU composes the
// update commands itself.
type Reflect struct {
	e      *Engine
	window bus.Range

	stats ReflectStats
}

// ReflectStats counts firmware reflective-memory activity.
type ReflectStats struct {
	Propagated uint64 // updates sent by firmware (eager firmware mode)
	Flushes    uint64 // deferred flush requests served
	DiffLines  uint64 // dirty lines propagated by flushes
}

// NewReflect installs the reflective-memory firmware on a node.
func NewReflect(e *Engine, window bus.Range) *Reflect {
	r := &Reflect{e: e, window: window}
	e.SetReflectCapture(r.onCapture)
	e.Register(SvcReflectFlush, r.onFlush)
	return r
}

// Stats returns a snapshot of counters.
func (r *Reflect) Stats() ReflectStats { return r.stats }

// onCapture propagates one captured write (eager firmware mode).
func (r *Reflect) onCapture(p *sim.Proc, op biu.CapturedOp) {
	off := r.window.Offset(op.Addr)
	subs := r.e.ABIU().ReflectSubscribers(off)
	for _, sub := range subs {
		r.stats.Propagated++
		cmdOp := txrx.CmdWriteDram
		if op.Kind == bus.WriteWord {
			cmdOp = txrx.CmdWriteWord
		}
		r.e.IssueCommand(p, 0, &ctrl.SendMsg{
			Frame: &txrx.Frame{Kind: txrx.Cmd, Op: cmdOp, Addr: op.Addr,
				Payload: append([]byte(nil), op.Data...)},
			Dest:     uint16(sub),
			Priority: arctic.Low,
		})
	}
}

// FlushRequest encodes an aP request to propagate dirty lines of
// [Off, Off+Len) to the region's subscribers and then notify the local aP.
type FlushRequest struct {
	Off uint32
	Len int
	Tag uint32
}

// EncodeFlushRequest serializes a flush request.
func EncodeFlushRequest(f FlushRequest) []byte {
	b := make([]byte, 12)
	binary.BigEndian.PutUint32(b[0:], f.Off)
	binary.BigEndian.PutUint32(b[4:], uint32(f.Len))
	binary.BigEndian.PutUint32(b[8:], f.Tag)
	return b
}

// DecodeFlushRequest parses a flush request.
func DecodeFlushRequest(b []byte) FlushRequest {
	return FlushRequest{
		Off: binary.BigEndian.Uint32(b[0:]),
		Len: int(binary.BigEndian.Uint32(b[4:])),
		Tag: binary.BigEndian.Uint32(b[8:]),
	}
}

// onFlush services a deferred-mode flush: scan hardware dirty bits, read
// each dirty line from the local window frame, send it to every subscriber,
// then notify the requesting aP.
func (r *Reflect) onFlush(p *sim.Proc, src uint16, body []byte) {
	req := DecodeFlushRequest(body)
	r.stats.Flushes++
	r.e.Go("reflect-flush", func(p *sim.Proc) {
		lines := r.e.ABIU().ReflectDirtyLines(req.Off, req.Len)
		// Reading the hardware dirty bitmap is cheap (one block access per
		// 256 lines), unlike a software page diff.
		scan := sim.Time((req.Len/bus.LineSize)/256 + 1)
		r.e.Occupy(p, r.e.costs.Handler+scan*r.e.costs.Dispatch/4)
		for _, line := range lines {
			r.stats.DiffLines++
			addr := r.window.Base + uint32(line)*bus.LineSize
			tx := &bus.Transaction{Kind: bus.ReadLine, Addr: addr,
				Data: make([]byte, bus.LineSize)}
			g := sim.NewGate(p.Engine())
			r.e.IssueCommand(p, 0, &ctrl.BusOp{
				Base: ctrl.Base{Done: g.Open},
				Tx:   tx,
			})
			g.Wait(p)
			for _, sub := range r.e.ABIU().ReflectSubscribers(uint32(line) * bus.LineSize) {
				r.e.IssueCommand(p, 0, &ctrl.SendMsg{
					Frame: &txrx.Frame{Kind: txrx.Cmd, Op: txrx.CmdWriteDram,
						Addr: addr, Payload: append([]byte(nil), tx.Data...)},
					Dest:     uint16(sub),
					Priority: arctic.Low,
				})
			}
		}
		// Completion: notify the local aP after the updates have drained
		// through the (in-order) command queue.
		var tag [8]byte
		binary.BigEndian.PutUint32(tag[:], req.Tag)
		binary.BigEndian.PutUint32(tag[4:], uint32(len(lines)))
		r.e.IssueCommand(p, 0, &ctrl.SendMsg{
			Frame: &txrx.Frame{Kind: txrx.Data, LogicalQ: NotifyLogicalQ,
				Payload: tag[:]},
			Dest:     uint16(r.e.node),
			Priority: arctic.Low,
		})
	})
}
