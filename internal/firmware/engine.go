// Package firmware models the service processor (sP) — the embedded 604
// that executes NIU firmware — together with the default firmware services:
// the miss/overflow queue servicer, the DMA engine, and the NUMA and S-COMA
// shared-memory protocols.
//
// The sP is a serialized execution resource: every firmware activity
// occupies it for a modeled duration, so experiments can measure firmware
// occupancy — the quantity the paper identifies as "extremely important"
// when comparing mechanism implementations. Waiting for hardware (command
// completions, bus operations) does not hold the sP.
package firmware

import (
	"fmt"

	"startvoyager/internal/arctic"
	"startvoyager/internal/niu/biu"
	"startvoyager/internal/niu/ctrl"
	"startvoyager/internal/niu/txrx"
	"startvoyager/internal/sim"
	"startvoyager/internal/stats"
)

// Costs models sP occupancy per firmware activity.
type Costs struct {
	Dispatch sim.Time // interrupt entry / queue poll (default 300 ns)
	Handler  sim.Time // base handler body (default 250 ns)
	PerByte  sim.Time // per payload byte touched by the sP (default 4 ns)
	CmdIssue sim.Time // issuing one CTRL command (default 150 ns)
}

// DefaultCosts returns occupancy numbers for an unoptimized 604 firmware,
// matching the paper's caveat that its measurements use "very general and
// unoptimized" code.
func DefaultCosts() Costs {
	return Costs{Dispatch: 300 * sim.Nanosecond, Handler: 250 * sim.Nanosecond,
		PerByte: 4 * sim.Nanosecond, CmdIssue: 150 * sim.Nanosecond}
}

// Handler processes one service message delivered to the sP service queue.
type Handler func(p *sim.Proc, src uint16, payload []byte)

// MissHandler processes a message that fell into the miss/overflow queue.
type MissHandler func(p *sim.Proc, src uint16, logicalQ uint16, payload []byte)

// CaptureHandler processes a bus operation forwarded by the aBIU.
type CaptureHandler func(p *sim.Proc, op biu.CapturedOp)

// Engine is one node's firmware execution engine.
type Engine struct {
	sim   *sim.Engine
	node  int
	sb    *biu.SBIU
	res   *sim.Resource
	costs Costs

	svcQueue  int // physical rx queue carrying service messages
	missQueue int // physical miss/overflow queue (-1: none)

	handlers   map[byte]Handler
	missH      MissHandler
	scomaCap   CaptureHandler
	numaCap    CaptureHandler
	reflectCap CaptureHandler
	protViol   func(p *sim.Proc, q int)
	rxNotify   *sim.Queue[int]
	protNotify *sim.Queue[int]
	started    bool

	// curMsg is the trace tag of the message whose handler is currently
	// executing (zero outside handler context). Handlers run one at a time
	// on the msgLoop, so services read it synchronously to link the messages
	// they originate back to their cause; work they defer to other procs
	// (DMA pushes, retransmit timers) must capture it at handler time.
	curMsg sim.MsgTag

	stats Stats
}

// Stats counts firmware activity.
type Stats struct {
	Messages   uint64
	MissServed uint64
	Captures   uint64
	ProtViols  uint64
}

// New creates the firmware engine for a node. svcQueue is the physical
// receive queue whose messages are dispatched to registered handlers;
// missQueue (-1 to disable) is drained by the miss handler.
func New(s *sim.Engine, node int, sb *biu.SBIU, svcQueue, missQueue int, costs Costs) *Engine {
	if costs == (Costs{}) {
		costs = DefaultCosts()
	}
	e := &Engine{
		sim: s, node: node, sb: sb, costs: costs,
		res:        sim.NewResource(s, fmt.Sprintf("sp%d", node)),
		svcQueue:   svcQueue,
		missQueue:  missQueue,
		handlers:   make(map[byte]Handler),
		rxNotify:   sim.NewQueue[int](s),
		protNotify: sim.NewQueue[int](s),
	}
	e.res.Observe(node, "sP")
	e.rxNotify.Observe(node, "fw", "rx-int-pending")
	e.protNotify.Observe(node, "fw", "prot-pending")
	return e
}

// Node returns the node id.
func (e *Engine) Node() int { return e.node }

// Ctrl returns the immediate CTRL interface.
func (e *Engine) Ctrl() *ctrl.Ctrl { return e.sb.Ctrl() }

// ABIU returns the node's aBIU.
func (e *Engine) ABIU() *biu.ABIU { return e.sb.ABIU() }

// Costs returns the occupancy model.
func (e *Engine) Costs() Costs { return e.costs }

// Stats returns a snapshot of counters.
func (e *Engine) Stats() Stats { return e.stats }

// BusyTime returns accumulated sP occupancy.
func (e *Engine) BusyTime() sim.Time { return e.res.BusyTime() }

// IdleTime returns accumulated sP idle time — the complement of BusyTime
// over the run so far, so occupancy is computable from either.
func (e *Engine) IdleTime() sim.Time { return e.sim.Now() - e.res.BusyTime() }

// RegisterMetrics registers the firmware engine's counters under r.
func (e *Engine) RegisterMetrics(r *stats.Registry) {
	r.Gauge("messages", func() int64 { return int64(e.stats.Messages) })
	r.Gauge("miss_served", func() int64 { return int64(e.stats.MissServed) })
	r.Gauge("captures", func() int64 { return int64(e.stats.Captures) })
	r.Gauge("prot_viols", func() int64 { return int64(e.stats.ProtViols) })
	r.Time("sp_busy", e.res.BusyTime)
	r.Time("sp_idle", e.IdleTime)
}

// Register installs h for service id svc (the first payload byte).
func (e *Engine) Register(svc byte, h Handler) {
	if _, dup := e.handlers[svc]; dup {
		panic(fmt.Sprintf("firmware: node %d: duplicate service %#x", e.node, svc))
	}
	e.handlers[svc] = h
}

// SetMissHandler installs the miss/overflow queue servicer.
func (e *Engine) SetMissHandler(h MissHandler) { e.missH = h }

// SetScomaCapture installs the S-COMA captured-op handler.
func (e *Engine) SetScomaCapture(h CaptureHandler) { e.scomaCap = h }

// SetNumaCapture installs the NUMA captured-op handler.
func (e *Engine) SetNumaCapture(h CaptureHandler) { e.numaCap = h }

// SetReflectCapture installs the reflective-memory captured-write handler.
func (e *Engine) SetReflectCapture(h CaptureHandler) { e.reflectCap = h }

// SetProtViolationHandler installs the protection-shutdown handler.
func (e *Engine) SetProtViolationHandler(h func(p *sim.Proc, q int)) { e.protViol = h }

// RxInterrupt implements ctrl.IntPort.
func (e *Engine) RxInterrupt(q int) { e.rxNotify.Push(q) }

// ProtViolation implements ctrl.IntPort.
func (e *Engine) ProtViolation(q int) { e.protNotify.Push(q) }

// Occupy charges d of sP time to the calling firmware activity.
func (e *Engine) Occupy(p *sim.Proc, d sim.Time) { e.res.UseP(p, d) }

// Go runs fn as an asynchronous firmware continuation (its occupancy charges
// are made through Occupy as usual).
func (e *Engine) Go(name string, fn func(p *sim.Proc)) {
	e.sim.SpawnOn(e.node, "sP", fmt.Sprintf("fw%d-%s", e.node, name), fn)
}

// IssueCommand charges command-issue occupancy and enqueues cmd on CTRL
// local command queue q.
func (e *Engine) IssueCommand(p *sim.Proc, q int, cmd ctrl.Command) {
	e.Occupy(p, e.costs.CmdIssue)
	e.Ctrl().IssueCommand(q, cmd)
}

// Start spawns the firmware loops. Call once, after all registration.
func (e *Engine) Start() {
	if e.started {
		panic("firmware: double start")
	}
	e.started = true
	e.Go("msgloop", e.msgLoop)
	e.Go("caploop", e.captureLoop)
	e.Go("protloop", e.protLoop)
}

// msgLoop drains interrupt-enabled receive queues and dispatches messages.
func (e *Engine) msgLoop(p *sim.Proc) {
	c := e.Ctrl()
	for {
		q := e.rxNotify.Pop(p)
		e.Occupy(p, e.costs.Dispatch)
		for c.RxProducer(q) != c.RxConsumer(q) {
			ptr := c.RxConsumer(q)
			src, logical, payload := c.ReadRxSlot(q, ptr)
			tag := c.RxTag(q, ptr)
			// The sP reads the message header; handlers moving bulk payload
			// through their own hands charge PerByte themselves (the whole
			// point of TagOn and command-queue data movement is that they
			// usually do not).
			hdr := len(payload)
			if hdr > 16 {
				hdr = 16
			}
			e.Occupy(p, e.costs.Handler+sim.Time(hdr)*e.costs.PerByte)
			c.RxConsumerUpdate(q, ptr+1)
			// The sP dispatch is the terminal causal stage for messages it
			// consumes; derived messages the handler originates link back
			// through curMsg.
			e.traceMsg("msg-consume", tag, sim.Int("rxq", q))
			e.curMsg = tag
			// One span per handled message on the node's "fw" track. Only
			// this loop opens "fw" spans, so they never overlap (the other
			// loops emit instants); sP occupancy itself is traced by the
			// observed sp resource on the "sP" track.
			switch {
			case q == e.missQueue:
				e.stats.MissServed++
				if e.missH != nil {
					span := e.handlerSpan("miss", src)
					e.sim.ProfPush("miss")
					e.missH(p, src, logical, payload)
					e.sim.ProfPop()
					span.End()
				}
			default:
				e.stats.Messages++
				span := e.handlerSpan("svc", src)
				e.dispatch(p, src, payload)
				span.End()
			}
			e.curMsg = sim.MsgTag{}
		}
	}
}

// handlerSpan opens a dispatch span on the "fw" track (inert when tracing
// is off).
func (e *Engine) handlerSpan(name string, src uint16) sim.Span {
	if !e.sim.Observed() {
		return sim.Span{}
	}
	return e.sim.BeginSpan(e.node, "fw", name, sim.Int("src", int(src)))
}

func (e *Engine) dispatch(p *sim.Proc, src uint16, payload []byte) {
	if len(payload) == 0 {
		return
	}
	h := e.handlers[payload[0]]
	if h == nil {
		panic(fmt.Sprintf("firmware: node %d: no handler for service %#x", e.node, payload[0]))
	}
	e.sim.ProfPush(SvcName(payload[0]))
	h(p, src, payload[1:])
	e.sim.ProfPop()
}

// captureLoop serves bus operations forwarded from the aBIU.
func (e *Engine) captureLoop(p *sim.Proc) {
	q := e.sb.Captured()
	for {
		op := q.Pop(p)
		e.stats.Captures++
		if e.sim.Observed() {
			kind := "numa"
			if op.Reflect {
				kind = "reflect"
			} else if op.Scoma {
				kind = "scoma"
			}
			e.sim.Instant(e.node, "fw", "capture", sim.Str("kind", kind))
		}
		e.Occupy(p, e.costs.Dispatch)
		switch {
		case op.Reflect:
			if e.reflectCap == nil {
				panic(fmt.Sprintf("firmware: node %d: reflect capture with no service", e.node))
			}
			e.sim.ProfPush("capture-reflect")
			e.reflectCap(p, op)
			e.sim.ProfPop()
		case op.Scoma:
			if e.scomaCap == nil {
				panic(fmt.Sprintf("firmware: node %d: S-COMA capture with no protocol", e.node))
			}
			e.sim.ProfPush("capture-scoma")
			e.scomaCap(p, op)
			e.sim.ProfPop()
		default:
			if e.numaCap == nil {
				panic(fmt.Sprintf("firmware: node %d: NUMA capture with no protocol", e.node))
			}
			e.sim.ProfPush("capture-numa")
			e.numaCap(p, op)
			e.sim.ProfPop()
		}
	}
}

// protLoop handles protection-violation interrupts.
func (e *Engine) protLoop(p *sim.Proc) {
	for {
		q := e.protNotify.Pop(p)
		e.stats.ProtViols++
		e.sim.Instant(e.node, "fw", "prot-viol", sim.Int("q", q))
		e.Occupy(p, e.costs.Dispatch)
		if e.protViol != nil {
			e.protViol(p, q)
		}
	}
}

// CurMsgID returns the trace id of the message whose handler is currently
// executing (0 outside handler context). Services that defer work to spawned
// procs capture it at handler time to parent the messages that work emits.
func (e *Engine) CurMsgID() uint64 { return e.curMsg.ID }

// traceMsg emits one causal lifecycle instant for a traced message on this
// node's "fw" track. No-op for untraced messages (tag.ID == 0).
func (e *Engine) traceMsg(name string, tag sim.MsgTag, extra ...sim.Field) {
	if !tag.Traced() || !e.sim.Observed() {
		return
	}
	fields := make([]sim.Field, 0, 3+len(extra))
	fields = append(fields, sim.I64("msg", int64(tag.ID)))
	if tag.Attempt > 1 {
		fields = append(fields, sim.I64("attempt", int64(tag.Attempt)))
	}
	if tag.Parent != 0 {
		fields = append(fields, sim.I64("parent", int64(tag.Parent)))
	}
	fields = append(fields, extra...)
	e.sim.Instant(e.node, "fw", name, fields...)
}

// SendSvc issues a service message (svc id + body) to destNode's service
// queue via a CTRL SendMsg command. Protocol replies use the high-priority
// network lane to stay deadlock-free; requests use the low lane. The new
// message's trace context links back to the message being handled; callers
// outside handler context (retransmit timers) use SendSvcTagged.
func (e *Engine) SendSvc(p *sim.Proc, destNode int, svc byte, body []byte,
	pri arctic.Priority, done func()) {
	e.SendSvcTagged(p, destNode, svc, body, pri, sim.MsgTag{Parent: e.curMsg.ID}, done)
}

// SendSvcTagged is SendSvc with an explicit trace context: a zero-ID tag is
// allocated a fresh message id at launch, while a tagged one (reliable
// retransmissions) keeps its identity across attempts.
func (e *Engine) SendSvcTagged(p *sim.Proc, destNode int, svc byte, body []byte,
	pri arctic.Priority, tag sim.MsgTag, done func()) {
	payload := append([]byte{svc}, body...)
	e.IssueCommand(p, 0, &ctrl.SendMsg{
		Base: ctrl.Base{Done: done},
		Frame: &txrx.Frame{Kind: txrx.Data, LogicalQ: SvcLogicalQ, Payload: payload,
			Trace: tag},
		Dest:     uint16(destNode),
		Priority: pri,
	})
}
