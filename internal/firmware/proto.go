package firmware

// Well-known logical receive queue numbers. Every node configures a
// hardware receive queue with each of these logical ids, so firmware on any
// node can address firmware on any other without consulting per-node tables.
const (
	// SvcLogicalQ is the sP service queue: all firmware-to-firmware protocol
	// messages arrive here.
	SvcLogicalQ uint16 = 0xFF00
	// MissLogicalQ tags the miss/overflow queue itself (no sender targets it
	// directly; CTRL diverts into it).
	MissLogicalQ uint16 = 0xFFFF
	// NotifyLogicalQ is the aP completion-notification queue (the node
	// package maps it to a hardware queue).
	NotifyLogicalQ uint16 = 0x0003
	// RelLogicalQ receives reliably-delivered payloads: the R-Basic service
	// on the sP lands each in-order message here for the aP to read.
	RelLogicalQ uint16 = 0x0004
	// RelStatusLogicalQ receives per-send completion statuses from the local
	// R-Basic service (delivered-or-failed, matched to the send by tag).
	RelStatusLogicalQ uint16 = 0x0005
)

// Firmware service identifiers (first payload byte of service messages).
const (
	// S-COMA directory protocol.
	SvcScomaGet        byte = 0x01 // client -> home: read miss
	SvcScomaGetX       byte = 0x02 // client -> home: write miss / upgrade
	SvcScomaInval      byte = 0x03 // home -> sharer: invalidate
	SvcScomaInvalAck   byte = 0x04 // sharer -> home
	SvcScomaRecall     byte = 0x05 // home -> owner: recall (Aux: share?)
	SvcScomaRecallData byte = 0x06 // owner -> home: recalled line data
	SvcScomaEvict      byte = 0x07 // client -> home: release my copy of a line

	// NUMA protocol.
	SvcNumaRead     byte = 0x10 // client -> home: uncached read
	SvcNumaReply    byte = 0x11 // home -> client: read data
	SvcNumaWrite    byte = 0x12 // client -> home: uncached write
	SvcNumaWriteAck byte = 0x13 // home -> client: write applied

	// DMA engine.
	SvcDmaRequest byte = 0x20 // aP -> local sP: start a transfer
	SvcDmaRemote  byte = 0x21 // sP -> remote sP: remote-read request

	// Reflective memory.
	SvcReflectFlush byte = 0x30 // aP -> local sP: propagate dirty lines

	// Reliable delivery (R-Basic).
	SvcRelSend byte = 0x38 // aP -> local sP: submit a reliable send
	SvcRelData byte = 0x39 // sP -> remote sP: sequenced reliable data
	SvcRelAck  byte = 0x3A // receiver sP -> sender sP: cumulative ACK

	// First id available to applications and experiments (the blockxfer
	// approaches register their own services from here up).
	SvcUserBase byte = 0x40
)
