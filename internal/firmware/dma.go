package firmware

import (
	"encoding/binary"
	"fmt"

	"startvoyager/internal/arctic"
	"startvoyager/internal/bus"
	"startvoyager/internal/niu/ctrl"
	"startvoyager/internal/sim"
)

// DmaConfig sizes the DMA engine's staging area in aSRAM.
type DmaConfig struct {
	StagingBase uint32 // aSRAM offset of the staging buffers
	StagingSize int    // total staging bytes; split into two halves
}

// DmaRequest is a block-copy request submitted to the local sP (the aP
// library encodes this into a service message). Push copies local DRAM to a
// remote node; Pull asks the remote sP to push back.
type DmaRequest struct {
	Pull     bool
	PeerNode int    // remote node (source for Pull, destination for Push)
	SrcAddr  uint32 // address in the source node's DRAM
	DstAddr  uint32 // address in the destination node's DRAM
	Len      int
	NotifyQ  uint16 // logical queue (at the destination) for completion
	Tag      uint32 // opaque tag carried in the notification
}

const dmaReqBytes = 20

// EncodeDmaRequest serializes a request for the service message payload.
func EncodeDmaRequest(r DmaRequest) []byte {
	b := make([]byte, dmaReqBytes)
	if r.Pull {
		b[0] = 1
	}
	b[1] = byte(r.PeerNode)
	binary.BigEndian.PutUint32(b[2:], r.SrcAddr)
	binary.BigEndian.PutUint32(b[6:], r.DstAddr)
	binary.BigEndian.PutUint32(b[10:], uint32(r.Len))
	binary.BigEndian.PutUint16(b[14:], r.NotifyQ)
	binary.BigEndian.PutUint32(b[16:], r.Tag)
	return b
}

// DecodeDmaRequest parses a service message payload.
func DecodeDmaRequest(b []byte) DmaRequest {
	if len(b) < dmaReqBytes {
		panic(fmt.Sprintf("firmware: short DMA request (%d bytes)", len(b)))
	}
	return DmaRequest{
		Pull:     b[0] != 0,
		PeerNode: int(b[1]),
		SrcAddr:  binary.BigEndian.Uint32(b[2:]),
		DstAddr:  binary.BigEndian.Uint32(b[6:]),
		Len:      int(binary.BigEndian.Uint32(b[10:])),
		NotifyQ:  binary.BigEndian.Uint16(b[14:]),
		Tag:      binary.BigEndian.Uint32(b[16:]),
	}
}

// Dma is the firmware DMA engine: it decomposes arbitrarily large transfers
// into page-respecting BlockRead + BlockTx chains (the paper's approach 3
// machinery), double-buffering through the aSRAM staging area.
type Dma struct {
	e    *Engine
	cfg  DmaConfig
	lock *sim.Resource // serializes transfers (staging buffer owner)

	stats DmaStats
}

// DmaStats counts DMA activity.
type DmaStats struct {
	Transfers, Chunks uint64
	Bytes             uint64
}

// NewDma installs the DMA service on a node's firmware engine.
func NewDma(e *Engine, cfg DmaConfig) *Dma {
	if cfg.StagingSize < 2*bus.LineSize {
		panic("firmware: DMA staging too small")
	}
	d := &Dma{e: e, cfg: cfg,
		lock: sim.NewResource(e.sim, fmt.Sprintf("dma%d", e.node))}
	e.Register(SvcDmaRequest, d.onRequest)
	e.Register(SvcDmaRemote, d.onRemote)
	return d
}

// Stats returns a snapshot of counters.
func (d *Dma) Stats() DmaStats { return d.stats }

// onRequest handles a transfer request from the local aP.
func (d *Dma) onRequest(p *sim.Proc, src uint16, body []byte) {
	req := DecodeDmaRequest(body)
	if req.Pull {
		// Forward to the remote sP, which performs the push back to us.
		fwd := req
		fwd.Pull = false
		fwd.PeerNode = d.e.node
		d.e.SendSvc(p, req.PeerNode, SvcDmaRemote, EncodeDmaRequest(fwd), arctic.Low, nil)
		return
	}
	d.push(req, d.e.curMsg.ID)
}

// onRemote handles a push request arriving from another node's sP.
func (d *Dma) onRemote(p *sim.Proc, src uint16, body []byte) {
	d.push(DecodeDmaRequest(body), d.e.curMsg.ID)
}

// push runs a local-DRAM -> remote-DRAM transfer as its own firmware
// activity (the msgLoop is not held for the duration). parent is the trace
// id of the request message, captured at handler time — the spawned proc
// runs after curMsg has been cleared.
func (d *Dma) push(req DmaRequest, parent uint64) {
	if req.Len <= 0 || req.Len%bus.LineSize != 0 ||
		req.SrcAddr%bus.LineSize != 0 || req.DstAddr%bus.LineSize != 0 {
		panic(fmt.Sprintf("firmware: node %d: bad DMA geometry %+v", d.e.node, req))
	}
	d.e.Go("dma-push", func(p *sim.Proc) {
		d.lock.AcquireP(p) // own the staging area for the whole transfer
		d.runPush(p, req, parent)
	})
}

// runPush performs the chunk loop with double buffering: while one staging
// half is being transmitted, the next chunk is read into the other half.
func (d *Dma) runPush(p *sim.Proc, req DmaRequest, parent uint64) {
	d.stats.Transfers++
	half := d.cfg.StagingSize / 2
	half -= half % bus.LineSize
	free := [2]*sim.Gate{sim.NewGate(p.Engine()), sim.NewGate(p.Engine())}
	free[0].Open()
	free[1].Open()
	txDone := sim.NewGate(p.Engine())

	offset, buf := 0, 0
	remaining := req.Len
	for remaining > 0 {
		n := remaining
		if n > half {
			n = half
		}
		// Respect page boundaries on both sides.
		if rem := int(ctrl.PageBytes - (req.SrcAddr+uint32(offset))%ctrl.PageBytes); n > rem {
			n = rem
		}
		if rem := int(ctrl.PageBytes - (req.DstAddr+uint32(offset))%ctrl.PageBytes); n > rem {
			n = rem
		}
		free[buf].Wait(p) // staging half still owned by a previous BlockTx?
		stageOff := d.cfg.StagingBase + uint32(buf*half)
		// Block read: DRAM -> aSRAM; wait for the unit (the BlockTx below
		// needs the data in place).
		brDone := sim.NewGate(p.Engine())
		d.e.IssueCommand(p, 0, &ctrl.BlockRead{
			Base:     ctrl.Base{Done: brDone.Open},
			DramAddr: req.SrcAddr + uint32(offset), SramOff: stageOff, Len: n,
		})
		brDone.Wait(p)
		d.stats.Chunks++
		d.stats.Bytes += uint64(n)

		last := remaining-n <= 0
		bt := &ctrl.BlockTx{
			Buf: d.e.Ctrl().ASram(), SramOff: stageOff, Len: n,
			DestNode: req.PeerNode, DestAddr: req.DstAddr + uint32(offset),
			Priority: arctic.Low, TraceParent: parent,
		}
		reuse := free[buf]
		reuse.Close()
		bt.Done = func() {
			reuse.Open()
			if last {
				txDone.Open()
			}
		}
		if last && req.NotifyQ != 0 {
			var tag [8]byte
			binary.BigEndian.PutUint32(tag[:], req.Tag)
			binary.BigEndian.PutUint32(tag[4:], uint32(req.Len))
			bt.NotifyQ = req.NotifyQ
			bt.NotifyPayload = tag[:]
		}
		d.e.IssueCommand(p, 0, bt)

		offset += n
		remaining -= n
		buf ^= 1
	}
	txDone.Wait(p)
	d.lock.Release()
}
