package firmware

import (
	"encoding/binary"
	"fmt"
	"sort"

	"startvoyager/internal/arctic"
	"startvoyager/internal/bus"
	"startvoyager/internal/niu/biu"
	"startvoyager/internal/niu/ctrl"
	"startvoyager/internal/niu/sram"
	"startvoyager/internal/niu/txrx"
	"startvoyager/internal/sim"
)

// ScomaConfig describes the S-COMA shared space. Every node maps the same
// global window; each node's DRAM frames behind the window act as its L3
// cache (clsSRAM holds the per-line state). Pages are interleaved across
// home nodes; the home keeps the directory entry and a backing copy of each
// of its lines at BackingBase in its local DRAM.
type ScomaConfig struct {
	Window      bus.Range
	BackingBase uint32
	NumNodes    int
	// Migratory enables the classic migratory-sharing optimization: once a
	// line shows a read-then-upgrade pattern, subsequent read misses are
	// granted exclusively, eliminating the upgrade round trip. A protocol
	// variant selectable per machine — the experimentation the platform is
	// for.
	Migratory bool
}

// dirState is the home directory state of one line.
type dirState int

const (
	dirUncached dirState = iota
	dirShared
	dirExcl
)

type dirReq struct {
	node  int
	wantX bool
	evict bool // release the requester's copy instead of granting one
}

type dirEntry struct {
	state   dirState
	sharers map[int]bool
	owner   int

	busy          bool
	cur           dirReq
	pendingInvals int
	waiting       []dirReq

	// Migratory detection: a reader that promptly upgrades marks the line.
	lastReader int
	migratory  bool
}

// Scoma implements the default S-COMA protocol: an MSI directory run by sP
// firmware, with data grants delivered through the destination's remote
// command queue (CmdWriteDramCls / CmdSetCls) so that the requesting node's
// firmware never runs on the return path — the property the paper calls out.
type Scoma struct {
	e   *Engine
	cfg ScomaConfig
	dir map[uint32]*dirEntry

	stats ScomaStats
}

// ScomaStats counts protocol activity.
type ScomaStats struct {
	Gets, GetXs, Invals, Recalls, Regrants uint64
	MigratoryGrants                        uint64 // reads granted RW by the heuristic
	Evicts                                 uint64 // frame releases processed
}

// NewScoma installs the S-COMA protocol on a node's firmware engine.
func NewScoma(e *Engine, cfg ScomaConfig) *Scoma {
	s := &Scoma{e: e, cfg: cfg, dir: make(map[uint32]*dirEntry)}
	e.SetScomaCapture(s.onCapture)
	e.Register(SvcScomaGet, s.onGet)
	e.Register(SvcScomaGetX, s.onGetX)
	e.Register(SvcScomaInval, s.onInval)
	e.Register(SvcScomaInvalAck, s.onInvalAck)
	e.Register(SvcScomaRecall, s.onRecall)
	e.Register(SvcScomaRecallData, s.onRecallData)
	e.Register(SvcScomaEvict, s.onEvict)
	return s
}

// Stats returns a snapshot of counters.
func (s *Scoma) Stats() ScomaStats { return s.stats }

// Page-interleaved home assignment.
const linesPerPage = ctrl.PageBytes / bus.LineSize

// ScomaHome returns the home node of a global S-COMA line under the
// page-interleaved assignment (exported so layer-0 software can route
// protocol requests such as evictions).
func ScomaHome(line uint32, numNodes int) int {
	return int(line/linesPerPage) % numNodes
}

// homeOf returns the home node of a global line.
func (s *Scoma) homeOf(line uint32) int {
	return ScomaHome(line, s.cfg.NumNodes)
}

// backingAddr returns the home-local DRAM address of a line's backing copy.
func (s *Scoma) backingAddr(line uint32) uint32 {
	page := line / linesPerPage
	idx := page/uint32(s.cfg.NumNodes)*linesPerPage + line%linesPerPage
	return s.cfg.BackingBase + idx*bus.LineSize
}

// windowAddr returns the global window address of a line.
func (s *Scoma) windowAddr(line uint32) uint32 {
	return s.cfg.Window.Base + line*bus.LineSize
}

func (s *Scoma) lineOf(addr uint32) uint32 {
	return s.cfg.Window.Offset(addr) / bus.LineSize
}

// --- client side ---

// onCapture handles an aP access that failed the clsSRAM state check.
func (s *Scoma) onCapture(p *sim.Proc, op biu.CapturedOp) {
	line := s.lineOf(op.Addr)
	wantX := op.Kind == bus.ReadLineX || op.Kind == bus.Kill || op.Kind == bus.WriteWord ||
		op.Kind == bus.WriteLine
	// Mark Pending so further aP retries stall silently.
	s.e.Ctrl().Cls().Set(int(line), sram.CLPending)
	svc := SvcScomaGet
	if wantX {
		svc = SvcScomaGetX
		s.stats.GetXs++
	} else {
		s.stats.Gets++
	}
	var body [4]byte
	binary.BigEndian.PutUint32(body[:], line)
	s.e.SendSvc(p, s.homeOf(line), svc, body[:], arctic.Low, nil)
}

// onInval invalidates a shared copy at this client.
func (s *Scoma) onInval(p *sim.Proc, src uint16, body []byte) {
	line := binary.BigEndian.Uint32(body)
	s.e.Ctrl().Cls().Set(int(line), sram.CLInvalid)
	s.e.ABIU().ClearScomaNotify(int(line))
	home := int(src)
	// Evict any cached copy from the aP cache, then acknowledge.
	s.e.IssueCommand(p, 0, &ctrl.BusOp{
		Base: ctrl.Base{Done: func() {
			s.e.Go("scoma-invalack", func(p *sim.Proc) {
				s.e.Occupy(p, s.e.costs.Handler)
				s.e.SendSvc(p, home, SvcScomaInvalAck, body[:4], arctic.High, nil)
			})
		}},
		Tx: &bus.Transaction{Kind: bus.Kill, Addr: s.windowAddr(line)},
	})
}

// onRecall surrenders (share=keep a read-only copy) or gives up ownership.
//
// Order matters: write permission is revoked (cls -> RO) BEFORE the line is
// read. The read's intervention downgrades any Modified cache copy, and
// with cls at RO a subsequent store's Kill upgrade is retried and captured —
// so no write can slip in after the recalled data has been captured. (This
// ordering was originally wrong and found by the memcheck linearizability
// torture test.)
func (s *Scoma) onRecall(p *sim.Proc, src uint16, body []byte) {
	line := binary.BigEndian.Uint32(body)
	share := body[4] != 0
	home := int(src)
	addr := s.windowAddr(line)
	// 1. Revoke write permission first.
	s.e.Ctrl().Cls().Set(int(line), sram.CLReadOnly)
	// 2. Read the line from the local frame: if the aP cache holds it
	// modified, intervention supplies the fresh data and downgrades it.
	tx := &bus.Transaction{Kind: bus.ReadLine, Addr: addr, Data: make([]byte, bus.LineSize)}
	s.e.IssueCommand(p, 0, &ctrl.BusOp{
		Base: ctrl.Base{Done: func() {
			s.e.Go("scoma-recall", func(p *sim.Proc) {
				s.e.Occupy(p, s.e.costs.Handler)
				if !share {
					s.e.Ctrl().Cls().Set(int(line), sram.CLInvalid)
					s.e.ABIU().ClearScomaNotify(int(line))
					s.e.IssueCommand(p, 0, &ctrl.BusOp{
						Tx: &bus.Transaction{Kind: bus.Kill, Addr: addr}})
				}
				reply := make([]byte, 4+bus.LineSize)
				binary.BigEndian.PutUint32(reply, line)
				copy(reply[4:], tx.Data)
				s.e.SendSvc(p, home, SvcScomaRecallData, reply, arctic.High, nil)
			})
		}},
		Tx: tx,
	})
}

// --- home side ---

func (s *Scoma) entry(line uint32) *dirEntry {
	e := s.dir[line]
	if e == nil {
		e = &dirEntry{sharers: make(map[int]bool)}
		s.dir[line] = e
	}
	return e
}

func (s *Scoma) onGet(p *sim.Proc, src uint16, body []byte) {
	s.admit(p, binary.BigEndian.Uint32(body), dirReq{node: int(src), wantX: false})
}

func (s *Scoma) onGetX(p *sim.Proc, src uint16, body []byte) {
	s.admit(p, binary.BigEndian.Uint32(body), dirReq{node: int(src), wantX: true})
}

// onEvict releases the requester's copy of a line (S-COMA frames are a
// cache; software reclaims frames under memory pressure). Eviction is
// serialized through the home like any other request, reusing the recall
// machinery, so it cannot race a concurrent grant.
func (s *Scoma) onEvict(p *sim.Proc, src uint16, body []byte) {
	s.admit(p, binary.BigEndian.Uint32(body), dirReq{node: int(src), evict: true})
}

func (s *Scoma) admit(p *sim.Proc, line uint32, req dirReq) {
	e := s.entry(line)
	if e.busy {
		e.waiting = append(e.waiting, req)
		return
	}
	s.process(p, line, e, req)
}

// process starts one directory transaction. Invariant: e is not busy.
func (s *Scoma) process(p *sim.Proc, line uint32, e *dirEntry, req dirReq) {
	e.busy = true
	e.cur = req
	if req.evict {
		s.processEvict(p, line, e, req)
		return
	}
	if !req.wantX && s.cfg.Migratory && e.migratory && e.state == dirExcl &&
		e.owner != req.node {
		// Migratory line: hand the reader exclusive ownership directly.
		req.wantX = true
		e.cur = req
		s.stats.MigratoryGrants++
	}
	switch e.state {
	case dirExcl:
		if e.owner == req.node {
			// The requester already owns the line (a stale request after a
			// race): re-grant read-write.
			s.stats.Regrants++
			s.grantNoData(p, line, req.node, sram.CLReadWrite)
			s.finish(p, line, e)
			return
		}
		s.stats.Recalls++
		body := make([]byte, 5)
		binary.BigEndian.PutUint32(body, line)
		if !req.wantX {
			body[4] = 1 // owner keeps a shared copy
		}
		s.e.SendSvc(p, e.owner, SvcScomaRecall, body, arctic.High, nil)
		// Continues in onRecallData.
	case dirShared:
		if !req.wantX {
			e.lastReader = req.node
			if e.sharers[req.node] {
				s.stats.Regrants++
				s.grantNoData(p, line, req.node, sram.CLReadOnly)
				s.finish(p, line, e)
				return
			}
			e.sharers[req.node] = true
			s.grantData(p, line, req.node, sram.CLReadOnly, func(p *sim.Proc) {
				s.finish(p, line, e)
			})
			return
		}
		// Upgrade: invalidate every other sharer, then grant exclusivity.
		if e.sharers[req.node] && req.node == e.lastReader {
			// Read-then-write pattern: the line migrates.
			e.migratory = true
		}
		e.pendingInvals = 0
		// Invalidate in ascending node order: map order would vary run to
		// run, and the injection order of inval messages is visible in
		// network contention and ack arrival times.
		targets := make([]int, 0, len(e.sharers))
		for n := range e.sharers {
			if n != req.node {
				targets = append(targets, n)
			}
		}
		sort.Ints(targets)
		for _, n := range targets {
			e.pendingInvals++
			var body [4]byte
			binary.BigEndian.PutUint32(body[:], line)
			s.stats.Invals++
			s.e.SendSvc(p, n, SvcScomaInval, body[:], arctic.High, nil)
		}
		if e.pendingInvals == 0 {
			s.grantExclusive(p, line, e)
		}
		// else continues in onInvalAck.
	case dirUncached:
		st := sram.CLReadOnly
		if req.wantX {
			st = sram.CLReadWrite
		} else {
			e.lastReader = req.node
		}
		s.grantData(p, line, req.node, st, func(p *sim.Proc) {
			if req.wantX {
				e.state = dirExcl
				e.owner = req.node
			} else {
				e.state = dirShared
				e.sharers[req.node] = true
			}
			s.finish(p, line, e)
		})
	}
}

// processEvict releases req.node's copy: a dirty owner is recalled (the
// recall writes the data home), a clean sharer is invalidated.
func (s *Scoma) processEvict(p *sim.Proc, line uint32, e *dirEntry, req dirReq) {
	s.stats.Evicts++
	switch {
	case e.state == dirExcl && e.owner == req.node:
		s.stats.Recalls++
		body := make([]byte, 5)
		binary.BigEndian.PutUint32(body, line)
		s.e.SendSvc(p, e.owner, SvcScomaRecall, body, arctic.High, nil)
		// onRecallData sees cur.evict and finishes without granting.
	case e.state == dirShared && e.sharers[req.node]:
		e.pendingInvals = 1
		var body [4]byte
		binary.BigEndian.PutUint32(body[:], line)
		s.stats.Invals++
		s.e.SendSvc(p, req.node, SvcScomaInval, body[:], arctic.High, nil)
		// onInvalAck sees cur.evict and finishes.
	default:
		// Nothing to release (already gone): done.
		s.finish(p, line, e)
	}
}

// grantExclusive completes a GetX once all other sharers are gone.
func (s *Scoma) grantExclusive(p *sim.Proc, line uint32, e *dirEntry) {
	req := e.cur
	wasSharer := e.sharers[req.node]
	e.sharers = map[int]bool{}
	e.state = dirExcl
	e.owner = req.node
	if wasSharer {
		// Upgrade: the requester's copy is valid; just flip its state.
		s.stats.Regrants++
		s.grantNoData(p, line, req.node, sram.CLReadWrite)
		s.finish(p, line, e)
		return
	}
	s.grantData(p, line, req.node, sram.CLReadWrite, func(p *sim.Proc) {
		s.finish(p, line, e)
	})
}

func (s *Scoma) onInvalAck(p *sim.Proc, src uint16, body []byte) {
	line := binary.BigEndian.Uint32(body)
	e := s.entry(line)
	if !e.busy || e.pendingInvals == 0 {
		panic(fmt.Sprintf("firmware: node %d: unexpected inval ack for line %d", s.e.node, line))
	}
	delete(e.sharers, int(src))
	e.pendingInvals--
	if e.pendingInvals > 0 {
		return
	}
	if e.cur.evict {
		if len(e.sharers) == 0 {
			e.state = dirUncached
		}
		s.finish(p, line, e)
		return
	}
	s.grantExclusive(p, line, e)
}

func (s *Scoma) onRecallData(p *sim.Proc, src uint16, body []byte) {
	line := binary.BigEndian.Uint32(body)
	data := append([]byte(nil), body[4:]...)
	e := s.entry(line)
	if !e.busy || e.state != dirExcl {
		panic(fmt.Sprintf("firmware: node %d: unexpected recall data for line %d", s.e.node, line))
	}
	prevOwner := int(src)
	req := e.cur
	// Refresh the backing copy, then grant to the waiting requester.
	s.e.IssueCommand(p, 0, &ctrl.BusOp{
		Base: ctrl.Base{Done: func() {
			s.e.Go("scoma-grant", func(p *sim.Proc) {
				s.e.Occupy(p, s.e.costs.Handler)
				if req.evict {
					// The recall WAS the eviction: data is home, nobody
					// holds the line.
					e.state = dirUncached
					e.sharers = map[int]bool{}
					s.finish(p, line, e)
					return
				}
				if req.wantX {
					e.state = dirExcl
					e.owner = req.node
					e.sharers = map[int]bool{}
					s.grantData(p, line, req.node, sram.CLReadWrite, func(p *sim.Proc) {
						s.finish(p, line, e)
					})
				} else {
					e.state = dirShared
					e.sharers = map[int]bool{prevOwner: true, req.node: true}
					s.grantData(p, line, req.node, sram.CLReadOnly, func(p *sim.Proc) {
						s.finish(p, line, e)
					})
				}
			})
		}},
		Tx: &bus.Transaction{Kind: bus.WriteLine, Addr: s.backingAddr(line),
			Data: data},
	})
}

// grantData reads the backing copy and delivers it to the requester's frame
// through the remote command queue (no firmware on the return path). The
// done continuation runs on a fresh firmware activity and receives its Proc
// — continuations must never block on a Proc they did not run on.
func (s *Scoma) grantData(p *sim.Proc, line uint32, node int, st sram.LineState,
	done func(p *sim.Proc)) {
	tx := &bus.Transaction{Kind: bus.ReadLine, Addr: s.backingAddr(line),
		Data: make([]byte, bus.LineSize)}
	s.e.IssueCommand(p, 0, &ctrl.BusOp{
		Base: ctrl.Base{Done: func() {
			s.e.Go("scoma-data", func(p *sim.Proc) {
				s.e.Occupy(p, s.e.costs.Handler)
				s.e.IssueCommand(p, 0, &ctrl.SendMsg{
					Frame: &txrx.Frame{Kind: txrx.Cmd, Op: txrx.CmdWriteDramCls,
						Addr: s.windowAddr(line), Aux: uint16(st),
						Payload: append([]byte(nil), tx.Data...)},
					Dest:     uint16(node),
					Priority: arctic.High,
				})
				done(p)
			})
		}},
		Tx: tx,
	})
}

// grantNoData flips the requester's clsSRAM state through the remote command
// queue (the line data it already holds is valid).
func (s *Scoma) grantNoData(p *sim.Proc, line uint32, node int, st sram.LineState) {
	s.e.IssueCommand(p, 0, &ctrl.SendMsg{
		Frame: &txrx.Frame{Kind: txrx.Cmd, Op: txrx.CmdSetCls,
			Addr: s.windowAddr(line), Aux: uint16(st), Count: 1},
		Dest:     uint16(node),
		Priority: arctic.High,
	})
}

// finish closes a directory transaction and admits the next waiter.
func (s *Scoma) finish(p *sim.Proc, line uint32, e *dirEntry) {
	e.busy = false
	if len(e.waiting) > 0 {
		next := e.waiting[0]
		e.waiting = e.waiting[1:]
		s.process(p, line, e, next)
	}
}
