package firmware

// SvcName returns a human-readable profiler/report label for a firmware
// service id. The strings are static so labeling a dispatch allocates
// nothing; unknown ids (experiment-registered services at or above
// SvcUserBase) fall back to a generic label rather than formatting the byte.
//
//voyager:noalloc
func SvcName(svc byte) string {
	switch svc {
	case SvcScomaGet:
		return "scoma-get"
	case SvcScomaGetX:
		return "scoma-getx"
	case SvcScomaInval:
		return "scoma-inval"
	case SvcScomaInvalAck:
		return "scoma-inval-ack"
	case SvcScomaRecall:
		return "scoma-recall"
	case SvcScomaRecallData:
		return "scoma-recall-data"
	case SvcScomaEvict:
		return "scoma-evict"
	case SvcNumaRead:
		return "numa-read"
	case SvcNumaReply:
		return "numa-reply"
	case SvcNumaWrite:
		return "numa-write"
	case SvcNumaWriteAck:
		return "numa-write-ack"
	case SvcDmaRequest:
		return "dma-request"
	case SvcDmaRemote:
		return "dma-remote"
	case SvcReflectFlush:
		return "reflect-flush"
	case SvcRelSend:
		return "rel-send"
	case SvcRelData:
		return "rel-data"
	case SvcRelAck:
		return "rel-ack"
	}
	if svc >= SvcUserBase {
		return "user-svc"
	}
	return "svc-unknown"
}
