package chaos

import (
	"encoding/binary"
	"fmt"

	"startvoyager/internal/cluster"
	"startvoyager/internal/core"
	"startvoyager/internal/memcheck"
	"startvoyager/internal/node"
	"startvoyager/internal/sim"
)

// CellResult is one cell's verdict: the violations its oracles found (empty
// = clean) and how much simulated time the run consumed.
type CellResult struct {
	Cell       Cell
	Violations []Violation
	SimTime    sim.Time
}

// RunCell executes one fuzz cell on a private machine and runs every oracle
// that applies to its mechanism. It is a pure function of (Cell, Config) —
// the property the determinism guarantee and the shrinker both rest on.
func RunCell(c Cell, cfg Config) CellResult {
	switch c.Mech {
	case MechReliable:
		return runReliable(c, cfg)
	case MechBasic:
		return runBasic(c, cfg)
	case MechScoma:
		return runScoma(c, cfg)
	default:
		panic(fmt.Sprintf("chaos: unknown mechanism %q", c.Mech))
	}
}

// runSlices drives the engine to now+budget in n slices, sampling the
// monotone watch between slices, then applies the watchdog's BudgetCheck
// with the machine's firmware loops as the expected-live count.
func runSlices(m *core.Machine, budget sim.Time, n int) (*sim.StallError, []Violation) {
	var out []Violation
	w := newMonotoneWatch(m)
	out = append(out, w.sample()...)
	end := m.Eng.Now() + budget
	for i := 1; i <= n; i++ {
		m.Eng.RunUntil(m.Eng.Now() + budget/sim.Time(n))
		out = append(out, w.sample()...)
	}
	m.Eng.RunUntil(end) // mop up slice rounding
	return m.Eng.BudgetCheck(budget, m.FirmwareLoops()), out
}

// payload encoding shared by the ring workloads: [src:2][idx:2].
func ringPayload(b []byte, src, idx int) []byte {
	binary.BigEndian.PutUint16(b[0:], uint16(src))
	binary.BigEndian.PutUint16(b[2:], uint16(idx))
	return b[:4]
}

// recvTally accumulates one receiver's view: per-sender-index delivery
// counts plus anything malformed or from the wrong origin.
type recvTally struct {
	counts []int
	bad    []string
}

func (t *recvTally) record(self, up, src int, pl []byte) {
	if src != up || len(pl) != 4 {
		t.bad = append(t.bad, fmt.Sprintf(
			"node %d consumed %d bytes claiming src %d (upstream is %d)", self, len(pl), src, up))
		return
	}
	payloadSrc := int(binary.BigEndian.Uint16(pl[0:]))
	idx := int(binary.BigEndian.Uint16(pl[2:]))
	if payloadSrc != up || idx < 0 || idx >= len(t.counts) {
		t.bad = append(t.bad, fmt.Sprintf(
			"node %d consumed payload (src %d, idx %d) nobody sent", self, payloadSrc, idx))
		return
	}
	t.counts[idx]++
}

// runReliable exercises R-Basic on a ring under the full fault space: every
// node streams Msgs reliable messages to its successor while draining its
// own inbox. The central invariant is exactly-once: an acknowledged send is
// delivered exactly once, a failed send at most once, and nothing else
// appears. ACKs precede send statuses in the protocol, so once a sender has
// its last status, every acknowledged payload is already queued at the
// receiver — the drain below misses nothing.
func runReliable(c Cell, cfg Config) CellResult {
	nodes := cfg.Nodes
	clcfg := cluster.DefaultConfig(nodes)
	clcfg.Faults = c.Plan
	m := core.NewMachineConfig(clcfg)
	tap := attachLifecycleTap(m.Eng, cfg.traceCap())

	sent := make([][]bool, nodes) // sent[i][k]: send k by node i acknowledged
	senderDone := make([]bool, nodes)
	tallies := make([]recvTally, nodes)
	for i := range tallies {
		sent[i] = make([]bool, c.Msgs)
		tallies[i].counts = make([]int, c.Msgs)
	}

	for i := 0; i < nodes; i++ {
		i := i
		dst := (i + 1) % nodes
		up := (i + nodes - 1) % nodes
		m.Go(i, "chaos-src", func(p *sim.Proc, a *core.API) {
			var b [4]byte
			for k := 0; k < c.Msgs; k++ {
				sent[i][k] = a.SendReliable(p, dst, ringPayload(b[:], i, k)) == nil
			}
			senderDone[i] = true
		})
		m.Go(i, "chaos-dst", func(p *sim.Proc, a *core.API) {
			for {
				src, pl, err := a.RecvReliableTimeout(p, m.RelBound())
				if err == nil {
					tallies[i].record(i, up, src, pl)
					continue
				}
				if !senderDone[up] {
					continue
				}
				// The upstream sender has its final status, so everything
				// acknowledged is already queued locally: drain and leave.
				for {
					src, pl, ok := a.TryRecvReliable(p)
					if !ok {
						return
					}
					tallies[i].record(i, up, src, pl)
				}
			}
		})
	}

	budget := cfg.Budget
	if budget == 0 {
		// Each send resolves within 2*RelBound (the library's own status
		// timeout); the receiver trails by a few poll windows.
		budget = sim.Time(2*c.Msgs+8)*m.RelBound() + sim.Millisecond
	}
	stall, violations := runSlices(m, budget, cfg.slices())
	res := CellResult{Cell: c, Violations: violations, SimTime: m.Eng.Now()}
	if stall != nil {
		res.Violations = append(res.Violations, stallViolation(m, stall))
		return res
	}

	failedTotal := 0
	for i := range sent {
		for k, ok := range sent[i] {
			if !ok {
				failedTotal++
			}
			recv := tallies[(i+1)%nodes]
			switch n := recv.counts[k]; {
			case n > 1:
				res.Violations = append(res.Violations, violationf(OracleExactlyOnce,
					"send %d->%d idx %d delivered %d times", i, (i+1)%nodes, k, n))
			case n == 0 && ok:
				res.Violations = append(res.Violations, violationf(OracleExactlyOnce,
					"send %d->%d idx %d was acknowledged but never delivered", i, (i+1)%nodes, k))
			}
		}
	}
	for i := range tallies {
		for _, bad := range tallies[i].bad {
			res.Violations = append(res.Violations, violationf(OracleInvention, "%s", bad))
		}
	}
	res.Violations = append(res.Violations, checkConservation(m)...)
	res.Violations = append(res.Violations, checkQuiescence(m, failedTotal)...)
	res.Violations = append(res.Violations, checkInjectorRegistry(m)...)
	res.Violations = append(res.Violations, checkTelescoping(tap)...)
	return res
}

// basicSilence is how long a Basic receiver must hear nothing — after its
// upstream sender finished — before concluding the network has drained. It
// comfortably exceeds the injector's largest delay (100us) plus flight time.
const basicSilence = sim.Millisecond

// runBasic exercises the unreliable Basic path on a ring. Basic promises no
// delivery, so the invariants are conservation ones: nothing is invented
// (every consumed payload was sent by the upstream node), duplication is
// bounded by the injector's count, and the app-level ledger balances —
// every injected frame is consumed, still queued, or accounted to a fault.
func runBasic(c Cell, cfg Config) CellResult {
	nodes := cfg.Nodes
	clcfg := cluster.DefaultConfig(nodes)
	clcfg.Faults = c.Plan
	m := core.NewMachineConfig(clcfg)
	tap := attachLifecycleTap(m.Eng, cfg.traceCap())

	senderDone := make([]bool, nodes)
	tallies := make([]recvTally, nodes)
	for i := range tallies {
		tallies[i].counts = make([]int, c.Msgs)
	}

	for i := 0; i < nodes; i++ {
		i := i
		dst := (i + 1) % nodes
		up := (i + nodes - 1) % nodes
		m.Go(i, "chaos-src", func(p *sim.Proc, a *core.API) {
			var b [4]byte
			for k := 0; k < c.Msgs; k++ {
				a.SendBasic(p, dst, ringPayload(b[:], i, k))
			}
			senderDone[i] = true
		})
		m.Go(i, "chaos-dst", func(p *sim.Proc, a *core.API) {
			// Return only after a full silence window that began after the
			// upstream sender finished: anything still in flight (delays are
			// bounded) lands well inside it, so leftovers mean a real leak.
			armed := false
			for {
				src, pl, err := a.RecvBasicTimeout(p, basicSilence)
				if err == nil {
					tallies[i].record(i, up, src, pl)
					armed = false
					continue
				}
				if !senderDone[up] {
					continue
				}
				if armed {
					return
				}
				armed = true
			}
		})
	}

	budget := cfg.Budget
	if budget == 0 {
		budget = sim.Time(c.Msgs)*200*sim.Microsecond + 10*sim.Millisecond
	}
	stall, violations := runSlices(m, budget, cfg.slices())
	res := CellResult{Cell: c, Violations: violations, SimTime: m.Eng.Now()}
	if stall != nil {
		res.Violations = append(res.Violations, stallViolation(m, stall))
		return res
	}

	consumed, extras := 0, 0
	for i := range tallies {
		for _, n := range tallies[i].counts {
			consumed += n
			if n > 1 {
				extras += n - 1
			}
		}
		for _, bad := range tallies[i].bad {
			res.Violations = append(res.Violations, violationf(OracleInvention, "%s", bad))
		}
	}
	var dup uint64
	if m.Faults != nil {
		dup = m.Faults.Stats().Duplicated
	}
	if uint64(extras) > dup {
		res.Violations = append(res.Violations, violationf(OracleInvention,
			"receivers saw %d duplicate deliveries but the injector duplicated only %d", extras, dup))
	}
	// App-level ledger: everything the fabric delivered was either consumed
	// by a receiver or is still sitting in an RX queue (which, after the
	// silence windows, must be nothing).
	leftover := 0
	for _, n := range m.Nodes {
		leftover += int(n.Ctrl.RxProducer(node.RxBasic) - n.Ctrl.RxConsumer(node.RxBasic))
	}
	if leftover != 0 {
		res.Violations = append(res.Violations, violationf(OracleQuiescence,
			"%d Basic payloads left unconsumed after the silence window", leftover))
	}
	res.Violations = append(res.Violations, checkBasicLedger(m, nodes*c.Msgs, consumed+leftover)...)
	res.Violations = append(res.Violations, checkConservation(m)...)
	res.Violations = append(res.Violations, checkQuiescence(m, 0)...)
	res.Violations = append(res.Violations, checkInjectorRegistry(m)...)
	res.Violations = append(res.Violations, checkTelescoping(tap)...)
	return res
}

// runScoma tortures the S-COMA directory protocol: every node hammers one
// shared location with an unsynchronized read/write mix (the last node is a
// pure reader), and the observed history must be linearizable. The network
// is clean by construction (see GenCells), so any violation is the
// coherence protocol's own.
func runScoma(c Cell, cfg Config) CellResult {
	nodes := cfg.Nodes
	m := core.NewMachineConfig(cluster.DefaultConfig(nodes))
	tap := attachLifecycleTap(m.Eng, cfg.traceCap())

	var h memcheck.History
	for id := 0; id < nodes; id++ {
		id := id
		r := &srng{state: c.Seed ^ (uint64(id)+1)*0x9E3779B97F4A7C15}
		m.Go(id, "chaos-torture", func(p *sim.Proc, a *core.API) {
			for op := 0; op < c.Msgs; op++ {
				a.Compute(p, sim.Time(r.intn(5))*sim.Microsecond)
				if r.intn(2) == 0 && id != nodes-1 {
					val := uint64(id+1)<<32 | uint64(op+1)
					var b [8]byte
					binary.BigEndian.PutUint64(b[:], val)
					start := p.Now()
					a.ScomaStore(p, 0, b[:])
					h.AddWrite(id, val, start, p.Now())
				} else {
					var b [8]byte
					start := p.Now()
					a.ScomaLoad(p, 0, b[:])
					h.AddRead(id, binary.BigEndian.Uint64(b[:]), start, p.Now())
				}
			}
		})
	}

	budget := cfg.Budget
	if budget == 0 {
		budget = sim.Time(c.Msgs*nodes)*100*sim.Microsecond + 10*sim.Millisecond
	}
	stall, violations := runSlices(m, budget, cfg.slices())
	res := CellResult{Cell: c, Violations: violations, SimTime: m.Eng.Now()}
	if stall != nil {
		res.Violations = append(res.Violations, stallViolation(m, stall))
		return res
	}
	if err := h.Check(0); err != nil {
		res.Violations = append(res.Violations, violationf(OracleMemcheck,
			"%v (history of %d ops)", err, h.Len()))
	}
	res.Violations = append(res.Violations, checkConservation(m)...)
	res.Violations = append(res.Violations, checkQuiescence(m, 0)...)
	res.Violations = append(res.Violations, checkTelescoping(tap)...)
	return res
}
