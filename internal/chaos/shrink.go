package chaos

import (
	"startvoyager/internal/fault"
	"startvoyager/internal/sim"
)

// Shrink reduces a failing cell to a minimal reproduction by greedy
// delta-debugging over the plan's structure: it repeatedly proposes
// strictly simpler variants (fewer messages, a clause removed, a lane rate
// zeroed, an outage window narrowed), re-runs each, and keeps a variant
// only when the SAME oracle still fails — a different failure is a
// different bug, not a smaller instance of this one. Every accepted step
// strictly shrinks the cell, so the loop terminates; rerun invocations are
// additionally capped by cfg.MaxShrinkRuns, and the count spent is
// returned alongside the reduced cell.
//
// rerun must be a pure function of the cell (RunCell is), or the reduction
// is meaningless.
func Shrink(c Cell, cfg Config, oracle string, rerun func(Cell) []Violation) (Cell, int) {
	runs := 0
	maxRuns := cfg.maxShrinkRuns()
	fails := func(cand Cell) bool {
		runs++
		for _, v := range rerun(cand) {
			if v.Oracle == oracle {
				return true
			}
		}
		return false
	}
	cur := c
	for improved := true; improved && runs < maxRuns; {
		improved = false
		for _, cand := range shrinkCandidates(cur) {
			if runs >= maxRuns {
				break
			}
			if fails(cand) {
				cur = cand
				improved = true
				break // restart candidate generation from the simpler cell
			}
		}
	}
	return cur, runs
}

// shrinkCandidates proposes every one-step simplification of the cell, each
// strictly smaller than the input, ordered so the biggest structural
// reductions are tried first.
func shrinkCandidates(c Cell) []Cell {
	var out []Cell
	emit := func(msgs int, mutate func(p *fault.Plan)) {
		cand := c
		cand.Msgs = msgs
		if c.Plan != nil {
			cand.Plan = clonePlan(c.Plan)
			if mutate != nil {
				mutate(cand.Plan)
			}
		}
		out = append(out, cand)
	}

	// Workload size first: halving the message count halves every re-run.
	if c.Msgs > 1 {
		emit(c.Msgs/2, nil)
	}
	if c.Plan == nil {
		return out
	}
	p := c.Plan
	// Remove whole clauses: deaths, then outages.
	for i := range p.Deaths {
		i := i
		emit(c.Msgs, func(q *fault.Plan) { q.Deaths = append(q.Deaths[:i], q.Deaths[i+1:]...) })
	}
	for i := range p.Outages {
		i := i
		emit(c.Msgs, func(q *fault.Plan) { q.Outages = append(q.Outages[:i], q.Outages[i+1:]...) })
	}
	// Zero each probabilistic fault class (both lanes at once — the classes
	// are independent knobs, the lanes rarely are).
	if p.Lanes[fault.LaneHigh].Drop != 0 || p.Lanes[fault.LaneLow].Drop != 0 {
		emit(c.Msgs, func(q *fault.Plan) {
			q.Lanes[fault.LaneHigh].Drop, q.Lanes[fault.LaneLow].Drop = 0, 0
		})
	}
	if p.Lanes[fault.LaneHigh].Corrupt != 0 || p.Lanes[fault.LaneLow].Corrupt != 0 {
		emit(c.Msgs, func(q *fault.Plan) {
			q.Lanes[fault.LaneHigh].Corrupt, q.Lanes[fault.LaneLow].Corrupt = 0, 0
		})
	}
	if p.Lanes[fault.LaneHigh].Duplicate != 0 || p.Lanes[fault.LaneLow].Duplicate != 0 {
		emit(c.Msgs, func(q *fault.Plan) {
			q.Lanes[fault.LaneHigh].Duplicate, q.Lanes[fault.LaneLow].Duplicate = 0, 0
		})
	}
	if p.Lanes[fault.LaneHigh].DelayProb != 0 || p.Lanes[fault.LaneLow].DelayProb != 0 {
		emit(c.Msgs, func(q *fault.Plan) {
			q.Lanes[fault.LaneHigh].DelayProb, q.Lanes[fault.LaneHigh].DelayMax = 0, 0
			q.Lanes[fault.LaneLow].DelayProb, q.Lanes[fault.LaneLow].DelayMax = 0, 0
		})
	}
	// Narrow surviving outage windows: halve from the back, keeping the
	// onset (the onset is usually what matters; the tail is usually slack).
	for i, o := range p.Outages {
		i := i
		if w := o.To - o.From; w > sim.Microsecond {
			emit(c.Msgs, func(q *fault.Plan) { q.Outages[i].To = q.Outages[i].From + w/2 })
		}
	}
	return out
}

// clonePlan deep-copies a plan so candidate mutations never alias.
func clonePlan(p *fault.Plan) *fault.Plan {
	q := *p
	q.Outages = append([]fault.Outage(nil), p.Outages...)
	q.Deaths = append([]fault.NodeDeath(nil), p.Deaths...)
	return &q
}
