// Package chaos is the machine-wide robustness harness: a seeded,
// byte-deterministic fuzzer that generates random fault plans over the
// fault.Plan grammar, runs each (mechanism, seed, plan) cell on a private
// machine, and checks the outcome against invariant oracles — exactly-once
// reliable delivery, packet conservation across the fabric and injector,
// end-of-run quiescence, telescoping trace-stage sums, metric sanity, and
// shared-memory linearizability. Runs are driven under a sim-time budget so
// a protocol deadlock or livelock surfaces as a structured watchdog report
// (see sim.StallError) instead of a hung process, and any failing cell can
// be reduced to a minimal reproduction by the shrinker (shrink.go).
//
// Determinism is the contract that makes findings actionable: the same
// Config produces the same Report byte for byte at any worker count, and
// every finding carries its plan in ParsePlan syntax so it replays exactly
// under -faults.
package chaos

import (
	"startvoyager/internal/fault"
	"startvoyager/internal/sim"
)

// Mechanism names accepted in Config.Mechs.
const (
	MechReliable = "reliable" // R-Basic ring: exactly-once under the full fault space
	MechBasic    = "basic"    // unreliable Basic ring: conservation under drops/dups
	MechScoma    = "scoma"    // S-COMA torture: linearizability on a clean network
)

// DefaultMechs is the mechanism rotation used when Config.Mechs is empty.
var DefaultMechs = []string{MechReliable, MechBasic, MechScoma}

// Config parameterizes a chaos sweep.
type Config struct {
	Seed  uint64 // master seed; every cell's plan and workload derive from it
	Cells int    // number of fuzz cells
	Msgs  int    // messages per sender (ops per node for scoma)
	Nodes int    // machine size per cell

	// Mechs is the mechanism rotation across cells (empty = DefaultMechs).
	Mechs []string

	// Workers caps the parallel cell fan-out (see bench.Cells); <= 1 runs
	// sequentially with byte-identical results.
	Workers int

	// Budget bounds each cell's simulated time; 0 derives a per-mechanism
	// bound generous enough that only a genuine livelock exceeds it.
	Budget sim.Time
	// Slices is how many budget slices to sample metrics at for the
	// monotone-counter oracle (0 = 8).
	Slices int

	// TraceCap bounds the per-cell lifecycle-event tap (0 = 1<<20 events).
	// The tap retains only message-lifecycle instants — storage scales with
	// traffic, not budget — so the cap is a guard against pathological
	// cells; hitting it is itself reported as a telescoping finding.
	TraceCap int

	// Shrink reduces each failing cell to a minimal reproduction before
	// reporting (costs up to MaxShrinkRuns extra cell runs per failure).
	Shrink bool
	// MaxShrinkRuns bounds the shrinker's re-runs per failing cell (0 = 64).
	MaxShrinkRuns int
}

func (c Config) mechs() []string {
	if len(c.Mechs) == 0 {
		return DefaultMechs
	}
	return c.Mechs
}

func (c Config) slices() int {
	if c.Slices <= 0 {
		return 8
	}
	return c.Slices
}

func (c Config) traceCap() int {
	if c.TraceCap <= 0 {
		return 1 << 20
	}
	return c.TraceCap
}

func (c Config) maxShrinkRuns() int {
	if c.MaxShrinkRuns <= 0 {
		return 64
	}
	return c.MaxShrinkRuns
}

// planHorizon is the sim-time span GenPlan aims its outage windows and
// deaths into. Workloads keep traffic in flight well past it, so scheduled
// faults land mid-transfer rather than after the run drains.
const planHorizon = 2 * sim.Millisecond

// Cell is one fuzz case: a mechanism workload under a generated fault plan.
// Plan is nil for mechanisms exercised on a clean network (scoma).
type Cell struct {
	Index int
	Mech  string
	Seed  uint64
	Msgs  int
	Plan  *fault.Plan
}

// GenCells expands a Config into its cell list. Cell i's seed is the i-th
// draw of a SplitMix64 stream over the master seed, its mechanism is the
// rotation's i-th entry, and its plan is fault.GenPlan over the cell seed —
// so the whole sweep is a pure function of Config.
func GenCells(cfg Config) []Cell {
	mechs := cfg.mechs()
	cells := make([]Cell, 0, cfg.Cells)
	state := cfg.Seed
	for i := 0; i < cfg.Cells; i++ {
		state = splitmix(state)
		c := Cell{Index: i, Mech: mechs[i%len(mechs)], Seed: state, Msgs: cfg.Msgs}
		switch c.Mech {
		case MechReliable:
			c.Plan = fault.GenPlan(c.Seed, cfg.Nodes, planHorizon)
		case MechBasic:
			// Basic frames carry no checksum, so a corrupted payload is
			// delivered as-is — indistinguishable from an invented message.
			// Keep corruption out of the Basic envelope; the reliable
			// mechanism owns that fault class.
			c.Plan = fault.GenPlan(c.Seed, cfg.Nodes, planHorizon)
			c.Plan.Lanes[fault.LaneHigh].Corrupt = 0
			c.Plan.Lanes[fault.LaneLow].Corrupt = 0
		case MechScoma:
			// Shared-memory consistency is checked on a clean network: the
			// S-COMA protocol has no retransmission story, so injected loss
			// would only report the absence of one, not a bug.
			c.Plan = nil
		}
		cells = append(cells, c)
	}
	return cells
}

// splitmix is the SplitMix64 output function — the same generator the fault
// package uses, so cell seeding is platform-independent.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// srng is a tiny deterministic stream over splitmix, for workload-side
// decisions (op mix, compute gaps) that must not perturb the plan stream.
type srng struct{ state uint64 }

func (r *srng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *srng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}
