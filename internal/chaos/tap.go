package chaos

import (
	"startvoyager/internal/sim"
	"startvoyager/internal/trace"
)

// lifecycleTap is a sim.Observer that retains only message-lifecycle
// instants — the events trace.AnalyzePaths consumes (Instant kind, nonzero
// I64 "msg" field). Firmware polling emits tens of span events per simulated
// microsecond whether or not traffic flows, so a general ring sized for a
// chaos cell's full budget would need millions of slots; filtering at the
// observer instead keeps memory proportional to actual message traffic and
// makes the telescoping oracle immune to ring truncation.
type lifecycleTap struct {
	cap     int
	events  []trace.Event
	dropped uint64
}

func attachLifecycleTap(e *sim.Engine, capacity int) *lifecycleTap {
	t := &lifecycleTap{cap: capacity}
	e.SetObserver(t)
	return t
}

// Instant implements sim.Observer, keeping only events with a message id.
func (t *lifecycleTap) Instant(at sim.Time, node int, component, name string, fields []sim.Field) {
	hasMsg := false
	for _, f := range fields {
		if f.Key == "msg" {
			if v, ok := f.Int64(); ok && v != 0 {
				hasMsg = true
				break
			}
		}
	}
	if !hasMsg {
		return
	}
	if len(t.events) >= t.cap {
		t.dropped++
		return
	}
	t.events = append(t.events, trace.Event{
		At: at, Node: node, Component: component, Kind: trace.Instant,
		Name: name, Fields: fields,
	})
}

// SpanBegin implements sim.Observer (spans carry no message ids; discard).
func (t *lifecycleTap) SpanBegin(sim.Time, int, string, string, uint64, []sim.Field) {}

// SpanEnd implements sim.Observer.
func (t *lifecycleTap) SpanEnd(sim.Time, int, string, uint64, []sim.Field) {}

// CounterSample implements sim.Observer.
func (t *lifecycleTap) CounterSample(sim.Time, int, string, string, int64) {}
