package chaos

import (
	"encoding/json"
	"io"

	"startvoyager/internal/bench"
)

// Schema identifies the findings artifact format.
const Schema = "voyager-chaos/v1"

// Report is a chaos sweep's full outcome: the configuration it derives from
// and every oracle violation, in cell order. Marshaling is deterministic
// (fixed struct order, findings sorted by cell then discovery order), so
// the committed findings baseline diffs cleanly.
type Report struct {
	Schema   string    `json:"schema"`
	Seed     uint64    `json:"seed"`
	Cells    int       `json:"cells"`
	Nodes    int       `json:"nodes"`
	Msgs     int       `json:"msgs"`
	Mechs    []string  `json:"mechs"`
	Findings []Finding `json:"findings"`
}

// Finding is one oracle violation, self-contained enough to replay: the
// cell's mechanism and seed, its plan in -faults syntax, and (when the
// shrinker ran) the reduced reproduction.
type Finding struct {
	Cell   int    `json:"cell"`
	Mech   string `json:"mech"`
	Seed   uint64 `json:"seed"`
	Plan   string `json:"plan,omitempty"`
	Oracle string `json:"oracle"`
	Detail string `json:"detail"`
	Shrunk *Repro `json:"shrunk,omitempty"`
}

// Repro is a shrunken reproduction of a finding.
type Repro struct {
	Plan string `json:"plan,omitempty"`
	Msgs int    `json:"msgs"`
	Runs int    `json:"runs"` // rerun budget the shrinker spent
}

// Run executes the whole sweep: cells fan out across Config.Workers via the
// deterministic parallel harness and merge in cell order, so the report is
// byte-identical at any worker count. When Config.Shrink is set, the first
// violation of each failing cell is reduced to a minimal repro.
func Run(cfg Config) *Report {
	cells := GenCells(cfg)
	results := bench.Cells(len(cells), cfg.Workers, func(i int) CellResult {
		return RunCell(cells[i], cfg)
	})
	rep := &Report{
		Schema: Schema, Seed: cfg.Seed, Cells: cfg.Cells,
		Nodes: cfg.Nodes, Msgs: cfg.Msgs, Mechs: cfg.mechs(),
		Findings: []Finding{},
	}
	type shrinkJob struct {
		finding int // index into rep.Findings
		cell    Cell
		oracle  string
	}
	var jobs []shrinkJob
	for _, res := range results {
		for vi, v := range res.Violations {
			f := Finding{
				Cell: res.Cell.Index, Mech: res.Cell.Mech, Seed: res.Cell.Seed,
				Oracle: v.Oracle, Detail: v.Detail,
			}
			if res.Cell.Plan != nil {
				f.Plan = res.Cell.Plan.String()
			}
			rep.Findings = append(rep.Findings, f)
			if cfg.Shrink && vi == 0 {
				jobs = append(jobs, shrinkJob{len(rep.Findings) - 1, res.Cell, v.Oracle})
			}
		}
	}
	if len(jobs) > 0 {
		// Failing cells shrink independently; fan them out like the sweep.
		repros := bench.Cells(len(jobs), cfg.Workers, func(i int) Repro {
			cell, runs := Shrink(jobs[i].cell, cfg, jobs[i].oracle, func(c Cell) []Violation {
				return RunCell(c, cfg).Violations
			})
			r := Repro{Msgs: cell.Msgs, Runs: runs}
			if cell.Plan != nil {
				r.Plan = cell.Plan.String()
			}
			return r
		})
		for i := range jobs {
			r := repros[i]
			rep.Findings[jobs[i].finding].Shrunk = &r
		}
	}
	return rep
}

// WriteJSON renders the report as indented JSON with a trailing newline —
// the format of the committed CHAOS_findings.json baseline.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
