package chaos

import (
	"bytes"
	"strings"
	"testing"

	"startvoyager/internal/fault"
	"startvoyager/internal/sim"
)

// TestRunDeterministicAcrossWorkers is the harness's core contract: the same
// Config yields a byte-identical report whether cells run sequentially or
// fanned out across workers.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	base := Config{Seed: 42, Cells: 6, Msgs: 4, Nodes: 3}

	seq := base
	seq.Workers = 1
	par := base
	par.Workers = 4

	var seqBuf, parBuf bytes.Buffer
	if err := Run(seq).WriteJSON(&seqBuf); err != nil {
		t.Fatalf("sequential report: %v", err)
	}
	if err := Run(par).WriteJSON(&parBuf); err != nil {
		t.Fatalf("parallel report: %v", err)
	}
	if !bytes.Equal(seqBuf.Bytes(), parBuf.Bytes()) {
		t.Errorf("report differs between 1 and 4 workers:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s",
			seqBuf.String(), parBuf.String())
	}
}

// TestGenCellsDeterministic pins cell derivation: same config, same cells,
// including plan text.
func TestGenCellsDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Cells: 9, Msgs: 3, Nodes: 4}
	a, b := GenCells(cfg), GenCells(cfg)
	if len(a) != len(b) || len(a) != cfg.Cells {
		t.Fatalf("got %d and %d cells, want %d", len(a), len(b), cfg.Cells)
	}
	seen := map[string]bool{}
	for i := range a {
		if a[i].Mech != b[i].Mech || a[i].Seed != b[i].Seed {
			t.Errorf("cell %d differs between derivations: %+v vs %+v", i, a[i], b[i])
		}
		seen[a[i].Mech] = true
		switch {
		case a[i].Plan == nil && b[i].Plan != nil, a[i].Plan != nil && b[i].Plan == nil:
			t.Errorf("cell %d: plan nilness differs", i)
		case a[i].Plan != nil && a[i].Plan.String() != b[i].Plan.String():
			t.Errorf("cell %d: plans differ:\n%s\n%s", i, a[i].Plan, b[i].Plan)
		}
		if a[i].Mech == MechScoma && a[i].Plan != nil {
			t.Errorf("cell %d: scoma must run on a clean network, has plan %s", i, a[i].Plan)
		}
		if a[i].Mech == MechBasic && a[i].Plan != nil {
			if a[i].Plan.Lanes[fault.LaneHigh].Corrupt != 0 || a[i].Plan.Lanes[fault.LaneLow].Corrupt != 0 {
				t.Errorf("cell %d: basic cells must not corrupt (no checksum to catch it)", i)
			}
		}
	}
	for _, mech := range DefaultMechs {
		if !seen[mech] {
			t.Errorf("9-cell default rotation never produced mechanism %q", mech)
		}
	}
}

// TestShrinkReducesToMinimalRepro drives the shrinker with a synthetic
// oracle — "fails iff the plan kills node 1" — over a deliberately bloated
// cell, and expects the full reduction: message count at the floor, every
// irrelevant clause gone, only the culprit death left, within the rerun
// budget.
func TestShrinkReducesToMinimalRepro(t *testing.T) {
	plan, err := fault.ParsePlan(
		"seed=9, drop=0.2, corrupt=0.1, dup=0.1, delay=0.3@50us, " +
			"outage=0-1@10us:100us, outage=*-2@200us:800us, outage=1-*@1ms:1500us, " +
			"death=1@400us, death=2@900us")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	cell := Cell{Index: 0, Mech: MechReliable, Seed: 9, Msgs: 16, Plan: plan}
	cfg := Config{Nodes: 3}

	const oracle = "synthetic"
	rerun := func(c Cell) []Violation {
		if c.Plan == nil {
			return nil
		}
		for _, d := range c.Plan.Deaths {
			if d.Node == 1 {
				return []Violation{{Oracle: oracle, Detail: "node 1 died"}}
			}
		}
		return nil
	}

	got, runs := Shrink(cell, cfg, oracle, rerun)
	if runs > cfg.maxShrinkRuns() {
		t.Errorf("shrinker spent %d reruns, budget is %d", runs, cfg.maxShrinkRuns())
	}
	if got.Msgs != 1 {
		t.Errorf("Msgs = %d, want 1 (workload size is irrelevant to the oracle)", got.Msgs)
	}
	if got.Plan == nil {
		t.Fatal("shrunk plan is nil but the oracle needs the death clause")
	}
	if len(got.Plan.Deaths) != 1 || got.Plan.Deaths[0].Node != 1 {
		t.Errorf("deaths = %+v, want exactly the node-1 death", got.Plan.Deaths)
	}
	if len(got.Plan.Outages) != 0 {
		t.Errorf("outages = %+v, want none (all irrelevant)", got.Plan.Outages)
	}
	for ln := range got.Plan.Lanes {
		l := got.Plan.Lanes[ln]
		if l.Drop != 0 || l.Corrupt != 0 || l.Duplicate != 0 || l.DelayProb != 0 {
			t.Errorf("lane %v still has probabilistic faults: %+v", ln, l)
		}
	}
	// The original cell must be untouched: the shrinker works on clones.
	if len(cell.Plan.Outages) != 3 || len(cell.Plan.Deaths) != 2 || cell.Msgs != 16 {
		t.Errorf("shrinker mutated the input cell: %+v", cell)
	}
}

// TestShrinkRespectsRunBudget caps the rerun budget below what full
// reduction needs and checks the shrinker stops on time anyway.
func TestShrinkRespectsRunBudget(t *testing.T) {
	plan := fault.GenPlan(123, 4, 2*sim.Millisecond)
	cell := Cell{Mech: MechReliable, Seed: 123, Msgs: 64, Plan: plan}
	cfg := Config{Nodes: 4, MaxShrinkRuns: 3}
	rerun := func(Cell) []Violation {
		return []Violation{{Oracle: "always", Detail: "fails"}}
	}
	_, runs := Shrink(cell, cfg, "always", rerun)
	if runs > 3 {
		t.Errorf("shrinker spent %d reruns with a budget of 3", runs)
	}
}

// TestWatchdogFiresOnTinyBudget gives a real reliable cell far too little
// simulated time and expects a structured watchdog finding — the harness's
// answer to a hang — rather than a wedged test.
func TestWatchdogFiresOnTinyBudget(t *testing.T) {
	cfg := Config{Nodes: 3, Budget: 20 * sim.Microsecond}
	cell := Cell{Index: 0, Mech: MechReliable, Seed: 5, Msgs: 32}
	res := RunCell(cell, cfg)
	var found *Violation
	for i := range res.Violations {
		if res.Violations[i].Oracle == OracleWatchdog {
			found = &res.Violations[i]
			break
		}
	}
	if found == nil {
		t.Fatalf("no watchdog violation in %+v", res.Violations)
	}
	if !strings.Contains(found.Detail, "fabric:") {
		t.Errorf("watchdog detail lacks the machine-context notes:\n%s", found.Detail)
	}
}

// TestCleanSweepHasNoFindings runs a default-configuration sweep and expects
// the machine to survive it clean — this is the committed-baseline property
// make chaos enforces in CI.
func TestCleanSweepHasNoFindings(t *testing.T) {
	rep := Run(Config{Seed: 1, Cells: 6, Msgs: 4, Nodes: 3, Workers: 2})
	for _, f := range rep.Findings {
		t.Errorf("cell %d (%s, seed %#x, plan %q): %s oracle: %s",
			f.Cell, f.Mech, f.Seed, f.Plan, f.Oracle, f.Detail)
	}
	if rep.Schema != Schema {
		t.Errorf("schema = %q, want %q", rep.Schema, Schema)
	}
}
