package chaos

import (
	"fmt"

	"startvoyager/internal/arctic"
	"startvoyager/internal/core"
	"startvoyager/internal/fault"
	"startvoyager/internal/node"
	"startvoyager/internal/sim"
	"startvoyager/internal/trace"
)

// Oracle names, as they appear in findings. A shrunken repro is re-verified
// against the oracle name, so these are stable identifiers, not prose.
const (
	OracleWatchdog     = "watchdog"     // budget exceeded or deadlock (sim.StallError)
	OracleExactlyOnce  = "exactly-once" // reliable delivery duplicated or lost an acked send
	OracleInvention    = "no-invention" // a receiver consumed a payload nobody sent
	OracleConservation = "conservation" // fabric packets unaccounted for
	OracleQuiescence   = "quiescence"   // buffered work left behind after the run drained
	OracleTelescoping  = "telescoping"  // trace stage durations do not sum to latency
	OracleMonotone     = "monotone"     // a cumulative metric went backwards
	OracleMetrics      = "metrics"      // injector counters disagree with the registry
	OracleMemcheck     = "memcheck"     // shared-memory history not linearizable
)

// Violation is one oracle failure in one cell. Details are built entirely
// from simulated state, so they are as deterministic as the run itself.
type Violation struct {
	Oracle string `json:"oracle"`
	Detail string `json:"detail"`
}

func violationf(oracle, format string, args ...interface{}) Violation {
	return Violation{Oracle: oracle, Detail: fmt.Sprintf(format, args...)}
}

// checkConservation balances the fabric's packet counters against the
// injector's committed drops and the packets still buffered in the fabric:
//
//	injected == delivered + injected_drops + outage_drops + death_drops + in_flight
//
// Exact once the event queue has drained. A deficit means the fabric lost a
// packet without a fault ruling; a surplus means one was delivered or
// counted twice.
func checkConservation(m *core.Machine) []Violation {
	fb, ok := m.Fabric.(interface{ Stats() arctic.Stats })
	if !ok {
		return nil
	}
	st := fb.Stats()
	var fs fault.Stats
	if m.Faults != nil {
		fs = m.Faults.Stats()
	}
	inFlight := fabricInFlight(m)
	want := st.Delivered + fs.InjectedDrops + fs.OutageDrops + fs.DeathDrops + uint64(inFlight)
	if st.Injected != want {
		return []Violation{violationf(OracleConservation,
			"injected %d != delivered %d + drops (prob %d, outage %d, death %d) + in-flight %d",
			st.Injected, st.Delivered, fs.InjectedDrops, fs.OutageDrops, fs.DeathDrops, inFlight)}
	}
	return nil
}

func fabricInFlight(m *core.Machine) int {
	if f, ok := m.Fabric.(interface{ InFlight() int }); ok {
		return f.InFlight()
	}
	return 0
}

// checkQuiescence verifies that a drained run left no work wedged in the
// machine: no transmit descriptors accepted but unlaunched, no reliable
// sends awaiting ACKs, no credit-protocol lane over capacity, and no more
// undelivered reliable payloads than the failed sends that can legitimately
// strand them (a failed send's frame may still arrive after its sender gave
// up; exactly-once suppression bounds the leftovers by the failure count).
func checkQuiescence(m *core.Machine, relLeftoverAllowed int) []Violation {
	var out []Violation
	for i, n := range m.Nodes {
		if bl := n.Ctrl.TxBacklog(); bl != 0 {
			out = append(out, violationf(OracleQuiescence,
				"node %d CTRL holds %d unlaunched transmit descriptors", i, bl))
		}
	}
	for _, r := range m.Rels {
		if err := r.Quiesced(); err != nil {
			out = append(out, violationf(OracleQuiescence, "%v", err))
		}
	}
	leftover := 0
	for _, n := range m.Nodes {
		leftover += int(n.Ctrl.RxProducer(node.RxRel) - n.Ctrl.RxConsumer(node.RxRel))
	}
	if leftover > relLeftoverAllowed {
		out = append(out, violationf(OracleQuiescence,
			"%d undelivered reliable payloads left in RX queues (at most %d failed sends could strand one)",
			leftover, relLeftoverAllowed))
	}
	if f, ok := m.Fabric.(interface{ CheckLanes() error }); ok {
		if err := f.CheckLanes(); err != nil {
			out = append(out, violationf(OracleQuiescence, "%v", err))
		}
	}
	return out
}

// checkBasicLedger balances the Basic ring at the application level: the
// only wire traffic in a Basic cell is the workload's own frames, so the
// fabric's injection count must equal the sends plus injector duplicates,
// and its delivery count must equal what the receivers consumed plus
// whatever is still queued. A mismatch is a frame minted or lost inside the
// NIU, below the fault plane.
func checkBasicLedger(m *core.Machine, sentTotal, accounted int) []Violation {
	fb, ok := m.Fabric.(interface{ Stats() arctic.Stats })
	if !ok {
		return nil
	}
	st := fb.Stats()
	var dup uint64
	if m.Faults != nil {
		dup = m.Faults.Stats().Duplicated
	}
	var out []Violation
	if st.Injected != uint64(sentTotal)+dup {
		out = append(out, violationf(OracleConservation,
			"fabric injected %d frames for %d sends + %d duplicates", st.Injected, sentTotal, dup))
	}
	if st.Delivered != uint64(accounted) {
		out = append(out, violationf(OracleConservation,
			"fabric delivered %d frames but receivers account for %d", st.Delivered, accounted))
	}
	return out
}

// checkTelescoping replays the cell's trace through the causal-path
// analyzer and verifies the attribution invariant: every traced message's
// stage durations sum exactly to its end-to-end latency, with no residue.
// Orphan chains with an untruncated tap mean lifecycle events went missing.
func checkTelescoping(tap *lifecycleTap) []Violation {
	var out []Violation
	if tap.dropped > 0 {
		return []Violation{violationf(OracleTelescoping,
			"lifecycle tap dropped %d events past its %d cap; raise Config.TraceCap for this cell size",
			tap.dropped, tap.cap)}
	}
	an := trace.AnalyzePaths(tap.events)
	if an.Orphans > 0 {
		out = append(out, violationf(OracleTelescoping,
			"%d orphan chains in an untruncated trace (lifecycle events missing)", an.Orphans))
	}
	for _, mp := range an.Msgs {
		var sum sim.Time
		for _, s := range mp.Stages {
			sum += s.Dur
		}
		if sum != mp.Total() {
			out = append(out, violationf(OracleTelescoping,
				"msg %d: stages sum to %v but end-to-end latency is %v", mp.ID, sum, mp.Total()))
		}
	}
	return out
}

// monotoneGauges are cumulative by contract: each may only grow over a run.
var monotoneGauges = []string{
	"net/injected", "net/delivered", "net/bytes", "net/refusals",
	"net/high_pri", "net/low_pri",
	"net/fault/injected_drops", "net/fault/corrupted", "net/fault/duplicated",
	"net/fault/delayed", "net/fault/outage_drops", "net/fault/death_drops",
}

// monotoneWatch samples the cumulative gauges at run-slice boundaries and
// reports any that move backwards — a counter reset or double-registered
// metric that a single end-of-run snapshot can never see.
type monotoneWatch struct {
	m    *core.Machine
	last map[string]int64
}

func newMonotoneWatch(m *core.Machine) *monotoneWatch {
	return &monotoneWatch{m: m, last: make(map[string]int64, len(monotoneGauges))}
}

func (w *monotoneWatch) sample() []Violation {
	var out []Violation
	reg := w.m.Metrics()
	for _, path := range monotoneGauges {
		v, ok := reg.ReadGauge(path)
		if !ok {
			continue
		}
		if prev, seen := w.last[path]; seen && v < prev {
			out = append(out, violationf(OracleMonotone,
				"%s went backwards: %d after %d (at %v)", path, v, prev, w.m.Eng.Now()))
		}
		w.last[path] = v
	}
	return out
}

// checkInjectorRegistry cross-checks the injector's struct counters against
// their registry gauges — the two views chaos findings and voyager-stats
// reports are built from must never disagree.
func checkInjectorRegistry(m *core.Machine) []Violation {
	if m.Faults == nil {
		return nil
	}
	fs := m.Faults.Stats()
	var out []Violation
	for _, c := range []struct {
		path string
		want uint64
	}{
		{"net/fault/injected_drops", fs.InjectedDrops},
		{"net/fault/corrupted", fs.Corrupted},
		{"net/fault/duplicated", fs.Duplicated},
		{"net/fault/delayed", fs.Delayed},
		{"net/fault/outage_drops", fs.OutageDrops},
		{"net/fault/death_drops", fs.DeathDrops},
	} {
		got, ok := m.Metrics().ReadGauge(c.path)
		if !ok {
			out = append(out, violationf(OracleMetrics, "%s not registered", c.path))
			continue
		}
		if uint64(got) != c.want {
			out = append(out, violationf(OracleMetrics,
				"%s reads %d but the injector counted %d", c.path, got, c.want))
		}
	}
	return out
}

// stallViolation renders a watchdog stall as a finding, enriching the sim
// engine's dump with machine-level context: fabric occupancy and per-node
// queue backlogs — the state a deadlock investigation reaches for first.
func stallViolation(m *core.Machine, se *sim.StallError) Violation {
	se.Notes = append(se.Notes, fmt.Sprintf("fabric: %d packets in flight", fabricInFlight(m)))
	for i, n := range m.Nodes {
		se.Notes = append(se.Notes, fmt.Sprintf(
			"node%d: tx-backlog=%d rx-rel-pending=%d",
			i, n.Ctrl.TxBacklog(),
			n.Ctrl.RxProducer(node.RxRel)-n.Ctrl.RxConsumer(node.RxRel)))
	}
	return violationf(OracleWatchdog, "%v", se)
}
