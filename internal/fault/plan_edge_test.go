package fault

import (
	"strings"
	"testing"

	"startvoyager/internal/sim"
)

// Wildcards mixed with concrete endpoints: *-N, N-*, and *-* must each
// match exactly the traffic their concrete half pins down.
func TestOutageWildcardMix(t *testing.T) {
	at := 15 * sim.Microsecond
	cases := []struct {
		spec                   string
		src, dst               int
		into2, outOf2, zeroTo1 bool
	}{
		// *-2: anything into node 2, nothing out of it.
		{"outage=*-2@10us:20us", -1, 2, true, false, false},
		// 2-*: anything out of node 2, nothing into it.
		{"outage=2-*@10us:20us", 2, -1, false, true, false},
		// *-*: the whole fabric.
		{"outage=*-*@10us:20us", -1, -1, true, true, true},
	}
	for _, c := range cases {
		p, err := ParsePlan(c.spec)
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", c.spec, err)
		}
		o := p.Outages[0]
		if o.Src != c.src || o.Dst != c.dst {
			t.Fatalf("%q parsed to %+v", c.spec, o)
		}
		if got := o.covers(0, 2, at); got != c.into2 {
			t.Errorf("%q covers(0,2) = %v, want %v", c.spec, got, c.into2)
		}
		if got := o.covers(2, 0, at); got != c.outOf2 {
			t.Errorf("%q covers(2,0) = %v, want %v", c.spec, got, c.outOf2)
		}
		if got := o.covers(0, 1, at); got != c.zeroTo1 {
			t.Errorf("%q covers(0,1) = %v, want %v", c.spec, got, c.zeroTo1)
		}
	}
}

// Overlapping windows behave as their union; adjacent (back-to-back)
// windows leave no gap and no double boundary: [10,20) then [20,30) covers
// t=20 exactly once, via the second window.
func TestOutageOverlapAndAdjacency(t *testing.T) {
	p, err := ParsePlan("outage=0-1@10us:20us,outage=0-1@15us:25us,outage=0-1@25us:35us")
	if err != nil {
		t.Fatal(err)
	}
	covered := func(at sim.Time) int {
		n := 0
		for _, o := range p.Outages {
			if o.covers(0, 1, at) {
				n++
			}
		}
		return n
	}
	// Overlap region: both windows claim it — the injector drops either way.
	if covered(17*sim.Microsecond) != 2 {
		t.Errorf("overlap region covered by %d windows, want 2", covered(17*sim.Microsecond))
	}
	// Adjacent boundary: half-open windows hand off with no double count.
	if covered(25*sim.Microsecond) != 1 {
		t.Errorf("adjacency boundary covered %d times, want exactly 1", covered(25*sim.Microsecond))
	}
	// No gap anywhere in the merged span [10us, 35us).
	for at := 10 * sim.Microsecond; at < 35*sim.Microsecond; at += sim.Microsecond {
		if covered(at) == 0 {
			t.Fatalf("gap at %v inside the merged outage span", at)
		}
	}
	if covered(35*sim.Microsecond) != 0 {
		t.Error("half-open window covered its own end")
	}
}

// Zero-length (and inverted) windows are rejected at parse time — a window
// that can never fire is always a typo.
func TestOutageEmptyWindowRejected(t *testing.T) {
	for _, spec := range []string{
		"outage=0-1@10us:10us",
		"outage=*-1@5ms:5ms",
		"outage=0-1@20us:10us",
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) accepted an empty window", spec)
		} else if !strings.Contains(err.Error(), "empty") {
			t.Errorf("ParsePlan(%q) error %q does not say the window is empty", spec, err)
		}
	}
}

// Parse errors must name the offending token and enumerate the valid
// clause kinds, so a botched -faults flag is self-explaining.
func TestParsePlanErrorsNameToken(t *testing.T) {
	cases := []struct{ spec, token string }{
		{"bogus=1", `"bogus"`},
		{"drop+0.1", `"drop+0.1"`},
		{"drop.mid=0.1", `"mid"`},
	}
	for _, c := range cases {
		_, err := ParsePlan(c.spec)
		if err == nil {
			t.Fatalf("ParsePlan(%q) accepted", c.spec)
		}
		msg := err.Error()
		if !strings.Contains(msg, c.token) {
			t.Errorf("ParsePlan(%q) error %q does not name token %s", c.spec, msg, c.token)
		}
		if !strings.Contains(msg, "valid clauses") || !strings.Contains(msg, "outage=SRC-DST@FROM:TO") {
			t.Errorf("ParsePlan(%q) error %q does not enumerate valid clause kinds", c.spec, msg)
		}
	}
}
