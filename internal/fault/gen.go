package fault

import (
	"startvoyager/internal/sim"
)

// GenPlan derives a random fault plan from a seed — the generation side of
// the chaos harness. The same (seed, nodes, horizon) triple always produces
// the same plan on every platform: every decision is drawn from one
// SplitMix64 stream in a fixed order, with no floats in control flow beyond
// rate values that are themselves deterministic.
//
// The distribution is biased toward the boundary cases where in-network
// protocols break: outage windows starting at time zero, back-to-back and
// overlapping windows, wildcard endpoints mixed with concrete ones, node
// deaths mid-transfer, and drop rates at the retransmit ladder's edge.
// horizon is the sim-time span the workload is expected to keep traffic in
// flight; windows and deaths are placed inside it so they actually bite.
func GenPlan(seed uint64, nodes int, horizon sim.Time) *Plan {
	r := rng{state: seed}
	p := &Plan{Seed: r.next() | 1}
	if nodes < 2 || horizon <= 0 {
		return p
	}

	// Probabilistic lane rates: usually shared across lanes (the common
	// operator input), sometimes split so High-lane ACK traffic sees
	// different weather than Low-lane data.
	split := r.intn(4) == 0
	p.Lanes[LaneHigh].Drop = genProb(&r)
	p.Lanes[LaneHigh].Corrupt = genProb(&r)
	p.Lanes[LaneHigh].Duplicate = genProb(&r)
	if split {
		p.Lanes[LaneLow].Drop = genProb(&r)
		p.Lanes[LaneLow].Corrupt = genProb(&r)
		p.Lanes[LaneLow].Duplicate = genProb(&r)
	} else {
		p.Lanes[LaneLow] = p.Lanes[LaneHigh]
	}
	if r.intn(3) == 0 {
		prob := genDelayProb(&r)
		max := genDelayMax(&r)
		p.Lanes[LaneHigh].DelayProb = prob
		p.Lanes[LaneHigh].DelayMax = max
		p.Lanes[LaneLow].DelayProb = prob
		p.Lanes[LaneLow].DelayMax = max
	}

	// Outage windows: 0-3, chained so consecutive windows are sometimes
	// back-to-back (To == next From) or overlapping — the orderings that
	// stress the covers() half-open arithmetic and the recovery path.
	nOutages := pick(&r, 35, 30, 20, 15)
	var prev *Outage
	for i := 0; i < nOutages; i++ {
		o := genOutage(&r, nodes, horizon, prev)
		p.Outages = append(p.Outages, o)
		prev = &p.Outages[len(p.Outages)-1]
	}

	// Node deaths: rare, at most nodes-1 so somebody survives to observe.
	nDeaths := pick(&r, 70, 25, 5)
	if nDeaths > nodes-1 {
		nDeaths = nodes - 1
	}
	used := 0 // bitmask of dead nodes; a node dies at most once
	for i := 0; i < nDeaths; i++ {
		node := r.intn(nodes)
		if used&(1<<node) != 0 {
			continue
		}
		used |= 1 << node
		at := genTime(&r, horizon/8, horizon/2)
		if r.intn(8) == 0 {
			at = 0 // dead on arrival: every exchange with it must fail fast
		}
		p.Deaths = append(p.Deaths, NodeDeath{Node: node, At: at})
	}
	return p
}

// genProb draws a drop/corrupt/dup rate: usually zero, sometimes light,
// occasionally at the heavy boundary where the backoff ladder gets climbed.
func genProb(r *rng) float64 {
	switch pick(r, 55, 25, 12, 8) {
	case 1:
		return float64(1+r.intn(5)) / 100 // 0.01 .. 0.05
	case 2:
		return float64(10+r.intn(11)) / 100 // 0.10 .. 0.20
	case 3:
		return 0.5 // boundary: every other packet
	default:
		return 0
	}
}

// genDelayProb draws a nonzero extra-latency probability.
func genDelayProb(r *rng) float64 { return float64(1+r.intn(10)) / 100 }

// genDelayMax draws the delay bound, biased around the 30us initial RTO so
// delayed frames race the retransmit timer.
func genDelayMax(r *rng) sim.Time {
	switch r.intn(4) {
	case 0:
		return 1 * sim.Microsecond
	case 1:
		return 10 * sim.Microsecond
	case 2:
		return 30 * sim.Microsecond // the R-Basic initial RTO
	default:
		return 100 * sim.Microsecond
	}
}

// genOutage draws one outage window. prev, when non-nil, lets the generator
// chain windows: back-to-back (adjacent, no gap) or overlapping with the
// previous one.
func genOutage(r *rng, nodes int, horizon sim.Time, prev *Outage) Outage {
	o := Outage{Src: genNode(r, nodes), Dst: genNode(r, nodes)}
	width := genWidth(r, horizon)
	switch {
	case prev != nil && r.intn(2) == 0:
		if r.intn(2) == 0 {
			o.From = prev.To // back-to-back: window starts the instant the last ends
		} else {
			o.From = prev.From + (prev.To-prev.From)/2 // overlapping halves
		}
	case r.intn(6) == 0:
		o.From = 0 // boundary: link down from time zero
	default:
		o.From = genTime(r, 0, horizon/2)
	}
	o.To = o.From + width
	return o
}

// genWidth draws an outage duration: a sliver, a typical slice, or a long
// haul that outlives several retransmit timeouts.
func genWidth(r *rng, horizon sim.Time) sim.Time {
	switch r.intn(3) {
	case 0:
		return sim.Time(1+r.intn(5)) * sim.Microsecond
	case 1:
		return horizon / 16
	default:
		return horizon / 4
	}
}

// genNode draws an endpoint: concrete most of the time, the * wildcard
// otherwise (mixing the two is one of the plan-grammar edge cases).
func genNode(r *rng, nodes int) int {
	if r.intn(4) == 0 {
		return -1
	}
	return r.intn(nodes)
}

// genTime draws a time uniformly in [lo, hi); lo when the range is empty.
func genTime(r *rng, lo, hi sim.Time) sim.Time {
	if hi <= lo {
		return lo
	}
	return lo + sim.Time(r.intn(int(hi-lo)))
}

// pick draws an index weighted by the given percentages (which the caller
// keeps summing to 100).
func pick(r *rng, weights ...int) int {
	n := r.intn(100)
	acc := 0
	for i, w := range weights {
		acc += w
		if n < acc {
			return i
		}
	}
	return len(weights) - 1
}
