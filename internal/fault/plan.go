package fault

import (
	"fmt"
	"strconv"
	"strings"

	"startvoyager/internal/sim"
)

// ParsePlan parses the -faults flag syntax into a Plan. The grammar is a
// comma-separated list of entries:
//
//	seed=7                probabilistic stream seed (default 1)
//	drop=0.05             drop probability, both lanes
//	corrupt=0.01          single-bit corruption probability, both lanes
//	dup=0.02              duplication probability, both lanes
//	delay=0.01@2us        extra-delay probability and maximum delay
//	outage=1-2@100us:600us directed link 1->2 down for [100us, 600us)
//	outage=*-0@1ms:2ms    every link into node 0 down for the window
//	death=3@1ms           node 3 leaves the network at 1 ms, permanently
//
// drop/corrupt/dup/delay accept a ".high" or ".low" suffix to set one lane
// only (e.g. drop.low=0.1). Times take ns/us/ms/s suffixes. outage and death
// may be repeated.
func ParsePlan(s string) (*Plan, error) {
	p := &Plan{Seed: 1}
	if strings.TrimSpace(s) == "" {
		return p, nil
	}
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		key, val, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("fault: entry %q is not key=value (%s)", entry, clauseKinds)
		}
		if err := p.apply(key, val); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// clauseKinds enumerates the accepted grammar for error messages, so a typo
// in a -faults flag names what would have been legal.
const clauseKinds = "valid clauses: seed=N, drop=P, corrupt=P, dup=P, " +
	"delay=P@maxT, outage=SRC-DST@FROM:TO, death=NODE@T; " +
	"drop/corrupt/dup/delay take an optional .high/.low lane suffix"

func (p *Plan) apply(key, val string) error {
	base, lane, err := splitLane(key)
	if err != nil {
		return err
	}
	switch base {
	case "seed":
		n, err := strconv.ParseUint(val, 0, 64)
		if err != nil {
			return fmt.Errorf("fault: bad seed %q", val)
		}
		p.Seed = n
		return nil
	case "drop", "corrupt", "dup":
		f, err := parseProb(key, val)
		if err != nil {
			return err
		}
		return p.setLanes(lane, func(lp *LaneProbs) {
			switch base {
			case "drop":
				lp.Drop = f
			case "corrupt":
				lp.Corrupt = f
			case "dup":
				lp.Duplicate = f
			}
		})
	case "delay":
		probStr, durStr, ok := strings.Cut(val, "@")
		if !ok {
			return fmt.Errorf("fault: delay %q wants prob@maxtime (e.g. 0.01@2us)", val)
		}
		f, err := parseProb(key, probStr)
		if err != nil {
			return err
		}
		d, err := ParseTime(durStr)
		if err != nil {
			return err
		}
		if d <= 0 {
			return fmt.Errorf("fault: delay bound %q must be positive", durStr)
		}
		return p.setLanes(lane, func(lp *LaneProbs) {
			lp.DelayProb = f
			lp.DelayMax = d
		})
	case "outage":
		if lane != "" {
			return fmt.Errorf("fault: outage takes no lane suffix")
		}
		o, err := parseOutage(val)
		if err != nil {
			return err
		}
		p.Outages = append(p.Outages, o)
		return nil
	case "death":
		if lane != "" {
			return fmt.Errorf("fault: death takes no lane suffix")
		}
		nodeStr, atStr, ok := strings.Cut(val, "@")
		if !ok {
			return fmt.Errorf("fault: death %q wants node@time (e.g. 3@1ms)", val)
		}
		node, err := strconv.Atoi(nodeStr)
		if err != nil || node < 0 {
			return fmt.Errorf("fault: bad death node %q", nodeStr)
		}
		at, err := ParseTime(atStr)
		if err != nil {
			return err
		}
		p.Deaths = append(p.Deaths, NodeDeath{Node: node, At: at})
		return nil
	default:
		return fmt.Errorf("fault: unknown plan key %q in entry %q (%s)", key, key+"="+val, clauseKinds)
	}
}

// setLanes applies set to the lanes selected by the suffix ("" = both).
func (p *Plan) setLanes(lane string, set func(*LaneProbs)) error {
	switch lane {
	case "":
		set(&p.Lanes[LaneHigh])
		set(&p.Lanes[LaneLow])
	case "high":
		set(&p.Lanes[LaneHigh])
	case "low":
		set(&p.Lanes[LaneLow])
	}
	return nil
}

func splitLane(key string) (base, lane string, err error) {
	base, lane, ok := strings.Cut(key, ".")
	if !ok {
		return key, "", nil
	}
	if lane != "high" && lane != "low" {
		return "", "", fmt.Errorf("fault: unknown lane suffix %q in key %q (want high or low; %s)", lane, key, clauseKinds)
	}
	return base, lane, nil
}

func parseProb(key, val string) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil || f < 0 || f > 1 {
		return 0, fmt.Errorf("fault: %s wants a probability in [0,1], got %q", key, val)
	}
	return f, nil
}

// parseOutage parses "SRC-DST@FROM:TO" where SRC/DST are node numbers or *.
func parseOutage(val string) (Outage, error) {
	pair, window, ok := strings.Cut(val, "@")
	if !ok {
		return Outage{}, fmt.Errorf("fault: outage %q wants src-dst@from:to", val)
	}
	srcStr, dstStr, ok := strings.Cut(pair, "-")
	if !ok {
		return Outage{}, fmt.Errorf("fault: outage pair %q wants src-dst (use * as wildcard)", pair)
	}
	src, err := parseNodeOrWild(srcStr)
	if err != nil {
		return Outage{}, err
	}
	dst, err := parseNodeOrWild(dstStr)
	if err != nil {
		return Outage{}, err
	}
	fromStr, toStr, ok := strings.Cut(window, ":")
	if !ok {
		return Outage{}, fmt.Errorf("fault: outage window %q wants from:to", window)
	}
	from, err := ParseTime(fromStr)
	if err != nil {
		return Outage{}, err
	}
	to, err := ParseTime(toStr)
	if err != nil {
		return Outage{}, err
	}
	if to <= from {
		return Outage{}, fmt.Errorf("fault: outage window %q is empty", window)
	}
	return Outage{Src: src, Dst: dst, From: from, To: to}, nil
}

func parseNodeOrWild(s string) (int, error) {
	if s == "*" {
		return -1, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("fault: bad node %q (want a node number or *)", s)
	}
	return n, nil
}

// ParseTime parses a duration like "250ns", "2us", "1.5ms", or "1s" into
// simulated time.
func ParseTime(s string) (sim.Time, error) {
	s = strings.TrimSpace(s)
	unit := sim.Time(0)
	var num string
	switch {
	case strings.HasSuffix(s, "ns"):
		unit, num = sim.Nanosecond, strings.TrimSuffix(s, "ns")
	case strings.HasSuffix(s, "us"):
		unit, num = sim.Microsecond, strings.TrimSuffix(s, "us")
	case strings.HasSuffix(s, "ms"):
		unit, num = sim.Millisecond, strings.TrimSuffix(s, "ms")
	case strings.HasSuffix(s, "s"):
		unit, num = sim.Second, strings.TrimSuffix(s, "s")
	default:
		return 0, fmt.Errorf("fault: time %q wants a ns/us/ms/s suffix", s)
	}
	f, err := strconv.ParseFloat(num, 64)
	if err != nil || f < 0 {
		return 0, fmt.Errorf("fault: bad time %q", s)
	}
	return sim.Time(f * float64(unit)), nil
}
