package fault

import (
	"fmt"
	"strconv"
	"strings"

	"startvoyager/internal/sim"
)

// String renders the plan in the grammar ParsePlan accepts, so a plan — in
// particular a fuzzer-generated or shrinker-reduced one — can be committed
// as a -faults flag and replayed exactly. The rendering is deterministic
// (fixed clause order: seed, drop, corrupt, dup, delay, outages, deaths) and
// lossless: ParsePlan(p.String()) reproduces p field for field. A lane pair
// with equal rates collapses to the unsuffixed key; times render with the
// coarsest exact unit.
func (p *Plan) String() string {
	parts := []string{fmt.Sprintf("seed=%d", p.Seed)}
	hi, lo := p.Lanes[LaneHigh], p.Lanes[LaneLow]
	prob := func(key string, h, l float64) {
		switch {
		case h == l && h != 0:
			parts = append(parts, key+"="+formatProb(h))
		default:
			if h != 0 {
				parts = append(parts, key+".high="+formatProb(h))
			}
			if l != 0 {
				parts = append(parts, key+".low="+formatProb(l))
			}
		}
	}
	prob("drop", hi.Drop, lo.Drop)
	prob("corrupt", hi.Corrupt, lo.Corrupt)
	prob("dup", hi.Duplicate, lo.Duplicate)
	delay := func(key string, lp LaneProbs) {
		// A delay clause with no bound is a no-op in the injector; omit it so
		// the rendering stays parseable (ParsePlan requires a positive bound).
		if lp.DelayProb == 0 || lp.DelayMax <= 0 {
			return
		}
		parts = append(parts, key+"="+formatProb(lp.DelayProb)+"@"+FormatTime(lp.DelayMax))
	}
	if hi.DelayProb == lo.DelayProb && hi.DelayMax == lo.DelayMax {
		delay("delay", hi)
	} else {
		delay("delay.high", hi)
		delay("delay.low", lo)
	}
	for _, o := range p.Outages {
		parts = append(parts, fmt.Sprintf("outage=%s-%s@%s:%s",
			formatNode(o.Src), formatNode(o.Dst), FormatTime(o.From), FormatTime(o.To)))
	}
	for _, d := range p.Deaths {
		parts = append(parts, fmt.Sprintf("death=%d@%s", d.Node, FormatTime(d.At)))
	}
	return strings.Join(parts, ",")
}

// formatProb renders a probability with the shortest representation that
// ParseFloat reads back exactly.
func formatProb(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// formatNode renders a node index, with -1 as the * wildcard.
func formatNode(n int) string {
	if n < 0 {
		return "*"
	}
	return strconv.Itoa(n)
}

// FormatTime renders t in the ns/us/ms/s grammar ParseTime accepts, using
// the coarsest unit that divides t exactly so the round trip is lossless.
func FormatTime(t sim.Time) string {
	switch {
	case t != 0 && t%sim.Second == 0:
		return fmt.Sprintf("%ds", t/sim.Second)
	case t != 0 && t%sim.Millisecond == 0:
		return fmt.Sprintf("%dms", t/sim.Millisecond)
	case t != 0 && t%sim.Microsecond == 0:
		return fmt.Sprintf("%dus", t/sim.Microsecond)
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}
