package fault

import (
	"bytes"
	"testing"

	"startvoyager/internal/sim"
)

func TestRngDeterministic(t *testing.T) {
	a := rng{state: 42}
	b := rng{state: 42}
	for i := 0; i < 1000; i++ {
		if a.next() != b.next() {
			t.Fatalf("streams diverge at draw %d", i)
		}
	}
	c := rng{state: 43}
	same := 0
	a = rng{state: 42}
	for i := 0; i < 1000; i++ {
		if a.next() == c.next() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d of 1000 draws collide across seeds", same)
	}
}

func TestRngFloatRange(t *testing.T) {
	r := rng{state: 7}
	for i := 0; i < 10000; i++ {
		f := r.float()
		if f < 0 || f >= 1 {
			t.Fatalf("float() out of [0,1): %v", f)
		}
	}
}

func TestParsePlanDefaults(t *testing.T) {
	p, err := ParsePlan("")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 1 {
		t.Fatalf("default seed %d, want 1", p.Seed)
	}
	for _, lp := range p.Lanes {
		if lp != (LaneProbs{}) {
			t.Fatalf("empty plan has non-zero lane probs: %+v", lp)
		}
	}
}

func TestParsePlanFull(t *testing.T) {
	p, err := ParsePlan("seed=9,drop=0.05,corrupt=0.01,dup=0.02,delay=0.1@2us,outage=1-2@10us:20us,death=3@50us,drop.high=0.001")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 9 {
		t.Fatalf("seed %d", p.Seed)
	}
	if p.Lanes[LaneLow].Drop != 0.05 || p.Lanes[LaneHigh].Drop != 0.001 {
		t.Fatalf("drop probs: %+v", p.Lanes)
	}
	if p.Lanes[LaneHigh].Corrupt != 0.01 || p.Lanes[LaneLow].Corrupt != 0.01 {
		t.Fatalf("corrupt probs: %+v", p.Lanes)
	}
	if p.Lanes[LaneLow].DelayProb != 0.1 || p.Lanes[LaneLow].DelayMax != 2*sim.Microsecond {
		t.Fatalf("delay: %+v", p.Lanes[LaneLow])
	}
	if len(p.Outages) != 1 || p.Outages[0] != (Outage{Src: 1, Dst: 2, From: 10 * sim.Microsecond, To: 20 * sim.Microsecond}) {
		t.Fatalf("outage: %+v", p.Outages)
	}
	if len(p.Deaths) != 1 || p.Deaths[0] != (NodeDeath{Node: 3, At: 50 * sim.Microsecond}) {
		t.Fatalf("death: %+v", p.Deaths)
	}
}

func TestParsePlanWildcardOutage(t *testing.T) {
	p, err := ParsePlan("outage=*-0@1ms:2ms")
	if err != nil {
		t.Fatal(err)
	}
	o := p.Outages[0]
	if o.Src != -1 || o.Dst != 0 {
		t.Fatalf("wildcard outage: %+v", o)
	}
	if !o.covers(5, 0, sim.Time(1500)*sim.Microsecond) {
		t.Error("wildcard src should cover any src")
	}
	if o.covers(5, 1, sim.Time(1500)*sim.Microsecond) {
		t.Error("outage covers wrong dst")
	}
	if o.covers(5, 0, 2*sim.Millisecond) {
		t.Error("outage window should be half-open [From,To)")
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, s := range []string{
		"bogus=1",
		"drop=1.5",
		"drop=-0.1",
		"drop=x",
		"drop.mid=0.1",
		"delay=0.1",
		"delay=0.1@nope",
		"outage=1-2",
		"outage=1-2@20us:10us",
		"death=1",
		"death=x@1us",
		"seed=zz",
	} {
		if _, err := ParsePlan(s); err == nil {
			t.Errorf("ParsePlan(%q) accepted", s)
		}
	}
}

func TestParseTime(t *testing.T) {
	cases := map[string]sim.Time{
		"100ns": 100 * sim.Nanosecond,
		"2us":   2 * sim.Microsecond,
		"1.5ms": sim.Time(1500) * sim.Microsecond,
		"1s":    sim.Second,
	}
	for s, want := range cases {
		got, err := ParseTime(s)
		if err != nil {
			t.Errorf("ParseTime(%q): %v", s, err)
			continue
		}
		if got != want {
			t.Errorf("ParseTime(%q) = %v, want %v", s, got, want)
		}
	}
	if _, err := ParseTime("5"); err == nil {
		t.Error("ParseTime accepted a unitless value")
	}
}

func TestJudgeCleanPlanPasses(t *testing.T) {
	eng := sim.NewEngine()
	in := NewInjector(eng, Plan{Seed: 1})
	wire := []byte{1, 2, 3}
	for i := 0; i < 100; i++ {
		v := in.Judge(0, 1, LaneLow, wire)
		if v.Drop || v.Dup || v.Delay != 0 || &v.Wire[0] != &wire[0] {
			t.Fatalf("clean plan perturbed a packet: %+v", v)
		}
	}
	if in.Stats() != (Stats{}) {
		t.Fatalf("clean plan counted faults: %+v", in.Stats())
	}
}

func TestJudgeLoopbackExempt(t *testing.T) {
	plan := Plan{Seed: 1}
	plan.SetAllLanes(LaneProbs{Drop: 1})
	eng := sim.NewEngine()
	in := NewInjector(eng, plan)
	if v := in.Judge(2, 2, LaneLow, nil); v.Drop {
		t.Fatal("loopback traffic must bypass the fault plane")
	}
	if v := in.Judge(2, 3, LaneLow, nil); !v.Drop {
		t.Fatal("drop=1 did not drop cross-node traffic")
	}
}

func TestJudgeDropRateConverges(t *testing.T) {
	plan := Plan{Seed: 5}
	plan.SetAllLanes(LaneProbs{Drop: 0.3})
	eng := sim.NewEngine()
	in := NewInjector(eng, plan)
	drops := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if in.Judge(0, 1, LaneLow, nil).Drop {
			drops++
		}
	}
	rate := float64(drops) / n
	if rate < 0.27 || rate > 0.33 {
		t.Fatalf("drop rate %.3f far from configured 0.3", rate)
	}
	if in.Stats().InjectedDrops != uint64(drops) {
		t.Fatalf("stats %d vs observed %d", in.Stats().InjectedDrops, drops)
	}
}

func TestJudgeCorruptFlipsOneBit(t *testing.T) {
	plan := Plan{Seed: 3}
	plan.SetAllLanes(LaneProbs{Corrupt: 1})
	eng := sim.NewEngine()
	in := NewInjector(eng, plan)
	orig := []byte{0xAA, 0x55, 0x00, 0xFF}
	v := in.Judge(0, 1, LaneLow, orig)
	if &v.Wire[0] == &orig[0] {
		t.Fatal("corruption mutated the caller's buffer")
	}
	diff := 0
	for i := range orig {
		diff += popcount(orig[i] ^ v.Wire[i])
	}
	if diff != 1 {
		t.Fatalf("corruption flipped %d bits, want exactly 1", diff)
	}
}

func popcount(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

func TestJudgeDelayBounded(t *testing.T) {
	plan := Plan{Seed: 11}
	plan.SetAllLanes(LaneProbs{DelayProb: 1, DelayMax: 3 * sim.Microsecond})
	eng := sim.NewEngine()
	in := NewInjector(eng, plan)
	for i := 0; i < 1000; i++ {
		v := in.Judge(0, 1, LaneLow, nil)
		if v.Delay <= 0 || v.Delay > 3*sim.Microsecond {
			t.Fatalf("delay %v outside (0, 3us]", v.Delay)
		}
	}
}

func TestJudgeOutageWindow(t *testing.T) {
	plan := Plan{Seed: 1, Outages: []Outage{{Src: 0, Dst: 1,
		From: 10 * sim.Microsecond, To: 20 * sim.Microsecond}}}
	eng := sim.NewEngine()
	in := NewInjector(eng, plan)
	verdicts := make(map[string]bool)
	check := func(name string, at sim.Time, src, dst int) {
		eng.At(at, func() { verdicts[name] = in.Judge(src, dst, LaneLow, nil).Drop })
	}
	check("before", 9*sim.Microsecond, 0, 1)
	check("during", 15*sim.Microsecond, 0, 1)
	check("reverse", 15*sim.Microsecond, 1, 0)
	check("after", 25*sim.Microsecond, 0, 1)
	eng.Run()
	if verdicts["before"] || verdicts["after"] {
		t.Fatalf("outage leaked outside its window: %v", verdicts)
	}
	if !verdicts["during"] {
		t.Fatal("outage did not drop in-window traffic")
	}
	if verdicts["reverse"] {
		t.Fatal("outage is directional; reverse path dropped")
	}
	if in.Stats().OutageDrops != 1 {
		t.Fatalf("OutageDrops = %d, want 1", in.Stats().OutageDrops)
	}
}

func TestJudgeNodeDeath(t *testing.T) {
	plan := Plan{Seed: 1, Deaths: []NodeDeath{{Node: 1, At: 10 * sim.Microsecond}}}
	eng := sim.NewEngine()
	in := NewInjector(eng, plan)
	var before, toDead, fromDead, unrelated, delivery bool
	eng.At(5*sim.Microsecond, func() { before = in.Judge(0, 1, LaneLow, nil).Drop })
	eng.At(15*sim.Microsecond, func() {
		toDead = in.Judge(0, 1, LaneLow, nil).Drop
		fromDead = in.Judge(1, 0, LaneLow, nil).Drop
		unrelated = in.Judge(0, 2, LaneLow, nil).Drop
		delivery = in.DropOnDelivery(1)
	})
	eng.Run()
	if before {
		t.Fatal("node dropped traffic before its death time")
	}
	if !toDead || !fromDead {
		t.Fatalf("death must sever both directions: to=%v from=%v", toDead, fromDead)
	}
	if unrelated {
		t.Fatal("death of node 1 dropped 0->2 traffic")
	}
	if !delivery {
		t.Fatal("DropOnDelivery must swallow packets in flight to a dead node")
	}
}

func TestJudgeDuplicateCopiesWire(t *testing.T) {
	plan := Plan{Seed: 2}
	plan.SetAllLanes(LaneProbs{Duplicate: 1})
	eng := sim.NewEngine()
	in := NewInjector(eng, plan)
	v := in.Judge(0, 1, LaneLow, []byte{9, 9})
	if !v.Dup {
		t.Fatal("dup=1 did not duplicate")
	}
	if in.Stats().Duplicated != 1 {
		t.Fatalf("Duplicated = %d", in.Stats().Duplicated)
	}
}

func TestSameSeedSameVerdicts(t *testing.T) {
	plan := Plan{Seed: 77}
	plan.SetAllLanes(LaneProbs{Drop: 0.2, Corrupt: 0.1, Duplicate: 0.1,
		DelayProb: 0.3, DelayMax: sim.Microsecond})
	run := func() []Verdict {
		eng := sim.NewEngine()
		in := NewInjector(eng, plan)
		var out []Verdict
		for i := 0; i < 500; i++ {
			out = append(out, in.Judge(i%4, (i+1)%4, i%2, []byte{byte(i)}))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		av, bv := a[i], b[i]
		if av.Drop != bv.Drop || av.Dup != bv.Dup || av.Delay != bv.Delay ||
			!bytes.Equal(av.Wire, bv.Wire) {
			t.Fatalf("verdict %d differs between same-seed runs: %+v vs %+v", i, av, bv)
		}
	}
}
