package fault

import (
	"testing"

	"startvoyager/internal/sim"
)

// Same (seed, nodes, horizon) must always yield the same plan — the chaos
// harness's reproducibility rests on this.
func TestGenPlanDeterministic(t *testing.T) {
	for seed := uint64(1); seed < 50; seed++ {
		a := GenPlan(seed, 8, sim.Millisecond)
		b := GenPlan(seed, 8, sim.Millisecond)
		if a.String() != b.String() {
			t.Fatalf("seed %d: %q vs %q", seed, a.String(), b.String())
		}
	}
}

// Different seeds must explore the space: across a modest sweep we expect
// to see lane faults, outages, deaths, boundary windows (From == 0), and
// chained windows (back-to-back or overlapping) all appear.
func TestGenPlanCoversBoundaryCases(t *testing.T) {
	const horizon = 2 * sim.Millisecond
	var sawLaneFault, sawOutage, sawDeath, sawZeroFrom, sawChained, sawWildcard, sawSplit bool
	for seed := uint64(0); seed < 500; seed++ {
		p := GenPlan(seed, 4, horizon)
		if p.Lanes[LaneHigh] != (LaneProbs{}) || p.Lanes[LaneLow] != (LaneProbs{}) {
			sawLaneFault = true
		}
		if p.Lanes[LaneHigh] != p.Lanes[LaneLow] {
			sawSplit = true
		}
		if len(p.Outages) > 0 {
			sawOutage = true
		}
		for i, o := range p.Outages {
			if o.From == 0 {
				sawZeroFrom = true
			}
			if o.Src == -1 || o.Dst == -1 {
				sawWildcard = true
			}
			if i > 0 {
				prev := p.Outages[i-1]
				if o.From == prev.To || (o.From > prev.From && o.From < prev.To) {
					sawChained = true
				}
			}
		}
		if len(p.Deaths) > 0 {
			sawDeath = true
		}
		// Structural invariants on every plan.
		for _, o := range p.Outages {
			if o.To <= o.From {
				t.Fatalf("seed %d: empty window %+v", seed, o)
			}
		}
		seen := map[int]bool{}
		for _, d := range p.Deaths {
			if d.Node < 0 || d.Node >= 4 {
				t.Fatalf("seed %d: death of nonexistent node %d", seed, d.Node)
			}
			if seen[d.Node] {
				t.Fatalf("seed %d: node %d dies twice", seed, d.Node)
			}
			seen[d.Node] = true
		}
		if len(p.Deaths) > 3 {
			t.Fatalf("seed %d: %d deaths leave no survivor among 4 nodes", seed, len(p.Deaths))
		}
		if p.Seed == 0 {
			t.Fatalf("seed %d: generated plan has zero injector seed", seed)
		}
	}
	for name, saw := range map[string]bool{
		"lane faults": sawLaneFault, "outages": sawOutage, "deaths": sawDeath,
		"zero-start windows": sawZeroFrom, "chained windows": sawChained,
		"wildcard endpoints": sawWildcard, "split lanes": sawSplit,
	} {
		if !saw {
			t.Errorf("500-seed sweep never produced %s", name)
		}
	}
}

// Degenerate inputs produce a benign plan rather than panicking.
func TestGenPlanDegenerate(t *testing.T) {
	for _, c := range []struct {
		nodes   int
		horizon sim.Time
	}{{1, sim.Millisecond}, {0, sim.Millisecond}, {4, 0}, {4, -sim.Microsecond}} {
		p := GenPlan(7, c.nodes, c.horizon)
		if len(p.Outages) != 0 || len(p.Deaths) != 0 {
			t.Errorf("GenPlan(7, %d, %v) scheduled faults: %+v", c.nodes, c.horizon, p)
		}
		if p.Seed == 0 {
			t.Errorf("GenPlan(7, %d, %v) has zero seed", c.nodes, c.horizon)
		}
	}
}
