package fault

import (
	"startvoyager/internal/sim"
	"startvoyager/internal/stats"
)

// Stats counts the faults the injector has actually committed.
type Stats struct {
	InjectedDrops uint64 // probabilistic drops at injection
	Corrupted     uint64 // packets with a bit flipped
	Duplicated    uint64 // extra copies delivered
	Delayed       uint64 // packets given extra latency
	OutageDrops   uint64 // drops due to a scheduled link outage
	DeathDrops    uint64 // drops due to a dead src or dst node
}

// Verdict is the injector's ruling on one packet at its injection point.
type Verdict struct {
	Drop  bool     // lose the packet entirely
	Dup   bool     // deliver a second, independent copy
	Delay sim.Time // extra latency before the packet enters the fabric
	Wire  []byte   // payload to use; differs from the input when corrupted
}

// Injector executes a Plan against fabric traffic. Both Arctic fabrics call
// Judge once per injected packet and DropOnDelivery once per ejection attempt,
// so fault decisions land at the same boundaries on either topology.
type Injector struct {
	eng       *sim.Engine
	plan      Plan
	rng       rng
	stats     Stats
	delayHist *stats.Histogram
}

// NewInjector builds an injector for the plan. The engine is used for sim
// time (outage windows, node deaths) and for trace instants.
func NewInjector(eng *sim.Engine, plan Plan) *Injector {
	return &Injector{
		eng:       eng,
		plan:      plan,
		rng:       rng{state: plan.Seed},
		delayHist: stats.NewHistogram(stats.ExpBounds(100, 2, 12)...),
	}
}

// Plan returns a copy of the plan the injector is executing.
func (in *Injector) Plan() Plan { return in.plan }

// Stats returns a snapshot of the fault counters.
func (in *Injector) Stats() Stats { return in.stats }

// dead reports whether the node has died by now.
func (in *Injector) dead(node int, now sim.Time) bool {
	for _, d := range in.plan.Deaths {
		if d.Node == node && now >= d.At {
			return true
		}
	}
	return false
}

// Judge rules on one packet at injection. src/dst are node indices, lane is
// the network priority (LaneHigh/LaneLow), and wire is the encoded frame.
// Loopback traffic (src == dst) always passes untouched: the fault plane
// models the external network, and the node-internal path stays ideal.
func (in *Injector) Judge(src, dst, lane int, wire []byte) Verdict {
	v := Verdict{Wire: wire}
	if src == dst {
		return v
	}
	now := in.eng.Now()
	if in.dead(src, now) || in.dead(dst, now) {
		in.stats.DeathDrops++
		v.Drop = true
		in.instant("fault-death", src, dst)
		return v
	}
	for _, o := range in.plan.Outages {
		if o.covers(src, dst, now) {
			in.stats.OutageDrops++
			v.Drop = true
			in.instant("fault-outage", src, dst)
			return v
		}
	}
	if lane < 0 || lane >= numLanes {
		lane = LaneLow
	}
	lp := &in.plan.Lanes[lane]
	if lp.Drop > 0 && in.rng.float() < lp.Drop {
		in.stats.InjectedDrops++
		v.Drop = true
		in.instant("fault-drop", src, dst)
		return v
	}
	if lp.Corrupt > 0 && len(wire) > 0 && in.rng.float() < lp.Corrupt {
		w := make([]byte, len(wire))
		copy(w, wire)
		bit := in.rng.intn(len(w) * 8)
		w[bit/8] ^= 1 << (bit % 8)
		v.Wire = w
		in.stats.Corrupted++
		in.instant("fault-corrupt", src, dst)
	}
	if lp.Duplicate > 0 && in.rng.float() < lp.Duplicate {
		v.Dup = true
		in.stats.Duplicated++
		in.instant("fault-dup", src, dst)
	}
	if lp.DelayProb > 0 && lp.DelayMax > 0 && in.rng.float() < lp.DelayProb {
		v.Delay = sim.Time(1 + in.rng.intn(int(lp.DelayMax)))
		in.stats.Delayed++
		in.delayHist.ObserveTime(v.Delay)
		in.instant("fault-delay", src, dst)
	}
	return v
}

// DropOnDelivery reports whether an in-flight packet must die at the
// delivery boundary because its destination node has died since injection.
func (in *Injector) DropOnDelivery(dst int) bool {
	if !in.dead(dst, in.eng.Now()) {
		return false
	}
	in.stats.DeathDrops++
	in.instant("fault-death", -1, dst)
	return true
}

func (in *Injector) instant(name string, src, dst int) {
	if !in.eng.Observed() {
		return
	}
	node := src
	if node < 0 {
		node = dst
	}
	in.eng.Instant(node, "net", name, sim.Int("src", src), sim.Int("dst", dst))
}

// RegisterMetrics exposes the fault counters, typically under net/fault.
func (in *Injector) RegisterMetrics(r *stats.Registry) {
	r.Gauge("injected_drops", func() int64 { return int64(in.stats.InjectedDrops) })
	r.Gauge("corrupted", func() int64 { return int64(in.stats.Corrupted) })
	r.Gauge("duplicated", func() int64 { return int64(in.stats.Duplicated) })
	r.Gauge("delayed", func() int64 { return int64(in.stats.Delayed) })
	r.Gauge("outage_drops", func() int64 { return int64(in.stats.OutageDrops) })
	r.Gauge("death_drops", func() int64 { return int64(in.stats.DeathDrops) })
	r.Histogram("delay_ns", in.delayHist)
}
