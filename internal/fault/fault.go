// Package fault is the deterministic network fault-injection plane. A Plan
// describes probabilistic per-lane faults (drop, corrupt, duplicate, delay),
// scheduled link-outage windows, and whole-node deaths; an Injector executes
// the plan against fabric traffic using a SplitMix64 stream seeded from the
// plan, so the same seed and plan reproduce the same faults byte for byte.
//
// Determinism rules: no wall clock, no global rand — every decision is a
// pure function of (plan, seed, simulation history). The package depends
// only on sim and stats so both Arctic fabrics can consult it without an
// import cycle.
package fault

import (
	"startvoyager/internal/sim"
)

// Network priority lanes, mirroring arctic.Priority without importing it.
const (
	LaneHigh = 0
	LaneLow  = 1
	numLanes = 2
)

// LaneProbs holds the probabilistic fault rates for one priority lane.
// Probabilities are in [0, 1] and are evaluated independently per packet.
type LaneProbs struct {
	Drop      float64 // silently lose the packet at injection
	Corrupt   float64 // flip one random bit of the wire bytes
	Duplicate float64 // deliver the packet twice
	DelayProb float64 // add extra latency before entering the fabric
	DelayMax  sim.Time
}

// Outage disables one directed link (or a wildcard set) for a window of
// simulated time: packets injected for (Src, Dst) while From <= now < To are
// dropped. Src or Dst of -1 match any node.
type Outage struct {
	Src, Dst int
	From, To sim.Time
}

// covers reports whether the outage applies to a packet on (src, dst) at now.
func (o Outage) covers(src, dst int, now sim.Time) bool {
	if now < o.From || now >= o.To {
		return false
	}
	if o.Src >= 0 && o.Src != src {
		return false
	}
	if o.Dst >= 0 && o.Dst != dst {
		return false
	}
	return true
}

// NodeDeath permanently partitions a node from the fabric at a simulated
// time: from At on, every packet to or from the node is dropped (including
// packets already in flight, which die at the delivery boundary). The node's
// processors keep executing — death models losing the machine's network
// presence, which is what its peers can observe.
type NodeDeath struct {
	Node int
	At   sim.Time
}

// Plan is a complete deterministic fault schedule.
type Plan struct {
	Seed    uint64
	Lanes   [numLanes]LaneProbs // indexed by network priority lane
	Outages []Outage
	Deaths  []NodeDeath
}

// SetAllLanes applies the same probabilistic rates to both lanes.
func (p *Plan) SetAllLanes(lp LaneProbs) {
	for i := range p.Lanes {
		p.Lanes[i] = lp
	}
}

// rng is a SplitMix64 stream — the same generator the workload package uses
// for seed derivation. It is tiny, fast, and completely reproducible.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float returns a uniform draw in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// intn returns a uniform draw in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }
