package fault

import (
	"testing"

	"startvoyager/internal/sim"
)

// plansEqual compares two plans field for field (slices by value).
func plansEqual(a, b *Plan) bool {
	if a.Seed != b.Seed || a.Lanes != b.Lanes ||
		len(a.Outages) != len(b.Outages) || len(a.Deaths) != len(b.Deaths) {
		return false
	}
	for i := range a.Outages {
		if a.Outages[i] != b.Outages[i] {
			return false
		}
	}
	for i := range a.Deaths {
		if a.Deaths[i] != b.Deaths[i] {
			return false
		}
	}
	return true
}

// ParsePlan(p.String()) must reproduce p exactly — the property that lets a
// shrunken repro be committed as a -faults flag and replayed.
func TestPlanStringRoundTrip(t *testing.T) {
	specs := []string{
		"",
		"seed=9,drop=0.05,corrupt=0.01,dup=0.02,delay=0.1@2us,outage=1-2@10us:20us,death=3@50us",
		"seed=2,drop.high=0.001,drop.low=0.25,delay.low=0.03@30us",
		"outage=*-0@1ms:2ms,outage=0-*@0ns:5us,outage=*-*@7us:8us,death=0@0ns",
		"seed=18446744073709551615,dup=0.5,outage=3-1@999ns:1us",
	}
	for _, spec := range specs {
		p, err := ParsePlan(spec)
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", spec, err)
		}
		s := p.String()
		q, err := ParsePlan(s)
		if err != nil {
			t.Fatalf("round trip of %q: rendering %q does not parse: %v", spec, s, err)
		}
		if !plansEqual(p, q) {
			t.Errorf("round trip of %q via %q: %+v != %+v", spec, s, p, q)
		}
	}
}

// Rendering is canonical: the same plan expressed two ways in the input
// grammar renders to one string.
func TestPlanStringCanonical(t *testing.T) {
	a, err := ParsePlan("drop.high=0.1,drop.low=0.1,seed=4")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParsePlan("seed=4,drop=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("equivalent plans render differently: %q vs %q", a.String(), b.String())
	}
}

// Generated plans — the fuzzer's whole output space — must round-trip too.
func TestGenPlanRoundTrip(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		p := GenPlan(seed, 4, 2*sim.Millisecond)
		s := p.String()
		q, err := ParsePlan(s)
		if err != nil {
			t.Fatalf("seed %d: rendering %q does not parse: %v", seed, s, err)
		}
		if !plansEqual(p, q) {
			t.Fatalf("seed %d: round trip via %q: %+v != %+v", seed, s, p, q)
		}
	}
}

func TestFormatTime(t *testing.T) {
	cases := map[sim.Time]string{
		0:                           "0ns",
		250 * sim.Nanosecond:        "250ns",
		2 * sim.Microsecond:         "2us",
		1500 * sim.Microsecond:      "1500us",
		3 * sim.Millisecond:         "3ms",
		sim.Second:                  "1s",
		sim.Second + sim.Nanosecond: "1000000001ns",
	}
	for in, want := range cases {
		if got := FormatTime(in); got != want {
			t.Errorf("FormatTime(%d) = %q, want %q", int64(in), got, want)
		}
		back, err := ParseTime(FormatTime(in))
		if err != nil || back != in {
			t.Errorf("FormatTime(%d) = %q does not parse back: %v, %v", int64(in), FormatTime(in), back, err)
		}
	}
}
