package prof

import (
	"fmt"
	"io"
	"strings"
)

// leafLabel renders a tree node as a folded-stack frame. Wait leaves are
// prefixed so flame graphs visually separate waiting from execution; unnamed
// conditions fall back to their kind.
func leafLabel(n *TreeNode) string {
	switch n.Kind {
	case "cond":
		name := n.Name
		if name == "" {
			name = "cond"
		}
		return "wait:" + name
	case "queue":
		name := n.Name
		if name == "" {
			name = "queue"
		}
		return "queue:" + name
	default:
		return n.Name
	}
}

// WriteFolded writes the profile in folded-stacks format — one
// `frame;frame;leaf <simulated-ns>` line per tree node with nonzero self
// time — consumable directly by flamegraph.pl, inferno, or speedscope.
// Lines appear in deterministic tree order (children sorted by kind, name).
func (d *Doc) WriteFolded(w io.Writer) error {
	var stack []string
	var walk func(n *TreeNode) error
	walk = func(n *TreeNode) error {
		stack = append(stack, leafLabel(n))
		if self := n.SelfNs(); self > 0 {
			if _, err := fmt.Fprintf(w, "%s %d\n", strings.Join(stack, ";"), self); err != nil {
				return err
			}
		}
		for _, c := range n.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		stack = stack[:len(stack)-1]
		return nil
	}
	for _, n := range d.Tree {
		if err := walk(n); err != nil {
			return err
		}
	}
	return nil
}
