package prof

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"startvoyager/internal/sim"
	"startvoyager/internal/stats"
)

var update = flag.Bool("update", false, "rewrite golden files")

// synthRun drives a small synthetic workload covering every bucket and hook:
// busy time (Delay), cond waits, queue waits, pushed frames, a proc that
// finishes mid-run, and procs still blocked at the snapshot.
func synthRun() *Profiler {
	e := sim.NewEngine()
	pr := New()
	e.SetProfiler(pr)

	q := sim.NewQueue[int](e)
	c := sim.NewCond(e)
	c.SetName("ready")

	// Consumer: two queue pops with framed processing after each.
	e.SpawnOn(0, "sP", "consumer", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			v := q.Pop(p)
			e.ProfPush("handle")
			p.Delay(sim.Time(10 * (v + 1)))
			e.ProfPop()
		}
	})
	// Producer: staggered pushes, then a cond wait nobody signals (still
	// blocked at Finish).
	e.SpawnOn(0, "aP", "producer", func(p *sim.Proc) {
		p.Delay(100)
		q.Push(0)
		p.Delay(100)
		q.Push(1)
		c.Wait(p)
	})
	// Short-lived host proc: finishes well before the run ends.
	e.Spawn("ephemeral", func(p *sim.Proc) {
		p.Delay(50)
	})
	e.RunUntil(500)
	pr.Finish(e.Now())
	return pr
}

// TestTelescoping: every synthetic proc's buckets tile its lifetime
// exactly, and the run's totals line up across Doc fields.
func TestTelescoping(t *testing.T) {
	doc := synthRun().Doc(nil)
	if doc.SimNs != 500 {
		t.Fatalf("SimNs = %d, want 500", doc.SimNs)
	}
	var lifetimes int64
	for _, p := range doc.Procs {
		life := p.EndNs - p.SpawnNs
		if got := p.BusyNs + p.CondNs + p.QueueNs; got != life {
			t.Errorf("proc %s: busy %d + cond %d + queue %d != lifetime %d",
				p.Name, p.BusyNs, p.CondNs, p.QueueNs, life)
		}
		lifetimes += life
	}
	if lifetimes != doc.TotalNs {
		t.Errorf("TotalNs = %d, lifetimes sum to %d", doc.TotalNs, lifetimes)
	}

	byName := map[string]ProcEntry{}
	for _, p := range doc.Procs {
		byName[p.Name] = p
	}
	// Consumer: waits 100ns for the first item, handles it 10ns, waits 90ns
	// for the second, handles it 20ns, then returns at t=220.
	con := byName["consumer"]
	if con.QueueNs != 100+90 || con.BusyNs != 30 || con.EndNs != 220 || con.Live {
		t.Errorf("consumer buckets: busy=%d queue=%d end=%d live=%v",
			con.BusyNs, con.QueueNs, con.EndNs, con.Live)
	}
	// Producer: 200ns of delays, then cond-blocked to t=500.
	pro := byName["producer"]
	if pro.BusyNs != 200 || pro.CondNs != 300 || pro.QueueNs != 0 {
		t.Errorf("producer buckets: busy=%d cond=%d queue=%d", pro.BusyNs, pro.CondNs, pro.QueueNs)
	}
	// Ephemeral: done at t=50, lifetime all busy.
	eph := byName["ephemeral"]
	if eph.BusyNs != 50 || eph.EndNs != 50 || eph.Live || eph.Group != "host" {
		t.Errorf("ephemeral entry: %+v", eph)
	}
}

// TestFrameAttribution: framed busy time lands under the pushed frame, not
// the proc root.
func TestFrameAttribution(t *testing.T) {
	doc := synthRun().Doc(nil)
	var folded bytes.Buffer
	if err := doc.WriteFolded(&folded); err != nil {
		t.Fatal(err)
	}
	got := folded.String()
	for _, want := range []string{
		"node0/sP;consumer;handle 30\n",
		"node0/aP;producer 200\n",
		"node0/aP;producer;wait:ready 300\n",
		"host;ephemeral 50\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("folded output missing %q:\n%s", want, got)
		}
	}
}

// decodePprofTotal is a minimal protobuf reader: it sums the first value of
// every Sample in a pprof Profile message, independently of the encoder
// under test.
func decodePprofTotal(t *testing.T, data []byte) int64 {
	t.Helper()
	readVarint := func(b []byte, pos int) (uint64, int) {
		var v uint64
		var shift uint
		for {
			if pos >= len(b) {
				t.Fatal("pprof: truncated varint")
			}
			c := b[pos]
			pos++
			v |= uint64(c&0x7f) << shift
			if c < 0x80 {
				return v, pos
			}
			shift += 7
		}
	}
	var total int64
	pos := 0
	for pos < len(data) {
		key, next := readVarint(data, pos)
		pos = next
		field, wire := int(key>>3), int(key&7)
		switch wire {
		case 0:
			_, pos = readVarint(data, pos)
		case 2:
			ln, next := readVarint(data, pos)
			body := data[next : next+int(ln)]
			pos = next + int(ln)
			if field != 2 { // Profile.sample
				continue
			}
			// Inside Sample: field 2 is the packed value list.
			spos := 0
			for spos < len(body) {
				skey, snext := readVarint(body, spos)
				spos = snext
				sfield, swire := int(skey>>3), int(skey&7)
				if swire != 2 {
					t.Fatalf("pprof: unexpected wire type %d in Sample", swire)
				}
				sln, snext := readVarint(body, spos)
				inner := body[snext : snext+int(sln)]
				spos = snext + int(sln)
				if sfield == 2 {
					v, _ := readVarint(inner, 0)
					total += int64(v)
				}
			}
		default:
			t.Fatalf("pprof: unexpected wire type %d", wire)
		}
	}
	return total
}

// TestFormatTotalsAgree: the folded stacks, the pprof samples, and the JSON
// document all report the same total simulated time — they derive from one
// tree, and this pins that they stay that way.
func TestFormatTotalsAgree(t *testing.T) {
	doc := synthRun().Doc(nil)

	var folded bytes.Buffer
	if err := doc.WriteFolded(&folded); err != nil {
		t.Fatal(err)
	}
	var foldedTotal int64
	for _, line := range strings.Split(strings.TrimSuffix(folded.String(), "\n"), "\n") {
		var v int64
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("malformed folded line %q", line)
		}
		for _, c := range line[idx+1:] {
			v = v*10 + int64(c-'0')
		}
		foldedTotal += v
	}

	var pb bytes.Buffer
	if err := doc.WritePprof(&pb); err != nil {
		t.Fatal(err)
	}
	pprofTotal := decodePprofTotal(t, pb.Bytes())

	if foldedTotal != doc.TotalNs {
		t.Errorf("folded total %d != doc.TotalNs %d", foldedTotal, doc.TotalNs)
	}
	if pprofTotal != doc.TotalNs {
		t.Errorf("pprof total %d != doc.TotalNs %d", pprofTotal, doc.TotalNs)
	}
}

// TestJSONRoundTrip: WriteJSON then ReadDoc reproduces the document's
// export byte for byte.
func TestJSONRoundTrip(t *testing.T) {
	doc := synthRun().Doc(&stats.RunMeta{Tool: "test", Nodes: 1, SimTimeNs: 500})
	var a bytes.Buffer
	if err := doc.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadDoc(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := parsed.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("JSON round trip changed the document")
	}
	if _, err := ReadDoc(strings.NewReader(`{"schema":"bogus/v0"}`)); err == nil {
		t.Error("ReadDoc accepted an unknown schema")
	}
}

// TestReportGolden pins the report and diff renderings for the synthetic
// run (refresh with -update).
func TestReportGolden(t *testing.T) {
	doc := synthRun().Doc(&stats.RunMeta{Tool: "test", Mechanism: "synthetic",
		Nodes: 1, SimTimeNs: 500})
	var buf bytes.Buffer
	if err := doc.WriteReport(&buf, 5); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("\n")
	// Diff against a copy with one frame's self time inflated.
	mod := synthRun().Doc(nil)
	findFrame(t, mod.Tree, "node0/sP", "consumer", "handle").BusyNs += 40
	if err := WriteDiff(&buf, doc, mod, 5); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "report.golden", buf.Bytes())
}

// findFrame descends the export tree along the named frame path.
func findFrame(t *testing.T, ns []*TreeNode, path ...string) *TreeNode {
	t.Helper()
	var cur *TreeNode
	for _, name := range path {
		cur = nil
		for _, n := range ns {
			if n.Kind == "frame" && n.Name == name {
				cur = n
				break
			}
		}
		if cur == nil {
			t.Fatalf("frame path %v not found in tree", path)
		}
		ns = cur.Children
	}
	return cur
}

func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s differs from golden (run with -update to refresh):\n%s", name, got)
	}
}

// TestFinishTerminal: hooks after Finish are ignored, a second Finish is a
// no-op, and Doc before Finish panics.
func TestFinishTerminal(t *testing.T) {
	e := sim.NewEngine()
	pr := New()
	e.SetProfiler(pr)
	e.SpawnOn(0, "aP", "late", func(p *sim.Proc) {
		p.Delay(100)
		p.Delay(100)
	})
	e.RunUntil(50)
	pr.Finish(e.Now())
	doc1 := pr.Doc(nil)
	e.Run() // the proc resumes and finishes after the snapshot
	pr.Finish(e.Now())
	doc2 := pr.Doc(nil)
	var a, b bytes.Buffer
	if err := doc1.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := doc2.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("post-Finish activity changed the exported document")
	}

	defer func() {
		if recover() == nil {
			t.Error("Doc before Finish did not panic")
		}
	}()
	New().Doc(nil)
}
