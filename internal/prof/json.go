package prof

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"startvoyager/internal/sim"
	"startvoyager/internal/stats"
)

// Schema identifies the profile JSON document format.
const Schema = "voyager-prof/v1"

// Doc is the exported profile: the single source all three output formats
// (JSON, folded stacks, pprof) derive from, so their totals agree by
// construction.
type Doc struct {
	Schema  string         `json:"schema"`
	Run     *stats.RunMeta `json:"run,omitempty"`
	SimNs   int64          `json:"sim_ns"`   // simulated run length (Finish time)
	TotalNs int64          `json:"total_ns"` // sum of all proc lifetimes
	Procs   []ProcEntry    `json:"procs"`
	Tree    []*TreeNode    `json:"tree"`
}

// ProcEntry is one Proc's lifetime accounting. BusyNs+CondNs+QueueNs ==
// EndNs-SpawnNs exactly (the telescoping invariant).
type ProcEntry struct {
	Name    string `json:"name"`
	Group   string `json:"group"` // "node<n>/<comp>" or "host"
	SpawnNs int64  `json:"spawn_ns"`
	EndNs   int64  `json:"end_ns"`
	BusyNs  int64  `json:"busy_ns"`
	CondNs  int64  `json:"cond_ns"`
	QueueNs int64  `json:"queue_ns"`
	Live    bool   `json:"live,omitempty"` // still running at Finish
}

// TreeNode is one attribution-tree vertex with per-bucket self times.
type TreeNode struct {
	Name     string      `json:"name"`
	Kind     string      `json:"kind"` // "frame", "cond", "queue"
	BusyNs   int64       `json:"busy_ns,omitempty"`
	CondNs   int64       `json:"cond_ns,omitempty"`
	QueueNs  int64       `json:"queue_ns,omitempty"`
	Children []*TreeNode `json:"children,omitempty"`
}

// SelfNs returns the node's total self time across buckets.
func (n *TreeNode) SelfNs() int64 { return n.BusyNs + n.CondNs + n.QueueNs }

// CumNs returns self plus all descendants' self time.
func (n *TreeNode) CumNs() int64 {
	total := n.SelfNs()
	for _, c := range n.Children {
		total += c.CumNs()
	}
	return total
}

func kindString(k Kind) string {
	switch k {
	case KindCond:
		return "cond"
	case KindQueue:
		return "queue"
	default:
		return "frame"
	}
}

// exportTree converts the interned accounting tree into the export form,
// sorting children by (kind, name) so output order is independent of map
// iteration order.
func exportTree(n *node) []*TreeNode {
	if len(n.children) == 0 {
		return nil
	}
	out := make([]*TreeNode, 0, len(n.children))
	for _, c := range n.children {
		out = append(out, &TreeNode{
			Name:     c.name,
			Kind:     kindString(c.kind),
			BusyNs:   int64(c.busy),
			CondNs:   int64(c.cond),
			QueueNs:  int64(c.queue),
			Children: exportTree(c),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Doc snapshots the finished profile as an export document. meta may be nil.
// Doc panics if Finish has not been called: an unfinished profile has open
// intervals and would violate the telescoping invariant.
func (pr *Profiler) Doc(meta *stats.RunMeta) *Doc {
	if !pr.finished {
		panic("prof: Doc called before Finish")
	}
	d := &Doc{
		Schema: Schema,
		Run:    meta,
		SimNs:  int64(pr.finishAt),
		Procs:  make([]ProcEntry, 0, len(pr.order)),
		Tree:   exportTree(&pr.root),
	}
	for _, rec := range pr.order {
		d.TotalNs += int64(rec.endAt - rec.spawnAt)
		d.Procs = append(d.Procs, ProcEntry{
			Name:    rec.name,
			Group:   rec.group,
			SpawnNs: int64(rec.spawnAt),
			EndNs:   int64(rec.endAt),
			BusyNs:  int64(rec.busy),
			CondNs:  int64(rec.cond),
			QueueNs: int64(rec.queue),
			Live:    rec.live,
		})
	}
	return d
}

// FinishAt returns the snapshot time recorded by Finish.
func (pr *Profiler) FinishAt() sim.Time { return pr.finishAt }

// WriteJSON writes the document as indented JSON with a trailing newline.
// Output is byte-stable for identical profiles.
func (d *Doc) WriteJSON(w io.Writer) error {
	out, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	_, err = w.Write(out)
	return err
}

// ReadDoc parses a voyager-prof/v1 JSON document.
func ReadDoc(r io.Reader) (*Doc, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var d Doc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("prof: parse profile: %w", err)
	}
	if d.Schema != Schema {
		return nil, fmt.Errorf("prof: unsupported schema %q (want %q)", d.Schema, Schema)
	}
	return &d, nil
}

// ReadDocFile parses the profile JSON at path.
func ReadDocFile(path string) (*Doc, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, err := ReadDoc(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}
