// Package prof implements the opt-in simulated-time profiler: it accounts
// every Proc's lifetime into busy / blocked-on-cond / queued-wait buckets
// and aggregates the time into a weighted attribution tree
// (node/component → proc → pushed frames → wait leaves), exported
// deterministically as folded flame-graph stacks, a pprof protobuf profile
// whose sample value is simulated nanoseconds, and a voyager-prof/v1 JSON
// document (see json.go, folded.go, pprof.go, report.go).
//
// The profiler is provably inert: it implements sim.ProcProfiler, whose
// hooks schedule no events, consume no sequence numbers, and touch no
// modeled state — attaching it cannot change any simulated outcome
// (byte-identity with unprofiled runs is test-enforced in internal/bench).
// The hot callbacks are //voyager:noalloc: steady-state accounting hits
// interned tree nodes and a recycled stack, with allocation only on the
// first visit to a distinct frame.
//
// Accounting model: a Proc executes in zero simulated time, so its lifetime
// is tiled exactly by the wait intervals between a block (Delay, Call,
// Cond.Wait, Queue.Pop) and the following resume. Each interval lands in
// exactly one bucket — BlockBusy intervals accrue as self time on the
// proc's current attribution frame, BlockCond/BlockQueue intervals on a
// labeled wait leaf beneath it — so per-proc bucket sums telescope to the
// proc's lifetime with no gaps and no overlaps (test-enforced).
package prof

import (
	"fmt"

	"startvoyager/internal/sim"
)

// Kind discriminates attribution-tree nodes.
type Kind uint8

const (
	// KindFrame is a call-tree frame: a node/component group, a proc, or an
	// explicitly pushed frame (API operation, firmware service handler).
	KindFrame Kind = iota
	// KindCond is a blocked-on-cond wait leaf, labeled with the condition
	// name.
	KindCond
	// KindQueue is a queued-wait leaf, labeled with the queue's condition
	// name.
	KindQueue
)

// nodeKey identifies a child within its parent without building a combined
// string, keeping hot-path child lookups allocation-free.
type nodeKey struct {
	kind Kind
	name string
}

// node is one attribution-tree vertex. Self times are kept per bucket; a
// frame node only ever accrues busy self time, a wait leaf only cond or
// queue time.
type node struct {
	kind     Kind
	name     string
	busy     sim.Time
	cond     sim.Time
	queue    sim.Time
	children map[nodeKey]*node
}

// child returns the interned child (k, name), creating it on first visit.
//
//voyager:noalloc steady state hits the interned child; first visit allocates it
func (n *node) child(k Kind, name string) *node {
	ck := nodeKey{kind: k, name: name}
	if c := n.children[ck]; c != nil {
		return c
	}
	if n.children == nil {
		n.children = make(map[nodeKey]*node) //voyager:alloc-ok(interned once per parent)
	}
	c := &node{kind: k, name: name} //voyager:alloc-ok(interned once per distinct frame)
	n.children[ck] = c
	return c
}

// procRec is one Proc's accounting state plus its per-proc bucket totals.
type procRec struct {
	name  string
	node  int    // -1 for host-attributed procs
	comp  string // "" for host-attributed procs
	group string // rendered group frame ("node0/aP", "host")

	spawnAt sim.Time
	endAt   sim.Time // Finish time for procs still live at Finish
	live    bool     // still live when Finish snapshotted the run

	busy  sim.Time
	cond  sim.Time
	queue sim.Time

	// stack is the attribution stack: stack[0] is the proc's own frame
	// (under its group), deeper entries are pushed frames. Wait intervals
	// accrue at stack[len-1] (busy) or a wait leaf beneath it (cond/queue).
	stack []*node

	// Open wait interval, set by ProcBlock (and ProcStart, which opens a
	// zero-width busy interval closed by the first resume).
	blockAt    sim.Time
	blockKind  sim.BlockKind
	blockLabel string
	blocked    bool
}

// Profiler implements sim.ProcProfiler. Create one with New, attach it via
// cluster.Config.Profiler (or sim.Engine.SetProfiler before spawning any
// procs), run the simulation, then call Finish once and export through Doc.
type Profiler struct {
	recs     map[*sim.Proc]*procRec
	order    []*procRec // spawn order: the deterministic export order
	root     node
	finished bool
	finishAt sim.Time
}

// New returns an empty profiler.
func New() *Profiler {
	return &Profiler{recs: make(map[*sim.Proc]*procRec)}
}

// adopt creates the accounting record for p. Normally called at spawn time
// (ProcStart); a proc spawned before the profiler was attached is adopted on
// its first hook instead, with its earlier history unaccounted.
func (pr *Profiler) adopt(at sim.Time, p *sim.Proc) *procRec {
	onNode, comp := p.Origin()
	group := "host"
	if onNode >= 0 {
		group = fmt.Sprintf("node%d/%s", onNode, comp)
	}
	rec := &procRec{
		name: p.Name(), node: onNode, comp: comp, group: group,
		spawnAt: at, live: true,
		blockAt: at, blockKind: sim.BlockBusy, blocked: true,
	}
	rec.stack = append(rec.stack, pr.root.child(KindFrame, group).child(KindFrame, p.Name()))
	pr.recs[p] = rec
	pr.order = append(pr.order, rec)
	return rec
}

// get returns p's record, adopting the proc if it predates the profiler.
//
//voyager:noalloc
func (pr *Profiler) get(at sim.Time, p *sim.Proc) *procRec {
	if rec := pr.recs[p]; rec != nil {
		return rec
	}
	return pr.adopt(at, p) //voyager:alloc-ok(late adoption of a proc spawned before attach)
}

// closeInterval accrues the open wait interval [rec.blockAt, at) into the
// bucket recorded at block time: busy on the current frame, cond/queue on a
// labeled wait leaf beneath it.
//
//voyager:noalloc
func (pr *Profiler) closeInterval(rec *procRec, at sim.Time) {
	rec.blocked = false
	d := at - rec.blockAt
	if d == 0 {
		return
	}
	top := rec.stack[len(rec.stack)-1]
	switch rec.blockKind {
	case sim.BlockCond:
		rec.cond += d
		top.child(KindCond, rec.blockLabel).cond += d
	case sim.BlockQueue:
		rec.queue += d
		top.child(KindQueue, rec.blockLabel).queue += d
	default:
		rec.busy += d
		top.busy += d
	}
}

// ProcStart implements sim.ProcProfiler: the spawn itself opens a zero-width
// busy interval closed by the first resume, so the proc's lifetime is tiled
// from its very first instant.
func (pr *Profiler) ProcStart(at sim.Time, p *sim.Proc) {
	if pr.finished {
		return
	}
	pr.adopt(at, p)
}

// ProcResume implements sim.ProcProfiler.
//
//voyager:noalloc
func (pr *Profiler) ProcResume(at sim.Time, p *sim.Proc) {
	if pr.finished {
		return
	}
	rec := pr.get(at, p)
	if rec.blocked {
		pr.closeInterval(rec, at)
	}
}

// ProcBlock implements sim.ProcProfiler.
//
//voyager:noalloc
func (pr *Profiler) ProcBlock(at sim.Time, p *sim.Proc, kind sim.BlockKind, label string) {
	if pr.finished {
		return
	}
	rec := pr.get(at, p)
	rec.blockAt = at
	rec.blockKind = kind
	rec.blockLabel = label
	rec.blocked = true
}

// ProcEnd implements sim.ProcProfiler.
func (pr *Profiler) ProcEnd(at sim.Time, p *sim.Proc) {
	if pr.finished {
		return
	}
	rec := pr.get(at, p)
	if rec.blocked {
		pr.closeInterval(rec, at) // defensive: procs end from a running state
	}
	rec.endAt = at
	rec.live = false
	// Drop the engine's Proc pointer so a later allocation reusing the
	// address cannot collide with a dead proc's record.
	delete(pr.recs, p)
}

// FramePush implements sim.ProcProfiler.
//
//voyager:noalloc
func (pr *Profiler) FramePush(p *sim.Proc, name string) {
	if pr.finished {
		return
	}
	rec := pr.get(p.Now(), p)
	rec.stack = append(rec.stack, rec.stack[len(rec.stack)-1].child(KindFrame, name)) //voyager:alloc-ok(amortized: stack backing array is retained)
}

// FramePop implements sim.ProcProfiler.
//
//voyager:noalloc
func (pr *Profiler) FramePop(p *sim.Proc) {
	if pr.finished {
		return
	}
	rec := pr.get(p.Now(), p)
	if len(rec.stack) > 1 {
		rec.stack = rec.stack[:len(rec.stack)-1]
	}
}

// Finish snapshots the run at simulated time at (normally Engine.Now() after
// the run completes): procs still blocked — firmware service loops waiting
// on their queues forever — have their open interval closed at the snapshot
// instant, so every proc's buckets telescope exactly to spawn..at. Finish is
// terminal: later hook invocations are ignored, keeping exports stable even
// if the engine keeps running. Calling Finish again is a no-op.
func (pr *Profiler) Finish(at sim.Time) {
	if pr.finished {
		return
	}
	for _, rec := range pr.order {
		if !rec.live {
			continue
		}
		if rec.blocked {
			pr.closeInterval(rec, at)
		}
		rec.endAt = at
	}
	pr.finished = true
	pr.finishAt = at
}

// Finished reports whether Finish has been called.
func (pr *Profiler) Finished() bool { return pr.finished }
