package prof

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"startvoyager/internal/sim"
	"startvoyager/internal/stats"
)

// flatRow is one flattened tree node: the full folded path plus its self and
// cumulative times.
type flatRow struct {
	path  string
	self  int64
	cum   int64
	busy  int64
	cond  int64
	queue int64
}

// flatten walks the tree depth-first, producing one row per node in
// deterministic tree order. Paths use the folded-stack rendering
// ("group;proc;frame;wait:label").
func (d *Doc) flatten() []flatRow {
	var rows []flatRow
	var stack []string
	var walk func(n *TreeNode)
	walk = func(n *TreeNode) {
		stack = append(stack, leafLabel(n))
		rows = append(rows, flatRow{
			path:  strings.Join(stack, ";"),
			self:  n.SelfNs(),
			cum:   n.CumNs(),
			busy:  n.BusyNs,
			cond:  n.CondNs,
			queue: n.QueueNs,
		})
		for _, c := range n.Children {
			walk(c)
		}
		stack = stack[:len(stack)-1]
	}
	for _, n := range d.Tree {
		walk(n)
	}
	return rows
}

// groupTotal is one node/component rollup accumulated from proc entries.
type groupTotal struct {
	group string
	node  int // -1 for host
	comp  string
	busy  int64
	cond  int64
	queue int64
	procs int
}

// splitGroup parses a "node<n>/<comp>" group name; host groups return
// (-1, group).
func splitGroup(group string) (node int, comp string) {
	var n int
	var c string
	if k, err := fmt.Sscanf(group, "node%d/%s", &n, &c); err == nil && k == 2 {
		return n, c
	}
	return -1, group
}

// groupTotals aggregates proc bucket times by group, sorted by group name.
func (d *Doc) groupTotals() []*groupTotal {
	byGroup := map[string]*groupTotal{}
	for i := range d.Procs {
		p := &d.Procs[i]
		g := byGroup[p.Group]
		if g == nil {
			node, comp := splitGroup(p.Group)
			g = &groupTotal{group: p.Group, node: node, comp: comp}
			byGroup[p.Group] = g
		}
		g.busy += p.BusyNs
		g.cond += p.CondNs
		g.queue += p.QueueNs
		g.procs++
	}
	out := make([]*groupTotal, 0, len(byGroup))
	for _, g := range byGroup {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].node != out[j].node {
			return out[i].node < out[j].node
		}
		return out[i].group < out[j].group
	})
	return out
}

func fmtNs(ns int64) string { return sim.Time(ns).String() }

// pctTenths renders num/den as a percentage with one decimal in pure integer
// math, matching the voyager-stats report style.
func pctTenths(num, den int64) string {
	if den <= 0 {
		return "0.0%"
	}
	t := num * 1000 / den
	return fmt.Sprintf("%d.%d%%", t/10, t%10)
}

// trimPath elides the middle of over-long folded paths, keeping the root
// group and as much of the leaf end as fits.
func trimPath(path string, max int) string {
	if len(path) <= max {
		return path
	}
	parts := strings.Split(path, ";")
	if len(parts) <= 2 {
		return path
	}
	head := parts[0]
	tail := parts[len(parts)-1]
	for i := len(parts) - 2; i > 0; i-- {
		cand := parts[i] + ";" + tail
		if len(head)+4+len(cand) > max {
			break
		}
		tail = cand
	}
	out := head + ";..;" + tail
	if len(out) >= len(path) {
		return path
	}
	return out
}

// WriteReport renders the human-readable profile report: run header, top-N
// frames by self and by cumulative time, per-group occupancy, and component
// rollups across nodes. Output is deterministic for identical documents.
func (d *Doc) WriteReport(w io.Writer, topN int) error {
	if topN <= 0 {
		topN = 10
	}
	var b strings.Builder

	b.WriteString("== voyager-prof ==\n")
	if d.Run != nil {
		fmt.Fprintf(&b, "tool=%s mechanism=%s nodes=%d seed=%d",
			d.Run.Tool, d.Run.Mechanism, d.Run.Nodes, d.Run.Seed)
		if d.Run.FaultPlan != "" {
			fmt.Fprintf(&b, " faults=%q", d.Run.FaultPlan)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "sim_time=%s procs=%d proc_time=%s\n\n",
		fmtNs(d.SimNs), len(d.Procs), fmtNs(d.TotalNs))

	rows := d.flatten()

	// Top-N by self time.
	bySelf := make([]flatRow, 0, len(rows))
	for _, r := range rows {
		if r.self > 0 {
			bySelf = append(bySelf, r)
		}
	}
	sort.SliceStable(bySelf, func(i, j int) bool {
		if bySelf[i].self != bySelf[j].self {
			return bySelf[i].self > bySelf[j].self
		}
		return bySelf[i].path < bySelf[j].path
	})
	self := &stats.Table{
		Title:   fmt.Sprintf("top %d by self time", topN),
		Columns: []string{"self", "of-total", "busy", "wait", "frame"},
	}
	for i, r := range bySelf {
		if i >= topN {
			break
		}
		self.AddRow(fmtNs(r.self), pctTenths(r.self, d.TotalNs),
			fmtNs(r.busy), fmtNs(r.cond+r.queue), trimPath(r.path, 72))
	}
	b.WriteString(self.String())
	b.WriteByte('\n')

	// Top-N by cumulative time, skipping the synthetic group roots (depth 1)
	// whose cumulative time is just their whole subtree.
	byCum := make([]flatRow, 0, len(rows))
	for _, r := range rows {
		if r.cum > 0 && strings.Contains(r.path, ";") {
			byCum = append(byCum, r)
		}
	}
	sort.SliceStable(byCum, func(i, j int) bool {
		if byCum[i].cum != byCum[j].cum {
			return byCum[i].cum > byCum[j].cum
		}
		return byCum[i].path < byCum[j].path
	})
	cum := &stats.Table{
		Title:   fmt.Sprintf("top %d by cumulative time", topN),
		Columns: []string{"cum", "of-total", "self", "frame"},
	}
	for i, r := range byCum {
		if i >= topN {
			break
		}
		cum.AddRow(fmtNs(r.cum), pctTenths(r.cum, d.TotalNs), fmtNs(r.self),
			trimPath(r.path, 72))
	}
	b.WriteString(cum.String())
	b.WriteByte('\n')

	// Per-group occupancy: busy time as a share of the simulated run length.
	// One sequential processor (a firmware sP loop set serializes on the NIU)
	// reads as true occupancy; a group of concurrently blocked-and-overlapping
	// procs can exceed 100%.
	groups := d.groupTotals()
	occ := &stats.Table{
		Title:   "occupancy (busy time / sim time, per group)",
		Columns: []string{"group", "procs", "busy", "occupancy", "cond-wait", "queue-wait"},
	}
	for _, g := range groups {
		occ.AddRow(g.group, fmt.Sprintf("%d", g.procs), fmtNs(g.busy),
			pctTenths(g.busy, d.SimNs), fmtNs(g.cond), fmtNs(g.queue))
	}
	b.WriteString(occ.String())
	b.WriteByte('\n')

	// Component rollups: the same buckets summed across nodes ("node*/comp").
	type compTotal struct {
		comp  string
		busy  int64
		cond  int64
		queue int64
		procs int
		nodes int
	}
	byComp := map[string]*compTotal{}
	for _, g := range groups {
		if g.node < 0 {
			continue
		}
		c := byComp[g.comp]
		if c == nil {
			c = &compTotal{comp: g.comp}
			byComp[g.comp] = c
		}
		c.busy += g.busy
		c.cond += g.cond
		c.queue += g.queue
		c.procs += g.procs
		c.nodes++
	}
	comps := make([]*compTotal, 0, len(byComp))
	for _, c := range byComp {
		comps = append(comps, c)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i].comp < comps[j].comp })
	roll := &stats.Table{
		Title:   "component rollup (all nodes)",
		Columns: []string{"component", "nodes", "procs", "busy", "avg-occupancy", "cond-wait", "queue-wait"},
	}
	for _, c := range comps {
		roll.AddRow("node*/"+c.comp, fmt.Sprintf("%d", c.nodes),
			fmt.Sprintf("%d", c.procs), fmtNs(c.busy),
			pctTenths(c.busy, d.SimNs*int64(c.nodes)), fmtNs(c.cond), fmtNs(c.queue))
	}
	b.WriteString(roll.String())

	_, err := io.WriteString(w, b.String())
	return err
}

// WriteDiff renders a deterministic self-time delta table between two
// profiles: the union of flattened paths, sorted by |delta| descending (ties
// by path), with paths present in only one profile treated as zero in the
// other. topN <= 0 means all changed rows.
func WriteDiff(w io.Writer, a, b *Doc, topN int) error {
	type delta struct {
		path    string
		oldSelf int64
		newSelf int64
	}
	merged := map[string]*delta{}
	for _, r := range a.flatten() {
		if r.self > 0 {
			merged[r.path] = &delta{path: r.path, oldSelf: r.self}
		}
	}
	for _, r := range b.flatten() {
		if r.self == 0 {
			continue
		}
		d := merged[r.path]
		if d == nil {
			d = &delta{path: r.path}
			merged[r.path] = d
		}
		d.newSelf = r.self
	}
	rows := make([]*delta, 0, len(merged))
	for _, d := range merged {
		if d.newSelf != d.oldSelf {
			rows = append(rows, d)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		di := rows[i].newSelf - rows[i].oldSelf
		dj := rows[j].newSelf - rows[j].oldSelf
		ai, aj := di, dj
		if ai < 0 {
			ai = -ai
		}
		if aj < 0 {
			aj = -aj
		}
		if ai != aj {
			return ai > aj
		}
		return rows[i].path < rows[j].path
	})

	var out strings.Builder
	out.WriteString("== voyager-prof diff ==\n")
	fmt.Fprintf(&out, "sim_time: %s -> %s   proc_time: %s -> %s\n\n",
		fmtNs(a.SimNs), fmtNs(b.SimNs), fmtNs(a.TotalNs), fmtNs(b.TotalNs))
	tbl := &stats.Table{
		Columns: []string{"delta", "old-self", "new-self", "frame"},
	}
	n := 0
	for _, d := range rows {
		if topN > 0 && n >= topN {
			break
		}
		diff := d.newSelf - d.oldSelf
		sign := "+"
		abs := diff
		if diff < 0 {
			sign = "-"
			abs = -diff
		}
		tbl.AddRow(sign+fmtNs(abs), fmtNs(d.oldSelf), fmtNs(d.newSelf),
			trimPath(d.path, 72))
		n++
	}
	out.WriteString(tbl.String())
	if len(rows) == 0 {
		out.WriteString("(no self-time differences)\n")
	}
	_, err := io.WriteString(w, out.String())
	return err
}
