package prof

import "io"

// pprof export: the profile is encoded by hand against pprof's
// profile.proto (github.com/google/pprof/proto/profile.proto) so the repo
// takes no dependency beyond the standard library. Only the subset of the
// schema pprof needs to render a simulated-time profile is emitted:
//
//	Profile:  sample_type=1, sample=2, location=4, function=5,
//	          string_table=6, duration_nanos=10
//	Sample:   location_id=1 (packed), value=2 (packed)
//	Location: id=1, line=4;  Line: function_id=1
//	Function: id=1, name=2
//
// time_nanos is deliberately omitted — a wall-clock stamp would break
// byte-identical golden comparisons — and the output is uncompressed, which
// `go tool pprof` accepts alongside gzip.

// protoBuf is a minimal protobuf wire-format encoder.
type protoBuf struct{ b []byte }

func (p *protoBuf) varint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

// tag emits a field key: field number and wire type (0 varint, 2 bytes).
func (p *protoBuf) tag(field int, wire int) {
	p.varint(uint64(field)<<3 | uint64(wire))
}

func (p *protoBuf) int64Field(field int, v int64) {
	if v == 0 {
		return
	}
	p.tag(field, 0)
	p.varint(uint64(v))
}

func (p *protoBuf) uint64Field(field int, v uint64) {
	if v == 0 {
		return
	}
	p.tag(field, 0)
	p.varint(v)
}

func (p *protoBuf) bytesField(field int, b []byte) {
	p.tag(field, 2)
	p.varint(uint64(len(b)))
	p.b = append(p.b, b...)
}

func (p *protoBuf) stringField(field int, s string) {
	p.tag(field, 2)
	p.varint(uint64(len(s)))
	p.b = append(p.b, s...)
}

// packedInt64 emits a packed repeated int64/uint64 field.
func (p *protoBuf) packedInt64(field int, vs []uint64) {
	var inner protoBuf
	for _, v := range vs {
		inner.varint(v)
	}
	p.bytesField(field, inner.b)
}

// pprofStrings interns the profile's string table; index 0 is always "".
type pprofStrings struct {
	idx  map[string]int64
	list []string
}

func newPprofStrings() *pprofStrings {
	return &pprofStrings{idx: map[string]int64{"": 0}, list: []string{""}}
}

func (t *pprofStrings) intern(s string) int64 {
	if i, ok := t.idx[s]; ok {
		return i
	}
	i := int64(len(t.list))
	t.idx[s] = i
	t.list = append(t.list, s)
	return i
}

// WritePprof writes the profile as an uncompressed pprof protobuf. Every
// attribution-tree node with nonzero self time becomes one sample whose
// single value is its self time in simulated nanoseconds and whose location
// chain is the tree path, leaf first. Functions and locations are interned
// one per distinct frame label, ids assigned in deterministic tree order.
func (d *Doc) WritePprof(w io.Writer) error {
	strs := newPprofStrings()
	funcIDs := map[string]uint64{} // frame label -> function/location id

	var out protoBuf

	// sample_type: one ValueType {type: "sim", unit: "nanoseconds"}.
	var vt protoBuf
	vt.int64Field(1, strs.intern("sim"))
	vt.int64Field(2, strs.intern("nanoseconds"))
	out.bytesField(1, vt.b)

	funcID := func(label string) uint64 {
		if id, ok := funcIDs[label]; ok {
			return id
		}
		id := uint64(len(funcIDs)) + 1
		funcIDs[label] = id
		strs.intern(label)
		return id
	}

	// Samples, in deterministic tree order; location ids leaf-first.
	var stack []uint64
	var walk func(n *TreeNode)
	walk = func(n *TreeNode) {
		stack = append(stack, funcID(leafLabel(n)))
		if self := n.SelfNs(); self > 0 {
			locs := make([]uint64, len(stack))
			for i, id := range stack {
				locs[len(stack)-1-i] = id // leaf first
			}
			var s protoBuf
			s.packedInt64(1, locs)
			s.packedInt64(2, []uint64{uint64(self)})
			out.bytesField(2, s.b)
		}
		for _, c := range n.Children {
			walk(c)
		}
		stack = stack[:len(stack)-1]
	}
	for _, n := range d.Tree {
		walk(n)
	}

	// One Location and one Function per interned label, id order. Labels are
	// collected in first-visit order; invert the map deterministically.
	labels := make([]string, len(funcIDs))
	for label, id := range funcIDs {
		labels[id-1] = label
	}
	for i := range labels {
		id := uint64(i) + 1
		var line protoBuf
		line.uint64Field(1, id)
		var loc protoBuf
		loc.uint64Field(1, id)
		loc.bytesField(4, line.b)
		out.bytesField(4, loc.b)
	}
	for i, label := range labels {
		var fn protoBuf
		fn.uint64Field(1, uint64(i)+1)
		fn.int64Field(2, strs.intern(label))
		out.bytesField(5, fn.b)
	}

	for _, s := range strs.list {
		if s == "" {
			// Proto3 omits zero-length fields by default, but the string
			// table's sentinel entry must be present explicitly.
			out.tag(6, 2)
			out.varint(0)
			continue
		}
		out.stringField(6, s)
	}

	out.int64Field(10, d.SimNs)

	_, err := w.Write(out.b)
	return err
}
