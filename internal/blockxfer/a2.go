package blockxfer

import (
	"encoding/binary"

	"startvoyager/internal/arctic"
	"startvoyager/internal/bus"
	"startvoyager/internal/core"
	"startvoyager/internal/firmware"
	"startvoyager/internal/niu/ctrl"
	"startvoyager/internal/niu/txrx"
	"startvoyager/internal/node"
	"startvoyager/internal/sim"
)

// Approach-2 firmware services.
const (
	svcA2Req  = firmware.SvcUserBase + 0 // aP -> local sP: start a transfer
	svcA2Data = firmware.SvcUserBase + 1 // sender sP -> dest sP: 64-byte chunk
	svcA2Done = firmware.SvcUserBase + 2 // sender sP -> dest sP: end of data
)

// a2ChunkBytes is the data carried per TagOn message (two cache lines).
const a2ChunkBytes = 2 * bus.LineSize

// a2 is approach 2: the aP issues one request to the local sP, which moves
// the data from DRAM into aSRAM with command-queue bus operations and ships
// it in TagOn messages — neither processor ever touches the payload. The
// destination sP issues the bus writes that land the data in memory. The
// cost shifts from aP occupancy to sP occupancy, which becomes the
// bandwidth limit.
type a2 struct {
	m      *core.Machine
	size   int
	doneAt sim.Time
	lock   *sim.Resource // serializes back-to-back transfers at the sender sP
}

func newA2(m *core.Machine, size int) *a2 {
	x := &a2{m: m, size: size, lock: sim.NewResource(m.Eng, "a2xfer")}
	send := m.Nodes[0].FW
	recv := m.Nodes[1].FW
	send.Register(svcA2Req, x.onRequest)
	recv.Register(svcA2Data, x.onData)
	recv.Register(svcA2Done, x.onDone)
	return x
}

func (x *a2) Send(p *sim.Proc, api *core.API) {
	var body [12]byte
	binary.BigEndian.PutUint32(body[0:], srcAddr)
	binary.BigEndian.PutUint32(body[4:], dstAddr)
	binary.BigEndian.PutUint32(body[8:], uint32(x.size))
	api.SendSvc(p, 0, svcA2Req, body[:])
}

// onRequest runs on the sender's sP: read, packetize, send.
func (x *a2) onRequest(p *sim.Proc, src uint16, body []byte) {
	srcA := binary.BigEndian.Uint32(body[0:])
	dstA := binary.BigEndian.Uint32(body[4:])
	size := int(binary.BigEndian.Uint32(body[8:]))
	fw := x.m.Nodes[0].FW
	fw.Go("a2-send", func(p *sim.Proc) {
		x.lock.AcquireP(p)
		defer x.lock.Release()
		stage := node.UserASram + 0x100&^63 // one chunk of staging, 64-aligned
		for off := 0; off < size; off += a2ChunkBytes {
			// Two command-queue bus reads pull the chunk into aSRAM; the
			// TagOn message then picks it up. In-order completion within
			// the command queue makes the single staging buffer safe.
			for l := 0; l < a2ChunkBytes; l += bus.LineSize {
				fw.IssueCommand(p, 0, &ctrl.BusOp{
					Tx: &bus.Transaction{Kind: bus.ReadLine,
						Addr: srcA + uint32(off+l), Data: make([]byte, bus.LineSize)},
					ToBuf: fw.Ctrl().ASram(), ToOff: uint32(stage + l),
				})
			}
			inline := make([]byte, 5)
			inline[0] = svcA2Data
			binary.BigEndian.PutUint32(inline[1:], dstA+uint32(off))
			fw.IssueCommand(p, 0, &ctrl.SendMsg{
				Frame:    &txrx.Frame{Kind: txrx.Data, LogicalQ: firmware.SvcLogicalQ, Payload: inline},
				Dest:     1,
				Priority: arctic.Low,
				TagBuf:   fw.Ctrl().ASram(), TagOff: uint32(stage), TagLen: a2ChunkBytes,
			})
		}
		done := make([]byte, 5)
		done[0] = svcA2Done
		binary.BigEndian.PutUint32(done[1:], uint32(size))
		// Wait for the data SendMsgs to drain (same queue, in order), then
		// mark the end of the stream.
		g := sim.NewGate(p.Engine())
		fw.IssueCommand(p, 0, &ctrl.SendMsg{
			Base:     ctrl.Base{Done: g.Open},
			Frame:    &txrx.Frame{Kind: txrx.Data, LogicalQ: firmware.SvcLogicalQ, Payload: done},
			Dest:     1,
			Priority: arctic.Low,
		})
		g.Wait(p)
	})
}

// onData runs on the destination sP: two bus writes per chunk, data taken
// straight from the message buffer (the sP never copies it byte by byte).
func (x *a2) onData(p *sim.Proc, src uint16, body []byte) {
	addr := binary.BigEndian.Uint32(body[0:])
	data := body[4:]
	fw := x.m.Nodes[1].FW
	for l := 0; l+bus.LineSize <= len(data); l += bus.LineSize {
		fw.IssueCommand(p, 0, &ctrl.BusOp{
			Tx: &bus.Transaction{Kind: bus.WriteLine, Addr: addr + uint32(l),
				Data: append([]byte(nil), data[l:l+bus.LineSize]...)},
		})
	}
}

// onDone runs on the destination sP after all data messages (FIFO order):
// it notifies the receiving aP. The notification is sent on the same
// command queue as the writes, so it launches only after they completed.
func (x *a2) onDone(p *sim.Proc, src uint16, body []byte) {
	fw := x.m.Nodes[1].FW
	fw.IssueCommand(p, 0, &ctrl.SendMsg{
		Frame:    &txrx.Frame{Kind: txrx.Data, LogicalQ: node.LqNotify, Payload: []byte("a2-done")},
		Dest:     1, // self: the local aP's notification queue
		Priority: arctic.Low,
	})
}

func (x *a2) Receive(p *sim.Proc, api *core.API) {
	api.RecvNotify(p)
	x.doneAt = p.Now()
}

func (x *a2) Consume(p *sim.Proc, api *core.API) {
	buf := make([]byte, bus.LineSize*8)
	for off := 0; off < x.size; off += len(buf) {
		n := x.size - off
		if n > len(buf) {
			n = len(buf)
		}
		api.MemLoad(p, dstAddr+uint32(off), buf[:n])
	}
}

func (x *a2) DstCheckAddr() uint32   { return dstAddr }
func (x *a2) DataComplete() sim.Time { return x.doneAt }
