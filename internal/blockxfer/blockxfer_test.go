package blockxfer

import (
	"testing"

	"startvoyager/internal/sim"
)

// TestIntegrityAllApproaches: Measure panics on data corruption, so simply
// running each (approach, size) point is an end-to-end data check.
func TestIntegrityAllApproaches(t *testing.T) {
	for _, a := range []Approach{A1, A2, A3, A4, A5} {
		for _, size := range []int{64, 1024, 8192} {
			m := Measure(a, size)
			if m.Latency <= 0 || m.Bandwidth <= 0 {
				t.Fatalf("%v size %d: degenerate metrics %+v", a, size, m)
			}
			t.Logf("%v %5dB: lat=%v notify=%v complete=%v consume=%v bw=%.1fMB/s",
				a, size, m.Latency, m.NotifyAt, m.DataComplete, m.ConsumeDone, m.Bandwidth)
		}
	}
}

func TestOrderingFig3Latency(t *testing.T) {
	// At large sizes approach 1 must have the worst latency and approach 3
	// the best (the paper's figure 3 ordering).
	const size = 32 << 10
	l1 := Measure(A1, size).Latency
	l2 := Measure(A2, size).Latency
	l3 := Measure(A3, size).Latency
	if !(l1 > l2 && l2 > l3) {
		t.Fatalf("latency ordering broken: A1=%v A2=%v A3=%v", l1, l2, l3)
	}
}

func TestOrderingFig4Bandwidth(t *testing.T) {
	const size = 64 << 10
	b1 := Measure(A1, size).Bandwidth
	b2 := Measure(A2, size).Bandwidth
	b3 := Measure(A3, size).Bandwidth
	if !(b1 < b2 && b2 < b3) {
		t.Fatalf("bandwidth ordering broken: A1=%.1f A2=%.1f A3=%.1f", b1, b2, b3)
	}
	// Approach 3 should approach (but not exceed) the link's 160 MB/s.
	if b3 < 80 || b3 > 170 {
		t.Fatalf("A3 bandwidth %.1f MB/s implausible", b3)
	}
}

func TestSmallTransferCrossover(t *testing.T) {
	// For a very small transfer approach 1 must beat approach 3 on latency
	// (no aP->sP request round trip) — the crossover the paper's setup
	// implies.
	small1 := Measure(A1, 64).Latency
	small3 := Measure(A3, 64).Latency
	if small1 >= small3 {
		t.Fatalf("small-transfer crossover missing: A1=%v A3=%v", small1, small3)
	}
}

func TestOccupancyShapes(t *testing.T) {
	const size = 32 << 10
	m1 := Measure(A1, size)
	m2 := Measure(A2, size)
	m3 := Measure(A3, size)
	// A1: aP does the work; sP idle.
	if m1.SPSrcBusy != 0 || m1.SPDstBusy != 0 {
		t.Fatalf("A1 used the sP: %+v", m1)
	}
	// A2: work moves to the sPs; sender aP occupancy collapses.
	if m2.APSrcBusy >= m1.APSrcBusy/4 {
		t.Fatalf("A2 aP src busy %v vs A1 %v", m2.APSrcBusy, m1.APSrcBusy)
	}
	if m2.SPSrcBusy == 0 || m2.SPDstBusy == 0 {
		t.Fatalf("A2 did not use the sPs: %+v", m2)
	}
	// A3: sP occupancy far below A2's.
	if m3.SPSrcBusy >= m2.SPSrcBusy/2 {
		t.Fatalf("A3 sP src busy %v not far below A2 %v", m3.SPSrcBusy, m2.SPSrcBusy)
	}
	t.Logf("sP src busy: A1=%v A2=%v A3=%v", m1.SPSrcBusy, m2.SPSrcBusy, m3.SPSrcBusy)
}

func TestEarlyNotificationWins(t *testing.T) {
	// Approaches 4/5 notify at ~25% of the data: the receiver can finish
	// consuming earlier than with approach 3, where it cannot start until
	// full completion.
	const size = 64 << 10
	m3 := Measure(A3, size)
	m4 := Measure(A4, size)
	m5 := Measure(A5, size)
	if m4.NotifyAt >= m3.NotifyAt || m5.NotifyAt >= m3.NotifyAt {
		t.Fatalf("early notification not early: A3=%v A4=%v A5=%v",
			m3.NotifyAt, m4.NotifyAt, m5.NotifyAt)
	}
	if m4.ConsumeDone >= m3.ConsumeDone || m5.ConsumeDone >= m3.ConsumeDone {
		t.Fatalf("consume latency not improved: A3=%v A4=%v A5=%v",
			m3.ConsumeDone, m4.ConsumeDone, m5.ConsumeDone)
	}
	t.Logf("consume: A3=%v A4=%v A5=%v", m3.ConsumeDone, m4.ConsumeDone, m5.ConsumeDone)
}

func TestA5CutsReceiverSPOccupancy(t *testing.T) {
	// Approach 5 moves per-line state maintenance into the aBIU: the
	// receiving sP's occupancy must drop well below approach 4's.
	const size = 64 << 10
	m4 := Measure(A4, size)
	m5 := Measure(A5, size)
	if m5.SPDstBusy >= m4.SPDstBusy/2 {
		t.Fatalf("A5 dst sP busy %v not well below A4 %v", m5.SPDstBusy, m4.SPDstBusy)
	}
}

func TestLatencyMonotonicInSize(t *testing.T) {
	for _, a := range []Approach{A1, A2, A3} {
		var prev sim.Time
		for _, size := range []int{1024, 4096, 16384} {
			l := Measure(a, size).Latency
			if l <= prev {
				t.Fatalf("%v: latency not increasing with size (%v after %v)", a, l, prev)
			}
			prev = l
		}
	}
}

func TestApproachString(t *testing.T) {
	if A1.String() != "approach-1" || A5.String() != "approach-5" {
		t.Fatal("bad names")
	}
}
