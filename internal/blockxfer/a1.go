package blockxfer

import (
	"startvoyager/internal/bus"
	"startvoyager/internal/core"
	"startvoyager/internal/sim"
)

// a1ChunkBytes is the payload carried per Basic message in approach 1.
const a1ChunkBytes = 80

// a1 is approach 1: the sender aP reads data from memory, packetizes it
// into Basic messages and sends them; the receiver aP copies the payloads
// into memory. The data crosses the aP bus twice on each side (DRAM→aP,
// aP→aSRAM when composing; aSRAM→aP, aP→DRAM when receiving), and both
// processors are occupied for the whole transfer.
type a1 struct {
	m      *core.Machine
	size   int
	doneAt sim.Time
}

func newA1(m *core.Machine, size int) *a1 { return &a1{m: m, size: size} }

func (x *a1) Send(p *sim.Proc, api *core.API) {
	chunk := make([]byte, a1ChunkBytes)
	for off := 0; off < x.size; off += a1ChunkBytes {
		n := x.size - off
		if n > a1ChunkBytes {
			n = a1ChunkBytes
		}
		api.MemLoad(p, srcAddr+uint32(off), chunk[:n])
		api.SendBasic(p, 1, chunk[:n])
	}
}

func (x *a1) Receive(p *sim.Proc, api *core.API) {
	got := 0
	for got < x.size {
		_, payload := api.RecvBasic(p)
		api.MemStore(p, dstAddr+uint32(got), payload)
		got += len(payload)
	}
	// Make the data visible in DRAM for the NIU-free integrity check (the
	// receiver's cache holds it Modified otherwise).
	api.MemFlush(p, dstAddr, x.size)
	x.doneAt = p.Now()
}

func (x *a1) Consume(p *sim.Proc, api *core.API) {
	buf := make([]byte, bus.LineSize*8)
	for off := 0; off < x.size; off += len(buf) {
		n := x.size - off
		if n > len(buf) {
			n = len(buf)
		}
		api.MemLoad(p, dstAddr+uint32(off), buf[:n])
	}
}

func (x *a1) DstCheckAddr() uint32   { return dstAddr }
func (x *a1) DataComplete() sim.Time { return x.doneAt }
