package blockxfer

import (
	"encoding/binary"

	"startvoyager/internal/arctic"
	"startvoyager/internal/bus"
	"startvoyager/internal/core"
	"startvoyager/internal/firmware"
	"startvoyager/internal/niu/biu"
	"startvoyager/internal/niu/ctrl"
	"startvoyager/internal/niu/sram"
	"startvoyager/internal/niu/txrx"
	"startvoyager/internal/node"
	"startvoyager/internal/sim"
)

// Approach-4/5 firmware services.
const (
	svcA45Req      = firmware.SvcUserBase + 3 // aP -> local sP: start
	svcA45Prep     = firmware.SvcUserBase + 4 // sender sP -> receiver sP: arm cls gating
	svcA45Ready    = firmware.SvcUserBase + 5 // receiver sP -> sender sP: armed
	svcA45Progress = firmware.SvcUserBase + 6 // sender sP -> receiver sP: page arrived (A4)
	svcA45Done     = firmware.SvcUserBase + 7 // sender sP -> receiver sP: all data arrived
)

// a45PerLineCost is the A4 sP occupancy of touching one clsSRAM line state.
const a45PerLineCost = 20 // ns

// a45 implements approaches 4 and 5: an approach-3 transfer into the
// receiver's S-COMA window, with the receiver notified optimistically after
// a quarter of the data. clsSRAM line states gate the receiver's reads: a
// read of a line that has not arrived retries on the bus until the state
// flips. Approach 4 flips states in receiving-sP firmware (per-page progress
// messages); approach 5 uses the aBIU extension (CmdWriteDramCls) that flips
// them in hardware as the data lands.
type a45 struct {
	a      Approach
	m      *core.Machine
	size   int
	doneAt sim.Time
	ready  *sim.Gate
	lock   *sim.Resource
}

func newA45(a Approach, m *core.Machine, size int) *a45 {
	x := &a45{a: a, m: m, size: size,
		ready: sim.NewGate(m.Eng), lock: sim.NewResource(m.Eng, "a45xfer")}
	send := m.Nodes[0].FW
	recv := m.Nodes[1].FW
	send.Register(svcA45Req, x.onRequest)
	send.Register(svcA45Ready, x.onReady)
	recv.Register(svcA45Prep, x.onPrep)
	recv.Register(svcA45Progress, x.onProgress)
	recv.Register(svcA45Done, x.onDone)
	// Reads of not-yet-arrived lines are captured once per episode; the
	// firmware only marks them Pending (the data is already on the way).
	for i := 0; i < 2; i++ {
		fw := m.Nodes[i].FW
		fw.SetScomaCapture(func(p *sim.Proc, op biu.CapturedOp) {
			idx := int(op.Addr-node.ScomaBase) / bus.LineSize
			fw.Ctrl().Cls().Set(idx, sram.CLPending)
		})
	}
	return x
}

// windowDst returns the receiver-side window address of the destination.
func windowDst() uint32 { return node.ScomaBase + dstOff }

func (x *a45) Send(p *sim.Proc, api *core.API) {
	var body [8]byte
	binary.BigEndian.PutUint32(body[0:], uint32(x.size))
	api.SendSvc(p, 0, svcA45Req, body[:])
}

// onRequest runs at the sender sP: arm the receiver, then stream pages.
func (x *a45) onRequest(p *sim.Proc, src uint16, body []byte) {
	size := int(binary.BigEndian.Uint32(body[0:]))
	fw := x.m.Nodes[0].FW
	parent := fw.CurMsgID() // captured now: the spawned proc outlives the handler
	fw.Go("a45-send", func(p *sim.Proc) {
		x.lock.AcquireP(p)
		defer x.lock.Release()
		x.ready.Close()
		var prep [9]byte
		prep[0] = byte(x.a)
		binary.BigEndian.PutUint32(prep[1:], windowDst())
		binary.BigEndian.PutUint32(prep[5:], uint32(size))
		fw.SendSvc(p, 1, svcA45Prep, prep[:], arctic.Low, nil)
		x.ready.Wait(p)

		staging := x.m.Nodes[0].DmaStagingOff()
		half := (node.DmaStagingLen / 2) &^ (bus.LineSize - 1)
		free := [2]*sim.Gate{sim.NewGate(p.Engine()), sim.NewGate(p.Engine())}
		free[0].Open()
		free[1].Open()
		allSent := sim.NewGate(p.Engine())

		earlyAt := (size*EarlyNotifyNum/EarlyNotifyDen + ctrl.PageBytes - 1) &^ (ctrl.PageBytes - 1)
		if earlyAt > size {
			earlyAt = size // single-page transfers: notify at completion
		}
		earlySent := false
		offset, buf := 0, 0
		for offset < size {
			n := size - offset
			if n > half {
				n = half
			}
			if rem := ctrl.PageBytes - (offset % ctrl.PageBytes); n > rem {
				n = rem
			}
			free[buf].Wait(p)
			stageOff := staging + uint32(buf)*uint32(half)
			brDone := sim.NewGate(p.Engine())
			fw.IssueCommand(p, 0, &ctrl.BlockRead{
				Base:     ctrl.Base{Done: brDone.Open},
				DramAddr: srcAddr + uint32(offset), SramOff: stageOff, Len: n,
			})
			brDone.Wait(p)

			chunkOff, chunkLen := offset, n
			reuse := free[buf]
			reuse.Close()
			last := offset+n >= size
			bt := &ctrl.BlockTx{
				Buf: fw.Ctrl().ASram(), SramOff: stageOff, Len: n,
				DestNode: 1, DestAddr: windowDst() + uint32(offset),
				Priority: arctic.Low, TraceParent: parent,
			}
			if x.a == A5 {
				bt.WithCls = true
				bt.ClsState = sram.CLReadWrite
			}
			bt.Done = func() {
				reuse.Open()
				// Ordered markers: emitted after this block's data packets,
				// on the same lane, so they arrive after the data is in
				// place at the receiver.
				fw.Go("a45-mark", func(p *sim.Proc) {
					if x.a == A4 {
						var prog [8]byte
						binary.BigEndian.PutUint32(prog[0:], uint32(chunkOff))
						binary.BigEndian.PutUint32(prog[4:], uint32(chunkLen))
						fw.SendSvc(p, 1, svcA45Progress, prog[:], arctic.Low, nil)
					}
					if !earlySent && chunkOff+chunkLen >= earlyAt {
						earlySent = true
						fw.IssueCommand(p, 0, &ctrl.SendMsg{
							Frame: &txrx.Frame{Kind: txrx.Data,
								LogicalQ: node.LqNotify, Payload: []byte("early")},
							Dest: 1, Priority: arctic.Low,
						})
					}
					if last {
						fw.SendSvc(p, 1, svcA45Done, nil, arctic.Low, nil)
						allSent.Open()
					}
				})
			}
			fw.IssueCommand(p, 0, bt)
			offset += n
			buf ^= 1
		}
		allSent.Wait(p)
	})
}

// onPrep arms the receiver's clsSRAM gating and acknowledges.
func (x *a45) onPrep(p *sim.Proc, src uint16, body []byte) {
	a := Approach(body[0])
	addr := binary.BigEndian.Uint32(body[1:])
	size := int(binary.BigEndian.Uint32(body[5:]))
	fw := x.m.Nodes[1].FW
	lines := (size + bus.LineSize - 1) / bus.LineSize
	if a == A4 {
		// The sP walks the state bits itself.
		fw.Occupy(p, sim.Time(lines)*a45PerLineCost)
	}
	// The actual state write goes through the command queue (A5 uses the
	// block-operation path — one command regardless of length).
	fw.IssueCommand(p, 0, &ctrl.SetCls{Addr: addr, Count: lines, State: sram.CLInvalid})
	fw.SendSvc(p, 0, svcA45Ready, nil, arctic.High, nil)
}

func (x *a45) onReady(p *sim.Proc, src uint16, body []byte) { x.ready.Open() }

// onProgress (A4 only) flips the arrived lines to readable.
func (x *a45) onProgress(p *sim.Proc, src uint16, body []byte) {
	off := binary.BigEndian.Uint32(body[0:])
	n := int(binary.BigEndian.Uint32(body[4:]))
	lines := (n + bus.LineSize - 1) / bus.LineSize
	fw := x.m.Nodes[1].FW
	fw.Occupy(p, sim.Time(lines)*a45PerLineCost)
	fw.IssueCommand(p, 0, &ctrl.SetCls{Addr: windowDst() + off, Count: lines,
		State: sram.CLReadWrite})
	// Retried aP reads of these lines re-arm their notification flags.
	for l := 0; l < lines; l++ {
		fw.ABIU().ClearScomaNotify(int(windowDst()+off-node.ScomaBase)/bus.LineSize + l)
	}
}

func (x *a45) onDone(p *sim.Proc, src uint16, body []byte) { x.doneAt = p.Now() }

func (x *a45) Receive(p *sim.Proc, api *core.API) {
	api.RecvNotify(p) // the optimistic (25%) notification
}

// consume reads the transferred region through the S-COMA window; reads of
// lines that have not arrived stall on bus retry until the state flips —
// the latency-hiding (and aP-stalling) behaviour the paper describes.
func (x *a45) Consume(p *sim.Proc, api *core.API) {
	buf := make([]byte, bus.LineSize*8)
	for off := 0; off < x.size; off += len(buf) {
		n := x.size - off
		if n > len(buf) {
			n = len(buf)
		}
		api.ScomaLoad(p, dstOff+uint32(off), buf[:n])
	}
}

func (x *a45) DstCheckAddr() uint32   { return windowDst() }
func (x *a45) DataComplete() sim.Time { return x.doneAt }
