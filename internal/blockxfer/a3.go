package blockxfer

import (
	"startvoyager/internal/bus"
	"startvoyager/internal/core"
	"startvoyager/internal/sim"
)

// a3 is approach 3: the firmware DMA engine decomposes the transfer into
// hardware block-read and block-transmit operations. Both aPs and both sPs
// are nearly idle; the transfer proceeds at the speed of the bus and link.
type a3 struct {
	m      *core.Machine
	size   int
	doneAt sim.Time
}

func newA3(m *core.Machine, size int) *a3 { return &a3{m: m, size: size} }

func (x *a3) Send(p *sim.Proc, api *core.API) {
	api.DmaPush(p, 1, srcAddr, dstAddr, x.size, 0xB10C)
}

func (x *a3) Receive(p *sim.Proc, api *core.API) {
	api.RecvNotify(p)
	x.doneAt = p.Now()
}

func (x *a3) Consume(p *sim.Proc, api *core.API) {
	buf := make([]byte, bus.LineSize*8)
	for off := 0; off < x.size; off += len(buf) {
		n := x.size - off
		if n > len(buf) {
			n = len(buf)
		}
		api.MemLoad(p, dstAddr+uint32(off), buf[:n])
	}
}

func (x *a3) DstCheckAddr() uint32   { return dstAddr }
func (x *a3) DataComplete() sim.Time { return x.doneAt }
