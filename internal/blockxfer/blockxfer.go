// Package blockxfer implements the paper's Section 6 experiment: five
// implementations of block memory transfer (contiguous DRAM on one node to
// contiguous DRAM on another, with a message in the receiver's regular queue
// on completion), differing in how work is divided between the aP, the sP,
// and the NIU's hardware block units:
//
//	Approach 1 — the sender aP reads, packetizes into Basic messages and
//	            sends; the receiver aP copies into memory.
//	Approach 2 — the aP hands the transfer to the local sP, which moves data
//	            DRAM→aSRAM with command-queue bus operations and ships it in
//	            TagOn messages; the destination sP writes it to memory.
//	Approach 3 — hardware block-read and block-transmit units do everything;
//	            both processors are nearly idle.
//	Approach 4 — approach 3 plus optimistic early notification at 25% of the
//	            data, gated by clsSRAM state that the receiving sP maintains.
//	Approach 5 — approach 4 with the aBIU extension that updates clsSRAM in
//	            hardware as data arrives.
package blockxfer

import (
	"fmt"

	"startvoyager/internal/cluster"
	"startvoyager/internal/core"
	"startvoyager/internal/sim"
)

// Approach identifies one of the paper's five implementations.
type Approach int

// The five block-transfer approaches of Section 6.
const (
	A1 Approach = 1 + iota
	A2
	A3
	A4
	A5
)

// String names the approach as the paper does.
func (a Approach) String() string { return fmt.Sprintf("approach-%d", int(a)) }

// Source and destination placement used by all approaches.
const (
	srcAddr = 0x0010_0000 // sender DRAM
	dstAddr = 0x0020_0000 // receiver DRAM (approaches 1-3)
	dstOff  = 0x0000_0000 // receiver S-COMA window offset (approaches 4-5)

	// EarlyNotifyNum/Den: approaches 4-5 notify the receiver after this
	// fraction of the data has been transmitted.
	EarlyNotifyNum = 1
	EarlyNotifyDen = 4
)

// Metrics is the outcome of one measurement.
type Metrics struct {
	Approach Approach
	Size     int

	// Latency: sender initiation until the receiver has been notified AND
	// every byte is present in its memory (for approaches 4-5 notification
	// comes earlier; DataComplete records when the data actually finished).
	Latency      sim.Time
	NotifyAt     sim.Time // initiation -> notification at the receiver aP
	DataComplete sim.Time // initiation -> last byte in receiver memory
	// ConsumeDone: initiation -> receiver has read (consumed) every byte,
	// starting its reads at notification time. This is where the optimistic
	// approaches win.
	ConsumeDone sim.Time

	// Bandwidth is measured with back-to-back transfers (MB/s of payload).
	Bandwidth float64

	// Occupancy during the latency run.
	APSrcBusy, APDstBusy sim.Time
	SPSrcBusy, SPDstBusy sim.Time
}

// ConfigHook lets ablation experiments alter the machine configuration
// (e.g. link speed) before each measurement; nil leaves the defaults.
type ConfigHook func(*cluster.Config)

// machine builds a fresh two-node machine for one measurement.
func machine(a Approach, hook ConfigHook) *core.Machine {
	cfg := cluster.DefaultConfig(2)
	if a == A4 || a == A5 {
		cfg.DisableScomaProtocol = true // cls arrival gating without a directory
	}
	if hook != nil {
		hook(&cfg)
	}
	return core.NewMachineConfig(cfg)
}

// Transfer is one approach's implementation harness. Send runs on the
// sender's aP, Receive/Consume on the receiver's aP; DataComplete reports
// the absolute time the last byte landed in receiver memory.
type Transfer interface {
	Send(p *sim.Proc, api *core.API)
	Receive(p *sim.Proc, api *core.API)
	Consume(p *sim.Proc, api *core.API)
	DstCheckAddr() uint32
	DataComplete() sim.Time
}

// NewTransfer installs any approach-specific firmware on a two-node machine
// (sender node 0, receiver node 1) and returns the harness wrapped with
// tracing: when an observer is attached, each Send is bracketed by a span on
// the sender's "blockxfer" track and each Receive marks the notification
// with an instant on the receiver's.
func NewTransfer(a Approach, m *core.Machine, size int) Transfer {
	return &observedTransfer{inner: rawTransfer(a, m, size), m: m, a: a, size: size}
}

// rawTransfer builds the uninstrumented harness.
func rawTransfer(a Approach, m *core.Machine, size int) Transfer {
	switch a {
	case A1:
		return newA1(m, size)
	case A2:
		return newA2(m, size)
	case A3:
		return newA3(m, size)
	case A4, A5:
		return newA45(a, m, size)
	default:
		panic(fmt.Sprintf("blockxfer: unknown approach %d", a))
	}
}

// observedTransfer traces the lifecycle of each transfer. Sends on one
// machine never overlap (one harness, one sender proc), so the sender's
// "blockxfer" track carries well-nested spans.
type observedTransfer struct {
	inner Transfer
	m     *core.Machine
	a     Approach
	size  int
}

func (o *observedTransfer) Send(p *sim.Proc, api *core.API) {
	var span sim.Span
	if o.m.Eng.Observed() {
		span = o.m.Eng.BeginSpan(0, "blockxfer", o.a.String(), sim.Int("size", o.size))
	}
	o.inner.Send(p, api)
	span.End()
}

func (o *observedTransfer) Receive(p *sim.Proc, api *core.API) {
	o.inner.Receive(p, api)
	if o.m.Eng.Observed() {
		o.m.Eng.Instant(1, "blockxfer", "notify", sim.Str("approach", o.a.String()))
	}
}

func (o *observedTransfer) Consume(p *sim.Proc, api *core.API) { o.inner.Consume(p, api) }
func (o *observedTransfer) DstCheckAddr() uint32               { return o.inner.DstCheckAddr() }
func (o *observedTransfer) DataComplete() sim.Time             { return o.inner.DataComplete() }

// fillPattern writes a deterministic test pattern.
func fillPattern(buf []byte, seed byte) {
	for i := range buf {
		buf[i] = byte(i*31+7) ^ seed
	}
}

// MeasureLatency runs only the single-transfer (latency/occupancy)
// experiment for one point.
func MeasureLatency(a Approach, size int) Metrics {
	m := Metrics{Approach: a, Size: size}
	lat := measureOnce(a, size, true)
	m.Latency = lat.Latency
	m.NotifyAt = lat.NotifyAt
	m.DataComplete = lat.DataComplete
	m.ConsumeDone = lat.ConsumeDone
	m.APSrcBusy, m.APDstBusy = lat.APSrcBusy, lat.APDstBusy
	m.SPSrcBusy, m.SPDstBusy = lat.SPSrcBusy, lat.SPDstBusy
	return m
}

// MeasureBandwidth runs only the streaming (bandwidth) experiment.
func MeasureBandwidth(a Approach, size int) float64 { return measureBandwidth(a, size, nil) }

// MeasureBandwidthWith runs the bandwidth experiment on a machine altered
// by hook (ablations: network speed, topology, firmware costs).
func MeasureBandwidthWith(a Approach, size int, hook ConfigHook) float64 {
	return measureBandwidth(a, size, hook)
}

// Measure runs the latency, consumption, and bandwidth experiments for one
// (approach, size) point and verifies data integrity.
func Measure(a Approach, size int) Metrics {
	m := Metrics{Approach: a, Size: size}
	lat := measureOnce(a, size, true)
	m.Latency = lat.Latency
	m.NotifyAt = lat.NotifyAt
	m.DataComplete = lat.DataComplete
	m.ConsumeDone = lat.ConsumeDone
	m.APSrcBusy, m.APDstBusy = lat.APSrcBusy, lat.APDstBusy
	m.SPSrcBusy, m.SPDstBusy = lat.SPSrcBusy, lat.SPDstBusy
	m.Bandwidth = measureBandwidth(a, size, nil)
	return m
}

// onceResult carries the single-transfer measurement.
type onceResult struct {
	Latency, NotifyAt, DataComplete, ConsumeDone sim.Time
	APSrcBusy, APDstBusy, SPSrcBusy, SPDstBusy   sim.Time
}

// measureOnce performs one instrumented transfer (optionally with the
// receiver consuming the data after notification).
func measureOnce(a Approach, size int, consume bool) onceResult {
	m := machine(a, nil)
	src := make([]byte, size)
	fillPattern(src, byte(a))
	m.API(0).Poke(srcAddr, src)

	var res onceResult
	var start sim.Time
	xfer := NewTransfer(a, m, size)

	m.Go(0, "xfer-src", func(p *sim.Proc, api *core.API) {
		start = p.Now()
		xfer.Send(p, api)
	})
	m.Go(1, "xfer-dst", func(p *sim.Proc, api *core.API) {
		xfer.Receive(p, api)
		res.NotifyAt = p.Now() - start
		if consume {
			xfer.Consume(p, api)
			res.ConsumeDone = p.Now() - start
		}
	})
	m.Run()
	res.DataComplete = xfer.DataComplete() - start
	res.Latency = res.NotifyAt
	if res.DataComplete > res.Latency {
		res.Latency = res.DataComplete
	}
	// Verify integrity.
	got := make([]byte, size)
	m.API(1).Peek(xfer.DstCheckAddr(), got)
	for i := range got {
		if got[i] != src[i] {
			panic(fmt.Sprintf("blockxfer: %v size %d corrupt at %d: %#x != %#x",
				a, size, i, got[i], src[i]))
		}
	}
	res.APSrcBusy = m.Nodes[0].APMeter.BusyTime()
	res.APDstBusy = m.Nodes[1].APMeter.BusyTime()
	res.SPSrcBusy = m.Nodes[0].FW.BusyTime()
	res.SPDstBusy = m.Nodes[1].FW.BusyTime()
	return res
}

// measureBandwidth performs back-to-back transfers and reports steady-state
// payload bandwidth.
func measureBandwidth(a Approach, size int, hook ConfigHook) float64 {
	reps := 4
	if size*reps < 64<<10 {
		reps = (64 << 10) / size // small transfers: more reps for steadiness
	}
	m := machine(a, hook)
	src := make([]byte, size)
	fillPattern(src, byte(a))
	m.API(0).Poke(srcAddr, src)

	var start, end sim.Time
	xfer := NewTransfer(a, m, size)
	m.Go(0, "bw-src", func(p *sim.Proc, api *core.API) {
		start = p.Now()
		for r := 0; r < reps; r++ {
			xfer.Send(p, api)
		}
	})
	m.Go(1, "bw-dst", func(p *sim.Proc, api *core.API) {
		for r := 0; r < reps; r++ {
			xfer.Receive(p, api)
		}
		end = p.Now()
	})
	m.Run()
	total := size * reps
	return float64(total) / float64(end-start) * 1e9 / 1e6
}
