package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"startvoyager/internal/sim"
	"startvoyager/internal/stats"
)

// Critical-path analysis: reconstruct each traced message's lifecycle stage
// chain from the event ring and attribute its end-to-end latency to named
// stages. The carriage layers emit one instant per lifecycle point, all
// carrying an I64 "msg" field with the message's trace id:
//
//	msg-send     allocation: the moment the sender commits the message
//	msg-launch   CTRL TX engine hands the frame to the network port
//	inject       packet enters the Arctic fabric
//	deliver      packet accepted by the destination endpoint
//	msg-exec     CTRL executes a command frame (block writes, notify)
//	msg-enq      payload landed in an RX queue slot
//	msg-consume  receiver (aP library or sP firmware) takes the message
//	msg-drop     packet killed (fault, garbage, dead node, full queue, ...)
//
// Every interval between consecutive events of one message is attributed to
// exactly one stage, so the per-stage durations telescope: they sum to the
// end-to-end latency with no residue. Intervals that repeat or regress the
// lifecycle (a retransmitted launch, time lost reaching a drop, the timeout
// gap after one) are charged to retransmit-penalty.

// Stage names, in canonical pipeline order.
const (
	StageTxQueueWait = "tx-queue-wait"      // msg-send -> msg-launch
	StageBusTenure   = "bus-tenure"         // msg-launch -> inject
	StageNetFlight   = "net-flight"         // inject -> deliver
	StageCmdExec     = "cmd-exec"           // deliver -> msg-exec
	StageRxFormat    = "rx-format"          // deliver/msg-exec -> msg-enq
	StageRxQueueWait = "rx-queue-wait"      // msg-enq -> msg-consume (aP)
	StageSpDispatch  = "sp-dispatch"        // msg-enq -> msg-consume (sP firmware)
	StageRetransmit  = "retransmit-penalty" // lost attempts and timeout gaps
)

// StageOrder lists every stage in canonical reporting order.
var StageOrder = []string{
	StageTxQueueWait, StageBusTenure, StageNetFlight, StageCmdExec,
	StageRxFormat, StageRxQueueWait, StageSpDispatch, StageRetransmit,
}

// stagePos orders lifecycle events; a transition that does not move forward
// is a retransmission artifact. msg-drop sorts after every lifecycle point
// (a drop is always the result of the same-time event preceding it).
var stagePos = map[string]int{
	"msg-send": 0, "msg-launch": 1, "inject": 2, "deliver": 3,
	"msg-exec": 4, "msg-enq": 5, "msg-consume": 6, "msg-drop": 7,
}

// Outcome classifies how a message's chain ended.
type Outcome uint8

// Chain outcomes.
const (
	// InFlight: the trace ended before the message reached a terminal stage.
	InFlight Outcome = iota
	// Delivered: the chain ends in a consume or command execution.
	Delivered
	// Dropped: the chain's final event is a drop (message lost for good).
	Dropped
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Delivered:
		return "delivered"
	case Dropped:
		return "dropped"
	default:
		return "in-flight"
	}
}

// StageSpan is one attributed slice of a message's lifetime.
type StageSpan struct {
	Name string
	Dur  sim.Time
}

// MsgPath is the reconstructed causal chain of one traced message.
type MsgPath struct {
	ID      uint64
	Parent  uint64 // trace id of the message that caused this one (0 = root)
	SrcNode int
	DstNode int // -1 until a receiving-side event is seen
	// Attempts is the highest transmission attempt observed (1 = no
	// retransmission).
	Attempts uint32
	Start    sim.Time
	End      sim.Time
	// Stages holds every attributed interval in event order; adjacent
	// intervals with the same stage name are merged.
	Stages  []StageSpan
	Outcome Outcome
	// Complete reports a gap-free delivered chain: it starts at msg-send,
	// passes launch, inject and deliver, and terminates in a consume or a
	// command execution.
	Complete bool
	// DropWhy is the last drop reason seen ("" if none).
	DropWhy string

	first, last string // first/last event names, for completeness checks
	seen        map[string]bool
}

// Total returns the end-to-end latency (equal to the sum of Stages).
func (m *MsgPath) Total() sim.Time { return m.End - m.Start }

// Stage returns the total duration attributed to the named stage.
func (m *MsgPath) Stage(name string) sim.Time {
	var d sim.Time
	for _, s := range m.Stages {
		if s.Name == name {
			d += s.Dur
		}
	}
	return d
}

// PathAnalysis is the result of reconstructing every traced message in an
// event stream.
type PathAnalysis struct {
	// Msgs holds one entry per traced message id, ascending.
	Msgs []*MsgPath
	// Orphans counts chains whose first retained event is not msg-send —
	// evidence of ring truncation, never of a healthy run.
	Orphans int

	byID map[uint64]*MsgPath
}

// AnalyzePaths reconstructs causal chains from an event stream (as returned
// by Buffer.Events: emission order). Events without an I64 "msg" field are
// ignored.
func AnalyzePaths(events []Event) *PathAnalysis {
	a := &PathAnalysis{byID: make(map[uint64]*MsgPath)}
	chains := map[uint64][]Event{}
	var ids []uint64
	for _, e := range events {
		if e.Kind != Instant {
			continue
		}
		if id, _, _ := msgFields(e); id != 0 {
			if _, seen := chains[id]; !seen {
				ids = append(ids, id)
			}
			chains[id] = append(chains[id], e)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		evs := chains[id]
		// Canonicalize same-timestamp ordering by pipeline position: command
		// frames execute synchronously inside the endpoint's TryDeliver, so
		// their msg-exec is emitted before the fabric's deliver instant even
		// though the pipeline order is deliver-then-exec.
		sort.SliceStable(evs, func(i, j int) bool {
			if evs[i].At != evs[j].At {
				return evs[i].At < evs[j].At
			}
			return stagePos[evs[i].Name] < stagePos[evs[j].Name]
		})
		m := &MsgPath{ID: id, SrcNode: evs[0].Node, DstNode: -1, Attempts: 1,
			Start: evs[0].At, End: evs[len(evs)-1].At,
			first: evs[0].Name, last: evs[len(evs)-1].Name,
			seen: make(map[string]bool)}
		a.byID[id] = m
		a.Msgs = append(a.Msgs, m)
		for i, e := range evs {
			if i > 0 {
				m.Stages = appendStage(m.Stages, stageFor(evs[i-1], e), e.At-evs[i-1].At)
			}
			_, attempt, parent := msgFields(e)
			if parent != 0 {
				m.Parent = parent
			}
			if attempt > m.Attempts {
				m.Attempts = attempt
			}
			switch e.Name {
			case "deliver", "msg-exec", "msg-enq", "msg-consume":
				m.DstNode = e.Node
			case "msg-drop":
				for _, f := range e.Fields {
					if f.Key == "why" {
						m.DropWhy = f.Value()
					}
				}
			}
			m.seen[e.Name] = true
		}
		switch m.last {
		case "msg-drop":
			m.Outcome = Dropped
		case "msg-consume", "msg-exec":
			m.Outcome = Delivered
		}
		m.Complete = m.Outcome == Delivered && m.first == "msg-send" &&
			m.seen["msg-launch"] && m.seen["inject"] && m.seen["deliver"]
		if m.first != "msg-send" {
			a.Orphans++
		}
	}
	return a
}

// msgFields extracts the trace id, attempt, and parent fields (0 if absent).
func msgFields(e Event) (id uint64, attempt uint32, parent uint64) {
	for _, f := range e.Fields {
		v, ok := f.Int64()
		if !ok {
			continue
		}
		switch f.Key {
		case "msg":
			id = uint64(v)
		case "attempt":
			attempt = uint32(v)
		case "parent":
			parent = uint64(v)
		}
	}
	return id, attempt, parent
}

// stageFor names the stage owning the interval between two consecutive
// events of one message.
func stageFor(prev, cur Event) string {
	if prev.Name == "msg-drop" || cur.Name == "msg-drop" {
		return StageRetransmit
	}
	if stagePos[cur.Name] <= stagePos[prev.Name] {
		return StageRetransmit // lifecycle regressed: a new attempt
	}
	switch cur.Name {
	case "msg-launch":
		return StageTxQueueWait
	case "inject":
		return StageBusTenure
	case "deliver":
		return StageNetFlight
	case "msg-exec":
		return StageCmdExec
	case "msg-enq":
		return StageRxFormat
	case "msg-consume":
		if cur.Component == "fw" {
			return StageSpDispatch
		}
		return StageRxQueueWait
	}
	return StageRetransmit
}

// appendStage adds an interval, merging into the previous span when the
// stage repeats (Go-Back-N retransmit bursts would otherwise fragment).
func appendStage(stages []StageSpan, name string, d sim.Time) []StageSpan {
	if n := len(stages); n > 0 && stages[n-1].Name == name {
		stages[n-1].Dur += d
		return stages
	}
	return append(stages, StageSpan{Name: name, Dur: d})
}

// Slowest returns a view of the analysis restricted to the n messages with
// the highest end-to-end latency (ties broken by ascending id; the result
// stays in id order). n <= 0 or n >= len returns the receiver unchanged.
func (a *PathAnalysis) Slowest(n int) *PathAnalysis {
	if n <= 0 || n >= len(a.Msgs) {
		return a
	}
	ranked := append([]*MsgPath(nil), a.Msgs...)
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].Total() != ranked[j].Total() {
			return ranked[i].Total() > ranked[j].Total()
		}
		return ranked[i].ID < ranked[j].ID
	})
	out := &PathAnalysis{Orphans: a.Orphans, byID: make(map[uint64]*MsgPath, n)}
	for _, m := range ranked[:n] {
		out.Msgs = append(out.Msgs, m)
		out.byID[m.ID] = m
	}
	sort.Slice(out.Msgs, func(i, j int) bool { return out.Msgs[i].ID < out.Msgs[j].ID })
	return out
}

// Msg returns the chain for a trace id (nil if unseen).
func (a *PathAnalysis) Msg(id uint64) *MsgPath { return a.byID[id] }

// Counts returns how many chains ended in each outcome.
func (a *PathAnalysis) Counts() (delivered, dropped, inflight, complete int) {
	for _, m := range a.Msgs {
		switch m.Outcome {
		case Delivered:
			delivered++
		case Dropped:
			dropped++
		default:
			inflight++
		}
		if m.Complete {
			complete++
		}
	}
	return delivered, dropped, inflight, complete
}

// StageTotals aggregates attributed time per stage across all chains, in
// canonical order (zero-duration stages that never occurred are omitted).
func (a *PathAnalysis) StageTotals() []StageSpan {
	sum := map[string]sim.Time{}
	seen := map[string]bool{}
	for _, m := range a.Msgs {
		for _, s := range m.Stages {
			sum[s.Name] += s.Dur
			seen[s.Name] = true
		}
	}
	var out []StageSpan
	for _, name := range StageOrder {
		if seen[name] {
			out = append(out, StageSpan{Name: name, Dur: sum[name]})
		}
	}
	return out
}

// RegisterMetrics publishes the analysis into a stats registry: one latency
// histogram per stage (per-message attributed nanoseconds) plus chain
// counters. Call on a Child scope, e.g. reg.Child("path").
func (a *PathAnalysis) RegisterMetrics(reg *stats.Registry) {
	hists := map[string]*stats.Histogram{}
	for _, name := range StageOrder {
		hists[name] = stats.NewHistogram(stats.ExpBounds(100, 2, 16)...)
	}
	var e2e = stats.NewHistogram(stats.ExpBounds(1000, 2, 14)...)
	for _, m := range a.Msgs {
		if m.Outcome != Delivered {
			continue
		}
		e2e.ObserveTime(m.Total())
		for _, name := range StageOrder {
			if d := m.Stage(name); d > 0 || (name != StageRetransmit && m.seen[stageEvent(name)]) {
				hists[name].Observe(int64(d))
			}
		}
	}
	for _, name := range StageOrder {
		reg.Histogram(strings.ReplaceAll(name, "-", "_")+"_ns", hists[name])
	}
	reg.Histogram("end_to_end_ns", e2e)
	delivered, dropped, inflight, complete := a.Counts()
	reg.Gauge("msgs", func() int64 { return int64(len(a.Msgs)) })
	reg.Gauge("delivered", func() int64 { return int64(delivered) })
	reg.Gauge("dropped", func() int64 { return int64(dropped) })
	reg.Gauge("in_flight", func() int64 { return int64(inflight) })
	reg.Gauge("complete_chains", func() int64 { return int64(complete) })
	reg.Gauge("orphans", func() int64 { return int64(a.Orphans) })
}

// stageEvent maps a stage to the event whose presence means the stage
// happened (possibly with zero duration).
func stageEvent(stage string) string {
	switch stage {
	case StageTxQueueWait:
		return "msg-launch"
	case StageBusTenure:
		return "inject"
	case StageNetFlight:
		return "deliver"
	case StageCmdExec:
		return "msg-exec"
	case StageRxFormat:
		return "msg-enq"
	case StageRxQueueWait, StageSpDispatch:
		return "msg-consume"
	}
	return ""
}

// WriteWaterfall renders the deterministic per-message latency report: one
// block per message (ascending trace id) with its stage breakdown, followed
// by the aggregate critical-path attribution. Byte-identical for identical
// event streams.
func (a *PathAnalysis) WriteWaterfall(w io.Writer) error {
	var b strings.Builder
	delivered, dropped, inflight, complete := a.Counts()
	fmt.Fprintf(&b, "causal path report: %d messages (%d delivered, %d dropped, %d in-flight), %d complete chains\n",
		len(a.Msgs), delivered, dropped, inflight, complete)
	if a.Orphans > 0 {
		fmt.Fprintf(&b, "WARNING: %d orphan chains (trace ring truncated; raise -trace-cap)\n", a.Orphans)
	}
	for _, m := range a.Msgs {
		b.WriteByte('\n')
		fmt.Fprintf(&b, "msg %d  n%d", m.ID, m.SrcNode)
		if m.DstNode >= 0 {
			fmt.Fprintf(&b, "->n%d", m.DstNode)
		}
		if m.Parent != 0 {
			fmt.Fprintf(&b, "  parent=%d", m.Parent)
		}
		if m.Attempts > 1 {
			fmt.Fprintf(&b, "  attempts=%d", m.Attempts)
		}
		fmt.Fprintf(&b, "  total=%v  [%s", m.Total(), m.Outcome)
		if m.DropWhy != "" {
			fmt.Fprintf(&b, ": %s", m.DropWhy)
		}
		b.WriteString("]\n")
		for _, s := range m.Stages {
			writeStageLine(&b, s, m.Total())
		}
	}
	totals := a.StageTotals()
	var grand sim.Time
	for _, s := range totals {
		grand += s.Dur
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "critical-path attribution (all chains, %v attributed)\n", grand)
	for _, s := range totals {
		writeStageLine(&b, s, grand)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeStageLine renders one "  name  dur  pct%  bar" row. Percentages are
// computed in integer tenths, keeping the output platform-independent.
func writeStageLine(b *strings.Builder, s StageSpan, total sim.Time) {
	tenths := int64(0)
	if total > 0 {
		tenths = int64(s.Dur) * 1000 / int64(total)
	}
	bar := strings.Repeat("#", int(tenths/25)) // full scale = 40 chars
	fmt.Fprintf(b, "  %-19s %12v %4d.%d%%  %s\n", s.Name, s.Dur, tenths/10, tenths%10, bar)
}
