package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"startvoyager/internal/sim"
)

// WritePerfetto writes events as a Chrome trace-event JSON file loadable in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing. Each node becomes
// a process and each component within it a thread, so the machine renders
// as one track per node×component. Timestamps are simulated microseconds
// (exact to the nanosecond: the engine's sim.Time divided by 1000 with
// three decimals), and the output is byte-identical for identical event
// streams: track ids are assigned in sorted (node, component) order and
// events are written in emission order.
//
// s.Dropped, when nonzero, is surfaced in the file's otherData block so a
// truncated trace is never mistaken for a complete one.
func WritePerfetto(w io.Writer, events []Event, s Stats) error {
	type trackKey struct {
		node int
		comp string
	}
	// Assign tids deterministically: sorted by node then component.
	keys := map[trackKey]bool{}
	for _, e := range events {
		keys[trackKey{e.Node, e.Component}] = true
	}
	var tracks []trackKey
	for k := range keys {
		tracks = append(tracks, k)
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i].node != tracks[j].node {
			return tracks[i].node < tracks[j].node
		}
		return tracks[i].comp < tracks[j].comp
	})
	tid := make(map[trackKey]int, len(tracks))
	nextTid := map[int]int{}
	var nodes []int
	for _, k := range tracks {
		if _, seen := nextTid[k.node]; !seen {
			nextTid[k.node] = 1
			nodes = append(nodes, k.node)
		}
		tid[k] = nextTid[k.node]
		nextTid[k.node]++
	}

	var b strings.Builder
	b.WriteString("{\"displayTimeUnit\":\"ns\",\"otherData\":{")
	fmt.Fprintf(&b, "\"captured\":\"%d\",\"dropped\":\"%d\"", s.Captured, s.Dropped)
	if s.Dropped > 0 {
		b.WriteString(",\"truncated\":\"true\"")
	}
	b.WriteString("},\"traceEvents\":[")
	first := true
	emit := func(line string) {
		if !first {
			b.WriteString(",\n")
		} else {
			b.WriteString("\n")
			first = false
		}
		b.WriteString(line)
	}

	// Metadata: process (node) and thread (component) names.
	for _, n := range nodes {
		emit(fmt.Sprintf("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"name\":\"node%d\"}}", n, n))
		emit(fmt.Sprintf("{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"sort_index\":%d}}", n, n))
	}
	for _, k := range tracks {
		emit(fmt.Sprintf("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":%s}}",
			k.node, tid[k], strconv.Quote(k.comp)))
		emit(fmt.Sprintf("{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"sort_index\":%d}}",
			k.node, tid[k], tid[k]))
	}

	// Flow events (arrows) chain each traced message's lifecycle instants:
	// "s" starts the flow at its first event, "t" steps through the middle
	// ones, "f" finishes at the last. Count occurrences up front so the
	// single emission pass knows each event's place in its chain.
	msgTotal := map[int64]int{}
	for _, e := range events {
		if id, ok := eventMsgID(e); ok {
			msgTotal[id]++
		}
	}
	msgSeen := map[int64]int{}

	for _, e := range events {
		t := tid[trackKey{e.Node, e.Component}]
		switch e.Kind {
		case SpanBegin:
			emit(fmt.Sprintf("{\"name\":%s,\"ph\":\"B\",\"pid\":%d,\"tid\":%d,\"ts\":%s%s}",
				strconv.Quote(e.Name), e.Node, t, tsMicros(e.At), argsJSON(e.Fields)))
		case SpanEnd:
			emit(fmt.Sprintf("{\"ph\":\"E\",\"pid\":%d,\"tid\":%d,\"ts\":%s%s}",
				e.Node, t, tsMicros(e.At), argsJSON(e.Fields)))
		case Instant:
			emit(fmt.Sprintf("{\"name\":%s,\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,\"ts\":%s%s}",
				strconv.Quote(e.Name), e.Node, t, tsMicros(e.At), argsJSON(e.Fields)))
			if id, ok := eventMsgID(e); ok && msgTotal[id] > 1 {
				msgSeen[id]++
				ph, bp := "t", ""
				switch msgSeen[id] {
				case 1:
					ph = "s"
				case msgTotal[id]:
					ph, bp = "f", ",\"bp\":\"e\""
				}
				emit(fmt.Sprintf("{\"name\":\"msg\",\"cat\":\"msg\",\"ph\":%q,\"id\":%d%s,\"pid\":%d,\"tid\":%d,\"ts\":%s}",
					ph, id, bp, e.Node, t, tsMicros(e.At)))
			}
		case Counter:
			// Counters are keyed by (pid, name); prefix the component so the
			// same counter name on two components stays distinct.
			emit(fmt.Sprintf("{\"name\":%s,\"ph\":\"C\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"args\":{\"value\":%d}}",
				strconv.Quote(e.Component+"."+e.Name), e.Node, t, tsMicros(e.At), e.Value))
		}
	}
	b.WriteString("\n]}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WritePerfetto exports the buffer's retained events.
func (b *Buffer) WritePerfetto(w io.Writer) error {
	return WritePerfetto(w, b.Events(), b.Stats())
}

// eventMsgID returns the instant's "msg" trace id field, if present.
func eventMsgID(e Event) (int64, bool) {
	if e.Kind != Instant {
		return 0, false
	}
	for _, f := range e.Fields {
		if f.Key == "msg" {
			if v, ok := f.Int64(); ok {
				return v, true
			}
		}
	}
	return 0, false
}

// tsMicros renders a simulated time as exact decimal microseconds.
func tsMicros(t sim.Time) string {
	return fmt.Sprintf("%d.%03d", int64(t)/1000, int64(t)%1000)
}

// argsJSON renders fields as a trailing ,"args":{...} clause ("" if none).
func argsJSON(fields []sim.Field) string {
	if len(fields) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString(",\"args\":{")
	for i, f := range fields {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Quote(f.Key))
		b.WriteByte(':')
		b.WriteString(strconv.Quote(f.Value()))
	}
	b.WriteByte('}')
	return b.String()
}
