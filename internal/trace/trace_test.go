package trace

import (
	"strings"
	"testing"

	"startvoyager/internal/sim"
)

func TestObserverCapture(t *testing.T) {
	eng := sim.NewEngine()
	b := Attach(eng, 16)
	eng.Schedule(10, func() {
		s := eng.BeginSpan(0, "bus", "ReadLine", sim.Hex("addr", 0x100))
		eng.Schedule(5, func() { s.End() })
	})
	eng.Schedule(20, func() { eng.Instant(1, "cache", "miss", sim.Int("set", 3)) })
	eng.Schedule(30, func() { eng.Sample(0, "ctrl", "txq0", 2) })
	eng.Run()

	evs := b.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events: %v", len(evs), evs)
	}
	if evs[0].Kind != SpanBegin || evs[0].At != 10 || evs[0].Name != "ReadLine" || evs[0].Span == 0 {
		t.Fatalf("begin event %v", evs[0])
	}
	if evs[1].Kind != SpanEnd || evs[1].At != 15 || evs[1].Span != evs[0].Span {
		t.Fatalf("end event %v", evs[1])
	}
	if evs[2].Kind != Instant || evs[2].Node != 1 || evs[2].Component != "cache" {
		t.Fatalf("instant event %v", evs[2])
	}
	if evs[3].Kind != Counter || evs[3].Value != 2 || evs[3].Name != "txq0" {
		t.Fatalf("counter event %v", evs[3])
	}
	if got := evs[0].String(); !strings.Contains(got, "addr=0x100") || !strings.Contains(got, "bus") {
		t.Fatalf("string %q", got)
	}
	if got := evs[3].String(); !strings.Contains(got, "=2") {
		t.Fatalf("counter string %q", got)
	}
}

func TestSpanInertWithoutObserver(t *testing.T) {
	eng := sim.NewEngine()
	s := eng.BeginSpan(0, "bus", "ReadLine")
	if s.Active() {
		t.Fatal("span active with no observer")
	}
	s.End() // must not panic
	eng.Instant(0, "x", "e")
	eng.Sample(0, "x", "q", 1)
}

func TestRingDropsOldest(t *testing.T) {
	eng := sim.NewEngine()
	b := Attach(eng, 3)
	for i := 0; i < 5; i++ {
		eng.Instant(0, "x", "e", sim.Int("i", i))
	}
	evs := b.Events()
	s := b.Stats()
	if len(evs) != 3 || s.Dropped != 2 || s.Retained != 3 || s.Captured != 5 {
		t.Fatalf("len=%d stats=%+v", len(evs), s)
	}
	if evs[0].Fields[0].Value() != "2" || evs[2].Fields[0].Value() != "4" {
		t.Fatalf("ring order wrong: %v", evs)
	}
}

func TestFilter(t *testing.T) {
	eng := sim.NewEngine()
	b := Attach(eng, 16)
	eng.Instant(0, "bus", "ReadLine")
	eng.Instant(0, "ctrl", "tx")
	eng.Instant(0, "bus", "WriteLine")
	if got := b.Filter("bus", ""); len(got) != 2 {
		t.Fatalf("component filter: %d", len(got))
	}
	if got := b.Filter("", "Read"); len(got) != 1 {
		t.Fatalf("name filter: %d", len(got))
	}
}

func TestDumpSurfacesTruncation(t *testing.T) {
	eng := sim.NewEngine()
	b := Attach(eng, 2)
	for i := 0; i < 3; i++ {
		eng.Instant(0, "c", "e")
	}
	var sb strings.Builder
	b.Dump(&sb)
	if !strings.Contains(sb.String(), "TRUNCATED: 1 of 3 events dropped") {
		t.Fatalf("dump missing truncation note:\n%s", sb.String())
	}

	eng2 := sim.NewEngine()
	b2 := Attach(eng2, 8)
	eng2.Instant(0, "c", "e")
	sb.Reset()
	b2.Dump(&sb)
	if !strings.Contains(sb.String(), "none dropped") {
		t.Fatalf("dump missing completeness note:\n%s", sb.String())
	}
}

func TestDefaultCapacity(t *testing.T) {
	b := New(sim.NewEngine(), 0)
	if b.cap != 4096 {
		t.Fatalf("cap = %d", b.cap)
	}
}
