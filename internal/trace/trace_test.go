package trace

import (
	"strings"
	"testing"

	"startvoyager/internal/bus"
	"startvoyager/internal/mem"
	"startvoyager/internal/sim"
)

func TestAddAndOrder(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, 8)
	eng.Schedule(10, func() { b.Add(0, "ctrl", "tx", "q0") })
	eng.Schedule(20, func() { b.Addf(1, "fw", "dispatch", "svc=%#x", 0x20) })
	eng.Run()
	evs := b.Events()
	if len(evs) != 2 || evs[0].At != 10 || evs[1].At != 20 {
		t.Fatalf("events %v", evs)
	}
	if !strings.Contains(evs[1].Detail, "svc=0x20") {
		t.Fatalf("detail %q", evs[1].Detail)
	}
	if !strings.Contains(evs[0].String(), "ctrl") {
		t.Fatalf("string %q", evs[0])
	}
}

func TestRingDropsOldest(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, 3)
	for i := 0; i < 5; i++ {
		b.Addf(0, "x", "e", "%d", i)
	}
	evs := b.Events()
	if len(evs) != 3 || b.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d", len(evs), b.Dropped())
	}
	if evs[0].Detail != "2" || evs[2].Detail != "4" {
		t.Fatalf("ring order wrong: %v", evs)
	}
}

func TestFilter(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, 16)
	b.Add(0, "bus", "ReadLine", "")
	b.Add(0, "ctrl", "tx", "")
	b.Add(0, "bus", "WriteLine", "")
	if got := b.Filter("bus", ""); len(got) != 2 {
		t.Fatalf("component filter: %d", len(got))
	}
	if got := b.Filter("", "Read"); len(got) != 1 {
		t.Fatalf("what filter: %d", len(got))
	}
}

func TestDump(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, 2)
	for i := 0; i < 3; i++ {
		b.Add(0, "c", "e", "")
	}
	var sb strings.Builder
	b.Dump(&sb)
	if !strings.Contains(sb.String(), "dropped") {
		t.Fatalf("dump missing drop note:\n%s", sb.String())
	}
}

type master struct{}

func (master) DeviceName() string                  { return "m" }
func (master) SnoopBus(*bus.Transaction) bus.Snoop { return bus.Snoop{} }

func TestAttachBus(t *testing.T) {
	eng := sim.NewEngine()
	bs := bus.New(eng, "b", bus.DefaultConfig())
	d := mem.New(bus.Range{Base: 0, Size: 4096}, 10)
	m := master{}
	bs.Attach(d)
	bs.Attach(m)
	buf := New(eng, 16)
	AttachBus(buf, bs, 3)
	bs.Issue(&bus.Transaction{Kind: bus.ReadWord, Addr: 8, Data: make([]byte, 8), Master: m},
		func() {})
	eng.Run()
	evs := buf.Filter("bus", "ReadWord")
	if len(evs) != 1 || evs[0].Node != 3 {
		t.Fatalf("bus trace %v", evs)
	}
}

func TestDefaultCapacity(t *testing.T) {
	b := New(sim.NewEngine(), 0)
	if b.cap != 4096 {
		t.Fatalf("cap = %d", b.cap)
	}
}
