package trace

import (
	"encoding/json"
	"io"

	"startvoyager/internal/stats"
)

// PathSchema is the voyager-path JSON export's schema identifier.
const PathSchema = "voyager-path/v1"

// pathStageJSON is one attributed stage interval in the JSON export.
type pathStageJSON struct {
	Stage string `json:"stage"`
	Ns    int64  `json:"ns"`
}

// pathMsgJSON is one reconstructed message chain in the JSON export.
type pathMsgJSON struct {
	ID       uint64          `json:"id"`
	Parent   uint64          `json:"parent,omitempty"`
	Src      int             `json:"src"`
	Dst      int             `json:"dst"` // -1: no receiving-side event seen
	Attempts uint32          `json:"attempts"`
	StartNs  int64           `json:"start_ns"`
	EndNs    int64           `json:"end_ns"`
	TotalNs  int64           `json:"total_ns"`
	Outcome  string          `json:"outcome"`
	Complete bool            `json:"complete"`
	DropWhy  string          `json:"drop_why,omitempty"`
	Stages   []pathStageJSON `json:"stages"`
}

// pathDoc is the top-level voyager-path/v1 document.
type pathDoc struct {
	Schema      string          `json:"schema"`
	Run         *stats.RunMeta  `json:"run,omitempty"`
	Msgs        int             `json:"msgs"`
	Delivered   int             `json:"delivered"`
	Dropped     int             `json:"dropped"`
	InFlight    int             `json:"in_flight"`
	Complete    int             `json:"complete_chains"`
	Orphans     int             `json:"orphans"`
	StageTotals []pathStageJSON `json:"stage_totals"`
	Messages    []pathMsgJSON   `json:"messages"`
}

func stageSpansJSON(spans []StageSpan) []pathStageJSON {
	out := make([]pathStageJSON, len(spans))
	for i, s := range spans {
		out[i] = pathStageJSON{Stage: s.Name, Ns: int64(s.Dur)}
	}
	return out
}

// WriteJSON writes the analysis as one compact voyager-path/v1 JSON document:
// summary counts, the aggregate stage attribution in canonical order, and
// every chain (ascending trace id) with its per-stage breakdown. Key order is
// fixed by the struct layout and messages are already sorted, so the output
// is byte-deterministic for identical event streams. meta may be nil.
func (a *PathAnalysis) WriteJSON(w io.Writer, meta *stats.RunMeta) error {
	delivered, dropped, inflight, complete := a.Counts()
	doc := pathDoc{
		Schema:      PathSchema,
		Run:         meta,
		Msgs:        len(a.Msgs),
		Delivered:   delivered,
		Dropped:     dropped,
		InFlight:    inflight,
		Complete:    complete,
		Orphans:     a.Orphans,
		StageTotals: stageSpansJSON(a.StageTotals()),
		Messages:    make([]pathMsgJSON, 0, len(a.Msgs)),
	}
	for _, m := range a.Msgs {
		doc.Messages = append(doc.Messages, pathMsgJSON{
			ID: m.ID, Parent: m.Parent, Src: m.SrcNode, Dst: m.DstNode,
			Attempts: m.Attempts,
			StartNs:  int64(m.Start), EndNs: int64(m.End), TotalNs: int64(m.Total()),
			Outcome: m.Outcome.String(), Complete: m.Complete, DropWhy: m.DropWhy,
			Stages: stageSpansJSON(m.Stages),
		})
	}
	out, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	out = append(out, '\n')
	_, err = w.Write(out)
	return err
}
