package trace

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"startvoyager/internal/sim"
	"startvoyager/internal/stats"
)

// pathEvents builds a hand-authored lifecycle stream: message 1 is delivered
// after one retransmission, message 2 is dropped by a fault.
func pathEvents() []Event {
	msg := func(at sim.Time, node int, comp, name string, fields ...sim.Field) Event {
		return Event{At: at, Node: node, Component: comp, Kind: Instant, Name: name, Fields: fields}
	}
	return []Event{
		msg(100, 1, "aP", "msg-send", sim.I64("msg", 1)),
		msg(250, 1, "ctrl", "msg-launch", sim.I64("msg", 1)),
		msg(300, 1, "net", "inject", sim.I64("msg", 1)),
		msg(450, 0, "net", "msg-drop", sim.I64("msg", 1), sim.Str("why", "fault-drop")),
		msg(900, 1, "ctrl", "msg-launch", sim.I64("msg", 1), sim.I64("attempt", 2)),
		msg(950, 1, "net", "inject", sim.I64("msg", 1), sim.I64("attempt", 2)),
		msg(1100, 0, "net", "deliver", sim.I64("msg", 1), sim.I64("attempt", 2)),
		msg(1150, 0, "ctrl", "msg-enq", sim.I64("msg", 1)),
		msg(1400, 0, "aP", "msg-consume", sim.I64("msg", 1)),
		msg(200, 2, "aP", "msg-send", sim.I64("msg", 2)),
		msg(350, 2, "ctrl", "msg-launch", sim.I64("msg", 2)),
		msg(400, 2, "net", "inject", sim.I64("msg", 2)),
		msg(600, 0, "net", "msg-drop", sim.I64("msg", 2), sim.Str("why", "dead-node")),
	}
}

func TestPathJSONGolden(t *testing.T) {
	a := AnalyzePaths(pathEvents())
	var buf bytes.Buffer
	meta := &stats.RunMeta{Tool: "voyager-path", Mechanism: "reliable", Nodes: 3,
		Seed: 7, FaultPlan: "seed=7,drop=0.05", SimTimeNs: 1400}
	if err := a.WriteJSON(&buf, meta); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "path.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("path JSON differs from golden (run with -update to refresh):\n%s", buf.String())
	}
}

func TestPathJSONShape(t *testing.T) {
	a := AnalyzePaths(pathEvents())
	var buf bytes.Buffer
	if err := a.WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema    string `json:"schema"`
		Msgs      int    `json:"msgs"`
		Delivered int    `json:"delivered"`
		Dropped   int    `json:"dropped"`
		Messages  []struct {
			ID       uint64 `json:"id"`
			Attempts uint32 `json:"attempts"`
			Outcome  string `json:"outcome"`
			TotalNs  int64  `json:"total_ns"`
			DropWhy  string `json:"drop_why"`
			Stages   []struct {
				Stage string `json:"stage"`
				Ns    int64  `json:"ns"`
			} `json:"stages"`
		} `json:"messages"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Schema != PathSchema {
		t.Errorf("schema = %q, want %q", doc.Schema, PathSchema)
	}
	if doc.Msgs != 2 || doc.Delivered != 1 || doc.Dropped != 1 {
		t.Errorf("counts = %d/%d/%d, want 2/1/1", doc.Msgs, doc.Delivered, doc.Dropped)
	}
	m1 := doc.Messages[0]
	if m1.ID != 1 || m1.Attempts != 2 || m1.Outcome != "delivered" || m1.TotalNs != 1300 {
		t.Errorf("msg 1 = %+v", m1)
	}
	var sum int64
	for _, s := range m1.Stages {
		sum += s.Ns
	}
	if sum != m1.TotalNs {
		t.Errorf("stages sum to %d, total %d (attribution must telescope)", sum, m1.TotalNs)
	}
	if doc.Messages[1].DropWhy != "dead-node" {
		t.Errorf("msg 2 drop_why = %q", doc.Messages[1].DropWhy)
	}
}

func TestPathJSONDeterministic(t *testing.T) {
	render := func() []byte {
		var buf bytes.Buffer
		if err := AnalyzePaths(pathEvents()).WriteJSON(&buf, nil); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Fatal("JSON export differs across identical renders")
	}
}
