package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"startvoyager/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// syntheticEvents builds a small hand-authored event stream covering every
// event kind across two nodes and three components.
func syntheticEvents() []Event {
	return []Event{
		{At: 1500, Node: 0, Component: "bus", Kind: SpanBegin, Name: "ReadLine", Span: 1,
			Fields: []sim.Field{sim.Hex("addr", 0x12c0)}},
		{At: 1750, Node: 1, Component: "net", Kind: Instant, Name: "inject",
			Fields: []sim.Field{sim.Int("dst", 0), sim.Str("pri", "high")}},
		{At: 2000, Node: 0, Component: "ctrl", Kind: Counter, Name: "txq0", Value: 3},
		{At: 2250, Node: 0, Component: "bus", Kind: SpanEnd, Span: 1},
		{At: 3001, Node: 1, Component: "net", Kind: Counter, Name: "inflight", Value: 1},
	}
}

func TestPerfettoGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, syntheticEvents(), Stats{Captured: 5, Retained: 5}); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "perfetto.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("perfetto output differs from golden (run with -update to refresh):\n%s", buf.String())
	}
}

func TestPerfettoIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, syntheticEvents(), Stats{Captured: 7, Dropped: 2, Retained: 5}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string                   `json:"displayTimeUnit"`
		OtherData       map[string]string        `json:"otherData"`
		TraceEvents     []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.OtherData["dropped"] != "2" || doc.OtherData["truncated"] != "true" {
		t.Fatalf("truncation not surfaced: %v", doc.OtherData)
	}
	// 2 process metadata events per node × 2 nodes + 2 thread metadata events
	// per track × 3 tracks + 5 payload events.
	if len(doc.TraceEvents) != 4+6+5 {
		t.Fatalf("event count %d", len(doc.TraceEvents))
	}
	// Spot-check exact-microsecond timestamps and track assignment.
	var sawBegin bool
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "B" {
			sawBegin = true
			if ev["ts"] != 1.5 {
				t.Fatalf("ts = %v, want 1.5", ev["ts"])
			}
			args := ev["args"].(map[string]interface{})
			if args["addr"] != "0x12c0" {
				t.Fatalf("args = %v", args)
			}
		}
	}
	if !sawBegin {
		t.Fatal("no B event found")
	}
}

func TestPerfettoDeterministicTracks(t *testing.T) {
	// Byte-identical across repeated exports of the same stream (track id
	// assignment must not depend on map iteration order).
	var a, b bytes.Buffer
	evs := syntheticEvents()
	if err := WritePerfetto(&a, evs, Stats{}); err != nil {
		t.Fatal(err)
	}
	if err := WritePerfetto(&b, evs, Stats{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("repeated exports differ")
	}
}

// flowEvents is a two-message stream: message 7 crosses from node 0 to node
// 1 (three lifecycle instants -> start/step/finish flow records), message 9
// appears exactly once (no flow records at all).
func flowEvents() []Event {
	return []Event{
		{At: 100, Node: 0, Component: "aP", Kind: Instant, Name: "msg-send",
			Fields: []sim.Field{sim.I64("msg", 7)}},
		{At: 200, Node: 0, Component: "net", Kind: Instant, Name: "inject",
			Fields: []sim.Field{sim.I64("msg", 7), sim.Int("dst", 1)}},
		{At: 250, Node: 1, Component: "aP", Kind: Instant, Name: "msg-send",
			Fields: []sim.Field{sim.I64("msg", 9)}},
		{At: 300, Node: 1, Component: "aP", Kind: Instant, Name: "msg-consume",
			Fields: []sim.Field{sim.I64("msg", 7)}},
	}
}

// TestPerfettoFlowEvents checks the causal flow arrows: every instant of a
// multi-event message chain is followed by one flow record sharing its id
// and coordinates — "s" at the chain head, "f" (binding enclosing slice) at
// the tail, "t" between — while single-event chains emit none.
func TestPerfettoFlowEvents(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, flowEvents(), Stats{Captured: 4, Retained: 4}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	var phases []string
	for _, ev := range doc.TraceEvents {
		if ev["cat"] != "msg" {
			continue
		}
		ph := ev["ph"].(string)
		phases = append(phases, ph)
		if ev["id"] != 7.0 {
			t.Fatalf("flow record for message %v, want 7 only: %v", ev["id"], ev)
		}
		if ph == "f" && ev["bp"] != "e" {
			t.Fatalf("terminating flow must bind enclosing (bp=e): %v", ev)
		}
	}
	if got, want := fmt.Sprint(phases), fmt.Sprint([]string{"s", "t", "f"}); got != want {
		t.Fatalf("flow phases %v, want %v", got, want)
	}

	// Determinism: the export is a pure function of the event stream.
	var again bytes.Buffer
	if err := WritePerfetto(&again, flowEvents(), Stats{Captured: 4, Retained: 4}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("flow-event export is not byte-stable")
	}
}
