// Package trace provides a lightweight event tracer for debugging and
// studying the machine: components append timestamped records to a bounded
// ring buffer that can be filtered and dumped. Tracing is opt-in and has no
// effect on simulated timing.
package trace

import (
	"fmt"
	"io"
	"strings"

	"startvoyager/internal/bus"
	"startvoyager/internal/sim"
)

// Event is one trace record.
type Event struct {
	At        sim.Time
	Node      int
	Component string // "bus", "ctrl", "fw", "net", ...
	What      string
	Detail    string
}

// String renders the event as one line.
func (e Event) String() string {
	return fmt.Sprintf("%12s n%d %-5s %-12s %s", e.At, e.Node, e.Component, e.What, e.Detail)
}

// Buffer is a bounded event ring.
type Buffer struct {
	eng     *sim.Engine
	cap     int
	events  []Event
	start   int // ring head when full
	dropped uint64
}

// New creates a buffer holding up to capacity events (older events are
// dropped first).
func New(eng *sim.Engine, capacity int) *Buffer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Buffer{eng: eng, cap: capacity}
}

// Add appends an event at the current simulated time.
func (b *Buffer) Add(node int, component, what, detail string) {
	e := Event{At: b.eng.Now(), Node: node, Component: component, What: what, Detail: detail}
	if len(b.events) < b.cap {
		b.events = append(b.events, e)
		return
	}
	b.events[b.start] = e
	b.start = (b.start + 1) % b.cap
	b.dropped++
}

// Addf is Add with a formatted detail string.
func (b *Buffer) Addf(node int, component, what, format string, args ...interface{}) {
	b.Add(node, component, what, fmt.Sprintf(format, args...))
}

// Len returns the number of retained events.
func (b *Buffer) Len() int { return len(b.events) }

// Dropped returns how many events fell off the ring.
func (b *Buffer) Dropped() uint64 { return b.dropped }

// Events returns retained events in chronological order.
func (b *Buffer) Events() []Event {
	out := make([]Event, 0, len(b.events))
	out = append(out, b.events[b.start:]...)
	out = append(out, b.events[:b.start]...)
	return out
}

// Filter returns events matching the component prefix and/or substring of
// What (empty strings match everything).
func (b *Buffer) Filter(component, what string) []Event {
	var out []Event
	for _, e := range b.Events() {
		if component != "" && !strings.HasPrefix(e.Component, component) {
			continue
		}
		if what != "" && !strings.Contains(e.What, what) {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Dump writes all retained events to w.
func (b *Buffer) Dump(w io.Writer) {
	for _, e := range b.Events() {
		fmt.Fprintln(w, e)
	}
	if b.dropped > 0 {
		fmt.Fprintf(w, "(%d earlier events dropped)\n", b.dropped)
	}
}

// AttachBus installs a hook recording every completed bus transaction.
func AttachBus(b *Buffer, bs *bus.Bus, node int) {
	bs.SetTraceHook(func(tx *bus.Transaction) {
		detail := fmt.Sprintf("addr=%#x", tx.Addr)
		if tx.Retries > 0 {
			detail += fmt.Sprintf(" retries=%d", tx.Retries)
		}
		b.Add(node, "bus", tx.Kind.String(), detail)
	})
}
