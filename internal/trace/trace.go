// Package trace captures the machine's structured observability stream: it
// implements sim.Observer with a bounded ring buffer of typed events
// (spans, instants, counter samples) that can be filtered, dumped as text,
// or exported as a Perfetto/Chrome trace-event file (see perfetto.go).
// Tracing is opt-in — install a Buffer with sim.Engine.SetObserver — and has
// no effect on simulated timing.
package trace

import (
	"fmt"
	"io"
	"strings"

	"startvoyager/internal/sim"
)

// Kind is the type of one trace event.
type Kind uint8

// Event kinds.
const (
	// SpanBegin opens a span (a duration on one node×component track).
	SpanBegin Kind = iota
	// SpanEnd closes the span with the matching id.
	SpanEnd
	// Instant is a point event.
	Instant
	// Counter is a sampled value of a named quantity.
	Counter
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case SpanBegin:
		return "B"
	case SpanEnd:
		return "E"
	case Instant:
		return "I"
	case Counter:
		return "C"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one structured trace record. Payload lives in typed Fields, not
// preformatted strings, so exporters and tests can consume it directly.
type Event struct {
	At        sim.Time
	Node      int
	Component string // track within the node: "bus", "aP", "fw", ...
	Kind      Kind
	Name      string // span/instant/counter name ("" on SpanEnd)
	Span      uint64 // span id linking Begin/End pairs (0 otherwise)
	Value     int64  // Counter sample value
	Fields    []sim.Field
}

// String renders the event as one line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12s n%d %-9s %s", e.At, e.Node, e.Component, e.Kind)
	if e.Name != "" {
		fmt.Fprintf(&b, " %-14s", e.Name)
	}
	if e.Span != 0 {
		fmt.Fprintf(&b, " #%d", e.Span)
	}
	if e.Kind == Counter {
		fmt.Fprintf(&b, " =%d", e.Value)
	}
	for _, f := range e.Fields {
		fmt.Fprintf(&b, " %s=%s", f.Key, f.Value())
	}
	return b.String()
}

// Stats summarizes a buffer's capture so truncated traces are never
// mistaken for complete ones.
type Stats struct {
	Captured uint64 // events offered to the buffer
	Retained uint64 // events currently held
	Dropped  uint64 // events that fell off the ring
}

// Buffer is a bounded ring of events implementing sim.Observer (older
// events are dropped first).
type Buffer struct {
	eng     *sim.Engine
	cap     int
	events  []Event
	start   int // ring head when full
	dropped uint64
}

// New creates a buffer holding up to capacity events. The buffer must still
// be installed with eng.SetObserver (or use Attach).
func New(eng *sim.Engine, capacity int) *Buffer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Buffer{eng: eng, cap: capacity}
}

// Attach creates a buffer and installs it as eng's observer.
func Attach(eng *sim.Engine, capacity int) *Buffer {
	b := New(eng, capacity)
	eng.SetObserver(b)
	return b
}

func (b *Buffer) add(e Event) {
	if len(b.events) < b.cap {
		b.events = append(b.events, e)
		return
	}
	b.events[b.start] = e
	b.start = (b.start + 1) % b.cap
	b.dropped++
}

// SpanBegin implements sim.Observer.
func (b *Buffer) SpanBegin(at sim.Time, node int, component, name string, id uint64, fields []sim.Field) {
	b.add(Event{At: at, Node: node, Component: component, Kind: SpanBegin,
		Name: name, Span: id, Fields: fields})
}

// SpanEnd implements sim.Observer.
func (b *Buffer) SpanEnd(at sim.Time, node int, component string, id uint64, fields []sim.Field) {
	b.add(Event{At: at, Node: node, Component: component, Kind: SpanEnd,
		Span: id, Fields: fields})
}

// Instant implements sim.Observer.
func (b *Buffer) Instant(at sim.Time, node int, component, name string, fields []sim.Field) {
	b.add(Event{At: at, Node: node, Component: component, Kind: Instant,
		Name: name, Fields: fields})
}

// CounterSample implements sim.Observer.
func (b *Buffer) CounterSample(at sim.Time, node int, component, name string, value int64) {
	b.add(Event{At: at, Node: node, Component: component, Kind: Counter,
		Name: name, Value: value})
}

// Len returns the number of retained events.
func (b *Buffer) Len() int { return len(b.events) }

// Stats reports capture totals, including how many events were dropped —
// callers must check Dropped before treating a trace as complete.
func (b *Buffer) Stats() Stats {
	retained := uint64(len(b.events))
	return Stats{Captured: retained + b.dropped, Retained: retained, Dropped: b.dropped}
}

// Events returns retained events in emission order.
func (b *Buffer) Events() []Event {
	out := make([]Event, 0, len(b.events))
	out = append(out, b.events[b.start:]...)
	out = append(out, b.events[:b.start]...)
	return out
}

// Filter returns events matching the component prefix and/or substring of
// Name (empty strings match everything).
func (b *Buffer) Filter(component, name string) []Event {
	var out []Event
	for _, e := range b.Events() {
		if component != "" && !strings.HasPrefix(e.Component, component) {
			continue
		}
		if name != "" && !strings.Contains(e.Name, name) {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Dump writes all retained events to w, followed by a capture summary that
// surfaces any truncation.
func (b *Buffer) Dump(w io.Writer) {
	for _, e := range b.Events() {
		fmt.Fprintln(w, e)
	}
	s := b.Stats()
	if s.Dropped > 0 {
		fmt.Fprintf(w, "(TRUNCATED: %d of %d events dropped; %d retained)\n",
			s.Dropped, s.Captured, s.Retained)
	} else {
		fmt.Fprintf(w, "(%d events, none dropped)\n", s.Retained)
	}
}
