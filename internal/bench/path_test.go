package bench

import (
	"strings"
	"testing"

	"startvoyager/internal/cluster"
	"startvoyager/internal/core"
	"startvoyager/internal/fault"
	"startvoyager/internal/sim"
	"startvoyager/internal/trace"
)

// runMech executes the fixed instrumented workload of one MP mechanism (the
// same probe the headline benchmark uses) and returns the path analysis of
// its trace.
func runMech(t *testing.T, mech string) *trace.PathAnalysis {
	t.Helper()
	return trace.AnalyzePaths(RunMechTraced(mech).Events())
}

// TestPathChainCoverage holds the tentpole's acceptance bar: across every MP
// mechanism, all delivered messages reconstruct into complete stage chains
// (msg-send through a terminal consume/exec with launch, inject, and deliver
// present), with no orphan chains and per-stage sums exactly equal to the
// end-to-end latency.
func TestPathChainCoverage(t *testing.T) {
	for _, mech := range PathMechs {
		t.Run(mech, func(t *testing.T) {
			a := runMech(t, mech)
			if len(a.Msgs) == 0 {
				t.Fatal("no traced messages")
			}
			if a.Orphans != 0 {
				t.Fatalf("%d orphan chains", a.Orphans)
			}
			delivered, dropped, inflight, complete := a.Counts()
			if dropped != 0 {
				t.Fatalf("%d chains dropped on a fault-free run", dropped)
			}
			if inflight != 0 {
				for _, m := range a.Msgs {
					if m.Outcome != trace.Delivered {
						t.Errorf("msg %d dangling: outcome=%v stages=%v", m.ID, m.Outcome, m.Stages)
					}
				}
				t.Fatalf("%d chains still in flight at end of run", inflight)
			}
			if complete != delivered {
				for _, m := range a.Msgs {
					if m.Outcome == trace.Delivered && !m.Complete {
						t.Errorf("msg %d delivered but incomplete: stages=%v", m.ID, m.Stages)
					}
				}
				t.Fatalf("complete=%d delivered=%d", complete, delivered)
			}
			// Telescoping: attributed stage time must equal end-to-end latency
			// exactly, message by message.
			for _, m := range a.Msgs {
				var sum sim.Time
				for _, s := range m.Stages {
					sum += s.Dur
				}
				if sum != m.Total() {
					t.Errorf("msg %d: stage sum %v != total %v", m.ID, sum, m.Total())
				}
			}
		})
	}
}

// TestPathRetransmitAttribution drives R-Basic through a 5% low-lane drop
// plan and checks the causal chains of retransmitted messages: each keeps a
// single identity across attempts, charges the lost attempts and timeout
// gaps to retransmit-penalty, and still ends in exactly one delivery.
// Fault-free chains must show no penalty at all.
func TestPathRetransmitAttribution(t *testing.T) {
	plan := &fault.Plan{Seed: 7}
	plan.Lanes[fault.LaneLow] = fault.LaneProbs{Drop: 0.05}
	cfg := cluster.DefaultConfig(2)
	cfg.Faults = plan
	m := core.NewMachineConfig(cfg)
	tbuf := m.Trace(1 << 19)
	const msgs = 40
	m.Go(0, "src", func(p *sim.Proc, a *core.API) {
		for i := 0; i < msgs; i++ {
			if err := a.SendReliable(p, 1, []byte{byte(i)}); err != nil {
				t.Errorf("SendReliable %d: %v", i, err)
			}
		}
	})
	m.Go(1, "dst", func(p *sim.Proc, a *core.API) {
		for got := 0; got < msgs; got++ {
			if _, _, err := a.RecvReliableTimeout(p, 50*sim.Millisecond); err != nil {
				t.Fatalf("starved at %d: %v", got, err)
			}
		}
	})
	m.Run()
	if d := tbuf.Stats().Dropped; d != 0 {
		t.Fatalf("trace ring dropped %d events", d)
	}
	var retrans uint64
	for _, r := range m.Rels {
		retrans += r.Stats().Retransmits
	}
	if retrans == 0 {
		t.Fatal("fault plan produced no retransmits; test proves nothing")
	}

	a := trace.AnalyzePaths(tbuf.Events())
	retransmitted := 0
	for _, mp := range a.Msgs {
		var sum sim.Time
		for _, s := range mp.Stages {
			sum += s.Dur
		}
		if sum != mp.Total() {
			t.Errorf("msg %d: stage sum %v != total %v", mp.ID, sum, mp.Total())
		}
		if mp.Attempts > 1 {
			retransmitted++
			if mp.Outcome != trace.Delivered {
				t.Errorf("retransmitted msg %d not delivered: %v (%s)", mp.ID, mp.Outcome, mp.DropWhy)
			}
			if !mp.Complete {
				t.Errorf("retransmitted msg %d chain incomplete: %v", mp.ID, mp.Stages)
			}
			if mp.Stage(trace.StageRetransmit) == 0 {
				t.Errorf("retransmitted msg %d shows no retransmit-penalty: %v", mp.ID, mp.Stages)
			}
		} else if mp.Outcome == trace.Delivered && mp.Stage(trace.StageRetransmit) != 0 {
			t.Errorf("single-attempt msg %d charged retransmit-penalty: %v", mp.ID, mp.Stages)
		}
	}
	if retransmitted == 0 {
		t.Fatalf("retransmits=%d but no chain shows attempts>1", retrans)
	}
}

// TestPathWaterfallRenders smoke-checks the report: it must name the core
// pipeline stages and the aggregate attribution block.
func TestPathWaterfallRenders(t *testing.T) {
	a := runMech(t, "basic")
	var b strings.Builder
	if err := a.WriteWaterfall(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"causal path report:", trace.StageTxQueueWait, trace.StageBusTenure,
		trace.StageNetFlight, trace.StageRxQueueWait, "critical-path attribution",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("waterfall missing %q:\n%s", want, out)
		}
	}
}
