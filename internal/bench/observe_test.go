package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestObservedRunCoverage is the whole-machine coverage gate for the
// observability layer: the canonical run must produce trace events from
// every traced component and metrics from every model package.
func TestObservedRunCoverage(t *testing.T) {
	obs := ObservedRun()

	comps := map[string]bool{}
	for _, e := range obs.Trace.Events() {
		comps[e.Component] = true
	}
	for _, want := range []string{"aP", "bus", "cache", "ctrl", "fw", "sP", "net", "blockxfer"} {
		if !comps[want] {
			t.Errorf("no trace events from component %q (got %v)", want, keys(comps))
		}
	}

	// Packages that emit metrics only (mem) — and everything else — must
	// show up in the registry under their node/component paths.
	paths := obs.Metrics.Paths()
	for _, prefix := range []string{
		"net/", "node0/bus/", "node0/cache/", "node0/mem/",
		"node0/ctrl/", "node0/fw/", "node0/aP",
	} {
		if !anyHasPrefix(paths, prefix) {
			t.Errorf("no metrics registered under %q", prefix)
		}
	}

	if obs.SimTime <= 0 {
		t.Error("canonical run simulated no time")
	}
	if s := obs.Trace.Stats(); s.Captured == 0 {
		t.Error("canonical run captured no trace events")
	}
}

// TestObservedRunDeterministic: two canonical runs export byte-identical
// artifacts.
func TestObservedRunDeterministic(t *testing.T) {
	render := func() ([]byte, []byte) {
		obs := ObservedRun()
		var tr, me bytes.Buffer
		if err := obs.Trace.WritePerfetto(&tr); err != nil {
			t.Fatalf("WritePerfetto: %v", err)
		}
		if err := obs.Metrics.WriteJSON(&me, obs.SimTime); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return tr.Bytes(), me.Bytes()
	}
	t1, m1 := render()
	t2, m2 := render()
	if !bytes.Equal(t1, t2) {
		t.Error("canonical run traces differ across identical runs")
	}
	if !bytes.Equal(m1, m2) {
		t.Error("canonical run metrics differ across identical runs")
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func anyHasPrefix(paths []string, prefix string) bool {
	for _, p := range paths {
		if strings.HasPrefix(p, prefix) {
			return true
		}
	}
	return false
}
