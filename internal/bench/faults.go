package bench

import (
	"fmt"

	"startvoyager/internal/cluster"
	"startvoyager/internal/core"
	"startvoyager/internal/fault"
	"startvoyager/internal/sim"
	"startvoyager/internal/stats"
)

// Ext L: what does reliability cost? R-Basic pays for its delivery guarantee
// with sequence/ACK traffic and (under loss) retransmit stalls. The series
// pins that price against the unreliable Basic path on a clean network, then
// walks the drop rate up.

// ExtLDrops is the default drop-rate sweep.
var ExtLDrops = []float64{0, 0.01, 0.05}

// reliableStream pushes msgs reliable messages 0->1 under the given
// low-lane drop rate and reports mean blocking-send latency, delivered
// payload throughput, and the retransmit count.
func reliableStream(msgs int, drop float64) (lat sim.Time, mbps float64, retrans uint64) {
	const payload = 64
	plan := &fault.Plan{Seed: 7}
	plan.Lanes[fault.LaneLow] = fault.LaneProbs{Drop: drop}
	cfg := cluster.DefaultConfig(2)
	cfg.Faults = plan
	m := core.NewMachineConfig(cfg)

	var sendBusy sim.Time
	m.Go(0, "src", func(p *sim.Proc, a *core.API) {
		buf := make([]byte, payload)
		for i := 0; i < msgs; i++ {
			buf[0] = byte(i)
			start := p.Now()
			if err := a.SendReliable(p, 1, buf); err != nil {
				panic(fmt.Sprintf("bench: reliable stream: %v", err))
			}
			sendBusy += p.Now() - start
		}
	})
	got := 0
	m.Go(1, "dst", func(p *sim.Proc, a *core.API) {
		for got < msgs {
			if _, _, err := a.RecvReliableTimeout(p, 50*sim.Millisecond); err != nil {
				panic(fmt.Sprintf("bench: reliable stream starved at %d: %v", got, err))
			}
			got++
		}
	})
	m.Run()

	dur := m.Eng.Now()
	mbps = float64(msgs*payload) / (float64(dur) / float64(sim.Second)) / 1e6
	for _, r := range m.Rels {
		retrans += r.Stats().Retransmits
	}
	return sendBusy / sim.Time(msgs), mbps, retrans
}

// basicStream is the unreliable baseline on a clean network: same message
// count and payload through SendBasic/RecvBasic.
func basicStream(msgs int) (lat sim.Time, mbps float64) {
	const payload = 64
	m := core.NewMachine(2)
	var sendBusy sim.Time
	m.Go(0, "src", func(p *sim.Proc, a *core.API) {
		buf := make([]byte, payload)
		for i := 0; i < msgs; i++ {
			buf[0] = byte(i)
			start := p.Now()
			a.SendBasic(p, 1, buf)
			sendBusy += p.Now() - start
		}
	})
	got := 0
	m.Go(1, "dst", func(p *sim.Proc, a *core.API) {
		for got < msgs {
			if _, _, ok := a.TryRecvBasic(p); ok {
				got++
			}
		}
	})
	m.Run()
	dur := m.Eng.Now()
	return sendBusy / sim.Time(msgs), float64(msgs*payload) / (float64(dur) / float64(sim.Second)) / 1e6
}

// ExtLReliability renders the reliability-overhead series: unreliable Basic
// on a clean network, then R-Basic at each drop rate.
func ExtLReliability(msgs int, drops []float64) *stats.Table {
	t := &stats.Table{
		Title:   fmt.Sprintf("Ext L — R-Basic reliability overhead (%d x 64B messages)", msgs),
		Columns: []string{"series", "drop", "send latency (us)", "MB/s", "retransmits"},
	}
	blat, bmbps := basicStream(msgs)
	t.AddRow("basic (unreliable)", "0%", fmtUs(blat), fmt.Sprintf("%.1f", bmbps), "-")
	for _, d := range drops {
		lat, mbps, retrans := reliableStream(msgs, d)
		t.AddRow("reliable", fmt.Sprintf("%g%%", d*100),
			fmtUs(lat), fmt.Sprintf("%.1f", mbps), fmt.Sprint(retrans))
	}
	return t
}

// FaultRun is one fault-matrix cell's machine-level outcome, kept so the CLI
// can dump the full metrics registry as a JSON artifact.
type FaultRun struct {
	Scenario  string
	Seed      uint64
	Delivered int
	Failed    int
	Retrans   uint64
	Dups      uint64
	RxGarbage uint64
	Reg       *stats.Registry
	Now       sim.Time
}

// faultScenarios are the CI smoke matrix: one plan per injected failure mode.
func faultScenarios(seed uint64) []struct {
	name string
	plan *fault.Plan
} {
	drop := &fault.Plan{Seed: seed}
	drop.Lanes[fault.LaneLow] = fault.LaneProbs{Drop: 0.05}
	corrupt := &fault.Plan{Seed: seed}
	corrupt.Lanes[fault.LaneLow] = fault.LaneProbs{Corrupt: 0.05}
	outage := &fault.Plan{Seed: seed, Outages: []fault.Outage{
		{Src: 0, Dst: 1, From: 20 * sim.Microsecond, To: 200 * sim.Microsecond}}}
	death := &fault.Plan{Seed: seed, Deaths: []fault.NodeDeath{
		{Node: 1, At: 50 * sim.Microsecond}}}
	return []struct {
		name string
		plan *fault.Plan
	}{
		{"drop", drop}, {"corrupt", corrupt}, {"outage", outage}, {"node-death", death},
	}
}

// runFaultScenario pushes msgs reliable messages 0->1 under the plan and
// counts delivered versus failed sends. Node death is expected to fail
// sends; everything else must deliver.
func runFaultScenario(name string, plan *fault.Plan, seed uint64, msgs int) FaultRun {
	cfg := cluster.DefaultConfig(2)
	cfg.Faults = plan
	m := core.NewMachineConfig(cfg)

	run := FaultRun{Scenario: name, Seed: seed}
	senderDone := false
	m.Go(0, "src", func(p *sim.Proc, a *core.API) {
		for i := 0; i < msgs; i++ {
			if err := a.SendReliable(p, 1, []byte{byte(i)}); err != nil {
				run.Failed++
			} else {
				run.Delivered++
			}
		}
		senderDone = true
	})
	m.Go(1, "dst", func(p *sim.Proc, a *core.API) {
		for {
			if _, _, err := a.RecvReliableTimeout(p, m.RelBound()); err != nil && senderDone {
				return
			}
		}
	})
	m.Run()
	for _, r := range m.Rels {
		st := r.Stats()
		run.Retrans += st.Retransmits
		run.Dups += st.DupSuppressed
	}
	for _, n := range m.Nodes {
		run.RxGarbage += n.Ctrl.Stats().RxGarbage
	}
	run.Reg = m.Metrics()
	run.Now = m.Eng.Now()
	return run
}

// FaultMatrix runs every fault scenario at every seed — the CI smoke that
// the reliability layer holds up across schedules, not just at one lucky
// seed. Returned runs carry the metrics registries for the JSON artifact.
//
// Each (seed, scenario) cell owns a private machine, so cells fan across
// up to workers goroutines (see Cells); rows merge in fixed cell order and
// the table is byte-identical to a sequential run.
func FaultMatrix(msgs int, seeds []uint64, workers int) (*stats.Table, []FaultRun) {
	t := &stats.Table{
		Title: fmt.Sprintf("Fault matrix — %d reliable messages per cell", msgs),
		Columns: []string{"scenario", "seed", "delivered", "failed",
			"retransmits", "dup-suppressed", "rx-garbage", "sim-time (us)"},
	}
	type cell struct {
		name string
		plan *fault.Plan
		seed uint64
	}
	var cells []cell
	for _, seed := range seeds {
		for _, sc := range faultScenarios(seed) {
			cells = append(cells, cell{sc.name, sc.plan, seed})
		}
	}
	runs := Cells(len(cells), workers, func(i int) FaultRun {
		return runFaultScenario(cells[i].name, cells[i].plan, cells[i].seed, msgs)
	})
	for i, run := range runs {
		ok := run.Failed == 0
		if cells[i].name == "node-death" {
			// The dead peer must surface as errors, not hang or succeed.
			ok = run.Failed > 0
		}
		if !ok {
			panic(fmt.Sprintf("bench: fault matrix %s/seed=%d: delivered=%d failed=%d",
				cells[i].name, cells[i].seed, run.Delivered, run.Failed))
		}
		t.AddRow(run.Scenario, fmt.Sprint(run.Seed),
			fmt.Sprint(run.Delivered), fmt.Sprint(run.Failed),
			fmt.Sprint(run.Retrans), fmt.Sprint(run.Dups), fmt.Sprint(run.RxGarbage),
			fmtUs(run.Now))
	}
	return t, runs
}
