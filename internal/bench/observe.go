package bench

import (
	"startvoyager/internal/blockxfer"
	"startvoyager/internal/cluster"
	"startvoyager/internal/core"
	"startvoyager/internal/prof"
	"startvoyager/internal/sim"
	"startvoyager/internal/stats"
	"startvoyager/internal/trace"
)

// Observed bundles the artifacts of one instrumented canonical run.
type Observed struct {
	Trace   *trace.Buffer
	Metrics *stats.Registry
	SimTime sim.Time
	// Series is the windowed telemetry sampler, non-nil when the run was
	// launched with a sampler config (ObservedRunSeries); Finish has already
	// been called, so it is ready to export.
	Series *stats.Sampler
}

// ObservedRun executes the canonical observability workload: a four-node
// machine exercising every major mechanism at once — a hardware block
// transfer (approach 3) between nodes 0 and 1, and Basic/Express/DMA
// message traffic plus cached and S-COMA memory operations between nodes 2
// and 3 — with the trace buffer attached from the start. Every model
// package emits at least one span, instant, counter, or metric during this
// run; the coverage test in observe_test.go holds the layer to that.
func ObservedRun() Observed {
	return ObservedRunCap(1 << 18)
}

// ObservedRunCap is ObservedRun with an explicit trace ring capacity, for
// callers that expose -trace-cap.
func ObservedRunCap(capacity int) Observed {
	return ObservedRunSeries(capacity, nil)
}

// ObservedRunSeries is ObservedRunCap with an optional windowed telemetry
// sampler attached for the run (nil scfg: no sampler).
func ObservedRunSeries(capacity int, scfg *stats.SamplerConfig) Observed {
	return ObservedRunProf(capacity, scfg, nil)
}

// ObservedRunProf is ObservedRunSeries with an optional simulated-time
// profiler attached from machine construction (nil: no profiling). The
// profiler is Finished at the run's end time, ready to export; attaching it
// cannot change the run's trace, metrics, or timing (test-enforced).
func ObservedRunProf(capacity int, scfg *stats.SamplerConfig, profiler *prof.Profiler) Observed {
	cfg := cluster.DefaultConfig(4)
	if profiler != nil {
		cfg.Profiler = profiler
	}
	m := core.NewMachineConfig(cfg)
	tbuf := m.Trace(capacity)
	var sampler *stats.Sampler
	if scfg != nil {
		sampler = m.Series(*scfg)
	}

	xfer := blockxfer.NewTransfer(blockxfer.A3, m, 4<<10)
	m.Go(0, "xfer-src", func(p *sim.Proc, api *core.API) {
		xfer.Send(p, api)
	})
	m.Go(1, "xfer-dst", func(p *sim.Proc, api *core.API) {
		xfer.Receive(p, api)
		xfer.Consume(p, api)
	})

	const msgs = 8
	m.Go(2, "mixed-src", func(p *sim.Proc, api *core.API) {
		payload := make([]byte, 32)
		for k := 0; k < msgs; k++ {
			api.SendBasic(p, 3, payload)
		}
		api.SendExpress(p, 3, []byte{1, 2})
		api.DmaPush(p, 3, 0x10_0000, 0x20_0000, 256, 7)
		var line [64]byte
		api.MemStore(p, 0x30_0000, line[:])
		api.MemLoad(p, 0x30_0000, line[:])
		api.ScomaLoad(p, 0, line[:32]) // remote page: capture + directory firmware
	})
	m.Go(3, "mixed-dst", func(p *sim.Proc, api *core.API) {
		for got := 0; got < msgs; {
			if _, _, ok := api.TryRecvBasic(p); ok {
				got++
			}
		}
		api.RecvExpress(p)
		api.RecvNotify(p)
	})
	m.Run()
	if sampler != nil {
		sampler.Finish()
	}
	if profiler != nil {
		profiler.Finish(m.Eng.Now())
	}
	return Observed{Trace: tbuf, Metrics: m.Metrics(), SimTime: m.Eng.Now(), Series: sampler}
}
