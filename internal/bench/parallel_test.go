package bench

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"startvoyager/internal/workload"
)

func TestCellsOrderAndEquivalence(t *testing.T) {
	fn := func(i int) int { return i*i + 1 }
	seq := Cells(100, 1, fn)
	par := Cells(100, 8, fn)
	for i := range seq {
		if seq[i] != fn(i) {
			t.Fatalf("sequential cell %d = %d, want %d", i, seq[i], fn(i))
		}
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel results differ from sequential: %v vs %v", par, seq)
	}
	if got := Cells(0, 4, fn); len(got) != 0 {
		t.Fatalf("Cells(0) returned %d results", len(got))
	}
}

// TestCellsPanicDeterministic: with several panicking cells, the harness must
// re-panic with the lowest index regardless of which worker hit it first.
func TestCellsPanicDeterministic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: expected panic", workers)
				}
				want := "bench: parallel cell 3: boom 3"
				if fmt.Sprint(r) != want {
					t.Fatalf("workers=%d: panic %q, want %q", workers, r, want)
				}
			}()
			Cells(16, workers, func(i int) int {
				if i >= 3 {
					panic(fmt.Sprintf("boom %d", i))
				}
				return i
			})
		}()
	}
}

// faultMatrixBytes flattens a full fault-matrix run — the rendered table plus
// every cell's metrics-registry JSON — into one byte stream, the same data
// voyager-bench writes to stdout and FAULTS_matrix.json.
func faultMatrixBytes(t *testing.T, workers int) []byte {
	t.Helper()
	table, runs := FaultMatrix(10, []uint64{1, 2}, workers)
	var buf bytes.Buffer
	buf.WriteString(table.String())
	for _, r := range runs {
		fmt.Fprintf(&buf, "%s/%d\n", r.Scenario, r.Seed)
		if err := r.Reg.WriteJSON(&buf, r.Now); err != nil {
			t.Fatalf("metrics JSON: %v", err)
		}
	}
	return buf.Bytes()
}

// TestFaultMatrixParallelByteIdentical is the determinism gate for the
// harness: -parallel output must be byte-for-byte the sequential output.
func TestFaultMatrixParallelByteIdentical(t *testing.T) {
	seq := faultMatrixBytes(t, 1)
	par := faultMatrixBytes(t, 4)
	if !bytes.Equal(seq, par) {
		t.Fatalf("parallel fault matrix differs from sequential:\n--- workers=1\n%s\n--- workers=4\n%s", seq, par)
	}
	if !strings.Contains(string(seq), "node-death") {
		t.Fatalf("fault matrix missing node-death row:\n%s", seq)
	}
}

func TestHeadlineLatenciesParallelIdentical(t *testing.T) {
	seq := HeadlineLatencies(1)
	par := HeadlineLatencies(4)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel headline differs: %v vs %v", par, seq)
	}
	for _, mech := range PathMechs {
		if seq[mech+"_e2e_mean_ns"] <= 0 {
			t.Fatalf("headline %s latency = %d, want > 0", mech, seq[mech+"_e2e_mean_ns"])
		}
	}
}

// TestWorkloadSweepParallelIdentical drives the multi-seed determinism sweep
// (the voyager-run -seeds shape) through Cells and checks that every seed's
// trace hash and duration match the sequential run exactly.
func TestWorkloadSweepParallelIdentical(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	run := func(i int) workload.Result {
		return workload.Run(workload.Config{
			Nodes:       4,
			Pattern:     workload.Uniform,
			Messages:    16,
			PayloadSize: 32,
			Seed:        seeds[i],
		})
	}
	seq := Cells(len(seeds), 1, run)
	par := Cells(len(seeds), 4, run)
	for i := range seeds {
		if seq[i].TraceHash != par[i].TraceHash || seq[i].Duration != par[i].Duration {
			t.Fatalf("seed %d: parallel run diverged: %+v vs %+v", seeds[i], par[i], seq[i])
		}
	}
}
