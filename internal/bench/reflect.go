package bench

import (
	"fmt"

	"startvoyager/internal/cluster"
	"startvoyager/internal/core"
	"startvoyager/internal/niu/biu"
	"startvoyager/internal/sim"
	"startvoyager/internal/stats"
)

// ExtDReflective compares the three implementations of reflective memory
// (the paper's §5 Shrimp/Memory Channel emulation): sP firmware, pure aBIU
// hardware, and deferred dirty-line flushing — the hardware/firmware trade
// the platform exists to measure.
func ExtDReflective() *stats.Table {
	t := &stats.Table{
		Title: "Ext D — reflective memory: firmware vs hardware vs deferred",
		Columns: []string{"mode", "word-update lat (us)", "stream (MB/s)",
			"writer-sP busy (us)"},
	}
	for _, mode := range []biu.ReflectMode{biu.ReflectFirmware, biu.ReflectHardware} {
		lat, bw, sp := reflectEager(mode)
		t.AddRow(mode.String(), fmtUs(lat), fmt.Sprintf("%.1f", bw), fmtUs(sp))
	}
	lat, bw, sp := reflectDeferred()
	t.AddRow("deferred+flush", fmtUs(lat), fmt.Sprintf("%.1f", bw), fmtUs(sp))
	return t
}

func reflectRig(mode biu.ReflectMode) *core.Machine {
	cfg := cluster.DefaultConfig(2)
	cfg.ReflectSize = 64 << 10
	m := core.NewMachineConfig(cfg)
	m.API(0).ReflectConfigure(mode, []biu.ReflectEntry{
		{From: 0, To: 64 << 10, Subs: []int{1}}})
	return m
}

// reflectEager measures a one-word update's visibility latency and a
// 16 KB streaming write's bandwidth.
func reflectEager(mode biu.ReflectMode) (lat sim.Time, bw float64, sp sim.Time) {
	m := reflectRig(mode)
	var start sim.Time
	m.Go(0, "writer", func(p *sim.Proc, a *core.API) {
		start = p.Now()
		a.ReflectStoreWord(p, 0, []byte{1, 1, 1, 1, 1, 1, 1, 1})
	})
	m.Go(1, "reader", func(p *sim.Proc, a *core.API) {
		var b [8]byte
		for b[0] == 0 {
			a.ReflectLoadUncached(p, 0, b[:])
		}
		lat = p.Now() - start
	})
	m.Run()

	const size = 16 << 10
	m2 := reflectRig(mode)
	var dur sim.Time
	m2.Go(0, "writer", func(p *sim.Proc, a *core.API) {
		s := p.Now()
		buf := make([]byte, 256)
		for i := range buf {
			buf[i] = 0xEE
		}
		for off := 0; off < size; off += len(buf) {
			a.ReflectStore(p, uint32(off), buf)
		}
		dur = p.Now() - s
	})
	m2.Run()
	return lat, stats.MBps(size, dur), m2.Nodes[0].FW.BusyTime()
}

// reflectDeferred measures the dirty-tracked variant: writes are free of
// propagation cost; one flush sends only the modified lines.
func reflectDeferred() (lat sim.Time, bw float64, sp sim.Time) {
	m := reflectRig(biu.ReflectDeferred)
	const size = 16 << 10
	var start sim.Time
	var dur sim.Time
	m.Go(0, "writer", func(p *sim.Proc, a *core.API) {
		s := p.Now()
		buf := make([]byte, 256)
		for i := range buf {
			buf[i] = 0xEE
		}
		for off := 0; off < size; off += len(buf) {
			a.ReflectStore(p, uint32(off), buf)
		}
		start = p.Now()
		a.ReflectFlush(p, 0, size, 1)
		a.RecvNotify(p)
		lat = p.Now() - start // flush round trip stands in for update latency
		dur = p.Now() - s
	})
	m.Run()
	return lat, stats.MBps(size, dur), m.Nodes[0].FW.BusyTime()
}
