package bench

import (
	"bytes"
	"strings"
	"testing"

	"startvoyager/internal/node"
)

func TestParseNodeList(t *testing.T) {
	good := []struct {
		in   string
		want []int
	}{
		{"16", []int{16}},
		{"16,64,256", []int{16, 64, 256}},
		{" 2 , 1024 ", []int{2, 1024}},
	}
	for _, c := range good {
		got, err := ParseNodeList(c.in)
		if err != nil {
			t.Errorf("ParseNodeList(%q): %v", c.in, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("ParseNodeList(%q)=%v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("ParseNodeList(%q)=%v, want %v", c.in, got, c.want)
			}
		}
	}
	// Errors must name the offending element.
	bad := []struct{ in, mention string }{
		{"16,abc,64", `"abc"`},
		{"16,,64", "empty"},
		{"0", "0"},
		{"1", "1"},
		{"4096", "4096"},
		{"64,999999", "999999"},
	}
	for _, c := range bad {
		_, err := ParseNodeList(c.in)
		if err == nil {
			t.Errorf("ParseNodeList(%q): no error", c.in)
			continue
		}
		if !strings.Contains(err.Error(), c.mention) {
			t.Errorf("ParseNodeList(%q) error %q does not name %q", c.in, err, c.mention)
		}
	}
	if _, err := ParseNodeList("2048"); err != nil {
		t.Errorf("ParseNodeList at MaxNodes=%d: %v", node.MaxNodes, err)
	}
}

// TestScaleDeterministic: every simulated-time field of the sweep is a pure
// function of its inputs — two runs agree exactly, and the deterministic
// tables render byte-identically.
func TestScaleDeterministic(t *testing.T) {
	opts := ScaleOpts{NodeCounts: []int{8, 16}, SamplesortMaxNodes: 16, SamplesortKeys: 16, HotspotPackets: 4}
	a := RunScale(opts)
	b := RunScale(opts)
	for i := range a {
		if a[i].AllreduceNs != b[i].AllreduceNs {
			t.Errorf("nodes=%d: allreduce %d vs %d ns", a[i].Nodes, a[i].AllreduceNs, b[i].AllreduceNs)
		}
		if a[i].SamplesortNs != b[i].SamplesortNs {
			t.Errorf("nodes=%d: samplesort %d vs %d ns", a[i].Nodes, a[i].SamplesortNs, b[i].SamplesortNs)
		}
		if len(a[i].HotspotStalls) != len(b[i].HotspotStalls) {
			t.Fatalf("nodes=%d: stall row counts differ", a[i].Nodes)
		}
		for j := range a[i].HotspotStalls {
			if a[i].HotspotStalls[j] != b[i].HotspotStalls[j] {
				t.Errorf("nodes=%d: stall row %d differs: %+v vs %+v",
					a[i].Nodes, j, a[i].HotspotStalls[j], b[i].HotspotStalls[j])
			}
		}
		if a[i].SamplesortNs == 0 {
			t.Errorf("nodes=%d: samplesort skipped below SamplesortMaxNodes", a[i].Nodes)
		}
	}
	if ScaleTable(a).String() != ScaleTable(b).String() {
		t.Error("deterministic scale table differs between identical runs")
	}
	if SaturationTable(a[1]).String() != SaturationTable(b[1]).String() {
		t.Error("saturation table differs between identical runs")
	}
}

// TestScaleSkipsSamplesortAboveCap: node counts past SamplesortMaxNodes
// record 0 and the table says "skipped".
func TestScaleSkipsSamplesortAboveCap(t *testing.T) {
	rs := RunScale(ScaleOpts{NodeCounts: []int{16}, SamplesortMaxNodes: 8, SamplesortKeys: 16, HotspotPackets: 2})
	if rs[0].SamplesortNs != 0 {
		t.Errorf("samplesort ran past the cap: %d ns", rs[0].SamplesortNs)
	}
	if !strings.Contains(ScaleTable(rs).String(), "skipped") {
		t.Error("table does not mark the skipped samplesort cell")
	}
}

// TestWriteDiffScale: the JSON round-trips, an unchanged footprint passes
// the gate, a >10% bytes/node growth fails it (naming the node count), and
// a missing node count fails it.
func TestWriteDiffScale(t *testing.T) {
	results := []ScaleResult{
		{Nodes: 64, Levels: 3, Links: 512, BytesPerNode: 100_000, HeapBytes: 6_400_000,
			AllreduceNs: 25_000, SamplesortNs: 300_000,
			HotspotStalls: []LevelStallsJSON{{Level: "inject", Links: 64, Stalls: 10, StalledNs: 1000}}},
		{Nodes: 256, Levels: 4, BytesPerNode: 150_000, AllreduceNs: 37_000},
	}
	var buf bytes.Buffer
	if err := WriteScale(&buf, results); err != nil {
		t.Fatal(err)
	}
	baseline := buf.Bytes()
	if !strings.Contains(buf.String(), ScaleSchema) {
		t.Fatalf("document lacks schema %q", ScaleSchema)
	}

	var out bytes.Buffer
	if !DiffScale(baseline, results, &out) {
		t.Errorf("identical results failed the gate:\n%s", out.String())
	}

	grown := append([]ScaleResult(nil), results...)
	grown[0].BytesPerNode = 115_000 // +15%
	out.Reset()
	if DiffScale(baseline, grown, &out) {
		t.Error("15% bytes/node growth passed the gate")
	}
	if !strings.Contains(out.String(), "REGRESSED") || !strings.Contains(out.String(), "64") {
		t.Errorf("regression report does not name the offender:\n%s", out.String())
	}

	within := append([]ScaleResult(nil), results...)
	within[0].BytesPerNode = 109_000 // +9%: inside the gate
	out.Reset()
	if !DiffScale(baseline, within, &out) {
		t.Errorf("9%% growth tripped the 10%% gate:\n%s", out.String())
	}

	out.Reset()
	if DiffScale(baseline, results[:1], &out) {
		t.Error("missing node count passed the gate")
	}
	if !strings.Contains(out.String(), "MISSING") {
		t.Errorf("missing node count not reported:\n%s", out.String())
	}

	if DiffScale([]byte("not json"), results, &out) {
		t.Error("garbage baseline passed the gate")
	}
}

// TestScaleFootprintMeasures: the footprint probe reports plausible values
// on a small machine — positive heap, per-node share, and fat-tree shape.
func TestScaleFootprintMeasures(t *testing.T) {
	heap, _, levels, links := measureFootprint(16)
	if heap <= 0 {
		t.Fatalf("heap delta %d", heap)
	}
	if levels != 2 || links != 2*16+2*1*4*4 {
		t.Errorf("16-node tree shape: levels=%d links=%d", levels, links)
	}
	// The lazy-state work pinned small machines far below 1 MB/node; a
	// generous ceiling still catches an accidental return to dense
	// allocation (a 16 MB DRAM alone would blow this 16x).
	if perNode := heap / 16; perNode > 1<<20 {
		t.Errorf("footprint %d bytes/node exceeds 1 MB — lazy allocation broken?", perNode)
	}
}
