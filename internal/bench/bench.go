// Package bench regenerates the paper's evaluation figures (and this
// reproduction's extension experiments) as printable series. It is shared
// by the root-level Go benchmarks and the voyager-bench command.
package bench

import (
	"fmt"

	"startvoyager/internal/blockxfer"
	"startvoyager/internal/core"
	"startvoyager/internal/sim"
	"startvoyager/internal/stats"
)

// Fig3Sizes is the transfer-size sweep used for the latency and bandwidth
// figures.
var Fig3Sizes = []int{64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10}

// fmtUs renders a sim.Time in microseconds.
func fmtUs(t sim.Time) string { return fmt.Sprintf("%.2f", float64(t)/1000) }

// Fig3Latency reproduces Figure 3: block-transfer latency of approaches 1-3
// versus transfer size.
func Fig3Latency(sizes []int) *stats.Table {
	t := &stats.Table{
		Title:   "Figure 3 — block transfer latency (us)",
		Columns: []string{"size", "approach-1", "approach-2", "approach-3"},
	}
	for _, size := range sizes {
		row := []string{stats.FormatBytes(size)}
		for _, a := range []blockxfer.Approach{blockxfer.A1, blockxfer.A2, blockxfer.A3} {
			row = append(row, fmtUs(blockxfer.Measure(a, size).Latency))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig4Bandwidth reproduces Figure 4: block-transfer bandwidth of approaches
// 1-3 versus transfer size.
func Fig4Bandwidth(sizes []int) *stats.Table {
	t := &stats.Table{
		Title:   "Figure 4 — block transfer bandwidth (MB/s)",
		Columns: []string{"size", "approach-1", "approach-2", "approach-3"},
	}
	for _, size := range sizes {
		row := []string{stats.FormatBytes(size)}
		for _, a := range []blockxfer.Approach{blockxfer.A1, blockxfer.A2, blockxfer.A3} {
			row = append(row, fmt.Sprintf("%.1f", blockxfer.Measure(a, size).Bandwidth))
		}
		t.AddRow(row...)
	}
	return t
}

// ExtAEarlyNotification covers approaches 4 and 5 (described in the paper
// without numbers): notification latency and receiver consume-done time
// against approach 3.
func ExtAEarlyNotification(sizes []int) *stats.Table {
	t := &stats.Table{
		Title: "Ext A — optimistic notification (approaches 4-5): notify / consume-done (us)",
		Columns: []string{"size",
			"a3-notify", "a4-notify", "a5-notify",
			"a3-consume", "a4-consume", "a5-consume"},
	}
	for _, size := range sizes {
		var notify, consume [3]string
		for i, a := range []blockxfer.Approach{blockxfer.A3, blockxfer.A4, blockxfer.A5} {
			m := blockxfer.Measure(a, size)
			notify[i] = fmtUs(m.NotifyAt)
			consume[i] = fmtUs(m.ConsumeDone)
		}
		t.AddRow(stats.FormatBytes(size),
			notify[0], notify[1], notify[2],
			consume[0], consume[1], consume[2])
	}
	return t
}

// ExtBOccupancy reports aP and sP occupancy per approach for one transfer —
// the paper's qualitative claim ("firmware engine occupancy is extremely
// important") made quantitative.
func ExtBOccupancy(size int) *stats.Table {
	t := &stats.Table{
		Title: fmt.Sprintf("Ext B — processor occupancy for one %s transfer (us)",
			stats.FormatBytes(size)),
		Columns: []string{"approach", "aP-src", "aP-dst", "sP-src", "sP-dst", "latency"},
	}
	for _, a := range []blockxfer.Approach{blockxfer.A1, blockxfer.A2, blockxfer.A3,
		blockxfer.A4, blockxfer.A5} {
		m := blockxfer.Measure(a, size)
		t.AddRow(a.String(), fmtUs(m.APSrcBusy), fmtUs(m.APDstBusy),
			fmtUs(m.SPSrcBusy), fmtUs(m.SPDstBusy), fmtUs(m.Latency))
	}
	return t
}

// MechResult is one mechanism microbenchmark outcome.
type MechResult struct {
	Name       string
	OneWay     sim.Time // one-way latency (half round trip)
	Throughput float64  // MB/s streaming payload
	MsgPerSec  float64
}

// ExtCMechanisms characterizes the default communication mechanisms of
// Section 5: one-way latency and streaming throughput for Basic, Express,
// TagOn and DMA, plus NUMA and S-COMA remote access latencies.
func ExtCMechanisms() *stats.Table {
	t := &stats.Table{
		Title:   "Ext C — mechanism microbenchmarks",
		Columns: []string{"mechanism", "one-way (us)", "throughput (MB/s)", "msgs/s"},
	}
	for _, r := range MeasureMechanisms() {
		row := []string{r.Name, fmtUs(r.OneWay)}
		if r.Throughput > 0 {
			row = append(row, fmt.Sprintf("%.1f", r.Throughput),
				fmt.Sprintf("%.0f", r.MsgPerSec))
		} else {
			row = append(row, "-", "-")
		}
		t.AddRow(row...)
	}
	return t
}

// MeasureMechanisms runs all mechanism microbenchmarks.
func MeasureMechanisms() []MechResult {
	return []MechResult{
		basicPingPong(),
		expressPingPong(),
		tagonLatency(),
		dmaLatency(),
		numaReadLatency(),
		scomaMissLatency(),
	}
}

// basicPingPong measures Basic messages: latency by ping-pong, throughput by
// streaming 88-byte messages.
func basicPingPong() MechResult {
	const rounds = 20
	m := core.NewMachine(2)
	var rtt sim.Time
	m.Go(0, "ping", func(p *sim.Proc, a *core.API) {
		start := p.Now()
		for i := 0; i < rounds; i++ {
			a.SendBasic(p, 1, []byte{1})
			a.RecvBasic(p)
		}
		rtt = (p.Now() - start) / rounds
	})
	m.Go(1, "pong", func(p *sim.Proc, a *core.API) {
		for i := 0; i < rounds; i++ {
			a.RecvBasic(p)
			a.SendBasic(p, 0, []byte{2})
		}
	})
	m.Run()

	const count = 500
	payload := make([]byte, core.MaxBasicPayload)
	m2 := core.NewMachine(2)
	var dur sim.Time
	m2.Go(0, "src", func(p *sim.Proc, a *core.API) {
		for i := 0; i < count; i++ {
			a.SendBasic(p, 1, payload)
		}
	})
	m2.Go(1, "dst", func(p *sim.Proc, a *core.API) {
		start := p.Now()
		for i := 0; i < count; i++ {
			a.RecvBasic(p)
		}
		dur = p.Now() - start
	})
	m2.Run()
	return MechResult{Name: "basic (88B)", OneWay: rtt / 2,
		Throughput: stats.MBps(count*len(payload), dur),
		MsgPerSec:  float64(count) / float64(dur) * 1e9}
}

func expressPingPong() MechResult {
	const rounds = 20
	m := core.NewMachine(2)
	var rtt sim.Time
	m.Go(0, "ping", func(p *sim.Proc, a *core.API) {
		start := p.Now()
		for i := 0; i < rounds; i++ {
			a.SendExpress(p, 1, []byte{1})
			a.RecvExpress(p)
		}
		rtt = (p.Now() - start) / rounds
	})
	m.Go(1, "pong", func(p *sim.Proc, a *core.API) {
		for i := 0; i < rounds; i++ {
			a.RecvExpress(p)
			a.SendExpress(p, 0, []byte{2})
		}
	})
	m.Run()

	const count = 500
	m2 := core.NewMachine(2)
	var dur sim.Time
	m2.Go(0, "src", func(p *sim.Proc, a *core.API) {
		for i := 0; i < count; i++ {
			a.SendExpress(p, 1, []byte{1, 2, 3, 4, 5})
			// Express queues drop on overflow; pace to the receive rate.
			if i%16 == 15 {
				a.Compute(p, 2*sim.Microsecond)
			}
		}
	})
	got := 0
	m2.Go(1, "dst", func(p *sim.Proc, a *core.API) {
		start := p.Now()
		for got < count {
			if _, _, ok := a.TryRecvExpress(p); ok {
				got++
			}
		}
		dur = p.Now() - start
	})
	m2.Run()
	return MechResult{Name: "express (5B)", OneWay: rtt / 2,
		Throughput: stats.MBps(count*5, dur),
		MsgPerSec:  float64(count) / float64(dur) * 1e9}
}

func tagonLatency() MechResult {
	const rounds = 10
	m := core.NewMachine(2)
	var rtt sim.Time
	tag := make([]byte, 80)
	m.Go(0, "ping", func(p *sim.Proc, a *core.API) {
		a.StageASram(p, 0x8000, tag)
		start := p.Now()
		for i := 0; i < rounds; i++ {
			a.SendTagOn(p, 1, []byte{1}, 0x8000, 80)
			a.RecvBasic(p)
		}
		rtt = (p.Now() - start) / rounds
	})
	m.Go(1, "pong", func(p *sim.Proc, a *core.API) {
		for i := 0; i < rounds; i++ {
			a.RecvBasic(p)
			a.SendBasic(p, 0, []byte{2})
		}
	})
	m.Run()
	return MechResult{Name: "tagon (1+80B)", OneWay: rtt / 2}
}

func dmaLatency() MechResult {
	m := core.NewMachine(2)
	const size = 4096
	m.API(0).Poke(0x10_0000, make([]byte, size))
	var lat sim.Time
	m.Go(0, "src", func(p *sim.Proc, a *core.API) {
		a.DmaPush(p, 1, 0x10_0000, 0x20_0000, size, 1)
	})
	m.Go(1, "dst", func(p *sim.Proc, a *core.API) {
		start := p.Now()
		a.RecvNotify(p)
		lat = p.Now() - start
	})
	m.Run()
	return MechResult{Name: "dma (4KB page)", OneWay: lat,
		Throughput: stats.MBps(size, lat)}
}

func numaReadLatency() MechResult {
	m := core.NewMachine(2)
	var lat sim.Time
	m.Go(0, "rd", func(p *sim.Proc, a *core.API) {
		var b [8]byte
		start := p.Now()
		a.NumaLoad(p, 1<<20, b[:]) // homed on node 1
		lat = p.Now() - start
	})
	m.Run()
	return MechResult{Name: "numa read (8B)", OneWay: lat}
}

func scomaMissLatency() MechResult {
	m := core.NewMachine(2)
	m.Nodes[0].Dram.Poke(8<<20, make([]byte, 4096))
	var lat sim.Time
	m.Go(1, "rd", func(p *sim.Proc, a *core.API) {
		var b [8]byte
		start := p.Now()
		a.ScomaLoad(p, 0, b[:]) // line homed on node 0: full miss
		lat = p.Now() - start
	})
	m.Run()
	return MechResult{Name: "s-coma cold miss (32B line)", OneWay: lat}
}
