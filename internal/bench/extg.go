package bench

import (
	"fmt"

	"startvoyager/internal/blockxfer"
	"startvoyager/internal/cluster"
	"startvoyager/internal/firmware"
	"startvoyager/internal/sim"
	"startvoyager/internal/stats"
)

// ExtGNetworkScaling is the what-if ablation behind the paper's thesis:
// rerun the Figure-4 bandwidth experiment with faster network links. Only
// the hardware approach (3) can exploit a faster wire; approaches 1 and 2
// are pinned by processor occupancy — which is why mechanism/implementation
// choice, not raw link speed, dominates.
func ExtGNetworkScaling(size int) *stats.Table {
	t := &stats.Table{
		Title: fmt.Sprintf("Ext G — bandwidth (MB/s, %s transfers) vs link speed",
			stats.FormatBytes(size)),
		Columns: []string{"link", "approach-1", "approach-2", "approach-3"},
	}
	links := []struct {
		name string
		flit sim.Time // per-16B serialization
	}{
		{"160 MB/s (Arctic)", 100 * sim.Nanosecond},
		{"320 MB/s", 50 * sim.Nanosecond},
		{"640 MB/s", 25 * sim.Nanosecond},
	}
	for _, l := range links {
		hook := func(cfg *cluster.Config) { cfg.Net.FlitTime = l.flit }
		row := []string{l.name}
		for _, a := range []blockxfer.Approach{blockxfer.A1, blockxfer.A2, blockxfer.A3} {
			row = append(row, fmt.Sprintf("%.1f",
				blockxfer.MeasureBandwidthWith(a, size, hook)))
		}
		t.AddRow(row...)
	}
	return t
}

// ExtGTopology compares the fat tree against an idealized fixed-latency
// fabric on the same experiment — how much of the latency budget the
// network structure actually owns.
func ExtGTopology(size int) *stats.Table {
	t := &stats.Table{
		Title: fmt.Sprintf("Ext G — approach-3 bandwidth (%s): fat tree vs ideal fabric",
			stats.FormatBytes(size)),
		Columns: []string{"fabric", "bandwidth (MB/s)"},
	}
	t.AddRow("Arctic fat tree", fmt.Sprintf("%.1f",
		blockxfer.MeasureBandwidth(blockxfer.A3, size)))
	t.AddRow("ideal fixed-latency", fmt.Sprintf("%.1f",
		blockxfer.MeasureBandwidthWith(blockxfer.A3, size,
			func(cfg *cluster.Config) { cfg.DirectNet = true })))
	return t
}

// ExtHFirmwareSpeed varies the sP's speed (handler costs) and reruns the
// bandwidth experiment: approach 2's firmware-managed transfer collapses as
// the sP slows while approach 3's hardware path barely notices — the
// paper's warning that "firmware engine occupancy ... can strongly color
// experimental results", quantified. (At the default speed A2's limiter is
// the command-queue hardware; a slower engine quickly becomes the
// bottleneck.)
func ExtHFirmwareSpeed(size int) *stats.Table {
	t := &stats.Table{
		Title: fmt.Sprintf("Ext H — bandwidth (MB/s, %s) vs firmware engine speed",
			stats.FormatBytes(size)),
		Columns: []string{"firmware", "approach-2", "approach-3"},
	}
	speeds := []struct {
		name  string
		scale int64 // dimensionless multiplier on default costs
	}{
		{"1x (default 604)", 1},
		{"2x slower", 2},
		{"4x slower", 4},
	}
	for _, s := range speeds {
		hook := func(cfg *cluster.Config) {
			c := firmware.DefaultCosts()
			c.Dispatch *= sim.Time(s.scale)
			c.Handler *= sim.Time(s.scale)
			c.PerByte *= sim.Time(s.scale)
			c.CmdIssue *= sim.Time(s.scale)
			cfg.Node.Costs = c
		}
		t.AddRow(s.name,
			fmt.Sprintf("%.1f", blockxfer.MeasureBandwidthWith(blockxfer.A2, size, hook)),
			fmt.Sprintf("%.1f", blockxfer.MeasureBandwidthWith(blockxfer.A3, size, hook)))
	}
	return t
}
