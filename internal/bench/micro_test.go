package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestWriteMicro pins the BENCH_micro.json document shape.
func TestWriteMicro(t *testing.T) {
	in := []MicroResult{{
		Name: "engine/schedule-step", N: 1000,
		NsPerOp: 125.0, OpsPerSec: 8e6, AllocsPerOp: 0, BytesPerOp: 0,
	}}
	var buf bytes.Buffer
	if err := WriteMicro(&buf, in); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema  string        `json:"schema"`
		Results []MicroResult `json:"results"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteMicro emitted invalid JSON: %v\n%s", err, buf.Bytes())
	}
	if doc.Schema != "voyager-micro/v1" {
		t.Fatalf("schema = %q, want voyager-micro/v1", doc.Schema)
	}
	if len(doc.Results) != 1 || doc.Results[0] != in[0] {
		t.Fatalf("results round-trip mismatch: %+v", doc.Results)
	}
}

// TestMicroSuiteContents pins the benchmark set: the engine/boxheap pair must
// both be present (the events/sec comparison in BENCH_micro.json depends on
// it), alongside the handoff, queue, and whole-node probes.
func TestMicroSuiteContents(t *testing.T) {
	want := []string{
		"engine/schedule-step", "boxheap/schedule-step",
		"proc/delay", "proc/call-immediate", "queue/push-pop", "node/basic-msg",
	}
	if len(microSuite) != len(want) {
		t.Fatalf("suite has %d benchmarks, want %d", len(microSuite), len(want))
	}
	for i, s := range microSuite {
		if s.name != want[i] {
			t.Errorf("suite[%d] = %q, want %q", i, s.name, want[i])
		}
		if s.fn == nil {
			t.Errorf("suite[%d] %q has nil fn", i, s.name)
		}
	}
}

// TestScheduleStepVsBoxHeapAllocs runs the two heap benchmarks briefly and
// checks the property BENCH_micro.json is meant to showcase: the value-based
// heap schedules without allocating; the seed boxed heap pays at least one
// allocation per event.
func TestScheduleStepVsBoxHeapAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed; skipped in -short")
	}
	eng := testing.Benchmark(benchEngineScheduleStep)
	box := testing.Benchmark(benchBoxHeapScheduleStep)
	if got := eng.AllocsPerOp(); got != 0 {
		t.Errorf("engine schedule/step allocates %d per event, want 0", got)
	}
	if got := box.AllocsPerOp(); got < 1 {
		t.Errorf("boxheap baseline allocates %d per event, want >= 1", got)
	}
	t.Logf("engine %.1f ns/op vs boxheap %.1f ns/op",
		float64(eng.T.Nanoseconds())/float64(eng.N),
		float64(box.T.Nanoseconds())/float64(box.N))
}
