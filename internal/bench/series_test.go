package bench

import (
	"bytes"
	"strings"
	"testing"

	"startvoyager/internal/cluster"
	"startvoyager/internal/core"
	"startvoyager/internal/fault"
	"startvoyager/internal/sim"
	"startvoyager/internal/stats"
)

// seriesScenario is the ISSUE acceptance run: a four-node reliable all-to-one
// workload under a 5% drop plan with the windowed sampler attached, rendered
// to the series export and the voyager-stats report.
func seriesScenario(t *testing.T) (*stats.SeriesDoc, []byte, []byte) {
	t.Helper()
	plan, err := fault.ParsePlan("seed=7,drop=0.05")
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.DefaultConfig(4)
	cfg.Faults = plan
	m := core.NewMachineConfig(cfg)
	sampler := m.Series(stats.SamplerConfig{Window: 20 * sim.Microsecond})

	const msgs = 60
	senders := 3
	sendersDone := 0
	m.Go(0, "sink", func(p *sim.Proc, a *core.API) {
		for {
			if _, _, err := a.RecvReliableTimeout(p, m.RelBound()); err != nil && sendersDone == senders {
				return
			}
		}
	})
	for i := 1; i <= senders; i++ {
		m.Go(i, "src", func(p *sim.Proc, a *core.API) {
			for k := 0; k < msgs; k++ {
				if err := a.SendReliable(p, 0, []byte{byte(k)}); err != nil {
					t.Errorf("SendReliable: %v", err)
				}
			}
			sendersDone++
		})
	}
	m.Run()
	sampler.Finish()

	meta := &stats.RunMeta{Tool: "series-test", Mechanism: "reliable", Nodes: 4,
		Seed: 7, FaultPlan: "seed=7,drop=0.05", SimTimeNs: int64(m.Eng.Now())}
	var seriesOut bytes.Buffer
	if err := sampler.WriteJSON(&seriesOut, meta); err != nil {
		t.Fatal(err)
	}
	doc, err := stats.ParseSeries(bytes.NewReader(seriesOut.Bytes()))
	if err != nil {
		t.Fatalf("export does not round-trip: %v", err)
	}
	var reportOut bytes.Buffer
	if err := stats.WriteReport(&reportOut, doc, stats.ReportOpts{TopK: 5, Width: 32}); err != nil {
		t.Fatal(err)
	}
	return doc, seriesOut.Bytes(), reportOut.Bytes()
}

// TestSeriesScenarioReport: the acceptance criterion — the faulty run's
// report shows per-window credit-stall and retransmit series, and both the
// export and the rendered report are byte-identical across same-seed runs.
func TestSeriesScenarioReport(t *testing.T) {
	doc, series1, report1 := seriesScenario(t)
	_, series2, report2 := seriesScenario(t)
	if !bytes.Equal(series1, series2) {
		t.Error("series exports differ between identical runs")
	}
	if !bytes.Equal(report1, report2) {
		t.Error("voyager-stats reports differ between identical runs")
	}

	var stallSeries, retransTotal int
	var drops int64
	for _, p := range doc.SortedPaths() {
		d := doc.Series[p]
		switch {
		case strings.HasSuffix(p, "/credit_stalls"):
			stallSeries++
		case strings.HasSuffix(p, "fault/retransmits"):
			for _, v := range d.Max {
				if v > 0 {
					retransTotal++
				}
			}
		case p == "net/fault/injected_drops":
			for _, v := range d.Max {
				if v > drops {
					drops = v
				}
			}
		}
	}
	if stallSeries == 0 {
		t.Error("no per-link credit_stalls series in the export")
	}
	if retransTotal == 0 {
		t.Error("no window recorded a retransmit under the drop plan")
	}
	if drops == 0 {
		t.Error("injected_drops series never rose under the drop plan")
	}

	report := string(report1)
	for _, want := range []string{
		"stall attribution by window",
		"retransmits",
		"credit-stalls",
		`faults="seed=7,drop=0.05"`,
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report lacks %q", want)
		}
	}
}
