package bench

import (
	"container/heap"
	"encoding/json"
	"io"
	"testing"

	"startvoyager/internal/core"
	"startvoyager/internal/sim"
)

// Microbenchmark suite for the simulation core's hot paths: event
// scheduling, Proc handoff, queue traffic, and a whole-node message
// exchange. `voyager-bench -micro` (make bench-micro) runs it with
// testing.Benchmark and records events/sec and allocs/op in
// BENCH_micro.json, so the perf trajectory is versioned alongside the
// sim-time baseline in BENCH_baseline.json. Wall-clock numbers are
// host-dependent and are NOT diffed in CI — the allocation counts are the
// stable part (and are regression-tested in micro_test.go and
// internal/sim/bench_test.go).

// MicroResult is one microbenchmark outcome.
type MicroResult struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"` // for the engine benches: events/sec
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// microSuite lists the benchmarks in reporting order. boxheap/schedule-step
// is the seed implementation of the event queue (container/heap over
// *event), kept here as the baseline the value-based 4-ary heap is measured
// against.
var microSuite = []struct {
	name string
	fn   func(*testing.B)
}{
	{"engine/schedule-step", benchEngineScheduleStep},
	{"boxheap/schedule-step", benchBoxHeapScheduleStep},
	{"proc/delay", benchProcDelay},
	{"proc/call-immediate", benchProcCallImmediate},
	{"queue/push-pop", benchQueuePushPop},
	{"node/basic-msg", benchNodeBasicMsg},
}

// MicroBench runs the suite and returns the results in suite order.
func MicroBench() []MicroResult {
	out := make([]MicroResult, 0, len(microSuite))
	for _, s := range microSuite {
		r := testing.Benchmark(s.fn)
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		out = append(out, MicroResult{
			Name:        s.name,
			N:           r.N,
			NsPerOp:     ns,
			OpsPerSec:   1e9 / ns,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	return out
}

// WriteMicro renders results as the BENCH_micro.json document.
func WriteMicro(w io.Writer, results []MicroResult) error {
	doc := struct {
		Schema  string        `json:"schema"`
		Results []MicroResult `json:"results"`
	}{Schema: "voyager-micro/v1", Results: results}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(out, '\n'))
	return err
}

// scheduleFan keeps fanout self-rescheduling event chains alive on schedule,
// so the heap under test holds a realistic pending population rather than a
// single event. Deltas walk a fixed multiplicative pattern — deterministic,
// but not sorted, so pushes land throughout the heap.
func scheduleFan(schedule func(sim.Time, func()), fanout int) {
	for j := 0; j < fanout; j++ {
		k := uint64(j)
		var fn func()
		fn = func() {
			k += 2654435761
			schedule(sim.Time(k%4096)*sim.Nanosecond, fn)
		}
		schedule(sim.Time(j)*sim.Nanosecond, fn)
	}
}

// benchEngineScheduleStep measures the engine's schedule+step cycle with
// 256 pending chains: one op = pop the earliest event, run it, push its
// replacement. Steady state must be allocation-free.
func benchEngineScheduleStep(b *testing.B) {
	e := sim.NewEngine()
	scheduleFan(e.Schedule, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// boxEvent/boxHeap/boxEngine replicate the seed event queue: every push
// heap-allocates an event and boxes it through container/heap's interface{}.
type boxEvent struct {
	at  sim.Time
	seq uint64
	fn  func()
}

type boxHeap []*boxEvent

func (h boxHeap) Len() int { return len(h) }
func (h boxHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h boxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *boxHeap) Push(x interface{}) { *h = append(*h, x.(*boxEvent)) }
func (h *boxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

type boxEngine struct {
	now      sim.Time
	seq      uint64
	events   boxHeap
	nEvents  uint64
	panicVal interface{}
}

func (e *boxEngine) schedule(d sim.Time, fn func()) {
	e.seq++
	heap.Push(&e.events, &boxEvent{at: e.now + d, seq: e.seq, fn: fn})
}

func (e *boxEngine) step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*boxEvent)
	e.now = ev.at
	e.nEvents++
	ev.fn()
	if e.panicVal != nil {
		v := e.panicVal
		e.panicVal = nil
		panic(v)
	}
	return true
}

// benchBoxHeapScheduleStep is benchEngineScheduleStep against the seed
// implementation — the baseline for the events/sec comparison.
func benchBoxHeapScheduleStep(b *testing.B) {
	e := &boxEngine{}
	scheduleFan(e.schedule, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.step()
	}
}

// benchProcDelay measures the full Proc context switch: Delay schedules a
// wakeup and yields to the engine, which resumes the goroutine — two baton
// passes per op.
func benchProcDelay(b *testing.B) {
	e := sim.NewEngine()
	n := b.N
	e.Spawn("p", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			p.Delay(10 * sim.Nanosecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}

// benchProcCallImmediate measures the synchronous-completion Call path (the
// common bus-issue shape): start invokes done inline, the Proc never yields.
func benchProcCallImmediate(b *testing.B) {
	e := sim.NewEngine()
	n := b.N
	immediate := func(done func()) { done() }
	e.Spawn("p", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			p.Call(immediate)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}

// benchQueuePushPop measures producer/consumer coupling through sim.Queue:
// each item costs one Push+Signal and one blocking Pop (Cond wait + resume).
func benchQueuePushPop(b *testing.B) {
	e := sim.NewEngine()
	q := sim.NewQueue[int](e)
	n := b.N
	e.Spawn("consumer", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			q.Pop(p)
		}
	})
	e.Spawn("producer", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			q.Push(i)
			p.Delay(10 * sim.Nanosecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}

// benchNodeBasicMsg is the whole-node benchmark: a two-node machine pushing
// Basic messages through the full aP → CTRL → fabric → CTRL → aP pipeline
// (the Ext E resident-queue path), one delivered message per op.
func benchNodeBasicMsg(b *testing.B) {
	m := core.NewMachine(2)
	n := b.N
	buf := []byte{1, 2, 3, 4}
	m.Go(1, "src", func(p *sim.Proc, a *core.API) {
		for i := 0; i < n; i++ {
			a.SendBasic(p, 0, buf)
		}
	})
	got := 0
	m.Go(0, "dst", func(p *sim.Proc, a *core.API) {
		for got < n {
			if _, _, ok := a.TryRecvBasic(p); ok {
				got++
			}
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	m.Run()
}
