package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Deterministic N-way run harness. The headline probe, the fault matrix,
// and multi-seed determinism sweeps all execute fully independent cells —
// each cell builds its own Engine, machine, registries, and trace buffers,
// and no state crosses cells — so they may run on real worker goroutines
// without perturbing a single simulated nanosecond. Determinism is
// preserved structurally: results land in a slot indexed by cell, and the
// caller consumes them in fixed cell order, so the merged output is
// byte-identical whatever the host scheduler does (test-enforced in
// parallel_test.go against the fault-matrix JSON and waterfall exports).
//
// This file is the one sanctioned use of real concurrency outside
// internal/sim; the nogoroutine analyzer admits it through the
// voyager:parallel-harness directive below and flags everything else.

// Cells evaluates fn(i) for every cell i in [0, n) across at most workers
// goroutines and returns the results in cell order. workers <= 1 runs the
// cells sequentially on the calling goroutine — the output is identical
// either way, provided fn(i) is a pure function of i (each cell must own
// its Engine and everything attached to it, and must not print).
//
// A panicking cell panics Cells after all cells finish; when several cells
// panic, the lowest-indexed one wins, so failure output is deterministic
// too.
//
//voyager:parallel-harness cells share no state; results merge in fixed cell order
func Cells[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	if n == 0 {
		return out
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			func() {
				defer rewrapPanic(i)
				out[i] = fn(i)
			}()
		}
		return out
	}
	if workers > n {
		workers = n
	}
	panics := make([]interface{}, n)
	runCell := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				panics[i] = r
			}
		}()
		out[i] = fn(i)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				runCell(i)
			}
		}()
	}
	wg.Wait()
	for i, r := range panics {
		if r != nil {
			panic(fmt.Sprintf("bench: parallel cell %d: %v", i, r))
		}
	}
	return out
}

// rewrapPanic tags a sequential cell's panic exactly like the parallel path
// does, so failure output matches at any worker count.
func rewrapPanic(i int) {
	if r := recover(); r != nil {
		panic(fmt.Sprintf("bench: parallel cell %d: %v", i, r))
	}
}
