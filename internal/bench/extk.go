package bench

import (
	"encoding/binary"
	"fmt"
	"math"

	"startvoyager/internal/cluster"
	"startvoyager/internal/core"
	"startvoyager/internal/mpi"
	"startvoyager/internal/sim"
	"startvoyager/internal/stats"
)

// ExtKProtocolVariants compares two S-COMA coherence protocols on identical
// hardware — the base MSI directory versus the migratory-sharing variant —
// on a producer/consumer counter that migrates between two nodes. Protocol
// experimentation "while keeping all other parameters constant" is the
// paper's whole program.
func ExtKProtocolVariants() *stats.Table {
	t := &stats.Table{
		Title:   "Ext K — S-COMA protocol variants: migrating counter (16 handoffs)",
		Columns: []string{"protocol", "time (us)", "Get", "GetX", "recalls", "invals"},
	}
	for _, mig := range []bool{false, true} {
		name := "base MSI"
		if mig {
			name = "MSI + migratory"
		}
		dur, st := migratingCounter(mig)
		t.AddRow(name, fmtUs(dur),
			fmt.Sprint(st.Gets), fmt.Sprint(st.GetXs),
			fmt.Sprint(st.Recalls), fmt.Sprint(st.Invals))
	}
	return t
}

func migratingCounter(migratory bool) (sim.Time, scomaStats) {
	cfg := cluster.DefaultConfig(2)
	cfg.ScomaMigratory = migratory
	m := core.NewMachineConfig(cfg)
	m.Nodes[0].Dram.Poke(8<<20, []byte{0})
	const rounds = 8
	incr := func(p *sim.Proc, a *core.API) {
		var b [1]byte
		a.ScomaLoad(p, 0, b[:])
		b[0]++
		a.ScomaStore(p, 0, b[:])
	}
	m.Go(0, "w0", func(p *sim.Proc, a *core.API) {
		for i := 0; i < rounds; i++ {
			incr(p, a)
			a.SendBasic(p, 1, []byte{1})
			a.RecvBasic(p)
		}
	})
	m.Go(1, "w1", func(p *sim.Proc, a *core.API) {
		for i := 0; i < rounds; i++ {
			a.RecvBasic(p)
			incr(p, a)
			a.SendBasic(p, 0, []byte{1})
		}
	})
	m.Run()
	st := m.Scomas[0].Stats()
	return m.Eng.Now(), scomaStats{st.Gets, st.GetXs, st.Recalls, st.Invals}
}

type scomaStats struct {
	Gets, GetXs, Recalls, Invals uint64
}

// ExtKStencil runs the same 1-D Jacobi stencil two ways on the same
// machine: halo exchange over MPI messages versus S-COMA shared memory —
// the apples-to-apples mechanism comparison the NIU exists to enable.
func ExtKStencil(cells, iters, nodes int) *stats.Table {
	t := &stats.Table{
		Title: fmt.Sprintf("Ext K — 1-D stencil (%d cells x %d iters, %d nodes): MP vs SM",
			cells, iters, nodes),
		Columns: []string{"paradigm", "time (us)", "messages", "max aP util"},
	}
	dur, msgs, util := stencilMP(cells, iters, nodes)
	t.AddRow("message passing (MPI halo)", fmtUs(dur), fmt.Sprint(msgs),
		fmt.Sprintf("%.0f%%", util*100))
	dur, msgs, util = stencilSM(cells, iters, nodes)
	t.AddRow("shared memory (S-COMA)", fmtUs(dur), fmt.Sprint(msgs),
		fmt.Sprintf("%.0f%%", util*100))
	return t
}

// stencilMP: each rank keeps its strip locally and exchanges one halo cell
// with each neighbour per iteration.
func stencilMP(cells, iters, nodes int) (sim.Time, uint64, float64) {
	m := core.NewMachine(nodes)
	per := cells / nodes
	for r := 0; r < nodes; r++ {
		r := r
		c := mpi.World(m, r)
		m.Go(r, "mp", func(p *sim.Proc, a *core.API) {
			strip := make([]float64, per+2) // with halo cells
			if r == nodes/2 {
				strip[1] = 100 // the hot spike
			}
			enc := func(v float64) []byte {
				var b [8]byte
				binary.BigEndian.PutUint64(b[:], math.Float64bits(v))
				return b[:]
			}
			dec := func(b []byte) float64 {
				return math.Float64frombits(binary.BigEndian.Uint64(b))
			}
			for it := 0; it < iters; it++ {
				if r > 0 {
					c.Send(p, r-1, 1, enc(strip[1]))
				}
				if r < nodes-1 {
					c.Send(p, r+1, 2, enc(strip[per]))
				}
				if r > 0 {
					d, _ := c.Recv(p, r-1, 2)
					strip[0] = dec(d)
				}
				if r < nodes-1 {
					d, _ := c.Recv(p, r+1, 1)
					strip[per+1] = dec(d)
				}
				next := make([]float64, per+2)
				for i := 1; i <= per; i++ {
					next[i] = 0.25*strip[i-1] + 0.5*strip[i] + 0.25*strip[i+1]
				}
				a.Compute(p, sim.Time(per)*30) // the arithmetic
				copy(strip, next)
				c.Barrier(p)
			}
		})
	}
	m.Run()
	var msgs uint64
	var util float64
	for _, n := range m.Nodes {
		msgs += n.Ctrl.Stats().TxMessages
		if u := n.APMeter.Utilization(0, m.Eng.Now()); u > util {
			util = u
		}
	}
	return m.Eng.Now(), msgs, util
}

// stencilSM: the whole array lives in the S-COMA space; each node reads its
// neighbours' boundary cells through the coherence protocol.
func stencilSM(cells, iters, nodes int) (sim.Time, uint64, float64) {
	m := core.NewMachine(nodes)
	per := cells / nodes
	bufA, bufB := uint32(0), uint32(64<<10)
	cell := func(buf uint32, i int) uint32 { return buf + uint32(i)*8 }
	for r := 0; r < nodes; r++ {
		r := r
		c := mpi.World(m, r) // barriers only
		m.Go(r, "sm", func(p *sim.Proc, a *core.API) {
			if r == 0 {
				var b [8]byte
				binary.BigEndian.PutUint64(b[:], math.Float64bits(100))
				a.ScomaStore(p, cell(bufA, cells/2), b[:])
			}
			c.Barrier(p)
			cur, nxt := bufA, bufB
			lo, hi := r*per, (r+1)*per
			for it := 0; it < iters; it++ {
				for i := lo; i < hi; i++ {
					if i == 0 || i == cells-1 {
						continue
					}
					var l, mid, rt [8]byte
					a.ScomaLoad(p, cell(cur, i-1), l[:])
					a.ScomaLoad(p, cell(cur, i), mid[:])
					a.ScomaLoad(p, cell(cur, i+1), rt[:])
					v := 0.25*math.Float64frombits(binary.BigEndian.Uint64(l[:])) +
						0.5*math.Float64frombits(binary.BigEndian.Uint64(mid[:])) +
						0.25*math.Float64frombits(binary.BigEndian.Uint64(rt[:]))
					var out [8]byte
					binary.BigEndian.PutUint64(out[:], math.Float64bits(v))
					a.ScomaStore(p, cell(nxt, i), out[:])
				}
				a.Compute(p, sim.Time(per)*30)
				c.Barrier(p)
				cur, nxt = nxt, cur
			}
		})
	}
	m.Run()
	var msgs uint64
	var util float64
	for _, n := range m.Nodes {
		msgs += n.Ctrl.Stats().TxMessages
		if u := n.APMeter.Utilization(0, m.Eng.Now()); u > util {
			util = u
		}
	}
	return m.Eng.Now(), msgs, util
}
