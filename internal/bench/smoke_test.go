package bench

import "testing"

func TestMechanismsSmoke(t *testing.T) {
	for _, r := range MeasureMechanisms() {
		t.Logf("%-28s one-way=%v tput=%.1f", r.Name, r.OneWay, r.Throughput)
		if r.OneWay <= 0 {
			t.Fatalf("%s: bad latency", r.Name)
		}
	}
}

func TestExtDSmoke(t *testing.T) {
	tab := ExtDReflective()
	t.Logf("\n%s", tab)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
}

func TestExtESmoke(t *testing.T) {
	tab := ExtEQueueCaching()
	t.Logf("\n%s", tab)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
}

func TestExtFSmoke(t *testing.T) {
	tab := ExtFCollectives([]int{2, 4, 8})
	t.Logf("\n%s", tab)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
}

func TestExtGSmoke(t *testing.T) {
	tab := ExtGNetworkScaling(64 << 10)
	t.Logf("\n%s", tab)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	t.Logf("\n%s", ExtGTopology(64<<10))
}

func TestExtHSmoke(t *testing.T) {
	tab := ExtHFirmwareSpeed(64 << 10)
	t.Logf("\n%s", tab)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
}

func TestExtISmoke(t *testing.T) {
	tab := ExtIMultitasking()
	t.Logf("\n%s", tab)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
}

func TestQoSProtectsLatency(t *testing.T) {
	// The headline assertion behind Ext I: with the high lane and a better
	// arbitration class, the latency-critical job is isolated from a bulk
	// job whose stalled queue wedges the Low lane.
	_, p99NoQos, _ := multitaskRun(false, true)
	_, p99Qos, _ := multitaskRun(true, true)
	if p99Qos*100 >= p99NoQos {
		t.Fatalf("QoS p99 %v not at least 100x below no-QoS p99 %v", p99Qos, p99NoQos)
	}
}

func TestExtKSmoke(t *testing.T) {
	tab := ExtKProtocolVariants()
	t.Logf("\n%s", tab)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	tab2 := ExtKStencil(64, 6, 4)
	t.Logf("\n%s", tab2)
	if len(tab2.Rows) != 2 {
		t.Fatalf("rows %d", len(tab2.Rows))
	}
}

func TestExtLSmoke(t *testing.T) {
	tab := ExtLReliability(20, ExtLDrops)
	t.Logf("\n%s", tab)
	if len(tab.Rows) != 1+len(ExtLDrops) {
		t.Fatalf("rows %d", len(tab.Rows))
	}
}

func TestFaultMatrixSmoke(t *testing.T) {
	tab, runs := FaultMatrix(10, []uint64{1}, 1)
	t.Logf("\n%s", tab)
	if len(runs) != 4 {
		t.Fatalf("runs %d", len(runs))
	}
	for _, r := range runs {
		if r.Reg == nil || r.Now <= 0 {
			t.Fatalf("run %s missing registry/time", r.Scenario)
		}
	}
}
