package bench

import (
	"fmt"

	"startvoyager/internal/core"
	"startvoyager/internal/sim"
	"startvoyager/internal/trace"
)

// Headline latency probe: one small fixed workload per MP mechanism, traced,
// with the mean delivered end-to-end latency extracted from the causal path
// analysis. The engine is deterministic, so these numbers are bit-stable for
// a given code state — CI diffs them against the committed BENCH_baseline.json
// with a 10% tolerance to catch accidental performance regressions.

// PathMechs lists the MP mechanisms covered by the probe.
var PathMechs = []string{"basic", "express", "tagon", "dma", "reliable"}

// headlineMsgs is the per-mechanism message count of the probe workload.
const headlineMsgs = 8

// RunMechTraced executes the fixed two-node workload of one MP mechanism
// with a trace buffer attached and returns the buffer. Panics on an unknown
// mechanism or a failed reliable send (the probe runs fault-free).
func RunMechTraced(mech string) *trace.Buffer {
	m := core.NewMachine(2)
	tbuf := m.Trace(1 << 18)
	m.Go(0, "sink", func(p *sim.Proc, a *core.API) {
		for got := 0; got < headlineMsgs; {
			switch mech {
			case "basic", "tagon":
				if _, _, ok := a.TryRecvBasic(p); ok {
					got++
				}
			case "express":
				if _, _, ok := a.TryRecvExpress(p); ok {
					got++
				}
			case "dma":
				a.RecvNotify(p)
				got++
			case "reliable":
				a.RecvReliable(p)
				got++
			}
		}
	})
	m.Go(1, "src", func(p *sim.Proc, a *core.API) {
		for k := 0; k < headlineMsgs; k++ {
			switch mech {
			case "basic":
				a.SendBasic(p, 0, []byte{byte(k), 1, 2, 3})
			case "tagon":
				a.MemStore(p, 0x10_0000, make([]byte, 64))
				a.SendTagOn(p, 0, []byte{byte(k)}, 0x400, 16)
			case "express":
				a.SendExpress(p, 0, []byte{byte(k)})
				a.Compute(p, 2*sim.Microsecond) // pace: express drops on overflow
			case "dma":
				a.DmaPush(p, 0, 0x10_0000, 0x20_0000, 128, uint32(k))
			case "reliable":
				if err := a.SendReliable(p, 0, []byte{byte(k)}); err != nil {
					panic(fmt.Sprintf("bench: headline reliable send: %v", err))
				}
			default:
				panic(fmt.Sprintf("bench: unknown mechanism %q", mech))
			}
		}
	})
	m.Run()
	if d := tbuf.Stats().Dropped; d != 0 {
		panic(fmt.Sprintf("bench: headline trace ring dropped %d events", d))
	}
	return tbuf
}

// HeadlineLatencies runs the probe for every mechanism and returns the
// headline numbers: mean delivered end-to-end latency and total
// retransmit-penalty per mechanism, in nanoseconds. Per-mechanism cells
// are independent machines, so they fan across up to workers goroutines;
// the returned map is identical at any worker count.
func HeadlineLatencies(workers int) map[string]int64 {
	means := Cells(len(PathMechs), workers, func(i int) int64 {
		mech := PathMechs[i]
		a := trace.AnalyzePaths(RunMechTraced(mech).Events())
		var sum sim.Time
		n := 0
		for _, m := range a.Msgs {
			if m.Outcome == trace.Delivered {
				sum += m.Total()
				n++
			}
		}
		if n == 0 {
			panic(fmt.Sprintf("bench: headline %s delivered nothing", mech))
		}
		return int64(sum) / int64(n)
	})
	out := make(map[string]int64, len(PathMechs))
	for i, mech := range PathMechs {
		out[mech+"_e2e_mean_ns"] = means[i]
	}
	return out
}
