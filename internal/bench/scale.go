package bench

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"startvoyager/internal/arctic"
	"startvoyager/internal/cluster"
	"startvoyager/internal/core"
	"startvoyager/internal/mpi"
	"startvoyager/internal/node"
	"startvoyager/internal/sim"
	"startvoyager/internal/stats"
)

// The scale benchmark pins the cost of growing the machine. The paper's
// whole premise is that Voyager-class studies need *large* configurations,
// so this file measures what large costs here: per-node heap footprint and
// construction time at 64/256/1024 nodes (host-side, with bytes/node gated
// against BENCH_scale.json in CI), plus the depth-dependent simulated
// behaviour that only exists on deep trees — MPI collectives at scale and
// credit-backpressure propagating level by level under hotspot traffic.
// Every simulated-time number is deterministic: same inputs, same bytes.

// ScaleSchema identifies the BENCH_scale.json document format.
const ScaleSchema = "voyager-scale/v1"

// DefaultScaleNodes is the node-count axis `make bench-scale` sweeps.
var DefaultScaleNodes = []int{64, 256, 1024}

// ParseNodeList parses a comma-separated node-count list such as
// "16,64,256". Errors name the offending element.
func ParseNodeList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		p := strings.TrimSpace(part)
		if p == "" {
			return nil, fmt.Errorf("node list %q: empty element", s)
		}
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("node list %q: %q is not an integer", s, p)
		}
		if v < 2 || v > node.MaxNodes {
			return nil, fmt.Errorf("node list %q: %d is outside the supported range 2..%d", s, v, node.MaxNodes)
		}
		out = append(out, v)
	}
	return out, nil
}

// ScaleOpts configures the scale sweep.
type ScaleOpts struct {
	// NodeCounts is the machine-size axis (default DefaultScaleNodes).
	NodeCounts []int
	// SamplesortMaxNodes bounds the samplesort workload: its Alltoall is a
	// ring shift of O(N^2) messages, so the largest configurations record 0
	// (skipped) instead of dominating CI wall-clock. Default 256.
	SamplesortMaxNodes int
	// SamplesortKeys is the per-rank key count for samplesort (default 64).
	SamplesortKeys int
	// HotspotPackets is the per-source packet count for the fabric
	// saturation run (default 8).
	HotspotPackets int
}

func (o *ScaleOpts) fill() {
	if len(o.NodeCounts) == 0 {
		o.NodeCounts = DefaultScaleNodes
	}
	if o.SamplesortMaxNodes == 0 {
		o.SamplesortMaxNodes = 256
	}
	if o.SamplesortKeys == 0 {
		o.SamplesortKeys = 64
	}
	if o.HotspotPackets == 0 {
		o.HotspotPackets = 8
	}
}

// LevelStallsJSON is one tree level's aggregated credit-stall telemetry as
// recorded in BENCH_scale.json (mirrors arctic.LevelStalls).
type LevelStallsJSON struct {
	Level     string `json:"level"`
	Links     int    `json:"links"`
	Stalls    uint64 `json:"stalls"`
	StalledNs uint64 `json:"stalled_ns"`
}

// ScaleResult is one node count's row of the scale sweep. AllreduceNs,
// SamplesortNs and HotspotStalls are simulated-time values and fully
// deterministic; BytesPerNode, ConstructMs and EventsPerSec are host-side
// measurements (only BytesPerNode is stable enough to gate in CI).
type ScaleResult struct {
	Nodes        int     `json:"nodes"`
	Levels       int     `json:"levels"` // fat-tree switch levels
	Links        int     `json:"links"`  // directed links incl. inject/eject
	BytesPerNode int64   `json:"bytes_per_node"`
	HeapBytes    int64   `json:"heap_bytes"`     // live heap of one idle machine
	ConstructMs  float64 `json:"construct_ms"`   // informational, not gated
	EventsPerSec float64 `json:"events_per_sec"` // informational, not gated

	AllreduceNs   int64             `json:"allreduce_ns"`
	SamplesortNs  int64             `json:"samplesort_ns"` // 0 = skipped (see SamplesortMaxNodes)
	HotspotStalls []LevelStallsJSON `json:"hotspot_level_stalls"`
}

// RunScale executes the sweep sequentially — footprint measurement reads
// global heap statistics, so cells must not overlap.
func RunScale(o ScaleOpts) []ScaleResult {
	o.fill()
	out := make([]ScaleResult, 0, len(o.NodeCounts))
	for _, n := range o.NodeCounts {
		out = append(out, scaleOne(n, o))
	}
	return out
}

func scaleOne(n int, o ScaleOpts) ScaleResult {
	r := ScaleResult{Nodes: n}
	r.HeapBytes, r.ConstructMs, r.Levels, r.Links = measureFootprint(n)
	r.BytesPerNode = r.HeapBytes / int64(n)

	lat, eps := allreduceRun(n)
	r.AllreduceNs = int64(lat)
	r.EventsPerSec = eps
	if n <= o.SamplesortMaxNodes {
		r.SamplesortNs = int64(samplesortTime(n, o.SamplesortKeys))
	}
	for _, ls := range hotspotSaturation(n, o.HotspotPackets) {
		r.HotspotStalls = append(r.HotspotStalls, LevelStallsJSON(ls))
	}
	return r
}

// measureFootprint builds one full machine (firmware services and all) and
// reports the live heap it retains once construction garbage is collected,
// plus the wall-clock construction time. Heap deltas are global state, so
// callers must not run concurrent measurements.
func measureFootprint(n int) (heapBytes int64, constructMs float64, levels, links int) {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	//lint:allow nowalltime host-side construction-cost measurement, never feeds sim state
	start := time.Now()
	m := core.NewMachineConfig(cluster.DefaultConfig(n))
	//lint:allow nowalltime host-side construction-cost measurement, never feeds sim state
	constructMs = float64(time.Since(start).Nanoseconds()) / 1e6
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	heapBytes = int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if heapBytes < 0 {
		heapBytes = 0
	}
	if ft, ok := m.Fabric.(*arctic.FatTree); ok {
		levels, links = ft.Levels(), ft.NumLinks()
	}
	runtime.KeepAlive(m)
	return heapBytes, constructMs, levels, links
}

// allreduceRun runs one 8-byte MPI allreduce across all n ranks and returns
// the simulated completion time of the last rank plus the host events/sec
// the engine sustained while running it.
func allreduceRun(n int) (sim.Time, float64) {
	m := core.NewMachine(n)
	var last sim.Time
	for r := 0; r < n; r++ {
		c := mpi.World(m, r)
		m.Go(r, "rank", func(p *sim.Proc, _ *core.API) {
			c.Allreduce(p, mpi.Sum, []float64{float64(c.Rank())})
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	//lint:allow nowalltime host-side throughput measurement, never feeds sim state
	start := time.Now()
	m.Run()
	//lint:allow nowalltime host-side throughput measurement, never feeds sim state
	wall := time.Since(start).Seconds()
	var eps float64
	if wall > 0 {
		eps = float64(m.Eng.Executed()) / wall
	}
	return last, eps
}

// samplesortTime runs the example samplesort workload (local sort, sample
// gather, splitter broadcast, all-to-all bucket exchange, final sort,
// barrier) at n ranks with keysPerRank keys each, and returns the simulated
// time of the last rank's completion. Keys come from a per-rank SplitMix64
// stream, so the run is a pure function of (n, keysPerRank).
func samplesortTime(n, keysPerRank int) sim.Time {
	m := core.NewMachine(n)
	var last sim.Time
	for r := 0; r < n; r++ {
		r := r
		c := mpi.World(m, r)
		m.Go(r, "sort", func(p *sim.Proc, a *core.API) {
			keys := rankKeys(r, keysPerRank)
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			a.Compute(p, sim.Time(len(keys))*50)

			samples := make([]uint32, 0, n-1)
			for i := 1; i < n; i++ {
				samples = append(samples, keys[i*len(keys)/n])
			}
			gathered := c.Gather(p, 0, encodeU32(samples))
			var splitters []uint32
			if r == 0 {
				var pool []uint32
				for _, g := range gathered {
					pool = append(pool, decodeU32(g)...)
				}
				sort.Slice(pool, func(i, j int) bool { return pool[i] < pool[j] })
				for i := 1; i < n; i++ {
					splitters = append(splitters, pool[i*len(pool)/n])
				}
			}
			splitters = decodeU32(c.Bcast(p, 0, encodeU32(splitters)))

			buckets := make([][]uint32, n)
			for _, k := range keys {
				b := sort.Search(len(splitters), func(i int) bool { return k < splitters[i] })
				buckets[b] = append(buckets[b], k)
			}
			parts := make([][]byte, n)
			for i := range parts {
				parts[i] = encodeU32(buckets[i])
			}
			recv := c.Alltoall(p, parts)
			var mine []uint32
			for _, part := range recv {
				mine = append(mine, decodeU32(part)...)
			}
			sort.Slice(mine, func(i, j int) bool { return mine[i] < mine[j] })
			a.Compute(p, sim.Time(len(mine))*50)
			c.Barrier(p)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	m.Run()
	return last
}

// rankKeys derives keysPerRank pseudo-random keys for rank r from a
// SplitMix64 stream seeded by the rank — deterministic and rank-decorrelated.
func rankKeys(r, keysPerRank int) []uint32 {
	state := uint64(r)*0x9E3779B97F4A7C15 + 0x1234567
	next := func() uint64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	keys := make([]uint32, keysPerRank)
	for i := range keys {
		keys[i] = uint32(next() % 1_000_000)
	}
	return keys
}

func encodeU32(keys []uint32) []byte {
	b := make([]byte, 4*len(keys))
	for i, k := range keys {
		binary.BigEndian.PutUint32(b[i*4:], k)
	}
	return b
}

func decodeU32(b []byte) []uint32 {
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.BigEndian.Uint32(b[i*4:])
	}
	return out
}

// hotspotSaturation drives an all-to-one hotspot on a bare fat tree (every
// other node sends perSource 96-byte packets to node 0 at t=0) and returns
// the per-level credit-stall aggregation once the fabric drains. On a deep
// tree the congestion gradient is visible level by level: the down links
// converging on node 0 fill first, then backpressure climbs through the
// ascent levels toward the injectors — the tree-saturation behaviour the
// paper warns the Hold policy produces.
func hotspotSaturation(n, perSource int) []arctic.LevelStalls {
	eng := sim.NewEngine()
	f := arctic.NewFatTree(eng, n, arctic.DefaultConfig())
	for i := 0; i < n; i++ {
		f.Attach(i, arctic.EndpointFunc(func(*arctic.Packet) {}))
	}
	for src := 1; src < n; src++ {
		src := src
		for k := 0; k < perSource; k++ {
			eng.Schedule(0, func() {
				f.Inject(&arctic.Packet{Src: src, Dst: 0, Priority: arctic.Low, Size: 96})
			})
		}
	}
	eng.Run()
	return f.StallsByLevel()
}

// ScaleTable renders the deterministic simulated-time columns of the sweep;
// identical inputs produce identical bytes on any host.
func ScaleTable(results []ScaleResult) *stats.Table {
	t := &stats.Table{
		Title: "scale sweep — simulated behaviour by machine size (deterministic)",
		Columns: []string{"nodes", "levels", "links", "allreduce (us)",
			"samplesort (us)", "hotspot stalls", "stalled (us)"},
	}
	for _, r := range results {
		ss := "skipped"
		if r.SamplesortNs > 0 {
			ss = fmtUs(sim.Time(r.SamplesortNs))
		}
		var stalls, stalledNs uint64
		for _, ls := range r.HotspotStalls {
			stalls += ls.Stalls
			stalledNs += ls.StalledNs
		}
		t.AddRow(fmt.Sprint(r.Nodes), fmt.Sprint(r.Levels), fmt.Sprint(r.Links),
			fmtUs(sim.Time(r.AllreduceNs)), ss,
			fmt.Sprint(stalls), fmtUs(sim.Time(stalledNs)))
	}
	return t
}

// ScaleFootprintTable renders the host-side columns — per-node heap bytes,
// construction wall-clock, and engine throughput. Informational except for
// bytes/node, which DiffScale gates.
func ScaleFootprintTable(results []ScaleResult) *stats.Table {
	t := &stats.Table{
		Title: "scale sweep — host-side footprint and speed (bytes/node gated in CI)",
		Columns: []string{"nodes", "bytes/node", "total heap (MB)",
			"construct (ms)", "events/sec"},
	}
	for _, r := range results {
		t.AddRow(fmt.Sprint(r.Nodes), fmt.Sprint(r.BytesPerNode),
			fmt.Sprintf("%.1f", float64(r.HeapBytes)/(1<<20)),
			fmt.Sprintf("%.1f", r.ConstructMs),
			fmt.Sprintf("%.0f", r.EventsPerSec))
	}
	return t
}

// SaturationTable renders one result's per-level hotspot stall gradient in
// hop order (inject, ascent levels, descent levels, eject).
func SaturationTable(r ScaleResult) *stats.Table {
	t := &stats.Table{
		Title: fmt.Sprintf("hotspot saturation by tree level — %d nodes, all-to-one (deterministic)",
			r.Nodes),
		Columns: []string{"level", "links", "stalls", "stalled (us)"},
	}
	for _, ls := range r.HotspotStalls {
		t.AddRow(ls.Level, fmt.Sprint(ls.Links), fmt.Sprint(ls.Stalls),
			fmtUs(sim.Time(ls.StalledNs)))
	}
	return t
}

// scaleDoc is the on-disk shape of BENCH_scale.json.
type scaleDoc struct {
	Schema  string        `json:"schema"`
	Results []ScaleResult `json:"results"`
}

// WriteScale renders results as the BENCH_scale.json document.
func WriteScale(w io.Writer, results []ScaleResult) error {
	out, err := json.MarshalIndent(scaleDoc{Schema: ScaleSchema, Results: results}, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(out, '\n'))
	return err
}

// DiffScale compares fresh results against the committed baseline document
// and reports every node count to w. Returns false — the CI failure signal —
// when any bytes/node figure exceeds its baseline by more than 10%. The
// simulated-time and wall-clock columns are reported but never gated here
// (allreduce latency shifts are caught by their own tests; wall-clock is
// host noise).
func DiffScale(baseline []byte, results []ScaleResult, w io.Writer) bool {
	var base scaleDoc
	if err := json.Unmarshal(baseline, &base); err != nil {
		fmt.Fprintf(w, "scale-diff: bad baseline: %v\n", err)
		return false
	}
	byNodes := make(map[int]ScaleResult, len(results))
	for _, r := range results {
		byNodes[r.Nodes] = r
	}
	ok := true
	for _, b := range base.Results {
		now, found := byNodes[b.Nodes]
		if !found {
			fmt.Fprintf(w, "scale-diff: %5d nodes MISSING (baseline %d bytes/node)\n", b.Nodes, b.BytesPerNode)
			ok = false
			continue
		}
		pct := 0.0
		if b.BytesPerNode > 0 {
			pct = 100 * float64(now.BytesPerNode-b.BytesPerNode) / float64(b.BytesPerNode)
		}
		verdict := "ok"
		if now.BytesPerNode > b.BytesPerNode+b.BytesPerNode/10 {
			verdict = "REGRESSED"
			ok = false
		}
		fmt.Fprintf(w, "scale-diff: %5d nodes %8d -> %8d bytes/node (%+.1f%%) %s (allreduce %dns -> %dns)\n",
			b.Nodes, b.BytesPerNode, now.BytesPerNode, pct, verdict,
			b.AllreduceNs, now.AllreduceNs)
	}
	if !ok {
		fmt.Fprintln(w, "scale-diff: FAIL — per-node footprint regressed >10% (refresh BENCH_scale.json via make bench-scale-baseline if intentional)")
	}
	return ok
}
