package bench

import "testing"

// TestBasicMsgChainAllocs pins the allocation budget of the Basic message
// send/recv chain — the path the //voyager:noalloc annotations and the
// noalloc analyzer guard. The whole-node benchmark pushes one delivered
// message per op through aP compose → CTRL launch → fabric → CTRL landing →
// aP consume; at the growth seed it cost 112 allocs/op, and the pooled
// records (bus ops, cache transactions, ctrl launch/land state, core slot
// and word buffers) bring it down to the low teens. The budget below leaves
// a little headroom over the measured value so incidental runtime jitter
// does not flake, while still catching any closure or buffer that slips
// back onto the path.
func TestBasicMsgChainAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed; skipped in -short")
	}
	r := testing.Benchmark(benchNodeBasicMsg)
	const maxAllocs = 20  // measured: 14 allocs/op
	const maxBytes = 1024 // measured: 336 B/op
	if got := r.AllocsPerOp(); got > maxAllocs {
		t.Errorf("node/basic-msg allocates %d/op, budget is %d (seed was 112)", got, maxAllocs)
	}
	if got := r.AllocedBytesPerOp(); got > maxBytes {
		t.Errorf("node/basic-msg allocates %d B/op, budget is %d (seed was 5617)", got, maxBytes)
	}
	t.Logf("node/basic-msg: %d allocs/op, %d B/op over %d ops",
		r.AllocsPerOp(), r.AllocedBytesPerOp(), r.N)
}
