package bench

import (
	"fmt"

	"startvoyager/internal/core"
	"startvoyager/internal/mpi"
	"startvoyager/internal/sim"
	"startvoyager/internal/stats"
)

// ExtEQueueCaching measures the receive-queue-caching design: one-way
// message latency to a hardware-resident logical queue versus a
// non-resident one that CTRL diverts to the miss queue and firmware writes
// to its DRAM home — the cost of "selectively caching queues".
func ExtEQueueCaching() *stats.Table {
	t := &stats.Table{
		Title:   "Ext E — receive queue caching: resident vs non-resident delivery",
		Columns: []string{"destination queue", "one-way latency (us)", "sP busy (us)"},
	}

	// Resident: the standard Basic queue.
	m := core.NewMachine(2)
	var lat sim.Time
	var start sim.Time
	m.Go(0, "s", func(p *sim.Proc, a *core.API) {
		start = p.Now()
		a.SendBasic(p, 1, []byte("r"))
	})
	m.Go(1, "r", func(p *sim.Proc, a *core.API) {
		a.RecvBasic(p)
		lat = p.Now() - start
	})
	m.Run()
	t.AddRow("resident (hardware queue)", fmtUs(lat), fmtUs(m.Nodes[1].FW.BusyTime()))

	// Non-resident: diverted to the miss queue, serviced into DRAM.
	m2 := core.NewMachine(2)
	m2.API(0).MapVirtualDest(core.TransUser, 1, 4321)
	var lat2 sim.Time
	m2.Go(0, "s", func(p *sim.Proc, a *core.API) {
		start = p.Now()
		a.SendVirtual(p, core.TransUser, []byte("n"))
	})
	m2.Go(1, "r", func(p *sim.Proc, a *core.API) {
		a.RecvOverflow(p)
		lat2 = p.Now() - start
	})
	m2.Run()
	t.AddRow("non-resident (DRAM via miss queue)", fmtUs(lat2), fmtUs(m2.Nodes[1].FW.BusyTime()))
	return t
}

// ExtFCollectives measures MPI collective completion time versus machine
// size — the kind of whole-system workload study the platform targets.
func ExtFCollectives(nodeCounts []int) *stats.Table {
	t := &stats.Table{
		Title:   "Ext F — MPI collectives on the fat tree (completion, us)",
		Columns: []string{"nodes", "barrier", "bcast 1KB", "allreduce 8B", "alltoall 64B"},
	}
	for _, n := range nodeCounts {
		bar := collectiveTime(n, func(p *sim.Proc, c *mpi.Comm) { c.Barrier(p) })
		bc := collectiveTime(n, func(p *sim.Proc, c *mpi.Comm) {
			var data []byte
			if c.Rank() == 0 {
				data = make([]byte, 1024)
			}
			c.Bcast(p, 0, data)
		})
		ar := collectiveTime(n, func(p *sim.Proc, c *mpi.Comm) {
			c.Allreduce(p, mpi.Sum, []float64{1})
		})
		aa := collectiveTime(n, func(p *sim.Proc, c *mpi.Comm) {
			parts := make([][]byte, c.Size())
			for i := range parts {
				parts[i] = make([]byte, 64)
			}
			c.Alltoall(p, parts)
		})
		t.AddRow(fmt.Sprint(n), fmtUs(bar), fmtUs(bc), fmtUs(ar), fmtUs(aa))
	}
	return t
}

// collectiveTime runs body on every rank and returns the time from start to
// the last rank's completion.
func collectiveTime(n int, body func(p *sim.Proc, c *mpi.Comm)) sim.Time {
	m := core.NewMachine(n)
	var last sim.Time
	for r := 0; r < n; r++ {
		c := mpi.World(m, r)
		m.Go(r, "rank", func(p *sim.Proc, _ *core.API) {
			body(p, c)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	m.Run()
	return last
}
