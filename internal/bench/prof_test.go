package bench

import (
	"bytes"
	"testing"

	"startvoyager/internal/cluster"
	"startvoyager/internal/core"
	"startvoyager/internal/fault"
	"startvoyager/internal/prof"
	"startvoyager/internal/sim"
)

// TestProfilerInert is the zero-timing-impact gate: the canonical
// observability run with the simulated-time profiler attached must export
// byte-identical trace and metrics artifacts, at the same simulated end
// time, as the unprofiled run. The profiler schedules no events and
// consumes no sequence, span, or message ids, so any divergence here means
// an accounting hook leaked into modeled state.
func TestProfilerInert(t *testing.T) {
	render := func(profiler *prof.Profiler) ([]byte, []byte, sim.Time) {
		obs := ObservedRunProf(1<<18, nil, profiler)
		var tr, me bytes.Buffer
		if err := obs.Trace.WritePerfetto(&tr); err != nil {
			t.Fatalf("WritePerfetto: %v", err)
		}
		if err := obs.Metrics.WriteJSON(&me, obs.SimTime); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return tr.Bytes(), me.Bytes(), obs.SimTime
	}

	tPlain, mPlain, simPlain := render(nil)
	profiler := prof.New()
	tProf, mProf, simProf := render(profiler)

	if simPlain != simProf {
		t.Errorf("profiled run ended at %v, unprofiled at %v", simProf, simPlain)
	}
	if !bytes.Equal(tPlain, tProf) {
		t.Error("attaching the profiler changed the trace export")
	}
	if !bytes.Equal(mPlain, mProf) {
		t.Error("attaching the profiler changed the metrics export")
	}
	if !profiler.Finished() {
		t.Fatal("ObservedRunProf did not finish the profiler")
	}
	if doc := profiler.Doc(nil); doc.TotalNs == 0 {
		t.Error("profiled run accounted no proc time")
	}
}

// TestProfilerInertUnderFaults repeats the inertness check on a faulted
// reliable run — drops change scheduling-sensitive retransmission timing,
// so this would catch a profiler hook that perturbs event order only on
// recovery paths.
func TestProfilerInertUnderFaults(t *testing.T) {
	run := func(profiler *prof.Profiler) ([]byte, sim.Time) {
		plan, err := fault.ParsePlan("seed=7,drop=0.05")
		if err != nil {
			t.Fatalf("ParsePlan: %v", err)
		}
		cfg := cluster.DefaultConfig(3)
		cfg.Faults = plan
		if profiler != nil {
			cfg.Profiler = profiler
		}
		m := core.NewMachineConfig(cfg)
		const msgs = 20
		received := 0
		sendersDone := 0
		m.Go(0, "sink", func(p *sim.Proc, a *core.API) {
			for {
				if _, _, err := a.RecvReliableTimeout(p, m.RelBound()); err != nil {
					if sendersDone == 2 {
						return
					}
					continue
				}
				received++
			}
		})
		for i := 1; i < 3; i++ {
			m.Go(i, "src", func(p *sim.Proc, a *core.API) {
				for k := 0; k < msgs; k++ {
					if err := a.SendReliable(p, 0, []byte{byte(k)}); err != nil {
						t.Errorf("SendReliable: %v", err)
					}
				}
				sendersDone++
			})
		}
		m.Run()
		if received != 2*msgs {
			t.Fatalf("delivered %d of %d", received, 2*msgs)
		}
		if profiler != nil {
			profiler.Finish(m.Eng.Now())
		}
		var me bytes.Buffer
		if err := m.Metrics().WriteJSON(&me, m.Eng.Now()); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return me.Bytes(), m.Eng.Now()
	}

	mPlain, simPlain := run(nil)
	mProf, simProf := run(prof.New())
	if simPlain != simProf {
		t.Errorf("profiled faulted run ended at %v, unprofiled at %v", simProf, simPlain)
	}
	if !bytes.Equal(mPlain, mProf) {
		t.Error("attaching the profiler changed the faulted run's metrics export")
	}
}

// TestProfilerDeterministic: two identically configured profiled runs must
// export byte-identical profiles in all three formats.
func TestProfilerDeterministic(t *testing.T) {
	render := func() ([]byte, []byte, []byte) {
		profiler := prof.New()
		ObservedRunProf(1<<18, nil, profiler)
		doc := profiler.Doc(nil)
		var js, folded, pb bytes.Buffer
		if err := doc.WriteJSON(&js); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		if err := doc.WriteFolded(&folded); err != nil {
			t.Fatalf("WriteFolded: %v", err)
		}
		if err := doc.WritePprof(&pb); err != nil {
			t.Fatalf("WritePprof: %v", err)
		}
		return js.Bytes(), folded.Bytes(), pb.Bytes()
	}
	j1, f1, p1 := render()
	j2, f2, p2 := render()
	if !bytes.Equal(j1, j2) {
		t.Error("profile JSON differs across identical runs")
	}
	if !bytes.Equal(f1, f2) {
		t.Error("folded stacks differ across identical runs")
	}
	if !bytes.Equal(p1, p2) {
		t.Error("pprof protobuf differs across identical runs")
	}
}

// TestProfiledRunInvariants checks the accounting laws on a real machine
// run: every proc's buckets telescope exactly to its lifetime, and the
// tree's total self time equals the summed proc time (so all three export
// formats, which derive from the same tree, agree on the total).
func TestProfiledRunInvariants(t *testing.T) {
	profiler := prof.New()
	obs := ObservedRunProf(1<<18, nil, profiler)
	doc := profiler.Doc(nil)

	if doc.SimNs != int64(obs.SimTime) {
		t.Errorf("doc.SimNs = %d, run ended at %d", doc.SimNs, int64(obs.SimTime))
	}
	var lifetimes int64
	for _, p := range doc.Procs {
		life := p.EndNs - p.SpawnNs
		if got := p.BusyNs + p.CondNs + p.QueueNs; got != life {
			t.Errorf("proc %s: buckets sum to %d, lifetime is %d", p.Name, got, life)
		}
		lifetimes += life
	}
	if lifetimes != doc.TotalNs {
		t.Errorf("doc.TotalNs = %d, proc lifetimes sum to %d", doc.TotalNs, lifetimes)
	}
	var treeSelf int64
	var walk func(ns []*prof.TreeNode)
	walk = func(ns []*prof.TreeNode) {
		for _, n := range ns {
			treeSelf += n.SelfNs()
			walk(n.Children)
		}
	}
	walk(doc.Tree)
	if treeSelf != doc.TotalNs {
		t.Errorf("tree self time sums to %d, proc time is %d", treeSelf, doc.TotalNs)
	}
}

// benchProfiledNodeBasicMsg is benchNodeBasicMsg with the profiler
// attached: the steady-state accounting cost of the hot hooks (ProcResume,
// ProcBlock, FramePush/Pop, interval close) on the Basic message chain.
func benchProfiledNodeBasicMsg(b *testing.B) {
	cfg := cluster.DefaultConfig(2)
	profiler := prof.New()
	cfg.Profiler = profiler
	m := core.NewMachineConfig(cfg)
	payload := make([]byte, 32)
	delivered := 0
	m.Go(0, "src", func(p *sim.Proc, a *core.API) {
		for k := 0; k < b.N; k++ {
			a.SendBasic(p, 1, payload)
		}
	})
	m.Go(1, "dst", func(p *sim.Proc, a *core.API) {
		for delivered < b.N {
			if _, _, ok := a.TryRecvBasic(p); ok {
				delivered++
			}
		}
	})
	b.ResetTimer()
	m.Run()
	b.StopTimer()
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}

// TestProfiledBasicMsgChainAllocs pins the allocation budget of the Basic
// message chain with the profiler attached. The profiler's steady state
// hits interned tree nodes and recycled stacks, so the budget is the same
// as the unprofiled chain's (TestBasicMsgChainAllocs) plus nothing — any
// regression here means a hook started allocating per event.
func TestProfiledBasicMsgChainAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed; skipped in -short")
	}
	r := testing.Benchmark(benchProfiledNodeBasicMsg)
	const maxAllocs = 20  // same budget as the unprofiled chain
	const maxBytes = 1024 // same budget as the unprofiled chain
	if got := r.AllocsPerOp(); got > maxAllocs {
		t.Errorf("profiled node/basic-msg allocates %d/op, budget is %d", got, maxAllocs)
	}
	if got := r.AllocedBytesPerOp(); got > maxBytes {
		t.Errorf("profiled node/basic-msg allocates %d B/op, budget is %d", got, maxBytes)
	}
	t.Logf("profiled node/basic-msg: %d allocs/op, %d B/op over %d ops",
		r.AllocsPerOp(), r.AllocedBytesPerOp(), r.N)
}
