package bench

import (
	"fmt"

	"startvoyager/internal/arctic"
	"startvoyager/internal/core"
	"startvoyager/internal/niu/ctrl"
	"startvoyager/internal/node"
	"startvoyager/internal/sim"
	"startvoyager/internal/stats"
)

// ExtIMultitasking is the paper's multitasking argument made concrete: a
// latency-critical job (express pings) shares the machine with a bulk job
// (Basic traffic) whose receiver is slow, so the bulk receive queue fills
// and — under the Hold policy — stalls its network lane. Without QoS the
// express messages ride the same Low lane and wait behind the stalled bulk
// backlog; with QoS (high-priority lane + better transmit arbitration
// class) they bypass it. This is precisely why the paper requires "at
// least two priority levels" of the network and multiple protected queues
// of the NIU.
func ExtIMultitasking() *stats.Table {
	t := &stats.Table{
		Title:   "Ext I — multitasking QoS: express ping latency under bulk load (us)",
		Columns: []string{"scenario", "p50", "p99", "bulk MB/s"},
	}
	for _, sc := range []struct {
		name string
		qos  bool
		bulk bool
	}{
		{"idle machine (baseline)", false, false},
		{"bulk load, no QoS", false, true},
		{"bulk load, QoS (priority class + high lane)", true, true},
	} {
		p50, p99, bw := multitaskRun(sc.qos, sc.bulk)
		t.AddRow(sc.name, fmtUs(p50), fmtUs(p99), fmt.Sprintf("%.1f", bw))
	}
	return t
}

func multitaskRun(qos, bulk bool) (p50, p99 sim.Time, bulkBW float64) {
	const pings = 40
	const bulkMsgs = 600
	m := core.NewMachine(2)
	if qos {
		// Express traffic to node 1 rides the high-priority network lane...
		m.Nodes[0].Ctrl.WriteTransEntry(node.TransExpress+1, ctrl.TransEntry{
			PhysNode: 1, LogicalQ: node.LqExpress, Priority: arctic.High, Valid: true})
		// ...and the bulk queue is demoted to a worse arbitration class.
		m.Nodes[0].Ctrl.SetTxPriority(node.TxBasic, 5)
	}

	sendAt := make([]sim.Time, pings)
	recvAt := make([]sim.Time, pings)
	var bulkStart, bulkEnd sim.Time
	payload := make([]byte, 80)

	if bulk {
		m.Go(0, "bulk", func(p *sim.Proc, a *core.API) {
			bulkStart = p.Now()
			for i := 0; i < bulkMsgs; i++ {
				a.SendBasic(p, 1, payload)
			}
		})
	}
	m.Go(0, "ping", func(p *sim.Proc, a *core.API) {
		for i := 0; i < pings; i++ {
			sendAt[i] = p.Now()
			a.SendExpress(p, 1, []byte{byte(i), 0, 0, 0, 0})
			a.Compute(p, 10*sim.Microsecond) // one ping every 10 us
		}
	})
	gotBulk, gotPing := 0, 0
	m.Go(1, "sink", func(p *sim.Proc, a *core.API) {
		bulkNeed := 0
		if bulk {
			bulkNeed = bulkMsgs
		}
		lastBulkPoll := sim.Time(0)
		for gotPing < pings || gotBulk < bulkNeed {
			if _, pl, ok := a.TryRecvExpress(p); ok {
				recvAt[pl[0]] = p.Now()
				gotPing++
				continue
			}
			// The bulk job's receiver is slow: it accepts one Basic message
			// every 20 us while pings are in flight (afterwards it drains
			// freely). The receive queue fills and Hold backpressure stalls
			// the Low network lane.
			if gotPing < pings && p.Now()-lastBulkPoll < 20_000 {
				continue
			}
			if _, _, ok := a.TryRecvBasic(p); ok {
				lastBulkPoll = p.Now()
				gotBulk++
				if gotBulk == bulkNeed {
					bulkEnd = p.Now()
				}
			}
		}
	})
	m.Run()

	var s stats.Samples
	for i := 0; i < pings; i++ {
		if recvAt[i] > 0 {
			s.Add(float64(recvAt[i] - sendAt[i]))
		}
	}
	if bulk && bulkEnd > bulkStart {
		bulkBW = stats.MBps(bulkMsgs*len(payload), bulkEnd-bulkStart)
	}
	return sim.Time(s.Percentile(50)), sim.Time(s.Percentile(99)), bulkBW
}
