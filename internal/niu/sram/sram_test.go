package sram

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestReadWrite(t *testing.T) {
	s := New("aSRAM", 1024)
	if s.Name() != "aSRAM" || s.Size() != 1024 {
		t.Fatal("metadata wrong")
	}
	s.Write(100, []byte{1, 2, 3})
	buf := make([]byte, 3)
	s.Read(100, buf)
	if !bytes.Equal(buf, []byte{1, 2, 3}) {
		t.Fatalf("got %v", buf)
	}
	if s.ByteAt(101) != 2 {
		t.Fatal("ReadByte wrong")
	}
	sl := s.Slice(100, 3)
	sl[0] = 9
	s.Read(100, buf)
	if buf[0] != 9 {
		t.Fatal("Slice is not a live view")
	}
}

func TestBoundsPanics(t *testing.T) {
	s := New("x", 64)
	cases := []func(){
		func() { s.Read(60, make([]byte, 8)) },
		func() { s.Write(64, []byte{1}) },
		func() { s.Slice(0, 65) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestCls(t *testing.T) {
	c := NewCls(8)
	if c.Lines() != 8 {
		t.Fatal("lines wrong")
	}
	if c.Get(0) != CLInvalid {
		t.Fatal("initial state not invalid")
	}
	c.Set(3, CLReadWrite)
	if c.Get(3) != CLReadWrite {
		t.Fatal("set/get failed")
	}
	c.SetRange(2, 6, CLReadOnly)
	for i := 2; i < 6; i++ {
		if c.Get(i) != CLReadOnly {
			t.Fatalf("line %d = %v", i, c.Get(i))
		}
	}
	if c.Get(6) != CLInvalid {
		t.Fatal("SetRange overshot")
	}
}

func TestClsPanics(t *testing.T) {
	c := NewCls(4)
	for i, fn := range []func(){
		func() { c.Get(-1) },
		func() { c.Set(4, CLInvalid) },
		func() { c.Set(0, LineState(16)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestLineStateString(t *testing.T) {
	if CLInvalid.String() != "inv" || CLReadWrite.String() != "rw" ||
		CLPending.String() != "pend" || CLReadOnly.String() != "ro" {
		t.Fatal("names wrong")
	}
	if LineState(9).String() != "state9" {
		t.Fatal("custom state name wrong")
	}
}

// Property: writes land exactly where addressed (no smearing).
func TestWriteIsolationProperty(t *testing.T) {
	f := func(off uint16, val byte) bool {
		s := New("p", 1<<16)
		s.Write(uint32(off), []byte{val})
		for i := uint32(0); i < 1<<16; i++ {
			want := byte(0)
			if i == uint32(off) {
				want = val
			}
			if s.ByteAt(i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
