// Package sram models the NIU's buffer memories: the two dual-ported banks
// (aSRAM on the aP bus side, sSRAM on the sP side, both also ported to the
// IBus) and the single-ported clsSRAM that holds cache-line state bits for
// S-COMA memory.
//
// Port contention is not modeled here: the IBus (a sim.Resource owned by
// CTRL) is the serialization point for all NIU-internal data movement, and
// the 60X buses serialize processor-side accesses, matching the dual-ported
// parts' ability to serve both sides concurrently.
package sram

import "fmt"

// SRAM is a byte-addressed buffer memory. The backing array grows on demand
// (doubling, up to the configured capacity): a bank whose software only uses
// the queue region at the bottom costs a few KB of host memory rather than
// the full 128 KB, which is what makes thousand-node machines cheap. Bytes
// beyond the materialized prefix read as zeros, identical to a dense
// zero-initialized array.
type SRAM struct {
	name string
	size int
	data []byte // materialized prefix; len(data) <= size
}

// New allocates an SRAM of size bytes.
func New(name string, size int) *SRAM {
	return &SRAM{name: name, size: size}
}

// Name returns the bank's name ("aSRAM", "sSRAM").
func (s *SRAM) Name() string { return s.name }

// Size returns the bank capacity in bytes.
func (s *SRAM) Size() int { return s.size }

// ResidentBytes returns the host bytes materialized so far.
func (s *SRAM) ResidentBytes() int { return len(s.data) }

// grow extends the materialized prefix to cover at least end bytes. Growth
// reallocates, so previously returned Slice views go stale — which the Slice
// contract (no retention across foreign writes) already forbids relying on.
func (s *SRAM) grow(end uint32) {
	if int(end) <= len(s.data) {
		return
	}
	n := 256
	for n < int(end) {
		n <<= 1
	}
	if n > s.size {
		n = s.size
	}
	nd := make([]byte, n)
	copy(nd, s.data)
	s.data = nd
}

// Read copies len(buf) bytes at off into buf.
func (s *SRAM) Read(off uint32, buf []byte) {
	s.check(off, len(buf))
	var n int
	if int(off) < len(s.data) {
		n = copy(buf, s.data[off:])
	}
	for i := n; i < len(buf); i++ {
		buf[i] = 0
	}
}

// Write copies data into the bank at off.
func (s *SRAM) Write(off uint32, data []byte) {
	s.check(off, len(data))
	s.grow(off + uint32(len(data)))
	copy(s.data[off:], data)
}

// ByteAt returns the byte at off.
func (s *SRAM) ByteAt(off uint32) byte {
	s.check(off, 1)
	if int(off) >= len(s.data) {
		return 0
	}
	return s.data[off]
}

// Slice returns a view of [off, off+n) for zero-copy internal moves. Callers
// must not retain it across writes they do not control.
func (s *SRAM) Slice(off uint32, n int) []byte {
	s.check(off, n)
	s.grow(off + uint32(n))
	return s.data[off : off+uint32(n)]
}

func (s *SRAM) check(off uint32, n int) {
	if uint64(off)+uint64(n) > uint64(s.size) {
		panic(fmt.Sprintf("sram: %s access %#x+%d beyond size %#x", s.name, off, n, s.size))
	}
}

// LineState is a 4-bit S-COMA cache-line state stored in clsSRAM. The NIU
// interprets states through the aBIU's action table, so the encoding itself
// carries no fixed meaning to the hardware — these named values are the
// convention used by the default S-COMA firmware protocol.
type LineState uint8

// Default S-COMA state encoding.
const (
	// CLInvalid: line not present locally; reads and writes must stall.
	CLInvalid LineState = 0
	// CLPending: a fill has been requested; stall without re-notifying sP.
	CLPending LineState = 1
	// CLReadOnly: local copy valid for reads; writes must upgrade.
	CLReadOnly LineState = 2
	// CLReadWrite: local copy exclusive; all accesses proceed.
	CLReadWrite LineState = 3
)

// String names the default states.
func (s LineState) String() string {
	switch s {
	case CLInvalid:
		return "inv"
	case CLPending:
		return "pend"
	case CLReadOnly:
		return "ro"
	case CLReadWrite:
		return "rw"
	default:
		return fmt.Sprintf("state%d", uint8(s))
	}
}

// Cls is the clsSRAM: one 4-bit state per 32-byte cache line of the S-COMA
// region. It is read combinationally by the aBIU on every aP bus operation
// and written under sP (or, in approach 5, block-unit) control. The state
// array materializes on the first Set: a node that never touches S-COMA pays
// nothing, and reads before then return CLInvalid — the zero value a dense
// array would hold anyway.
type Cls struct {
	lines  int
	states []LineState // nil until first Set
}

// NewCls sizes the state memory for the given number of cache lines.
func NewCls(lines int) *Cls {
	return &Cls{lines: lines}
}

// Lines returns the number of tracked lines.
func (c *Cls) Lines() int { return c.lines }

// ResidentBytes returns the host bytes materialized so far.
func (c *Cls) ResidentBytes() int { return len(c.states) }

// Get returns the state for line idx.
func (c *Cls) Get(idx int) LineState {
	c.check(idx)
	if c.states == nil {
		return CLInvalid
	}
	return c.states[idx]
}

// Set stores the state for line idx.
func (c *Cls) Set(idx int, st LineState) {
	c.check(idx)
	if st > 15 {
		panic(fmt.Sprintf("sram: clsSRAM state %d exceeds 4 bits", st))
	}
	if c.states == nil {
		if st == CLInvalid {
			return
		}
		c.states = make([]LineState, c.lines)
	}
	c.states[idx] = st
}

// SetRange stores st for lines [from, to).
func (c *Cls) SetRange(from, to int, st LineState) {
	for i := from; i < to; i++ {
		c.Set(i, st)
	}
}

func (c *Cls) check(idx int) {
	if idx < 0 || idx >= c.lines {
		panic(fmt.Sprintf("sram: clsSRAM line %d out of range %d", idx, c.lines))
	}
}
