package ctrl

import (
	"encoding/binary"
	"fmt"

	"startvoyager/internal/arctic"
	"startvoyager/internal/niu/txrx"
	"startvoyager/internal/sim"
)

// Transmit slot format (software composes this into the queue's SRAM slot):
//
//	bytes 0-1  destination (virtual; physical node when the raw flag is set)
//	byte  2    flags (see Slot* constants)
//	byte  3    inline payload length
//	bytes 4-6  TagOn SRAM offset (24-bit)     | raw: bytes 4-5 logical queue
//	byte  7    TagOn length in 16-byte units (0..5, i.e. up to 2.5 lines)
//	bytes 8+   inline payload; for command frames: addr(4) aux(2) count(2)
//	           then payload from byte 16
//
// Express queues use an 8-byte slot composed by the aBIU from a single
// uncached store: dest(2) len(1) payload(5).
const (
	SlotFlagTagOn    = 1 << 0 // append TagOn data from SRAM
	SlotFlagRaw      = 1 << 1 // bypass translation (dest is physical)
	SlotFlagHighPri  = 1 << 2 // raw messages: use the high-priority network lane
	SlotFlagCmd      = 1 << 3 // payload encodes a remote command frame
	SlotFlagTagASram = 1 << 4 // TagOn data lives in aSRAM (else sSRAM)
)

// ExpressSlotBytes is the express queue entry size.
const ExpressSlotBytes = 8

// ExpressPayload is the express message payload size (one five-byte word).
const ExpressPayload = 5

// kickTx starts the transmit arbiter if it is idle.
//
//voyager:noalloc
func (c *Ctrl) kickTx() {
	if c.txBusy {
		return
	}
	q := c.pickTx()
	if q < 0 {
		return
	}
	c.txBusy = true
	c.launchFrom(q)
}

// pickTx selects the next transmit queue: best (lowest) priority class wins;
// round-robin within the class.
//
//voyager:noalloc
func (c *Ctrl) pickTx() int {
	best, bestPri := -1, 0
	for i := 0; i < NumQueues; i++ {
		q := (c.txRR + 1 + i) % NumQueues
		tq := &c.tx[q]
		if tq.cfg.Buf == nil || !tq.cfg.Enabled || tq.shutdown || tq.parked ||
			tq.pending() == 0 {
			continue
		}
		if best < 0 || tq.cfg.Priority < bestPri {
			best, bestPri = q, tq.cfg.Priority
		}
	}
	return best
}

// launchFrom reads, translates and launches the head message of queue q,
// then re-arms the arbiter. The whole pipeline runs on the Ctrl's staged
// launch record (ln* fields) — txBusy serializes launches end to end, so the
// record is never restaged while a launch is in flight (a parked or violated
// launch abandons it; the head slot is re-read on relaunch).
//
//voyager:noalloc staged launch record; pipeline serialized by txBusy
func (c *Ctrl) launchFrom(q int) {
	tq := &c.tx[q]
	c.lnQ = q
	c.lnOff = SlotOffset(tq.cfg.Base, tq.cfg.EntryBytes, tq.cfg.Entries, tq.consumer)
	c.lnTag = c.txTag(q, tq.consumer)
	// Pull the slot across the IBus.
	c.ibusMove(tq.cfg.EntryBytes, c.lnReadFn)
}

// lnRead lands the head slot in the launch scratch and dispatches on the
// queue flavor.
//
//voyager:noalloc
func (c *Ctrl) lnRead() {
	tq := &c.tx[c.lnQ]
	if cap(c.lnSlot) < tq.cfg.EntryBytes {
		c.lnSlot = make([]byte, tq.cfg.EntryBytes) //voyager:alloc-ok(scratch grows once to the largest slot size)
	}
	slot := c.lnSlot[:tq.cfg.EntryBytes]
	tq.cfg.Buf.Read(c.lnOff, slot)
	if tq.cfg.Express {
		c.launchExpress(c.lnQ, slot, c.lnTag)
		return
	}
	c.launchBasic(c.lnQ, slot, c.lnTag)
}

//voyager:noalloc
func (c *Ctrl) launchExpress(q int, slot []byte, tag sim.MsgTag) {
	dest := binary.BigEndian.Uint16(slot[0:])
	n := int(slot[2])
	if n > ExpressPayload {
		n = ExpressPayload
	}
	pl := c.lnFrame.Payload
	c.lnFrame = txrx.Frame{Kind: txrx.Data, SrcNode: uint16(c.myNode), Trace: tag}
	c.lnFrame.Payload = append(pl[:0], slot[3:3+n]...)
	c.translateAndSend(q, dest, true, arctic.Low)
}

//voyager:noalloc
func (c *Ctrl) launchBasic(q int, slot []byte, tag sim.MsgTag) {
	tq := &c.tx[q]
	dest := binary.BigEndian.Uint16(slot[0:])
	flags := slot[2]
	n := int(slot[3])
	payloadMax := tq.cfg.EntryBytes - SlotHeaderBytes
	if flags&SlotFlagCmd != 0 {
		payloadMax -= 8
	}
	if n > payloadMax {
		c.violate(q)
		return
	}
	pl := c.lnFrame.Payload
	if flags&SlotFlagCmd != 0 {
		// Command frames reuse the TagOn field (bytes 4-5) for the op;
		// TagOn and command framing are mutually exclusive.
		c.lnFrame = txrx.Frame{
			Kind:    txrx.Cmd,
			SrcNode: uint16(c.myNode),
			Op:      txrx.CmdOp(binary.BigEndian.Uint16(slot[4:])),
			Addr:    binary.BigEndian.Uint32(slot[8:]),
			Aux:     binary.BigEndian.Uint16(slot[12:]),
			Count:   binary.BigEndian.Uint16(slot[14:]),
			Trace:   tag,
		}
		c.lnFrame.Payload = append(pl[:0], slot[16:16+n]...)
	} else {
		c.lnFrame = txrx.Frame{Kind: txrx.Data, SrcNode: uint16(c.myNode), Trace: tag}
		c.lnFrame.Payload = append(pl[:0], slot[8:8+n]...)
	}
	c.lnDest = dest
	c.lnFlags = flags
	c.lnRawLQ = binary.BigEndian.Uint16(slot[4:])

	if flags&SlotFlagTagOn != 0 {
		tagOff := uint32(slot[4])<<16 | uint32(slot[5])<<8 | uint32(slot[6])
		tagLen := int(slot[7]) * 16
		if tagLen > 0 {
			bank := c.sSRAM
			if flags&SlotFlagTagASram != 0 {
				bank = c.aSRAM
			}
			if len(c.lnFrame.Payload)+tagLen > txrx.MaxDataPayload || c.lnFrame.Kind == txrx.Cmd {
				c.violate(q)
				return
			}
			c.stats.TagOns++
			c.lnTagBank, c.lnTagOff, c.lnTagLen = bank, tagOff, tagLen
			// Pull the TagOn data across the IBus and append it.
			c.ibusMove(tagLen, c.lnTagOnFn)
			return
		}
	}
	c.lnFinish()
}

// lnTagOn appends the staged TagOn bytes once their IBus pull completes.
//
//voyager:noalloc payload append stays within MaxDataPayload capacity after warm-up
func (c *Ctrl) lnTagOn() {
	c.lnFrame.Payload = append(c.lnFrame.Payload, c.lnTagBank.Slice(c.lnTagOff, c.lnTagLen)...) //voyager:alloc-ok(payload capacity grows once to MaxDataPayload)
	c.lnFinish()
}

// lnFinish applies raw-message protection and routes the staged frame to
// translation or directly to the TxU.
//
//voyager:noalloc
func (c *Ctrl) lnFinish() {
	q := c.lnQ
	tq := &c.tx[q]
	flags := c.lnFlags
	translate := tq.cfg.Translate && flags&SlotFlagRaw == 0
	if flags&SlotFlagRaw != 0 && !tq.cfg.RawAllowed {
		c.violate(q)
		return
	}
	pri := arctic.Low
	if flags&SlotFlagHighPri != 0 {
		pri = arctic.High
	}
	if !translate {
		c.lnFrame.LogicalQ = c.lnRawLQ
	}
	c.translateAndSend(q, c.lnDest, translate, pri)
}

// translateAndSend applies destination translation and protection to the
// staged launch frame (c.lnFrame), then hands it to the TxU.
//
//voyager:noalloc
func (c *Ctrl) translateAndSend(q int, dest uint16, translate bool, pri arctic.Priority) {
	if !translate {
		c.lnSend(q, dest, pri)
		return
	}
	tq := &c.tx[q]
	c.lnTrIdx = int(dest&tq.cfg.AndMask|tq.cfg.OrMask) % c.cfg.TransTableEntries
	c.lnPri = pri
	// Translation table lookup crosses the IBus (one 8-byte entry).
	c.ibusMove(8, c.lnTransFn)
}

// lnTrans consumes the staged translation lookup.
//
//voyager:noalloc
func (c *Ctrl) lnTrans() {
	q := c.lnQ
	e := c.readTransEntry(c.lnTrIdx)
	if !e.Valid {
		c.violate(q)
		return
	}
	c.lnFrame.LogicalQ = e.LogicalQ
	c.lnSend(q, e.PhysNode, e.Priority)
}

// lnSend is the protection check + backpressure gate in front of the TxU.
//
//voyager:noalloc
func (c *Ctrl) lnSend(q int, phys uint16, pri arctic.Priority) {
	tq := &c.tx[q]
	if tq.cfg.AllowedDests>>(phys%64)&1 == 0 {
		c.violate(q)
		return
	}
	if len(c.emitPending[pri]) > 0 || !c.net.Ready(pri) {
		// The lane is backpressured: park this queue (its head will be
		// re-read and relaunched when room returns) and let queues
		// bound for the other lane keep launching.
		tq.parked = true
		tq.parkedPri = pri
		c.txBusy = false
		c.kickTx()
		return
	}
	c.emit(&c.lnFrame, int(phys), pri, c.lnDoneFn)
}

// lnDone retires the launched message: advance the consumer, publish, and
// re-arm the arbiter. It runs while txBusy still holds the staged record, so
// lnQ and lnFrame are the message that was just injected.
//
//voyager:noalloc
func (c *Ctrl) lnDone() {
	q := c.lnQ
	tq := &c.tx[q]
	tq.consumer++
	c.shadowTx(q)
	c.sampleTx(q)
	c.stats.TxMessages++
	c.stats.TxBytes += uint64(len(c.lnFrame.Payload))
	c.txRR = q
	c.txBusy = false
	c.kickTx()
}

// pendingEmit is a launch deferred by fabric backpressure.
type pendingEmit struct {
	wire []byte
	phys int
	pri  arctic.Priority
	tag  sim.MsgTag
	done func()
}

// emitOp is one in-flight TxU inject event: a recycled record whose prebound
// method value stands in for the Schedule closure. Pooled (not staged on the
// Ctrl) because the command queues and block units emit concurrently with
// the launch pipeline.
type emitOp struct {
	c        *Ctrl
	wire     []byte
	phys     int
	pri      arctic.Priority
	tag      sim.MsgTag
	done     func()
	injectFn func()
}

//voyager:noalloc
func (o *emitOp) inject() {
	c, wire, phys, pri, tag, done := o.c, o.wire, o.phys, o.pri, o.tag, o.done
	o.wire, o.done = nil, nil
	c.emFree = append(c.emFree, o) //voyager:alloc-ok(amortized: pool backing array is retained)
	c.net.Inject(phys, pri, wire, tag)
	done()
}

// emitOpGet returns a recycled (or new) emitOp with its method value bound.
//
//voyager:noalloc
func (c *Ctrl) emitOpGet() *emitOp {
	if n := len(c.emFree); n > 0 {
		o := c.emFree[n-1]
		c.emFree = c.emFree[:n-1]
		return o
	}
	o := &emitOp{c: c}    //voyager:alloc-ok(pool warm-up; recycled thereafter)
	o.injectFn = o.inject //voyager:alloc-ok(one-time method binding for the pooled record)
	return o
}

// emit runs the TxU formatting and injects the encoded frame. When the
// fabric's injection buffering is full, the launch (and everything behind
// it) waits until the fabric signals readiness — finite network buffering
// propagates backpressure into the NIU and from there to software.
//
// The frame itself is the caller's (it may be the staged launch scratch);
// emit does not retain it past this call.
//
//voyager:noalloc wire buffer is the one per-message allocation (it travels in the packet)
func (c *Ctrl) emit(frame *txrx.Frame, phys int, pri arctic.Priority, done func()) {
	wire, err := txrx.Encode(frame) //voyager:alloc-ok(wire bytes travel inside the packet until remote delivery; recycling at the destination would accumulate unboundedly under one-way traffic)
	if err != nil {
		panic(fmt.Sprintf("ctrl: node %d: %v", c.myNode, err)) //voyager:alloc-ok(panic path)
	}
	// The message has left its queue and owns the TxU: one launch per
	// attempt, even if injection is then deferred by backpressure.
	c.traceMsg("ctrl", "msg-launch", frame.Trace, sim.Int("dst", phys))
	if len(c.emitPending[pri]) > 0 || !c.net.Ready(pri) {
		c.emitPending[pri] = append(c.emitPending[pri], pendingEmit{wire, phys, pri, frame.Trace, done}) //voyager:alloc-ok(backpressure path)
		return
	}
	o := c.emitOpGet()
	o.wire, o.phys, o.pri, o.tag, o.done = wire, phys, pri, frame.Trace, done
	c.eng.Schedule(c.cycles(c.cfg.TxUCycles), o.injectFn)
}

// NetReady drains deferred launches; the node's fabric adapter calls it
// whenever injection room returns on any lane.
func (c *Ctrl) NetReady() {
	for pri := arctic.Priority(0); pri < 2; pri++ {
		for len(c.emitPending[pri]) > 0 && c.net.Ready(pri) {
			pe := c.emitPending[pri][0]
			c.emitPending[pri] = c.emitPending[pri][1:]
			o := c.emitOpGet()
			o.wire, o.phys, o.pri, o.tag, o.done = pe.wire, pe.phys, pe.pri, pe.tag, pe.done
			c.eng.Schedule(c.cycles(c.cfg.TxUCycles), o.injectFn)
		}
	}
	unparked := false
	for q := range c.tx {
		tq := &c.tx[q]
		if tq.parked && len(c.emitPending[tq.parkedPri]) == 0 && c.net.Ready(tq.parkedPri) {
			tq.parked = false
			unparked = true
		}
	}
	if unparked {
		c.kickTx()
	}
}

// violate shuts down queue q and raises the protection interrupt. The
// offending message is left at the head of the queue for firmware to
// inspect; the queue stops launching until re-enabled.
//
//voyager:noalloc
func (c *Ctrl) violate(q int) {
	tq := &c.tx[q]
	tq.shutdown = true
	tq.cfg.Enabled = false
	c.stats.ProtViolations++
	c.txBusy = false
	if c.ints != nil {
		c.ints.ProtViolation(q)
	}
	c.kickTx()
}

// ExpressCompose is the hardware path the aBIU uses to build and launch an
// express message from a single uncached store: it writes the 8-byte slot
// through CTRL into SRAM and bumps the producer pointer, all without
// processor involvement beyond the original store.
func (c *Ctrl) ExpressCompose(q int, dest uint16, payload []byte) {
	c.checkQ(q)
	tq := &c.tx[q]
	if !tq.cfg.Express {
		panic(fmt.Sprintf("ctrl: tx%d is not an express queue", q))
	}
	if len(payload) > ExpressPayload {
		payload = payload[:ExpressPayload]
	}
	if tq.pending() >= uint32(tq.cfg.Entries) {
		// Full express queue: the store is dropped on the floor; the
		// library-level protocol (paper: "single uncached store") relies on
		// software pacing. Count it for visibility.
		c.stats.RxDrops++
		return
	}
	// The uncached store is the moment the message enters the system: the
	// aBIU composes the slot, so the trace id is allocated here.
	tag := sim.MsgTag{ID: c.eng.NewMsgID()}
	c.StageTxTag(q, tq.producer, tag)
	c.traceMsg("ctrl", "msg-send", tag, sim.Int("txq", q))
	slot := make([]byte, ExpressSlotBytes)
	binary.BigEndian.PutUint16(slot[0:], dest)
	slot[2] = byte(len(payload))
	copy(slot[3:], payload)
	off := SlotOffset(tq.cfg.Base, tq.cfg.EntryBytes, tq.cfg.Entries, tq.producer)
	c.ibusMove(ExpressSlotBytes, func() {
		tq.cfg.Buf.Write(off, slot)
		c.TxProducerUpdate(q, tq.producer+1)
	})
}

// ExpressReceive is the hardware path for the uncached load that receives an
// express message: it returns the slot word and frees the buffer. The result
// word layout is valid(1) src(2) payload(5); a canonical empty message (all
// zeros) is returned when no message is pending.
func (c *Ctrl) ExpressReceive(q int) [8]byte {
	c.checkQ(q)
	rq := &c.rx[q]
	var out [8]byte
	if rq.producer == rq.consumer {
		return out
	}
	off := SlotOffset(rq.cfg.Base, rq.cfg.EntryBytes, rq.cfg.Entries, rq.consumer)
	var slot [ExpressSlotBytes]byte
	rq.cfg.Buf.Read(off, slot[:])
	copy(out[:], slot[:])
	c.traceMsg("aP", "msg-consume", c.RxTag(q, rq.consumer), sim.Int("rxq", q))
	c.RxConsumerUpdate(q, rq.consumer+1)
	return out
}
