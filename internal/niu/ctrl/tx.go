package ctrl

import (
	"encoding/binary"
	"fmt"

	"startvoyager/internal/arctic"
	"startvoyager/internal/niu/txrx"
	"startvoyager/internal/sim"
)

// Transmit slot format (software composes this into the queue's SRAM slot):
//
//	bytes 0-1  destination (virtual; physical node when the raw flag is set)
//	byte  2    flags (see Slot* constants)
//	byte  3    inline payload length
//	bytes 4-6  TagOn SRAM offset (24-bit)     | raw: bytes 4-5 logical queue
//	byte  7    TagOn length in 16-byte units (0..5, i.e. up to 2.5 lines)
//	bytes 8+   inline payload; for command frames: addr(4) aux(2) count(2)
//	           then payload from byte 16
//
// Express queues use an 8-byte slot composed by the aBIU from a single
// uncached store: dest(2) len(1) payload(5).
const (
	SlotFlagTagOn    = 1 << 0 // append TagOn data from SRAM
	SlotFlagRaw      = 1 << 1 // bypass translation (dest is physical)
	SlotFlagHighPri  = 1 << 2 // raw messages: use the high-priority network lane
	SlotFlagCmd      = 1 << 3 // payload encodes a remote command frame
	SlotFlagTagASram = 1 << 4 // TagOn data lives in aSRAM (else sSRAM)
)

// ExpressSlotBytes is the express queue entry size.
const ExpressSlotBytes = 8

// ExpressPayload is the express message payload size (one five-byte word).
const ExpressPayload = 5

// kickTx starts the transmit arbiter if it is idle.
func (c *Ctrl) kickTx() {
	if c.txBusy {
		return
	}
	q := c.pickTx()
	if q < 0 {
		return
	}
	c.txBusy = true
	c.launchFrom(q)
}

// pickTx selects the next transmit queue: best (lowest) priority class wins;
// round-robin within the class.
func (c *Ctrl) pickTx() int {
	best, bestPri := -1, 0
	for i := 0; i < NumQueues; i++ {
		q := (c.txRR + 1 + i) % NumQueues
		tq := &c.tx[q]
		if tq.cfg.Buf == nil || !tq.cfg.Enabled || tq.shutdown || tq.parked ||
			tq.pending() == 0 {
			continue
		}
		if best < 0 || tq.cfg.Priority < bestPri {
			best, bestPri = q, tq.cfg.Priority
		}
	}
	return best
}

// launchFrom reads, translates and launches the head message of queue q,
// then re-arms the arbiter.
func (c *Ctrl) launchFrom(q int) {
	tq := &c.tx[q]
	off := SlotOffset(tq.cfg.Base, tq.cfg.EntryBytes, tq.cfg.Entries, tq.consumer)
	tag := c.txTag(q, tq.consumer)
	slot := make([]byte, tq.cfg.EntryBytes)
	// Pull the slot across the IBus.
	c.ibusMove(tq.cfg.EntryBytes, func() {
		tq.cfg.Buf.Read(off, slot)
		if tq.cfg.Express {
			c.launchExpress(q, slot, tag)
			return
		}
		c.launchBasic(q, slot, tag)
	})
}

func (c *Ctrl) launchExpress(q int, slot []byte, tag sim.MsgTag) {
	dest := binary.BigEndian.Uint16(slot[0:])
	n := int(slot[2])
	if n > ExpressPayload {
		n = ExpressPayload
	}
	frame := &txrx.Frame{Kind: txrx.Data, SrcNode: uint16(c.myNode),
		Payload: append([]byte(nil), slot[3:3+n]...), Trace: tag}
	c.translateAndSend(q, dest, true, arctic.Low, frame)
}

func (c *Ctrl) launchBasic(q int, slot []byte, tag sim.MsgTag) {
	tq := &c.tx[q]
	dest := binary.BigEndian.Uint16(slot[0:])
	flags := slot[2]
	n := int(slot[3])
	payloadMax := tq.cfg.EntryBytes - SlotHeaderBytes
	if flags&SlotFlagCmd != 0 {
		payloadMax -= 8
	}
	if n > payloadMax {
		c.violate(q)
		return
	}
	var frame *txrx.Frame
	if flags&SlotFlagCmd != 0 {
		// Command frames reuse the TagOn field (bytes 4-5) for the op;
		// TagOn and command framing are mutually exclusive.
		frame = &txrx.Frame{
			Kind:    txrx.Cmd,
			SrcNode: uint16(c.myNode),
			Op:      txrx.CmdOp(binary.BigEndian.Uint16(slot[4:])),
			Addr:    binary.BigEndian.Uint32(slot[8:]),
			Aux:     binary.BigEndian.Uint16(slot[12:]),
			Count:   binary.BigEndian.Uint16(slot[14:]),
			Payload: append([]byte(nil), slot[16:16+n]...),
			Trace:   tag,
		}
	} else {
		frame = &txrx.Frame{Kind: txrx.Data, SrcNode: uint16(c.myNode),
			Payload: append([]byte(nil), slot[8:8+n]...), Trace: tag}
	}

	finish := func() {
		translate := tq.cfg.Translate && flags&SlotFlagRaw == 0
		if flags&SlotFlagRaw != 0 && !tq.cfg.RawAllowed {
			c.violate(q)
			return
		}
		pri := arctic.Low
		if flags&SlotFlagHighPri != 0 {
			pri = arctic.High
		}
		if !translate {
			frame.LogicalQ = binary.BigEndian.Uint16(slot[4:])
		}
		c.translateAndSend(q, dest, translate, pri, frame)
	}

	if flags&SlotFlagTagOn != 0 {
		tagOff := uint32(slot[4])<<16 | uint32(slot[5])<<8 | uint32(slot[6])
		tagLen := int(slot[7]) * 16
		if tagLen > 0 {
			bank := c.sSRAM
			if flags&SlotFlagTagASram != 0 {
				bank = c.aSRAM
			}
			if len(frame.Payload)+tagLen > txrx.MaxDataPayload || frame.Kind == txrx.Cmd {
				c.violate(q)
				return
			}
			c.stats.TagOns++
			// Pull the TagOn data across the IBus and append it.
			c.ibusMove(tagLen, func() {
				frame.Payload = append(frame.Payload, bank.Slice(tagOff, tagLen)...)
				finish()
			})
			return
		}
	}
	finish()
}

// translateAndSend applies destination translation and protection, then
// hands the frame to the TxU.
func (c *Ctrl) translateAndSend(q int, dest uint16, translate bool, pri arctic.Priority, frame *txrx.Frame) {
	tq := &c.tx[q]
	send := func(phys uint16, pri arctic.Priority) {
		if tq.cfg.AllowedDests>>(phys%64)&1 == 0 {
			c.violate(q)
			return
		}
		if len(c.emitPending[pri]) > 0 || !c.net.Ready(pri) {
			// The lane is backpressured: park this queue (its head will be
			// re-read and relaunched when room returns) and let queues
			// bound for the other lane keep launching.
			tq.parked = true
			tq.parkedPri = pri
			c.txBusy = false
			c.kickTx()
			return
		}
		c.emit(frame, int(phys), pri, func() {
			tq.consumer++
			c.shadowTx(q)
			c.sampleTx(q)
			c.stats.TxMessages++
			c.stats.TxBytes += uint64(len(frame.Payload))
			c.txRR = q
			c.txBusy = false
			c.kickTx()
		})
	}
	if !translate {
		send(dest, pri)
		return
	}
	idx := int(dest&tq.cfg.AndMask|tq.cfg.OrMask) % c.cfg.TransTableEntries
	// Translation table lookup crosses the IBus (one 8-byte entry).
	c.ibusMove(8, func() {
		e := c.readTransEntry(idx)
		if !e.Valid {
			c.violate(q)
			return
		}
		frame.LogicalQ = e.LogicalQ
		send(e.PhysNode, e.Priority)
	})
}

// pendingEmit is a launch deferred by fabric backpressure.
type pendingEmit struct {
	wire []byte
	phys int
	pri  arctic.Priority
	tag  sim.MsgTag
	done func()
}

// emit runs the TxU formatting and injects the encoded frame. When the
// fabric's injection buffering is full, the launch (and everything behind
// it) waits until the fabric signals readiness — finite network buffering
// propagates backpressure into the NIU and from there to software.
func (c *Ctrl) emit(frame *txrx.Frame, phys int, pri arctic.Priority, done func()) {
	wire, err := txrx.Encode(frame)
	if err != nil {
		panic(fmt.Sprintf("ctrl: node %d: %v", c.myNode, err))
	}
	// The message has left its queue and owns the TxU: one launch per
	// attempt, even if injection is then deferred by backpressure.
	c.traceMsg("ctrl", "msg-launch", frame.Trace, sim.Int("dst", phys))
	if len(c.emitPending[pri]) > 0 || !c.net.Ready(pri) {
		c.emitPending[pri] = append(c.emitPending[pri], pendingEmit{wire, phys, pri, frame.Trace, done})
		return
	}
	c.eng.Schedule(c.cycles(c.cfg.TxUCycles), func() {
		c.net.Inject(phys, pri, wire, frame.Trace)
		done()
	})
}

// NetReady drains deferred launches; the node's fabric adapter calls it
// whenever injection room returns on any lane.
func (c *Ctrl) NetReady() {
	for pri := arctic.Priority(0); pri < 2; pri++ {
		for len(c.emitPending[pri]) > 0 && c.net.Ready(pri) {
			pe := c.emitPending[pri][0]
			c.emitPending[pri] = c.emitPending[pri][1:]
			c.eng.Schedule(c.cycles(c.cfg.TxUCycles), func() {
				c.net.Inject(pe.phys, pe.pri, pe.wire, pe.tag)
				pe.done()
			})
		}
	}
	unparked := false
	for q := range c.tx {
		tq := &c.tx[q]
		if tq.parked && len(c.emitPending[tq.parkedPri]) == 0 && c.net.Ready(tq.parkedPri) {
			tq.parked = false
			unparked = true
		}
	}
	if unparked {
		c.kickTx()
	}
}

// violate shuts down queue q and raises the protection interrupt. The
// offending message is left at the head of the queue for firmware to
// inspect; the queue stops launching until re-enabled.
func (c *Ctrl) violate(q int) {
	tq := &c.tx[q]
	tq.shutdown = true
	tq.cfg.Enabled = false
	c.stats.ProtViolations++
	c.txBusy = false
	if c.ints != nil {
		c.ints.ProtViolation(q)
	}
	c.kickTx()
}

// ExpressCompose is the hardware path the aBIU uses to build and launch an
// express message from a single uncached store: it writes the 8-byte slot
// through CTRL into SRAM and bumps the producer pointer, all without
// processor involvement beyond the original store.
func (c *Ctrl) ExpressCompose(q int, dest uint16, payload []byte) {
	c.checkQ(q)
	tq := &c.tx[q]
	if !tq.cfg.Express {
		panic(fmt.Sprintf("ctrl: tx%d is not an express queue", q))
	}
	if len(payload) > ExpressPayload {
		payload = payload[:ExpressPayload]
	}
	if tq.pending() >= uint32(tq.cfg.Entries) {
		// Full express queue: the store is dropped on the floor; the
		// library-level protocol (paper: "single uncached store") relies on
		// software pacing. Count it for visibility.
		c.stats.RxDrops++
		return
	}
	// The uncached store is the moment the message enters the system: the
	// aBIU composes the slot, so the trace id is allocated here.
	tag := sim.MsgTag{ID: c.eng.NewMsgID()}
	c.StageTxTag(q, tq.producer, tag)
	c.traceMsg("ctrl", "msg-send", tag, sim.Int("txq", q))
	slot := make([]byte, ExpressSlotBytes)
	binary.BigEndian.PutUint16(slot[0:], dest)
	slot[2] = byte(len(payload))
	copy(slot[3:], payload)
	off := SlotOffset(tq.cfg.Base, tq.cfg.EntryBytes, tq.cfg.Entries, tq.producer)
	c.ibusMove(ExpressSlotBytes, func() {
		tq.cfg.Buf.Write(off, slot)
		c.TxProducerUpdate(q, tq.producer+1)
	})
}

// ExpressReceive is the hardware path for the uncached load that receives an
// express message: it returns the slot word and frees the buffer. The result
// word layout is valid(1) src(2) payload(5); a canonical empty message (all
// zeros) is returned when no message is pending.
func (c *Ctrl) ExpressReceive(q int) [8]byte {
	c.checkQ(q)
	rq := &c.rx[q]
	var out [8]byte
	if rq.producer == rq.consumer {
		return out
	}
	off := SlotOffset(rq.cfg.Base, rq.cfg.EntryBytes, rq.cfg.Entries, rq.consumer)
	var slot [ExpressSlotBytes]byte
	rq.cfg.Buf.Read(off, slot[:])
	copy(out[:], slot[:])
	c.traceMsg("aP", "msg-consume", c.RxTag(q, rq.consumer), sim.Int("rxq", q))
	c.RxConsumerUpdate(q, rq.consumer+1)
	return out
}
