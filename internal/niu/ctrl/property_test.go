package ctrl

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"startvoyager/internal/niu/txrx"
	"startvoyager/internal/sim"
)

// Property: for random interleavings of message composition, producer
// updates, and receive-consumer updates across multiple queues, every
// message is launched exactly once, in per-queue FIFO order, with intact
// content.
func TestQueueDisciplineProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := newRig(nil, 0)
		const nq = 3
		for q := 0; q < nq; q++ {
			r.stdTx(q, false)
		}
		type sent struct {
			q   int
			msg []byte
		}
		var plan []sent
		// Compose in bursts, interleaving producer updates at random times.
		prod := make([]uint32, nq)
		published := make([]uint32, nq)
		seq := 0
		for step := 0; step < 60; step++ {
			q := rng.Intn(nq)
			switch rng.Intn(3) {
			case 0, 1: // compose one message if space
				if prod[q]-r.c.TxConsumer(q) >= 8 || prod[q]-published[q] >= 4 {
					continue
				}
				msg := make([]byte, 1+rng.Intn(8))
				rng.Read(msg)
				msg[0] = byte(seq)
				seq++
				r.composeBasicAt(q, prod[q], uint16(q+1), SlotFlagRaw, msg)
				prod[q]++
				plan = append(plan, sent{q, msg})
			case 2: // publish composed messages
				if published[q] != prod[q] {
					published[q] = prod[q]
					p := published[q]
					qq := q
					r.eng.Schedule(0, func() { r.c.TxProducerUpdate(qq, p) })
					r.eng.RunLimit(10000)
				}
			}
		}
		for q := 0; q < nq; q++ {
			if published[q] != prod[q] {
				qq, p := q, prod[q]
				r.eng.Schedule(0, func() { r.c.TxProducerUpdate(qq, p) })
			}
		}
		if !r.eng.RunLimit(1_000_000) {
			return false
		}
		// Per-queue FIFO: the injected stream, filtered by destination
		// (dest == q+1 by construction), must equal the per-queue plan.
		got := map[int][][]byte{}
		for _, in := range r.net.injected {
			f, err := txrx.Decode(in.wire)
			if err != nil {
				return false
			}
			got[in.dst] = append(got[in.dst], f.Payload)
		}
		want := map[int][][]byte{}
		for _, s := range plan {
			want[s.q+1] = append(want[s.q+1], s.msg)
		}
		for q := 0; q < nq; q++ {
			w, g := want[q+1], got[q+1]
			if len(w) != len(g) {
				return false
			}
			for i := range w {
				if !bytes.Equal(w[i], g[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: receive-side pointers never pass each other and slot contents
// round-trip for random message streams, including wraparound.
func TestRxPointerProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := newRig(nil, 1)
		r.stdRx(0, 7, Hold) // 4 entries: plenty of wraparound below
		var want [][]byte
		var gotten [][]byte
		consumed := uint32(0)
		for i := 0; i < 40; i++ {
			// Drain sometimes, fill sometimes.
			if rng.Intn(2) == 0 {
				for consumed < r.c.RxProducer(0) {
					_, _, pl := r.c.ReadRxSlot(0, consumed)
					gotten = append(gotten, pl)
					consumed++
					r.c.RxConsumerUpdate(0, consumed)
				}
			}
			msg := make([]byte, 1+rng.Intn(16))
			rng.Read(msg)
			w, _ := txrx.Encode(&txrx.Frame{Kind: txrx.Data, LogicalQ: 7, Payload: msg})
			if r.c.TryReceive(w, sim.MsgTag{}) {
				want = append(want, msg)
			}
			if !r.eng.RunLimit(100000) {
				return false
			}
			if r.c.RxProducer(0)-consumed > 4 {
				return false // producer overran the ring
			}
		}
		for consumed < r.c.RxProducer(0) {
			_, _, pl := r.c.ReadRxSlot(0, consumed)
			gotten = append(gotten, pl)
			consumed++
			r.c.RxConsumerUpdate(0, consumed)
		}
		if len(want) != len(gotten) {
			return false
		}
		for i := range want {
			if !bytes.Equal(want[i], gotten[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: translation through random AND/OR masks always lands on the
// table entry computed by the reference expression.
func TestTranslationMaskProperty(t *testing.T) {
	f := func(virt, and, or uint16) bool {
		r := newRig(nil, 0)
		r.c.ConfigureTx(0, TxConfig{
			Buf: r.aS, Base: 0x1000, EntryBytes: 96, Entries: 8, ShadowBase: 0x100,
			Translate: true, AndMask: and, OrMask: or,
			AllowedDests: ^uint64(0), Enabled: true,
		})
		idx := int(virt&and|or) % r.c.cfg.TransTableEntries
		r.c.WriteTransEntry(idx, TransEntry{PhysNode: 9, LogicalQ: uint16(idx), Valid: true})
		p := r.composeBasic(0, virt, 0, []byte("m"))
		r.c.TxProducerUpdate(0, p)
		if !r.eng.RunLimit(100000) {
			return false
		}
		if len(r.net.injected) != 1 || r.net.injected[0].dst != 9 {
			return false
		}
		f, _ := txrx.Decode(r.net.injected[0].wire)
		return f.LogicalQ == uint16(idx)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: slot offsets wrap correctly for any pointer value.
func TestSlotOffsetProperty(t *testing.T) {
	f := func(base uint32, ptr uint32) bool {
		base &= 0xFFFF
		off := SlotOffset(base, 96, 16, ptr)
		idx := (off - base) / 96
		return off >= base && idx == ptr%16 && (off-base)%96 == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Sanity companion for the property tests: the rig helper must tolerate a
// nil *testing.T (they construct rigs inside quick.Check closures).
func TestRigNilT(t *testing.T) {
	r := newRig(nil, 0)
	if r.c.Node() != 0 {
		t.Fatal("rig broken")
	}
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], 1)
}
