// Package ctrl models the CTRL ASIC — layer 2 of StarT-Voyager's
// communication architecture. CTRL owns the protected message-queue
// abstraction: 16 transmit and 16 receive hardware queues with
// producer/consumer pointers (shadowed into SRAM for processor polling),
// prioritized transmit arbitration, destination translation through an
// AND/OR mask and an SRAM-resident table, receive-queue caching with a
// miss/overflow queue, per-queue protection with shutdown-on-violation, two
// ordered local command queues plus a remote command queue, and the block
// read / block transmit units. All data movement inside the NIU crosses the
// IBus, which CTRL arbitrates.
package ctrl

import (
	"encoding/binary"
	"fmt"

	"startvoyager/internal/arctic"
	"startvoyager/internal/bus"
	"startvoyager/internal/niu/sram"
	"startvoyager/internal/niu/txrx"
	"startvoyager/internal/sim"
	"startvoyager/internal/stats"
)

// txqName/rxqName are precomputed counter-track names so queue-depth
// sampling allocates nothing on the hot path.
var txqName, rxqName [NumQueues]string

func init() {
	for i := range txqName {
		txqName[i] = fmt.Sprintf("txq%d", i)
		rxqName[i] = fmt.Sprintf("rxq%d", i)
	}
}

// NumQueues is the number of hardware transmit and receive queues.
const NumQueues = 16

// SlotHeaderBytes is the software-visible header at the start of every
// transmit/receive queue slot (see Tx slot format in tx.go).
const SlotHeaderBytes = 8

// BusPort is CTRL's path onto the aP memory bus (provided by the aBIU).
type BusPort interface {
	IssueBusOp(tx *bus.Transaction, done func())
}

// NetPort is CTRL's path into the network (provided by the TxU/RxU wiring).
type NetPort interface {
	// Inject sends an encoded frame; tag is the message's causal trace
	// context, carried as sideband next to the wire bytes.
	Inject(dst int, pri arctic.Priority, wire []byte, tag sim.MsgTag)
	// Poke retries deliveries this NIU previously refused (Hold policy).
	Poke()
	// Ready reports whether the fabric can take another packet from this
	// node on the given priority lane; when false, CTRL holds that lane's
	// launches until NetReady is signaled. Lanes are independent so High
	// traffic bypasses a backed-up Low lane.
	Ready(pri arctic.Priority) bool
}

// IntPort carries CTRL's interrupt lines to the service processor.
type IntPort interface {
	// RxInterrupt fires when a message lands in an interrupt-enabled
	// physical receive queue.
	RxInterrupt(phys int)
	// ProtViolation fires when a transmit queue is shut down.
	ProtViolation(q int)
}

// FullPolicy selects what happens to a message for a full receive queue.
type FullPolicy int

const (
	// Hold refuses delivery; the network stalls the packet's priority lane
	// until space frees (can deadlock — the paper calls this out).
	Hold FullPolicy = iota
	// Drop discards the packet.
	Drop
	// Divert sends the packet to the miss/overflow queue.
	Divert
)

// Config holds CTRL parameters.
type Config struct {
	CycleTime sim.Time // NIU clock (default 15 ns, bus-synchronous)
	TxUCycles int      // per-packet transmit formatting (default 4)
	RxUCycles int      // per-packet receive formatting (default 4)
	// TransTableBase is the sSRAM offset of the destination translation
	// table (8-byte entries).
	TransTableBase uint32
	// TransTableEntries bounds the masked virtual destination space.
	TransTableEntries int
	// MissQueue is the physical receive queue to which unresident logical
	// destinations and Divert overflow are steered (-1 disables).
	MissQueue int
	// ScomaRange lets remote WriteDramCls/SetCls commands convert physical
	// addresses into clsSRAM line indices.
	ScomaRange bus.Range
	// PaceFlitBytes/PaceFlitTime set the link rate the block-transmit unit
	// paces itself to (defaults match Arctic: 16 bytes per 100 ns).
	PaceFlitBytes int
	PaceFlitTime  sim.Time
	// StrictRx restores the original panic-on-garbage Rx behavior — useful
	// when hunting protocol bugs in a fault-free run, where a bad frame means
	// a sender-side encoding bug rather than injected corruption.
	StrictRx bool
}

// DefaultConfig returns NIU-cycle defaults used by the standard machine.
func DefaultConfig() Config {
	return Config{CycleTime: 15 * sim.Nanosecond, TxUCycles: 4, RxUCycles: 4,
		TransTableBase: 0, TransTableEntries: 256, MissQueue: NumQueues - 1}
}

func (c *Config) fillDefaults() {
	if c.CycleTime == 0 {
		c.CycleTime = 15 * sim.Nanosecond
	}
	if c.TxUCycles == 0 {
		c.TxUCycles = 4
	}
	if c.RxUCycles == 0 {
		c.RxUCycles = 4
	}
	if c.TransTableEntries == 0 {
		c.TransTableEntries = 256
	}
	if c.PaceFlitBytes == 0 {
		c.PaceFlitBytes = 16
	}
	if c.PaceFlitTime == 0 {
		c.PaceFlitTime = 100 * sim.Nanosecond
	}
}

// TxConfig configures one hardware transmit queue.
type TxConfig struct {
	Buf        *sram.SRAM // aSRAM or sSRAM bank holding the slots
	Base       uint32     // slot array base offset in Buf
	EntryBytes int        // slot size (96 for Basic, 8 for Express)
	Entries    int        // number of slots
	ShadowBase uint32     // pointer shadow offset in Buf (8 bytes)

	Express      bool   // 8-byte express slots composed by the aBIU
	Translate    bool   // apply destination translation
	AndMask      uint16 // translation pre-masks
	OrMask       uint16
	RawAllowed   bool   // permit untranslated (raw) messages
	Priority     int    // arbitration class (lower value = served first)
	AllowedDests uint64 // bitmask of permitted physical destinations
	Enabled      bool
}

// RxConfig configures one hardware receive queue.
type RxConfig struct {
	Buf        *sram.SRAM
	Base       uint32
	EntryBytes int
	Entries    int
	ShadowBase uint32

	Logical   uint16 // resident logical queue number
	Express   bool   // slots use the 8-byte express format
	Interrupt bool   // raise RxInterrupt on arrival
	Full      FullPolicy
	Enabled   bool
}

type txQueue struct {
	cfg      TxConfig
	producer uint32
	consumer uint32
	shutdown bool
	// parked marks a queue whose head message targets a backpressured
	// network lane; the arbiter skips it (so other lanes keep flowing)
	// until the fabric signals room.
	parked    bool
	parkedPri arctic.Priority
	// tags is the per-slot causal trace sideband (indexed ptr mod Entries),
	// written when a slot is composed and read when CTRL launches it.
	tags []sim.MsgTag
}

type rxQueue struct {
	cfg      RxConfig
	producer uint32
	consumer uint32
	reserved uint32 // accepted but not yet written (in-flight through IBus)
	holding  bool   // refused a delivery; poke the fabric on space
	// tags is the per-slot causal trace sideband (indexed ptr mod Entries),
	// written when the RxU lands a message and read by its consumer.
	tags []sim.MsgTag
}

//voyager:noalloc
func (q *txQueue) pending() uint32 { return q.producer - q.consumer }

//voyager:noalloc
func (q *rxQueue) used() uint32 { return q.producer + q.reserved - q.consumer }

//voyager:noalloc
func (q *rxQueue) full() bool { return q.used() >= uint32(q.cfg.Entries) }

// Stats counts CTRL activity.
type Stats struct {
	TxMessages, RxMessages uint64
	TxBytes, RxBytes       uint64
	RxMisses               uint64 // steered to the miss queue
	RxDrops                uint64
	RxGarbage              uint64 // undecodable frames (checksum/format) dropped
	RxHolds                uint64 // deliveries refused (Hold backpressure)
	ProtViolations         uint64
	LocalCmds, RemoteCmds  uint64
	BlockReads, BlockTxs   uint64
	TagOns                 uint64
}

// Ctrl is one node's CTRL ASIC.
type Ctrl struct {
	eng    *sim.Engine
	myNode int
	cfg    Config

	aSRAM *sram.SRAM
	sSRAM *sram.SRAM
	cls   *sram.Cls

	busPort BusPort
	net     NetPort
	ints    IntPort

	ibus *sim.Resource

	tx [NumQueues]txQueue
	rx [NumQueues]rxQueue

	txBusy bool
	txRR   int // round-robin cursor within a priority class

	local  [2]*cmdQueue
	remote *remoteQueue

	// emitPending holds launches deferred by fabric backpressure, one FIFO
	// per priority lane.
	emitPending [2][]pendingEmit

	blockRead *blockUnit
	blockTx   *blockUnit

	// Launch staging (tx.go). The launch pipeline — kickTx, slot read, TagOn
	// pull, translation, emit, completion — is serialized end to end by
	// txBusy, so one staged record replaces the closure chain the pipeline
	// used to allocate per message. A parked or violated launch abandons the
	// staged state; the head slot is re-read on relaunch.
	lnQ       int        // transmit queue being launched
	lnOff     uint32     // SRAM offset of the head slot
	lnTag     sim.MsgTag // trace tag of the head slot
	lnSlot    []byte     // slot scratch (grows to the largest EntryBytes)
	lnFrame   txrx.Frame // frame scratch; Payload capacity is reused
	lnDest    uint16     // virtual (or raw physical) destination
	lnFlags   byte       // slot flags
	lnRawLQ   uint16     // logical queue for untranslated messages
	lnPri     arctic.Priority
	lnTagBank *sram.SRAM // TagOn source bank
	lnTagOff  uint32
	lnTagLen  int
	lnTrIdx   int // translation table index
	lnReadFn  func()
	lnTagOnFn func()
	lnTransFn func()
	lnDoneFn  func()

	// emFree recycles emitOp records (TxU inject events); rxFree recycles
	// rxOp records (RxU landing chains, several may be in flight per queue);
	// frFree recycles decoded receive frames (see frameGet for ownership).
	emFree []*emitOp
	rxFree []*rxOp
	frFree []*txrx.Frame
	// rxSlot is the receive-landing compose scratch; it is zeroed before
	// every use because the whole slot is written to SRAM (simulation-visible
	// state must not inherit stale bytes from a previous landing).
	rxSlot []byte

	stats      Stats
	rxSizeHist *stats.Histogram // received payload bytes
}

// New builds a CTRL for node myNode over the given SRAMs.
func New(eng *sim.Engine, myNode int, aS, sS *sram.SRAM, cls *sram.Cls, cfg Config) *Ctrl {
	cfg.fillDefaults()
	c := &Ctrl{
		eng: eng, myNode: myNode, cfg: cfg,
		aSRAM: aS, sSRAM: sS, cls: cls,
		ibus:       sim.NewResource(eng, fmt.Sprintf("ibus%d", myNode)),
		rxSizeHist: stats.NewHistogram(8, 16, 32, 64, 96),
	}
	c.ibus.Observe(myNode, "niu")
	c.local[0] = newCmdQueue(c, "cmdq0")
	c.local[1] = newCmdQueue(c, "cmdq1")
	c.remote = newRemoteQueue(c)
	c.blockRead = newBlockUnit(c, "blockread")
	c.blockTx = newBlockUnit(c, "blocktx")
	c.lnReadFn = c.lnRead
	c.lnTagOnFn = c.lnTagOn
	c.lnTransFn = c.lnTrans
	c.lnDoneFn = c.lnDone
	return c
}

// frameGet returns a receive-frame scratch record. Ownership rules: a frame
// obtained here is recycled with framePut exactly once, by whoever holds it
// when it dies (see TryReceive/acceptInto). Command frames are never
// recycled — remote command execution retains them (and may alias their
// payloads) past the receive call.
//
//voyager:noalloc
func (c *Ctrl) frameGet() *txrx.Frame {
	if n := len(c.frFree); n > 0 {
		f := c.frFree[n-1]
		c.frFree = c.frFree[:n-1]
		return f
	}
	return &txrx.Frame{} //voyager:alloc-ok(pool warm-up; recycled thereafter)
}

// framePut recycles a dead receive frame. Payload capacity is kept; the
// trace tag is cleared so a stale tag can never leak into the next message.
//
//voyager:noalloc
func (c *Ctrl) framePut(f *txrx.Frame) {
	f.Trace = sim.MsgTag{}
	c.frFree = append(c.frFree, f) //voyager:alloc-ok(amortized: pool backing array is retained)
}

// SetPorts wires CTRL to its bus master, network, and interrupt sinks.
func (c *Ctrl) SetPorts(b BusPort, n NetPort, i IntPort) {
	c.busPort, c.net, c.ints = b, n, i
}

// Node returns the node number.
func (c *Ctrl) Node() int { return c.myNode }

// Engine returns the simulation engine.
func (c *Ctrl) Engine() *sim.Engine { return c.eng }

// Stats returns a snapshot of counters.
func (c *Ctrl) Stats() Stats { return c.stats }

// IBusBusyTime returns accumulated IBus occupancy.
func (c *Ctrl) IBusBusyTime() sim.Time { return c.ibus.BusyTime() }

// RegisterMetrics registers CTRL's counters under r.
func (c *Ctrl) RegisterMetrics(r *stats.Registry) {
	r.Gauge("tx_messages", func() int64 { return int64(c.stats.TxMessages) })
	r.Gauge("rx_messages", func() int64 { return int64(c.stats.RxMessages) })
	r.Gauge("tx_bytes", func() int64 { return int64(c.stats.TxBytes) })
	r.Gauge("rx_bytes", func() int64 { return int64(c.stats.RxBytes) })
	r.Gauge("rx_misses", func() int64 { return int64(c.stats.RxMisses) })
	r.Gauge("rx_drops", func() int64 { return int64(c.stats.RxDrops) })
	r.Gauge("rx_holds", func() int64 { return int64(c.stats.RxHolds) })
	r.Gauge("rx_garbage", func() int64 { return int64(c.stats.RxGarbage) })
	r.Gauge("prot_violations", func() int64 { return int64(c.stats.ProtViolations) })
	r.Gauge("local_cmds", func() int64 { return int64(c.stats.LocalCmds) })
	r.Gauge("remote_cmds", func() int64 { return int64(c.stats.RemoteCmds) })
	r.Gauge("block_reads", func() int64 { return int64(c.stats.BlockReads) })
	r.Gauge("block_txs", func() int64 { return int64(c.stats.BlockTxs) })
	r.Gauge("tagons", func() int64 { return int64(c.stats.TagOns) })
	r.Time("ibus_busy", c.ibus.BusyTime)
	r.Histogram("rx_payload_bytes", c.rxSizeHist)
	// Per-queue depth gauges for the queues configured at registration time
	// (cluster wiring registers after SetupDefaultQueues), so the windowed
	// sampler can chart occupancy — rising rx depth per window is the
	// receiver-side face of tree saturation.
	for q := 0; q < NumQueues; q++ {
		q := q
		if c.tx[q].cfg.Buf != nil {
			r.Gauge(txqName[q]+"_depth", func() int64 { return int64(c.tx[q].pending()) })
		}
		if c.rx[q].cfg.Buf != nil {
			r.Gauge(rxqName[q]+"_depth", func() int64 { return int64(c.rx[q].used()) })
		}
	}
}

// sampleTx emits transmit queue q's depth on the node's "ctrl" track.
//
//voyager:noalloc
func (c *Ctrl) sampleTx(q int) {
	if c.eng.Observed() {
		c.eng.Sample(c.myNode, "ctrl", txqName[q], int64(c.tx[q].pending()))
	}
}

// sampleRx emits receive queue q's depth on the node's "ctrl" track.
//
//voyager:noalloc
func (c *Ctrl) sampleRx(q int) {
	if c.eng.Observed() {
		c.eng.Sample(c.myNode, "ctrl", rxqName[q], int64(c.rx[q].used()))
	}
}

// StageTxTag records the causal trace tag for the transmit slot being
// composed at ptr on queue q. The tag is sideband state next to the slot
// bytes — the publisher (aP library or aBIU) writes it together with the
// slot, before the producer pointer makes the slot visible to CTRL.
//
//voyager:noalloc
func (c *Ctrl) StageTxTag(q int, ptr uint32, tag sim.MsgTag) {
	c.checkQ(q)
	tq := &c.tx[q]
	if len(tq.tags) > 0 {
		tq.tags[int(ptr)%len(tq.tags)] = tag
	}
}

// txTag reads the trace tag staged for transmit slot ptr of queue q.
//
//voyager:noalloc
func (c *Ctrl) txTag(q int, ptr uint32) sim.MsgTag {
	tq := &c.tx[q]
	if len(tq.tags) == 0 {
		return sim.MsgTag{}
	}
	return tq.tags[int(ptr)%len(tq.tags)]
}

// RxTag returns the trace tag of the message in receive slot ptr of queue q
// (sideband next to the slot bytes; consumers read it alongside the slot).
//
//voyager:noalloc
func (c *Ctrl) RxTag(q int, ptr uint32) sim.MsgTag {
	c.checkQ(q)
	rq := &c.rx[q]
	if len(rq.tags) == 0 {
		return sim.MsgTag{}
	}
	return rq.tags[int(ptr)%len(rq.tags)]
}

// traceMsg emits one causal lifecycle instant for a traced message on the
// node's component track. No-op for untraced messages (tag.ID == 0).
func (c *Ctrl) traceMsg(component, name string, tag sim.MsgTag, extra ...sim.Field) {
	if !tag.Traced() || !c.eng.Observed() {
		return
	}
	fields := make([]sim.Field, 0, 3+len(extra))
	fields = append(fields, sim.I64("msg", int64(tag.ID)))
	if tag.Attempt > 1 {
		fields = append(fields, sim.I64("attempt", int64(tag.Attempt)))
	}
	if tag.Parent != 0 {
		fields = append(fields, sim.I64("parent", int64(tag.Parent)))
	}
	fields = append(fields, extra...)
	c.eng.Instant(c.myNode, component, name, fields...)
}

// Cls exposes the clsSRAM (written by remote commands and firmware).
func (c *Ctrl) Cls() *sram.Cls { return c.cls }

// ASram exposes the aSRAM bank.
func (c *Ctrl) ASram() *sram.SRAM { return c.aSRAM }

// SSram exposes the sSRAM bank.
func (c *Ctrl) SSram() *sram.SRAM { return c.sSRAM }

// cycles converts NIU cycles to time.
//
//voyager:noalloc
func (c *Ctrl) cycles(n int) sim.Time { return sim.Time(n) * c.cfg.CycleTime }

// ibusMove occupies the IBus long enough to move n bytes (8 bytes/cycle,
// minimum one cycle), then runs done. Callers pass prebound method values,
// not fresh closures, so done itself costs nothing on the hot path.
//
//voyager:noalloc
func (c *Ctrl) ibusMove(n int, done func()) {
	cyc := (n + 7) / 8
	if cyc < 1 {
		cyc = 1
	}
	c.ibus.Use(c.cycles(cyc), done)
}

// --- queue configuration (the "system register" interface) ---

// ConfigureTx programs transmit queue q.
func (c *Ctrl) ConfigureTx(q int, cfg TxConfig) {
	c.checkQ(q)
	if cfg.EntryBytes <= 0 || cfg.Entries <= 0 || cfg.Buf == nil {
		panic(fmt.Sprintf("ctrl: bad tx config for queue %d", q))
	}
	c.tx[q] = txQueue{cfg: cfg, tags: make([]sim.MsgTag, cfg.Entries)}
	c.shadowTx(q)
}

// ConfigureRx programs receive queue q.
func (c *Ctrl) ConfigureRx(q int, cfg RxConfig) {
	c.checkQ(q)
	if cfg.EntryBytes <= 0 || cfg.Entries <= 0 || cfg.Buf == nil {
		panic(fmt.Sprintf("ctrl: bad rx config for queue %d", q))
	}
	c.rx[q] = rxQueue{cfg: cfg, tags: make([]sim.MsgTag, cfg.Entries)}
	c.shadowRx(q)
}

// TxQueueConfig returns the live configuration of transmit queue q.
func (c *Ctrl) TxQueueConfig(q int) TxConfig { c.checkQ(q); return c.tx[q].cfg }

// RxQueueConfig returns the live configuration of receive queue q.
func (c *Ctrl) RxQueueConfig(q int) RxConfig { c.checkQ(q); return c.rx[q].cfg }

// SetTxEnabled enables or disables a transmit queue (firmware re-enables a
// queue after a protection shutdown this way).
func (c *Ctrl) SetTxEnabled(q int, on bool) {
	c.checkQ(q)
	c.tx[q].cfg.Enabled = on
	c.tx[q].shutdown = false
	if on {
		c.kickTx()
	}
}

// SetTxPriority updates a queue's arbitration class (the dynamically
// reconfigurable priority register of the paper).
func (c *Ctrl) SetTxPriority(q, prio int) {
	c.checkQ(q)
	c.tx[q].cfg.Priority = prio
}

// SetTxAllowedDests updates a queue's destination permission mask (a
// privileged system-register write; pointers are unaffected).
func (c *Ctrl) SetTxAllowedDests(q int, mask uint64) {
	c.checkQ(q)
	c.tx[q].cfg.AllowedDests = mask
}

//voyager:noalloc
func (c *Ctrl) checkQ(q int) {
	if q < 0 || q >= NumQueues {
		panic(fmt.Sprintf("ctrl: queue %d out of range", q)) //voyager:alloc-ok(panic path)
	}
}

// --- pointers ---

// TxProducerUpdate publishes a new transmit producer counter (absolute,
// free-running); CTRL launches the newly composed messages in order.
//
//voyager:noalloc
func (c *Ctrl) TxProducerUpdate(q int, producer uint32) {
	c.checkQ(q)
	tq := &c.tx[q]
	if producer-tq.consumer > uint32(tq.cfg.Entries) {
		panic(fmt.Sprintf("ctrl: tx%d producer %d overruns consumer %d (%d entries)", //voyager:alloc-ok(panic path)
			q, producer, tq.consumer, tq.cfg.Entries))
	}
	if producer == tq.producer {
		return
	}
	tq.producer = producer
	c.shadowTx(q)
	c.sampleTx(q)
	c.kickTx()
}

// RxConsumerUpdate publishes a new receive consumer counter, freeing slots.
//
//voyager:noalloc
func (c *Ctrl) RxConsumerUpdate(q int, consumer uint32) {
	c.checkQ(q)
	rq := &c.rx[q]
	if consumer-rq.consumer > rq.used() {
		panic(fmt.Sprintf("ctrl: rx%d consumer %d passes producer %d", q, consumer, rq.producer)) //voyager:alloc-ok(panic path)
	}
	rq.consumer = consumer
	c.shadowRx(q)
	c.sampleRx(q)
	if rq.holding && !rq.full() {
		rq.holding = false
		c.net.Poke()
	}
}

// TxConsumer returns the transmit consumer counter (how far CTRL has
// launched).
//
//voyager:noalloc
func (c *Ctrl) TxConsumer(q int) uint32 { c.checkQ(q); return c.tx[q].consumer }

// TxProducer returns the transmit producer counter.
//
//voyager:noalloc
func (c *Ctrl) TxProducer(q int) uint32 { c.checkQ(q); return c.tx[q].producer }

// RxProducer returns the receive producer counter (messages available).
//
//voyager:noalloc
func (c *Ctrl) RxProducer(q int) uint32 { c.checkQ(q); return c.rx[q].producer }

// RxConsumer returns the receive consumer counter.
//
//voyager:noalloc
func (c *Ctrl) RxConsumer(q int) uint32 { c.checkQ(q); return c.rx[q].consumer }

// TxShutdown reports whether queue q was shut down by protection.
func (c *Ctrl) TxShutdown(q int) bool { c.checkQ(q); return c.tx[q].shutdown }

// TxBacklog totals the work CTRL has accepted but not finished launching:
// produced-but-unconsumed transmit descriptors across every queue, plus
// launches deferred by fabric backpressure. Zero is part of the machine's
// end-of-run quiescence invariant — a nonzero backlog after the event queue
// drains means a send was accepted and then silently wedged.
func (c *Ctrl) TxBacklog() int {
	n := 0
	for q := range c.tx {
		n += int(c.tx[q].pending())
	}
	n += len(c.emitPending[0]) + len(c.emitPending[1])
	return n
}

// shadowTx mirrors tx pointers into SRAM so processors can poll them.
//
//voyager:noalloc
func (c *Ctrl) shadowTx(q int) {
	tq := &c.tx[q]
	if tq.cfg.Buf == nil {
		return
	}
	var b [8]byte
	binary.BigEndian.PutUint32(b[0:], tq.producer)
	binary.BigEndian.PutUint32(b[4:], tq.consumer)
	tq.cfg.Buf.Write(tq.cfg.ShadowBase, b[:])
}

//voyager:noalloc
func (c *Ctrl) shadowRx(q int) {
	rq := &c.rx[q]
	if rq.cfg.Buf == nil {
		return
	}
	var b [8]byte
	binary.BigEndian.PutUint32(b[0:], rq.producer)
	binary.BigEndian.PutUint32(b[4:], rq.consumer)
	rq.cfg.Buf.Write(rq.cfg.ShadowBase, b[:])
}

// SlotOffset returns the SRAM offset of slot (ptr mod entries) of a queue
// laid out at base with the given entry size.
//
//voyager:noalloc
func SlotOffset(base uint32, entryBytes, entries int, ptr uint32) uint32 {
	return base + uint32(int(ptr%uint32(entries))*entryBytes)
}

// --- translation table ---

// TransEntry is one destination translation table entry.
type TransEntry struct {
	PhysNode uint16
	LogicalQ uint16
	Priority arctic.Priority
	Valid    bool
}

// WriteTransEntry stores a translation entry at index idx (setup/firmware
// path; timing is the caller's concern).
func (c *Ctrl) WriteTransEntry(idx int, e TransEntry) {
	if idx < 0 || idx >= c.cfg.TransTableEntries {
		panic(fmt.Sprintf("ctrl: translation index %d out of range", idx))
	}
	var b [8]byte
	binary.BigEndian.PutUint16(b[0:], e.PhysNode)
	binary.BigEndian.PutUint16(b[2:], e.LogicalQ)
	flags := byte(0)
	if e.Valid {
		flags |= 1
	}
	if e.Priority == arctic.High {
		flags |= 2
	}
	b[4] = flags
	c.sSRAM.Write(c.cfg.TransTableBase+uint32(idx)*8, b[:])
}

// readTransEntry fetches and decodes entry idx from sSRAM.
//
//voyager:noalloc
func (c *Ctrl) readTransEntry(idx int) TransEntry {
	var b [8]byte
	c.sSRAM.Read(c.cfg.TransTableBase+uint32(idx)*8, b[:])
	pr := arctic.Low
	if b[4]&2 != 0 {
		pr = arctic.High
	}
	return TransEntry{
		PhysNode: binary.BigEndian.Uint16(b[0:]),
		LogicalQ: binary.BigEndian.Uint16(b[2:]),
		Priority: pr,
		Valid:    b[4]&1 != 0,
	}
}
