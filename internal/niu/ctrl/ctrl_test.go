package ctrl

import (
	"bytes"
	"encoding/binary"
	"testing"

	"startvoyager/internal/arctic"
	"startvoyager/internal/bus"
	"startvoyager/internal/niu/sram"
	"startvoyager/internal/niu/txrx"
	"startvoyager/internal/sim"
)

// fakeNet records injections and can loop them back into another CTRL.
type fakeNet struct {
	eng      *sim.Engine
	injected []injRec
	peer     *Ctrl
	delay    sim.Time
	pokes    int
	// stalled holds refused loopback deliveries until the peer pokes.
	stalled []stalledRec
}

type injRec struct {
	dst  int
	pri  arctic.Priority
	wire []byte
}

type stalledRec struct {
	wire []byte
	tag  sim.MsgTag
}

func (n *fakeNet) Inject(dst int, pri arctic.Priority, wire []byte, tag sim.MsgTag) {
	n.injected = append(n.injected, injRec{dst, pri, wire})
	if n.peer != nil {
		w := append([]byte(nil), wire...)
		n.eng.Schedule(n.delay, func() { n.deliver(w, tag) })
	}
}

func (n *fakeNet) deliver(w []byte, tag sim.MsgTag) {
	if len(n.stalled) > 0 {
		n.stalled = append(n.stalled, stalledRec{w, tag})
		return
	}
	if !n.peer.TryReceive(w, tag) {
		n.stalled = append(n.stalled, stalledRec{w, tag})
	}
}

func (n *fakeNet) Ready(arctic.Priority) bool { return true }

func (n *fakeNet) Poke() {
	n.pokes++
	for len(n.stalled) > 0 {
		if !n.peer.TryReceive(n.stalled[0].wire, n.stalled[0].tag) {
			return
		}
		n.stalled = n.stalled[1:]
	}
}

// fakeBus serves bus ops from a flat memory after a fixed delay.
type fakeBus struct {
	eng   *sim.Engine
	memry []byte
	delay sim.Time
	ops   []*bus.Transaction
}

func (b *fakeBus) IssueBusOp(tx *bus.Transaction, done func()) {
	b.ops = append(b.ops, tx)
	b.eng.Schedule(b.delay, func() {
		if int(tx.Addr)+len(tx.Data) <= len(b.memry) {
			if tx.Kind.IsRead() {
				copy(tx.Data, b.memry[tx.Addr:])
			} else {
				copy(b.memry[tx.Addr:], tx.Data)
			}
		}
		done()
	})
}

// fakeInts records interrupts.
type fakeInts struct {
	rx   []int
	prot []int
}

func (f *fakeInts) RxInterrupt(q int)   { f.rx = append(f.rx, q) }
func (f *fakeInts) ProtViolation(q int) { f.prot = append(f.prot, q) }

type rig struct {
	eng  *sim.Engine
	c    *Ctrl
	net  *fakeNet
	busp *fakeBus
	ints *fakeInts
	aS   *sram.SRAM
	sS   *sram.SRAM
}

func newRig(t *testing.T, node int) *rig {
	if t != nil {
		t.Helper()
	}
	eng := sim.NewEngine()
	aS := sram.New("aSRAM", 64<<10)
	sS := sram.New("sSRAM", 64<<10)
	cls := sram.NewCls(1024)
	cfg := DefaultConfig()
	cfg.ScomaRange = bus.Range{Base: 0x8000_0000, Size: 1024 * bus.LineSize}
	c := New(eng, node, aS, sS, cls, cfg)
	net := &fakeNet{eng: eng, delay: 300}
	busp := &fakeBus{eng: eng, memry: make([]byte, 1<<20), delay: 150}
	ints := &fakeInts{}
	c.SetPorts(busp, net, ints)
	return &rig{eng: eng, c: c, net: net, busp: busp, ints: ints, aS: aS, sS: sS}
}

// stdTx configures tx queue 0: 8 basic 96-byte slots at aSRAM 0x1000.
func (r *rig) stdTx(q int, translate bool) {
	r.c.ConfigureTx(q, TxConfig{
		Buf: r.aS, Base: 0x1000 + uint32(q)*0x400, EntryBytes: 96, Entries: 8,
		ShadowBase: 0x100 + uint32(q)*8,
		Translate:  translate, AndMask: 0xFFFF, OrMask: 0,
		AllowedDests: ^uint64(0), Enabled: true, RawAllowed: true,
	})
}

// stdRx configures rx queue q with the given logical id.
func (r *rig) stdRx(q int, logical uint16, full FullPolicy) {
	r.c.ConfigureRx(q, RxConfig{
		Buf: r.aS, Base: 0x4000 + uint32(q)*0x400, EntryBytes: 96, Entries: 4,
		ShadowBase: 0x200 + uint32(q)*8,
		Logical:    logical, Full: full, Enabled: true,
	})
}

// composeBasic writes a basic data message into tx queue q's next slot and
// returns the new producer value.
func (r *rig) composeBasic(q int, dest uint16, flags byte, payload []byte) uint32 {
	return r.composeBasicAt(q, r.c.TxProducer(q), dest, flags, payload)
}

// composeBasicAt composes into the slot for pointer value ptr.
func (r *rig) composeBasicAt(q int, ptr uint32, dest uint16, flags byte, payload []byte) uint32 {
	cfg := r.c.TxQueueConfig(q)
	p := ptr
	off := SlotOffset(cfg.Base, cfg.EntryBytes, cfg.Entries, p)
	slot := make([]byte, cfg.EntryBytes)
	binary.BigEndian.PutUint16(slot[0:], dest)
	slot[2] = flags
	slot[3] = byte(len(payload))
	copy(slot[8:], payload)
	cfg.Buf.Write(off, slot)
	return p + 1
}

func TestRawTransmit(t *testing.T) {
	r := newRig(t, 3)
	r.stdTx(0, false)
	p := r.composeBasic(0, 5, SlotFlagRaw, []byte("ping"))
	r.c.TxProducerUpdate(0, p)
	r.eng.Run()
	if len(r.net.injected) != 1 {
		t.Fatalf("injected %d packets", len(r.net.injected))
	}
	in := r.net.injected[0]
	if in.dst != 5 || in.pri != arctic.Low {
		t.Fatalf("dst=%d pri=%v", in.dst, in.pri)
	}
	f, err := txrx.Decode(in.wire)
	if err != nil {
		t.Fatal(err)
	}
	if f.SrcNode != 3 || !bytes.Equal(f.Payload, []byte("ping")) {
		t.Fatalf("frame %+v", f)
	}
	if r.c.TxConsumer(0) != 1 {
		t.Fatal("consumer not advanced")
	}
	// Shadow pointers must be visible in SRAM.
	var sh [8]byte
	r.aS.Read(0x100, sh[:])
	if binary.BigEndian.Uint32(sh[0:]) != 1 || binary.BigEndian.Uint32(sh[4:]) != 1 {
		t.Fatalf("shadow = %v", sh)
	}
}

func TestTranslatedTransmit(t *testing.T) {
	r := newRig(t, 0)
	r.stdTx(0, true)
	r.c.WriteTransEntry(7, TransEntry{PhysNode: 9, LogicalQ: 42, Priority: arctic.High, Valid: true})
	p := r.composeBasic(0, 7, 0, []byte("x"))
	r.c.TxProducerUpdate(0, p)
	r.eng.Run()
	if len(r.net.injected) != 1 {
		t.Fatal("nothing injected")
	}
	in := r.net.injected[0]
	f, _ := txrx.Decode(in.wire)
	if in.dst != 9 || in.pri != arctic.High || f.LogicalQ != 42 {
		t.Fatalf("translation wrong: dst=%d pri=%v lq=%d", in.dst, in.pri, f.LogicalQ)
	}
}

func TestTranslationMasks(t *testing.T) {
	r := newRig(t, 0)
	r.c.ConfigureTx(0, TxConfig{
		Buf: r.aS, Base: 0x1000, EntryBytes: 96, Entries: 8, ShadowBase: 0x100,
		Translate: true, AndMask: 0x000F, OrMask: 0x0020,
		AllowedDests: ^uint64(0), Enabled: true,
	})
	// virt 0x1234 -> (0x1234 & 0xF) | 0x20 = 0x24.
	r.c.WriteTransEntry(0x24, TransEntry{PhysNode: 2, LogicalQ: 1, Valid: true})
	p := r.composeBasic(0, 0x1234, 0, []byte("m"))
	r.c.TxProducerUpdate(0, p)
	r.eng.Run()
	if len(r.net.injected) != 1 || r.net.injected[0].dst != 2 {
		t.Fatalf("mask translation failed: %+v", r.net.injected)
	}
}

func TestProtectionShutdown(t *testing.T) {
	r := newRig(t, 0)
	r.c.ConfigureTx(0, TxConfig{
		Buf: r.aS, Base: 0x1000, EntryBytes: 96, Entries: 8, ShadowBase: 0x100,
		Translate: true, AndMask: 0xFFFF,
		AllowedDests: 1 << 4, Enabled: true, // only node 4 permitted
	})
	r.c.WriteTransEntry(1, TransEntry{PhysNode: 5, LogicalQ: 0, Valid: true}) // forbidden node
	p := r.composeBasic(0, 1, 0, []byte("evil"))
	r.c.TxProducerUpdate(0, p)
	r.eng.Run()
	if len(r.net.injected) != 0 {
		t.Fatal("forbidden message escaped")
	}
	if !r.c.TxShutdown(0) {
		t.Fatal("queue not shut down")
	}
	if len(r.ints.prot) != 1 || r.ints.prot[0] != 0 {
		t.Fatalf("prot interrupts %v", r.ints.prot)
	}
	if r.c.Stats().ProtViolations != 1 {
		t.Fatalf("stats %+v", r.c.Stats())
	}
	// Firmware fixes the table and re-enables; the held message launches.
	r.c.WriteTransEntry(1, TransEntry{PhysNode: 4, LogicalQ: 0, Valid: true})
	r.eng.Schedule(0, func() { r.c.SetTxEnabled(0, true) })
	r.eng.Run()
	if len(r.net.injected) != 1 || r.net.injected[0].dst != 4 {
		t.Fatalf("after re-enable: %+v", r.net.injected)
	}
}

func TestInvalidTranslationShutsDown(t *testing.T) {
	r := newRig(t, 0)
	r.stdTx(0, true)
	p := r.composeBasic(0, 99, 0, []byte("m")) // entry 99 never written: invalid
	r.c.TxProducerUpdate(0, p)
	r.eng.Run()
	if !r.c.TxShutdown(0) || len(r.net.injected) != 0 {
		t.Fatal("invalid translation not caught")
	}
}

func TestPriorityArbitration(t *testing.T) {
	r := newRig(t, 0)
	r.stdTx(0, false)
	r.stdTx(1, false)
	r.c.SetTxPriority(0, 5) // worse class
	r.c.SetTxPriority(1, 1) // better class
	// Two messages in queue 0, one in queue 1. Queue 0's first message
	// starts immediately (the arbiter is idle when its pointer lands), but
	// the next arbitration must prefer queue 1 over queue 0's second.
	r.composeBasicAt(0, 0, 1, SlotFlagRaw, []byte("low-1"))
	p0 := r.composeBasicAt(0, 1, 1, SlotFlagRaw, []byte("low-2"))
	p1 := r.composeBasic(1, 2, SlotFlagRaw, []byte("high"))
	r.eng.Schedule(0, func() {
		r.c.TxProducerUpdate(0, p0)
		r.c.TxProducerUpdate(1, p1)
	})
	r.eng.Run()
	if len(r.net.injected) != 3 {
		t.Fatalf("injected %d", len(r.net.injected))
	}
	dsts := []int{r.net.injected[0].dst, r.net.injected[1].dst, r.net.injected[2].dst}
	if dsts[1] != 2 {
		t.Fatalf("priority arbitration failed: order %v", dsts)
	}
}

func TestTagOn(t *testing.T) {
	r := newRig(t, 0)
	r.stdTx(0, false)
	// TagOn data in sSRAM at 0x3000: 48 bytes (1.5 lines).
	tag := bytes.Repeat([]byte{0x7, 0xA, 0x6}, 16)
	r.sS.Write(0x3000, tag)
	cfg := r.c.TxQueueConfig(0)
	p := r.c.TxProducer(0)
	off := SlotOffset(cfg.Base, cfg.EntryBytes, cfg.Entries, p)
	slot := make([]byte, 96)
	binary.BigEndian.PutUint16(slot[0:], 1)
	slot[2] = SlotFlagRaw | SlotFlagTagOn
	slot[3] = 5 // inline bytes
	slot[4], slot[5], slot[6] = 0x00, 0x30, 0x00
	slot[7] = 3 // 3 * 16 = 48 bytes
	copy(slot[8:], "inlin")
	r.aS.Write(off, slot)
	r.c.TxProducerUpdate(0, p+1)
	r.eng.Run()
	if len(r.net.injected) != 1 {
		t.Fatal("no packet")
	}
	f, _ := txrx.Decode(r.net.injected[0].wire)
	if len(f.Payload) != 5+48 {
		t.Fatalf("payload %d bytes", len(f.Payload))
	}
	if !bytes.Equal(f.Payload[:5], []byte("inlin")) || !bytes.Equal(f.Payload[5:], tag) {
		t.Fatal("tagon payload wrong")
	}
	if r.c.Stats().TagOns != 1 {
		t.Fatalf("stats %+v", r.c.Stats())
	}
}

func TestRxDelivery(t *testing.T) {
	r := newRig(t, 1)
	r.stdRx(0, 7, Hold)
	f := &txrx.Frame{Kind: txrx.Data, SrcNode: 4, LogicalQ: 7, Payload: []byte("hello")}
	w, _ := txrx.Encode(f)
	if !r.c.TryReceive(w, sim.MsgTag{}) {
		t.Fatal("refused")
	}
	r.eng.Run()
	if r.c.RxProducer(0) != 1 {
		t.Fatal("producer not bumped")
	}
	src, lq, pay := r.c.ReadRxSlot(0, 0)
	if src != 4 || lq != 7 || !bytes.Equal(pay, []byte("hello")) {
		t.Fatalf("slot %d %d %q", src, lq, pay)
	}
	// Shadow producer visible in SRAM.
	var sh [8]byte
	r.aS.Read(0x200, sh[:])
	if binary.BigEndian.Uint32(sh[0:]) != 1 {
		t.Fatal("rx shadow not updated")
	}
}

func TestRxInterrupt(t *testing.T) {
	r := newRig(t, 1)
	r.c.ConfigureRx(2, RxConfig{Buf: r.aS, Base: 0x4000, EntryBytes: 96, Entries: 4,
		ShadowBase: 0x200, Logical: 9, Interrupt: true, Enabled: true})
	w, _ := txrx.Encode(&txrx.Frame{Kind: txrx.Data, LogicalQ: 9, Payload: []byte("i")})
	r.c.TryReceive(w, sim.MsgTag{})
	r.eng.Run()
	if len(r.ints.rx) != 1 || r.ints.rx[0] != 2 {
		t.Fatalf("rx interrupts %v", r.ints.rx)
	}
}

func TestRxMissQueue(t *testing.T) {
	r := newRig(t, 1)
	r.stdRx(0, 7, Hold)
	r.stdRx(NumQueues-1, 0xFFFF, Hold) // miss queue
	w, _ := txrx.Encode(&txrx.Frame{Kind: txrx.Data, LogicalQ: 1234, Payload: []byte("m")})
	if !r.c.TryReceive(w, sim.MsgTag{}) {
		t.Fatal("refused")
	}
	r.eng.Run()
	if r.c.RxProducer(NumQueues-1) != 1 {
		t.Fatal("miss queue did not get the message")
	}
	if r.c.Stats().RxMisses != 1 {
		t.Fatalf("stats %+v", r.c.Stats())
	}
}

func TestRxFullPolicies(t *testing.T) {
	// Hold: refuse.
	r := newRig(t, 1)
	r.stdRx(0, 7, Hold)
	w, _ := txrx.Encode(&txrx.Frame{Kind: txrx.Data, LogicalQ: 7, Payload: []byte("m")})
	for i := 0; i < 4; i++ {
		if !r.c.TryReceive(w, sim.MsgTag{}) {
			t.Fatalf("refused at %d", i)
		}
	}
	if r.c.TryReceive(w, sim.MsgTag{}) {
		t.Fatal("accepted into full Hold queue")
	}
	r.eng.Run()
	if r.c.Stats().RxHolds != 1 {
		t.Fatalf("stats %+v", r.c.Stats())
	}
	// Consumer frees a slot: CTRL must poke the network.
	r.eng.Schedule(0, func() { r.c.RxConsumerUpdate(0, 1) })
	r.eng.Run()
	if r.net.pokes != 1 {
		t.Fatalf("pokes = %d", r.net.pokes)
	}

	// Drop.
	r2 := newRig(t, 1)
	r2.stdRx(0, 7, Drop)
	for i := 0; i < 5; i++ {
		if !r2.c.TryReceive(w, sim.MsgTag{}) {
			t.Fatal("drop policy refused")
		}
	}
	r2.eng.Run()
	if r2.c.Stats().RxDrops != 1 || r2.c.RxProducer(0) != 4 {
		t.Fatalf("drops=%d produced=%d", r2.c.Stats().RxDrops, r2.c.RxProducer(0))
	}

	// Divert.
	r3 := newRig(t, 1)
	r3.stdRx(0, 7, Divert)
	r3.stdRx(NumQueues-1, 0xFFFF, Hold)
	for i := 0; i < 5; i++ {
		if !r3.c.TryReceive(w, sim.MsgTag{}) {
			t.Fatal("divert policy refused")
		}
	}
	r3.eng.Run()
	if r3.c.RxProducer(0) != 4 || r3.c.RxProducer(NumQueues-1) != 1 {
		t.Fatalf("divert: q0=%d miss=%d", r3.c.RxProducer(0), r3.c.RxProducer(NumQueues-1))
	}
}

func TestExpressComposeAndReceive(t *testing.T) {
	// Two CTRLs looped back through the fake net.
	r := newRig(t, 0)
	peer := newRig(t, 1)
	// Share one engine: rebuild peer on r's engine for loopback.
	peerC := New(r.eng, 1, peer.aS, peer.sS, sram.NewCls(16), DefaultConfig())
	peerNet := &fakeNet{eng: r.eng}
	peerC.SetPorts(&fakeBus{eng: r.eng, memry: make([]byte, 4096)}, peerNet, &fakeInts{})
	r.net.peer = peerC
	r.net.delay = 500

	// Express tx queue on node 0, translated through entry 3.
	r.c.ConfigureTx(1, TxConfig{Buf: r.aS, Base: 0x2000, EntryBytes: 8, Entries: 16,
		ShadowBase: 0x110, Express: true, Translate: true, AndMask: 0xFFFF,
		AllowedDests: ^uint64(0), Enabled: true})
	r.c.WriteTransEntry(3, TransEntry{PhysNode: 1, LogicalQ: 70, Valid: true})
	// Express rx queue on node 1.
	peerC.ConfigureRx(2, RxConfig{Buf: peer.aS, Base: 0x2000, EntryBytes: 8, Entries: 16,
		ShadowBase: 0x110, Logical: 70, Express: true, Enabled: true})

	r.eng.Schedule(0, func() { r.c.ExpressCompose(1, 3, []byte{1, 2, 3, 4, 5}) })
	r.eng.Run()

	if peerC.RxProducer(2) != 1 {
		t.Fatal("express message not delivered")
	}
	word := peerC.ExpressReceive(2)
	if word[0] != 0x80 {
		t.Fatalf("valid flag missing: %v", word)
	}
	if binary.BigEndian.Uint16(word[1:]) != 0 {
		t.Fatalf("src = %d", binary.BigEndian.Uint16(word[1:]))
	}
	if !bytes.Equal(word[3:8], []byte{1, 2, 3, 4, 5}) {
		t.Fatalf("payload %v", word[3:8])
	}
	if peerC.RxConsumer(2) != 1 {
		t.Fatal("express receive did not free the slot")
	}
	// Empty queue: canonical empty message.
	empty := peerC.ExpressReceive(2)
	if empty != [8]byte{} {
		t.Fatalf("empty = %v", empty)
	}
}

func TestCmdSendMsg(t *testing.T) {
	r := newRig(t, 2)
	done := false
	r.eng.Schedule(0, func() {
		r.c.IssueCommand(0, &SendMsg{
			Base:  Base{Done: func() { done = true }},
			Frame: &txrx.Frame{Kind: txrx.Data, LogicalQ: 5, Payload: []byte("fw")},
			Dest:  7, Priority: arctic.High,
		})
	})
	r.eng.Run()
	if !done || len(r.net.injected) != 1 {
		t.Fatalf("done=%v injected=%d", done, len(r.net.injected))
	}
	if r.net.injected[0].dst != 7 || r.net.injected[0].pri != arctic.High {
		t.Fatal("wrong routing")
	}
}

func TestCmdOrdering(t *testing.T) {
	r := newRig(t, 0)
	var order []string
	r.eng.Schedule(0, func() {
		r.c.IssueCommand(0, &CopySram{Base: Base{Done: func() { order = append(order, "copy1") }},
			From: r.aS, FromOff: 0, To: r.sS, ToOff: 0x100, Len: 512})
		r.c.IssueCommand(0, &CopySram{Base: Base{Done: func() { order = append(order, "copy2") }},
			From: r.aS, FromOff: 512, To: r.sS, ToOff: 0x300, Len: 8})
		r.c.IssueCommand(0, &Configure{Base: Base{Done: func() { order = append(order, "cfg") }},
			Fn: func(c *Ctrl) {}})
	})
	r.eng.Run()
	want := []string{"copy1", "copy2", "cfg"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v", order)
		}
	}
}

func TestCmdBusOp(t *testing.T) {
	r := newRig(t, 0)
	copy(r.busp.memry[0x500:], []byte("dramdata"))
	r.aS.Write(0x600, []byte("sramsrc!"))
	r.eng.Schedule(0, func() {
		// Read DRAM word into aSRAM.
		r.c.IssueCommand(0, &BusOp{
			Tx:    &bus.Transaction{Kind: bus.ReadWord, Addr: 0x500, Data: make([]byte, 8)},
			ToBuf: r.aS, ToOff: 0x700,
		})
		// Write aSRAM word to DRAM.
		r.c.IssueCommand(0, &BusOp{
			Tx:      &bus.Transaction{Kind: bus.WriteWord, Addr: 0x508, Data: make([]byte, 8)},
			FromBuf: r.aS, FromOff: 0x600,
		})
	})
	r.eng.Run()
	got := make([]byte, 8)
	r.aS.Read(0x700, got)
	if !bytes.Equal(got, []byte("dramdata")) {
		t.Fatalf("bus read into SRAM: %q", got)
	}
	if !bytes.Equal(r.busp.memry[0x508:0x510], []byte("sramsrc!")) {
		t.Fatalf("bus write from SRAM: %q", r.busp.memry[0x508:0x510])
	}
}

func TestBlockRead(t *testing.T) {
	r := newRig(t, 0)
	data := bytes.Repeat([]byte{0xAB}, 4096)
	copy(r.busp.memry[0x2000:], data)
	done := false
	r.eng.Schedule(0, func() {
		r.c.IssueCommand(0, &BlockRead{Base: Base{Done: func() { done = true }},
			DramAddr: 0x2000, SramOff: 0x8000, Len: 4096})
	})
	r.eng.Run()
	if !done {
		t.Fatal("block read incomplete")
	}
	got := make([]byte, 4096)
	r.aS.Read(0x8000, got)
	if !bytes.Equal(got, data) {
		t.Fatal("block read data wrong")
	}
	if len(r.busp.ops) != 128 {
		t.Fatalf("bus ops = %d, want 128 lines", len(r.busp.ops))
	}
	if r.c.Stats().BlockReads != 1 {
		t.Fatalf("stats %+v", r.c.Stats())
	}
}

func TestBlockReadDoesNotStallQueue(t *testing.T) {
	// A block read is background work: a command issued after it must not
	// wait for its completion.
	r := newRig(t, 0)
	var order []string
	r.eng.Schedule(0, func() {
		r.c.IssueCommand(0, &BlockRead{Base: Base{Done: func() { order = append(order, "block") }},
			DramAddr: 0, SramOff: 0, Len: 4096})
		r.c.IssueCommand(0, &Configure{Base: Base{Done: func() { order = append(order, "cfg") }},
			Fn: func(c *Ctrl) {}})
	})
	r.eng.Run()
	if len(order) != 2 || order[0] != "cfg" || order[1] != "block" {
		t.Fatalf("order %v", order)
	}
}

func TestBlockTxToRemoteDram(t *testing.T) {
	// Node 0 block-transmits 1 KB of aSRAM into node 1's DRAM, with a
	// completion notification into logical queue 30.
	r := newRig(t, 0)
	peerC := New(r.eng, 1, sram.New("a1", 64<<10), sram.New("s1", 64<<10),
		sram.NewCls(16), DefaultConfig())
	peerBus := &fakeBus{eng: r.eng, memry: make([]byte, 1<<20), delay: 150}
	peerC.SetPorts(peerBus, &fakeNet{eng: r.eng}, &fakeInts{})
	peerC.ConfigureRx(0, RxConfig{Buf: peerC.aSRAM, Base: 0x4000, EntryBytes: 96,
		Entries: 8, ShadowBase: 0x200, Logical: 30, Enabled: true})
	r.net.peer = peerC
	r.net.delay = 300

	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	r.aS.Write(0xA000, payload)
	done := false
	r.eng.Schedule(0, func() {
		r.c.IssueCommand(0, &BlockTx{Base: Base{Done: func() { done = true }},
			Buf: r.aS, SramOff: 0xA000, Len: 1024,
			DestNode: 1, DestAddr: 0x3000,
			NotifyQ: 30, NotifyPayload: []byte("xfer-done")})
	})
	r.eng.Run()
	if !done {
		t.Fatal("block tx incomplete")
	}
	if !bytes.Equal(peerBus.memry[0x3000:0x3400], payload) {
		t.Fatal("remote DRAM content wrong")
	}
	// 1024/64 = 16 data packets + 1 notify.
	if len(r.net.injected) != 17 {
		t.Fatalf("injected %d packets", len(r.net.injected))
	}
	if peerC.RxProducer(0) != 1 {
		t.Fatal("notification not delivered")
	}
	_, _, pay := peerC.ReadRxSlot(0, 0)
	if !bytes.Equal(pay, []byte("xfer-done")) {
		t.Fatalf("notify payload %q", pay)
	}
}

func TestRemoteSetClsAndWriteDramCls(t *testing.T) {
	r := newRig(t, 0)
	scomaBase := uint32(0x8000_0000)
	// SetCls for 4 lines starting at line 2.
	w, _ := txrx.Encode(&txrx.Frame{Kind: txrx.Cmd, Op: txrx.CmdSetCls,
		Addr: scomaBase + 2*bus.LineSize, Aux: uint16(sram.CLPending), Count: 4})
	r.c.TryReceive(w, sim.MsgTag{})
	r.eng.Run()
	for i := 2; i < 6; i++ {
		if r.c.Cls().Get(i) != sram.CLPending {
			t.Fatalf("line %d = %v", i, r.c.Cls().Get(i))
		}
	}
	// WriteDramCls: writes 64 bytes and marks 2 lines ReadOnly.
	data := bytes.Repeat([]byte{5}, 64)
	w2, _ := txrx.Encode(&txrx.Frame{Kind: txrx.Cmd, Op: txrx.CmdWriteDramCls,
		Addr: scomaBase + 2*bus.LineSize, Aux: uint16(sram.CLReadOnly), Payload: data})
	r.c.TryReceive(w2, sim.MsgTag{})
	r.eng.Run()
	if r.c.Cls().Get(2) != sram.CLReadOnly || r.c.Cls().Get(3) != sram.CLReadOnly {
		t.Fatal("cls not updated by WriteDramCls")
	}
	if r.c.Cls().Get(4) != sram.CLPending {
		t.Fatal("WriteDramCls overshot")
	}
	if len(r.busp.ops) != 2 {
		t.Fatalf("bus ops %d, want 2 line writes", len(r.busp.ops))
	}
}

func TestRemoteWriteSram(t *testing.T) {
	r := newRig(t, 0)
	w, _ := txrx.Encode(&txrx.Frame{Kind: txrx.Cmd, Op: txrx.CmdWriteSram,
		Addr: 0x1234, Payload: []byte("remote!!")})
	r.c.TryReceive(w, sim.MsgTag{})
	r.eng.Run()
	got := make([]byte, 8)
	r.aS.Read(0x1234, got)
	if !bytes.Equal(got, []byte("remote!!")) {
		t.Fatalf("got %q", got)
	}
}

func TestProducerOverrunPanics(t *testing.T) {
	r := newRig(t, 0)
	r.stdTx(0, false)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on producer overrun")
		}
	}()
	r.c.TxProducerUpdate(0, 9) // 9 > 8 entries
}

func TestBlockChecks(t *testing.T) {
	r := newRig(t, 0)
	bad := []*BlockRead{
		{DramAddr: 0, SramOff: 0, Len: 8192},       // > page
		{DramAddr: 16, SramOff: 0, Len: 64},        // unaligned
		{DramAddr: 4096 - 32, SramOff: 0, Len: 64}, // crosses page
	}
	for i, cmd := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			cmd.exec(r.c, func() {})
		}()
	}
}
