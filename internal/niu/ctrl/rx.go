package ctrl

import (
	"encoding/binary"
	"fmt"

	"startvoyager/internal/bus"
	"startvoyager/internal/niu/sram"
	"startvoyager/internal/niu/txrx"
	"startvoyager/internal/sim"
)

// Receive slot formats.
//
// Basic queues (EntryBytes >= 8): src(2) logicalQ(2) len(2) reserved(2),
// payload from byte 8.
//
// Express queues (EntryBytes == 8): valid(1)=0x80 src(2) payload(5).

// TryReceive is the RxU entry point: the fabric offers a wire-encoded frame
// with its sideband trace tag. It reports acceptance; refusal (Hold policy
// on a full queue) stalls the packet's network lane until CTRL pokes the
// fabric.
// Frame ownership: the frame is decoded into a pooled record (frameGet) and
// recycled by whoever holds it when it dies — the drop paths here, the rxOp
// landing in acceptInto, or (on Hold refusal) this function before returning
// false. Command frames leave the pool for good: remote command execution
// retains them past this call.
//
//voyager:noalloc decodes into a pooled frame record
func (c *Ctrl) TryReceive(wire []byte, tag sim.MsgTag) bool {
	frame := c.frameGet()
	if err := txrx.DecodeInto(frame, wire); err != nil {
		c.framePut(frame)
		if c.cfg.StrictRx {
			panic(fmt.Sprintf("ctrl: node %d received garbage: %v", c.myNode, err)) //voyager:alloc-ok(panic path)
		}
		// A corrupted or malformed frame is network damage, not a protocol
		// event: count it, trace it, and accept-and-discard so the fabric
		// lane is freed (holding garbage would wedge the link forever).
		// The sideband trace tag survives the payload corruption, so the
		// drop stays attributed to its message.
		c.stats.RxGarbage++
		if c.eng.Observed() {
			c.eng.Instant(c.myNode, "ctrl", "rx-garbage", sim.Str("err", err.Error())) //voyager:alloc-ok(opt-in diagnostics on the garbage path)
			c.traceMsg("ctrl", "msg-drop", tag, sim.Str("why", "garbage"))
		}
		return true
	}
	frame.Trace = tag
	if frame.Kind == txrx.Cmd {
		// Remote commands always land in the (unbounded-from-the-network's-
		// view, firmware-bounded in practice) remote command queue. The
		// frame is not recycled — command execution owns it from here.
		c.remote.enqueue(frame) //voyager:alloc-ok(command frames leave the alloc-free path here)
		return true
	}
	q := c.lookupRx(frame.LogicalQ)
	if q < 0 {
		// Unresident logical queue: divert to the miss queue.
		c.stats.RxMisses++
		q = c.cfg.MissQueue
		if q < 0 {
			c.stats.RxDrops++
			c.traceMsg("ctrl", "msg-drop", frame.Trace, sim.Str("why", "no-queue"))
			c.framePut(frame)
			return true
		}
	}
	if !c.acceptInto(q, frame) {
		c.framePut(frame)
		return false
	}
	return true
}

// lookupRx is the cache-tag style search for a resident logical queue.
//
//voyager:noalloc
func (c *Ctrl) lookupRx(logical uint16) int {
	for i := 0; i < NumQueues; i++ {
		rq := &c.rx[i]
		if rq.cfg.Buf != nil && rq.cfg.Enabled && rq.cfg.Logical == logical {
			return i
		}
	}
	return -1
}

// acceptInto applies the full policy and, if the message is accepted,
// schedules the RxU + IBus work that lands it in SRAM. It takes ownership of
// the (pooled) frame iff it returns true; on a Hold refusal the caller still
// owns it.
//
//voyager:noalloc rides a pooled rxOp record
func (c *Ctrl) acceptInto(q int, frame *txrx.Frame) bool {
	rq := &c.rx[q]
	if rq.cfg.Buf == nil || !rq.cfg.Enabled {
		c.stats.RxDrops++
		c.traceMsg("ctrl", "msg-drop", frame.Trace, sim.Str("why", "rx-disabled"))
		c.framePut(frame)
		return true
	}
	if rq.full() {
		switch rq.cfg.Full {
		case Drop:
			c.stats.RxDrops++
			c.traceMsg("ctrl", "msg-drop", frame.Trace, sim.Str("why", "rx-full"))
			c.framePut(frame)
			return true
		case Divert:
			if q != c.cfg.MissQueue && c.cfg.MissQueue >= 0 {
				c.stats.RxMisses++
				return c.acceptInto(c.cfg.MissQueue, frame)
			}
			c.stats.RxDrops++
			c.traceMsg("ctrl", "msg-drop", frame.Trace, sim.Str("why", "rx-full"))
			c.framePut(frame)
			return true
		default: // Hold
			c.stats.RxHolds++
			rq.holding = true
			return false
		}
	}
	rq.reserved++
	ptr := rq.producer + rq.reserved - 1
	o := c.rxOpGet()
	o.q = q
	o.ptr = ptr
	o.off = SlotOffset(rq.cfg.Base, rq.cfg.EntryBytes, rq.cfg.Entries, ptr)
	o.frame = frame
	c.eng.Schedule(c.cycles(c.cfg.RxUCycles), o.moveFn)
	return true
}

// rxOp is one in-flight receive landing: RxU formatting delay, then the IBus
// move, then the SRAM write that publishes the message. Pooled (not staged
// on the Ctrl) because several landings can be in flight at once
// (rq.reserved tracks them). It owns its frame until land recycles it.
type rxOp struct {
	c      *Ctrl
	q      int
	ptr    uint32
	off    uint32
	frame  *txrx.Frame
	moveFn func()
	landFn func()
}

//voyager:noalloc
func (o *rxOp) move() {
	o.c.ibusMove(o.c.rx[o.q].cfg.EntryBytes, o.landFn)
}

// land writes the slot and publishes the producer pointer. The compose
// scratch (c.rxSlot) is shared by all landings: land runs as one synchronous
// event and the slot is fully written to SRAM before it returns, so there is
// no overlap. It is zeroed first — the whole slot is SRAM-visible state and
// must not inherit bytes from a previous landing.
//
//voyager:noalloc
func (o *rxOp) land() {
	c, q, ptr, off, frame := o.c, o.q, o.ptr, o.off, o.frame
	o.frame = nil
	c.rxFree = append(c.rxFree, o) //voyager:alloc-ok(amortized: pool backing array is retained)
	rq := &c.rx[q]
	if rq.cfg.Express {
		var slot [ExpressSlotBytes]byte
		slot[0] = 0x80
		binary.BigEndian.PutUint16(slot[1:], frame.SrcNode)
		n := len(frame.Payload)
		if n > ExpressPayload {
			n = ExpressPayload
		}
		copy(slot[3:], frame.Payload[:n])
		rq.cfg.Buf.Write(off, slot[:])
	} else {
		if cap(c.rxSlot) < rq.cfg.EntryBytes {
			c.rxSlot = make([]byte, rq.cfg.EntryBytes) //voyager:alloc-ok(scratch grows once to the largest slot size)
		}
		slot := c.rxSlot[:rq.cfg.EntryBytes]
		for i := range slot {
			slot[i] = 0
		}
		binary.BigEndian.PutUint16(slot[0:], frame.SrcNode)
		binary.BigEndian.PutUint16(slot[2:], frame.LogicalQ)
		binary.BigEndian.PutUint16(slot[4:], uint16(len(frame.Payload)))
		n := len(frame.Payload)
		if n > rq.cfg.EntryBytes-SlotHeaderBytes {
			panic(fmt.Sprintf("ctrl: node %d: %d-byte message for %d-byte rx%d slots", //voyager:alloc-ok(panic path)
				c.myNode, n, rq.cfg.EntryBytes, q))
		}
		copy(slot[SlotHeaderBytes:], frame.Payload)
		rq.cfg.Buf.Write(off, slot)
	}
	if len(rq.tags) > 0 {
		rq.tags[int(ptr)%len(rq.tags)] = frame.Trace
	}
	c.traceMsg("ctrl", "msg-enq", frame.Trace, sim.Int("rxq", q))
	rq.reserved--
	rq.producer++
	c.shadowRx(q)
	c.sampleRx(q)
	c.stats.RxMessages++
	c.stats.RxBytes += uint64(len(frame.Payload))
	c.rxSizeHist.Observe(int64(len(frame.Payload)))
	c.framePut(frame)
	if rq.cfg.Interrupt && c.ints != nil {
		c.ints.RxInterrupt(q)
	}
}

// rxOpGet returns a recycled (or new) rxOp with its method values bound.
//
//voyager:noalloc
func (c *Ctrl) rxOpGet() *rxOp {
	if n := len(c.rxFree); n > 0 {
		o := c.rxFree[n-1]
		c.rxFree = c.rxFree[:n-1]
		return o
	}
	o := &rxOp{c: c}  //voyager:alloc-ok(pool warm-up; recycled thereafter)
	o.moveFn = o.move //voyager:alloc-ok(one-time method binding for the pooled record)
	o.landFn = o.land //voyager:alloc-ok(one-time method binding for the pooled record)
	return o
}

// ReadRxSlot decodes the message at the given receive pointer (a firmware /
// library convenience over the raw SRAM layout; callers account their own
// access timing).
func (c *Ctrl) ReadRxSlot(q int, ptr uint32) (src uint16, logical uint16, payload []byte) {
	c.checkQ(q)
	rq := &c.rx[q]
	off := SlotOffset(rq.cfg.Base, rq.cfg.EntryBytes, rq.cfg.Entries, ptr)
	slot := make([]byte, rq.cfg.EntryBytes)
	rq.cfg.Buf.Read(off, slot)
	if rq.cfg.Express {
		return binary.BigEndian.Uint16(slot[1:]), rq.cfg.Logical, append([]byte(nil), slot[3:8]...)
	}
	n := int(binary.BigEndian.Uint16(slot[4:]))
	return binary.BigEndian.Uint16(slot[0:]), binary.BigEndian.Uint16(slot[2:]),
		append([]byte(nil), slot[SlotHeaderBytes:SlotHeaderBytes+n]...)
}

// remoteQueue executes command frames from other nodes strictly in order.
type remoteQueue struct {
	c     *Ctrl
	items []*txrx.Frame
	busy  bool
}

func newRemoteQueue(c *Ctrl) *remoteQueue { return &remoteQueue{c: c} }

func (r *remoteQueue) enqueue(f *txrx.Frame) {
	r.items = append(r.items, f)
	r.kick()
}

func (r *remoteQueue) kick() {
	if r.busy || len(r.items) == 0 {
		return
	}
	f := r.items[0]
	r.items = r.items[1:]
	r.busy = true
	r.c.stats.RemoteCmds++
	r.c.execRemote(f, func() {
		r.busy = false
		r.kick()
	})
}

// execRemote performs one remote command.
func (c *Ctrl) execRemote(f *txrx.Frame, done func()) {
	c.traceMsg("ctrl", "msg-exec", f.Trace, sim.Str("op", f.Op.String()))
	switch f.Op {
	case txrx.CmdWriteDram, txrx.CmdWriteDramCls:
		c.writeDramLines(f.Addr, f.Payload, func() {
			if f.Op == txrx.CmdWriteDramCls {
				c.setClsForRange(f.Addr, len(f.Payload), sram.LineState(f.Aux))
			}
			done()
		})
	case txrx.CmdSetCls:
		c.setClsLines(f.Addr, int(f.Count), sram.LineState(f.Aux))
		c.eng.Schedule(c.cycles(1), done)
	case txrx.CmdNotify:
		g := &txrx.Frame{Kind: txrx.Data, SrcNode: f.SrcNode, LogicalQ: f.Aux,
			Payload: f.Payload, Trace: f.Trace}
		q := c.lookupRx(g.LogicalQ)
		if q < 0 {
			c.stats.RxMisses++
			q = c.cfg.MissQueue
		}
		if q >= 0 {
			// Notify deliveries ignore Hold (they bypass via accept-or-miss:
			// a refused notify would deadlock the remote command queue).
			if !c.acceptInto(q, g) {
				c.rx[q].holding = false
				c.stats.RxDrops++
				c.traceMsg("ctrl", "msg-drop", g.Trace, sim.Str("why", "notify-hold"))
			}
		} else {
			c.traceMsg("ctrl", "msg-drop", g.Trace, sim.Str("why", "no-queue"))
		}
		done()
	case txrx.CmdWriteSram:
		c.ibusMove(len(f.Payload), func() {
			c.aSRAM.Write(f.Addr, f.Payload)
			done()
		})
	case txrx.CmdWriteWord:
		c.ibusMove(len(f.Payload), func() {
			tx := &bus.Transaction{Kind: bus.WriteWord, Addr: f.Addr,
				Data: append([]byte(nil), f.Payload...)}
			c.busPort.IssueBusOp(tx, done)
		})
	default:
		panic(fmt.Sprintf("ctrl: node %d: unknown remote command %v", c.myNode, f.Op))
	}
}

// writeDramLines issues WriteLine bus operations for each 32-byte line of
// data starting at addr (moving the data across the IBus first).
func (c *Ctrl) writeDramLines(addr uint32, data []byte, done func()) {
	if len(data)%bus.LineSize != 0 || addr%bus.LineSize != 0 {
		panic(fmt.Sprintf("ctrl: node %d: unaligned remote DRAM write %#x+%d",
			c.myNode, addr, len(data)))
	}
	var step func(i int)
	step = func(i int) {
		if i*bus.LineSize >= len(data) {
			done()
			return
		}
		line := data[i*bus.LineSize : (i+1)*bus.LineSize]
		c.ibusMove(bus.LineSize, func() {
			tx := &bus.Transaction{Kind: bus.WriteLine, Addr: addr + uint32(i*bus.LineSize),
				Data: line}
			c.busPort.IssueBusOp(tx, func() { step(i + 1) })
		})
	}
	step(0)
}

// setClsForRange updates clsSRAM states for the lines covered by
// [addr, addr+n) — the approach-5 aBIU extension.
func (c *Ctrl) setClsForRange(addr uint32, n int, st sram.LineState) {
	c.setClsLines(addr, (n+bus.LineSize-1)/bus.LineSize, st)
}

func (c *Ctrl) setClsLines(addr uint32, count int, st sram.LineState) {
	if c.cls == nil || !c.cfg.ScomaRange.Contains(addr) {
		return
	}
	first := int(c.cfg.ScomaRange.Offset(addr)) / bus.LineSize
	c.cls.SetRange(first, first+count, st)
}
