package ctrl

import (
	"encoding/binary"
	"fmt"

	"startvoyager/internal/bus"
	"startvoyager/internal/niu/sram"
	"startvoyager/internal/niu/txrx"
	"startvoyager/internal/sim"
)

// Receive slot formats.
//
// Basic queues (EntryBytes >= 8): src(2) logicalQ(2) len(2) reserved(2),
// payload from byte 8.
//
// Express queues (EntryBytes == 8): valid(1)=0x80 src(2) payload(5).

// TryReceive is the RxU entry point: the fabric offers a wire-encoded frame
// with its sideband trace tag. It reports acceptance; refusal (Hold policy
// on a full queue) stalls the packet's network lane until CTRL pokes the
// fabric.
func (c *Ctrl) TryReceive(wire []byte, tag sim.MsgTag) bool {
	frame, err := txrx.Decode(wire)
	if err != nil {
		if c.cfg.StrictRx {
			panic(fmt.Sprintf("ctrl: node %d received garbage: %v", c.myNode, err))
		}
		// A corrupted or malformed frame is network damage, not a protocol
		// event: count it, trace it, and accept-and-discard so the fabric
		// lane is freed (holding garbage would wedge the link forever).
		// The sideband trace tag survives the payload corruption, so the
		// drop stays attributed to its message.
		c.stats.RxGarbage++
		if c.eng.Observed() {
			c.eng.Instant(c.myNode, "ctrl", "rx-garbage", sim.Str("err", err.Error()))
			c.traceMsg("ctrl", "msg-drop", tag, sim.Str("why", "garbage"))
		}
		return true
	}
	frame.Trace = tag
	if frame.Kind == txrx.Cmd {
		// Remote commands always land in the (unbounded-from-the-network's-
		// view, firmware-bounded in practice) remote command queue.
		c.remote.enqueue(frame)
		return true
	}
	q := c.lookupRx(frame.LogicalQ)
	if q < 0 {
		// Unresident logical queue: divert to the miss queue.
		c.stats.RxMisses++
		q = c.cfg.MissQueue
		if q < 0 {
			c.stats.RxDrops++
			c.traceMsg("ctrl", "msg-drop", frame.Trace, sim.Str("why", "no-queue"))
			return true
		}
	}
	return c.acceptInto(q, frame)
}

// lookupRx is the cache-tag style search for a resident logical queue.
func (c *Ctrl) lookupRx(logical uint16) int {
	for i := 0; i < NumQueues; i++ {
		rq := &c.rx[i]
		if rq.cfg.Buf != nil && rq.cfg.Enabled && rq.cfg.Logical == logical {
			return i
		}
	}
	return -1
}

// acceptInto applies the full policy and, if the message is accepted,
// schedules the RxU + IBus work that lands it in SRAM.
func (c *Ctrl) acceptInto(q int, frame *txrx.Frame) bool {
	rq := &c.rx[q]
	if rq.cfg.Buf == nil || !rq.cfg.Enabled {
		c.stats.RxDrops++
		c.traceMsg("ctrl", "msg-drop", frame.Trace, sim.Str("why", "rx-disabled"))
		return true
	}
	if rq.full() {
		switch rq.cfg.Full {
		case Drop:
			c.stats.RxDrops++
			c.traceMsg("ctrl", "msg-drop", frame.Trace, sim.Str("why", "rx-full"))
			return true
		case Divert:
			if q != c.cfg.MissQueue && c.cfg.MissQueue >= 0 {
				c.stats.RxMisses++
				return c.acceptInto(c.cfg.MissQueue, frame)
			}
			c.stats.RxDrops++
			c.traceMsg("ctrl", "msg-drop", frame.Trace, sim.Str("why", "rx-full"))
			return true
		default: // Hold
			c.stats.RxHolds++
			rq.holding = true
			return false
		}
	}
	rq.reserved++
	ptr := rq.producer + rq.reserved - 1
	off := SlotOffset(rq.cfg.Base, rq.cfg.EntryBytes, rq.cfg.Entries, ptr)
	c.eng.Schedule(c.cycles(c.cfg.RxUCycles), func() {
		c.ibusMove(rq.cfg.EntryBytes, func() {
			if rq.cfg.Express {
				var slot [ExpressSlotBytes]byte
				slot[0] = 0x80
				binary.BigEndian.PutUint16(slot[1:], frame.SrcNode)
				n := len(frame.Payload)
				if n > ExpressPayload {
					n = ExpressPayload
				}
				copy(slot[3:], frame.Payload[:n])
				rq.cfg.Buf.Write(off, slot[:])
			} else {
				slot := make([]byte, rq.cfg.EntryBytes)
				binary.BigEndian.PutUint16(slot[0:], frame.SrcNode)
				binary.BigEndian.PutUint16(slot[2:], frame.LogicalQ)
				binary.BigEndian.PutUint16(slot[4:], uint16(len(frame.Payload)))
				n := len(frame.Payload)
				if n > rq.cfg.EntryBytes-SlotHeaderBytes {
					panic(fmt.Sprintf("ctrl: node %d: %d-byte message for %d-byte rx%d slots",
						c.myNode, n, rq.cfg.EntryBytes, q))
				}
				copy(slot[SlotHeaderBytes:], frame.Payload)
				rq.cfg.Buf.Write(off, slot)
			}
			if len(rq.tags) > 0 {
				rq.tags[int(ptr)%len(rq.tags)] = frame.Trace
			}
			c.traceMsg("ctrl", "msg-enq", frame.Trace, sim.Int("rxq", q))
			rq.reserved--
			rq.producer++
			c.shadowRx(q)
			c.sampleRx(q)
			c.stats.RxMessages++
			c.stats.RxBytes += uint64(len(frame.Payload))
			c.rxSizeHist.Observe(int64(len(frame.Payload)))
			if rq.cfg.Interrupt && c.ints != nil {
				c.ints.RxInterrupt(q)
			}
		})
	})
	return true
}

// ReadRxSlot decodes the message at the given receive pointer (a firmware /
// library convenience over the raw SRAM layout; callers account their own
// access timing).
func (c *Ctrl) ReadRxSlot(q int, ptr uint32) (src uint16, logical uint16, payload []byte) {
	c.checkQ(q)
	rq := &c.rx[q]
	off := SlotOffset(rq.cfg.Base, rq.cfg.EntryBytes, rq.cfg.Entries, ptr)
	slot := make([]byte, rq.cfg.EntryBytes)
	rq.cfg.Buf.Read(off, slot)
	if rq.cfg.Express {
		return binary.BigEndian.Uint16(slot[1:]), rq.cfg.Logical, append([]byte(nil), slot[3:8]...)
	}
	n := int(binary.BigEndian.Uint16(slot[4:]))
	return binary.BigEndian.Uint16(slot[0:]), binary.BigEndian.Uint16(slot[2:]),
		append([]byte(nil), slot[SlotHeaderBytes:SlotHeaderBytes+n]...)
}

// remoteQueue executes command frames from other nodes strictly in order.
type remoteQueue struct {
	c     *Ctrl
	items []*txrx.Frame
	busy  bool
}

func newRemoteQueue(c *Ctrl) *remoteQueue { return &remoteQueue{c: c} }

func (r *remoteQueue) enqueue(f *txrx.Frame) {
	r.items = append(r.items, f)
	r.kick()
}

func (r *remoteQueue) kick() {
	if r.busy || len(r.items) == 0 {
		return
	}
	f := r.items[0]
	r.items = r.items[1:]
	r.busy = true
	r.c.stats.RemoteCmds++
	r.c.execRemote(f, func() {
		r.busy = false
		r.kick()
	})
}

// execRemote performs one remote command.
func (c *Ctrl) execRemote(f *txrx.Frame, done func()) {
	c.traceMsg("ctrl", "msg-exec", f.Trace, sim.Str("op", f.Op.String()))
	switch f.Op {
	case txrx.CmdWriteDram, txrx.CmdWriteDramCls:
		c.writeDramLines(f.Addr, f.Payload, func() {
			if f.Op == txrx.CmdWriteDramCls {
				c.setClsForRange(f.Addr, len(f.Payload), sram.LineState(f.Aux))
			}
			done()
		})
	case txrx.CmdSetCls:
		c.setClsLines(f.Addr, int(f.Count), sram.LineState(f.Aux))
		c.eng.Schedule(c.cycles(1), done)
	case txrx.CmdNotify:
		g := &txrx.Frame{Kind: txrx.Data, SrcNode: f.SrcNode, LogicalQ: f.Aux,
			Payload: f.Payload, Trace: f.Trace}
		q := c.lookupRx(g.LogicalQ)
		if q < 0 {
			c.stats.RxMisses++
			q = c.cfg.MissQueue
		}
		if q >= 0 {
			// Notify deliveries ignore Hold (they bypass via accept-or-miss:
			// a refused notify would deadlock the remote command queue).
			if !c.acceptInto(q, g) {
				c.rx[q].holding = false
				c.stats.RxDrops++
				c.traceMsg("ctrl", "msg-drop", g.Trace, sim.Str("why", "notify-hold"))
			}
		} else {
			c.traceMsg("ctrl", "msg-drop", g.Trace, sim.Str("why", "no-queue"))
		}
		done()
	case txrx.CmdWriteSram:
		c.ibusMove(len(f.Payload), func() {
			c.aSRAM.Write(f.Addr, f.Payload)
			done()
		})
	case txrx.CmdWriteWord:
		c.ibusMove(len(f.Payload), func() {
			tx := &bus.Transaction{Kind: bus.WriteWord, Addr: f.Addr,
				Data: append([]byte(nil), f.Payload...)}
			c.busPort.IssueBusOp(tx, done)
		})
	default:
		panic(fmt.Sprintf("ctrl: node %d: unknown remote command %v", c.myNode, f.Op))
	}
}

// writeDramLines issues WriteLine bus operations for each 32-byte line of
// data starting at addr (moving the data across the IBus first).
func (c *Ctrl) writeDramLines(addr uint32, data []byte, done func()) {
	if len(data)%bus.LineSize != 0 || addr%bus.LineSize != 0 {
		panic(fmt.Sprintf("ctrl: node %d: unaligned remote DRAM write %#x+%d",
			c.myNode, addr, len(data)))
	}
	var step func(i int)
	step = func(i int) {
		if i*bus.LineSize >= len(data) {
			done()
			return
		}
		line := data[i*bus.LineSize : (i+1)*bus.LineSize]
		c.ibusMove(bus.LineSize, func() {
			tx := &bus.Transaction{Kind: bus.WriteLine, Addr: addr + uint32(i*bus.LineSize),
				Data: line}
			c.busPort.IssueBusOp(tx, func() { step(i + 1) })
		})
	}
	step(0)
}

// setClsForRange updates clsSRAM states for the lines covered by
// [addr, addr+n) — the approach-5 aBIU extension.
func (c *Ctrl) setClsForRange(addr uint32, n int, st sram.LineState) {
	c.setClsLines(addr, (n+bus.LineSize-1)/bus.LineSize, st)
}

func (c *Ctrl) setClsLines(addr uint32, count int, st sram.LineState) {
	if c.cls == nil || !c.cfg.ScomaRange.Contains(addr) {
		return
	}
	first := int(c.cfg.ScomaRange.Offset(addr)) / bus.LineSize
	c.cls.SetRange(first, first+count, st)
}
