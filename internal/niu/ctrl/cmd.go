package ctrl

import (
	"fmt"

	"startvoyager/internal/arctic"
	"startvoyager/internal/bus"
	"startvoyager/internal/niu/sram"
	"startvoyager/internal/niu/txrx"
	"startvoyager/internal/sim"
)

// PageBytes is the block-operation limit: a block read or transmit may cover
// at most one aligned page, as in the hardware.
const PageBytes = 4096

// BlockTxChunk is the data carried per block-transmit packet: two cache
// lines, keeping remote DRAM writes line-aligned.
const BlockTxChunk = 2 * bus.LineSize

// Command is an operation issued through one of CTRL's local command queues
// by firmware (or by BIU state machines). Commands within a queue are issued
// and completed in order, with the exception of block operations, which are
// handed to their functional unit and complete in the background — exactly
// the ordering contract the paper specifies.
type Command interface {
	exec(c *Ctrl, done func())
	// background commands release the queue at hand-over rather than at
	// completion.
	background() bool
	// completion callback, invoked when the command's effects are done.
	completion() func()
}

// Base carries the completion callback shared by all commands.
type Base struct {
	// Done, if non-nil, runs at command completion (the model's analogue of
	// a completion interrupt or flag write).
	Done func()
}

func (b Base) background() bool   { return false }
func (b Base) completion() func() { return b.Done }

// SendMsg launches a message directly from the command queue (the firmware
// transmit path: translation optional, protection trusted).
type SendMsg struct {
	Base
	Frame     *txrx.Frame // SrcNode is filled in by CTRL
	Dest      uint16      // physical node, or translation index when Translate
	Translate bool
	Priority  arctic.Priority
	// Optional TagOn data appended from SRAM.
	TagBuf *sram.SRAM
	TagOff uint32
	TagLen int
}

func (m *SendMsg) exec(c *Ctrl, done func()) {
	m.Frame.SrcNode = uint16(c.myNode)
	if !m.Frame.Trace.Traced() {
		// First entry into the system: allocate the trace id here (keeping
		// any Parent link the issuer pre-set). Frames that arrive already
		// tagged — reliable-delivery retransmissions — keep their identity
		// so every attempt links to one logical message.
		m.Frame.Trace.ID = c.eng.NewMsgID()
		c.traceMsg("ctrl", "msg-send", m.Frame.Trace)
	}
	send := func(phys uint16, pri arctic.Priority) {
		// Move the payload across the IBus into the Tx FIFO, then format.
		c.ibusMove(len(m.Frame.Payload)+SlotHeaderBytes, func() {
			c.emit(m.Frame, int(phys), pri, func() {
				c.stats.TxMessages++
				c.stats.TxBytes += uint64(len(m.Frame.Payload))
				done()
			})
		})
	}
	withTag := func(cont func()) {
		if m.TagLen == 0 {
			cont()
			return
		}
		c.stats.TagOns++
		c.ibusMove(m.TagLen, func() {
			m.Frame.Payload = append(m.Frame.Payload, m.TagBuf.Slice(m.TagOff, m.TagLen)...)
			cont()
		})
	}
	withTag(func() {
		if !m.Translate {
			send(m.Dest, m.Priority)
			return
		}
		idx := int(m.Dest) % c.cfg.TransTableEntries
		c.ibusMove(8, func() {
			e := c.readTransEntry(idx)
			if !e.Valid {
				panic(fmt.Sprintf("ctrl: node %d: SendMsg through invalid translation %d",
					c.myNode, idx))
			}
			m.Frame.LogicalQ = e.LogicalQ
			send(e.PhysNode, e.Priority)
		})
	})
}

// BusOp issues a single operation on the aP memory bus through the aBIU.
// For reads, data lands in ToBuf at ToOff (or only in Tx.Data if ToBuf is
// nil); for writes, data is taken from FromBuf at FromOff (or from Tx.Data).
type BusOp struct {
	Base
	Tx      *bus.Transaction
	ToBuf   *sram.SRAM
	ToOff   uint32
	FromBuf *sram.SRAM
	FromOff uint32
}

func (b *BusOp) exec(c *Ctrl, done func()) {
	issue := func() {
		c.busPort.IssueBusOp(b.Tx, func() {
			if b.Tx.Kind.IsRead() && b.ToBuf != nil {
				c.ibusMove(len(b.Tx.Data), func() {
					b.ToBuf.Write(b.ToOff, b.Tx.Data)
					done()
				})
				return
			}
			done()
		})
	}
	if !b.Tx.Kind.IsRead() && b.FromBuf != nil {
		c.ibusMove(len(b.Tx.Data), func() {
			b.FromBuf.Read(b.FromOff, b.Tx.Data)
			issue()
		})
		return
	}
	issue()
}

// CopySram moves bytes between (or within) the SRAM banks over the IBus.
type CopySram struct {
	Base
	From    *sram.SRAM
	FromOff uint32
	To      *sram.SRAM
	ToOff   uint32
	Len     int
}

func (cp *CopySram) exec(c *Ctrl, done func()) {
	// The IBus sees the data twice (read port, write port), but the banks
	// are dual-ported; one pass of occupancy models the transfer.
	c.ibusMove(cp.Len, func() {
		tmp := make([]byte, cp.Len)
		cp.From.Read(cp.FromOff, tmp)
		cp.To.Write(cp.ToOff, tmp)
		done()
	})
}

// SetCls updates clsSRAM state for Count lines starting at the line
// containing Addr (an S-COMA address).
type SetCls struct {
	Base
	Addr  uint32
	Count int
	State sram.LineState
}

func (s *SetCls) exec(c *Ctrl, done func()) {
	c.setClsLines(s.Addr, s.Count, s.State)
	c.eng.Schedule(c.cycles(s.Count), done)
}

// Configure runs an arbitrary CTRL state update in command-queue order (the
// "system register write" path).
type Configure struct {
	Base
	Fn func(c *Ctrl)
}

func (cf *Configure) exec(c *Ctrl, done func()) {
	cf.Fn(c)
	c.eng.Schedule(c.cycles(1), done)
}

// BlockRead reads [DramAddr, DramAddr+Len) from aP DRAM into aSRAM at
// SramOff using the block aP-bus-operation unit. Len is limited to one
// aligned page.
type BlockRead struct {
	Base
	DramAddr uint32
	SramOff  uint32
	Len      int
}

func (b *BlockRead) background() bool { return true }

func (b *BlockRead) exec(c *Ctrl, done func()) {
	checkBlock(c, b.DramAddr, b.Len)
	c.stats.BlockReads++
	// The next line's bus read is issued while the previous line crosses
	// the IBus into the aSRAM, keeping the bus the pacing resource.
	moves, lastIssued := 0, false
	finish := func() {
		if lastIssued && moves == 0 {
			done()
		}
	}
	var issue func(off int)
	issue = func(off int) {
		if off >= b.Len {
			lastIssued = true
			finish()
			return
		}
		tx := &bus.Transaction{Kind: bus.ReadLine, Addr: b.DramAddr + uint32(off),
			Data: make([]byte, bus.LineSize)}
		c.busPort.IssueBusOp(tx, func() {
			moves++
			c.ibusMove(bus.LineSize, func() {
				c.aSRAM.Write(b.SramOff+uint32(off), tx.Data)
				moves--
				finish()
			})
			issue(off + bus.LineSize)
		})
	}
	issue(0)
}

// BlockTx packetizes [SramOff, SramOff+Len) of Buf into remote-command
// packets that write destination DRAM at DestAddr, optionally updating the
// destination's clsSRAM per written line (WithCls — approach 5), and
// optionally delivering a notification message after the last data packet.
type BlockTx struct {
	Base
	Buf      *sram.SRAM
	SramOff  uint32
	Len      int
	DestNode int
	DestAddr uint32
	Priority arctic.Priority

	WithCls  bool
	ClsState sram.LineState

	NotifyQ       uint16 // logical queue for the completion notification
	NotifyPayload []byte // nil = no notification

	// TraceParent links every packet this transfer launches (data chunks and
	// the notification) to the message that caused the transfer (e.g. the
	// DMA request the firmware handled); 0 when untraced.
	TraceParent uint64
}

func (b *BlockTx) background() bool { return true }

func (b *BlockTx) exec(c *Ctrl, done func()) {
	checkBlock(c, b.DestAddr, b.Len)
	c.stats.BlockTxs++
	var step func(off int)
	step = func(off int) {
		if off >= b.Len {
			if b.NotifyPayload != nil {
				// The notification travels on the same priority lane as the
				// data so FIFO delivery guarantees it arrives after the last
				// data packet has been written.
				f := &txrx.Frame{Kind: txrx.Cmd, SrcNode: uint16(c.myNode),
					Op: txrx.CmdNotify, Aux: b.NotifyQ,
					Payload: append([]byte(nil), b.NotifyPayload...),
					Trace:   sim.MsgTag{ID: c.eng.NewMsgID(), Parent: b.TraceParent}}
				c.traceMsg("ctrl", "msg-send", f.Trace)
				c.emit(f, b.DestNode, b.Priority, done)
				return
			}
			done()
			return
		}
		n := b.Len - off
		if n > BlockTxChunk {
			n = BlockTxChunk
		}
		start := c.eng.Now()
		c.ibusMove(n, func() {
			op := txrx.CmdWriteDram
			if b.WithCls {
				op = txrx.CmdWriteDramCls
			}
			f := &txrx.Frame{Kind: txrx.Cmd, SrcNode: uint16(c.myNode), Op: op,
				Addr: b.DestAddr + uint32(off), Aux: uint16(b.ClsState),
				Payload: append([]byte(nil), b.Buf.Slice(b.SramOff+uint32(off), n)...),
				Trace:   sim.MsgTag{ID: c.eng.NewMsgID(), Parent: b.TraceParent}}
			c.traceMsg("ctrl", "msg-send", f.Trace)
			c.emit(f, b.DestNode, b.Priority, func() {
				// Pace to the link rate so the unit does not flood the
				// injection queue beyond what the wire can carry. The IBus
				// and TxU work above is pipelined under the previous
				// packet's wire time, so only the residual is waited here.
				wait := c.paceTime(txrx.CmdHeaderBytes+n) - (c.eng.Now() - start)
				if wait < 0 {
					wait = 0
				}
				c.eng.Schedule(wait, func() { step(off + n) })
			})
		})
	}
	step(0)
}

func checkBlock(c *Ctrl, addr uint32, n int) {
	if n <= 0 || n > PageBytes {
		panic(fmt.Sprintf("ctrl: node %d: block op of %d bytes exceeds page", c.myNode, n))
	}
	if addr%bus.LineSize != 0 || n%bus.LineSize != 0 {
		panic(fmt.Sprintf("ctrl: node %d: unaligned block op %#x+%d", c.myNode, addr, n))
	}
	if addr/PageBytes != (addr+uint32(n)-1)/PageBytes {
		panic(fmt.Sprintf("ctrl: node %d: block op %#x+%d crosses a page", c.myNode, addr, n))
	}
}

// paceTime returns wire serialization time for size bytes at the link rate.
func (c *Ctrl) paceTime(size int) sim.Time {
	flits := (size + c.cfg.PaceFlitBytes - 1) / c.cfg.PaceFlitBytes
	return sim.Time(flits) * c.cfg.PaceFlitTime
}

// cmdQueue is one ordered local command queue.
type cmdQueue struct {
	c     *Ctrl
	name  string
	items []Command
	busy  bool
}

func newCmdQueue(c *Ctrl, name string) *cmdQueue { return &cmdQueue{c: c, name: name} }

// IssueCommand enqueues cmd on local command queue q (0 or 1).
func (c *Ctrl) IssueCommand(q int, cmd Command) {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("ctrl: bad command queue %d", q))
	}
	c.stats.LocalCmds++
	cq := c.local[q]
	cq.items = append(cq.items, cmd)
	cq.kick()
}

func (q *cmdQueue) kick() {
	if q.busy || len(q.items) == 0 {
		return
	}
	cmd := q.items[0]
	q.items = q.items[1:]
	q.busy = true
	c := q.c
	if cmd.background() {
		// Hand the command to its functional unit; the queue resumes at
		// hand-over, the Done callback fires at true completion.
		unit := c.blockRead
		if _, ok := cmd.(*BlockTx); ok {
			unit = c.blockTx
		}
		unit.acquire(func(finished func()) {
			q.busy = false
			q.kick()
			cmd.exec(c, func() {
				finished()
				if d := cmd.completion(); d != nil {
					d()
				}
			})
		})
		return
	}
	cmd.exec(c, func() {
		q.busy = false
		if d := cmd.completion(); d != nil {
			d()
		}
		q.kick()
	})
}

// blockUnit serializes use of one block-operation functional unit.
type blockUnit struct {
	c       *Ctrl
	name    string
	busy    bool
	waiters []func(finished func())
}

func newBlockUnit(c *Ctrl, name string) *blockUnit { return &blockUnit{c: c, name: name} }

func (u *blockUnit) acquire(start func(finished func())) {
	if u.busy {
		u.waiters = append(u.waiters, start)
		return
	}
	u.busy = true
	start(u.finish)
}

func (u *blockUnit) finish() {
	u.busy = false
	if len(u.waiters) > 0 {
		next := u.waiters[0]
		u.waiters = u.waiters[1:]
		u.busy = true
		next(u.finish)
	}
}
