// Package biu models the two bus interface units — the large FPGAs of the
// StarT-Voyager NIU that form the programmable layer (layer 1) between the
// processors and the CTRL core.
//
// The aBIU watches every aP bus operation and, by address region and
// configurable tables, decides to ignore it, serve it from aSRAM, transform
// it into CTRL operations (pointer updates, express message composition),
// retry it (S-COMA state check misses), or forward it to the service
// processor (NUMA window). In the model, "reprogramming the FPGA" is
// replacing these tables and ranges at machine construction time — which is
// exactly the experimental knob the paper turns between block-transfer
// approaches.
//
// The sBIU is the firmware's window onto the same machinery: it owns the
// aBIU→sBIU queue through which captured bus operations reach the sP.
package biu

import (
	"encoding/binary"
	"fmt"

	"startvoyager/internal/bus"
	"startvoyager/internal/niu/ctrl"
	"startvoyager/internal/niu/sram"
	"startvoyager/internal/sim"
)

// Map is the aBIU's address decode map. All ranges must be disjoint.
type Map struct {
	// Sram maps the aSRAM directly (cached or uncached processor access).
	Sram bus.Range
	// Ptr is the uncached pointer region: offset q*16 writes the transmit
	// producer for queue q, offset q*16+8 writes the receive consumer.
	// Reads return the packed (producer<<32 | consumer) pair.
	Ptr bus.Range
	// ExpressTx: an uncached store at offset (q<<12|dest)<<3 composes and
	// launches an express message from queue q to virtual destination dest
	// (the shift keeps the store beat-aligned, as the hardware requires).
	ExpressTx bus.Range
	// ExpressRx: an uncached load at offset q*8 receives from queue q.
	ExpressRx bus.Range
	// Numa is the remote-memory window forwarded to the sP.
	Numa bus.Range
	// Scoma is the S-COMA region (backed by local DRAM; the aBIU only
	// checks clsSRAM state and never claims these operations).
	Scoma bus.Range
	// Reflect is the reflective-memory window (backed by local DRAM; writes
	// may be propagated to subscriber nodes — see ConfigureReflect).
	Reflect bus.Range
}

// ScomaAction is one entry of the (bus operation, clsSRAM state)-indexed
// action table (two bits, as in the paper).
type ScomaAction struct {
	Retry  bool // retry the operation until the state changes
	PassSP bool // forward a captured copy to the sP (once per line episode)
}

// CapturedOp is a bus operation forwarded from the aBIU to the sP through
// the BIU-to-BIU queue.
type CapturedOp struct {
	Kind  bus.Kind
	Addr  uint32
	Size  int
	Data  []byte // write data (copied), nil for reads
	Scoma bool   // captured by the S-COMA state check
	// Reflect marks a write captured in the reflective-memory window;
	// otherwise a false Scoma means the NUMA window.
	Reflect bool
}

// Config holds aBIU timing.
type Config struct {
	SramLatency sim.Time // aSRAM service latency on the aP bus (default 45 ns)
	RegLatency  sim.Time // pointer/express service latency (default 15 ns)
}

// DefaultConfig returns FPGA-speed defaults.
func DefaultConfig() Config {
	return Config{SramLatency: 45 * sim.Nanosecond, RegLatency: 15 * sim.Nanosecond}
}

func (c *Config) fillDefaults() {
	if c.SramLatency == 0 {
		c.SramLatency = 45 * sim.Nanosecond
	}
	if c.RegLatency == 0 {
		c.RegLatency = 15 * sim.Nanosecond
	}
}

// kindIndex compacts bus kinds for table indexing.
func kindIndex(k bus.Kind) int { return int(k) }

const numKinds = 6

// ABIU is the aP-side bus interface unit.
type ABIU struct {
	eng  *sim.Engine
	b    *bus.Bus
	c    *ctrl.Ctrl
	aS   *sram.SRAM
	cls  *sram.Cls
	m    Map
	cfg  Config
	node int

	scomaTable [numKinds][16]ScomaAction

	// NUMA machinery.
	pendingFill map[uint32][]byte // line address -> data ready to serve
	pendingAck  map[uint32]bool   // write addresses acknowledged by the home
	requested   map[uint32]bool   // ops already forwarded to the sP
	// S-COMA notification dedup (line index -> already passed to sP).
	notified map[int]bool

	// toSP is the aBIU→sBIU queue.
	toSP *sim.Queue[CapturedOp]

	reflect reflectState

	// Snoop serve staging: the decode phase records what the prebound serve
	// function needs and the bus serializes transactions, so the claimed
	// operation is always served before the next snoop can restage. This
	// keeps the SRAM/pointer/express fast paths closure-free.
	srvOff      uint32 // aSRAM offset (snoopSram)
	srvQ        int    // queue index (snoopPtr, snoopExpress*)
	srvIsRx     bool   // pointer pair selector (snoopPtr)
	srvDest     uint16 // express destination (snoopExpressTx)
	sramServeFn func(*bus.Transaction)
	ptrServeFn  func(*bus.Transaction)
	exTxServeFn func(*bus.Transaction)
	exRxServeFn func(*bus.Transaction)

	stats Stats
}

// Stats counts aBIU activity.
type Stats struct {
	SramReads, SramWrites uint64
	PtrUpdates            uint64
	ExpressTx, ExpressRx  uint64
	NumaCaptured          uint64
	NumaFills             uint64
	NumaAcks              uint64
	ScomaRetries          uint64
	ScomaCaptured         uint64
	CtrlBusOps            uint64
	ReflectCaptured       uint64 // writes forwarded to the sP
	ReflectHw             uint64 // updates composed in aBIU hardware
	ReflectDirty          uint64 // dirty bits set (deferred mode)
}

// NewABIU builds the aBIU for one node. Attach it to the aP bus yourself.
func NewABIU(eng *sim.Engine, node int, b *bus.Bus, c *ctrl.Ctrl, aS *sram.SRAM,
	cls *sram.Cls, m Map, cfg Config) *ABIU {
	cfg.fillDefaults()
	a := &ABIU{
		eng: eng, b: b, c: c, aS: aS, cls: cls, m: m, cfg: cfg, node: node,
		pendingFill: make(map[uint32][]byte),
		pendingAck:  make(map[uint32]bool),
		requested:   make(map[uint32]bool),
		notified:    make(map[int]bool),
		toSP:        sim.NewQueue[CapturedOp](eng),
	}
	a.toSP.SetName("biu/captured")
	a.scomaTable = DefaultScomaTable()
	a.sramServeFn = a.sramServe
	a.ptrServeFn = a.ptrServe
	a.exTxServeFn = a.exTxServe
	a.exRxServeFn = a.exRxServe
	return a
}

// DefaultScomaTable returns the action table for the default MSI-style
// S-COMA protocol over the sram.CL* state encoding.
func DefaultScomaTable() [numKinds][16]ScomaAction {
	var t [numKinds][16]ScomaAction
	inv, pend, ro := int(sram.CLInvalid), int(sram.CLPending), int(sram.CLReadOnly)
	// Reads: stall on Invalid (notify) and Pending (silent).
	for _, k := range []bus.Kind{bus.ReadLine, bus.ReadWord} {
		t[kindIndex(k)][inv] = ScomaAction{Retry: true, PassSP: true}
		t[kindIndex(k)][pend] = ScomaAction{Retry: true}
	}
	// Writes/upgrades: stall on Invalid, Pending and ReadOnly.
	for _, k := range []bus.Kind{bus.ReadLineX, bus.Kill, bus.WriteWord} {
		t[kindIndex(k)][inv] = ScomaAction{Retry: true, PassSP: true}
		t[kindIndex(k)][pend] = ScomaAction{Retry: true}
		t[kindIndex(k)][ro] = ScomaAction{Retry: true, PassSP: true}
	}
	// WriteLine (writeback of a dirty S-COMA line) always proceeds.
	return t
}

// SetScomaTable replaces the (op, state) action table — an "FPGA reload".
func (a *ABIU) SetScomaTable(t [numKinds][16]ScomaAction) { a.scomaTable = t }

// ToSP returns the aBIU→sBIU captured-operation queue.
func (a *ABIU) ToSP() *sim.Queue[CapturedOp] { return a.toSP }

// Stats returns a snapshot of counters.
func (a *ABIU) Stats() Stats { return a.stats }

// DeviceName implements bus.Device.
func (a *ABIU) DeviceName() string { return fmt.Sprintf("abiu%d", a.node) }

// IssueBusOp implements ctrl.BusPort: CTRL masters the aP bus through the
// aBIU.
func (a *ABIU) IssueBusOp(tx *bus.Transaction, done func()) {
	tx.Master = a
	a.stats.CtrlBusOps++
	a.b.Issue(tx, done)
}

// SupplyFill hands the aBIU data with which to satisfy a retried NUMA read
// of the line at addr (sP firmware calls this when the remote data arrives).
func (a *ABIU) SupplyFill(addr uint32, data []byte) {
	a.pendingFill[addr] = append([]byte(nil), data...)
	delete(a.requested, addr)
}

// SupplyWriteAck releases a retried NUMA store at addr (sP firmware calls
// this when the home acknowledges the write) — the "sP explicitly stops the
// retries" mechanism of the paper.
func (a *ABIU) SupplyWriteAck(addr uint32) {
	a.pendingAck[addr] = true
	delete(a.requested, addr)
}

// ClearScomaNotify re-arms the pass-to-sP notification for an S-COMA line
// (firmware calls it when an episode completes).
func (a *ABIU) ClearScomaNotify(lineIdx int) { delete(a.notified, lineIdx) }

// SnoopBus implements bus.Device: the aBIU's decode of every aP bus
// operation it did not itself master.
func (a *ABIU) SnoopBus(tx *bus.Transaction) bus.Snoop {
	switch {
	case a.m.Sram.Contains(tx.Addr):
		return a.snoopSram(tx)
	case a.m.Ptr.Contains(tx.Addr):
		return a.snoopPtr(tx)
	case a.m.ExpressTx.Contains(tx.Addr):
		return a.snoopExpressTx(tx)
	case a.m.ExpressRx.Contains(tx.Addr):
		return a.snoopExpressRx(tx)
	case a.m.Numa.Contains(tx.Addr):
		return a.snoopNuma(tx)
	case a.m.Scoma.Contains(tx.Addr):
		return a.snoopScoma(tx)
	case a.m.Reflect.Contains(tx.Addr):
		return a.snoopReflect(tx)
	default:
		return bus.Snoop{}
	}
}

// snoopSram serves the direct aSRAM mapping.
//
//voyager:noalloc
func (a *ABIU) snoopSram(tx *bus.Transaction) bus.Snoop {
	a.srvOff = a.m.Sram.Offset(tx.Addr)
	return bus.Snoop{Action: bus.Claim, Latency: a.cfg.SramLatency, Serve: a.sramServeFn}
}

//voyager:noalloc
func (a *ABIU) sramServe(tx *bus.Transaction) {
	if tx.Kind.IsRead() {
		a.stats.SramReads++
		a.aS.Read(a.srvOff, tx.Data)
	} else {
		a.stats.SramWrites++
		a.aS.Write(a.srvOff, tx.Data)
	}
}

// snoopPtr handles the pointer update/poll region.
//
//voyager:noalloc
func (a *ABIU) snoopPtr(tx *bus.Transaction) bus.Snoop {
	off := a.m.Ptr.Offset(tx.Addr)
	a.srvQ = int(off / 16)
	a.srvIsRx = off%16 >= 8
	return bus.Snoop{Action: bus.Claim, Latency: a.cfg.RegLatency, Serve: a.ptrServeFn}
}

//voyager:noalloc
func (a *ABIU) ptrServe(tx *bus.Transaction) {
	q, isRx := a.srvQ, a.srvIsRx
	switch tx.Kind {
	case bus.WriteWord:
		a.stats.PtrUpdates++
		var w [8]byte
		copy(w[:], tx.Data)
		val := uint32(binary.BigEndian.Uint64(w[:]))
		if isRx {
			a.c.RxConsumerUpdate(q, val)
		} else {
			a.c.TxProducerUpdate(q, val)
		}
	case bus.ReadWord:
		var v uint64
		if isRx {
			v = uint64(a.c.RxProducer(q))<<32 | uint64(a.c.RxConsumer(q))
		} else {
			v = uint64(a.c.TxProducer(q))<<32 | uint64(a.c.TxConsumer(q))
		}
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], v)
		copy(tx.Data, b[:])
	default:
		panic(fmt.Sprintf("biu: node %d: %v in pointer region", a.node, tx.Kind)) //voyager:alloc-ok(panic path)
	}
}

// snoopExpressTx composes an express message from a single uncached store.
func (a *ABIU) snoopExpressTx(tx *bus.Transaction) bus.Snoop {
	off := a.m.ExpressTx.Offset(tx.Addr)
	a.srvQ = int(off >> 15 & 0xF)
	a.srvDest = uint16(off >> 3 & 0xFFF)
	return bus.Snoop{Action: bus.Claim, Latency: a.cfg.RegLatency, Serve: a.exTxServeFn}
}

func (a *ABIU) exTxServe(tx *bus.Transaction) {
	if tx.Kind != bus.WriteWord {
		panic(fmt.Sprintf("biu: node %d: %v in express tx region", a.node, tx.Kind))
	}
	a.stats.ExpressTx++
	payload := append([]byte(nil), pad8(tx.Data)[:ctrl.ExpressPayload]...)
	a.c.ExpressCompose(a.srvQ, a.srvDest, payload)
}

// snoopExpressRx serves an express receive from a single uncached load.
func (a *ABIU) snoopExpressRx(tx *bus.Transaction) bus.Snoop {
	off := a.m.ExpressRx.Offset(tx.Addr)
	a.srvQ = int(off / 8)
	return bus.Snoop{Action: bus.Claim, Latency: a.cfg.RegLatency, Serve: a.exRxServeFn}
}

func (a *ABIU) exRxServe(tx *bus.Transaction) {
	if tx.Kind != bus.ReadWord {
		panic(fmt.Sprintf("biu: node %d: %v in express rx region", a.node, tx.Kind))
	}
	a.stats.ExpressRx++
	word := a.c.ExpressReceive(a.srvQ)
	copy(tx.Data, word[:])
}

// snoopNuma captures operations in the NUMA window for the sP, retrying
// reads until firmware supplies the data.
func (a *ABIU) snoopNuma(tx *bus.Transaction) bus.Snoop {
	switch tx.Kind {
	case bus.ReadWord, bus.ReadLine, bus.ReadLineX:
		key := tx.Addr &^ (bus.LineSize - 1)
		if tx.Kind == bus.ReadWord {
			key = tx.Addr &^ 7
		}
		if data, ok := a.pendingFill[key]; ok {
			return bus.Snoop{Action: bus.Claim, Latency: a.cfg.RegLatency,
				Serve: func(tx *bus.Transaction) {
					a.stats.NumaFills++
					copy(tx.Data, data)
					delete(a.pendingFill, key)
				}}
		}
		if !a.requested[key] {
			a.requested[key] = true
			a.stats.NumaCaptured++
			a.toSP.Push(CapturedOp{Kind: tx.Kind, Addr: tx.Addr, Size: len(tx.Data)})
		}
		return bus.Snoop{Action: bus.Retry}
	case bus.WriteWord, bus.WriteLine:
		// Synchronous remote store: the operation retries until the home
		// acknowledges it, so a completed store is globally visible.
		key := tx.Addr &^ 7
		if tx.Kind == bus.WriteLine {
			key = tx.Addr &^ (bus.LineSize - 1)
		}
		if a.pendingAck[key] {
			return bus.Snoop{Action: bus.Claim, Latency: a.cfg.RegLatency,
				Serve: func(tx *bus.Transaction) {
					a.stats.NumaAcks++
					delete(a.pendingAck, key)
				}}
		}
		if !a.requested[key] {
			a.requested[key] = true
			a.stats.NumaCaptured++
			a.toSP.Push(CapturedOp{Kind: tx.Kind, Addr: tx.Addr, Size: len(tx.Data),
				Data: append([]byte(nil), tx.Data...)})
		}
		return bus.Snoop{Action: bus.Retry}
	default:
		return bus.Snoop{}
	}
}

// snoopScoma checks clsSRAM state and applies the action table. It never
// claims: on success the local memory controller serves the line.
func (a *ABIU) snoopScoma(tx *bus.Transaction) bus.Snoop {
	lineIdx := int(a.m.Scoma.Offset(tx.Addr)) / bus.LineSize
	st := a.cls.Get(lineIdx)
	act := a.scomaTable[kindIndex(tx.Kind)][st]
	if act.PassSP && !a.notified[lineIdx] {
		a.notified[lineIdx] = true
		a.stats.ScomaCaptured++
		op := CapturedOp{Kind: tx.Kind, Addr: tx.Addr, Size: len(tx.Data), Scoma: true}
		if !tx.Kind.IsRead() && tx.Kind != bus.Kill {
			op.Data = append([]byte(nil), tx.Data...)
		}
		a.toSP.Push(op)
	}
	if act.Retry {
		a.stats.ScomaRetries++
		return bus.Snoop{Action: bus.Retry}
	}
	if !act.Retry && !act.PassSP {
		// Completed episode: re-arm notification for this line.
		delete(a.notified, lineIdx)
	}
	if tx.Kind == bus.ReadLine && st == sram.CLReadOnly {
		// Assert the shared line so the aP cache cannot install the line
		// exclusively: a later store must raise a bus upgrade for the
		// state check to catch.
		return bus.Snoop{Shared: true}
	}
	return bus.Snoop{}
}

// pad8 returns an 8-byte view of word data (bus words can be 1..8 bytes).
func pad8(d []byte) []byte {
	if len(d) == 8 {
		return d
	}
	b := make([]byte, 8)
	copy(b, d)
	return b
}

// SBIU is the sP-side bus interface unit. The service processor in this
// model is the firmware engine; the sBIU gives it structured access to the
// capture queue and the immediate CTRL interface.
type SBIU struct {
	a *ABIU
	c *ctrl.Ctrl
}

// NewSBIU pairs the sBIU with its aBIU and CTRL.
func NewSBIU(a *ABIU, c *ctrl.Ctrl) *SBIU { return &SBIU{a: a, c: c} }

// Captured returns the aBIU→sBIU queue of forwarded bus operations.
func (s *SBIU) Captured() *sim.Queue[CapturedOp] { return s.a.toSP }

// Ctrl returns the immediate command interface to CTRL.
func (s *SBIU) Ctrl() *ctrl.Ctrl { return s.c }

// ABIU returns the paired aBIU (for SupplyFill / table reloads).
func (s *SBIU) ABIU() *ABIU { return s.a }
