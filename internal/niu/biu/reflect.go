package biu

import (
	"fmt"

	"startvoyager/internal/arctic"
	"startvoyager/internal/bus"
	"startvoyager/internal/niu/ctrl"
	"startvoyager/internal/niu/txrx"
)

// ReflectMode selects how writes to the reflective-memory window propagate —
// the paper's Shrimp / Memory Channel emulation, in the three implementation
// styles §5 discusses:
//
//	ReflectFirmware — the default hardware is sufficient: the aBIU forwards
//	                  captured writes to the sP, which sends the updates.
//	ReflectHardware — "further enhancements to the aBIU can implement this
//	                  completely in hardware": the aBIU composes the remote
//	                  commands itself; the sP never runs.
//	ReflectDeferred — writes only set clsSRAM-style dirty bits (the paper's
//	                  cache-line-granularity modification tracking for
//	                  diff-based update protocols); firmware propagates just
//	                  the dirty lines when software flushes.
type ReflectMode int

// Reflective-memory modes.
const (
	ReflectOff ReflectMode = iota
	ReflectFirmware
	ReflectHardware
	ReflectDeferred
)

// String names the mode.
func (m ReflectMode) String() string {
	switch m {
	case ReflectOff:
		return "off"
	case ReflectFirmware:
		return "firmware"
	case ReflectHardware:
		return "hardware"
	case ReflectDeferred:
		return "deferred"
	default:
		return fmt.Sprintf("ReflectMode(%d)", int(m))
	}
}

// ReflectEntry exports one window-offset range to a set of subscriber nodes.
// Subscribers receive every propagated write at the same window offset.
type ReflectEntry struct {
	From, To uint32 // window offsets [From, To)
	Subs     []int
}

// reflectState is the aBIU's reflective-memory configuration.
type reflectState struct {
	mode    ReflectMode
	entries []ReflectEntry
	dirty   []bool // per line of the window (Deferred mode)
}

// ConfigureReflect programs the reflective-memory window behaviour (an
// "FPGA reload" — experiments switch modes between runs).
func (a *ABIU) ConfigureReflect(mode ReflectMode, entries []ReflectEntry) {
	if a.m.Reflect.Size == 0 && mode != ReflectOff {
		panic("biu: no reflective window configured on this node")
	}
	a.reflect = reflectState{
		mode:    mode,
		entries: entries,
		dirty:   make([]bool, (a.m.Reflect.Size+bus.LineSize-1)/bus.LineSize),
	}
}

// ReflectSubscribers returns the export set covering the window offset.
func (a *ABIU) ReflectSubscribers(off uint32) []int {
	for _, e := range a.reflect.entries {
		if off >= e.From && off < e.To {
			return e.Subs
		}
	}
	return nil
}

// ReflectDirtyLines returns (and clears) the dirty line indices intersecting
// window offsets [from, from+n) — the hardware assist that spares the
// firmware a software diff.
func (a *ABIU) ReflectDirtyLines(from uint32, n int) []int {
	var out []int
	first := int(from) / bus.LineSize
	last := (int(from) + n + bus.LineSize - 1) / bus.LineSize
	for i := first; i < last && i < len(a.reflect.dirty); i++ {
		if a.reflect.dirty[i] {
			out = append(out, i)
			a.reflect.dirty[i] = false
		}
	}
	return out
}

// snoopReflect handles aP writes in the reflective window. The local memory
// controller claims and stores the data (the window is DRAM-backed); the
// aBIU only observes.
func (a *ABIU) snoopReflect(tx *bus.Transaction) bus.Snoop {
	if tx.Kind != bus.WriteLine && tx.Kind != bus.WriteWord {
		return bus.Snoop{}
	}
	off := a.m.Reflect.Offset(tx.Addr)
	switch a.reflect.mode {
	case ReflectFirmware:
		a.stats.ReflectCaptured++
		a.toSP.Push(CapturedOp{Kind: tx.Kind, Addr: tx.Addr, Size: len(tx.Data),
			Data: append([]byte(nil), tx.Data...), Reflect: true})
	case ReflectHardware:
		subs := a.ReflectSubscribers(off)
		a.stats.ReflectHw += uint64(len(subs))
		data := append([]byte(nil), tx.Data...)
		for _, sub := range subs {
			op := txrx.CmdWriteDram
			if tx.Kind == bus.WriteWord {
				op = txrx.CmdWriteWord
			}
			// The aBIU composes the update message itself on command
			// queue 1, leaving queue 0 (and the sP) untouched.
			a.c.IssueCommand(1, &ctrl.SendMsg{
				Frame: &txrx.Frame{Kind: txrx.Cmd, Op: op, Addr: tx.Addr,
					Payload: data},
				Dest:     uint16(sub),
				Priority: arctic.Low,
			})
		}
	case ReflectDeferred:
		line := int(off) / bus.LineSize
		if line < len(a.reflect.dirty) {
			a.reflect.dirty[line] = true
			a.stats.ReflectDirty++
		}
	}
	return bus.Snoop{}
}
