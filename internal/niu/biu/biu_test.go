package biu

import (
	"bytes"
	"encoding/binary"
	"testing"

	"startvoyager/internal/arctic"
	"startvoyager/internal/bus"
	"startvoyager/internal/cache"
	"startvoyager/internal/mem"
	"startvoyager/internal/niu/ctrl"
	"startvoyager/internal/niu/sram"
	"startvoyager/internal/niu/txrx"
	"startvoyager/internal/sim"
)

// Node-local address map used in these tests.
var testMap = Map{
	Sram:      bus.Range{Base: 0xF000_0000, Size: 64 << 10},
	Ptr:       bus.Range{Base: 0xF010_0000, Size: 4 << 10},
	ExpressTx: bus.Range{Base: 0xF020_0000, Size: 1 << 19},
	ExpressRx: bus.Range{Base: 0xF030_0000, Size: 4 << 10},
	Numa:      bus.Range{Base: 0x4000_0000, Size: 1 << 30},
	Scoma:     bus.Range{Base: 0x8000_0000, Size: 1 << 20},
}

type netSink struct {
	injected [][]byte
	dsts     []int
}

func (n *netSink) Inject(dst int, pri arctic.Priority, wire []byte, tag sim.MsgTag) {
	n.injected = append(n.injected, wire)
	n.dsts = append(n.dsts, dst)
}
func (n *netSink) Poke()                      {}
func (n *netSink) Ready(arctic.Priority) bool { return true }

type noInts struct{}

func (noInts) RxInterrupt(int)   {}
func (noInts) ProtViolation(int) {}

type rig struct {
	eng  *sim.Engine
	b    *bus.Bus
	dram *mem.DRAM
	ch   *cache.Cache
	aS   *sram.SRAM
	sS   *sram.SRAM
	cls  *sram.Cls
	c    *ctrl.Ctrl
	a    *ABIU
	s    *SBIU
	net  *netSink
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := sim.NewEngine()
	b := bus.New(eng, "apbus", bus.DefaultConfig())
	dram := mem.New(bus.Range{Base: 0, Size: 4 << 20}, 60)
	// Back the S-COMA window with the top 1 MB of DRAM.
	dram.AddAlias(testMap.Scoma, 3<<20)
	ch := cache.New("l2", b, cache.DefaultConfig())
	ch.SetWritebackSink(dram.Poke)
	aS := sram.New("aSRAM", 64<<10)
	sS := sram.New("sSRAM", 64<<10)
	cls := sram.NewCls(int(testMap.Scoma.Size) / bus.LineSize)
	ccfg := ctrl.DefaultConfig()
	ccfg.ScomaRange = testMap.Scoma
	c := ctrl.New(eng, 0, aS, sS, cls, ccfg)
	a := NewABIU(eng, 0, b, c, aS, cls, testMap, DefaultConfig())
	net := &netSink{}
	c.SetPorts(a, net, noInts{})
	b.Attach(dram)
	b.Attach(ch)
	b.Attach(a)
	return &rig{eng: eng, b: b, dram: dram, ch: ch, aS: aS, sS: sS, cls: cls,
		c: c, a: a, s: NewSBIU(a, c), net: net}
}

func TestSramMapping(t *testing.T) {
	r := newRig(t)
	r.eng.Spawn("ap", func(p *sim.Proc) {
		// Cached store, flush, then uncached read-back: the data must land
		// in the aSRAM itself.
		r.ch.Store(p, 0xF000_0100, []byte("voyager!"))
		r.ch.Flush(p, 0xF000_0100)
		buf := make([]byte, 8)
		r.ch.LoadUncached(p, 0xF000_0100, buf)
		if !bytes.Equal(buf, []byte("voyager!")) {
			t.Errorf("uncached readback %q", buf)
		}
	})
	r.eng.Run()
	got := make([]byte, 8)
	r.aS.Read(0x100, got)
	if !bytes.Equal(got, []byte("voyager!")) {
		t.Fatalf("aSRAM content %q", got)
	}
	if r.a.Stats().SramWrites == 0 || r.a.Stats().SramReads == 0 {
		t.Fatalf("stats %+v", r.a.Stats())
	}
}

func TestPointerRegion(t *testing.T) {
	r := newRig(t)
	r.c.ConfigureTx(2, ctrl.TxConfig{Buf: r.aS, Base: 0x1000, EntryBytes: 96,
		Entries: 8, ShadowBase: 0x80, RawAllowed: true,
		AllowedDests: ^uint64(0), Enabled: true})
	// Compose a raw message in slot 0 directly, then update the producer
	// through the pointer region.
	slot := make([]byte, 96)
	binary.BigEndian.PutUint16(slot[0:], 1)
	slot[2] = ctrl.SlotFlagRaw
	slot[3] = 2
	copy(slot[8:], "ok")
	r.aS.Write(0x1000, slot)
	r.eng.Spawn("ap", func(p *sim.Proc) {
		var w [8]byte
		binary.BigEndian.PutUint64(w[:], 1)
		r.ch.StoreUncached(p, testMap.Ptr.Base+2*16, w[:])
		// Poll the pointer pair until the consumer catches up.
		for {
			r.ch.LoadUncached(p, testMap.Ptr.Base+2*16, w[:])
			v := binary.BigEndian.Uint64(w[:])
			if uint32(v) == 1 { // consumer == 1
				break
			}
			p.Delay(100)
		}
	})
	r.eng.Run()
	if len(r.net.injected) != 1 {
		t.Fatalf("injected %d", len(r.net.injected))
	}
	if r.a.Stats().PtrUpdates != 1 {
		t.Fatalf("stats %+v", r.a.Stats())
	}
}

func TestExpressTxRegion(t *testing.T) {
	r := newRig(t)
	r.c.ConfigureTx(1, ctrl.TxConfig{Buf: r.aS, Base: 0x2000, EntryBytes: 8,
		Entries: 16, ShadowBase: 0x90, Express: true, Translate: true,
		AndMask: 0xFFFF, AllowedDests: ^uint64(0), Enabled: true})
	r.c.WriteTransEntry(5, ctrl.TransEntry{PhysNode: 3, LogicalQ: 11, Valid: true})
	r.eng.Spawn("ap", func(p *sim.Proc) {
		// Single uncached store: queue 1, virtual dest 5, 5-byte payload.
		addr := testMap.ExpressTx.Base + uint32(1<<12|5)<<3
		r.ch.StoreUncached(p, addr, []byte{9, 8, 7, 6, 5, 0, 0, 0})
	})
	r.eng.Run()
	if len(r.net.injected) != 1 || r.net.dsts[0] != 3 {
		t.Fatalf("express: injected %d dsts %v", len(r.net.injected), r.net.dsts)
	}
	f, _ := txrx.Decode(r.net.injected[0])
	if f.LogicalQ != 11 || !bytes.Equal(f.Payload, []byte{9, 8, 7, 6, 5}) {
		t.Fatalf("frame %+v", f)
	}
}

func TestExpressRxRegion(t *testing.T) {
	r := newRig(t)
	r.c.ConfigureRx(4, ctrl.RxConfig{Buf: r.aS, Base: 0x3000, EntryBytes: 8,
		Entries: 16, ShadowBase: 0xA0, Logical: 77, Express: true, Enabled: true})
	w, _ := txrx.Encode(&txrx.Frame{Kind: txrx.Data, SrcNode: 2, LogicalQ: 77,
		Payload: []byte{1, 2, 3, 4, 5}})
	r.c.TryReceive(w, sim.MsgTag{})
	var got [8]byte
	r.eng.Spawn("ap", func(p *sim.Proc) {
		p.Delay(1000) // let the message land
		r.ch.LoadUncached(p, testMap.ExpressRx.Base+4*8, got[:])
	})
	r.eng.Run()
	if got[0] != 0x80 || binary.BigEndian.Uint16(got[1:]) != 2 ||
		!bytes.Equal(got[3:8], []byte{1, 2, 3, 4, 5}) {
		t.Fatalf("express rx word %v", got)
	}
	// A second load returns the canonical empty message.
	var empty [8]byte
	r.eng.Spawn("ap2", func(p *sim.Proc) {
		r.ch.LoadUncached(p, testMap.ExpressRx.Base+4*8, empty[:])
	})
	r.eng.Run()
	if empty != [8]byte{} {
		t.Fatalf("empty word %v", empty)
	}
}

func TestNumaCaptureAndFill(t *testing.T) {
	r := newRig(t)
	addr := testMap.Numa.Base + 0x4000
	var got [8]byte
	fin := false
	r.eng.Spawn("ap", func(p *sim.Proc) {
		r.ch.LoadUncached(p, addr, got[:]) // stalls until firmware supplies
		fin = true
	})
	// "Firmware": wait for the captured op, then supply data.
	r.eng.Spawn("sp", func(p *sim.Proc) {
		op := r.s.Captured().Pop(p)
		if op.Kind != bus.ReadWord || op.Addr != addr || op.Scoma {
			t.Errorf("captured %+v", op)
		}
		p.Delay(2000) // pretend remote latency
		r.a.SupplyFill(addr, []byte("numadata"))
	})
	r.eng.Run()
	if !fin {
		t.Fatal("NUMA load never completed")
	}
	if !bytes.Equal(got[:], []byte("numadata")) {
		t.Fatalf("got %q", got)
	}
	st := r.a.Stats()
	if st.NumaCaptured != 1 || st.NumaFills != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestNumaCapturedOnceDespiteRetries(t *testing.T) {
	r := newRig(t)
	addr := testMap.Numa.Base + 0x8000
	r.eng.Spawn("ap", func(p *sim.Proc) {
		var b [8]byte
		r.ch.LoadUncached(p, addr, b[:])
	})
	r.eng.Spawn("sp", func(p *sim.Proc) {
		r.s.Captured().Pop(p)
		p.Delay(5000) // many retry rounds elapse
		if r.s.Captured().Len() != 0 {
			t.Error("duplicate capture")
		}
		r.a.SupplyFill(addr, make([]byte, 8))
	})
	r.eng.Run()
	if r.a.Stats().NumaCaptured != 1 {
		t.Fatalf("captured %d times", r.a.Stats().NumaCaptured)
	}
}

func TestNumaAckedWrite(t *testing.T) {
	// A NUMA store retries until the firmware acknowledges it (the paper's
	// "retried until the sP explicitly stops the retries"), so a completed
	// store is globally visible.
	r := newRig(t)
	addr := testMap.Numa.Base + 0x100
	var doneAt sim.Time
	r.eng.Spawn("ap", func(p *sim.Proc) {
		r.ch.StoreUncached(p, addr, []byte("remwrite"))
		doneAt = p.Now()
	})
	var ackAt sim.Time
	r.eng.Spawn("sp", func(p *sim.Proc) {
		op := r.s.Captured().Pop(p)
		if op.Kind != bus.WriteWord || !bytes.Equal(op.Data, []byte("remwrite")) {
			t.Errorf("op %+v", op)
		}
		p.Delay(3000) // pretend home round trip
		ackAt = p.Now()
		r.a.SupplyWriteAck(addr &^ 7)
	})
	r.eng.Run()
	if doneAt == 0 || doneAt < ackAt {
		t.Fatalf("store completed at %v, before the ack at %v", doneAt, ackAt)
	}
	if r.a.Stats().NumaAcks != 1 {
		t.Fatalf("stats %+v", r.a.Stats())
	}
}

func TestScomaStateCheck(t *testing.T) {
	r := newRig(t)
	addr := testMap.Scoma.Base + 64 // line 2
	// Pre-place data in the backing frames.
	r.dram.Poke(addr, []byte("scomadat"))
	var got [8]byte
	fin := false
	r.eng.Spawn("ap", func(p *sim.Proc) {
		r.ch.Load(p, addr, got[:]) // cached read: ReadLine, checked by aBIU
		fin = true
	})
	r.eng.Spawn("sp", func(p *sim.Proc) {
		op := r.s.Captured().Pop(p)
		if !op.Scoma || op.Kind != bus.ReadLine {
			t.Errorf("captured %+v", op)
		}
		// Protocol: mark pending, fetch remotely (pretend), then mark RO.
		r.cls.Set(2, sram.CLPending)
		p.Delay(3000)
		r.cls.Set(2, sram.CLReadOnly)
		r.a.ClearScomaNotify(2)
	})
	r.eng.Run()
	if !fin {
		t.Fatal("S-COMA read never completed")
	}
	if !bytes.Equal(got[:], []byte("scomadat")) {
		t.Fatalf("got %q", got)
	}
	if r.a.Stats().ScomaRetries == 0 || r.a.Stats().ScomaCaptured != 1 {
		t.Fatalf("stats %+v", r.a.Stats())
	}
}

func TestScomaWriteNeedsRW(t *testing.T) {
	r := newRig(t)
	addr := testMap.Scoma.Base + 128 // line 4
	r.cls.Set(4, sram.CLReadOnly)
	fin := false
	r.eng.Spawn("ap", func(p *sim.Proc) {
		r.ch.Store(p, addr, []byte{1}) // ReadLineX: RO must stall & notify
		fin = true
	})
	r.eng.Spawn("sp", func(p *sim.Proc) {
		op := r.s.Captured().Pop(p)
		if op.Kind != bus.ReadLineX {
			t.Errorf("captured %+v (want upgrade)", op)
		}
		p.Delay(1000)
		r.cls.Set(4, sram.CLReadWrite)
		r.a.ClearScomaNotify(4)
	})
	r.eng.Run()
	if !fin {
		t.Fatal("upgrade never completed")
	}
}

func TestScomaReadWriteStateProceeds(t *testing.T) {
	r := newRig(t)
	addr := testMap.Scoma.Base + 256
	r.cls.Set(8, sram.CLReadWrite)
	r.eng.Spawn("ap", func(p *sim.Proc) {
		r.ch.Store(p, addr, []byte("fastpath"))
		r.ch.Flush(p, addr) // writeback (WriteLine) must proceed too
	})
	r.eng.Run()
	got := make([]byte, 8)
	r.dram.Peek(addr, got)
	if !bytes.Equal(got, []byte("fastpath")) {
		t.Fatalf("got %q", got)
	}
	if r.a.Stats().ScomaRetries != 0 || r.s.Captured().Len() != 0 {
		t.Fatal("RW-state access was interfered with")
	}
}

func TestCtrlMastersViaABIU(t *testing.T) {
	// A CTRL block read must reach DRAM through the aBIU without triggering
	// the aBIU's own decode (it is the master).
	r := newRig(t)
	want := bytes.Repeat([]byte{0x3C}, 128)
	r.dram.Poke(0x1000, want)
	done := false
	r.eng.Schedule(0, func() {
		r.c.IssueCommand(0, &ctrl.BlockRead{DramAddr: 0x1000, SramOff: 0x5000, Len: 128})
		r.c.IssueCommand(0, &ctrl.Configure{Fn: func(*ctrl.Ctrl) { done = true }})
	})
	r.eng.Run()
	got := make([]byte, 128)
	r.aS.Read(0x5000, got)
	if !bytes.Equal(got, want) {
		t.Fatal("block read through aBIU failed")
	}
	if !done || r.a.Stats().CtrlBusOps != 4 {
		t.Fatalf("done=%v busops=%d", done, r.a.Stats().CtrlBusOps)
	}
}
