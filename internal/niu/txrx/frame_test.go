package txrx

import (
	"bytes"
	"testing"
	"testing/quick"

	"startvoyager/internal/arctic"
)

func TestDataRoundTrip(t *testing.T) {
	f := &Frame{Kind: Data, SrcNode: 7, LogicalQ: 300, Payload: []byte("hello")}
	b, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != f.WireSize() || len(b) != DataHeaderBytes+5 {
		t.Fatalf("wire size %d", len(b))
	}
	g, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.Kind != Data || g.SrcNode != 7 || g.LogicalQ != 300 || !bytes.Equal(g.Payload, f.Payload) {
		t.Fatalf("decoded %+v", g)
	}
}

func TestCmdRoundTrip(t *testing.T) {
	f := &Frame{Kind: Cmd, SrcNode: 3, Op: CmdWriteDramCls, Addr: 0x12345678,
		Aux: 2, Count: 4, Payload: make([]byte, 64)}
	b, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.Op != CmdWriteDramCls || g.Addr != 0x12345678 || g.Aux != 2 || g.Count != 4 ||
		len(g.Payload) != 64 {
		t.Fatalf("decoded %+v", g)
	}
}

func TestMaxSizesFitArctic(t *testing.T) {
	d := &Frame{Kind: Data, Payload: make([]byte, MaxDataPayload)}
	b, err := Encode(d)
	if err != nil || len(b) != arctic.MaxPacketBytes {
		t.Fatalf("max data frame: %d bytes, err %v", len(b), err)
	}
	c := &Frame{Kind: Cmd, Payload: make([]byte, MaxCmdPayload)}
	b, err = Encode(c)
	if err != nil || len(b) != arctic.MaxPacketBytes {
		t.Fatalf("max cmd frame: %d bytes, err %v", len(b), err)
	}
}

func TestOversizeRejected(t *testing.T) {
	if _, err := Encode(&Frame{Kind: Data, Payload: make([]byte, MaxDataPayload+1)}); err == nil {
		t.Fatal("oversize data accepted")
	}
	if _, err := Encode(&Frame{Kind: Cmd, Payload: make([]byte, MaxCmdPayload+1)}); err == nil {
		t.Fatal("oversize cmd accepted")
	}
	if _, err := Encode(&Frame{Kind: Kind(9)}); err == nil {
		t.Fatal("bad kind accepted")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{0},                      // too short
		{9, 0, 0, 0, 0, 0, 0, 0}, // bad kind
		{0, 0, 0, 0, 0, 0, 0, 5}, // data length mismatch
		{1, 0, 0, 0, 0, 0, 0, 0}, // cmd too short for cmd header
	}
	for i, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("case %d: decoded garbage", i)
		}
	}
}

func TestCmdOpString(t *testing.T) {
	for op, want := range map[CmdOp]string{
		CmdWriteDram: "WriteDram", CmdWriteDramCls: "WriteDramCls",
		CmdSetCls: "SetCls", CmdNotify: "Notify", CmdWriteSram: "WriteSram",
		CmdWriteWord: "WriteWord",
	} {
		if op.String() != want {
			t.Errorf("%d.String() = %q", op, op.String())
		}
	}
}

// Property: Encode/Decode is the identity on valid frames.
func TestRoundTripProperty(t *testing.T) {
	f := func(kind bool, src, lq, aux, count uint16, addr uint32, op uint8, payload []byte) bool {
		fr := &Frame{SrcNode: src}
		if kind {
			fr.Kind = Data
			fr.LogicalQ = lq
			if len(payload) > MaxDataPayload {
				payload = payload[:MaxDataPayload]
			}
		} else {
			fr.Kind = Cmd
			fr.Op = CmdOp(op % 6)
			fr.Addr = addr
			fr.Aux = aux
			fr.Count = count
			if len(payload) > MaxCmdPayload {
				payload = payload[:MaxCmdPayload]
			}
		}
		fr.Payload = payload
		b, err := Encode(fr)
		if err != nil {
			return false
		}
		g, err := Decode(b)
		if err != nil {
			return false
		}
		if g.Kind != fr.Kind || g.SrcNode != fr.SrcNode || !bytes.Equal(g.Payload, fr.Payload) {
			return false
		}
		if fr.Kind == Data {
			return g.LogicalQ == fr.LogicalQ
		}
		return g.Op == fr.Op && g.Addr == fr.Addr && g.Aux == fr.Aux && g.Count == fr.Count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
