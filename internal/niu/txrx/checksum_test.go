package txrx

import (
	"testing"
	"testing/quick"
)

// The frame checksum exists so a corrupted wire image is rejected at the
// receiver instead of being misparsed (the fault injector flips exactly one
// bit per corruption, so single-bit coverage is the load-bearing property).

func TestChecksumDetectsEverySingleBitFlip(t *testing.T) {
	frames := []*Frame{
		{Kind: Data, SrcNode: 3, LogicalQ: 0x204, Payload: []byte{1, 2, 3, 4}},
		{Kind: Data, SrcNode: 0, LogicalQ: 0},
		{Kind: Cmd, SrcNode: 7, Op: CmdWriteDram, Addr: 0xDEADBEE0, Aux: 9, Count: 2,
			Payload: []byte{0xFF}},
	}
	for _, fr := range frames {
		b, err := Encode(fr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Decode(b); err != nil {
			t.Fatalf("clean frame rejected: %v", err)
		}
		for bit := 0; bit < len(b)*8; bit++ {
			if bit/8 == 1 {
				continue // flipping the checksum byte itself is covered below
			}
			m := append([]byte(nil), b...)
			m[bit/8] ^= 1 << (bit % 8)
			if _, err := Decode(m); err == nil {
				t.Fatalf("%v frame: flipped bit %d went undetected", fr.Kind, bit)
			}
		}
		// A flip inside the checksum byte must also be caught.
		for bit := 8; bit < 16; bit++ {
			m := append([]byte(nil), b...)
			m[bit/8] ^= 1 << (bit % 8)
			if _, err := Decode(m); err == nil {
				t.Fatalf("%v frame: checksum-byte bit %d went undetected", fr.Kind, bit)
			}
		}
	}
}

func TestChecksumStable(t *testing.T) {
	// Encode must be deterministic: same frame, same wire bytes (the
	// byte-identical-trace contract reaches down to the checksum).
	f := func(src, lq uint16, payload []byte) bool {
		if len(payload) > MaxDataPayload {
			payload = payload[:MaxDataPayload]
		}
		fr := &Frame{Kind: Data, SrcNode: src, LogicalQ: lq, Payload: payload}
		a, err1 := Encode(fr)
		b, err2 := Encode(fr)
		if err1 != nil || err2 != nil {
			return false
		}
		return string(a) == string(b) && a[1] == Checksum(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
