// Package txrx implements the TxU/RxU datapath formatting: the wire encoding
// of NIU messages into Arctic packet payloads and back. Two frame kinds
// exist, mirroring the paper's receive-side demultiplexing: data frames are
// steered to a logical receive queue, command frames are enqueued on the
// destination NIU's remote command queue and executed by CTRL without
// firmware involvement.
package txrx

import (
	"encoding/binary"
	"fmt"

	"startvoyager/internal/arctic"
	"startvoyager/internal/sim"
)

// Frame sizes. A data frame is an 8-byte header plus up to 88 payload bytes,
// filling Arctic's 96-byte maximum packet; command frames carry a larger
// header (target address and auxiliary field) and correspondingly less data.
const (
	DataHeaderBytes = 8
	CmdHeaderBytes  = 16
	MaxDataPayload  = arctic.MaxPacketBytes - DataHeaderBytes // 88
	MaxCmdPayload   = arctic.MaxPacketBytes - CmdHeaderBytes  // 80
)

// crcTable holds CRC-8 (poly 0x07, MSB-first) remainders for every byte.
// Each frame carries its checksum at byte 1 — previously an unused pad —
// computed over the whole encoded frame with that byte held at zero. CRC-8
// detects every single-bit error, which is exactly the corruption model the
// fault plane injects; multi-bit errors are caught with probability 255/256.
var crcTable = func() [256]byte {
	var t [256]byte
	for i := 0; i < 256; i++ {
		c := byte(i)
		for b := 0; b < 8; b++ {
			if c&0x80 != 0 {
				c = c<<1 ^ 0x07
			} else {
				c <<= 1
			}
		}
		t[i] = c
	}
	return t
}()

// Checksum computes the CRC-8 of a frame's wire bytes, treating the checksum
// slot (byte 1) as zero so verification can run on the bytes as received.
//
//voyager:noalloc
func Checksum(b []byte) byte {
	var c byte
	for i, v := range b {
		if i == 1 {
			v = 0
		}
		c = crcTable[c^v]
	}
	return c
}

// Kind distinguishes frame types.
type Kind uint8

const (
	// Data frames deliver payload to a logical receive queue.
	Data Kind = iota
	// Cmd frames carry a remote command for the destination CTRL.
	Cmd
)

// CmdOp enumerates remote commands executed by the destination's CTRL.
type CmdOp uint16

const (
	// CmdWriteDram writes the payload into destination DRAM at Addr (payload
	// must be whole, aligned 32-byte lines).
	CmdWriteDram CmdOp = iota
	// CmdWriteDramCls is CmdWriteDram plus a clsSRAM state update for the
	// written lines (state in Aux) — the aBIU extension of approach 5.
	CmdWriteDramCls
	// CmdSetCls sets the clsSRAM state (Aux) for the Count lines starting at
	// the S-COMA line containing Addr.
	CmdSetCls
	// CmdNotify delivers the payload as a data message to logical queue Aux.
	CmdNotify
	// CmdWriteSram writes the payload into destination aSRAM at Addr.
	CmdWriteSram
	// CmdWriteWord writes the payload (1..8 bytes, within one beat) into
	// destination DRAM at Addr with a single word bus operation — used by
	// reflective-memory propagation of uncached stores.
	CmdWriteWord
)

// String names the command op.
func (op CmdOp) String() string {
	switch op {
	case CmdWriteDram:
		return "WriteDram"
	case CmdWriteDramCls:
		return "WriteDramCls"
	case CmdSetCls:
		return "SetCls"
	case CmdNotify:
		return "Notify"
	case CmdWriteSram:
		return "WriteSram"
	case CmdWriteWord:
		return "WriteWord"
	default:
		return fmt.Sprintf("CmdOp(%d)", uint16(op))
	}
}

// Frame is one decoded NIU message.
type Frame struct {
	Kind     Kind
	SrcNode  uint16
	LogicalQ uint16 // data frames: destination logical receive queue
	Payload  []byte

	// Command-frame fields.
	Op    CmdOp
	Addr  uint32
	Aux   uint16
	Count uint16

	// Trace is the message's causal trace context. It is sideband state —
	// never encoded on the wire (Decode leaves it zero; the CTRL copies it
	// from the Arctic packet) — modeling a hardware trace tag that rides next
	// to the data and so survives payload corruption.
	Trace sim.MsgTag
}

// WireSize returns the encoded size in bytes (== the Arctic packet size).
func (f *Frame) WireSize() int {
	if f.Kind == Cmd {
		return CmdHeaderBytes + len(f.Payload)
	}
	return DataHeaderBytes + len(f.Payload)
}

// Encode serializes the frame to freshly allocated wire bytes.
func Encode(f *Frame) ([]byte, error) {
	return EncodeInto(f, nil)
}

// EncodeInto serializes the frame, reusing buf's capacity when it suffices
// (the returned slice aliases buf in that case). Callers that hand the wire
// bytes to the fabric must not reuse buf until the packet is delivered.
//
//voyager:noalloc wire bytes reuse buf's capacity when it suffices
func EncodeInto(f *Frame, buf []byte) ([]byte, error) {
	wireBytes := func(n int) []byte { //voyager:alloc-ok(helper is inlined and does not escape)
		if cap(buf) >= n {
			return buf[:n]
		}
		return make([]byte, n) //voyager:alloc-ok(grows the caller's reusable buffer once)
	}
	switch f.Kind {
	case Data:
		if len(f.Payload) > MaxDataPayload {
			return nil, fmt.Errorf("txrx: data payload %d exceeds %d", len(f.Payload), MaxDataPayload) //voyager:alloc-ok(error path)
		}
		b := wireBytes(DataHeaderBytes + len(f.Payload))
		b[0] = byte(Data)
		binary.BigEndian.PutUint16(b[2:], f.SrcNode)
		binary.BigEndian.PutUint16(b[4:], f.LogicalQ)
		binary.BigEndian.PutUint16(b[6:], uint16(len(f.Payload)))
		copy(b[DataHeaderBytes:], f.Payload)
		b[1] = Checksum(b)
		return b, nil
	case Cmd:
		if len(f.Payload) > MaxCmdPayload {
			return nil, fmt.Errorf("txrx: cmd payload %d exceeds %d", len(f.Payload), MaxCmdPayload) //voyager:alloc-ok(error path)
		}
		b := wireBytes(CmdHeaderBytes + len(f.Payload))
		b[0] = byte(Cmd)
		binary.BigEndian.PutUint16(b[2:], f.SrcNode)
		binary.BigEndian.PutUint16(b[4:], uint16(f.Op))
		binary.BigEndian.PutUint16(b[6:], uint16(len(f.Payload)))
		binary.BigEndian.PutUint32(b[8:], f.Addr)
		binary.BigEndian.PutUint16(b[12:], f.Aux)
		binary.BigEndian.PutUint16(b[14:], f.Count)
		copy(b[CmdHeaderBytes:], f.Payload)
		b[1] = Checksum(b)
		return b, nil
	default:
		return nil, fmt.Errorf("txrx: unknown frame kind %d", f.Kind) //voyager:alloc-ok(error path)
	}
}

// Decode parses wire bytes into a freshly allocated frame.
func Decode(b []byte) (*Frame, error) {
	f := &Frame{}
	if err := DecodeInto(f, b); err != nil {
		return nil, err
	}
	return f, nil
}

// DecodeInto parses wire bytes into f, reusing f's payload capacity. Every
// field of f is overwritten (Trace is zeroed — it is sideband state the
// caller restores). On error f's contents are unspecified.
//
//voyager:noalloc payload lands in f's reused capacity
func DecodeInto(f *Frame, b []byte) error {
	if len(b) < DataHeaderBytes {
		return fmt.Errorf("txrx: frame of %d bytes too short", len(b)) //voyager:alloc-ok(error path)
	}
	if got := Checksum(b); got != b[1] {
		return fmt.Errorf("txrx: checksum mismatch (got %#02x, want %#02x)", got, b[1]) //voyager:alloc-ok(error path)
	}
	pl := f.Payload
	*f = Frame{Kind: Kind(b[0]), SrcNode: binary.BigEndian.Uint16(b[2:])}
	n := int(binary.BigEndian.Uint16(b[6:]))
	switch f.Kind {
	case Data:
		if len(b) != DataHeaderBytes+n {
			return fmt.Errorf("txrx: data frame length %d, header says %d", len(b), n) //voyager:alloc-ok(error path)
		}
		f.LogicalQ = binary.BigEndian.Uint16(b[4:])
		f.Payload = append(pl[:0], b[DataHeaderBytes:]...)
		return nil
	case Cmd:
		if len(b) < CmdHeaderBytes || len(b) != CmdHeaderBytes+n {
			return fmt.Errorf("txrx: cmd frame length %d, header says %d", len(b), n) //voyager:alloc-ok(error path)
		}
		f.Op = CmdOp(binary.BigEndian.Uint16(b[4:]))
		f.Addr = binary.BigEndian.Uint32(b[8:])
		f.Aux = binary.BigEndian.Uint16(b[12:])
		f.Count = binary.BigEndian.Uint16(b[14:])
		f.Payload = append(pl[:0], b[CmdHeaderBytes:]...)
		return nil
	default:
		return fmt.Errorf("txrx: unknown frame kind %d", b[0]) //voyager:alloc-ok(error path)
	}
}
