package lint

import (
	"encoding/json"
	"io"
	"sort"
)

// A Finding is one diagnostic in the machine-readable form emitted by
// `voyager-vet -json`: stable field names, stable ordering, so CI can diff
// artifacts across runs and annotate pull requests.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// SortFindings orders findings deterministically: by file, then position,
// then analyzer name, then message. Two runs over the same tree produce
// byte-identical output regardless of package load order.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// WriteFindingsJSON writes the findings as an indented JSON array followed by
// a newline. A nil or empty slice encodes as [] so consumers always see an
// array.
func WriteFindingsJSON(w io.Writer, fs []Finding) error {
	SortFindings(fs)
	if fs == nil {
		fs = []Finding{}
	}
	b, err := json.MarshalIndent(fs, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
