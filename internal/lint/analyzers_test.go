package lint

import "testing"

func TestNoWallTime(t *testing.T)   { runAnalyzerTest(t, NoWallTime, "testdata/nowalltime") }
func TestNoGlobalRand(t *testing.T) { runAnalyzerTest(t, NoGlobalRand, "testdata/noglobalrand") }
func TestNoMapOrder(t *testing.T)   { runAnalyzerTest(t, NoMapOrder, "testdata/nomaporder") }
func TestNoGoroutine(t *testing.T)  { runAnalyzerTest(t, NoGoroutine, "testdata/nogoroutine") }

// The scoped allowance for the bench parallel harness: the testdata pins its
// import path to startvoyager/internal/bench, where the directive-marked
// function is exempt and undirected concurrency is still flagged.
func TestNoGoroutineBenchHarness(t *testing.T) {
	runAnalyzerTest(t, NoGoroutine, "testdata/nogoroutine_bench")
}
func TestSimTimeUnits(t *testing.T) { runAnalyzerTest(t, SimTimeUnits, "testdata/simtimeunits") }
func TestSpanLeak(t *testing.T)     { runAnalyzerTest(t, SpanLeak, "testdata/spanleak") }
func TestNoAlloc(t *testing.T)      { runAnalyzerTest(t, NoAlloc, "testdata/noalloc") }

// TestSuitePolicy pins which packages each analyzer covers: wall-clock and
// goroutine rules protect model code under internal/ (sim itself may use
// goroutines — it implements Proc with them), while the rand, map-order,
// and time-unit rules apply module-wide.
func TestSuitePolicy(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		path     string
		want     bool
	}{
		{NoWallTime, "startvoyager/internal/bus", true},
		{NoWallTime, "startvoyager/cmd/voyager-bench", false},
		{NoGoroutine, "startvoyager/internal/core", true},
		{NoGoroutine, "startvoyager/internal/sim", false},
		{NoGoroutine, "startvoyager/examples/samplesort", false},
		{NoGlobalRand, "startvoyager/cmd/voyager-net", true},
		{NoMapOrder, "startvoyager/internal/memcheck", true},
		{SimTimeUnits, "startvoyager/examples/samplesort", true},
		{SpanLeak, "startvoyager/internal/bus", true},
		{SpanLeak, "startvoyager/cmd/voyager-bench", true},
		{NoAlloc, "startvoyager/internal/sim", true},
		{NoAlloc, "startvoyager/cmd/voyager-bench", true},
	}
	for _, c := range cases {
		if got := c.analyzer.Applies(c.path); got != c.want {
			t.Errorf("%s.Applies(%q) = %v, want %v", c.analyzer.Name, c.path, got, c.want)
		}
	}
}

// TestSuiteComplete pins the suite contents so a new analyzer cannot be
// added without being wired into the drivers' shared entry point.
func TestSuiteComplete(t *testing.T) {
	want := []string{"nowalltime", "noglobalrand", "nomaporder", "nogoroutine", "simtimeunits", "spanleak", "noalloc"}
	suite := Suite()
	if len(suite) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("suite[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil || a.Applies == nil {
			t.Errorf("%s: incomplete analyzer definition", a.Name)
		}
	}
}
