package lint

// An analysistest-style harness on the stdlib: each analyzer has a testdata
// directory holding one small package; comments of the form
//
//	expr // want "regexp" "regexp2"
//
// assert that the analyzer reports matching diagnostics on that line (one
// regexp per expected diagnostic). The harness type-checks the testdata
// against real export data — `go list -export` resolves imports, including
// startvoyager/internal/sim — so analyzers see exactly the type information
// the drivers give them.

import (
	"errors"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var errNoImports = errors.New("linttest: package has no imports")

var wantRE = regexp.MustCompile(`// want ((?:"(?:[^"\\]|\\.)*"\s*)+)`)
var wantArgRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

func runAnalyzerTest(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata in %s: %v", dir, err)
	}

	fset := token.NewFileSet()
	pkg, err := loadTestPackage(fset, dir, files)
	if err != nil {
		t.Fatal(err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("testdata type error: %v", terr)
	}

	wants := collectWants(t, fset, pkg)

	pass := &Pass{Analyzer: a, Fset: fset, Files: pkg.Files, Pkg: pkg.Pkg, Info: pkg.Info}
	if err := a.Run(pass); err != nil {
		t.Fatal(err)
	}

	for _, d := range pass.Diagnostics() {
		pos := fset.Position(d.Pos)
		key := pos.Filename + ":" + itoa(pos.Line)
		exps := wants[key]
		ok := false
		for _, e := range exps {
			if !e.matched && e.re.MatchString(d.Message) {
				e.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	for key, exps := range wants {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, e.re)
			}
		}
	}
}

// loadTestPackage type-checks the testdata files, resolving their imports
// (stdlib and in-module alike) through `go list -export`. The package's
// import path defaults to startvoyager/internal/lint/<dir>; a testdata file
// can pin a different one with a line of the form
//
//	//linttest:importpath startvoyager/internal/bench
//
// so package-path-scoped analyzer behavior (like nogoroutine's
// parallel-harness allowance) is testable from here.
func loadTestPackage(fset *token.FileSet, dir string, files []string) (*Package, error) {
	imports, err := importsOf(fset, files)
	if err != nil {
		return nil, err
	}
	lookup := func(string) (io.ReadCloser, error) { return nil, errNoImports }
	if len(imports) > 0 {
		deps, err := goList(".", imports)
		if err != nil {
			return nil, err
		}
		lookup = exportLookup(deps)
	}
	importPath := "startvoyager/internal/lint/" + filepath.Base(dir)
	if pinned, err := pinnedImportPath(files); err != nil {
		return nil, err
	} else if pinned != "" {
		importPath = pinned
	}
	return checkFiles(fset, importPath, files, lookup)
}

// pinnedImportPath scans the testdata files for a //linttest:importpath
// directive and returns its argument, or "".
func pinnedImportPath(files []string) (string, error) {
	const directive = "//linttest:importpath "
	for _, name := range files {
		raw, err := os.ReadFile(name)
		if err != nil {
			return "", err
		}
		for _, line := range strings.Split(string(raw), "\n") {
			if strings.HasPrefix(line, directive) {
				return strings.TrimSpace(line[len(directive):]), nil
			}
		}
	}
	return "", nil
}

func collectWants(t *testing.T, fset *token.FileSet, pkg *Package) map[string][]*expectation {
	t.Helper()
	wants := make(map[string][]*expectation)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := pos.Filename + ":" + itoa(pos.Line)
				for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(arg[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, arg[1], err)
					}
					wants[key] = append(wants[key], &expectation{re: re})
				}
			}
		}
	}
	return wants
}

func importsOf(fset *token.FileSet, files []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if !seen[path] {
				seen[path] = true
				out = append(out, path)
			}
		}
	}
	return out, nil
}

func itoa(n int) string { return strconv.Itoa(n) }
