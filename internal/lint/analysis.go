// Package lint implements the determinism contract of the StarT-Voyager
// simulator as a suite of static analyzers.
//
// The simulator's value rests on one invariant: two runs with the same seed
// are bit-identical. internal/sim guarantees strict (time, seq) event order,
// but nothing stops model code from smuggling nondeterminism back in — a
// stray time.Now(), a global math/rand call, an unordered map iteration
// feeding the scheduler, or a raw goroutine racing the engine. Each analyzer
// here encodes one such rule so the contract is checked by machine on every
// change rather than by reviewer vigilance.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) but is self-contained on the standard
// library: packages are type-checked against compiler export data obtained
// from `go list -export` (see load.go), so the module needs no external
// dependencies. Analyzers are pure functions of a type-checked package and
// can be driven by cmd/voyager-vet directly, through the `go vet -vettool`
// unit-checker protocol, or by the linttest harness.
//
// Suppression: a finding can be silenced with a justification comment on
// the same line or the line immediately above:
//
//	//lint:allow <analyzer> <why this is safe>
//
// nomaporder additionally accepts the spelling //lint:ordered <why>, for
// map ranges whose body is genuinely order-insensitive.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one determinism rule and how to check it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:allow comments.
	Name string
	// Doc is a one-paragraph description of what the analyzer forbids and why.
	Doc string
	// Run checks one package, reporting findings through the pass.
	Run func(*Pass) error
	// Applies reports whether the analyzer covers the given import path.
	// The drivers consult it; test harnesses run analyzers unconditionally.
	Applies func(pkgPath string) bool
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Category string // analyzer name
	Message  string
}

// A Pass holds one type-checked package being analyzed plus the Report sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags      []Diagnostic
	suppressed map[suppressKey]bool // built lazily from //lint: comments
}

type suppressKey struct {
	file     string
	line     int
	analyzer string
}

// Reportf records a finding at pos unless a //lint:allow comment covers it.
// Findings in _test.go files are dropped: the determinism contract governs
// model code (tests may use host-side channels and shorthand literals, and
// are exercised under -race instead).
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.buildSuppressions()
	position := p.Fset.Position(pos)
	if strings.HasSuffix(position.Filename, "_test.go") {
		return
	}
	if p.suppressed[suppressKey{position.Filename, position.Line, p.Analyzer.Name}] {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Category: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the findings reported so far, in position order.
func (p *Pass) Diagnostics() []Diagnostic {
	sort.SliceStable(p.diags, func(i, j int) bool { return p.diags[i].Pos < p.diags[j].Pos })
	return p.diags
}

// buildSuppressions scans file comments once for //lint: directives. A
// directive covers its own source line and the line directly below it, so
// both trailing and preceding comment placement work.
func (p *Pass) buildSuppressions() {
	if p.suppressed != nil {
		return
	}
	p.suppressed = make(map[suppressKey]bool)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				position := p.Fset.Position(c.Pos())
				for _, name := range names {
					p.suppressed[suppressKey{position.Filename, position.Line, name}] = true
					p.suppressed[suppressKey{position.Filename, position.Line + 1, name}] = true
				}
			}
		}
	}
}

// parseDirective recognizes //lint:allow and //lint:ordered comments and
// returns the analyzer names they silence.
func parseDirective(text string) ([]string, bool) {
	const allow, ordered = "//lint:allow ", "//lint:ordered"
	if strings.HasPrefix(text, allow) {
		fields := strings.Fields(text[len(allow):])
		if len(fields) == 0 {
			return nil, false
		}
		return fields[:1], true
	}
	if text == ordered || strings.HasPrefix(text, ordered+" ") {
		return []string{"nomaporder"}, true
	}
	return nil, false
}

// Suite is every determinism analyzer, in reporting order.
func Suite() []*Analyzer {
	return []*Analyzer{
		NoWallTime,
		NoGlobalRand,
		NoMapOrder,
		NoGoroutine,
		SimTimeUnits,
		SpanLeak,
		NoAlloc,
	}
}

// simPkgPath is the import path of the simulation engine; several analyzers
// special-case it (its types mark order-sensitive operations, and it alone
// may use real goroutines to implement Procs).
const simPkgPath = "startvoyager/internal/sim"

// isModelPackage reports whether path is one of the simulator's model
// packages (everything under internal/).
func isModelPackage(path string) bool {
	return strings.HasPrefix(path, "startvoyager/internal/")
}

// pkgNameOf returns the imported package's path if id names a package
// (e.g. the `time` in time.Now), or "" otherwise.
func pkgNameOf(info *types.Info, id *ast.Ident) string {
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// selectorPkgFunc matches expressions of the form pkg.Name where pkg is an
// imported package identifier; it returns the package path and selected name.
func selectorPkgFunc(info *types.Info, e ast.Expr) (pkgPath, name string, sel *ast.SelectorExpr) {
	s, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", "", nil
	}
	id, ok := s.X.(*ast.Ident)
	if !ok {
		return "", "", nil
	}
	path := pkgNameOf(info, id)
	if path == "" {
		return "", "", nil
	}
	return path, s.Sel.Name, s
}
