package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NoMapOrder flags range statements over maps whose body is sensitive to
// iteration order. Go randomizes map order per run, so a map range that
// schedules events, touches simulation state, appends to an ordered output,
// accumulates floats (non-associative), or returns/breaks on an arbitrary
// element makes results differ between identically-seeded runs. The fix is
// to iterate a sorted key slice; a loop that is genuinely commutative can
// carry a //lint:ordered justification instead.
var NoMapOrder = &Analyzer{
	Name: "nomaporder",
	Doc: "flag order-sensitive iteration over maps; sort keys first or " +
		"annotate the loop with //lint:ordered <why>",
	Applies: func(string) bool { return true },
	Run:     runNoMapOrder,
}

func runNoMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		sorted := sortedVars(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if reason := orderSensitive(pass, rng, sorted); reason != "" {
				pass.Reportf(rng.Pos(),
					"map iteration order is random and this loop %s; iterate sorted keys or annotate //lint:ordered", reason)
			}
			return true
		})
	}
	return nil
}

// sortedVars collects variables that are passed to a sort call anywhere in
// the file. Appending to such a slice inside a map range is the canonical
// deterministic-iteration idiom (collect keys, sort, iterate), so those
// appends are not order-sensitive.
func sortedVars(pass *Pass, f *ast.File) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		pkgPath, name, sel := selectorPkgFunc(pass.Info, call.Fun)
		if sel == nil {
			return true
		}
		isSort := (pkgPath == "sort" && (name == "Sort" || name == "Stable" || name == "Ints" ||
			name == "Strings" || name == "Float64s" || name == "Slice" || name == "SliceStable")) ||
			(pkgPath == "slices" && strings.HasPrefix(name, "Sort"))
		if !isSort {
			return true
		}
		if id, ok := call.Args[0].(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// orderSensitive scans a map-range body for effects whose outcome depends
// on visit order, returning a description of the first one found.
func orderSensitive(pass *Pass, rng *ast.RangeStmt, sorted map[types.Object]bool) string {
	reason := ""
	// returnEscapes: a return here exits the enclosing function (false only
	// inside func literals). breakBinds: a bare break here exits our map
	// range (false under any nested loop/switch/select).
	var walk func(n ast.Node, returnEscapes, breakBinds bool) bool
	walk = func(n ast.Node, returnEscapes, breakBinds bool) bool {
		if n == nil || reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			// A func literal's returns/breaks do not exit our loop, but its
			// body still runs per-iteration if called, so keep scanning it
			// for order-sensitive effects.
			ast.Inspect(n.Body, func(m ast.Node) bool { return walk(m, false, false) })
			return false
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			// break inside binds to the nested statement, but a return
			// still exits the whole function.
			ast.Inspect(n, func(m ast.Node) bool {
				if m == n {
					return true
				}
				return walk(m, returnEscapes, false)
			})
			return false
		case *ast.ReturnStmt:
			if returnEscapes {
				reason = "returns on an arbitrary element"
			}
			return false
		case *ast.BranchStmt:
			if breakBinds && n.Tok == token.BREAK {
				reason = "breaks on an arbitrary element"
			}
			return false
		case *ast.AssignStmt:
			if r := orderSensitiveAssign(pass, rng, n, sorted); r != "" {
				reason = r
			}
		case *ast.CallExpr:
			if r := simEffectCall(pass, n); r != "" {
				reason = r
			}
		}
		return reason == ""
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if n == ast.Node(rng.Body) {
			return true
		}
		return walk(n, true, true)
	})
	return reason
}

// orderSensitiveAssign recognizes appends to variables living outside the
// loop and floating-point accumulation.
func orderSensitiveAssign(pass *Pass, rng *ast.RangeStmt, as *ast.AssignStmt, sorted map[types.Object]bool) string {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(as.Lhs) == 1 && isFloat(pass.Info.Types[as.Lhs[0]].Type) {
			return "accumulates floating-point values (non-associative)"
		}
	case token.ASSIGN:
		// x = x + v with float x.
		if len(as.Lhs) == 1 && len(as.Rhs) == 1 && isFloat(pass.Info.Types[as.Lhs[0]].Type) {
			if lhs, ok := as.Lhs[0].(*ast.Ident); ok {
				if bin, ok := as.Rhs[0].(*ast.BinaryExpr); ok && mentionsIdent(pass, bin, lhs) {
					return "accumulates floating-point values (non-associative)"
				}
			}
		}
	}
	for _, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "append" || len(call.Args) == 0 {
			continue
		}
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
			continue
		}
		if target, ok := call.Args[0].(*ast.Ident); ok {
			if obj := pass.Info.Uses[target]; obj != nil && !sorted[obj] &&
				(obj.Pos() < rng.Pos() || obj.Pos() > rng.End()) {
				return "appends to ordered output declared outside it"
			}
		}
	}
	return ""
}

// simEffectCall reports calls that drive the simulation: methods on types
// defined in internal/sim (Engine.Schedule, Cond.Signal, Queue.Push, ...)
// and any call handed a *sim.Proc (the model-API convention for operations
// that consume simulated time).
func simEffectCall(pass *Pass, call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if s := pass.Info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
			if named, ok := derefType(s.Recv()).(*types.Named); ok {
				if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == simPkgPath {
					return "schedules simulation events (" + named.Obj().Name() + "." + sel.Sel.Name + ")"
				}
			}
		}
		if pkgPath, name, s := selectorPkgFunc(pass.Info, call.Fun); s != nil && pkgPath == simPkgPath {
			return "schedules simulation events (sim." + name + ")"
		}
	}
	for _, arg := range call.Args {
		if tv, ok := pass.Info.Types[arg]; ok {
			if named, ok := derefType(tv.Type).(*types.Named); ok {
				if pkg := named.Obj().Pkg(); pkg != nil &&
					pkg.Path() == simPkgPath && named.Obj().Name() == "Proc" {
					return "performs simulated-time operations (*sim.Proc argument)"
				}
			}
		}
	}
	return ""
}

func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func mentionsIdent(pass *Pass, e ast.Expr, target *ast.Ident) bool {
	obj := pass.Info.Uses[target]
	if obj == nil {
		obj = pass.Info.Defs[target]
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj && obj != nil {
			found = true
		}
		return !found
	})
	return found
}
