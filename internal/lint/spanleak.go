package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// SpanLeak flags sim.Span values that are opened but can never be closed: a
// span-producing call (sim.Engine.BeginSpan or any wrapper returning
// sim.Span) whose result is discarded, assigned to the blank identifier, or
// bound to a variable that no reachable code ever calls End() on. An open
// span corrupts the trace export — the Perfetto writer has no end timestamp
// for it, so the track renders a begin with no duration and every nested
// span after it mis-parents.
//
// The check is a conservative function-free dataflow over identifiers: a
// tracked variable is cleared by any x.End(...) call anywhere in the file
// (including closures, where the real emitters end their spans), and
// ownership transfers when the value escapes — returned, passed as an
// argument, copied to another variable, or stored in a field or element.
// Only spans that are provably never ended and never escape are reported, so
// a finding is always real.
var SpanLeak = &Analyzer{
	Name: "spanleak",
	Doc: "flag sim.Span results that are discarded or never End()ed; " +
		"every opened span must be closed or handed off",
	Applies: func(path string) bool { return true },
	Run:     runSpanLeak,
}

func runSpanLeak(pass *Pass) error {
	for _, f := range pass.Files {
		checkSpanLeakFile(pass, f)
	}
	return nil
}

func checkSpanLeakFile(pass *Pass, f *ast.File) {
	// Pass 1: every call expression whose static type is sim.Span.
	spanCalls := make(map[*ast.CallExpr]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isSpanCall(pass.Info, call) {
			spanCalls[call] = true
		}
		return true
	})
	if len(spanCalls) == 0 {
		return
	}

	// Pass 2: classify the immediate context of each producing call. Calls
	// left in spanCalls afterwards sit inside a larger expression (return
	// statement, argument list, composite literal) — the value escapes and
	// the receiver owns the End.
	type spanVar struct {
		pos            token.Pos
		name           string
		ended, escaped bool
	}
	vars := make(map[types.Object]*spanVar)
	benign := make(map[*ast.Ident]bool) // uses that neither end nor escape
	bind := func(lhs ast.Expr, call *ast.CallExpr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return // field or element store: ownership transferred
		}
		if id.Name == "_" {
			pass.Reportf(call.Pos(), "span assigned to _ is never End()ed; bind it and close it, or drop the call")
			return
		}
		benign[id] = true
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id] // plain `=` to a pre-declared variable
		}
		if obj == nil {
			return
		}
		if _, seen := vars[obj]; !seen {
			vars[obj] = &spanVar{pos: call.Pos(), name: id.Name}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if call, ok := rhs.(*ast.CallExpr); ok && spanCalls[call] {
					delete(spanCalls, call)
					bind(n.Lhs[i], call)
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) != len(n.Values) {
				return true
			}
			for i, rhs := range n.Values {
				if call, ok := rhs.(*ast.CallExpr); ok && spanCalls[call] {
					delete(spanCalls, call)
					bind(n.Names[i], call)
				}
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && spanCalls[call] {
				delete(spanCalls, call)
				pass.Reportf(call.Pos(), "span result discarded; the span is never End()ed")
			}
		}
		return true
	})

	// Pass 3: resolve each use of a tracked variable. Method calls on the
	// span are benign queries unless the method is End; reassignment targets
	// are overwrites, not escapes.
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if v, tracked := vars[pass.Info.Uses[id]]; tracked {
				benign[id] = true
				if sel.Sel.Name == "End" {
					v.ended = true
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if _, tracked := vars[pass.Info.Uses[id]]; tracked {
						benign[id] = true
					}
				}
			}
		}
		return true
	})
	ast.Inspect(f, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || benign[id] {
			return true
		}
		if v, tracked := vars[pass.Info.Uses[id]]; tracked {
			v.escaped = true // returned, passed, copied: receiver owns the End
		}
		return true
	})

	leaks := make([]*spanVar, 0, len(vars))
	for _, v := range vars {
		if !v.ended && !v.escaped {
			leaks = append(leaks, v)
		}
	}
	sort.Slice(leaks, func(i, j int) bool { return leaks[i].pos < leaks[j].pos })
	for _, v := range leaks {
		pass.Reportf(v.pos, "span %s is never End()ed on any path; close it (defer works) or hand it off", v.name)
	}
}

// isSpanCall reports whether call's static result type is sim.Span.
func isSpanCall(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Span" && obj.Pkg() != nil && obj.Pkg().Path() == simPkgPath
}
