// Package a exercises the noalloc analyzer's per-construct allocation
// checks: every construct that can heap-allocate is reported inside a
// function marked //voyager:noalloc, and nowhere else.
package a

type point struct {
	x, y int
}

type packet struct {
	payload interface{}
}

type sink struct {
	buf  []byte
	vals []interface{}
}

// unmarked functions may allocate freely: no findings here.
func unmarked() *point {
	_ = make([]byte, 64)
	_ = map[string]int{"a": 1}
	return &point{1, 2}
}

//voyager:noalloc
func literals() {
	_ = &point{1, 2}      // want "composite literal escapes to the heap"
	_ = []int{1, 2, 3}    // want "slice literal allocates"
	_ = map[string]int{}  // want "map literal allocates"
	_ = point{1, 2}       // a value literal stays on the stack: no finding
	_ = new(point)        // want "new\(T\) allocates"
	_ = make([]byte, 16)  // want "make allocates a slice"
	_ = make(map[int]int) // want "map creation"
	_ = make(chan int)    // want "channel creation"
}

//voyager:noalloc
func appends(s *sink, extra []byte) {
	s.buf = append(s.buf, extra...) // want "append may grow its backing array"
	s.buf = append(s.buf[:0], extra...)
	s.buf = append(s.buf[:4], extra...)
}

//voyager:noalloc
func boxing(s *sink, p point, pp *point) {
	var i interface{} = p // want "declaration boxes a.point into interface"
	i = p                 // want "assignment boxes a.point into interface"
	i = pp                // a pointer rides in the interface word: no finding
	_ = i
	_ = any(p)                     // want "conversion boxes a.point into"
	_ = packet{payload: p}         // want "field payload boxes a.point into interface"
	_ = packet{payload: pp}        // pointer payload: no finding
	s.vals = append(s.vals[:0], p) // want "append element boxes a.point into interface"
}

//voyager:noalloc
func boxedReturn(p point) interface{} {
	return p // want "return value boxes a.point into interface"
}

//voyager:noalloc
func conversions(s *sink, str string) {
	_ = []byte(str)   // want "byte\(string\) conversion copies"
	_ = string(s.buf) // want "string\(..byte\) conversion copies"
	_ = s.buf[0]      // indexing is free: no finding
}

//voyager:noalloc
func closures(n int) {
	f := func() int { return n } // want "closure captures .n. and allocates"
	_ = f()
	g := func() int { return 7 } // captures nothing: no finding
	_ = g()
	defer func() { n++ }() // want "deferred closure captures .n."
}

//voyager:noalloc
func variadics(s *sink, p point) {
	logf("x", 1, p) // want "variadic \.\.\.interface.. arguments allocate"
	logf("x")
	logf("x", s.vals...) // passing an existing slice through: no finding
}

// logf models a fmt-style sink; the marked caller is what gets checked.
//
//voyager:noalloc
func logf(format string, args ...interface{}) {
	_ = format
	_ = args
}
