package a

import "startvoyager/internal/sim"

// helper is deliberately unmarked: calling it from noalloc code is the
// canonical call-graph violation.
func helper() int { return 1 }

//voyager:noalloc
func fast() int { return 2 }

type plumb struct {
	eng   *sim.Engine
	runFn func()
	n     int
}

//voyager:noalloc
func (p *plumb) tick() { p.n++ }

// callGraph: same-package callees must be marked; the engine primitives on
// the audited allowlist pass.
//
//voyager:noalloc
func (p *plumb) callGraph() {
	_ = fast()
	_ = helper() // want "calls helper, which is not marked //voyager:noalloc"
	p.eng.Schedule(0, p.runFn)
	_ = p.eng.Now()
	p.eng.Run() // want "calls .*Engine..Run, which is not on the noalloc allowlist"
}

//voyager:noalloc
func (p *plumb) methodValues() {
	p.tick()                  // a direct call binds nothing: no finding
	p.eng.Schedule(0, p.tick) // want "method value .a.plumb.tick binds a closure"
}

// excuses: a well-formed alloc-ok silences the finding on its line; an
// empty reason or an excuse with nothing to excuse is directive misuse.
//
//voyager:noalloc
func (p *plumb) excuses() {
	_ = make([]byte, 8) //voyager:alloc-ok(cold path, runs once at setup)
	_ = new(point)      //voyager:alloc-ok() // want "voyager:alloc-ok requires a reason" "new\(T\) allocates"
	p.n++               //voyager:alloc-ok(nothing allocates here) // want "voyager:alloc-ok excuses nothing"
}
