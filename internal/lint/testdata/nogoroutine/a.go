// Package a exercises the nogoroutine analyzer: real concurrency is
// reserved for internal/sim; model code gets Procs and Conds.
package a

func badGo() {
	go func() {}() // want "go statement in model code"
}

func badChannels() {
	ch := make(chan int, 1) // want "channel creation in model code"
	ch <- 1                 // want "channel send in model code"
	_ = <-ch                // want "channel receive in model code"
}

func badSelect(a, b chan int) {
	select { // want "select in model code"
	case <-a: // want "channel receive in model code"
	case <-b: // want "channel receive in model code"
	}
}

func badRange(ch chan int) {
	for v := range ch { // want "range over channel in model code"
		_ = v
	}
}

// The parallel-harness directive is scoped to startvoyager/internal/bench;
// here (any other package) it is itself a finding and grants nothing.
//
//voyager:parallel-harness not sanctioned in this package
func badDirective() { // want "parallel-harness directive outside startvoyager/internal/bench"
	go func() {}() // want "go statement in model code"
}

func good(xs []int) int {
	// Slices, maps, and plain control flow are untouched.
	total := 0
	for _, x := range xs {
		total += x
	}
	m := make(map[int]int)
	m[1] = total
	return m[1]
}
