// Package a exercises the spanleak analyzer: every opened sim.Span must be
// End()ed or handed off to a receiver that will end it.
package a

import "startvoyager/internal/sim"

type holder struct {
	span sim.Span
}

func discarded(eng *sim.Engine) {
	eng.BeginSpan(0, "bus", "read") // want "span result discarded"
}

func blanked(eng *sim.Engine) {
	_ = eng.BeginSpan(0, "bus", "read") // want "span assigned to _ is never End"
}

func leaked(eng *sim.Engine) {
	s := eng.BeginSpan(0, "bus", "read") // want "span s is never End"
	_ = s.Active()                       // a query is not a close
}

func leakedViaWrapper(eng *sim.Engine) {
	// Wrappers returning sim.Span are producers too.
	s := open(eng) // want "span s is never End"
	_ = s.Active()
}

func ended(eng *sim.Engine) {
	s := eng.BeginSpan(0, "bus", "read")
	s.End()
}

func deferred(eng *sim.Engine) {
	s := eng.BeginSpan(0, "bus", "read")
	defer s.End()
}

func endedInClosure(eng *sim.Engine) {
	// The emitter pattern: assignment under an observer guard, End inside a
	// scheduled closure.
	var s sim.Span
	if eng.Observed() {
		s = eng.BeginSpan(0, "bus", "read")
	}
	eng.Schedule(0, func() { s.End() })
}

func open(eng *sim.Engine) sim.Span {
	// Escape via return: the caller owns the End.
	return eng.BeginSpan(0, "fw", "dispatch")
}

func stored(eng *sim.Engine, h *holder) {
	// Escape via field store: the holder owns the End.
	h.span = eng.BeginSpan(0, "fw", "dispatch")
}

func handedOff(eng *sim.Engine) {
	// Escape via copy and argument: ownership transfers.
	s := eng.BeginSpan(0, "fw", "dispatch")
	t := s
	finish(t)
}

func finish(s sim.Span) { s.End() }
