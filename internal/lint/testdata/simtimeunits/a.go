// Package a exercises the simtimeunits analyzer: sim.Time slots take
// unit-qualified expressions, not bare integer literals.
package a

import "startvoyager/internal/sim"

type cfg struct {
	Latency sim.Time
	Cycles  int
}

func after(d sim.Time)        {}
func sum(ds ...sim.Time)      {}
func mixed(n int, d sim.Time) {}
func run(eng *sim.Engine)     { eng.Schedule(10, func() {}) } // want "raw integer 10 passed as sim.Time"

func badCalls() {
	after(100)  // want "raw integer 100 passed as sim.Time"
	after(-5)   // want "raw integer -5 passed as sim.Time"
	mixed(3, 7) // want "raw integer 7 passed as sim.Time"
	sum(1, 2)   // want "raw integer 1 passed as sim.Time" "raw integer 2 passed as sim.Time"
}

func badConversion() sim.Time {
	return sim.Time(250) // want "raw integer 250 converted to sim.Time"
}

func badComposites() {
	_ = cfg{Latency: 50, Cycles: 4}   // want "raw integer 50 assigned to field Latency"
	_ = []sim.Time{5, 0}              // want "raw integer 5 used as sim.Time"
	_ = map[string]sim.Time{"hit": 6} // want "raw integer 6 used as sim.Time"
}

func badAssigns() {
	var d sim.Time = 10 // want "raw integer 10 assigned to sim.Time"
	d = 20              // want "raw integer 20 assigned to sim.Time"
	_ = d
}

func good() {
	after(0) // zero means "now"; no unit ambiguity
	after(100 * sim.Nanosecond)
	after(2 * sim.Microsecond)
	var d sim.Time
	after(d)
	after(sim.Time(someInt()))
	_ = cfg{Latency: 15 * sim.Nanosecond, Cycles: 4}
	n := 30
	_ = n
}

func justified(eng *sim.Engine) {
	//lint:allow simtimeunits legacy table transcribed verbatim from the paper
	after(88)
}

func someInt() int { return 1 }
