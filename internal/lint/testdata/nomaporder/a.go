// Package a exercises the nomaporder analyzer: ranging over a map is fine
// until the body does something whose outcome depends on visit order.
package a

import (
	"sort"

	"startvoyager/internal/sim"
)

func appendsToOuter(m map[int]int) []int {
	var out []int
	for k := range m { // want "appends to ordered output"
		out = append(out, k)
	}
	return out
}

func sortedAfter(m map[int]int) []int {
	// The canonical fix: collecting keys is order-insensitive when the
	// slice is sorted before use.
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func floatAccumulate(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want "accumulates floating-point"
		sum += v
	}
	return sum
}

func floatAccumulatePlain(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m { // want "accumulates floating-point"
		sum = sum + v
	}
	return sum
}

func intAccumulate(m map[string]int) int {
	// Integer addition is associative and commutative: order cannot matter.
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

func earlyReturn(m map[int]int) int {
	for k, v := range m { // want "returns on an arbitrary element"
		if v > 3 {
			return k
		}
	}
	return -1
}

func earlyBreak(m map[int]int) {
	found := false
	for _, v := range m { // want "breaks on an arbitrary element"
		if v == 0 {
			found = true
			break
		}
	}
	_ = found
}

func returnInNestedLoop(m map[int][]int) int {
	// A return exits the function from any nesting depth, so it still
	// selects an arbitrary map element.
	for k, vs := range m { // want "returns on an arbitrary element"
		for _, v := range vs {
			if v == 0 {
				return k
			}
		}
	}
	return -1
}

func nestedLoopBreakIsFine(m map[int][]int) {
	count := 0
	for _, vs := range m {
		for _, v := range vs {
			if v == 0 {
				break
			}
			count += v
		}
	}
	_ = count
}

func schedules(eng *sim.Engine, m map[int]int) {
	for k := range m { // want "schedules simulation events"
		k := k
		eng.Schedule(0, func() { _ = k })
	}
}

func procOps(p *sim.Proc, m map[int]sim.Time) {
	wait := func(p *sim.Proc, d sim.Time) { p.Delay(d) }
	for _, d := range m { // want "simulated-time operations"
		wait(p, d)
	}
}

func justified(m map[int]int) []int {
	var out []int
	//lint:ordered consumer treats this as a set; order is irrelevant
	for k := range m {
		out = append(out, k)
	}
	return out
}
