//linttest:importpath startvoyager/internal/bench

// Package bench exercises the scoped parallel-harness allowance: inside
// startvoyager/internal/bench (the import path is pinned above), a function
// whose doc comment carries //voyager:parallel-harness may use real
// concurrency; everything else in the package is still flagged.
package bench

import "sync"

// sanctioned fans independent cells across workers, like the real harness.
//
//voyager:parallel-harness cells are independent; results merge in fixed order
func sanctioned(n int, fn func(int)) {
	results := make(chan int, n) // allowed inside the sanctioned harness
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
			results <- i
		}(i)
	}
	wg.Wait()
	for range [2]int{} {
		<-results
	}
}

// stillFlagged has no directive: the allowance is per-function, not
// package-wide.
func stillFlagged() {
	go func() {}()          // want "go statement in model code"
	ch := make(chan int, 1) // want "channel creation in model code"
	ch <- 1                 // want "channel send in model code"
}
