// Package a exercises the noglobalrand analyzer: the implicitly-seeded
// global source is forbidden; explicitly seeded *rand.Rand values are fine.
package a

import (
	"math/rand"
	"time"
)

func bad() {
	_ = rand.Intn(10)                  // want "rand.Intn uses the global rand source"
	_ = rand.Int63()                   // want "rand.Int63 uses the global rand source"
	_ = rand.Float64()                 // want "rand.Float64 uses the global rand source"
	_ = rand.Perm(4)                   // want "rand.Perm uses the global rand source"
	rand.Shuffle(3, func(i, j int) {}) // want "rand.Shuffle uses the global rand source"
	rand.Seed(42)                      // want "rand.Seed uses the global rand source"
}

func wallClockSeed() {
	_ = rand.New(rand.NewSource(time.Now().UnixNano())) // want "seeded from the wall clock"
}

func good(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	_ = rng.Intn(10)
	_ = rng.Float64()
	zipf := rand.NewZipf(rng, 1.1, 1, 100)
	_ = zipf.Uint64()
}

func justified() {
	//lint:allow noglobalrand demo code outside any measured run
	_ = rand.Intn(3)
}
