// Package a exercises the nowalltime analyzer: wall-clock reads and timers
// are forbidden; pure time arithmetic and formatting are not.
package a

import "time"

func bad() {
	t := time.Now()            // want "time.Now reads the wall clock"
	_ = time.Since(t)          // want "time.Since reads the wall clock"
	_ = time.Until(t)          // want "time.Until reads the wall clock"
	time.Sleep(time.Second)    // want "time.Sleep reads the wall clock"
	<-time.After(time.Second)  // want "time.After reads the wall clock"
	_ = time.Tick(time.Second) // want "time.Tick reads the wall clock"
	_ = time.NewTimer(0)       // want "time.NewTimer reads the wall clock"
	_ = time.NewTicker(1)      // want "time.NewTicker reads the wall clock"
}

func funcValue() {
	// Passing the clock around as a value is just as much a leak as calling it.
	clock := time.Now // want "time.Now reads the wall clock"
	_ = clock
}

func good() {
	var d time.Duration = 5 * time.Second
	_ = d.String()
	_, _ = time.ParseDuration("3ms")
	_ = time.Unix(0, 0)
}

func justified() {
	//lint:allow nowalltime host-side profiling hook, never feeds sim state
	_ = time.Now()
}
