package lint

import (
	"bytes"
	"testing"
)

// TestFindingsJSONGolden pins the -json wire format: field names, ordering,
// indentation, and the empty-array encoding. CI scripts parse this; any
// change here is a consumer-visible format change.
func TestFindingsJSONGolden(t *testing.T) {
	in := []Finding{
		{File: "b.go", Line: 2, Col: 1, Analyzer: "noalloc", Message: "zeta"},
		{File: "a.go", Line: 9, Col: 3, Analyzer: "spanleak", Message: "beta"},
		{File: "a.go", Line: 9, Col: 3, Analyzer: "noalloc", Message: "alpha"},
		{File: "a.go", Line: 2, Col: 7, Analyzer: "noalloc", Message: "gamma"},
	}
	const golden = `[
  {
    "file": "a.go",
    "line": 2,
    "col": 7,
    "analyzer": "noalloc",
    "message": "gamma"
  },
  {
    "file": "a.go",
    "line": 9,
    "col": 3,
    "analyzer": "noalloc",
    "message": "alpha"
  },
  {
    "file": "a.go",
    "line": 9,
    "col": 3,
    "analyzer": "spanleak",
    "message": "beta"
  },
  {
    "file": "b.go",
    "line": 2,
    "col": 1,
    "analyzer": "noalloc",
    "message": "zeta"
  }
]
`
	var buf bytes.Buffer
	if err := WriteFindingsJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	if buf.String() != golden {
		t.Errorf("JSON output mismatch:\ngot:\n%s\nwant:\n%s", buf.String(), golden)
	}

	// Determinism: encoding the same findings again is byte-identical.
	var buf2 bytes.Buffer
	if err := WriteFindingsJSON(&buf2, in); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("two encodings of the same findings differ")
	}

	var empty bytes.Buffer
	if err := WriteFindingsJSON(&empty, nil); err != nil {
		t.Fatal(err)
	}
	if empty.String() != "[]\n" {
		t.Errorf("empty findings = %q, want %q", empty.String(), "[]\n")
	}
}
