package lint

import "go/ast"

// wallClockFuncs are the package time functions that observe or wait on the
// host's clock. Pure conversions and formatting (time.Duration, ParseDuration)
// stay legal.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// NoWallTime forbids wall-clock access in model packages. The simulator has
// exactly one clock — sim.Time advanced by the engine — and any time.Now or
// timer leaking into model code makes results depend on host speed and load,
// destroying same-seed reproducibility.
var NoWallTime = &Analyzer{
	Name: "nowalltime",
	Doc: "forbid time.Now/Since/Sleep/After and friends in model packages; " +
		"simulated components must read sim.Time from the engine",
	Applies: isModelPackage,
	Run:     runNoWallTime,
}

func runNoWallTime(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			e, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			// Flagging the selector itself (not just calls) also catches
			// passing time.Now around as a function value.
			pkgPath, name, sel := selectorPkgFunc(pass.Info, e)
			if sel != nil && pkgPath == "time" && wallClockFuncs[name] {
				pass.Reportf(sel.Pos(),
					"time.%s reads the wall clock; model code must use the engine's sim.Time", name)
			}
			return true
		})
	}
	return nil
}
