package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NoGoroutine forbids real concurrency — go statements, channels, select —
// in model packages. The engine is single-threaded by design: modeled
// concurrency must be expressed as scheduled events or as sim.Proc/sim.Cond,
// which the engine runs in strict handoff. A raw goroutine or channel next
// to the event loop reintroduces scheduler-dependent interleavings (the
// exact failure mode the platform exists to exclude). Only internal/sim
// itself may use them, to implement Proc's deterministic handoff.
//
// One scoped exception exists: the deterministic parallel run harness in
// internal/bench fans fully independent engines (one per cell) across
// worker goroutines and merges results in fixed cell order. A function
// there whose doc comment carries the directive
//
//	//voyager:parallel-harness <why it stays deterministic>
//
// is exempt from this analyzer. The directive is honored only in
// startvoyager/internal/bench; placed anywhere else it is itself reported,
// so the allowance cannot silently spread.
var NoGoroutine = &Analyzer{
	Name: "nogoroutine",
	Doc: "forbid go statements, channel operations, and select outside internal/sim; " +
		"model concurrency with sim.Proc and sim.Cond",
	Applies: func(path string) bool { return isModelPackage(path) && path != simPkgPath },
	Run:     runNoGoroutine,
}

// parallelHarnessDirective marks the one sanctioned real-concurrency site.
const parallelHarnessDirective = "//voyager:parallel-harness"

// parallelHarnessPkg is the only package whose directive is honored.
const parallelHarnessPkg = "startvoyager/internal/bench"

// hasParallelDirective reports whether the function's doc comment carries
// the parallel-harness directive.
func hasParallelDirective(d *ast.FuncDecl) bool {
	if d.Doc == nil {
		return false
	}
	for _, c := range d.Doc.List {
		if c.Text == parallelHarnessDirective ||
			strings.HasPrefix(c.Text, parallelHarnessDirective+" ") {
			return true
		}
	}
	return false
}

func runNoGoroutine(pass *Pass) error {
	pkgPath := ""
	if pass.Pkg != nil {
		pkgPath = pass.Pkg.Path()
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && hasParallelDirective(fd) {
				if pkgPath == parallelHarnessPkg {
					continue // the sanctioned harness: skip the whole function
				}
				pass.Reportf(fd.Pos(),
					"parallel-harness directive outside %s; the allowance is scoped to the bench run harness",
					parallelHarnessPkg)
			}
			checkNoGoroutine(pass, decl)
		}
	}
	return nil
}

func checkNoGoroutine(pass *Pass, root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in model code; use sim.Proc for modeled concurrency")
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(), "select in model code; use sim.Cond or sim.Queue for modeled waiting")
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send in model code; use sim.Queue for modeled queues")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), "channel receive in model code; use sim.Queue for modeled queues")
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "make" && len(n.Args) > 0 {
				if _, ok := n.Args[0].(*ast.ChanType); ok {
					pass.Reportf(n.Pos(), "channel creation in model code; use sim.Queue for modeled queues")
				}
			}
		case *ast.RangeStmt:
			if tv, ok := pass.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					pass.Reportf(n.Pos(), "range over channel in model code; use sim.Queue for modeled queues")
				}
			}
		}
		return true
	})
}
