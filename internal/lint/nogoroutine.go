package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoGoroutine forbids real concurrency — go statements, channels, select —
// in model packages. The engine is single-threaded by design: modeled
// concurrency must be expressed as scheduled events or as sim.Proc/sim.Cond,
// which the engine runs in strict handoff. A raw goroutine or channel next
// to the event loop reintroduces scheduler-dependent interleavings (the
// exact failure mode the platform exists to exclude). Only internal/sim
// itself may use them, to implement Proc's deterministic handoff.
var NoGoroutine = &Analyzer{
	Name: "nogoroutine",
	Doc: "forbid go statements, channel operations, and select outside internal/sim; " +
		"model concurrency with sim.Proc and sim.Cond",
	Applies: func(path string) bool { return isModelPackage(path) && path != simPkgPath },
	Run:     runNoGoroutine,
}

func runNoGoroutine(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "go statement in model code; use sim.Proc for modeled concurrency")
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select in model code; use sim.Cond or sim.Queue for modeled waiting")
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "channel send in model code; use sim.Queue for modeled queues")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "channel receive in model code; use sim.Queue for modeled queues")
				}
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "make" && len(n.Args) > 0 {
					if _, ok := n.Args[0].(*ast.ChanType); ok {
						pass.Reportf(n.Pos(), "channel creation in model code; use sim.Queue for modeled queues")
					}
				}
			case *ast.RangeStmt:
				if tv, ok := pass.Info.Types[n.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						pass.Reportf(n.Pos(), "range over channel in model code; use sim.Queue for modeled queues")
					}
				}
			}
			return true
		})
	}
	return nil
}
