package lint

import "go/ast"

// globalRandFuncs are the math/rand (and /v2) package-level functions backed
// by the shared global source. Constructors (New, NewSource, NewZipf, NewPCG,
// NewChaCha8) and types (rand.Rand, rand.Source) remain legal: explicit,
// seeded sources are exactly what the contract wants.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "IntN": true,
	"Int31": true, "Int31n": true, "Int32": true, "Int32N": true,
	"Int63": true, "Int63n": true, "Int64": true, "Int64N": true,
	"Uint": true, "Uint32": true, "Uint32N": true,
	"Uint64": true, "Uint64N": true, "UintN": true,
	"Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true, "N": true,
}

func isRandPkg(path string) bool { return path == "math/rand" || path == "math/rand/v2" }

// NoGlobalRand forbids the implicitly-seeded global math/rand source. All
// randomness must flow through a *rand.Rand constructed from a seed carried
// in run configuration; otherwise two runs with the same config can draw
// different schedules (and Go randomizes the global seed since 1.20).
var NoGlobalRand = &Analyzer{
	Name: "noglobalrand",
	Doc: "forbid package-level math/rand functions and wall-clock-seeded sources; " +
		"thread an explicitly seeded *rand.Rand from the run config",
	Applies: func(string) bool { return true },
	Run:     runNoGlobalRand,
}

func runNoGlobalRand(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			e, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			if pkgPath, name, sel := selectorPkgFunc(pass.Info, e); sel != nil && isRandPkg(pkgPath) {
				if globalRandFuncs[name] {
					pass.Reportf(sel.Pos(),
						"rand.%s uses the global rand source; use a *rand.Rand seeded from the run config", name)
				}
			}
			// rand.New(rand.NewSource(time.Now()...)) defeats seeding even
			// though it goes through a constructor: the seed is wall clock.
			if call, ok := e.(*ast.CallExpr); ok {
				if pkgPath, name, sel := selectorPkgFunc(pass.Info, call.Fun); sel != nil &&
					isRandPkg(pkgPath) && (name == "NewSource" || name == "New" || name == "NewPCG") {
					for _, arg := range call.Args {
						if callsWallClock(pass, arg) {
							pass.Reportf(call.Pos(),
								"rand source seeded from the wall clock; seed from the run config instead")
							break
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// callsWallClock reports whether the expression mentions a time function
// from the wallClockFuncs set (time.Now().UnixNano() and similar). Nested
// rand constructor calls are skipped: they are flagged in their own right,
// so rand.New(rand.NewSource(time.Now())) reports once, at the source.
func callsWallClock(pass *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if pkgPath, _, sel := selectorPkgFunc(pass.Info, call.Fun); sel != nil && isRandPkg(pkgPath) {
				return false
			}
		}
		if sub, ok := n.(ast.Expr); ok {
			if pkgPath, name, sel := selectorPkgFunc(pass.Info, sub); sel != nil &&
				pkgPath == "time" && wallClockFuncs[name] {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}
