package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NoAlloc enforces allocation-freedom on functions whose doc comment carries
// the directive
//
//	//voyager:noalloc <optional note>
//
// Inside a marked function every Go construct that can allocate is reported:
// &composite literals and new(T), slice/map literals, make of slices, maps,
// and channels, append that may grow its backing array, interface boxing (at
// explicit conversions, call arguments, assignments, returns, and composite
// literal fields), method-value bindings, capturing closures (deferred or
// not), string<->[]byte conversions, and variadic ...interface{} calls.
//
// A call-graph rule keeps the property compositional: a noalloc function may
// only call other functions marked //voyager:noalloc in the same package, or
// entries on the audited cross-package allowlist below. Calls through
// function values (callbacks, prebound method values) are trusted — the
// closure *creation* site is what gets checked.
//
// Audited exceptions are written on the allocating line (or the line above):
//
//	//voyager:alloc-ok(<why this allocation is acceptable>)
//
// The escape hatch is itself checked: an alloc-ok with an empty reason, or
// one attached to a line where the analyzer found nothing to excuse, is
// reported as directive misuse.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc: "forbid allocating constructs in functions marked //voyager:noalloc; " +
		"audited exceptions use //voyager:alloc-ok(reason)",
	Applies: func(string) bool { return true },
	Run:     runNoAlloc,
}

// noallocDirective marks a function whose body must not allocate.
const noallocDirective = "//voyager:noalloc"

// allocOKPrefix is the per-line escape hatch; the parenthesized reason is
// mandatory.
const allocOKPrefix = "//voyager:alloc-ok"

// noallocAllowlist names the audited cross-package entry points a noalloc
// function may call. Every entry is a types.Func FullName. Keep this list
// small: each entry asserts "the callee's steady state is allocation-free
// and its own package pins that" — the engine primitives are marked
// //voyager:noalloc at their definitions, the others carry AllocsPerRun
// regression tests in internal/bench.
var noallocAllowlist = map[string]bool{
	// Engine primitives (marked //voyager:noalloc in internal/sim).
	"(*startvoyager/internal/sim.Engine).Schedule":  true,
	"(*startvoyager/internal/sim.Engine).At":        true,
	"(*startvoyager/internal/sim.Engine).Now":       true,
	"(*startvoyager/internal/sim.Engine).Observed":  true,
	"(*startvoyager/internal/sim.Resource).Acquire": true,
	"(*startvoyager/internal/sim.Resource).Release": true,
	"(*startvoyager/internal/sim.Resource).Use":     true,
	"(*startvoyager/internal/sim.Resource).Busy":    true,
	"(*startvoyager/internal/sim.Proc).Call":        true,
	"(*startvoyager/internal/sim.Proc).Delay":       true,
	"(*startvoyager/internal/sim.Proc).Now":         true,
	"(*startvoyager/internal/sim.Queue).Push":       true,
	"(*startvoyager/internal/sim.Queue).Pop":        true,
	"(*startvoyager/internal/sim.Cond).Wait":        true,
	"(*startvoyager/internal/sim.Cond).Broadcast":   true,
	// Observability hooks: no-ops without an observer; instrumented runs
	// trade allocation for visibility by design (see DESIGN.md).
	"(*startvoyager/internal/sim.Engine).BeginSpan": true,
	"(*startvoyager/internal/sim.Engine).Sample":    true,
	"(*startvoyager/internal/sim.Engine).Instant":   true,
	"startvoyager/internal/sim.Str":                 true,
	"startvoyager/internal/sim.I64":                 true,
	"startvoyager/internal/sim.Int":                 true,
	"startvoyager/internal/sim.Hex":                 true,
	"(startvoyager/internal/sim.Span).End":          true,
	"(*startvoyager/internal/sim.Engine).NewMsgID":  true,
	// Profiler hooks: no-ops without a profiler; the internal/prof
	// implementations are //voyager:noalloc with an AllocsPerRun pin
	// (interface dispatch cannot be checked statically).
	"(*startvoyager/internal/sim.Engine).ProfPush":        true,
	"(*startvoyager/internal/sim.Engine).ProfPop":         true,
	"(startvoyager/internal/sim.ProcProfiler).ProcResume": true,
	"(startvoyager/internal/sim.ProcProfiler).ProcBlock":  true,
	"(startvoyager/internal/sim.ProcProfiler).FramePush":  true,
	"(startvoyager/internal/sim.ProcProfiler).FramePop":   true,
	// Cache/bus fast paths (pinned by TestBasicMsgChainAllocs).
	"(*startvoyager/internal/cache.Cache).Load":          true,
	"(*startvoyager/internal/cache.Cache).Store":         true,
	"(*startvoyager/internal/cache.Cache).LoadUncached":  true,
	"(*startvoyager/internal/cache.Cache).StoreUncached": true,
	"(*startvoyager/internal/cache.Cache).Flush":         true,
	"(*startvoyager/internal/bus.Bus).Engine":            true,
	"(*startvoyager/internal/bus.Bus).Issue":             true,
	"(*startvoyager/internal/bus.Bus).IssueP":            true,
	"(startvoyager/internal/bus.Range).Offset":           true,
	"(startvoyager/internal/bus.Kind).IsRead":            true,
	// Stats sinks: pure counter/bucket increments on preallocated arrays.
	"(*startvoyager/internal/stats.Histogram).Observe":     true,
	"(*startvoyager/internal/stats.Histogram).ObserveTime": true,
	"(*startvoyager/internal/stats.Meter).Start":           true,
	"(*startvoyager/internal/stats.Meter).Stop":            true,
	// Traced-message diagnostics: no-ops unless the message carries a trace
	// tag; traced runs allocate event fields by design (see DESIGN.md).
	"(*startvoyager/internal/niu/ctrl.Ctrl).traceMsg": true,
	"(*startvoyager/internal/core.API).traceMsg":      true,
	// Snoop fan-out: every Device implementation's snoop path is itself
	// marked //voyager:noalloc in its own package.
	"(startvoyager/internal/bus.Device).SnoopBus": true,
	// NIU plumbing crossed by the send/recv chain (same budget tests).
	"(*startvoyager/internal/niu/ctrl.Ctrl).StageTxTag":       true,
	"(*startvoyager/internal/niu/ctrl.Ctrl).TxProducerUpdate": true,
	"(*startvoyager/internal/niu/ctrl.Ctrl).RxConsumerUpdate": true,
	"(*startvoyager/internal/niu/ctrl.Ctrl).TryReceive":       true,
	"(*startvoyager/internal/niu/ctrl.Ctrl).RxTag":            true,
	"(*startvoyager/internal/niu/ctrl.Ctrl).TxProducer":       true,
	"(*startvoyager/internal/niu/ctrl.Ctrl).TxConsumer":       true,
	"(*startvoyager/internal/niu/ctrl.Ctrl).RxProducer":       true,
	"(*startvoyager/internal/niu/ctrl.Ctrl).RxConsumer":       true,
	"startvoyager/internal/niu/ctrl.SlotOffset":               true,
	"startvoyager/internal/niu/txrx.EncodeInto":               true,
	"startvoyager/internal/niu/txrx.DecodeInto":               true,
	// NIU interface ports: implementations are audited by the same budget
	// tests (interface dispatch cannot be checked statically).
	"(startvoyager/internal/niu/ctrl.NetPort).Inject":        true,
	"(startvoyager/internal/niu/ctrl.NetPort).Poke":          true,
	"(startvoyager/internal/niu/ctrl.NetPort).Ready":         true,
	"(startvoyager/internal/niu/ctrl.IntPort).RxInterrupt":   true,
	"(startvoyager/internal/niu/ctrl.IntPort).ProtViolation": true,
	"(startvoyager/internal/niu/ctrl.BusPort).IssueBusOp":    true,
	// Translation-table index arithmetic: pure integer math on the node's
	// fixed stride, marked //voyager:noalloc at the definitions.
	"(*startvoyager/internal/node.Node).TransBasicIdx":   true,
	"(*startvoyager/internal/node.Node).TransExpressIdx": true,
	"(*startvoyager/internal/node.Node).TransSvcIdx":     true,
	"(*startvoyager/internal/node.Node).TransNotifyIdx":  true,
	// Buffer memories and byte-order helpers: pure copies into caller-owned
	// storage.
	"(*startvoyager/internal/niu/sram.SRAM).Read":   true,
	"(*startvoyager/internal/niu/sram.SRAM).Write":  true,
	"(*startvoyager/internal/niu/sram.SRAM).ByteAt": true,
	"(*startvoyager/internal/niu/sram.SRAM).Slice":  true,
	"(encoding/binary.bigEndian).Uint16":            true,
	"(encoding/binary.bigEndian).Uint32":            true,
	"(encoding/binary.bigEndian).Uint64":            true,
	"(encoding/binary.bigEndian).PutUint16":         true,
	"(encoding/binary.bigEndian).PutUint32":         true,
	"(encoding/binary.bigEndian).PutUint64":         true,
}

// hasNoallocDirective reports whether the function's doc comment carries the
// noalloc directive.
func hasNoallocDirective(d *ast.FuncDecl) bool {
	if d.Doc == nil {
		return false
	}
	for _, c := range d.Doc.List {
		if c.Text == noallocDirective ||
			strings.HasPrefix(c.Text, noallocDirective+" ") {
			return true
		}
	}
	return false
}

// allocOK is one //voyager:alloc-ok directive. It excuses findings on its own
// line and the line below (same placement rule as //lint:allow).
type allocOK struct {
	pos    token.Pos
	reason string
	used   bool
}

type lineKey struct {
	file string
	line int
}

type noallocChecker struct {
	pass    *Pass
	marked  map[*types.Func]bool
	excuses map[lineKey]*allocOK
	all     []*allocOK
}

func runNoAlloc(pass *Pass) error {
	c := &noallocChecker{
		pass:    pass,
		marked:  make(map[*types.Func]bool),
		excuses: make(map[lineKey]*allocOK),
	}
	c.collectExcuses()

	var markedDecls []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !hasNoallocDirective(fd) {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				c.marked[fn] = true
			}
			if fd.Body != nil {
				markedDecls = append(markedDecls, fd)
			}
		}
	}
	for _, fd := range markedDecls {
		c.checkFunc(fd)
	}

	// Directive misuse: an alloc-ok must carry a reason and must excuse at
	// least one finding.
	for _, ok := range c.all {
		switch {
		case ok.reason == "":
			pass.Reportf(ok.pos, "voyager:alloc-ok requires a reason: //voyager:alloc-ok(why this allocation is acceptable)")
		case !ok.used:
			pass.Reportf(ok.pos, "voyager:alloc-ok excuses nothing: no allocation reported on this line or the next")
		}
	}
	return nil
}

// collectExcuses scans file comments for //voyager:alloc-ok directives.
func (c *noallocChecker) collectExcuses() {
	for _, f := range c.pass.Files {
		for _, cg := range f.Comments {
			for _, cmt := range cg.List {
				if !strings.HasPrefix(cmt.Text, allocOKPrefix) {
					continue
				}
				rest := strings.TrimSpace(cmt.Text[len(allocOKPrefix):])
				ok := &allocOK{pos: cmt.Pos()}
				if close := strings.Index(rest, ")"); strings.HasPrefix(rest, "(") && close > 0 {
					ok.reason = strings.TrimSpace(rest[1:close])
				}
				c.all = append(c.all, ok)
				p := c.pass.Fset.Position(cmt.Pos())
				c.excuses[lineKey{p.Filename, p.Line}] = ok
				c.excuses[lineKey{p.Filename, p.Line + 1}] = ok
			}
		}
	}
}

// report files a finding unless a well-formed alloc-ok covers the line.
func (c *noallocChecker) report(pos token.Pos, format string, args ...interface{}) {
	p := c.pass.Fset.Position(pos)
	if ok := c.excuses[lineKey{p.Filename, p.Line}]; ok != nil && ok.reason != "" {
		ok.used = true
		return
	}
	c.pass.Reportf(pos, format, args...)
}

// funcDisplayName renders a FuncDecl name with its receiver type, matching
// how the allowlist and diagnostics spell methods.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	var b strings.Builder
	b.WriteByte('(')
	writeRecvType(&b, recv)
	b.WriteString(").")
	b.WriteString(fd.Name.Name)
	return b.String()
}

func writeRecvType(b *strings.Builder, e ast.Expr) {
	switch e := e.(type) {
	case *ast.StarExpr:
		b.WriteByte('*')
		writeRecvType(b, e.X)
	case *ast.Ident:
		b.WriteString(e.Name)
	case *ast.IndexExpr: // generic receiver T[P]
		writeRecvType(b, e.X)
	case *ast.IndexListExpr:
		writeRecvType(b, e.X)
	default:
		b.WriteString("?")
	}
}

// checkFunc walks one marked function body, reporting every allocating
// construct. The node stack lets checks see their parent (is this selector
// the callee of a call? is this closure deferred?) and the innermost
// function literal (whose signature governs return-statement boxing).
func (c *noallocChecker) checkFunc(fd *ast.FuncDecl) {
	name := funcDisplayName(fd)
	info := c.pass.Info
	var stack []ast.Node
	parent := func() ast.Node {
		if len(stack) < 2 {
			return nil
		}
		return stack[len(stack)-2]
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)

		switch n := n.(type) {
		case *ast.CompositeLit:
			c.checkCompositeLit(n, name, parent())
		case *ast.CallExpr:
			c.checkCall(n, name)
		case *ast.FuncLit:
			c.checkFuncLit(n, name, fd, stack)
		case *ast.SelectorExpr:
			c.checkMethodValue(n, name, parent())
		case *ast.AssignStmt:
			if n.Tok == token.ASSIGN {
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break // tuple assignment from a call: boxing happens in the callee
					}
					if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
						continue
					}
					c.checkBox(n.Rhs[i], info.TypeOf(lhs), name, "assignment")
				}
			}
		case *ast.ValueSpec:
			if n.Type != nil {
				t := info.TypeOf(n.Type)
				for _, v := range n.Values {
					c.checkBox(v, t, name, "declaration")
				}
			}
		case *ast.ReturnStmt:
			c.checkReturn(n, name, fd, stack)
		}
		return true
	})
}

func (c *noallocChecker) checkCompositeLit(n *ast.CompositeLit, name string, parent ast.Node) {
	info := c.pass.Info
	t := info.TypeOf(n)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		c.report(n.Pos(), "slice literal allocates in //voyager:noalloc %s", name)
	case *types.Map:
		c.report(n.Pos(), "map literal allocates in //voyager:noalloc %s", name)
	default:
		if u, ok := parent.(*ast.UnaryExpr); ok && u.Op == token.AND && u.X == n {
			c.report(u.Pos(), "&%s{} composite literal escapes to the heap in //voyager:noalloc %s",
				typeShortName(t), name)
		}
	}
	// Boxing into interface-typed fields/elements of the literal.
	c.checkLitElems(n, t, name)
}

// checkLitElems flags concrete values stored into interface-typed struct
// fields or interface-element containers within a composite literal.
func (c *noallocChecker) checkLitElems(n *ast.CompositeLit, t types.Type, name string) {
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i, el := range n.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				for j := 0; j < u.NumFields(); j++ {
					if u.Field(j).Name() == key.Name {
						c.checkBox(kv.Value, u.Field(j).Type(), name, "field "+key.Name)
						break
					}
				}
			} else if i < u.NumFields() {
				c.checkBox(el, u.Field(i).Type(), name, "field "+u.Field(i).Name())
			}
		}
	case *types.Slice:
		for _, el := range n.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			c.checkBox(el, u.Elem(), name, "element")
		}
	case *types.Array:
		for _, el := range n.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			c.checkBox(el, u.Elem(), name, "element")
		}
	case *types.Map:
		for _, el := range n.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				c.checkBox(kv.Value, u.Elem(), name, "value")
			}
		}
	}
}

func (c *noallocChecker) checkCall(n *ast.CallExpr, name string) {
	info := c.pass.Info
	fun := ast.Unparen(n.Fun)

	// Conversion: T(x).
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		c.checkConversion(n, tv.Type, name)
		return
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			c.checkBuiltin(n, id.Name, name)
			return
		}
	}

	// Named function or method callee: enforce the call-graph rule.
	var callee *types.Func
	switch f := fun.(type) {
	case *ast.Ident:
		callee, _ = info.Uses[f].(*types.Func)
	case *ast.SelectorExpr:
		callee, _ = info.Uses[f.Sel].(*types.Func)
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := f.X.(*ast.Ident); ok {
			callee, _ = info.Uses[id].(*types.Func)
		}
	}
	if callee != nil {
		c.checkCallee(n, callee, name)
	}
	// Calls through function values (callee == nil) are trusted: the
	// closure's creation site is where the check happens.

	// Argument boxing, including the variadic ...interface{} case.
	sig, _ := info.TypeOf(n.Fun).Underlying().(*types.Signature)
	if sig == nil {
		return
	}
	params := sig.Params()
	fixed := params.Len()
	if sig.Variadic() {
		fixed--
		last := params.At(params.Len() - 1).Type()
		elem := last.(*types.Slice).Elem()
		if types.IsInterface(elem.Underlying()) && len(n.Args) > fixed && !n.Ellipsis.IsValid() {
			c.report(n.Pos(), "variadic ...%s arguments allocate in //voyager:noalloc %s",
				typeShortName(elem), name)
		}
	}
	for i, arg := range n.Args {
		if i >= fixed {
			break // variadic tail reported above as one finding
		}
		c.checkBox(arg, params.At(i).Type(), name, "argument")
	}
}

func (c *noallocChecker) checkConversion(n *ast.CallExpr, target types.Type, name string) {
	if len(n.Args) != 1 {
		return
	}
	src := c.pass.Info.TypeOf(n.Args[0])
	if src == nil {
		return
	}
	if types.IsInterface(target.Underlying()) {
		c.checkBox(n.Args[0], target, name, "conversion")
		return
	}
	tu, su := target.Underlying(), src.Underlying()
	if isString(tu) && isByteOrRuneSlice(su) {
		c.report(n.Pos(), "string(%s) conversion copies in //voyager:noalloc %s", typeShortName(src), name)
	}
	if isByteOrRuneSlice(tu) && isString(su) {
		c.report(n.Pos(), "%s(string) conversion copies in //voyager:noalloc %s", typeShortName(target), name)
	}
}

func (c *noallocChecker) checkBuiltin(n *ast.CallExpr, builtin, name string) {
	switch builtin {
	case "new":
		c.report(n.Pos(), "new(T) allocates in //voyager:noalloc %s", name)
	case "make":
		if len(n.Args) == 0 {
			return
		}
		switch c.pass.Info.TypeOf(n.Args[0]).Underlying().(type) {
		case *types.Chan:
			c.report(n.Pos(), "channel creation in //voyager:noalloc %s", name)
		case *types.Map:
			c.report(n.Pos(), "map creation in //voyager:noalloc %s", name)
		default:
			c.report(n.Pos(), "make allocates a slice in //voyager:noalloc %s; reuse a preallocated buffer", name)
		}
	case "append":
		if len(n.Args) == 0 {
			return
		}
		// append(buf[:0], ...) and friends reuse the sliced buffer's
		// capacity; a bare append is assumed to grow.
		if _, reuse := ast.Unparen(n.Args[0]).(*ast.SliceExpr); !reuse {
			c.report(n.Pos(), "append may grow its backing array in //voyager:noalloc %s; "+
				"append to a re-sliced buffer or justify with //voyager:alloc-ok", name)
		}
		if s, ok := c.pass.Info.TypeOf(n.Args[0]).Underlying().(*types.Slice); ok && !n.Ellipsis.IsValid() {
			for _, arg := range n.Args[1:] {
				c.checkBox(arg, s.Elem(), name, "append element")
			}
		}
	}
}

// checkCallee enforces the call-graph rule on a resolved named callee.
func (c *noallocChecker) checkCallee(n *ast.CallExpr, callee *types.Func, name string) {
	if orig := callee.Origin(); orig != nil {
		callee = orig // generic instantiations map back to their definition
	}
	if noallocAllowlist[callee.FullName()] {
		return
	}
	if callee.Pkg() == c.pass.Pkg {
		if !c.marked[callee] {
			c.report(n.Pos(), "//voyager:noalloc %s calls %s, which is not marked //voyager:noalloc",
				name, callee.Name())
		}
		return
	}
	c.report(n.Pos(), "//voyager:noalloc %s calls %s, which is not on the noalloc allowlist",
		name, callee.FullName())
}

// checkFuncLit reports capturing closures. A literal that captures nothing
// compiles to a static function and is allowed.
func (c *noallocChecker) checkFuncLit(n *ast.FuncLit, name string, fd *ast.FuncDecl, stack []ast.Node) {
	captured := c.capturedVar(n)
	if captured == nil {
		return
	}
	deferred := false
	if len(stack) >= 3 {
		if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == n {
			_, deferred = stack[len(stack)-3].(*ast.DeferStmt)
		}
	}
	if deferred {
		c.report(n.Pos(), "deferred closure captures %q in //voyager:noalloc %s", captured.Name(), name)
		return
	}
	c.report(n.Pos(), "closure captures %q and allocates in //voyager:noalloc %s; "+
		"prebind a method value or thread state through a reused record", captured.Name(), name)
}

// capturedVar returns one variable the literal captures from an enclosing
// function, or nil if it captures nothing.
func (c *noallocChecker) capturedVar(n *ast.FuncLit) *types.Var {
	info := c.pass.Info
	var captured *types.Var
	ast.Inspect(n, func(m ast.Node) bool {
		if captured != nil {
			return false
		}
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == types.Universe || (c.pass.Pkg != nil && v.Parent() == c.pass.Pkg.Scope()) {
			return true // package-level state is not a capture
		}
		if v.Pos() >= n.Pos() && v.Pos() < n.End() {
			return true // declared inside the literal
		}
		captured = v
		return false
	})
	return captured
}

// checkMethodValue reports x.M used as a value (not called), which binds a
// closure over x.
func (c *noallocChecker) checkMethodValue(n *ast.SelectorExpr, name string, parent ast.Node) {
	sel, ok := c.pass.Info.Selections[n]
	if !ok || sel.Kind() != types.MethodVal {
		return
	}
	if call, ok := parent.(*ast.CallExpr); ok && call.Fun == n {
		return // ordinary method call
	}
	c.report(n.Pos(), "method value %s.%s binds a closure in //voyager:noalloc %s; "+
		"prebind it once outside the hot path", typeShortName(sel.Recv()), n.Sel.Name, name)
}

// checkReturn flags concrete values returned through interface-typed results
// of the innermost enclosing function.
func (c *noallocChecker) checkReturn(n *ast.ReturnStmt, name string, fd *ast.FuncDecl, stack []ast.Node) {
	var sig *types.Signature
	for i := len(stack) - 1; i >= 0; i-- {
		if lit, ok := stack[i].(*ast.FuncLit); ok {
			sig, _ = c.pass.Info.TypeOf(lit).(*types.Signature)
			break
		}
	}
	if sig == nil {
		if fn, ok := c.pass.Info.Defs[fd.Name].(*types.Func); ok {
			sig, _ = fn.Type().(*types.Signature)
		}
	}
	if sig == nil || sig.Results().Len() != len(n.Results) {
		return
	}
	for i, res := range n.Results {
		c.checkBox(res, sig.Results().At(i).Type(), name, "return value")
	}
}

// checkBox reports expr if storing it into target boxes a concrete value
// into an interface.
func (c *noallocChecker) checkBox(expr ast.Expr, target types.Type, name, what string) {
	if target == nil || !types.IsInterface(target.Underlying()) {
		return
	}
	src := c.pass.Info.TypeOf(expr)
	if src == nil || !boxAllocates(src) {
		return
	}
	c.report(expr.Pos(), "%s boxes %s into %s in //voyager:noalloc %s",
		what, typeShortName(src), typeShortName(target), name)
}

// boxAllocates reports whether converting a value of type t to an interface
// heap-allocates. Pointer-shaped values ride in the interface word directly.
func boxAllocates(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return false
	case *types.Basic:
		return u.Kind() != types.UnsafePointer && u.Kind() != types.UntypedNil
	}
	return true
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// typeShortName renders a type compactly for diagnostics: package-qualified
// by name only, no import paths.
func typeShortName(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
