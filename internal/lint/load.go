package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// TypeErrors holds non-fatal type-checking problems. Analyzers still run
	// (the AST is complete); drivers surface these separately.
	TypeErrors []error
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -json -deps patterns...` in dir and decodes
// the package stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup builds the importer lookup function over the export files
// that `go list -export` produced for the dependency closure.
func exportLookup(pkgs []*listedPackage) func(path string) (io.ReadCloser, error) {
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}

// newInfo allocates a types.Info with every map analyzers consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// Load parses and type-checks the non-test sources of every package
// matching patterns (resolved in dir, "" meaning the current directory),
// returning them in deterministic import-path order.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	lookup := exportLookup(listed)
	fset := token.NewFileSet()
	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		var paths []string
		for _, f := range lp.GoFiles {
			paths = append(paths, filepath.Join(lp.Dir, f))
		}
		pkg, err := checkFiles(fset, lp.ImportPath, paths, lookup)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// CheckFiles parses and type-checks one package from explicit file paths,
// resolving imports through lookup. Drivers that already know the package's
// sources and export-data locations (the `go vet -vettool` protocol) use
// this directly instead of Load.
func CheckFiles(fset *token.FileSet, importPath string, files []string,
	lookup func(string) (io.ReadCloser, error)) (*Package, error) {
	return checkFiles(fset, importPath, files, lookup)
}

// checkFiles parses and type-checks one package from explicit file paths,
// resolving imports through lookup.
func checkFiles(fset *token.FileSet, importPath string, files []string,
	lookup func(string) (io.ReadCloser, error)) (*Package, error) {
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, f)
	}
	info := newInfo()
	var typeErrs []error
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, fset, syntax, info)
	return &Package{
		Path:       importPath,
		Fset:       fset,
		Files:      syntax,
		Pkg:        tpkg,
		Info:       info,
		TypeErrors: typeErrs,
	}, nil
}

// RunAnalyzers applies each analyzer whose Applies policy covers the
// package, returning all findings in position order.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, a := range analyzers {
		if a.Applies != nil && !a.Applies(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
		}
		out = append(out, pass.Diagnostics()...)
	}
	return out, nil
}
