package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SimTimeUnits flags raw integer literals flowing into sim.Time slots —
// call arguments, struct/slice literals, conversions, and assignments.
// `After(100)` reads as "100 somethings"; the contract is unit-qualified
// expressions (`100 * sim.Nanosecond`, `2 * sim.Microsecond`) so latencies
// in config tables and model code carry their scale. The literal 0 stays
// legal: it means "now"/"disabled" and has no unit ambiguity.
var SimTimeUnits = &Analyzer{
	Name: "simtimeunits",
	Doc: "flag raw integer literals used as sim.Time; write unit-qualified " +
		"expressions like 100 * sim.Nanosecond",
	Applies: func(string) bool { return true },
	Run:     runSimTimeUnits,
}

func runSimTimeUnits(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.CompositeLit:
				checkComposite(pass, n)
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i < len(n.Lhs) && isSimTime(pass.typeOf(n.Lhs[i])) {
						reportRawLit(pass, rhs, "assigned to")
					}
				}
			case *ast.ValueSpec:
				if n.Type != nil && isSimTime(pass.typeOf(n.Type)) {
					for _, v := range n.Values {
						reportRawLit(pass, v, "assigned to")
					}
				}
			}
			return true
		})
	}
	return nil
}

func (p *Pass) typeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := p.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// checkCall flags raw literals in sim.Time parameter positions, and raw
// literals converted directly via sim.Time(100).
func checkCall(pass *Pass, call *ast.CallExpr) {
	ft, isConv := calleeType(pass, call.Fun)
	if ft == nil {
		return
	}
	if isConv {
		if isSimTime(ft) && len(call.Args) == 1 {
			reportRawLit(pass, call.Args[0], "converted to")
		}
		return
	}
	sig, ok := ft.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if isSimTime(pt) {
			reportRawLit(pass, arg, "passed as")
		}
	}
}

// calleeType resolves the type of a call's function expression and whether
// the "call" is actually a type conversion.
func calleeType(pass *Pass, fun ast.Expr) (types.Type, bool) {
	if tv, ok := pass.Info.Types[fun]; ok {
		return tv.Type, tv.IsType()
	}
	switch f := fun.(type) {
	case *ast.ParenExpr:
		return calleeType(pass, f.X)
	case *ast.Ident:
		if obj := pass.Info.Uses[f]; obj != nil {
			_, isType := obj.(*types.TypeName)
			return obj.Type(), isType
		}
	case *ast.SelectorExpr:
		if obj := pass.Info.Uses[f.Sel]; obj != nil {
			_, isType := obj.(*types.TypeName)
			return obj.Type(), isType
		}
	}
	return nil, false
}

// checkComposite flags raw literals in sim.Time-typed struct fields and
// element positions of slice/array/map literals.
func checkComposite(pass *Pass, lit *ast.CompositeLit) {
	tv, ok := pass.Info.Types[lit]
	if !ok {
		return
	}
	switch t := tv.Type.Underlying().(type) {
	case *types.Struct:
		fieldByName := make(map[string]types.Type, t.NumFields())
		for i := 0; i < t.NumFields(); i++ {
			fieldByName[t.Field(i).Name()] = t.Field(i).Type()
		}
		for i, el := range lit.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if key, ok := kv.Key.(*ast.Ident); ok && isSimTime(fieldByName[key.Name]) {
					reportRawLit(pass, kv.Value, "assigned to field "+key.Name+" of type")
				}
			} else if i < t.NumFields() && isSimTime(t.Field(i).Type()) {
				reportRawLit(pass, el, "assigned to field "+t.Field(i).Name()+" of type")
			}
		}
	case *types.Slice:
		checkElemLits(pass, lit, t.Elem())
	case *types.Array:
		checkElemLits(pass, lit, t.Elem())
	case *types.Map:
		if isSimTime(t.Elem()) {
			for _, el := range lit.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					reportRawLit(pass, kv.Value, "used as")
				}
			}
		}
	}
}

func checkElemLits(pass *Pass, lit *ast.CompositeLit, elem types.Type) {
	if !isSimTime(elem) {
		return
	}
	for _, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			el = kv.Value
		}
		reportRawLit(pass, el, "used as")
	}
}

// reportRawLit reports e if it is a bare nonzero integer literal (possibly
// signed or parenthesized). Anything mentioning a unit constant, a named
// value, or arithmetic is considered intentional.
func reportRawLit(pass *Pass, e ast.Expr, how string) {
	lit, neg := bareIntLit(e)
	if lit == nil || lit.Value == "0" {
		return
	}
	val := lit.Value
	if neg {
		val = "-" + val
	}
	pass.Reportf(e.Pos(),
		"raw integer %s %s sim.Time; write a unit-qualified duration like %s * sim.Nanosecond",
		val, how, val)
}

func bareIntLit(e ast.Expr) (*ast.BasicLit, bool) {
	neg := false
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.UnaryExpr:
			if v.Op != token.SUB && v.Op != token.ADD {
				return nil, false
			}
			neg = neg != (v.Op == token.SUB)
			e = v.X
		case *ast.BasicLit:
			if v.Kind != token.INT {
				return nil, false
			}
			return v, neg
		default:
			return nil, false
		}
	}
}

func isSimTime(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Time" && obj.Pkg() != nil && obj.Pkg().Path() == simPkgPath
}
