package memcheck

import (
	"strings"
	"testing"
)

func TestCleanSequentialHistory(t *testing.T) {
	var h History
	h.AddWrite(0, 1, 0, 10)
	h.AddRead(1, 1, 20, 30)
	h.AddWrite(1, 2, 40, 50)
	h.AddRead(0, 2, 60, 70)
	if err := h.Check(0); err != nil {
		t.Fatal(err)
	}
	if h.Len() != 4 {
		t.Fatal("len wrong")
	}
}

func TestConcurrentWriteEitherOrder(t *testing.T) {
	// Two overlapping writes: readers may see either, even "both orders"
	// across different processes.
	var h History
	h.AddWrite(0, 1, 0, 100)
	h.AddWrite(1, 2, 50, 150)
	h.AddRead(2, 2, 160, 170)
	h.AddRead(3, 1, 160, 170) // concurrent writes: 1 not strictly before 2
	if err := h.Check(0); err != nil {
		t.Fatal(err)
	}
}

func TestThinAirRead(t *testing.T) {
	var h History
	h.AddRead(0, 99, 0, 10)
	if err := h.Check(0); err == nil || !strings.Contains(err.Error(), "thin-air") {
		t.Fatalf("err = %v", err)
	}
}

func TestStaleRead(t *testing.T) {
	var h History
	h.AddWrite(0, 1, 0, 10)
	h.AddWrite(0, 2, 20, 30)
	h.AddRead(1, 1, 50, 60) // 1 was overwritten by 2 long before
	if err := h.Check(0); err == nil || !strings.Contains(err.Error(), "stale-read") {
		t.Fatalf("err = %v", err)
	}
}

func TestStaleInitial(t *testing.T) {
	var h History
	h.AddWrite(0, 5, 0, 10)
	h.AddRead(1, 0, 50, 60) // initial value after a completed write
	if err := h.Check(0); err == nil || !strings.Contains(err.Error(), "stale-initial") {
		t.Fatalf("err = %v", err)
	}
}

func TestReadBeforeWrite(t *testing.T) {
	var h History
	h.AddWrite(0, 7, 100, 110)
	h.AddRead(1, 7, 0, 10) // read returned a future value
	if err := h.Check(0); err == nil || !strings.Contains(err.Error(), "read-before-write") {
		t.Fatalf("err = %v", err)
	}
}

func TestNonMonotonicRead(t *testing.T) {
	var h History
	h.AddWrite(0, 1, 0, 10)
	h.AddWrite(0, 2, 20, 30)
	// Process 1 sees the new value, then the old one again.
	h.AddRead(1, 2, 40, 50)
	h.AddRead(1, 1, 60, 70)
	err := h.Check(0)
	if err == nil {
		t.Fatal("expected violation")
	}
	// Both stale-read and non-monotonic-read catch this; either is fine.
	if !strings.Contains(err.Error(), "read") {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateWriteValueRejected(t *testing.T) {
	var h History
	h.AddWrite(0, 3, 0, 10)
	h.AddWrite(1, 3, 20, 30)
	if err := h.Check(0); err == nil || !strings.Contains(err.Error(), "unique-writes") {
		t.Fatalf("err = %v", err)
	}
}
