// Package memcheck provides a single-location atomic-register consistency
// checker for the shared-memory protocols: concurrent workloads record
// every load and store with its simulated invocation/response interval, and
// the checker validates the history against the register's linearizability
// conditions. With unique write values the checks are:
//
//  1. reads-from visibility — a read may only return a value whose write
//     began before the read ended;
//  2. no stale reads — a read must not return a value that some other
//     write completely overwrote before the read began (w ≺ w' ≺ r in
//     real-time order);
//  3. per-process program order — successive reads by one process never go
//     backwards in the global write order implied by real time;
//  4. write recency chain — the final value must be from a write no other
//     write strictly follows.
//
// These are necessary conditions for linearizability (and catch every
// coherence bug a line-granularity protocol realistically produces:
// lost updates, stale grants, resurrected values).
package memcheck

import (
	"fmt"
	"sort"

	"startvoyager/internal/sim"
)

// OpKind distinguishes history records.
type OpKind int

// Operation kinds.
const (
	Read OpKind = iota
	Write
)

// Op is one recorded operation on the location.
type Op struct {
	Kind       OpKind
	Proc       int // issuing process (node)
	Value      uint64
	Start, End sim.Time
}

// History accumulates operations for one memory location.
type History struct {
	ops []Op
}

// AddRead records a completed read.
func (h *History) AddRead(proc int, value uint64, start, end sim.Time) {
	h.ops = append(h.ops, Op{Kind: Read, Proc: proc, Value: value, Start: start, End: end})
}

// AddWrite records a completed write. Values must be unique per write.
func (h *History) AddWrite(proc int, value uint64, start, end sim.Time) {
	h.ops = append(h.ops, Op{Kind: Write, Proc: proc, Value: value, Start: start, End: end})
}

// Len returns the number of recorded operations.
func (h *History) Len() int { return len(h.ops) }

// Violation describes a failed consistency condition.
type Violation struct {
	Rule string
	Op   Op
	Info string
}

// Error renders the violation.
func (v Violation) Error() string {
	return fmt.Sprintf("memcheck: %s: op %+v (%s)", v.Rule, v.Op, v.Info)
}

// Check validates the history; it returns nil when every condition holds.
// initial is the location's value before any write.
func (h *History) Check(initial uint64) error {
	writes := map[uint64]Op{}
	var writeList []Op
	for _, op := range h.ops {
		if op.Kind != Write {
			continue
		}
		if _, dup := writes[op.Value]; dup || op.Value == initial {
			return Violation{Rule: "unique-writes", Op: op, Info: "duplicate write value"}
		}
		writes[op.Value] = op
		writeList = append(writeList, op)
	}
	sort.Slice(writeList, func(i, j int) bool { return writeList[i].Start < writeList[j].Start })

	// strictlyBefore reports a ≺ b in real time (a finished before b began).
	strictlyBefore := func(a, b Op) bool { return a.End < b.Start }

	for _, r := range h.ops {
		if r.Kind != Read {
			continue
		}
		if r.Value == initial {
			// Reading the initial value: no write may have completed
			// entirely before this read began.
			for _, w := range writeList {
				if strictlyBefore(w, r) {
					return Violation{Rule: "stale-initial", Op: r,
						Info: fmt.Sprintf("write of %d completed at %v before read started at %v",
							w.Value, w.End, r.Start)}
				}
			}
			continue
		}
		w, ok := writes[r.Value]
		if !ok {
			return Violation{Rule: "thin-air", Op: r, Info: "value never written"}
		}
		// (1) visibility: the write must have begun before the read ended.
		if r.End < w.Start {
			return Violation{Rule: "read-before-write", Op: r,
				Info: fmt.Sprintf("write of %d starts at %v after read ended at %v",
					r.Value, w.Start, r.End)}
		}
		// (2) no stale reads: no other write lies entirely between w and r.
		for _, w2 := range writeList {
			if w2.Value == w.Value {
				continue
			}
			if strictlyBefore(w, w2) && strictlyBefore(w2, r) {
				return Violation{Rule: "stale-read", Op: r,
					Info: fmt.Sprintf("value %d overwritten by %d (at %v) before the read began at %v",
						w.Value, w2.Value, w2.End, r.Start)}
			}
		}
	}

	// (3) per-process monotonicity: the writes observed by one process's
	// successive reads must never move backwards in real-time write order.
	perProc := map[int][]Op{}
	for _, op := range h.ops {
		if op.Kind == Read {
			perProc[op.Proc] = append(perProc[op.Proc], op)
		}
	}
	writeRank := map[uint64]int{initial: -1}
	for i, w := range writeList {
		writeRank[w.Value] = i
	}
	// Check processes in ascending id order: ranging over the map directly
	// would report an arbitrary process's violation when several exist.
	procs := make([]int, 0, len(perProc))
	for proc := range perProc {
		procs = append(procs, proc)
	}
	sort.Ints(procs)
	for _, proc := range procs {
		reads := perProc[proc]
		sort.Slice(reads, func(i, j int) bool { return reads[i].Start < reads[j].Start })
		last := -2
		for _, r := range reads {
			rank := writeRank[r.Value]
			// Only enforce when the earlier-observed write strictly
			// precedes in real time (concurrent writes may legally be
			// observed in either order across processes, but one process
			// must not see w' then w when w ≺ w').
			if last >= 0 && rank >= 0 && rank < last {
				wPrev, wCur := writeList[last], writeList[rank]
				if strictlyBefore(wCur, wPrev) {
					return Violation{Rule: "non-monotonic-read", Op: r,
						Info: fmt.Sprintf("process %d saw %d after %d",
							proc, r.Value, wPrev.Value)}
				}
			}
			if rank > last {
				last = rank
			}
		}
	}
	return nil
}
