package mpi

import (
	"bytes"
	"fmt"
	"testing"

	"startvoyager/internal/core"
	"startvoyager/internal/sim"
)

// run spawns body on every rank of an n-node machine and runs to completion.
func run(t *testing.T, n int, body func(p *sim.Proc, c *Comm)) *core.Machine {
	t.Helper()
	m := core.NewMachine(n)
	for i := 0; i < n; i++ {
		c := World(m, i)
		m.Go(i, fmt.Sprintf("rank%d", i), func(p *sim.Proc, _ *core.API) {
			body(p, c)
		})
	}
	m.Run()
	if got := m.Eng.BlockedProcs(); got != m.FirmwareLoops() {
		t.Fatalf("deadlock: %d blocked procs (firmware loops: %d)", got, m.FirmwareLoops())
	}
	return m
}

func TestSendRecvSmall(t *testing.T) {
	var got []byte
	var from int
	run(t, 2, func(p *sim.Proc, c *Comm) {
		if c.Rank() == 0 {
			c.Send(p, 1, 42, []byte("hello mpi"))
		} else {
			got, from = c.Recv(p, 0, 42)
		}
	})
	if !bytes.Equal(got, []byte("hello mpi")) || from != 0 {
		t.Fatalf("got %q from %d", got, from)
	}
}

func TestSendRecvLargeSegmented(t *testing.T) {
	big := make([]byte, 10_000) // many fragments
	for i := range big {
		big[i] = byte(i * 7)
	}
	var got []byte
	run(t, 2, func(p *sim.Proc, c *Comm) {
		if c.Rank() == 0 {
			c.Send(p, 1, 1, big)
		} else {
			got, _ = c.Recv(p, 0, 1)
		}
	})
	if !bytes.Equal(got, big) {
		t.Fatal("large message corrupted")
	}
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	var first, second []byte
	run(t, 2, func(p *sim.Proc, c *Comm) {
		if c.Rank() == 0 {
			c.Send(p, 1, 7, []byte("tag7"))
			c.Send(p, 1, 9, []byte("tag9"))
		} else {
			// Receive in the opposite order from sending.
			second, _ = c.Recv(p, 0, 9)
			first, _ = c.Recv(p, 0, 7)
		}
	})
	if string(first) != "tag7" || string(second) != "tag9" {
		t.Fatalf("matching broken: %q %q", first, second)
	}
}

func TestAnySource(t *testing.T) {
	froms := map[int]bool{}
	run(t, 4, func(p *sim.Proc, c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 3; i++ {
				_, from := c.Recv(p, AnySource, 5)
				froms[from] = true
			}
		} else {
			c.Send(p, 0, 5, []byte{byte(c.Rank())})
		}
	})
	if len(froms) != 3 {
		t.Fatalf("sources %v", froms)
	}
}

func TestBarrier(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		n := n
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			var exitTimes []sim.Time
			var lastEnter sim.Time
			run(t, n, func(p *sim.Proc, c *Comm) {
				// Stagger the entries.
				c.API().Compute(p, sim.Time(c.Rank())*10_000)
				if t := p.Now(); t > lastEnter {
					lastEnter = t
				}
				c.Barrier(p)
				exitTimes = append(exitTimes, p.Now())
			})
			for _, e := range exitTimes {
				if e < lastEnter {
					t.Fatalf("rank exited barrier at %v before last entry %v", e, lastEnter)
				}
			}
		})
	}
}

func TestBcast(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		n := n
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			data := []byte("broadcast payload")
			got := make([][]byte, n)
			run(t, n, func(p *sim.Proc, c *Comm) {
				var in []byte
				if c.Rank() == 2%n {
					in = data
				}
				got[c.Rank()] = c.Bcast(p, 2%n, in)
			})
			for r, g := range got {
				if !bytes.Equal(g, data) {
					t.Fatalf("rank %d got %q", r, g)
				}
			}
		})
	}
}

func TestReduceSum(t *testing.T) {
	const n = 8
	var result []float64
	run(t, n, func(p *sim.Proc, c *Comm) {
		vals := []float64{float64(c.Rank()), 1}
		if r := c.Reduce(p, 0, Sum, vals); c.Rank() == 0 {
			result = r
		} else if r != nil {
			t.Errorf("non-root rank %d got a result", c.Rank())
		}
	})
	if result[0] != 28 || result[1] != 8 { // 0+..+7, 8 ones
		t.Fatalf("reduce = %v", result)
	}
}

func TestAllreduceMaxMin(t *testing.T) {
	const n = 5
	maxs := make([]float64, n)
	mins := make([]float64, n)
	run(t, n, func(p *sim.Proc, c *Comm) {
		v := []float64{float64(c.Rank() * 10)}
		maxs[c.Rank()] = c.Allreduce(p, Max, v)[0]
		mins[c.Rank()] = c.Allreduce(p, Min, v)[0]
	})
	for r := 0; r < n; r++ {
		if maxs[r] != 40 || mins[r] != 0 {
			t.Fatalf("rank %d: max=%v min=%v", r, maxs[r], mins[r])
		}
	}
}

func TestGatherScatter(t *testing.T) {
	const n = 4
	var gathered [][]byte
	scattered := make([][]byte, n)
	run(t, n, func(p *sim.Proc, c *Comm) {
		g := c.Gather(p, 1, []byte{byte('A' + c.Rank())})
		if c.Rank() == 1 {
			gathered = g
		}
		parts := make([][]byte, n)
		for i := range parts {
			parts[i] = []byte{byte('a' + i)}
		}
		var in [][]byte
		if c.Rank() == 0 {
			in = parts
		}
		scattered[c.Rank()] = c.Scatter(p, 0, in)
	})
	for i, g := range gathered {
		if len(g) != 1 || g[0] != byte('A'+i) {
			t.Fatalf("gather[%d] = %q", i, g)
		}
	}
	for i, s := range scattered {
		if len(s) != 1 || s[0] != byte('a'+i) {
			t.Fatalf("scatter[%d] = %q", i, s)
		}
	}
}

func TestAlltoall(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		n := n
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			results := make([][][]byte, n)
			run(t, n, func(p *sim.Proc, c *Comm) {
				parts := make([][]byte, n)
				for i := range parts {
					parts[i] = []byte{byte(c.Rank()), byte(i)}
				}
				results[c.Rank()] = c.Alltoall(p, parts)
			})
			for me := 0; me < n; me++ {
				for from := 0; from < n; from++ {
					want := []byte{byte(from), byte(me)}
					if !bytes.Equal(results[me][from], want) {
						t.Fatalf("alltoall[%d][%d] = %v, want %v",
							me, from, results[me][from], want)
					}
				}
			}
		})
	}
}

func TestSendrecvRingRotation(t *testing.T) {
	const n = 4
	got := make([]byte, n)
	run(t, n, func(p *sim.Proc, c *Comm) {
		right := (c.Rank() + 1) % n
		left := (c.Rank() - 1 + n) % n
		d, _ := c.Sendrecv(p, right, 3, []byte{byte(c.Rank())}, left, 3)
		got[c.Rank()] = d[0]
	})
	for r := 0; r < n; r++ {
		if got[r] != byte((r-1+n)%n) {
			t.Fatalf("ring: rank %d got %d", r, got[r])
		}
	}
}

func TestBadRankPanics(t *testing.T) {
	m := core.NewMachine(2)
	c := World(m, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.Go(0, "bad", func(p *sim.Proc, _ *core.API) {
		c.Send(p, 5, 0, nil)
	})
	m.Run()
}
