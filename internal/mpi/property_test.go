package mpi

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"startvoyager/internal/core"
	"startvoyager/internal/sim"
)

// Property: for a random plan of point-to-point messages (random sizes up
// to several fragments, random tags, random send order), every receive
// matches exactly its planned message, with per-(src,tag) order preserved
// at the receiver.
func TestRandomTrafficProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		type msg struct {
			src, dst, tag int
			data          []byte
		}
		var plan []msg
		for i := 0; i < 12; i++ {
			src := rng.Intn(n)
			dst := rng.Intn(n)
			for dst == src {
				dst = rng.Intn(n)
			}
			data := make([]byte, rng.Intn(300))
			rng.Read(data)
			plan = append(plan, msg{src, dst, rng.Intn(3), data})
		}
		m := core.NewMachine(n)
		okAll := true
		for r := 0; r < n; r++ {
			r := r
			c := World(m, r)
			m.Go(r, "rank", func(p *sim.Proc, _ *core.API) {
				// Send everything this rank originates, in plan order.
				for _, pm := range plan {
					if pm.src == r {
						c.Send(p, pm.dst, pm.tag, pm.data)
					}
				}
				// Receive everything destined here: for each (src,tag)
				// stream, messages must appear in plan order.
				expected := map[[2]int][][]byte{}
				for _, pm := range plan {
					if pm.dst == r {
						k := [2]int{pm.src, pm.tag}
						expected[k] = append(expected[k], pm.data)
					}
				}
				for k, list := range expected {
					for _, want := range list {
						got, from := c.Recv(p, k[0], k[1])
						if from != k[0] || !bytes.Equal(got, want) {
							okAll = false
						}
					}
				}
			})
		}
		m.Run()
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: Allreduce(Sum) equals the arithmetic sum regardless of machine
// size and per-rank values.
func TestAllreduceSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		vals := make([]float64, n)
		var want float64
		for i := range vals {
			vals[i] = float64(rng.Intn(1000))
			want += vals[i]
		}
		m := core.NewMachine(n)
		results := make([]float64, n)
		for r := 0; r < n; r++ {
			r := r
			c := World(m, r)
			m.Go(r, fmt.Sprintf("r%d", r), func(p *sim.Proc, _ *core.API) {
				results[r] = c.Allreduce(p, Sum, []float64{vals[r]})[0]
			})
		}
		m.Run()
		for _, got := range results {
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
