package mpi_test

import (
	"fmt"

	"startvoyager/internal/core"
	"startvoyager/internal/mpi"
	"startvoyager/internal/sim"
)

// ExampleComm_Allreduce computes a global sum across four ranks.
func ExampleComm_Allreduce() {
	m := core.NewMachine(4)
	results := make([]float64, 4)
	for r := 0; r < 4; r++ {
		r := r
		c := mpi.World(m, r)
		m.Go(r, "rank", func(p *sim.Proc, _ *core.API) {
			results[r] = c.Allreduce(p, mpi.Sum, []float64{float64(r + 1)})[0]
		})
	}
	m.Run()
	fmt.Println(results[0], results[3])
	// Output: 10 10
}

// ExampleComm_Send shows tagged point-to-point messaging with matching.
func ExampleComm_Send() {
	m := core.NewMachine(2)
	c0, c1 := mpi.World(m, 0), mpi.World(m, 1)
	m.Go(0, "send", func(p *sim.Proc, _ *core.API) {
		c0.Send(p, 1, 7, []byte("tagged payload"))
	})
	m.Go(1, "recv", func(p *sim.Proc, _ *core.API) {
		data, from := c1.Recv(p, 0, 7)
		fmt.Printf("%s from rank %d\n", data, from)
	})
	m.Run()
	// Output: tagged payload from rank 0
}

// ExampleComm_Scatter distributes per-rank work from a root.
func ExampleComm_Scatter() {
	m := core.NewMachine(3)
	out := make([]string, 3)
	for r := 0; r < 3; r++ {
		r := r
		c := mpi.World(m, r)
		m.Go(r, "rank", func(p *sim.Proc, _ *core.API) {
			var parts [][]byte
			if r == 0 {
				parts = [][]byte{[]byte("a"), []byte("b"), []byte("c")}
			}
			out[r] = string(c.Scatter(p, 0, parts))
		})
	}
	m.Run()
	fmt.Println(out[0], out[1], out[2])
	// Output: a b c
}
