// Package mpi is a small MPI-style library over StarT-Voyager's Basic
// message mechanism — the layer-0 convenience library the paper promises
// ("we will provide an MPI library that presents the usual MPI interface
// ... but uses the underlying NIU support for the actual communication").
//
// Messages of any size are segmented into Basic messages; delivery order
// within a (source, destination) pair is FIFO, which the reassembly relies
// on. Receives match on (source, tag) with unordered buffering, and the
// collectives (Barrier, Bcast, Reduce, Allreduce, Gather, Scatter, Alltoall)
// are built from point-to-point messages using binomial trees where it
// matters.
package mpi

import (
	"encoding/binary"
	"fmt"
	"math"

	"startvoyager/internal/core"
	"startvoyager/internal/sim"
)

// AnySource matches a receive against any sender.
const AnySource = -1

// fragment layout: an 8-byte header fragment announces (tag, length); the
// payload follows in raw fragments. FIFO per pair makes sequence numbers
// unnecessary.
const (
	headerMagic = 0x4D50 // "MP"
	fragBytes   = core.MaxBasicPayload
)

// message is one reassembled incoming message.
type message struct {
	src  int
	tag  int
	data []byte
}

// assembly tracks an in-progress reassembly from one source.
type assembly struct {
	tag  int
	data []byte
	want int
}

// Comm is one rank's communicator for the whole machine (MPI_COMM_WORLD).
type Comm struct {
	api  *core.API
	rank int
	size int

	inbox      []*message
	assembling map[int]*assembly // per source
}

// World returns the communicator for node rank of machine m.
func World(m *core.Machine, rank int) *Comm {
	return &Comm{
		api:        m.API(rank),
		rank:       rank,
		size:       len(m.Nodes),
		assembling: make(map[int]*assembly),
	}
}

// Rank returns this process's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.size }

// API exposes the underlying node API (for mixed-paradigm programs).
func (c *Comm) API() *core.API { return c.api }

// Send delivers data to rank dst with the given tag (blocking until the
// local NIU has accepted all fragments).
func (c *Comm) Send(p *sim.Proc, dst, tag int, data []byte) {
	if dst < 0 || dst >= c.size {
		panic(fmt.Sprintf("mpi: bad destination rank %d", dst))
	}
	var hdr [8]byte
	binary.BigEndian.PutUint16(hdr[0:], headerMagic)
	binary.BigEndian.PutUint16(hdr[2:], uint16(tag))
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(data)))
	c.api.SendBasic(p, dst, hdr[:])
	for off := 0; off < len(data); off += fragBytes {
		end := off + fragBytes
		if end > len(data) {
			end = len(data)
		}
		c.api.SendBasic(p, dst, data[off:end])
	}
}

// Recv blocks until a message with matching source (or AnySource) and tag
// arrives, and returns its data and actual source.
func (c *Comm) Recv(p *sim.Proc, src, tag int) (data []byte, from int) {
	for {
		for i, m := range c.inbox {
			if (src == AnySource || m.src == src) && m.tag == tag {
				c.inbox = append(c.inbox[:i], c.inbox[i+1:]...)
				return m.data, m.src
			}
		}
		c.pump(p)
	}
}

// Sendrecv exchanges messages with the given peers in a deadlock-free way
// (send fragments are accepted by the NIU without waiting for the peer).
func (c *Comm) Sendrecv(p *sim.Proc, dst, sendTag int, data []byte,
	src, recvTag int) ([]byte, int) {
	c.Send(p, dst, sendTag, data)
	return c.Recv(p, src, recvTag)
}

// pump receives one Basic message and advances reassembly.
func (c *Comm) pump(p *sim.Proc) {
	src, payload := c.api.RecvBasic(p)
	asm := c.assembling[src]
	if asm == nil {
		if len(payload) != 8 || binary.BigEndian.Uint16(payload) != headerMagic {
			panic(fmt.Sprintf("mpi: rank %d: stray fragment from %d", c.rank, src))
		}
		asm = &assembly{
			tag:  int(binary.BigEndian.Uint16(payload[2:])),
			want: int(binary.BigEndian.Uint32(payload[4:])),
		}
		c.assembling[src] = asm
	} else {
		asm.data = append(asm.data, payload...)
	}
	if len(asm.data) >= asm.want {
		c.inbox = append(c.inbox, &message{src: src, tag: asm.tag, data: asm.data})
		delete(c.assembling, src)
	}
}

// Internal collective tags (high range, outside user tags).
const (
	tagBarrier = 0xFF01
	tagBcast   = 0xFF02
	tagReduce  = 0xFF03
	tagGather  = 0xFF04
	tagScatter = 0xFF05
	tagAll2All = 0xFF06
)

// Barrier blocks until every rank has entered it (dissemination algorithm:
// log2(n) rounds of pairwise messages).
func (c *Comm) Barrier(p *sim.Proc) {
	for dist := 1; dist < c.size; dist *= 2 {
		to := (c.rank + dist) % c.size
		from := (c.rank - dist + c.size) % c.size
		c.Send(p, to, tagBarrier, nil)
		c.Recv(p, from, tagBarrier)
	}
}

// Bcast distributes root's data to every rank (binomial tree: relative rank
// r receives from r minus its highest set bit, then forwards to r | 2^j for
// each higher bit) and returns each rank's copy.
func (c *Comm) Bcast(p *sim.Proc, root int, data []byte) []byte {
	rel := (c.rank - root + c.size) % c.size
	hi := 0
	if rel != 0 {
		hi = 1
		for hi*2 <= rel {
			hi *= 2
		}
		parent := (root + rel - hi) % c.size
		data, _ = c.Recv(p, parent, tagBcast)
	}
	for dist := hi * 2; ; dist *= 2 {
		if dist == 0 {
			dist = 1
		}
		child := rel | dist
		if child == rel {
			continue
		}
		if child >= c.size || dist >= nextPow2(c.size) {
			break
		}
		c.Send(p, (root+child)%c.size, tagBcast, data)
	}
	return data
}

// Op is a reduction operator over float64 vectors.
type Op func(dst, src []float64)

// Predefined reduction operators.
var (
	Sum Op = func(dst, src []float64) {
		for i := range dst {
			dst[i] += src[i]
		}
	}
	Max Op = func(dst, src []float64) {
		for i := range dst {
			dst[i] = math.Max(dst[i], src[i])
		}
	}
	Min Op = func(dst, src []float64) {
		for i := range dst {
			dst[i] = math.Min(dst[i], src[i])
		}
	}
)

// Reduce combines each rank's vector with op; the result lands on root
// (binomial tree). Non-root ranks return nil.
func (c *Comm) Reduce(p *sim.Proc, root int, op Op, vals []float64) []float64 {
	acc := append([]float64(nil), vals...)
	rel := (c.rank - root + c.size) % c.size
	for dist := 1; dist < c.size; dist *= 2 {
		if rel%(2*dist) != 0 {
			c.Send(p, (root+rel-dist)%c.size, tagReduce, encodeF64(acc))
			return nil
		}
		if rel+dist < c.size {
			data, _ := c.Recv(p, (root+rel+dist)%c.size, tagReduce)
			op(acc, decodeF64(data))
		}
	}
	return acc
}

// Allreduce is Reduce to rank 0 followed by Bcast.
func (c *Comm) Allreduce(p *sim.Proc, op Op, vals []float64) []float64 {
	acc := c.Reduce(p, 0, op, vals)
	return decodeF64(c.Bcast(p, 0, encodeF64(acc)))
}

// Gather collects each rank's data at root, indexed by rank. Non-root ranks
// return nil.
func (c *Comm) Gather(p *sim.Proc, root int, data []byte) [][]byte {
	if c.rank != root {
		c.Send(p, root, tagGather, data)
		return nil
	}
	out := make([][]byte, c.size)
	out[root] = data
	for i := 0; i < c.size-1; i++ {
		d, from := c.Recv(p, AnySource, tagGather)
		out[from] = d
	}
	return out
}

// Scatter distributes parts[i] from root to rank i and returns this rank's
// part.
func (c *Comm) Scatter(p *sim.Proc, root int, parts [][]byte) []byte {
	if c.rank == root {
		for i, part := range parts {
			if i == root {
				continue
			}
			c.Send(p, i, tagScatter, part)
		}
		return parts[root]
	}
	d, _ := c.Recv(p, root, tagScatter)
	return d
}

// Alltoall exchanges parts[i] with every rank i and returns the received
// vector indexed by source.
func (c *Comm) Alltoall(p *sim.Proc, parts [][]byte) [][]byte {
	out := make([][]byte, c.size)
	out[c.rank] = parts[c.rank]
	// Ring-shift schedule: in step s every rank sends to rank+s and
	// receives from rank-s, so each step is a perfect permutation and no
	// rank waits on a message nobody is sending.
	for step := 1; step < c.size; step++ {
		to := (c.rank + step) % c.size
		from := (c.rank - step + c.size) % c.size
		c.Send(p, to, tagAll2All, parts[to])
		d, _ := c.Recv(p, from, tagAll2All)
		out[from] = d
	}
	return out
}

func nextPow2(n int) int {
	v := 1
	for v < n {
		v *= 2
	}
	return v
}

func encodeF64(vals []float64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.BigEndian.PutUint64(b[i*8:], math.Float64bits(v))
	}
	return b
}

func decodeF64(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.BigEndian.Uint64(b[i*8:]))
	}
	return out
}
