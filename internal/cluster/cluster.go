// Package cluster assembles a complete StarT-Voyager machine: N nodes
// connected by an Arctic fat tree, with the default queue layout,
// translation tables, and firmware services installed and started.
package cluster

import (
	"fmt"

	"startvoyager/internal/arctic"
	"startvoyager/internal/bus"
	"startvoyager/internal/fault"
	"startvoyager/internal/firmware"
	"startvoyager/internal/node"
	"startvoyager/internal/sim"
	"startvoyager/internal/stats"
)

// Config holds machine-level construction parameters.
type Config struct {
	Nodes int
	Node  node.Config
	Net   arctic.Config

	// DirectNet replaces the fat tree with an ideal fixed-latency fabric
	// (ablation baseline).
	DirectNet        bool
	DirectNetLatency sim.Time

	// ScomaSize enables the S-COMA shared window of this many bytes
	// (page-interleaved across nodes). Must be a multiple of the page size
	// times the node count.
	ScomaSize uint32
	// NumaSegment enables the NUMA window with this many bytes homed on
	// each node.
	NumaSegment uint32
	// NumaLocalBase is the home-local DRAM address backing NUMA segments.
	NumaLocalBase uint32
	// ScomaBackingBase is the home-local DRAM address of S-COMA backing
	// copies (default: 8 MB).
	ScomaBackingBase uint32
	// ScomaMigratory enables the migratory-sharing protocol optimization.
	ScomaMigratory bool

	// ReflectSize enables the reflective-memory window of this many bytes
	// (mode and export map are configured per-node via the aBIU).
	ReflectSize uint32

	// Faults, when non-nil, attaches a deterministic fault-injection plan to
	// the fabric (see internal/fault).
	Faults *fault.Plan
	// Rel parameterizes the R-Basic reliable-delivery firmware service
	// (zero fields take defaults).
	Rel firmware.RelConfig
	// DisableRel turns off the reliable-delivery service.
	DisableRel bool

	// DisableDma turns off the firmware DMA service.
	DisableDma bool
	// DisableScomaProtocol keeps the S-COMA window and clsSRAM hardware but
	// installs no directory firmware — experiments that use the cache-line
	// state check for arrival gating (block transfer approaches 4 and 5)
	// register their own capture handling.
	DisableScomaProtocol bool

	// Profiler, when non-nil, attaches a simulated-time profiler (see
	// internal/prof) to the engine before any Proc spawns, so the firmware
	// service loops started during construction are accounted from time
	// zero. Profiling is observation-only: it cannot change any simulated
	// outcome.
	Profiler sim.ProcProfiler
}

// DefaultConfig returns a ready-to-run machine configuration.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:            nodes,
		Net:              arctic.DefaultConfig(),
		ScomaSize:        1 << 20,
		NumaSegment:      1 << 20,
		NumaLocalBase:    4 << 20,
		ScomaBackingBase: 8 << 20,
	}
}

// Cluster is an assembled machine.
type Cluster struct {
	Eng    *sim.Engine
	Fabric arctic.Fabric
	Nodes  []*node.Node
	Cfg    Config
	// Reg is the machine's metrics registry: every component registers its
	// counters at construction under node<i>/<component> (fabric under net/),
	// so Reg.WriteJSON dumps the whole machine's state at any time.
	Reg *stats.Registry

	// Faults is the fault injector executing Cfg.Faults (nil when fault-free).
	Faults *fault.Injector

	Scomas    []*firmware.Scoma
	Numas     []*firmware.Numa
	Dmas      []*firmware.Dma
	Reflects  []*firmware.Reflect
	MissRings []*firmware.MissRing
	Rels      []*firmware.Rel
}

// MissRingBase is the DRAM address of the non-resident-queue overflow ring
// on every node.
const MissRingBase = 12 << 20

// MissRingEntries is the overflow ring capacity.
const MissRingEntries = 64

// New builds and starts a machine.
func New(cfg Config) *Cluster {
	if cfg.Nodes <= 0 {
		panic("cluster: need at least one node")
	}
	eng := sim.NewEngine()
	if cfg.Profiler != nil {
		eng.SetProfiler(cfg.Profiler)
	}
	var fabric arctic.Fabric
	if cfg.DirectNet {
		lat := cfg.DirectNetLatency
		if lat == 0 {
			lat = 250 * sim.Nanosecond
		}
		fabric = arctic.NewDirect(eng, cfg.Nodes, lat, cfg.Net.FlitTime)
	} else {
		fabric = arctic.NewFatTree(eng, cfg.Nodes, cfg.Net)
	}

	c := &Cluster{Eng: eng, Fabric: fabric, Cfg: cfg, Reg: stats.NewRegistry()}
	if rm, ok := fabric.(interface{ RegisterMetrics(*stats.Registry) }); ok {
		rm.RegisterMetrics(c.Reg.Child("net"))
	}
	if cfg.Faults != nil {
		c.Faults = fault.NewInjector(eng, *cfg.Faults)
		if sf, ok := fabric.(interface{ SetFaults(*fault.Injector) }); ok {
			sf.SetFaults(c.Faults)
		} else {
			panic("cluster: fabric does not support fault injection")
		}
		c.Faults.RegisterMetrics(c.Reg.Child("net").Child("fault"))
	}
	ncfg := cfg.Node
	ncfg.NumNodes = cfg.Nodes
	if ncfg.Ctrl.PaceFlitBytes == 0 {
		ncfg.Ctrl.PaceFlitBytes = cfg.Net.FlitBytes
	}
	if ncfg.Ctrl.PaceFlitTime == 0 {
		ncfg.Ctrl.PaceFlitTime = cfg.Net.FlitTime
	}
	ncfg.ScomaSize = cfg.ScomaSize
	ncfg.ReflectSize = cfg.ReflectSize
	for i := 0; i < cfg.Nodes; i++ {
		n := node.New(eng, i, fabric, ncfg)
		n.SetupDefaultQueues(cfg.Nodes)
		n.RegisterMetrics(c.Reg.Child(fmt.Sprintf("node%d", i)))
		c.Nodes = append(c.Nodes, n)
	}

	for _, n := range c.Nodes {
		if cfg.ScomaSize > 0 && !cfg.DisableScomaProtocol {
			c.Scomas = append(c.Scomas, firmware.NewScoma(n.FW, firmware.ScomaConfig{
				Window:      n.ScomaWindow(),
				BackingBase: cfg.ScomaBackingBase,
				NumNodes:    cfg.Nodes,
				Migratory:   cfg.ScomaMigratory,
			}))
		}
		if cfg.NumaSegment > 0 {
			c.Numas = append(c.Numas, firmware.NewNuma(n.FW, firmware.NumaConfig{
				Window:    bus.Range{Base: node.NumaBase, Size: cfg.NumaSegment * uint32(cfg.Nodes)},
				Segment:   cfg.NumaSegment,
				LocalBase: cfg.NumaLocalBase,
			}))
		}
		if cfg.ReflectSize > 0 {
			c.Reflects = append(c.Reflects, firmware.NewReflect(n.FW, n.Map.Reflect))
		}
		if !cfg.DisableDma {
			c.Dmas = append(c.Dmas, firmware.NewDma(n.FW, firmware.DmaConfig{
				StagingBase: n.DmaStagingOff(),
				StagingSize: node.DmaStagingLen,
			}))
		}
		c.MissRings = append(c.MissRings,
			firmware.NewMissRing(n.FW, MissRingBase, MissRingEntries))
		if !cfg.DisableRel {
			relCfg := cfg.Rel
			relCfg.NumNodes = cfg.Nodes
			rel := firmware.NewRel(n.FW, relCfg)
			rel.RegisterMetrics(c.Reg.Child(fmt.Sprintf("node%d", n.ID)).Child("fault"))
			c.Rels = append(c.Rels, rel)
		}
		n.FW.Start()
	}
	return c
}

// RelBound returns the worst-case sim time between submitting a reliable
// send and its success-or-failure status landing (see RelConfig.SendBound);
// zero when the service is disabled.
func (c *Cluster) RelBound() sim.Time {
	if len(c.Rels) == 0 {
		return 0
	}
	return c.Rels[0].Config().SendBound()
}

// Run drives the simulation until no events remain, then checks for
// deadlocked processes.
func (c *Cluster) Run() {
	c.Eng.Run()
}

// RunFor drives the simulation for d of simulated time.
func (c *Cluster) RunFor(d sim.Time) { c.Eng.RunUntil(c.Eng.Now() + d) }

// CheckQuiescent panics if processes are still blocked on conditions with
// no pending events (a modeled-system deadlock). Workload procs that
// legitimately wait forever (firmware loops) are excluded by construction:
// firmware loops block on queues, which counts — so this check is for use
// by tests that know their expected idle-process count.
func (c *Cluster) CheckQuiescent(expectedBlocked int) error {
	if got := c.Eng.BlockedProcs(); got != expectedBlocked {
		return fmt.Errorf("cluster: %d blocked procs, expected %d", got, expectedBlocked)
	}
	return nil
}

// FirmwareLoops returns the number of always-blocked firmware service procs
// (three per node), for use with CheckQuiescent.
func (c *Cluster) FirmwareLoops() int { return 3 * len(c.Nodes) }
