package cluster

import (
	"testing"

	"startvoyager/internal/sim"
)

func TestNewDefaultCluster(t *testing.T) {
	c := New(DefaultConfig(4))
	if len(c.Nodes) != 4 || len(c.Scomas) != 4 || len(c.Numas) != 4 || len(c.Dmas) != 4 {
		t.Fatalf("assembly wrong: %d nodes, %d scoma, %d numa, %d dma",
			len(c.Nodes), len(c.Scomas), len(c.Numas), len(c.Dmas))
	}
	c.Run()
	// Only the firmware loops (3 per node) may be blocked at quiescence.
	if err := c.CheckQuiescent(c.FirmwareLoops()); err != nil {
		t.Fatal(err)
	}
}

func TestDisabledServices(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.ScomaSize = 0
	cfg.NumaSegment = 0
	cfg.DisableDma = true
	c := New(cfg)
	if len(c.Scomas) != 0 || len(c.Numas) != 0 || len(c.Dmas) != 0 {
		t.Fatal("disabled services were installed")
	}
}

func TestDisableScomaProtocolKeepsWindow(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.DisableScomaProtocol = true
	c := New(cfg)
	if len(c.Scomas) != 0 {
		t.Fatal("protocol installed despite flag")
	}
	if c.Nodes[0].Map.Scoma.Size == 0 {
		t.Fatal("window missing")
	}
}

func TestDirectNetConfig(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.DirectNet = true
	c := New(cfg)
	if c.Fabric.NumNodes() != 2 {
		t.Fatal("fabric wrong")
	}
}

func TestRunFor(t *testing.T) {
	c := New(DefaultConfig(1))
	c.RunFor(1000)
	if c.Eng.Now() < 1000 {
		t.Fatalf("now = %v", c.Eng.Now())
	}
}

func TestZeroNodesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(Config{Nodes: 0})
}

func TestQuiescentMismatchReported(t *testing.T) {
	c := New(DefaultConfig(1))
	c.Run()
	if err := c.CheckQuiescent(0); err == nil {
		t.Fatal("expected mismatch error")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	// Two identical clusters with identical stimulus must evolve
	// identically (event counts included).
	build := func() (*Cluster, *uint64) {
		c := New(DefaultConfig(2))
		n := new(uint64)
		c.Eng.Spawn("stim", func(p *sim.Proc) {
			for i := 0; i < 10; i++ {
				p.Delay(100)
				*n += uint64(c.Eng.Executed())
			}
		})
		return c, n
	}
	c1, n1 := build()
	c1.Run()
	c2, n2 := build()
	c2.Run()
	if *n1 != *n2 || c1.Eng.Executed() != c2.Eng.Executed() {
		t.Fatalf("nondeterminism: %d/%d vs %d/%d", *n1, c1.Eng.Executed(), *n2, c2.Eng.Executed())
	}
}
