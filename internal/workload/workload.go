// Package workload provides synthetic traffic generators and a driver for
// system-workload-level studies — the paper closes by promising that
// "investigations will not be confined to single program simulations, but
// system workload level studies". Each generator produces a deterministic
// schedule of message sends per node; the driver runs the schedule on a
// machine and reports delivered throughput, latency percentiles, and
// resource occupancies.
package workload

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"

	"startvoyager/internal/core"
	"startvoyager/internal/sim"
	"startvoyager/internal/stats"
)

// Pattern names a traffic pattern.
type Pattern int

// Traffic patterns.
const (
	// Uniform: every message picks a uniformly random destination.
	Uniform Pattern = iota
	// Hotspot: a fraction of traffic converges on node 0, the rest uniform.
	Hotspot
	// Neighbor: each node talks to (id+1) mod n — nearest-neighbor rings.
	Neighbor
	// Transpose: node i talks to node (i + n/2) mod n — bisection stress.
	Transpose
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case Uniform:
		return "uniform"
	case Hotspot:
		return "hotspot"
	case Neighbor:
		return "neighbor"
	case Transpose:
		return "transpose"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Config describes one run.
type Config struct {
	Nodes       int
	Pattern     Pattern
	Messages    int      // per node
	PayloadSize int      // Basic payload bytes (<= 88)
	Think       sim.Time // mean compute time between sends (0 = saturating)
	HotFraction int      // Hotspot: percent of traffic aimed at node 0
	Seed        int64
}

// Result is the outcome of one run.
type Result struct {
	Config
	Duration   sim.Time
	Sent       int
	Received   int
	Throughput float64 // payload MB/s machine-wide
	MsgPerSec  float64
	LatencyP50 sim.Time
	LatencyP99 sim.Time
	MaxAPUtil  float64 // worst aP utilization
	BusUtil    float64 // worst bus utilization
	Events     uint64  // engine events executed over the whole run
	TraceHash  uint64  // FNV-1a over the delivery trace; same seed => same hash
}

// seedFor derives the per-node RNG seed from the run seed with a SplitMix64
// step, so node streams are decorrelated rather than linearly offset (and
// identical run seeds still give identical schedules).
func seedFor(seed int64, id int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(id+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// destFor computes one destination per the pattern.
func destFor(cfg Config, rng *rand.Rand, me int) int {
	n := cfg.Nodes
	switch cfg.Pattern {
	case Hotspot:
		if me != 0 && rng.Intn(100) < cfg.HotFraction {
			return 0
		}
		fallthrough
	case Uniform:
		for {
			d := rng.Intn(n)
			if d != me {
				return d
			}
		}
	case Neighbor:
		return (me + 1) % n
	case Transpose:
		return (me + n/2) % n
	default:
		panic("workload: unknown pattern")
	}
}

// Run executes the workload and gathers statistics. Each message carries
// its send timestamp; receivers sample delivery latency.
func Run(cfg Config) Result { return RunInstrumented(cfg, nil) }

// RunInstrumented is Run with a hook called on the freshly built machine
// before any traffic starts — the place to attach a trace buffer or grab
// the metrics registry. attach == nil degenerates to Run; the hook must not
// change simulated behavior (observers never schedule events), so results
// are identical either way.
func RunInstrumented(cfg Config, attach func(*core.Machine)) Result {
	if cfg.Nodes < 2 {
		panic("workload: need at least two nodes")
	}
	if cfg.PayloadSize < 8 {
		cfg.PayloadSize = 8
	}
	if cfg.PayloadSize > core.MaxBasicPayload {
		cfg.PayloadSize = core.MaxBasicPayload
	}
	m := core.NewMachine(cfg.Nodes)
	if attach != nil {
		attach(m)
	}
	var lat stats.Samples
	received := make([]int, cfg.Nodes)
	total := cfg.Nodes * cfg.Messages
	totalReceived := 0

	// The delivery trace hash folds in (receiver, send time, receive time)
	// for every message, in global delivery order. The engine is
	// single-threaded, so this order is well-defined; any divergence
	// between same-seed runs shows up as a different hash.
	traceHash := fnv.New64a()
	hashDelivery := func(node int, sentAt, at sim.Time) {
		var rec [24]byte
		binary.BigEndian.PutUint64(rec[0:], uint64(node))
		binary.BigEndian.PutUint64(rec[8:], uint64(sentAt))
		binary.BigEndian.PutUint64(rec[16:], uint64(at))
		traceHash.Write(rec[:])
	}

	for id := 0; id < cfg.Nodes; id++ {
		id := id
		rng := rand.New(rand.NewSource(seedFor(cfg.Seed, id)))
		m.Go(id, "gen", func(p *sim.Proc, a *core.API) {
			payload := make([]byte, cfg.PayloadSize)
			sent := 0
			// Every node keeps draining until the machine-wide message count
			// completes — otherwise a finished node's full Hold queue would
			// wedge senders still aiming at it.
			for sent < cfg.Messages || totalReceived < total {
				drained := false
				for {
					_, pl, ok := a.TryRecvBasic(p)
					if !ok {
						break
					}
					drained = true
					sentAt := sim.Time(binary.BigEndian.Uint64(pl))
					lat.Add(float64(p.Now() - sentAt))
					hashDelivery(id, sentAt, p.Now())
					received[id]++
					totalReceived++
				}
				switch {
				case sent < cfg.Messages:
					binary.BigEndian.PutUint64(payload, uint64(p.Now()))
					a.SendBasic(p, destFor(cfg, rng, id), payload)
					sent++
					if cfg.Think > 0 {
						a.Compute(p, sim.Time(rng.Int63n(int64(2*cfg.Think)+1)))
					}
				case !drained:
					p.Delay(200 * sim.Nanosecond) // idle-poll for stragglers
				}
			}
		})
	}
	m.Run()

	res := Result{Config: cfg, Duration: m.Eng.Now(), Sent: total, Received: totalReceived,
		Events: m.Eng.Executed(), TraceHash: traceHash.Sum64()}
	res.Throughput = stats.MBps(totalReceived*cfg.PayloadSize, res.Duration)
	res.MsgPerSec = float64(totalReceived) / float64(res.Duration) * 1e9
	res.LatencyP50 = sim.Time(lat.Percentile(50))
	res.LatencyP99 = sim.Time(lat.Percentile(99))
	for _, n := range m.Nodes {
		if u := n.APMeter.Utilization(0, res.Duration); u > res.MaxAPUtil {
			res.MaxAPUtil = u
		}
		if u := float64(n.Bus.BusyTime()) / float64(res.Duration); u > res.BusUtil {
			res.BusUtil = u
		}
	}
	return res
}

// Table runs a set of patterns and formats the comparison.
func Table(nodes, messages, payload int, patterns []Pattern) *stats.Table {
	t := &stats.Table{
		Title: fmt.Sprintf("system workloads: %d nodes, %d msgs/node, %dB payloads",
			nodes, messages, payload),
		Columns: []string{"pattern", "duration", "agg MB/s", "msg/s",
			"p50 lat", "p99 lat", "max aP util"},
	}
	for _, pat := range patterns {
		r := Run(Config{Nodes: nodes, Pattern: pat, Messages: messages,
			PayloadSize: payload, HotFraction: 70, Seed: 11})
		t.AddRow(pat.String(), r.Duration.String(),
			fmt.Sprintf("%.1f", r.Throughput),
			fmt.Sprintf("%.0f", r.MsgPerSec),
			r.LatencyP50.String(), r.LatencyP99.String(),
			fmt.Sprintf("%.0f%%", 100*r.MaxAPUtil))
	}
	return t
}
