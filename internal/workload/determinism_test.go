package workload

// The regression test behind the determinism contract: everything the lint
// suite (internal/lint, cmd/voyager-vet) exists to protect. Two runs with
// the same seed must be bit-identical — same event count, same final stats
// (float-for-float), same FNV hash of the delivery trace — and a different
// seed must actually change the outcome, proving the hash has teeth.

import (
	"bytes"
	"reflect"
	"testing"

	"startvoyager/internal/core"
	"startvoyager/internal/sim"
	"startvoyager/internal/stats"
	"startvoyager/internal/trace"
)

func detConfig(seed int64) Config {
	return Config{
		Nodes:       4,
		Pattern:     Hotspot, // randomized destinations exercise the RNG path
		Messages:    40,
		PayloadSize: 16,
		Think:       2 * sim.Microsecond,
		HotFraction: 70,
		Seed:        seed,
	}
}

func TestSameSeedBitIdentical(t *testing.T) {
	r1 := Run(detConfig(42))
	r2 := Run(detConfig(42))

	if r1.Events != r2.Events {
		t.Errorf("event counts differ between same-seed runs: %d vs %d", r1.Events, r2.Events)
	}
	if r1.TraceHash != r2.TraceHash {
		t.Errorf("trace hashes differ between same-seed runs: %#x vs %#x", r1.TraceHash, r2.TraceHash)
	}
	// DeepEqual compares every field, including the float stats, exactly —
	// "close enough" would hide accumulation-order drift.
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("results differ between same-seed runs:\n  run 1: %+v\n  run 2: %+v", r1, r2)
	}
}

func TestDifferentSeedDiverges(t *testing.T) {
	r1 := Run(detConfig(42))
	r3 := Run(detConfig(43))

	if r1.TraceHash == r3.TraceHash {
		t.Errorf("trace hash %#x identical across different seeds; hash is not sensitive to the schedule",
			r1.TraceHash)
	}
	if r1.Duration == r3.Duration && r1.LatencyP50 == r3.LatencyP50 && r1.LatencyP99 == r3.LatencyP99 {
		t.Errorf("all timing stats identical across different seeds: %+v", r1)
	}
}

// observedRun executes one instrumented run and renders the Perfetto trace
// and metrics dump to bytes.
func observedRun(t *testing.T, seed int64) (Result, []byte, []byte) {
	t.Helper()
	var tbuf *trace.Buffer
	var mach *core.Machine
	res := RunInstrumented(detConfig(seed), func(m *core.Machine) {
		mach = m
		tbuf = m.Trace(1 << 16)
	})
	var traceOut, metricsOut bytes.Buffer
	if err := tbuf.WritePerfetto(&traceOut); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}
	if err := mach.Metrics().WriteJSON(&metricsOut, mach.Eng.Now()); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return res, traceOut.Bytes(), metricsOut.Bytes()
}

// TestObservedOutputsDeterministic extends the same-seed contract to the
// observability layer: two instrumented runs must produce byte-identical
// Perfetto traces and metrics dumps, and a different seed must change the
// trace (so the comparison is not vacuous).
func TestObservedOutputsDeterministic(t *testing.T) {
	_, trace1, metrics1 := observedRun(t, 42)
	_, trace2, metrics2 := observedRun(t, 42)
	if !bytes.Equal(trace1, trace2) {
		t.Error("Perfetto traces differ between same-seed runs")
	}
	if !bytes.Equal(metrics1, metrics2) {
		t.Error("metrics dumps differ between same-seed runs")
	}

	_, trace3, _ := observedRun(t, 43)
	if bytes.Equal(trace1, trace3) {
		t.Error("Perfetto trace identical across different seeds; trace is not capturing the schedule")
	}
}

// TestPathReportDeterministic extends the same-seed contract to the causal
// path analyzer: two instrumented runs must render byte-identical waterfall
// reports, a different seed must change the report, and the workload's
// message traffic must reconstruct into chains with no orphans.
func TestPathReportDeterministic(t *testing.T) {
	render := func(seed int64) []byte {
		var tbuf *trace.Buffer
		RunInstrumented(detConfig(seed), func(m *core.Machine) {
			tbuf = m.Trace(1 << 18)
		})
		if d := tbuf.Stats().Dropped; d != 0 {
			t.Fatalf("trace ring dropped %d events", d)
		}
		a := trace.AnalyzePaths(tbuf.Events())
		if len(a.Msgs) == 0 {
			t.Fatal("no traced messages in instrumented workload")
		}
		if a.Orphans != 0 {
			t.Fatalf("%d orphan chains", a.Orphans)
		}
		var b bytes.Buffer
		if err := a.WriteWaterfall(&b); err != nil {
			t.Fatalf("WriteWaterfall: %v", err)
		}
		return b.Bytes()
	}
	r1 := render(42)
	r2 := render(42)
	if !bytes.Equal(r1, r2) {
		t.Error("path reports differ between same-seed runs")
	}
	r3 := render(43)
	if bytes.Equal(r1, r3) {
		t.Error("path report identical across different seeds; analysis is not capturing the schedule")
	}
}

// TestObserverZeroTimingImpact: attaching the observability layer must not
// perturb the simulation — an instrumented run and a bare run with the same
// seed report identical duration, event count, and delivery-trace hash.
func TestObserverZeroTimingImpact(t *testing.T) {
	bare := Run(detConfig(42))
	observed, _, _ := observedRun(t, 42)
	if bare.Duration != observed.Duration {
		t.Errorf("observer changed simulated duration: %v vs %v", bare.Duration, observed.Duration)
	}
	if bare.Events != observed.Events {
		t.Errorf("observer changed engine event count: %d vs %d", bare.Events, observed.Events)
	}
	if bare.TraceHash != observed.TraceHash {
		t.Errorf("observer changed the delivery trace: %#x vs %#x", bare.TraceHash, observed.TraceHash)
	}
	if !reflect.DeepEqual(bare, observed) {
		t.Errorf("observer changed run results:\n  bare:     %+v\n  observed: %+v", bare, observed)
	}
}

// sampledRun executes one instrumented run with both the trace buffer and
// the windowed telemetry sampler attached, and renders the metrics dump and
// the voyager-series/v1 export to bytes.
func sampledRun(t *testing.T, seed int64) (Result, []byte, []byte) {
	t.Helper()
	var mach *core.Machine
	var sampler *stats.Sampler
	res := RunInstrumented(detConfig(seed), func(m *core.Machine) {
		mach = m
		m.Trace(1 << 16)
		sampler = m.Series(stats.SamplerConfig{Window: 20 * sim.Microsecond})
	})
	sampler.Finish()
	var metricsOut, seriesOut bytes.Buffer
	if err := mach.Metrics().WriteJSON(&metricsOut, mach.Eng.Now()); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := sampler.WriteJSON(&seriesOut, nil); err != nil {
		t.Fatalf("series WriteJSON: %v", err)
	}
	return res, metricsOut.Bytes(), seriesOut.Bytes()
}

// TestSamplerZeroTimingImpact extends the zero-impact contract to the
// windowed sampler: a run with the sampler scraping every 5us must report
// results bit-identical to a bare run, and its metrics dump must be
// byte-identical to a sampler-free instrumented run — the sampler neither
// schedules events nor registers metrics.
func TestSamplerZeroTimingImpact(t *testing.T) {
	bare := Run(detConfig(42))
	sampled, metricsOn, _ := sampledRun(t, 42)
	if bare.Duration != sampled.Duration {
		t.Errorf("sampler changed simulated duration: %v vs %v", bare.Duration, sampled.Duration)
	}
	if bare.Events != sampled.Events {
		t.Errorf("sampler changed engine event count: %d vs %d", bare.Events, sampled.Events)
	}
	if bare.TraceHash != sampled.TraceHash {
		t.Errorf("sampler changed the delivery trace: %#x vs %#x", bare.TraceHash, sampled.TraceHash)
	}
	if !reflect.DeepEqual(bare, sampled) {
		t.Errorf("sampler changed run results:\n  bare:    %+v\n  sampled: %+v", bare, sampled)
	}
	_, _, metricsOff := observedRun(t, 42)
	if !bytes.Equal(metricsOn, metricsOff) {
		t.Error("metrics dump differs with the sampler attached; sampling must not touch the registry")
	}
}

// TestSeriesExportDeterministic extends the same-seed contract to the series
// export: byte-identical across same-seed runs, divergent across seeds.
func TestSeriesExportDeterministic(t *testing.T) {
	_, _, series1 := sampledRun(t, 42)
	_, _, series2 := sampledRun(t, 42)
	if !bytes.Equal(series1, series2) {
		t.Error("series exports differ between same-seed runs")
	}
	_, _, series3 := sampledRun(t, 43)
	if bytes.Equal(series1, series3) {
		t.Error("series export identical across different seeds; windows are not capturing the schedule")
	}
}

func TestSeedForDecorrelated(t *testing.T) {
	// Neighboring (seed, id) pairs must not produce related seeds: the old
	// seed+id*7919 scheme made run seeds 42 and 42+7919 share node streams.
	seen := make(map[int64]bool)
	for seed := int64(0); seed < 8; seed++ {
		for id := 0; id < 8; id++ {
			s := seedFor(seed, id)
			if seen[s] {
				t.Fatalf("seedFor collision at seed=%d id=%d", seed, id)
			}
			seen[s] = true
		}
	}
	if seedFor(42, 1)-seedFor(42, 0) == seedFor(42, 2)-seedFor(42, 1) {
		t.Error("seedFor produces arithmetically related per-node seeds")
	}
}
