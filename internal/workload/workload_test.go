package workload

import (
	"testing"

	"startvoyager/internal/sim"
)

func run(t *testing.T, cfg Config) Result {
	t.Helper()
	r := Run(cfg)
	if r.Received != r.Sent {
		t.Fatalf("%v: received %d of %d", cfg.Pattern, r.Received, r.Sent)
	}
	if r.Duration <= 0 || r.Throughput <= 0 {
		t.Fatalf("%v: degenerate result %+v", cfg.Pattern, r)
	}
	return r
}

func TestAllPatternsComplete(t *testing.T) {
	for _, pat := range []Pattern{Uniform, Hotspot, Neighbor, Transpose} {
		run(t, Config{Nodes: 8, Pattern: pat, Messages: 40, PayloadSize: 64,
			HotFraction: 70, Seed: 5})
	}
}

func TestHotspotSlowerThanUniform(t *testing.T) {
	uni := run(t, Config{Nodes: 8, Pattern: Uniform, Messages: 60, PayloadSize: 64, Seed: 1})
	hot := run(t, Config{Nodes: 8, Pattern: Hotspot, Messages: 60, PayloadSize: 64,
		HotFraction: 90, Seed: 1})
	if hot.Duration <= uni.Duration {
		t.Fatalf("hotspot (%v) not slower than uniform (%v)", hot.Duration, uni.Duration)
	}
	if hot.LatencyP99 <= uni.LatencyP99 {
		t.Fatalf("hotspot p99 (%v) not above uniform (%v)", hot.LatencyP99, uni.LatencyP99)
	}
}

func TestThinkTimeReducesMessageRate(t *testing.T) {
	// Think time models computation between sends: the aP stays busy but
	// the offered network load (messages per second) drops.
	sat := run(t, Config{Nodes: 4, Pattern: Neighbor, Messages: 50, PayloadSize: 64, Seed: 2})
	think := run(t, Config{Nodes: 4, Pattern: Neighbor, Messages: 50, PayloadSize: 64,
		Think: 20 * sim.Microsecond, Seed: 2})
	if think.MsgPerSec >= sat.MsgPerSec/2 {
		t.Fatalf("think time did not reduce message rate: %.0f vs %.0f",
			think.MsgPerSec, sat.MsgPerSec)
	}
	if think.Duration <= sat.Duration {
		t.Fatal("think time did not stretch the run")
	}
}

func TestDeterministic(t *testing.T) {
	cfg := Config{Nodes: 5, Pattern: Uniform, Messages: 30, PayloadSize: 32, Seed: 9}
	a, b := Run(cfg), Run(cfg)
	if a.Duration != b.Duration || a.LatencyP99 != b.LatencyP99 {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestTable(t *testing.T) {
	tab := Table(4, 20, 64, []Pattern{Uniform, Neighbor})
	if len(tab.Rows) != 2 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	t.Logf("\n%s", tab)
}

func TestPatternString(t *testing.T) {
	if Uniform.String() != "uniform" || Hotspot.String() != "hotspot" ||
		Neighbor.String() != "neighbor" || Transpose.String() != "transpose" {
		t.Fatal("names wrong")
	}
}

func TestPayloadClamping(t *testing.T) {
	r := run(t, Config{Nodes: 2, Pattern: Neighbor, Messages: 5, PayloadSize: 4000, Seed: 3})
	if r.PayloadSize != 88 {
		t.Fatalf("payload not clamped: %d", r.PayloadSize)
	}
	var _ sim.Time = r.Duration
}
