package bus

import (
	"testing"

	"startvoyager/internal/sim"
)

// fakeDev is a scriptable bus device.
type fakeDev struct {
	name    string
	snoop   func(tx *Transaction) Snoop
	snooped []*Transaction
}

func (d *fakeDev) DeviceName() string { return d.name }
func (d *fakeDev) SnoopBus(tx *Transaction) Snoop {
	d.snooped = append(d.snooped, tx)
	if d.snoop == nil {
		return Snoop{}
	}
	return d.snoop(tx)
}

// memDev claims a range and serves from a byte array.
func memDev(name string, rng Range, latency sim.Time) (*fakeDev, []byte) {
	data := make([]byte, rng.Size)
	d := &fakeDev{name: name}
	d.snoop = func(tx *Transaction) Snoop {
		if tx.Kind == Kill || !rng.Contains(tx.Addr) {
			return Snoop{}
		}
		return Snoop{Action: Claim, Latency: latency, Serve: func(tx *Transaction) {
			off := rng.Offset(tx.Addr)
			if tx.Kind.IsRead() {
				copy(tx.Data, data[off:])
			} else {
				copy(data[off:], tx.Data)
			}
		}}
	}
	return d, data
}

func TestReadWriteTiming(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, "bus0", DefaultConfig())
	mem, backing := memDev("mem", Range{0, 1 << 20}, 60)
	master := &fakeDev{name: "cpu"}
	b.Attach(mem)
	b.Attach(master)
	copy(backing[64:], []byte{1, 2, 3, 4, 5, 6, 7, 8})

	var readDone sim.Time
	buf := make([]byte, LineSize)
	b.Issue(&Transaction{Kind: ReadLine, Addr: 64, Data: buf, Master: master}, func() {
		readDone = eng.Now()
	})
	eng.Run()
	// 2 addr cycles (30) + 60 latency + 4 beats (60) = 150ns.
	if readDone != 150 {
		t.Fatalf("ReadLine done at %v, want 150", readDone)
	}
	if buf[0] != 1 || buf[7] != 8 {
		t.Fatalf("data = %v", buf[:8])
	}
	// Uncached word write: 30 + 60 + 15 = 105ns more.
	var writeDone sim.Time
	b.Issue(&Transaction{Kind: WriteWord, Addr: 128, Data: []byte{0xAB}, Master: master},
		func() { writeDone = eng.Now() })
	eng.Run()
	if writeDone != 255 {
		t.Fatalf("WriteWord done at %v, want 255", writeDone)
	}
	if backing[128] != 0xAB {
		t.Fatal("write not applied")
	}
	st := b.Stats()
	if st.Transactions != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestMasterNotSnooped(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, "bus0", DefaultConfig())
	mem, _ := memDev("mem", Range{0, 4096}, 0)
	master := &fakeDev{name: "cpu"}
	b.Attach(mem)
	b.Attach(master)
	b.Issue(&Transaction{Kind: ReadWord, Addr: 0, Data: make([]byte, 8), Master: master}, func() {})
	eng.Run()
	if len(master.snooped) != 0 {
		t.Fatal("master snooped its own transaction")
	}
	if len(mem.snooped) != 1 {
		t.Fatal("responder not snooped")
	}
}

func TestRetryThenSucceed(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.RetryBackoff = 100
	b := New(eng, "bus0", cfg)
	mem, _ := memDev("mem", Range{0, 4096}, 0)
	tries := 0
	retrier := &fakeDev{name: "abiu", snoop: func(tx *Transaction) Snoop {
		tries++
		if tries <= 3 {
			return Snoop{Action: Retry}
		}
		return Snoop{}
	}}
	master := &fakeDev{name: "cpu"}
	b.Attach(mem)
	b.Attach(retrier)
	b.Attach(master)
	tx := &Transaction{Kind: ReadLine, Addr: 0, Data: make([]byte, LineSize), Master: master}
	done := false
	b.Issue(tx, func() { done = true })
	eng.Run()
	if !done || tx.Retries != 3 {
		t.Fatalf("done=%v retries=%d", done, tx.Retries)
	}
	if b.Stats().Retries != 3 {
		t.Fatalf("stats %+v", b.Stats())
	}
}

func TestRetryLivelockPanics(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.MaxRetries = 5
	cfg.RetryBackoff = 10
	b := New(eng, "bus0", cfg)
	always := &fakeDev{name: "nak", snoop: func(tx *Transaction) Snoop { return Snoop{Action: Retry} }}
	master := &fakeDev{name: "cpu"}
	b.Attach(always)
	b.Attach(master)
	b.Issue(&Transaction{Kind: Kill, Addr: 0, Master: master}, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("no livelock panic")
		}
	}()
	eng.Run()
}

func TestInterventionBeatsMemory(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, "bus0", DefaultConfig())
	mem, backing := memDev("mem", Range{0, 4096}, 60)
	copy(backing, []byte{9, 9, 9, 9})
	cachev := &fakeDev{name: "l2", snoop: func(tx *Transaction) Snoop {
		return Snoop{Action: Claim, Intervene: true, Latency: 6,
			Serve: func(tx *Transaction) { copy(tx.Data, []byte{7, 7, 7, 7}) }}
	}}
	master := &fakeDev{name: "niu"}
	b.Attach(mem)
	b.Attach(cachev)
	b.Attach(master)
	buf := make([]byte, LineSize)
	b.Issue(&Transaction{Kind: ReadLine, Addr: 0, Data: buf, Master: master}, func() {})
	eng.Run()
	if buf[0] != 7 {
		t.Fatalf("intervention data not used: %v", buf[:4])
	}
}

func TestUnclaimedPanics(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, "bus0", DefaultConfig())
	master := &fakeDev{name: "cpu"}
	b.Attach(master)
	b.Issue(&Transaction{Kind: ReadWord, Addr: 0xdead0000, Data: make([]byte, 4), Master: master}, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unclaimed address")
		}
	}()
	eng.Run()
}

func TestKillNeedsNoClaimer(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, "bus0", DefaultConfig())
	master := &fakeDev{name: "cpu"}
	b.Attach(master)
	ok := false
	b.Issue(&Transaction{Kind: Kill, Addr: 32, Master: master}, func() { ok = true })
	eng.Run()
	if !ok {
		t.Fatal("Kill did not complete")
	}
}

func TestValidation(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, "bus0", DefaultConfig())
	master := &fakeDev{name: "cpu"}
	bad := []*Transaction{
		{Kind: ReadLine, Addr: 4, Data: make([]byte, 32), Master: master}, // unaligned
		{Kind: ReadLine, Addr: 0, Data: make([]byte, 16), Master: master}, // short line
		{Kind: ReadWord, Addr: 0, Data: make([]byte, 9), Master: master},  // too wide
		{Kind: ReadWord, Addr: 6, Data: make([]byte, 4), Master: master},  // crosses beat
		{Kind: Kill, Addr: 5, Master: master},                             // unaligned kill
		{Kind: Kind(99), Addr: 0, Master: master},                         // unknown
	}
	for i, tx := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			b.Issue(tx, func() {})
		}()
	}
	_ = eng
}

func TestBusSerialization(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, "bus0", DefaultConfig())
	mem, _ := memDev("mem", Range{0, 4096}, 0)
	m1 := &fakeDev{name: "a"}
	m2 := &fakeDev{name: "b"}
	b.Attach(mem)
	b.Attach(m1)
	b.Attach(m2)
	var t1, t2 sim.Time
	b.Issue(&Transaction{Kind: ReadLine, Addr: 0, Data: make([]byte, 32), Master: m1},
		func() { t1 = eng.Now() })
	b.Issue(&Transaction{Kind: ReadLine, Addr: 32, Data: make([]byte, 32), Master: m2},
		func() { t2 = eng.Now() })
	eng.Run()
	// Each is 30+0+60 = 90ns; second must wait for first.
	if t1 != 90 || t2 != 180 {
		t.Fatalf("t1=%v t2=%v, want 90/180", t1, t2)
	}
	if b.BusyTime() != 180 {
		t.Fatalf("busy = %v", b.BusyTime())
	}
}

func TestRange(t *testing.T) {
	r := Range{Base: 0x1000, Size: 0x100}
	if !r.Contains(0x1000) || !r.Contains(0x10FF) || r.Contains(0x1100) || r.Contains(0xFFF) {
		t.Fatal("Contains wrong")
	}
	if r.Offset(0x1010) != 0x10 || r.End() != 0x1100 {
		t.Fatal("Offset/End wrong")
	}
}
