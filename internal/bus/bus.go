// Package bus models the PowerPC 60X memory bus of a StarT-Voyager node: a
// shared, snooped, retry-capable bus connecting the application processor's
// cache, the memory controller, and the NIU's aP bus interface unit (aBIU).
//
// The model is transaction-granular: each transaction holds the bus for an
// address tenure, a snoop window in which every other device may Retry or
// Claim it, an optional responder access latency, and a data tenure of 8-byte
// beats. Retried transactions are re-issued by the bus itself after a
// backoff, which is exactly the mechanism StarT-Voyager's S-COMA support
// uses to stall a processor touching data that has not yet arrived.
package bus

import (
	"fmt"

	"startvoyager/internal/sim"
	"startvoyager/internal/stats"
)

// LineSize is the coherence granularity (bytes) of the 604e systems modeled.
const LineSize = 32

// BeatBytes is the width of one data-bus beat.
const BeatBytes = 8

// Kind enumerates bus transaction types.
type Kind int

const (
	// ReadLine is a coherent 32-byte burst read (shared intent).
	ReadLine Kind = iota
	// ReadLineX is a coherent read with intent to modify (RWITM).
	ReadLineX
	// WriteLine is a 32-byte burst write (cache writeback or DMA write).
	WriteLine
	// ReadWord is an uncached read of 1..8 bytes.
	ReadWord
	// WriteWord is an uncached write of 1..8 bytes.
	WriteWord
	// Kill broadcasts an invalidation for a line; it carries no data.
	Kill
)

// String names the transaction kind.
func (k Kind) String() string {
	switch k {
	case ReadLine:
		return "ReadLine"
	case ReadLineX:
		return "ReadLineX"
	case WriteLine:
		return "WriteLine"
	case ReadWord:
		return "ReadWord"
	case WriteWord:
		return "WriteWord"
	case Kill:
		return "Kill"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// IsRead reports whether the transaction transfers data to the master.
func (k Kind) IsRead() bool { return k == ReadLine || k == ReadLineX || k == ReadWord }

// Transaction is one bus operation. For line kinds, Addr must be 32-byte
// aligned and Data 32 bytes long; for word kinds Data is 1..8 bytes and must
// not cross an 8-byte boundary.
type Transaction struct {
	Kind   Kind
	Addr   uint32
	Data   []byte
	Master Device // issuing device (excluded from snooping)

	Retries int // filled by the bus: number of retry rounds taken
	// SharedSeen is set by the bus when any snooper asserted the shared
	// line (the 60X SHD signal): a filling cache must install the line in
	// Shared rather than Exclusive state.
	SharedSeen bool
}

func (t *Transaction) validate() error {
	switch t.Kind {
	case ReadLine, ReadLineX, WriteLine:
		if t.Addr%LineSize != 0 {
			return fmt.Errorf("bus: %v at unaligned %#x", t.Kind, t.Addr)
		}
		if len(t.Data) != LineSize {
			return fmt.Errorf("bus: %v with %d data bytes", t.Kind, len(t.Data))
		}
	case ReadWord, WriteWord:
		if len(t.Data) == 0 || len(t.Data) > BeatBytes {
			return fmt.Errorf("bus: %v with %d data bytes", t.Kind, len(t.Data))
		}
		if t.Addr/BeatBytes != (t.Addr+uint32(len(t.Data))-1)/BeatBytes {
			return fmt.Errorf("bus: %v crosses beat boundary at %#x+%d", t.Kind, t.Addr, len(t.Data))
		}
	case Kill:
		if t.Addr%LineSize != 0 {
			return fmt.Errorf("bus: Kill at unaligned %#x", t.Addr)
		}
	default:
		return fmt.Errorf("bus: unknown kind %d", t.Kind)
	}
	return nil
}

//voyager:noalloc
func (t *Transaction) beats() int {
	switch t.Kind {
	case ReadLine, ReadLineX, WriteLine:
		return LineSize / BeatBytes
	case ReadWord, WriteWord:
		return 1
	default:
		return 0
	}
}

// Action is a device's snoop decision.
type Action int

const (
	// OK: the device has no stake in the transaction (or has updated its
	// internal state silently, e.g. invalidated a clean line).
	OK Action = iota
	// Retry aborts the transaction; the bus re-issues it after the backoff.
	Retry
	// Claim: the device will service the data phase (memory controller for
	// its range, aBIU for NIU-mapped ranges, a cache interveining with
	// modified data).
	Claim
)

// Snoop is the result of presenting a transaction to a device.
type Snoop struct {
	Action Action
	// Intervene marks a cache supplying modified data; an intervening claim
	// takes precedence over an ordinary (memory) claim.
	Intervene bool
	// Shared asserts the shared snoop line: the master's cache must not
	// install the line exclusively.
	Shared bool
	// Latency is the claimer's initial access time before data beats.
	Latency sim.Time
	// Serve performs the data phase: fill tx.Data for reads, absorb it for
	// writes. Called once, at the data phase, if this claim wins.
	Serve func(tx *Transaction)
}

// Device is anything attached to the bus.
type Device interface {
	// DeviceName identifies the device in diagnostics.
	DeviceName() string
	// SnoopBus observes a transaction issued by another master.
	SnoopBus(tx *Transaction) Snoop
}

// Config holds bus timing parameters.
type Config struct {
	CycleTime    sim.Time // bus clock period (default 15 ns — 66 MHz)
	AddrCycles   int      // address tenure + snoop window (default 2)
	RetryBackoff sim.Time // master re-issue delay after a retry (default 150 ns)
	MaxRetries   int      // livelock guard; panic beyond (default 1e6)
}

// DefaultConfig returns 66 MHz 60X-like timing.
func DefaultConfig() Config {
	return Config{CycleTime: 15 * sim.Nanosecond, AddrCycles: 2,
		RetryBackoff: 150 * sim.Nanosecond, MaxRetries: 1e6}
}

func (c *Config) fillDefaults() {
	if c.CycleTime == 0 {
		c.CycleTime = 15 * sim.Nanosecond
	}
	if c.AddrCycles == 0 {
		c.AddrCycles = 2
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 150 * sim.Nanosecond
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 1e6
	}
}

// Stats counts bus activity.
type Stats struct {
	Transactions uint64
	Retries      uint64
	DataBytes    uint64
}

// Bus is one node's memory bus.
type Bus struct {
	eng     *sim.Engine
	cfg     Config
	res     *sim.Resource
	devices []Device
	stats   Stats
	node    int // owning node, for trace attribution (SetNode)
	retHist *stats.Histogram
	// snoopHook, if set, observes every completed transaction (tracing).
	snoopHook func(tx *Transaction)

	// opFree recycles busOp records so steady-state issues allocate nothing.
	// The pool is per-bus (per-node), never global: parallel sweeps run whole
	// machines on separate goroutines.
	opFree []*busOp

	// pcallTx/pcallFn adapt IssueP to Proc.Call without a per-call closure:
	// Call invokes its start function synchronously, so the staged
	// transaction is consumed before IssueP returns.
	pcallTx *Transaction
	pcallFn func(done func())
}

// New creates an empty bus.
func New(eng *sim.Engine, name string, cfg Config) *Bus {
	cfg.fillDefaults()
	b := &Bus{eng: eng, cfg: cfg, res: sim.NewResource(eng, name),
		retHist: stats.NewHistogram(0, 1, 2, 4, 8, 16, 64, 256)}
	b.pcallFn = b.pcallStart
	return b
}

// Attach adds a device to the snoop set.
func (b *Bus) Attach(d Device) { b.devices = append(b.devices, d) }

// Engine returns the engine the bus runs on.
func (b *Bus) Engine() *sim.Engine { return b.eng }

// Stats returns a snapshot of activity counters.
func (b *Bus) Stats() Stats { return b.stats }

// BusyTime returns accumulated bus-held time.
func (b *Bus) BusyTime() sim.Time { return b.res.BusyTime() }

// SetNode records the owning node's id for trace attribution (node 0 until
// set, which is right for single-node tests).
func (b *Bus) SetNode(id int) { b.node = id }

// RegisterMetrics registers the bus's counters under r.
func (b *Bus) RegisterMetrics(r *stats.Registry) {
	r.Gauge("transactions", func() int64 { return int64(b.stats.Transactions) })
	r.Gauge("retries", func() int64 { return int64(b.stats.Retries) })
	r.Gauge("data_bytes", func() int64 { return int64(b.stats.DataBytes) })
	r.Time("busy", b.res.BusyTime)
	r.Histogram("retries_per_tx", b.retHist)
	// Masters queued for bus tenure right now — the bus-side depth series.
	r.Gauge("waiters", func() int64 { return int64(b.res.QueueLen()) })
}

// SetTraceHook installs fn to observe each completed transaction.
func (b *Bus) SetTraceHook(fn func(tx *Transaction)) { b.snoopHook = fn }

// Issue runs tx to completion, retrying as needed, then calls done. The
// master must not mutate tx until done runs.
//
//voyager:noalloc steady-state issues ride a recycled busOp record
func (b *Bus) Issue(tx *Transaction, done func()) {
	if err := tx.validate(); err != nil { //voyager:alloc-ok(validate allocates only when rejecting a malformed transaction)
		panic(err)
	}
	op := b.newOp(tx, done)
	b.res.Acquire(op.grantedFn)
}

// IssueP is the blocking form of Issue for Procs. The transaction is staged
// on the bus and picked up synchronously by pcallStart, so no adapter
// closure is built per call.
//
//voyager:noalloc
func (b *Bus) IssueP(p *sim.Proc, tx *Transaction) {
	b.pcallTx = tx
	p.Call(b.pcallFn)
}

//voyager:noalloc
func (b *Bus) pcallStart(done func()) {
	tx := b.pcallTx
	b.pcallTx = nil
	b.Issue(tx, done)
}

// busOp carries one transaction through the address tenure, snoop window,
// data phase, and completion as prebound method values on a recycled record.
// The phase structure — which events are scheduled, with which delays — is
// identical to the closure chain it replaced, so event (time, seq) order and
// therefore all simulated outcomes are unchanged.
type busOp struct {
	b    *Bus
	tx   *Transaction
	done func()
	span sim.Span

	winner    Snoop // winning claim, valid when hasWinner
	hasWinner bool

	grantedFn func()
	snoopFn   func()
	serveFn   func()
	finishFn  func()
	retryFn   func()
}

//voyager:noalloc record and method values are recycled via opFree
func (b *Bus) newOp(tx *Transaction, done func()) *busOp {
	var op *busOp
	if n := len(b.opFree); n > 0 {
		op = b.opFree[n-1]
		b.opFree = b.opFree[:n-1]
	} else {
		op = &busOp{b: b}         //voyager:alloc-ok(pool warm-up; recycled thereafter)
		op.grantedFn = op.granted //voyager:alloc-ok(one-time method binding for the pooled record)
		op.snoopFn = op.snoop     //voyager:alloc-ok(one-time method binding for the pooled record)
		op.serveFn = op.serve     //voyager:alloc-ok(one-time method binding for the pooled record)
		op.finishFn = op.finish   //voyager:alloc-ok(one-time method binding for the pooled record)
		op.retryFn = op.retry     //voyager:alloc-ok(one-time method binding for the pooled record)
	}
	op.tx = tx
	op.done = done
	op.hasWinner = false
	return op
}

// granted runs with the bus held: open the tenure span, then burn the
// address cycles before snooping.
//
//voyager:noalloc
func (op *busOp) granted() {
	b := op.b
	op.span = sim.Span{}
	if b.eng.Observed() {
		op.span = b.eng.BeginSpan(b.node, "bus", op.tx.Kind.String(), //voyager:alloc-ok(observed runs trade allocation for visibility)
			sim.Hex("addr", uint64(op.tx.Addr)))
	}
	b.eng.Schedule(sim.Time(b.cfg.AddrCycles)*b.cfg.CycleTime, op.snoopFn)
}

// snoop presents the transaction to every other device and resolves the
// winning claim, retrying the whole tenure if any device asserted Retry.
//
//voyager:noalloc
func (op *busOp) snoop() {
	b, tx := op.b, op.tx
	retried := false
	op.hasWinner = false
	for _, d := range b.devices {
		if d == tx.Master {
			continue
		}
		s := d.SnoopBus(tx)
		if s.Shared {
			tx.SharedSeen = true
		}
		switch s.Action {
		case Retry:
			retried = true
		case Claim:
			if !op.hasWinner || (s.Intervene && !op.winner.Intervene) {
				op.winner = s
				op.hasWinner = true
			} else if s.Intervene && op.winner.Intervene {
				panic(fmt.Sprintf("bus: double intervention on %v @%#x", tx.Kind, tx.Addr)) //voyager:alloc-ok(panic path)
			}
		}
	}
	if retried {
		op.span.End(sim.Str("result", "retry"))
		b.res.Release()
		b.stats.Retries++
		tx.Retries++
		if tx.Retries > b.cfg.MaxRetries {
			panic(fmt.Sprintf("bus: %v @%#x retried %d times (livelock)", //voyager:alloc-ok(panic path)
				tx.Kind, tx.Addr, tx.Retries))
		}
		b.eng.Schedule(b.cfg.RetryBackoff, op.retryFn)
		return
	}
	if !op.hasWinner && tx.Kind != Kill {
		panic(fmt.Sprintf("bus: unclaimed %v @%#x", tx.Kind, tx.Addr)) //voyager:alloc-ok(panic path)
	}
	var lat sim.Time
	if op.hasWinner {
		lat = op.winner.Latency
	}
	b.eng.Schedule(lat, op.serveFn)
}

// retry re-arbitrates for the bus after the backoff.
//
//voyager:noalloc
func (op *busOp) retry() {
	op.b.res.Acquire(op.grantedFn)
}

// serve runs the winning claim's data phase, then the data tenure.
//
//voyager:noalloc
func (op *busOp) serve() {
	if op.hasWinner && op.winner.Serve != nil {
		op.winner.Serve(op.tx)
	}
	op.b.eng.Schedule(sim.Time(op.tx.beats())*op.b.cfg.CycleTime, op.finishFn)
}

// finish accounts the transaction, releases the bus, recycles the record,
// and completes the master's callback.
//
//voyager:noalloc
func (op *busOp) finish() {
	b, tx, done := op.b, op.tx, op.done
	b.stats.Transactions++
	b.stats.DataBytes += uint64(tx.beats() * BeatBytes)
	b.retHist.Observe(int64(tx.Retries))
	op.span.End()
	op.tx, op.done, op.winner = nil, nil, Snoop{}
	b.opFree = append(b.opFree, op) //voyager:alloc-ok(amortized: pool backing array is retained)
	b.res.Release()
	if b.snoopHook != nil {
		b.snoopHook(tx)
	}
	done()
}

// Range is a half-open physical address range [Base, Base+Size).
type Range struct {
	Base, Size uint32
}

// Contains reports whether addr falls in the range.
func (r Range) Contains(addr uint32) bool {
	return addr >= r.Base && addr-r.Base < r.Size
}

// Offset returns addr-Base; callers must have checked Contains.
func (r Range) Offset(addr uint32) uint32 { return addr - r.Base }

// End returns the first address past the range.
func (r Range) End() uint32 { return r.Base + r.Size }
