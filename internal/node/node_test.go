package node

import (
	"testing"

	"startvoyager/internal/arctic"
	"startvoyager/internal/firmware"
	"startvoyager/internal/niu/ctrl"
	"startvoyager/internal/sim"
)

func TestAddressMapDisjoint(t *testing.T) {
	eng := sim.NewEngine()
	fab := arctic.NewDirect(eng, 1, 100, 0)
	n := New(eng, 0, fab, Config{ScomaSize: 1 << 20})
	ranges := []struct {
		name string
		base uint32
		size uint32
	}{
		{"dram", DramBase, 16 << 20},
		{"numa", NumaBase, NumaSize},
		{"scoma", ScomaBase, 1 << 20},
		{"sram", SramBase, uint32(128 << 10)},
		{"ptr", PtrBase, PtrSize},
		{"extx", ExTxBase, ExTxSize},
		{"exrx", ExRxBase, ExRxSize},
	}
	for i := range ranges {
		for j := i + 1; j < len(ranges); j++ {
			a, b := ranges[i], ranges[j]
			if a.base < b.base+b.size && b.base < a.base+a.size {
				t.Errorf("ranges %s and %s overlap", a.name, b.name)
			}
		}
	}
	_ = n
}

func TestSramLayoutDisjoint(t *testing.T) {
	// Queue buffers must not overlap each other or the shadow area.
	regions := []struct {
		name string
		base int
		size int
	}{
		{"shadow", 0, 0x200},
		{"txBasic", SramTxBasicBuf, BasicSlotBytes * BasicEntries},
		{"txExpress", SramTxExpressBuf, ctrl.ExpressSlotBytes * ExpressEntries},
		{"rxBasic", SramRxBasicBuf, BasicSlotBytes * BasicEntries},
		{"rxExpress", SramRxExpressBuf, ctrl.ExpressSlotBytes * ExpressEntries},
		{"rxNotify", SramRxNotifyBuf, BasicSlotBytes * BasicEntries},
	}
	for i := range regions {
		for j := i + 1; j < len(regions); j++ {
			a, b := regions[i], regions[j]
			if a.base < b.base+b.size && b.base < a.base+a.size {
				t.Errorf("aSRAM regions %s and %s overlap", a.name, b.name)
			}
		}
	}
	if UserASram <= SramRxNotifyBuf {
		t.Error("UserASram overlaps queue buffers")
	}
}

func TestDefaultQueuesConfigured(t *testing.T) {
	eng := sim.NewEngine()
	fab := arctic.NewDirect(eng, 4, 100, 0)
	n := New(eng, 2, fab, Config{ScomaSize: 1 << 20, NumNodes: 4})
	n.SetupDefaultQueues(4)
	if !n.Ctrl.TxQueueConfig(TxBasic).Enabled || !n.Ctrl.TxQueueConfig(TxExpress).Express {
		t.Fatal("tx queues misconfigured")
	}
	if n.Ctrl.RxQueueConfig(RxSvc).Logical != firmware.SvcLogicalQ {
		t.Fatal("svc queue logical id wrong")
	}
	if !n.Ctrl.RxQueueConfig(RxMiss).Interrupt {
		t.Fatal("miss queue must interrupt")
	}
}

func TestDmaStagingInsideASram(t *testing.T) {
	eng := sim.NewEngine()
	fab := arctic.NewDirect(eng, 1, 100, 0)
	n := New(eng, 0, fab, Config{})
	off := n.DmaStagingOff()
	if int(off)+DmaStagingLen > n.ASram.Size() {
		t.Fatal("staging beyond aSRAM")
	}
	if int(off) < UserASram {
		t.Fatal("staging overlaps queue layout")
	}
}

func TestScomaDisabled(t *testing.T) {
	eng := sim.NewEngine()
	fab := arctic.NewDirect(eng, 1, 100, 0)
	n := New(eng, 0, fab, Config{ScomaSize: 0})
	if n.Map.Scoma.Size != 0 {
		t.Fatal("scoma window present when disabled")
	}
	if n.ClsSram == nil {
		t.Fatal("cls placeholder missing")
	}
}
