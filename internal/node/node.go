// Package node assembles one StarT-Voyager node: the stock SMP half (aP
// cache, DRAM, 60X bus) plus the NIU occupying the second processor slot
// (aBIU/sBIU, CTRL, SRAMs, TxU/RxU wiring, and the sP firmware engine), with
// the standard address map and queue layout used by the default software.
package node

import (
	"fmt"

	"startvoyager/internal/arctic"
	"startvoyager/internal/bus"
	"startvoyager/internal/cache"
	"startvoyager/internal/firmware"
	"startvoyager/internal/mem"
	"startvoyager/internal/niu/biu"
	"startvoyager/internal/niu/ctrl"
	"startvoyager/internal/niu/sram"
	"startvoyager/internal/sim"
	"startvoyager/internal/stats"
)

// The standard physical address map (identical on every node).
const (
	DramBase = 0x0000_0000

	NumaBase = 0x4000_0000 // remote-memory window
	NumaSize = 0x1000_0000 // 256 MB modeled window (paper: 1 GB region)

	ScomaBase = 0x8000_0000

	ReflectBase = 0xA000_0000 // reflective-memory window

	SramBase = 0xF000_0000 // aSRAM direct map
	PtrBase  = 0xF010_0000 // pointer update/poll region
	ExTxBase = 0xF020_0000 // express transmit region
	ExRxBase = 0xF030_0000 // express receive region
	ExTxSize = 1 << 19
	PtrSize  = 4 << 10
	ExRxSize = 4 << 10
)

// Hardware queue assignments (the default software convention).
const (
	TxBasic   = 0 // aP basic transmit queue
	TxExpress = 1 // aP express transmit queue

	RxBasic     = 0  // aP basic receive queue
	RxExpress   = 1  // aP express receive queue
	RxNotify    = 2  // completion notifications (DMA, block transfer)
	RxRel       = 11 // reliably-delivered payloads (R-Basic service)
	RxRelStatus = 12 // reliable-send completion statuses
	RxSvc       = 13 // sP service queue (interrupting)
	RxMiss      = 14 // miss/overflow queue (interrupting)
)

// Logical receive queue numbers (network-visible names).
const (
	LqBasic   uint16 = 0x0001
	LqExpress uint16 = 0x0002
	LqNotify         = firmware.NotifyLogicalQ
)

// Translation table index bases for clusters of up to 64 nodes (the
// historical fixed layout): entry (base + node) routes to that node's
// corresponding queue. Larger machines scale the region stride with the node
// count — use Node.TransBasicIdx and friends, which resolve against the
// machine's actual stride, instead of these constants.
const (
	TransBasic   = 0
	TransExpress = 64
	TransSvc     = 128
	TransNotify  = 192
)

// MaxNodes is the largest buildable cluster. The Express transmit region
// encodes (queue<<12 | index) in a store address with a 12-bit index field,
// so translation indices — and therefore the node count — top out at 2048
// with room for the four-region table.
const MaxNodes = 2048

// TransStride returns the per-region translation-table stride for a machine
// of numNodes nodes: exactly 64 (matching the historical constants, so small
// configurations stay byte-identical) up to 64 nodes, and the next power of
// two >= numNodes beyond that, bounded at MaxNodes by the Express
// store-address encoding.
func TransStride(numNodes int) int {
	s := 64
	for s < numNodes {
		s <<= 1
	}
	if s > MaxNodes {
		panic(fmt.Sprintf("node: %d nodes exceed the %d-node express-addressing limit", numNodes, MaxNodes))
	}
	return s
}

// Queue geometry.
const (
	BasicSlotBytes = 96
	BasicEntries   = 16
	ExpressEntries = 32
	SvcEntries     = 64
)

// aSRAM layout.
const (
	shadowBase       = 0x0000 // 16 tx + 16 rx shadow pairs (8 bytes each)
	SramTxBasicBuf   = 0x0200
	SramTxExpressBuf = SramTxBasicBuf + BasicSlotBytes*BasicEntries
	SramRxBasicBuf   = SramTxExpressBuf + ctrl.ExpressSlotBytes*ExpressEntries
	SramRxExpressBuf = SramRxBasicBuf + BasicSlotBytes*BasicEntries
	SramRxNotifyBuf  = SramRxExpressBuf + ctrl.ExpressSlotBytes*ExpressEntries
	SramRxRelBuf     = SramRxNotifyBuf + BasicSlotBytes*BasicEntries
	SramRxRelStatBuf = SramRxRelBuf + BasicSlotBytes*BasicEntries
	// UserASram is the first aSRAM offset free for applications (TagOn
	// payloads, experiment staging).
	UserASram = SramRxRelStatBuf + BasicSlotBytes*BasicEntries

	// DmaStagingOff and DmaStagingLen place the firmware DMA staging area
	// at the top of the aSRAM.
	DmaStagingLen = 8 << 10
)

// SSramLayout is the numNodes-dependent sSRAM allocation: the translation
// table (4 regions * stride entries * 8 bytes) at the bottom, then the sP
// shadow pairs, the service and miss queue buffers, and free space. For
// clusters of up to 64 nodes this is exactly the historical fixed layout
// (table 0x0000, shadows 0x0800, service buffer 0x1000, miss buffer 0x2800).
type SSramLayout struct {
	TransTable uint32 // translation table base
	SShadow    uint32 // sP shadow-pair region base
	SvcBuf     uint32 // service queue buffer base
	MissBuf    uint32 // miss/overflow queue buffer base
	User       uint32 // first offset free for firmware extensions
}

// SSramLayoutFor computes the layout for a cluster of numNodes nodes.
func SSramLayoutFor(numNodes int) SSramLayout {
	stride := uint32(TransStride(numNodes))
	var l SSramLayout
	l.TransTable = 0
	l.SShadow = l.TransTable + 4*stride*8
	l.SvcBuf = l.SShadow + 0x800
	l.MissBuf = l.SvcBuf + BasicSlotBytes*SvcEntries
	l.User = l.MissBuf + BasicSlotBytes*SvcEntries
	return l
}

// UserSSram is the first sSRAM offset free for firmware extensions on
// clusters of up to 64 nodes (see SSramLayoutFor for larger machines).
const UserSSram = 0x2800 + BasicSlotBytes*SvcEntries

// Config holds per-node construction parameters.
type Config struct {
	Bus         bus.Config
	Cache       cache.Config
	Ctrl        ctrl.Config
	Biu         biu.Config
	Costs       firmware.Costs
	DramSize    uint32   // default 16 MB
	DramLat     sim.Time // default 60 ns
	ASramSize   int      // default 128 KB
	SSramSize   int      // default 128 KB
	ScomaSize   uint32   // S-COMA window size (0 disables S-COMA)
	ReflectSize uint32   // reflective-memory window size (0 disables)
	NumNodes    int      // cluster size (for S-COMA/NUMA layout)
}

func (c *Config) fillDefaults() {
	if c.DramSize == 0 {
		c.DramSize = 16 << 20
	}
	if c.DramLat == 0 {
		c.DramLat = 60 * sim.Nanosecond
	}
	if c.ASramSize == 0 {
		c.ASramSize = 128 << 10
	}
	if c.SSramSize == 0 {
		c.SSramSize = 128 << 10
	}
	if c.NumNodes == 0 {
		c.NumNodes = 1
	}
}

// Node is one assembled StarT-Voyager node.
type Node struct {
	ID  int
	Eng *sim.Engine

	Bus   *bus.Bus
	Dram  *mem.DRAM
	Cache *cache.Cache

	ASram   *sram.SRAM
	SSram   *sram.SRAM
	ClsSram *sram.Cls
	Ctrl    *ctrl.Ctrl
	ABIU    *biu.ABIU
	SBIU    *biu.SBIU
	FW      *firmware.Engine

	Map    biu.Map
	cfg    Config
	lay    SSramLayout
	stride int // translation-region stride for this machine's node count

	// APMeter accrues application-processor occupancy (started/stopped by
	// the core library around aP activity).
	APMeter *stats.Meter

	fabric arctic.Fabric
}

// New builds a node (queues unconfigured; see SetupDefaultQueues).
func New(eng *sim.Engine, id int, fabric arctic.Fabric, cfg Config) *Node {
	cfg.fillDefaults()
	n := &Node{ID: id, Eng: eng, cfg: cfg, fabric: fabric,
		lay: SSramLayoutFor(cfg.NumNodes), stride: TransStride(cfg.NumNodes),
		APMeter: stats.NewMeter(eng, fmt.Sprintf("aP%d", id))}

	n.Bus = bus.New(eng, fmt.Sprintf("bus%d", id), cfg.Bus)
	n.Bus.SetNode(id)
	n.Dram = mem.New(bus.Range{Base: DramBase, Size: cfg.DramSize}, cfg.DramLat)
	n.Cache = cache.New(fmt.Sprintf("l2-%d", id), n.Bus, cfg.Cache)
	n.Cache.SetNode(id)
	n.Cache.SetWritebackSink(n.Dram.Poke)

	n.ASram = sram.New(fmt.Sprintf("aSRAM%d", id), cfg.ASramSize)
	n.SSram = sram.New(fmt.Sprintf("sSRAM%d", id), cfg.SSramSize)

	n.Map = biu.Map{
		Sram:      bus.Range{Base: SramBase, Size: uint32(cfg.ASramSize)},
		Ptr:       bus.Range{Base: PtrBase, Size: PtrSize},
		ExpressTx: bus.Range{Base: ExTxBase, Size: ExTxSize},
		ExpressRx: bus.Range{Base: ExRxBase, Size: ExRxSize},
		Numa:      bus.Range{Base: NumaBase, Size: NumaSize},
		Scoma:     bus.Range{Base: ScomaBase, Size: cfg.ScomaSize},
		Reflect:   bus.Range{Base: ReflectBase, Size: cfg.ReflectSize},
	}

	ctrlCfg := cfg.Ctrl // remaining zero fields are filled by ctrl defaults
	ctrlCfg.TransTableBase = n.lay.TransTable
	ctrlCfg.TransTableEntries = 4 * n.stride
	ctrlCfg.MissQueue = RxMiss
	ctrlCfg.ScomaRange = n.Map.Scoma
	if cfg.ScomaSize > 0 {
		n.ClsSram = sram.NewCls(int(cfg.ScomaSize) / bus.LineSize)
		// Back the S-COMA window with frames at the top of DRAM.
		n.Dram.AddAlias(n.Map.Scoma, cfg.DramSize-cfg.ScomaSize)
	} else {
		n.ClsSram = sram.NewCls(1)
	}
	if cfg.ReflectSize > 0 {
		// Back the reflective window with frames below the S-COMA frames.
		n.Dram.AddAlias(n.Map.Reflect, cfg.DramSize-cfg.ScomaSize-cfg.ReflectSize)
	}
	n.Ctrl = ctrl.New(eng, id, n.ASram, n.SSram, n.ClsSram, ctrlCfg)
	n.ABIU = biu.NewABIU(eng, id, n.Bus, n.Ctrl, n.ASram, n.ClsSram, n.Map, cfg.Biu)
	n.SBIU = biu.NewSBIU(n.ABIU, n.Ctrl)
	n.FW = firmware.New(eng, id, n.SBIU, RxSvc, RxMiss, cfg.Costs)

	n.Ctrl.SetPorts(n.ABIU, &netAdapter{n: n}, n.FW)
	n.Bus.Attach(n.Dram)
	n.Bus.Attach(n.Cache)
	n.Bus.Attach(n.ABIU)
	fabric.Attach(id, &netAdapter{n: n})
	fabric.SetReadyHook(id, n.Ctrl.NetReady)
	return n
}

// netAdapter bridges CTRL's NetPort to the Arctic fabric and the fabric's
// Endpoint back into CTRL (the TxU/RxU wiring).
type netAdapter struct{ n *Node }

func (a *netAdapter) Inject(dst int, pri arctic.Priority, wire []byte, tag sim.MsgTag) {
	a.n.fabric.Inject(&arctic.Packet{
		Src: a.n.ID, Dst: dst, Priority: pri, Size: len(wire), Payload: wire,
		Trace: tag,
	})
}

func (a *netAdapter) Poke() { a.n.fabric.Poke(a.n.ID) }

func (a *netAdapter) Ready(pri arctic.Priority) bool { return a.n.fabric.InjectReady(a.n.ID, pri) }

func (a *netAdapter) TryDeliver(pkt *arctic.Packet) bool {
	return a.n.Ctrl.TryReceive(pkt.Payload.([]byte), pkt.Trace)
}

// RegisterMetrics registers every component's counters under r (one child
// per component, mirroring the trace track taxonomy).
func (n *Node) RegisterMetrics(r *stats.Registry) {
	r.Meter("aP", n.APMeter)
	n.Bus.RegisterMetrics(r.Child("bus"))
	n.Cache.RegisterMetrics(r.Child("cache"))
	n.Dram.RegisterMetrics(r.Child("mem"))
	n.Ctrl.RegisterMetrics(r.Child("ctrl"))
	n.FW.RegisterMetrics(r.Child("fw"))
}

// ScomaWindow returns the S-COMA window range.
func (n *Node) ScomaWindow() bus.Range { return n.Map.Scoma }

// DmaStagingOff returns the aSRAM offset of the DMA staging area.
func (n *Node) DmaStagingOff() uint32 { return uint32(n.cfg.ASramSize - DmaStagingLen) }

// SetupDefaultQueues programs the standard queue layout and translation
// table for a cluster of numNodes nodes, and installs the default firmware
// services (miss handler; NUMA/S-COMA/DMA when enabled).
func (n *Node) SetupDefaultQueues(numNodes int) {
	c := n.Ctrl
	// aP transmit queues.
	c.ConfigureTx(TxBasic, ctrl.TxConfig{
		Buf: n.ASram, Base: SramTxBasicBuf, EntryBytes: BasicSlotBytes, Entries: BasicEntries,
		ShadowBase: shadowBase + TxBasic*8,
		Translate:  true, AndMask: 0xFFFF, RawAllowed: false,
		AllowedDests: ^uint64(0), Enabled: true,
	})
	c.ConfigureTx(TxExpress, ctrl.TxConfig{
		Buf: n.ASram, Base: SramTxExpressBuf, EntryBytes: ctrl.ExpressSlotBytes,
		Entries: ExpressEntries, ShadowBase: shadowBase + TxExpress*8,
		Express: true, Translate: true, AndMask: 0xFFFF,
		AllowedDests: ^uint64(0), Enabled: true,
	})
	// aP receive queues.
	c.ConfigureRx(RxBasic, ctrl.RxConfig{
		Buf: n.ASram, Base: SramRxBasicBuf, EntryBytes: BasicSlotBytes, Entries: BasicEntries,
		ShadowBase: shadowBase + 0x100 + RxBasic*8,
		Logical:    LqBasic, Full: ctrl.Hold, Enabled: true,
	})
	c.ConfigureRx(RxExpress, ctrl.RxConfig{
		Buf: n.ASram, Base: SramRxExpressBuf, EntryBytes: ctrl.ExpressSlotBytes,
		Entries: ExpressEntries, ShadowBase: shadowBase + 0x100 + RxExpress*8,
		Logical: LqExpress, Express: true, Full: ctrl.Drop, Enabled: true,
	})
	c.ConfigureRx(RxNotify, ctrl.RxConfig{
		Buf: n.ASram, Base: SramRxNotifyBuf, EntryBytes: BasicSlotBytes, Entries: BasicEntries,
		ShadowBase: shadowBase + 0x100 + RxNotify*8,
		Logical:    LqNotify, Full: ctrl.Hold, Enabled: true,
	})
	c.ConfigureRx(RxRel, ctrl.RxConfig{
		Buf: n.ASram, Base: SramRxRelBuf, EntryBytes: BasicSlotBytes, Entries: BasicEntries,
		ShadowBase: shadowBase + 0x100 + RxRel*8,
		Logical:    firmware.RelLogicalQ, Full: ctrl.Hold, Enabled: true,
	})
	c.ConfigureRx(RxRelStatus, ctrl.RxConfig{
		Buf: n.ASram, Base: SramRxRelStatBuf, EntryBytes: BasicSlotBytes, Entries: BasicEntries,
		ShadowBase: shadowBase + 0x100 + RxRelStatus*8,
		Logical:    firmware.RelStatusLogicalQ, Full: ctrl.Hold, Enabled: true,
	})
	// sP queues (in sSRAM, interrupting).
	c.ConfigureRx(RxSvc, ctrl.RxConfig{
		Buf: n.SSram, Base: n.lay.SvcBuf, EntryBytes: BasicSlotBytes, Entries: SvcEntries,
		ShadowBase: n.lay.SShadow + RxSvc*8,
		Logical:    firmware.SvcLogicalQ, Interrupt: true, Full: ctrl.Hold, Enabled: true,
	})
	c.ConfigureRx(RxMiss, ctrl.RxConfig{
		Buf: n.SSram, Base: n.lay.MissBuf, EntryBytes: BasicSlotBytes, Entries: SvcEntries,
		ShadowBase: n.lay.SShadow + RxMiss*8,
		Logical:    firmware.MissLogicalQ, Interrupt: true, Full: ctrl.Hold, Enabled: true,
	})
	// Destination translation table (region bases scale with the stride; at
	// the default 64-node stride these are exactly TransBasic..TransNotify).
	for i := 0; i < numNodes; i++ {
		c.WriteTransEntry(n.TransBasicIdx(i), ctrl.TransEntry{
			PhysNode: uint16(i), LogicalQ: LqBasic, Priority: arctic.Low, Valid: true})
		c.WriteTransEntry(n.TransExpressIdx(i), ctrl.TransEntry{
			PhysNode: uint16(i), LogicalQ: LqExpress, Priority: arctic.Low, Valid: true})
		c.WriteTransEntry(n.TransSvcIdx(i), ctrl.TransEntry{
			PhysNode: uint16(i), LogicalQ: firmware.SvcLogicalQ, Priority: arctic.Low, Valid: true})
		c.WriteTransEntry(n.TransNotifyIdx(i), ctrl.TransEntry{
			PhysNode: uint16(i), LogicalQ: LqNotify, Priority: arctic.Low, Valid: true})
	}
}

// TransBasicIdx returns the translation-table index routing a Basic message
// to node dest on this machine.
//
//voyager:noalloc
func (n *Node) TransBasicIdx(dest int) int { return dest }

// TransExpressIdx returns the translation-table index routing an Express
// message to node dest on this machine.
//
//voyager:noalloc
func (n *Node) TransExpressIdx(dest int) int { return n.stride + dest }

// TransSvcIdx returns the translation-table index routing a service message
// to node dest's sP on this machine.
//
//voyager:noalloc
func (n *Node) TransSvcIdx(dest int) int { return 2*n.stride + dest }

// TransNotifyIdx returns the translation-table index routing a completion
// notification to node dest on this machine.
//
//voyager:noalloc
func (n *Node) TransNotifyIdx(dest int) int { return 3*n.stride + dest }

// TransStride returns this machine's translation-region stride.
//
//voyager:noalloc
func (n *Node) TransStride() int { return n.stride }

// SSram layout accessor for firmware extensions that need the free region.
func (n *Node) Layout() SSramLayout { return n.lay }
