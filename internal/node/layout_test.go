package node

import (
	"testing"

	"startvoyager/internal/arctic"
	"startvoyager/internal/sim"
)

// TestTransStride: stride is exactly 64 up to 64 nodes (keeping small
// machines byte-identical to the historical fixed layout), the next power
// of two above that, and panics past the express-addressing limit.
func TestTransStride(t *testing.T) {
	cases := []struct{ nodes, want int }{
		{1, 64}, {2, 64}, {4, 64}, {16, 64}, {63, 64}, {64, 64},
		{65, 128}, {128, 128}, {129, 256}, {256, 256},
		{257, 512}, {512, 512}, {1000, 1024}, {1024, 1024},
		{1025, 2048}, {2048, 2048},
	}
	for _, c := range cases {
		if got := TransStride(c.nodes); got != c.want {
			t.Errorf("TransStride(%d)=%d, want %d", c.nodes, got, c.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Errorf("TransStride(%d) did not panic", MaxNodes+1)
		}
	}()
	TransStride(MaxNodes + 1)
}

// TestSSramLayoutSmallMatchesHistorical: for <=64 nodes the computed layout
// reproduces the constants the firmware and every golden artifact were built
// against — the byte-identity guarantee for small configurations.
func TestSSramLayoutSmallMatchesHistorical(t *testing.T) {
	for _, n := range []int{2, 4, 16, 64} {
		l := SSramLayoutFor(n)
		if l.TransTable != 0 || l.SShadow != 0x800 || l.SvcBuf != 0x1000 ||
			l.MissBuf != 0x2800 || l.User != UserSSram {
			t.Errorf("SSramLayoutFor(%d)=%+v, want historical fixed layout", n, l)
		}
	}
}

// TestSSramLayoutScalesWithoutOverlap: at every supported machine size the
// regions are ordered, non-overlapping, and sized for the full translation
// table (4 regions * stride entries * 8 bytes).
func TestSSramLayoutScalesWithoutOverlap(t *testing.T) {
	for _, n := range []int{64, 65, 128, 256, 1024, MaxNodes} {
		l := SSramLayoutFor(n)
		stride := uint32(TransStride(n))
		if l.SShadow != l.TransTable+4*stride*8 {
			t.Errorf("n=%d: shadows at %#x overlap the %d-entry translation table", n, l.SShadow, 4*stride)
		}
		if !(l.TransTable < l.SShadow && l.SShadow < l.SvcBuf && l.SvcBuf < l.MissBuf && l.MissBuf < l.User) {
			t.Errorf("n=%d: regions out of order: %+v", n, l)
		}
		if l.SvcBuf-l.SShadow < 0x800 {
			t.Errorf("n=%d: shadow region squeezed to %d bytes", n, l.SvcBuf-l.SShadow)
		}
		if l.MissBuf-l.SvcBuf != BasicSlotBytes*SvcEntries || l.User-l.MissBuf != BasicSlotBytes*SvcEntries {
			t.Errorf("n=%d: queue buffers mis-sized: %+v", n, l)
		}
	}
}

// TestTransIndices: the per-destination translation indices tile the four
// regions without collision at a stride > 64.
func TestTransIndices(t *testing.T) {
	eng := sim.NewEngine()
	fab := arctic.NewDirect(eng, 200, 100, 0)
	n := New(eng, 0, fab, Config{NumNodes: 200}) // stride 256
	if n.TransStride() != 256 {
		t.Fatalf("stride %d, want 256", n.TransStride())
	}
	seen := map[int]string{}
	for dest := 0; dest < 200; dest++ {
		for _, e := range []struct {
			region string
			idx    int
		}{
			{"basic", n.TransBasicIdx(dest)},
			{"express", n.TransExpressIdx(dest)},
			{"svc", n.TransSvcIdx(dest)},
			{"notify", n.TransNotifyIdx(dest)},
		} {
			if prev, dup := seen[e.idx]; dup {
				t.Fatalf("index %d used by both %s and %s", e.idx, prev, e.region)
			}
			seen[e.idx] = e.region
			if e.idx < 0 || e.idx >= 4*256 {
				t.Fatalf("%s index %d outside the %d-entry table", e.region, e.idx, 4*256)
			}
		}
	}
}
