package core

import (
	"bytes"
	"fmt"
	"testing"

	"startvoyager/internal/cluster"
	"startvoyager/internal/fault"
	"startvoyager/internal/sim"
)

// Fault-plane scenarios: the reliable-delivery service (R-Basic) against the
// deterministic fault injector. Every test here uses a fixed fault seed, so
// outcomes — including "retransmits happened" and "corruption was seen" —
// are reproducible facts of the schedule, not flaky probabilities.

func faultedConfig(nodes int, plan *fault.Plan) cluster.Config {
	cfg := cluster.DefaultConfig(nodes)
	cfg.Faults = plan
	return cfg
}

func relStatTotals(m *Machine) (retrans, dups, fails uint64) {
	for _, r := range m.Rels {
		st := r.Stats()
		retrans += st.Retransmits
		dups += st.DupSuppressed
		fails += st.Failures
	}
	return retrans, dups, fails
}

// TestReliableExactlyOnceUnderLossAndCorruption: three senders push numbered,
// integrity-checked payloads at one receiver through a network that drops 5%
// and corrupts 5% of low-lane frames. Every message must arrive exactly once
// with its payload intact, the retransmit machinery must actually have fired,
// and at least one corrupted frame must have hit the CRC (proving the storm
// exercised the detection path, not just the drop path).
func TestReliableExactlyOnceUnderLossAndCorruption(t *testing.T) {
	plan := &fault.Plan{Seed: 1}
	plan.Lanes[fault.LaneLow] = fault.LaneProbs{Drop: 0.05, Corrupt: 0.05}
	m := NewMachineConfig(faultedConfig(4, plan))

	const perSender = 25
	const senders = 3
	pattern := func(src, seq, i int) byte { return byte(src*31 + seq*7 + i) }
	for s := 0; s < senders; s++ {
		s := s
		m.Go(s, "sender", func(p *sim.Proc, a *API) {
			for seq := 0; seq < perSender; seq++ {
				pl := make([]byte, 16)
				pl[0], pl[1] = byte(s), byte(seq)
				for i := 2; i < len(pl); i++ {
					pl[i] = pattern(s, seq, i)
				}
				if err := a.SendReliable(p, 3, pl); err != nil {
					t.Errorf("sender %d seq %d: %v", s, seq, err)
					return
				}
			}
		})
	}
	seen := make(map[[2]byte]int)
	m.Go(3, "receiver", func(p *sim.Proc, a *API) {
		for n := 0; n < senders*perSender; n++ {
			src, pl, err := a.RecvReliableTimeout(p, 20*sim.Millisecond)
			if err != nil {
				t.Errorf("receiver starved after %d messages: %v", n, err)
				return
			}
			if len(pl) != 16 || int(pl[0]) != src {
				t.Errorf("mangled delivery from %d: %v", src, pl)
				return
			}
			for i := 2; i < len(pl); i++ {
				if pl[i] != pattern(src, int(pl[1]), i) {
					t.Errorf("payload integrity failure from %d seq %d at byte %d", src, pl[1], i)
					return
				}
			}
			seen[[2]byte{pl[0], pl[1]}]++
		}
	})
	m.Run()

	if len(seen) != senders*perSender {
		t.Fatalf("received %d distinct messages, want %d", len(seen), senders*perSender)
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("message %v delivered %d times", k, n)
		}
	}
	retrans, _, fails := relStatTotals(m)
	if retrans == 0 {
		t.Error("5% loss produced zero retransmits; the fault plane is not engaged")
	}
	if fails != 0 {
		t.Errorf("%d sends declared failed under recoverable loss", fails)
	}
	fst := m.Faults.Stats()
	if fst.InjectedDrops == 0 || fst.Corrupted == 0 {
		t.Errorf("fault counters flat under a drop+corrupt plan: %+v", fst)
	}
	garbage := uint64(0)
	for _, n := range m.Nodes {
		garbage += n.Ctrl.Stats().RxGarbage
	}
	if garbage == 0 {
		t.Error("no corrupted frame reached the CRC check; corruption path untested")
	}
}

// TestReliableDuplicateSuppression: a network that duplicates half of all
// low-lane packets must not deliver anything twice — the receiver-side
// sequence check suppresses the copies.
func TestReliableDuplicateSuppression(t *testing.T) {
	plan := &fault.Plan{Seed: 99}
	plan.Lanes[fault.LaneLow] = fault.LaneProbs{Duplicate: 0.5}
	m := NewMachineConfig(faultedConfig(2, plan))

	const msgs = 20
	m.Go(0, "sender", func(p *sim.Proc, a *API) {
		for i := 0; i < msgs; i++ {
			if err := a.SendReliable(p, 1, []byte{byte(i)}); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	})
	var got []byte
	m.Go(1, "receiver", func(p *sim.Proc, a *API) {
		for len(got) < msgs {
			_, pl, err := a.RecvReliableTimeout(p, 10*sim.Millisecond)
			if err != nil {
				t.Errorf("receiver starved at %d: %v", len(got), err)
				return
			}
			got = append(got, pl[0])
		}
		// Nothing more may trickle in after the last expected message.
		if _, pl, err := a.RecvReliableTimeout(p, m.RelBound()); err == nil {
			t.Errorf("extra delivery after %d messages: %v", msgs, pl)
		}
	})
	m.Run()

	for i, b := range got {
		if int(b) != i {
			t.Fatalf("deliveries out of order or duplicated: %v", got)
		}
	}
	_, dups, _ := relStatTotals(m)
	if dups == 0 {
		t.Error("50% duplication produced zero suppressed duplicates")
	}
	if m.Faults.Stats().Duplicated == 0 {
		t.Error("injector recorded no duplications")
	}
}

// TestReliableTransferSpansOutageRecovers: the 0->1 link goes completely dark
// for 300us in the middle of a transfer. The retransmit ladder (30us RTO,
// doubling) must ride out the outage and complete every send with no failures.
func TestReliableTransferSpansOutageRecovers(t *testing.T) {
	plan := &fault.Plan{Seed: 1, Outages: []fault.Outage{
		{Src: 0, Dst: 1, From: 5 * sim.Microsecond, To: 300 * sim.Microsecond},
	}}
	m := NewMachineConfig(faultedConfig(2, plan))

	const msgs = 5
	m.Go(0, "sender", func(p *sim.Proc, a *API) {
		for i := 0; i < msgs; i++ {
			if err := a.SendReliable(p, 1, []byte{0xA0 + byte(i)}); err != nil {
				t.Errorf("send %d failed across outage: %v", i, err)
				return
			}
		}
	})
	var got []byte
	m.Go(1, "receiver", func(p *sim.Proc, a *API) {
		for len(got) < msgs {
			_, pl, err := a.RecvReliableTimeout(p, 10*sim.Millisecond)
			if err != nil {
				t.Errorf("receiver starved at %d: %v", len(got), err)
				return
			}
			got = append(got, pl[0])
		}
	})
	m.Run()

	if len(got) != msgs {
		t.Fatalf("delivered %d of %d across the outage", len(got), msgs)
	}
	retrans, _, fails := relStatTotals(m)
	if retrans == 0 {
		t.Error("outage produced zero retransmits; window did not interrupt the transfer")
	}
	if fails != 0 {
		t.Errorf("%d failures across a recoverable outage", fails)
	}
	if m.Faults.Stats().OutageDrops == 0 {
		t.Error("injector recorded no outage drops")
	}
}

// TestDmaDuringOutageDegradesGracefully: unreliable traffic gets no such
// rescue — a DMA whose transfer window sits entirely inside a link outage
// loses its data, and the consumer's bounded wait surfaces a typed timeout
// instead of hanging the simulation.
func TestDmaDuringOutageDegradesGracefully(t *testing.T) {
	plan := &fault.Plan{Seed: 1, Outages: []fault.Outage{
		{Src: 0, Dst: 1, From: 0, To: 50 * sim.Millisecond},
	}}
	m := NewMachineConfig(faultedConfig(2, plan))
	m.Go(0, "pusher", func(p *sim.Proc, a *API) {
		for i := 0; i < 256; i++ {
			a.Poke(1<<20+uint32(i), []byte{byte(i)})
		}
		a.DmaPush(p, 1, 1<<20, 2<<20, 256, 0xD1)
	})
	var err error
	done := false
	m.Go(1, "consumer", func(p *sim.Proc, a *API) {
		_, _, err = a.RecvNotifyTimeout(p, 2*sim.Millisecond)
		done = true
	})
	m.RunFor(10 * sim.Millisecond)
	if !done {
		t.Fatal("consumer still blocked; bounded wait did not fire")
	}
	if !IsTimeout(err) {
		t.Fatalf("expected *TimeoutError from a DMA lost to the outage, got %v", err)
	}
}

// TestNodeDeathBoundedError: a peer dies mid-run. An in-flight-or-later
// reliable send must fail with *DeliveryError within the machine's stated
// bound, and subsequent sends to the dead peer fail fast (no second ladder).
func TestNodeDeathBoundedError(t *testing.T) {
	plan := &fault.Plan{Seed: 1, Deaths: []fault.NodeDeath{
		{Node: 1, At: 10 * sim.Microsecond},
	}}
	m := NewMachineConfig(faultedConfig(2, plan))
	bound := m.RelBound()
	if bound <= 0 {
		t.Fatal("machine reports no reliable-send bound")
	}

	var firstErr, secondErr error
	var firstTook, secondTook sim.Time
	m.Go(0, "sender", func(p *sim.Proc, a *API) {
		p.Delay(20 * sim.Microsecond) // peer is already dead
		start := p.Now()
		firstErr = a.SendReliable(p, 1, []byte{1})
		firstTook = p.Now() - start

		start = p.Now()
		secondErr = a.SendReliable(p, 1, []byte{2})
		secondTook = p.Now() - start
	})
	m.Run()

	for i, err := range []error{firstErr, secondErr} {
		if _, ok := err.(*DeliveryError); !ok {
			t.Fatalf("send %d to dead peer: got %v, want *DeliveryError", i+1, err)
		}
	}
	if firstTook > bound {
		t.Errorf("first failing send took %v, exceeding the stated bound %v", firstTook, bound)
	}
	// The service remembers the dead peer: no second retry ladder.
	if secondTook > bound/4 {
		t.Errorf("second send to a known-dead peer took %v; expected a fast failure", secondTook)
	}
	if _, _, fails := relStatTotals(m); fails == 0 {
		t.Error("no failures counted for sends to a dead peer")
	}
	if m.Faults.Stats().DeathDrops == 0 {
		t.Error("injector recorded no death drops")
	}
}

// faultedExport runs a fixed reliable workload under a lossy plan with the
// given fault seed and renders the Perfetto trace and metrics dump to bytes.
func faultedExport(t *testing.T, seed uint64) ([]byte, []byte) {
	t.Helper()
	plan := &fault.Plan{Seed: seed}
	plan.SetAllLanes(fault.LaneProbs{Drop: 0.05, Corrupt: 0.02, Duplicate: 0.05,
		DelayProb: 0.2, DelayMax: 2 * sim.Microsecond})
	m := NewMachineConfig(faultedConfig(4, plan))
	tbuf := m.Trace(1 << 18)

	for s := 0; s < 3; s++ {
		s := s
		m.Go(s, "sender", func(p *sim.Proc, a *API) {
			for i := 0; i < 10; i++ {
				if err := a.SendReliable(p, 3, []byte{byte(s), byte(i)}); err != nil {
					t.Errorf("seed %d sender %d: %v", seed, s, err)
					return
				}
			}
		})
	}
	m.Go(3, "receiver", func(p *sim.Proc, a *API) {
		for n := 0; n < 30; n++ {
			if _, _, err := a.RecvReliableTimeout(p, 20*sim.Millisecond); err != nil {
				t.Errorf("seed %d receiver: %v", seed, err)
				return
			}
		}
	})
	m.Run()

	var traceOut, metricsOut bytes.Buffer
	if err := tbuf.WritePerfetto(&traceOut); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}
	if err := m.Metrics().WriteJSON(&metricsOut, m.Eng.Now()); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return traceOut.Bytes(), metricsOut.Bytes()
}

// TestFaultedRunDeterministic: the determinism contract extends through the
// fault plane. Two runs with the same fault seed are byte-identical in both
// exports; changing only the fault seed changes the trace (so the comparison
// has teeth).
func TestFaultedRunDeterministic(t *testing.T) {
	trace1, metrics1 := faultedExport(t, 42)
	trace2, metrics2 := faultedExport(t, 42)
	if !bytes.Equal(trace1, trace2) {
		t.Error("Perfetto traces differ between same-fault-seed runs")
	}
	if !bytes.Equal(metrics1, metrics2) {
		t.Error("metrics dumps differ between same-fault-seed runs")
	}
	trace3, _ := faultedExport(t, 43)
	if bytes.Equal(trace1, trace3) {
		t.Error("Perfetto trace identical across different fault seeds")
	}
}

// TestReliableConcurrentSenders: several procs on one node issue reliable
// sends concurrently; the shared status queue must route each completion to
// its waiter (the stash path) without loss or cross-talk.
func TestReliableConcurrentSenders(t *testing.T) {
	plan := &fault.Plan{Seed: 7}
	plan.Lanes[fault.LaneLow] = fault.LaneProbs{Drop: 0.05}
	m := NewMachineConfig(faultedConfig(2, plan))

	const procs = 4
	const each = 5
	errs := make([]error, procs)
	for w := 0; w < procs; w++ {
		w := w
		m.Go(0, fmt.Sprintf("w%d", w), func(p *sim.Proc, a *API) {
			for i := 0; i < each; i++ {
				if err := a.SendReliable(p, 1, []byte{byte(w), byte(i)}); err != nil {
					errs[w] = err
					return
				}
			}
		})
	}
	seen := make(map[[2]byte]int)
	m.Go(1, "receiver", func(p *sim.Proc, a *API) {
		for n := 0; n < procs*each; n++ {
			_, pl, err := a.RecvReliableTimeout(p, 10*sim.Millisecond)
			if err != nil {
				t.Errorf("receiver starved at %d: %v", n, err)
				return
			}
			seen[[2]byte{pl[0], pl[1]}]++
		}
	})
	m.Run()

	for w, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", w, err)
		}
	}
	if len(seen) != procs*each {
		t.Fatalf("received %d distinct messages, want %d", len(seen), procs*each)
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("message %v delivered %d times", k, n)
		}
	}
}
