package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"startvoyager/internal/arctic"
	"startvoyager/internal/bus"
	"startvoyager/internal/niu/ctrl"
	"startvoyager/internal/node"
	"startvoyager/internal/sim"
)

// Channels are user-allocated protected message endpoints: each gets its own
// hardware transmit and receive queue, its own aSRAM buffers, translation
// entries, and a destination permission mask. Different communication
// abstractions (and different jobs) co-exist on the NIU without being able
// to interfere — the protection story of the paper's core NIU layer. A send
// to a destination outside the permission mask shuts the queue down and
// interrupts the firmware; the offender gets an error, everyone else keeps
// running.

// ErrChannelShutdown reports a send on a queue disabled by protection.
var ErrChannelShutdown = errors.New("core: channel shut down by protection")

// ChannelEntries is each channel queue's depth.
const ChannelEntries = 8

// channel queue pools (hardware queues not used by the default layout; rx 11
// and 12 now belong to the reliable-delivery queues).
const (
	chanFirstTxQ = 2
	chanLastTxQ  = 7
	chanFirstRxQ = 3
	chanLastRxQ  = 10
)

// chanLogical returns the network-visible logical queue id of channel cid
// (identical on every node, so channels pair by id).
func chanLogical(cid int) uint16 { return 0x0200 + uint16(cid) }

// Channel is one protected endpoint.
type Channel struct {
	api      *API
	cid      int
	txq, rxq int
	bufTx    uint32 // aSRAM offsets
	bufRx    uint32
	rxCons   uint32
	txProd   uint32
	// virts is keyed lookups only — never ranged — so its iteration order
	// cannot leak into scheduling (checked by the nomaporder analyzer).
	virts map[int]int // destination node -> translation index
}

// OpenChannel allocates a protected channel with id cid (pair channels by
// opening the same id on the peer nodes). The channel may only send to the
// nodes in allowedDests; anything else trips the protection hardware.
func (a *API) OpenChannel(cid int, allowedDests []int) *Channel {
	if a.nextTxQ == 0 {
		a.nextTxQ, a.nextRxQ = chanFirstTxQ, chanFirstRxQ
		a.sramArena = uint32(a.n.ASram.Size()) - uint32(node.DmaStagingLen) - 32<<10
	}
	if a.nextTxQ > chanLastTxQ || a.nextRxQ > chanLastRxQ {
		panic("core: out of channel hardware queues")
	}
	ch := &Channel{api: a, cid: cid, txq: a.nextTxQ, rxq: a.nextRxQ,
		virts: make(map[int]int)}
	a.nextTxQ++
	a.nextRxQ++

	ch.bufTx = a.sramArena
	a.sramArena += uint32(node.BasicSlotBytes * ChannelEntries)
	ch.bufRx = a.sramArena
	a.sramArena += uint32(node.BasicSlotBytes * ChannelEntries)
	shadow := a.sramArena
	a.sramArena += 16

	var mask uint64
	for _, d := range allowedDests {
		mask |= 1 << (uint(d) % 64)
	}
	a.n.Ctrl.ConfigureTx(ch.txq, ctrl.TxConfig{
		Buf: a.n.ASram, Base: ch.bufTx, EntryBytes: node.BasicSlotBytes,
		Entries: ChannelEntries, ShadowBase: shadow,
		Translate: true, AndMask: 0xFFFF,
		AllowedDests: mask, Enabled: true,
	})
	a.n.Ctrl.ConfigureRx(ch.rxq, ctrl.RxConfig{
		Buf: a.n.ASram, Base: ch.bufRx, EntryBytes: node.BasicSlotBytes,
		Entries: ChannelEntries, ShadowBase: shadow + 8,
		Logical: chanLogical(cid), Full: ctrl.Hold, Enabled: true,
	})
	return ch
}

// virtFor returns (allocating if needed) the translation index routing to
// dest's copy of this channel.
func (ch *Channel) virtFor(dest int) int {
	if v, ok := ch.virts[dest]; ok {
		return v
	}
	a := ch.api
	if a.nextVirt == 0 {
		a.nextVirt = TransUser
	}
	if a.nextVirt > 255 {
		panic("core: out of translation entries for channels")
	}
	v := a.nextVirt
	a.nextVirt++
	a.n.Ctrl.WriteTransEntry(v, ctrl.TransEntry{
		PhysNode: uint16(dest), LogicalQ: chanLogical(ch.cid),
		Priority: arctic.Low, Valid: true,
	})
	ch.virts[dest] = v
	return v
}

// Send delivers payload to dest's paired channel. It returns
// ErrChannelShutdown if this channel's transmit queue has been disabled by
// a protection violation (including one this call provokes).
func (ch *Channel) Send(p *sim.Proc, dest int, payload []byte) error {
	if len(payload) > MaxBasicPayload {
		panic(fmt.Sprintf("core: payload %d exceeds Basic limit", len(payload)))
	}
	a := ch.api
	defer a.busy("Channel.Send")()
	virt := ch.virtFor(dest)

	// Wait for queue space, aborting if protection trips.
	shutdown := false
	a.pollWait(p, "Channel.Send", noDeadline, func() bool {
		if a.n.Ctrl.TxShutdown(ch.txq) {
			shutdown = true
			return true
		}
		_, consumer := a.ptrLoad(p, ch.txq, false)
		return ch.txProd-consumer < ChannelEntries
	})
	if shutdown {
		return ErrChannelShutdown
	}
	slot := make([]byte, ctrl.SlotHeaderBytes+len(payload))
	binary.BigEndian.PutUint16(slot[0:], uint16(virt))
	slot[3] = byte(len(payload))
	copy(slot[8:], payload)
	base := node.SramBase + ctrl.SlotOffset(ch.bufTx, node.BasicSlotBytes,
		ChannelEntries, ch.txProd)
	a.n.Cache.Store(p, base, slot)
	for off := uint32(0); off < uint32(len(slot)); off += bus.LineSize {
		a.n.Cache.Flush(p, base+off)
	}
	ch.txProd++
	a.ptrStore(p, ch.txq, false, ch.txProd)
	// Let the launch (and any violation) resolve before reporting success:
	// poll until the consumer catches up or the queue is shut down.
	a.pollWait(p, "Channel.Send", noDeadline, func() bool {
		if a.n.Ctrl.TxShutdown(ch.txq) {
			shutdown = true
			return true
		}
		_, consumer := a.ptrLoad(p, ch.txq, false)
		return consumer == ch.txProd
	})
	if shutdown {
		return ErrChannelShutdown
	}
	return nil
}

// TryRecv polls this channel once.
func (ch *Channel) TryRecv(p *sim.Proc) (src int, payload []byte, ok bool) {
	a := ch.api
	defer a.busy("Channel.TryRecv")()
	producer, _ := a.ptrLoad(p, ch.rxq, true)
	if producer == ch.rxCons {
		return 0, nil, false
	}
	base := node.SramBase + ctrl.SlotOffset(ch.bufRx, node.BasicSlotBytes,
		ChannelEntries, ch.rxCons)
	var hdr [8]byte
	a.n.Cache.Flush(p, base)
	a.n.Cache.Load(p, base, hdr[:])
	n := int(binary.BigEndian.Uint16(hdr[4:]))
	payload = make([]byte, n)
	if n > 0 {
		for off := uint32(bus.LineSize); off < uint32(8+n); off += bus.LineSize {
			a.n.Cache.Flush(p, base+off)
		}
		a.n.Cache.Load(p, base+8, payload)
	}
	ch.rxCons++
	a.ptrStore(p, ch.rxq, true, ch.rxCons)
	return int(binary.BigEndian.Uint16(hdr[0:])), payload, true
}

// Recv blocks until a message arrives on this channel.
func (ch *Channel) Recv(p *sim.Proc) (src int, payload []byte) {
	src, payload, _ = ch.recvT(p, noDeadline)
	return src, payload
}

// RecvTimeout is Recv with a bound: after timeout of simulated time with no
// message it returns a *TimeoutError.
func (ch *Channel) RecvTimeout(p *sim.Proc, timeout sim.Time) (src int, payload []byte, err error) {
	return ch.recvT(p, timeout)
}

func (ch *Channel) recvT(p *sim.Proc, timeout sim.Time) (src int, payload []byte, err error) {
	err = ch.api.pollWait(p, "Channel.Recv", timeout, func() bool {
		s, pl, ok := ch.TryRecv(p)
		if ok {
			src, payload = s, pl
		}
		return ok
	})
	return src, payload, err
}

// Shutdown reports whether protection has disabled this channel.
func (ch *Channel) Shutdown() bool { return ch.api.n.Ctrl.TxShutdown(ch.txq) }

// Reenable clears a protection shutdown (the privileged recovery an OS or
// firmware performs after handling the violation). The offending message is
// still at the head of the queue and will be retried.
func (ch *Channel) Reenable() { ch.api.n.Ctrl.SetTxEnabled(ch.txq, true) }
