package core

import (
	"encoding/binary"
	"fmt"

	"startvoyager/internal/arctic"
	"startvoyager/internal/cluster"
	"startvoyager/internal/firmware"
	"startvoyager/internal/niu/ctrl"
	"startvoyager/internal/sim"
)

// Support for the large receive-queue namespace: messages addressed to a
// logical queue that is not resident in the NIU's 16 hardware queues divert
// to the miss/overflow queue, where firmware writes them to a DRAM ring —
// "selectively caching queues enables the NIU to support a large number of
// logical destinations efficiently". The aP reads that ring with ordinary
// cached loads; bus snooping keeps the polls coherent with the NIU's writes.

// TransUser is the first translation-table index available for
// application-defined virtual destinations.
const TransUser = 224

// MapVirtualDest programs translation entry virt to deliver to destNode's
// logical queue logicalQ (setup-time configuration, as the OS would do).
func (a *API) MapVirtualDest(virt int, destNode int, logicalQ uint16) {
	if virt < TransUser || virt > 255 {
		panic(fmt.Sprintf("core: user virtual destination %d outside [%d,255]", virt, TransUser))
	}
	a.n.Ctrl.WriteTransEntry(virt, ctrl.TransEntry{
		PhysNode: uint16(destNode), LogicalQ: logicalQ,
		Priority: arctic.Low, Valid: true,
	})
}

// SendVirtual sends a Basic-queue message to a previously mapped virtual
// destination (which may name a non-resident logical queue).
func (a *API) SendVirtual(p *sim.Proc, virt int, payload []byte) {
	a.sendSlot(p, "SendVirtual", virt, 0, payload, 0, 0)
}

// TryRecvOverflow polls the DRAM overflow ring for one message delivered to
// a non-resident logical queue.
func (a *API) TryRecvOverflow(p *sim.Proc) (src int, logicalQ uint16, payload []byte, ok bool) {
	defer a.busy("TryRecvOverflow")()
	var prod [8]byte
	a.n.Cache.Load(p, cluster.MissRingBase, prod[:])
	producer := uint32(binary.BigEndian.Uint64(prod[:]))
	if producer == a.overflowCons {
		return 0, 0, nil, false
	}
	addr := cluster.MissRingBase + firmware.RingHeaderBytes +
		(a.overflowCons%cluster.MissRingEntries)*firmware.RingSlotBytes
	slot := make([]byte, firmware.RingSlotBytes)
	a.n.Cache.Load(p, addr, slot)
	n := int(binary.BigEndian.Uint16(slot[4:]))
	src = int(binary.BigEndian.Uint16(slot[0:]))
	logicalQ = binary.BigEndian.Uint16(slot[2:])
	payload = append([]byte(nil), slot[8:8+n]...)
	a.overflowCons++
	var cons [8]byte
	binary.BigEndian.PutUint64(cons[:], uint64(a.overflowCons))
	// Publish the consumer counter; the firmware's uncached read will pull
	// it from the cache by intervention.
	a.n.Cache.Store(p, cluster.MissRingBase+8, cons[:])
	return src, logicalQ, payload, true
}

// RecvOverflow blocks until a non-resident-queue message arrives.
func (a *API) RecvOverflow(p *sim.Proc) (src int, logicalQ uint16, payload []byte) {
	src, logicalQ, payload, _ = a.recvOverflowT(p, noDeadline)
	return src, logicalQ, payload
}

// RecvOverflowTimeout is RecvOverflow with a bound: after timeout of
// simulated time with no message it returns a *TimeoutError.
func (a *API) RecvOverflowTimeout(p *sim.Proc, timeout sim.Time) (src int, logicalQ uint16, payload []byte, err error) {
	return a.recvOverflowT(p, timeout)
}

func (a *API) recvOverflowT(p *sim.Proc, timeout sim.Time) (src int, logicalQ uint16, payload []byte, err error) {
	err = a.pollWait(p, "RecvOverflow", timeout, func() bool {
		s, lq, pl, ok := a.TryRecvOverflow(p)
		if ok {
			src, logicalQ, payload = s, lq, pl
		}
		return ok
	})
	return src, logicalQ, payload, err
}
