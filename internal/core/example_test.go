package core_test

import (
	"fmt"

	"startvoyager/internal/core"
	"startvoyager/internal/firmware"
	"startvoyager/internal/sim"
)

// ExampleMachine demonstrates the minimal message-passing program: two
// nodes, one Basic message.
func ExampleMachine() {
	m := core.NewMachine(2)
	m.Go(0, "sender", func(p *sim.Proc, a *core.API) {
		a.SendBasic(p, 1, []byte("hello"))
	})
	m.Go(1, "receiver", func(p *sim.Proc, a *core.API) {
		src, payload := a.RecvBasic(p)
		fmt.Printf("node 1 received %q from node %d\n", payload, src)
	})
	m.Run()
	// Output: node 1 received "hello" from node 0
}

// ExampleAPI_SendExpress shows the five-byte express path: one uncached
// store to send, one uncached load to receive.
func ExampleAPI_SendExpress() {
	m := core.NewMachine(2)
	m.Go(0, "s", func(p *sim.Proc, a *core.API) {
		a.SendExpress(p, 1, []byte{1, 2, 3, 4, 5})
	})
	m.Go(1, "r", func(p *sim.Proc, a *core.API) {
		_, payload := a.RecvExpress(p)
		fmt.Println(payload)
	})
	m.Run()
	// Output: [1 2 3 4 5]
}

// ExampleAPI_DmaPush moves a page of DRAM between nodes using the firmware
// DMA engine and the hardware block units.
func ExampleAPI_DmaPush() {
	m := core.NewMachine(2)
	m.API(0).Poke(0x10_0000, []byte("bulk data"))
	m.Go(0, "s", func(p *sim.Proc, a *core.API) {
		a.DmaPush(p, 1, 0x10_0000, 0x20_0000, 4096, 7)
	})
	m.Go(1, "r", func(p *sim.Proc, a *core.API) {
		a.RecvNotify(p)
		buf := make([]byte, 9)
		a.Peek(0x20_0000, buf)
		fmt.Printf("%s\n", buf)
	})
	m.Run()
	// Output: bulk data
}

// ExampleAPI_ScomaStore shares memory coherently between nodes through the
// S-COMA window.
func ExampleAPI_ScomaStore() {
	m := core.NewMachine(2)
	m.Go(0, "writer", func(p *sim.Proc, a *core.API) {
		a.ScomaStore(p, 0, []byte{42})
		a.SendBasic(p, 1, []byte("ready"))
	})
	m.Go(1, "reader", func(p *sim.Proc, a *core.API) {
		a.RecvBasic(p)
		var b [1]byte
		a.ScomaLoad(p, 0, b[:])
		fmt.Println(b[0])
	})
	m.Run()
	// Output: 42
}

// ExampleAPI_Dma_pull shows a remote read: the data lives on the peer and
// is pushed back by its service processor.
func ExampleAPI_Dma_pull() {
	m := core.NewMachine(2)
	m.API(1).Poke(0x30_0000, []byte("remote!!"))
	m.Go(0, "puller", func(p *sim.Proc, a *core.API) {
		a.Dma(p, firmware.DmaRequest{Pull: true, PeerNode: 1,
			SrcAddr: 0x30_0000, DstAddr: 0x40_0000, Len: 32, Tag: 1})
		a.RecvNotify(p)
		buf := make([]byte, 8)
		a.Peek(0x40_0000, buf)
		fmt.Printf("%s\n", buf)
	})
	m.Run()
	// Output: remote!!
}
