package core

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"startvoyager/internal/cluster"
	"startvoyager/internal/memcheck"
	"startvoyager/internal/sim"
)

// TestScomaLinearizability tortures the S-COMA directory protocol with
// unsynchronized concurrent reads and writes to one line from every node
// and validates the observed history against the atomic-register
// consistency conditions (internal/memcheck).
func TestScomaLinearizability(t *testing.T) {
	for _, migratory := range []bool{false, true} {
		for seed := int64(1); seed <= 4; seed++ {
			m := NewMachine(4)
			if migratory {
				// Rebuild with the protocol variant.
				cfg := cluster.DefaultConfig(4)
				cfg.ScomaMigratory = true
				m = NewMachineConfig(cfg)
			}
			var h memcheck.History
			for id := 0; id < 4; id++ {
				id := id
				rng := rand.New(rand.NewSource(seed*100 + int64(id)))
				m.Go(id, "torture", func(p *sim.Proc, a *API) {
					for op := 0; op < 12; op++ {
						a.Compute(p, sim.Time(rng.Intn(5000)))
						if rng.Intn(2) == 0 && id != 3 { // node 3: pure reader
							val := uint64(id+1)<<32 | uint64(op+1)
							var b [8]byte
							binary.BigEndian.PutUint64(b[:], val)
							start := p.Now()
							a.ScomaStore(p, 0, b[:])
							h.AddWrite(id, val, start, p.Now())
						} else {
							var b [8]byte
							start := p.Now()
							a.ScomaLoad(p, 0, b[:])
							h.AddRead(id, binary.BigEndian.Uint64(b[:]), start, p.Now())
						}
					}
				})
			}
			m.Run()
			if err := h.Check(0); err != nil {
				t.Fatalf("migratory=%v seed=%d: %v (history of %d ops)",
					migratory, seed, err, h.Len())
			}
		}
	}
}

// TestNumaLinearizability applies the same checker to the NUMA window
// (uncached remote access through firmware).
func TestNumaLinearizability(t *testing.T) {
	m := NewMachine(3)
	var h memcheck.History
	// Offset homed on node 0.
	for id := 0; id < 3; id++ {
		id := id
		rng := rand.New(rand.NewSource(int64(id) + 9))
		m.Go(id, "torture", func(p *sim.Proc, a *API) {
			for op := 0; op < 10; op++ {
				a.Compute(p, sim.Time(rng.Intn(4000)))
				if rng.Intn(2) == 0 {
					val := uint64(id+1)<<32 | uint64(op+1)
					var b [8]byte
					binary.BigEndian.PutUint64(b[:], val)
					start := p.Now()
					a.NumaStore(p, 0x40, b[:])
					h.AddWrite(id, val, start, p.Now())
				} else {
					var b [8]byte
					start := p.Now()
					a.NumaLoad(p, 0x40, b[:])
					h.AddRead(id, binary.BigEndian.Uint64(b[:]), start, p.Now())
				}
			}
		})
	}
	m.Run()
	if err := h.Check(0); err != nil {
		t.Fatalf("%v (history of %d ops)", err, h.Len())
	}
}
