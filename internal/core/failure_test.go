package core

import (
	"testing"

	"startvoyager/internal/cluster"
	"startvoyager/internal/niu/ctrl"
	"startvoyager/internal/node"
	"startvoyager/internal/sim"
)

// Failure injection: the paper's Hold policy "can lead to deadlocking the
// network". These tests provoke the documented failure modes and check the
// system degrades the way the design says it should.

func TestHoldBackpressureStallsSender(t *testing.T) {
	// A receiver that never drains: the rx queue fills, Hold stalls the
	// network lane, the sender's tx queue fills, and the sender blocks in
	// SendBasic polling for space. Nothing is lost, nothing crashes.
	m := NewMachine(2)
	sent := 0
	m.Go(0, "flooder", func(p *sim.Proc, a *API) {
		for i := 0; i < 100; i++ {
			a.SendBasic(p, 1, []byte{byte(i)})
			sent++
		}
	})
	// Bounded run: the flood wedges, time keeps advancing on retries.
	m.RunFor(3 * sim.Millisecond)
	if sent >= 100 {
		t.Fatalf("sender finished (%d) despite a dead receiver", sent)
	}
	st := m.Nodes[1].Ctrl.Stats()
	if st.RxHolds == 0 {
		t.Fatal("no Hold refusals recorded")
	}
	if st.RxDrops != 0 {
		t.Fatalf("%d messages dropped under Hold policy", st.RxDrops)
	}
	// Recovery: a late receiver drains everything; the sender completes.
	got := 0
	m.Go(1, "late", func(p *sim.Proc, a *API) {
		for got < 100 {
			if _, _, ok := a.TryRecvBasic(p); ok {
				got++
			}
		}
	})
	m.Run()
	if sent != 100 || got != 100 {
		t.Fatalf("after recovery: sent=%d got=%d", sent, got)
	}
}

func TestHighLaneSurvivesWedgedLowLane(t *testing.T) {
	// With the Basic flood wedged (receiver dead to Basic), express
	// messages on the high lane must still get through — the network's
	// deadlock-avoidance property end to end.
	m := NewMachine(2)
	// Route this machine's express traffic on the high lane.
	m.Nodes[0].Ctrl.WriteTransEntry(node.TransExpress+1, func() ctrl.TransEntry {
		e := ctrl.TransEntry{PhysNode: 1, LogicalQ: node.LqExpress, Valid: true}
		e.Priority = 0 // arctic.High
		return e
	}())
	m.Go(0, "flood", func(p *sim.Proc, a *API) {
		for i := 0; i < 60; i++ {
			a.SendBasic(p, 1, []byte{1})
		}
	})
	expressGot := 0
	m.Go(0, "express", func(p *sim.Proc, a *API) {
		p.Delay(200_000) // let the low lane wedge thoroughly
		for i := 0; i < 5; i++ {
			a.SendExpress(p, 1, []byte{byte(i), 0, 0, 0, 0})
			a.Compute(p, 5_000)
		}
	})
	m.Go(1, "exprecv", func(p *sim.Proc, a *API) {
		deadline := sim.Time(3 * sim.Millisecond)
		for expressGot < 5 && p.Now() < deadline {
			if _, _, ok := a.TryRecvExpress(p); ok {
				expressGot++
			}
		}
	})
	m.RunFor(4 * sim.Millisecond)
	if expressGot != 5 {
		t.Fatalf("only %d of 5 express messages bypassed the wedged low lane", expressGot)
	}
}

func TestGarbageFrameCountedDrop(t *testing.T) {
	// A corrupted packet is swallowed and counted, not panicked on: a noisy
	// link must not crash the receiver. TryReceive returns true (the frame is
	// consumed, freeing the network lane) and the rx_garbage counter ticks.
	m := NewMachine(2)
	if !m.Nodes[1].Ctrl.TryReceive([]byte{0xFF, 0xFF, 0xFF}, sim.MsgTag{}) {
		t.Fatal("garbage frame refused instead of counted-and-dropped")
	}
	if got := m.Nodes[1].Ctrl.Stats().RxGarbage; got != 1 {
		t.Fatalf("RxGarbage = %d, want 1", got)
	}
	// The machine still works afterwards.
	var pl []byte
	m.Go(0, "src", func(p *sim.Proc, a *API) { a.SendBasic(p, 1, []byte{7}) })
	m.Go(1, "dst", func(p *sim.Proc, a *API) { _, pl = a.RecvBasic(p) })
	m.Run()
	if len(pl) != 1 || pl[0] != 7 {
		t.Fatalf("delivery after garbage: %v", pl)
	}
}

func TestGarbageFrameStrictPanics(t *testing.T) {
	// The debug knob restores the old fail-loud behavior for protocol-bug
	// hunting, where a garbage frame means a simulator bug, not line noise.
	cfg := cluster.DefaultConfig(2)
	cfg.Node.Ctrl.StrictRx = true
	m := NewMachineConfig(cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("StrictRx accepted a garbage frame")
		}
	}()
	m.Nodes[1].Ctrl.TryReceive([]byte{0xFF, 0xFF, 0xFF}, sim.MsgTag{})
}

func TestDropPolicyLosesExcessOnly(t *testing.T) {
	// Reconfigure the Basic rx queue to Drop and flood it: exactly the
	// overflow is lost, the rest is intact and in order.
	m := NewMachine(2)
	cfg := m.Nodes[1].Ctrl.RxQueueConfig(node.RxBasic)
	cfg.Full = ctrl.Drop
	m.Nodes[1].Ctrl.ConfigureRx(node.RxBasic, cfg)
	m.Go(0, "flood", func(p *sim.Proc, a *API) {
		for i := 0; i < 40; i++ {
			a.SendBasic(p, 1, []byte{byte(i)})
		}
	})
	m.Run()
	st := m.Nodes[1].Ctrl.Stats()
	if st.RxDrops == 0 {
		t.Fatal("no drops under Drop policy flood")
	}
	var got []byte
	m.Go(1, "drain", func(p *sim.Proc, a *API) {
		for {
			_, pl, ok := a.TryRecvBasic(p)
			if !ok {
				return
			}
			got = append(got, pl[0])
		}
	})
	m.Run()
	if len(got) == 0 || len(got) >= 40 {
		t.Fatalf("drained %d of 40", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("surviving messages out of order: %v", got)
		}
	}
}

func TestMutualWedgeIsVisible(t *testing.T) {
	// Two nodes flood each other and neither drains: both block. The
	// harness makes the deadlock observable rather than hanging: time
	// advances on retries, progress does not.
	m := NewMachine(2)
	sent := [2]int{}
	for i := 0; i < 2; i++ {
		i := i
		m.Go(i, "flood", func(p *sim.Proc, a *API) {
			for k := 0; k < 200; k++ {
				a.SendBasic(p, 1-i, []byte{byte(k)})
				sent[i]++
			}
		})
	}
	m.RunFor(2 * sim.Millisecond)
	before := sent
	m.RunFor(2 * sim.Millisecond)
	if sent != before {
		t.Fatalf("progress after wedge: %v -> %v", before, sent)
	}
	if sent[0] >= 200 || sent[1] >= 200 {
		t.Fatal("flood completed without receivers")
	}
}
