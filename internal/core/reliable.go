package core

import (
	"encoding/binary"
	"fmt"

	"startvoyager/internal/firmware"
	"startvoyager/internal/node"
	"startvoyager/internal/sim"
)

// R-Basic: Basic-message semantics over a lossy network. SendReliable hands
// the payload to the local sP's reliable-delivery service (sequence numbers,
// ACKs, bounded-retry retransmission — see internal/firmware/rel.go) and
// blocks until the service reports the send delivered or the peer
// unreachable; either way the call returns within Machine.RelBound() of
// simulated time. RecvReliable reads in-order, exactly-once payloads the
// local service has accepted.

// MaxReliablePayload is the largest reliable-message payload.
const MaxReliablePayload = firmware.RelMaxPayload

// DeliveryError reports a reliable send whose peer was declared unreachable
// after the full retry budget.
type DeliveryError struct {
	Dest int // the peer node
}

func (e *DeliveryError) Error() string {
	return fmt.Sprintf("core: node %d unreachable (reliable-send retry budget exhausted)", e.Dest)
}

// relStatus is one decoded completion from the RelStatusLogicalQ.
type relStatus struct {
	tag  uint32
	code byte
}

// SendReliable sends payload to node dest with exactly-once delivery,
// blocking until the outcome is known. It returns nil on acknowledged
// delivery and a *DeliveryError if the retry budget was exhausted (dead or
// partitioned peer) — always within Machine.RelBound() of simulated time.
func (a *API) SendReliable(p *sim.Proc, dest int, payload []byte) error {
	if len(payload) > MaxReliablePayload {
		panic(fmt.Sprintf("core: payload %d exceeds reliable limit %d", len(payload), MaxReliablePayload))
	}
	if len(a.m.Rels) == 0 {
		panic("core: reliable delivery disabled (cluster.Config.DisableRel)")
	}
	defer a.busy("SendReliable")()
	a.relTag++
	tag := a.relTag
	body := make([]byte, 6+len(payload))
	binary.BigEndian.PutUint16(body[0:], uint16(dest))
	binary.BigEndian.PutUint32(body[2:], tag)
	copy(body[6:], payload)
	// The tx-queue producer counter assumes one writer at a time; reliable
	// sends are the one API designed for concurrent callers, so serialize the
	// submission (the status wait below stays concurrent).
	a.relLock.AcquireP(p)
	a.SendSvc(p, a.n.ID, firmware.SvcRelSend, body)
	a.relLock.Release()

	// The firmware guarantees a status within SendBound; add slack for the
	// submission itself so a *TimeoutError here always means a protocol bug.
	bound := 2 * a.m.RelBound()
	var code byte
	if err := a.pollWait(p, "SendReliable", bound, func() bool {
		c, ok := a.takeRelStatus(p, tag)
		if ok {
			code = c
		}
		return ok
	}); err != nil {
		return err
	}
	if code != firmware.RelOK {
		return &DeliveryError{Dest: dest}
	}
	return nil
}

// takeRelStatus consumes one status for tag if available: first from the
// stash of statuses other waiters drained, then by polling the hardware
// queue once. The queue poll is serialized across this node's aP procs (a
// slot read spans multiple simulated loads, so two procs interleaving on the
// same consumer pointer would double-read a slot).
func (a *API) takeRelStatus(p *sim.Proc, tag uint32) (byte, bool) {
	for i, st := range a.relStash {
		if st.tag == tag {
			a.relStash = append(a.relStash[:i], a.relStash[i+1:]...)
			return st.code, true
		}
	}
	a.relLock.AcquireP(p)
	defer a.relLock.Release()
	_, pl, ok := a.tryRecvSlot(p, "relStatus", node.RxRelStatus, node.SramRxRelStatBuf)
	if !ok {
		return 0, false
	}
	if len(pl) < 5 {
		panic(fmt.Sprintf("core: node %d: short reliable status (%d bytes)", a.n.ID, len(pl)))
	}
	st := relStatus{tag: binary.BigEndian.Uint32(pl[0:]), code: pl[4]}
	if st.tag == tag {
		return st.code, true
	}
	if len(a.relStash) >= relStashCap {
		panic(fmt.Sprintf("core: node %d: reliable status stash overflow", a.n.ID))
	}
	a.relStash = append(a.relStash, st)
	return 0, false
}

// relStashCap bounds the per-node stash of statuses read on behalf of other
// concurrent senders; overflow means statuses are being produced for sends
// nobody is waiting on (a protocol bug, not a load condition).
const relStashCap = 64

// TryRecvReliable polls the reliable receive queue once; ok is false when
// empty. src is the true origin node of the payload.
func (a *API) TryRecvReliable(p *sim.Proc) (src int, payload []byte, ok bool) {
	_, pl, ok := a.tryRecvSlot(p, "TryRecvReliable", node.RxRel, node.SramRxRelBuf)
	if !ok {
		return 0, nil, false
	}
	if len(pl) < 2 {
		panic(fmt.Sprintf("core: node %d: short reliable delivery (%d bytes)", a.n.ID, len(pl)))
	}
	return int(binary.BigEndian.Uint16(pl[0:])), pl[2:], true
}

// RecvReliable blocks until a reliably-delivered message arrives.
func (a *API) RecvReliable(p *sim.Proc) (src int, payload []byte) {
	src, payload, _ = a.recvReliableT(p, noDeadline)
	return src, payload
}

// RecvReliableTimeout is RecvReliable with a bound: after timeout of
// simulated time with no message it returns a *TimeoutError (e.g. every
// remaining sender is dead).
func (a *API) RecvReliableTimeout(p *sim.Proc, timeout sim.Time) (src int, payload []byte, err error) {
	return a.recvReliableT(p, timeout)
}

func (a *API) recvReliableT(p *sim.Proc, timeout sim.Time) (src int, payload []byte, err error) {
	err = a.pollWait(p, "RecvReliable", timeout, func() bool {
		s, pl, ok := a.TryRecvReliable(p)
		if ok {
			src, payload = s, pl
		}
		return ok
	})
	return src, payload, err
}
