package core

import (
	"startvoyager/internal/stats"
	"startvoyager/internal/trace"
)

// Trace attaches a structured event buffer to the machine's engine and
// returns it. Capacity <= 0 selects the default. Call before Run; tracing
// has no effect on simulated timing.
func (m *Machine) Trace(capacity int) *trace.Buffer {
	return trace.Attach(m.Eng, capacity)
}

// Metrics returns the machine's metrics registry (populated by every
// component at construction).
func (m *Machine) Metrics() *stats.Registry { return m.Reg }
