package core

import (
	"startvoyager/internal/stats"
	"startvoyager/internal/trace"
)

// Trace attaches a structured event buffer to the machine's engine and
// returns it. Capacity <= 0 selects the default. Call before Run; tracing
// has no effect on simulated timing. The ring's drop count is exported as
// the trace/dropped metric so a truncated trace is visible in the metrics
// artifact (and fails -strict-trace runs) instead of passing silently.
func (m *Machine) Trace(capacity int) *trace.Buffer {
	b := trace.Attach(m.Eng, capacity)
	tr := m.Reg.Child("trace")
	tr.Gauge("dropped", func() int64 { return int64(b.Stats().Dropped) })
	tr.Gauge("captured", func() int64 { return int64(b.Stats().Captured) })
	return b
}

// Metrics returns the machine's metrics registry (populated by every
// component at construction).
func (m *Machine) Metrics() *stats.Registry { return m.Reg }

// Series attaches a windowed telemetry sampler scraping every registered
// metric on the given cadence and arms it. Call before Run (and after any
// Trace call whose trace/dropped metric should be scraped), then
// Sampler.Finish once the run completes. Sampling rides the engine's
// out-of-band timer hook: it changes no simulated outcome.
func (m *Machine) Series(cfg stats.SamplerConfig) *stats.Sampler {
	s := stats.NewSampler(m.Eng, m.Reg, cfg)
	s.Start()
	return s
}
