// Package core is StarT-Voyager's layer 0: the user-level library through
// which application code on the aP uses the NIU. It provides the four
// default message-passing mechanisms (Basic, Express, TagOn, DMA), the
// NUMA and S-COMA shared-memory windows, and occupancy instrumentation.
//
// Every operation is implemented exactly as the paper describes the software
// doing it: Basic messages are composed with cached stores into mapped aSRAM
// followed by cache flushes and an uncached pointer-update store; Express
// messages are a single uncached store whose address encodes the
// destination; receives poll pointers with uncached loads that the aBIU
// serves; DMA is a request message to the local sP. The aP occupancy of each
// call is metered.
package core

import (
	"encoding/binary"
	"fmt"

	"startvoyager/internal/bus"
	"startvoyager/internal/cluster"
	"startvoyager/internal/firmware"
	"startvoyager/internal/niu/ctrl"
	"startvoyager/internal/node"
	"startvoyager/internal/sim"
)

// MaxBasicPayload is the largest Basic message payload.
const MaxBasicPayload = 88

// MaxExpressPayload is the Express message payload size.
const MaxExpressPayload = ctrl.ExpressPayload

// Machine is a running StarT-Voyager system.
type Machine struct {
	*cluster.Cluster
	apis []*API
}

// NewMachine builds a default machine with the given node count.
func NewMachine(nodes int) *Machine {
	return NewMachineConfig(cluster.DefaultConfig(nodes))
}

// NewMachineConfig builds a machine from an explicit configuration.
func NewMachineConfig(cfg cluster.Config) *Machine {
	m := &Machine{Cluster: cluster.New(cfg)}
	for _, n := range m.Nodes {
		m.apis = append(m.apis, newAPI(m, n))
	}
	return m
}

// API returns node i's user-level interface.
func (m *Machine) API(i int) *API { return m.apis[i] }

// Go spawns an application program on node i's aP.
func (m *Machine) Go(i int, name string, body func(p *sim.Proc, a *API)) {
	a := m.apis[i]
	m.Eng.SpawnOn(i, "aP", fmt.Sprintf("ap%d-%s", i, name), func(p *sim.Proc) {
		body(p, a)
	})
}

// API is the per-node user library handle.
type API struct {
	m *Machine
	n *node.Node

	txProd       [ctrl.NumQueues]uint32 // software's producer counters
	rxCons       [ctrl.NumQueues]uint32 // software's consumer counters
	overflowCons uint32                 // DRAM overflow ring consumer
	busyDepth    int

	// Channel allocation state (see channel.go).
	nextTxQ, nextRxQ int
	nextVirt         int
	sramArena        uint32

	// Reliable-delivery state (see reliable.go).
	relTag   uint32      // last tag handed to SendReliable
	relStash []relStatus // statuses drained on behalf of other senders
	relLock  *sim.Resource

	// Free lists of pooled per-operation records that keep the message path
	// allocation-free. Each in-flight call takes its own record, so API
	// calls blocked in the simulator never share scratch state even when
	// several procs time-share this aP (multitasking workloads).
	busyFree []*busyTok
	wordFree []*wordBuf
	slotFree []*slotBuf
	txwFree  []*txWait
	rxwFree  []*rxWait
}

func newAPI(m *Machine, n *node.Node) *API {
	return &API{m: m, n: n,
		relLock: sim.NewResource(m.Eng, fmt.Sprintf("rellock%d", n.ID))}
}

// Node returns the underlying node (for instrumentation).
func (a *API) Node() *node.Node { return a.n }

// NodeID returns this node's number.
func (a *API) NodeID() int { return a.n.ID }

// NumNodes returns the machine size.
func (a *API) NumNodes() int { return len(a.m.Nodes) }

// busy brackets aP occupancy; nested calls meter once. The outermost call
// also opens a span named after the API operation on the node's "aP" track.
// The returned func is a pooled token's prebound method value — deferring it
// closes the bracket and recycles the token without allocating.
//
//voyager:noalloc
func (a *API) busy(op string) func() {
	t := a.busyGet()
	if a.busyDepth == 0 {
		a.n.APMeter.Start()
		a.m.Eng.ProfPush(op)
		if eng := a.m.Eng; eng.Observed() {
			t.span = eng.BeginSpan(a.n.ID, "aP", op)
		}
	}
	a.busyDepth++
	return t.endFn
}

// busyTok is one pooled occupancy bracket. Only the outermost bracket holds
// an open span; inner tokens carry a zero Span whose End is a no-op.
type busyTok struct {
	a     *API
	span  sim.Span
	endFn func()
}

//voyager:noalloc
func (t *busyTok) end() {
	a := t.a
	a.busyDepth--
	if a.busyDepth == 0 {
		t.span.End()
		a.m.Eng.ProfPop()
		a.n.APMeter.Stop()
	}
	t.span = sim.Span{}
	a.busyFree = append(a.busyFree, t) //voyager:alloc-ok(amortized: pool backing array is retained)
}

//voyager:noalloc
func (a *API) busyGet() *busyTok {
	if n := len(a.busyFree); n > 0 {
		t := a.busyFree[n-1]
		a.busyFree = a.busyFree[:n-1]
		return t
	}
	t := &busyTok{a: a} //voyager:alloc-ok(pool warm-up; recycled thereafter)
	t.endFn = t.end     //voyager:alloc-ok(one-time method binding for the pooled record)
	return t
}

// traceMsg emits one causal lifecycle instant for a traced message on this
// node's "aP" track. No-op for untraced messages (tag.ID == 0).
func (a *API) traceMsg(name string, tag sim.MsgTag, extra ...sim.Field) {
	eng := a.m.Eng
	if !tag.Traced() || !eng.Observed() {
		return
	}
	fields := make([]sim.Field, 0, 2+len(extra))
	fields = append(fields, sim.I64("msg", int64(tag.ID)))
	if tag.Parent != 0 {
		fields = append(fields, sim.I64("parent", int64(tag.Parent)))
	}
	fields = append(fields, extra...)
	eng.Instant(a.n.ID, "aP", name, fields...)
}

// Compute models d of application computation on the aP.
//
//voyager:noalloc
func (a *API) Compute(p *sim.Proc, d sim.Time) {
	defer a.busy("Compute")()
	p.Delay(d)
}

// --- Basic messages ---

// SendBasic sends payload (<= 88 bytes) to the Basic queue of node dest,
// blocking while the transmit queue is full.
//
//voyager:noalloc
func (a *API) SendBasic(p *sim.Proc, dest int, payload []byte) {
	a.sendSlot(p, "SendBasic", a.n.TransBasicIdx(dest), 0, payload, 0, 0)
}

// SendSvc sends a firmware service message (service id + body) to node
// dest's sP — the aP→sP request path (e.g. DMA requests).
func (a *API) SendSvc(p *sim.Proc, dest int, svc byte, body []byte) {
	a.sendSlot(p, "SendSvc", a.n.TransSvcIdx(dest), 0, append([]byte{svc}, body...), 0, 0)
}

// SendTagOn sends a Basic message whose payload is extended with tagLen
// bytes of aSRAM data at sramOff (tagLen must be a multiple of 16, at most
// 80 — up to 2.5 cache lines). inline+tag must fit a Basic payload.
//
//voyager:noalloc
func (a *API) SendTagOn(p *sim.Proc, dest int, inline []byte, sramOff uint32, tagLen int) {
	if tagLen%16 != 0 || tagLen > 80 {
		panic(fmt.Sprintf("core: bad TagOn length %d", tagLen)) //voyager:alloc-ok(panic path)
	}
	a.sendSlot(p, "SendTagOn", a.n.TransBasicIdx(dest), ctrl.SlotFlagTagOn|ctrl.SlotFlagTagASram,
		inline, sramOff, tagLen)
}

// slotBuf is a pooled compose buffer sized for the largest Basic slot.
type slotBuf struct {
	b [ctrl.SlotHeaderBytes + MaxBasicPayload]byte
}

//voyager:noalloc
func (a *API) slotGet() *slotBuf {
	if n := len(a.slotFree); n > 0 {
		s := a.slotFree[n-1]
		a.slotFree = a.slotFree[:n-1]
		return s
	}
	return &slotBuf{} //voyager:alloc-ok(pool warm-up; recycled thereafter)
}

//voyager:noalloc
func (a *API) slotPut(s *slotBuf) {
	a.slotFree = append(a.slotFree, s) //voyager:alloc-ok(amortized: pool backing array is retained)
}

// sendSlot composes and launches one Basic-queue message; op names the
// public API call for the occupancy span.
//
//voyager:noalloc composes into a pooled slot buffer
func (a *API) sendSlot(p *sim.Proc, op string, destIdx int, flags byte, payload []byte,
	tagOff uint32, tagLen int) {
	if len(payload) > MaxBasicPayload {
		panic(fmt.Sprintf("core: payload %d exceeds Basic limit", len(payload))) //voyager:alloc-ok(panic path)
	}
	defer a.busy(op)()
	q := node.TxBasic
	a.waitTxSpace(p, q, node.BasicEntries)

	sb := a.slotGet()
	slot := sb.b[:ctrl.SlotHeaderBytes+len(payload)]
	binary.BigEndian.PutUint16(slot[0:], uint16(destIdx))
	slot[2] = flags
	slot[3] = byte(len(payload))
	slot[4], slot[5], slot[6] = byte(tagOff>>16), byte(tagOff>>8), byte(tagOff)
	slot[7] = byte(tagLen / 16)
	copy(slot[8:], payload)

	base := a.slotAddr(node.SramTxBasicBuf, node.BasicSlotBytes, node.BasicEntries, a.txProd[q])
	// Cached stores compose the message, flushes push it into the aSRAM.
	a.n.Cache.Store(p, base, slot)
	for off := uint32(0); off < uint32(len(slot)); off += bus.LineSize {
		a.n.Cache.Flush(p, base+off)
	}
	a.slotPut(sb)
	// The message enters the system when the producer pointer publishes it:
	// allocate its causal trace id and stage it beside the slot.
	tag := sim.MsgTag{ID: a.m.Eng.NewMsgID()}
	a.n.Ctrl.StageTxTag(q, a.txProd[q], tag)
	a.traceMsg("msg-send", tag, sim.Int("txq", q))
	a.txProd[q]++
	a.ptrStore(p, q, false, a.txProd[q])
}

// txWait is a pooled predicate record for waitTxSpace: its prebound try
// method replaces a per-call closure.
type txWait struct {
	a       *API
	p       *sim.Proc
	q       int
	entries uint32
	tryFn   func() bool
}

//voyager:noalloc
func (w *txWait) try() bool {
	_, consumer := w.a.ptrLoad(w.p, w.q, false)
	return w.a.txProd[w.q]-consumer < w.entries
}

//voyager:noalloc
func (a *API) txWaitGet() *txWait {
	if n := len(a.txwFree); n > 0 {
		w := a.txwFree[n-1]
		a.txwFree = a.txwFree[:n-1]
		return w
	}
	w := &txWait{a: a} //voyager:alloc-ok(pool warm-up; recycled thereafter)
	w.tryFn = w.try    //voyager:alloc-ok(one-time method binding for the pooled record)
	return w
}

// waitTxSpace polls the transmit consumer pointer until a slot is free.
//
//voyager:noalloc
func (a *API) waitTxSpace(p *sim.Proc, q, entries int) {
	w := a.txWaitGet()
	w.p, w.q, w.entries = p, q, uint32(entries)
	a.pollWait(p, "waitTxSpace", noDeadline, w.tryFn)
	w.p = nil
	a.txwFree = append(a.txwFree, w) //voyager:alloc-ok(amortized: pool backing array is retained)
}

// TryRecvBasic polls the Basic receive queue once; ok is false if empty.
//
//voyager:noalloc
func (a *API) TryRecvBasic(p *sim.Proc) (src int, payload []byte, ok bool) {
	return a.tryRecvSlot(p, "TryRecvBasic", node.RxBasic, node.SramRxBasicBuf)
}

// RecvBasic blocks until a Basic message arrives.
//
//voyager:noalloc
func (a *API) RecvBasic(p *sim.Proc) (src int, payload []byte) {
	src, payload, _ = a.recvBasicT(p, noDeadline)
	return src, payload
}

// RecvBasicTimeout is RecvBasic with a bound: after timeout of simulated
// time with no message it returns a *TimeoutError.
//
//voyager:noalloc
func (a *API) RecvBasicTimeout(p *sim.Proc, timeout sim.Time) (src int, payload []byte, err error) {
	return a.recvBasicT(p, timeout)
}

// rxWait is a pooled predicate record for the blocking receives: its
// prebound try method polls one slot queue and stashes the result, replacing
// a per-call closure over the outparams.
type rxWait struct {
	a       *API
	p       *sim.Proc
	op      string
	q       int
	bufOff  uint32
	src     int
	payload []byte
	tryFn   func() bool
}

//voyager:noalloc
func (w *rxWait) try() bool {
	s, pl, ok := w.a.tryRecvSlot(w.p, w.op, w.q, w.bufOff)
	if ok {
		w.src, w.payload = s, pl
	}
	return ok
}

//voyager:noalloc
func (a *API) rxWaitGet() *rxWait {
	if n := len(a.rxwFree); n > 0 {
		w := a.rxwFree[n-1]
		a.rxwFree = a.rxwFree[:n-1]
		return w
	}
	w := &rxWait{a: a} //voyager:alloc-ok(pool warm-up; recycled thereafter)
	w.tryFn = w.try    //voyager:alloc-ok(one-time method binding for the pooled record)
	return w
}

// recvSlotT blocks (with an optional deadline) on the given slot queue; op
// names the inner poll's occupancy span.
//
//voyager:noalloc
func (a *API) recvSlotT(p *sim.Proc, span, op string, q int, bufOff uint32,
	timeout sim.Time) (src int, payload []byte, err error) {
	w := a.rxWaitGet()
	w.p, w.op, w.q, w.bufOff = p, op, q, bufOff
	err = a.pollWait(p, span, timeout, w.tryFn)
	src, payload = w.src, w.payload
	w.p, w.payload = nil, nil
	a.rxwFree = append(a.rxwFree, w) //voyager:alloc-ok(amortized: pool backing array is retained)
	return src, payload, err
}

//voyager:noalloc
func (a *API) recvBasicT(p *sim.Proc, timeout sim.Time) (src int, payload []byte, err error) {
	return a.recvSlotT(p, "RecvBasic", "TryRecvBasic", node.RxBasic, node.SramRxBasicBuf, timeout)
}

// RecvNotify blocks until a completion notification (DMA / block transfer)
// arrives on the notification queue.
//
//voyager:noalloc
func (a *API) RecvNotify(p *sim.Proc) (src int, payload []byte) {
	src, payload, _ = a.recvNotifyT(p, noDeadline)
	return src, payload
}

// RecvNotifyTimeout is RecvNotify with a bound: after timeout of simulated
// time with no notification it returns a *TimeoutError (e.g. a DMA whose
// completion message died with a partitioned peer).
//
//voyager:noalloc
func (a *API) RecvNotifyTimeout(p *sim.Proc, timeout sim.Time) (src int, payload []byte, err error) {
	return a.recvNotifyT(p, timeout)
}

//voyager:noalloc
func (a *API) recvNotifyT(p *sim.Proc, timeout sim.Time) (src int, payload []byte, err error) {
	return a.recvSlotT(p, "RecvNotify", "RecvNotify", node.RxNotify, node.SramRxNotifyBuf, timeout)
}

// TryRecvNotify polls the notification queue once.
//
//voyager:noalloc
func (a *API) TryRecvNotify(p *sim.Proc) (src int, payload []byte, ok bool) {
	return a.tryRecvSlot(p, "TryRecvNotify", node.RxNotify, node.SramRxNotifyBuf)
}

// to the caller, which owns it outright
//
//voyager:noalloc the returned payload is the only allocation: it is handed
func (a *API) tryRecvSlot(p *sim.Proc, op string, q int, bufOff uint32) (int, []byte, bool) {
	defer a.busy(op)()
	producer, _ := a.ptrLoad(p, q, true)
	if producer == a.rxCons[q] {
		return 0, nil, false
	}
	base := a.slotAddr(bufOff, node.BasicSlotBytes, node.BasicEntries, a.rxCons[q])
	// Invalidate any stale cached copy of the slot, then read it.
	var hdr [8]byte
	a.n.Cache.Flush(p, base)
	a.n.Cache.Load(p, base, hdr[:])
	n := int(binary.BigEndian.Uint16(hdr[4:]))
	payload := make([]byte, n) //voyager:alloc-ok(caller-owned result; ownership leaves the pool here)
	if n > 0 {
		for off := uint32(bus.LineSize); off < uint32(8+n); off += bus.LineSize {
			a.n.Cache.Flush(p, base+off)
		}
		a.n.Cache.Load(p, base+8, payload)
	}
	src := int(binary.BigEndian.Uint16(hdr[0:]))
	a.traceMsg("msg-consume", a.n.Ctrl.RxTag(q, a.rxCons[q]), sim.Int("rxq", q))
	a.rxCons[q]++
	a.ptrStore(p, q, true, a.rxCons[q])
	return src, payload, true
}

// --- Express messages ---

// SendExpress sends up to 5 bytes to node dest with a single uncached store.
//
//voyager:noalloc
func (a *API) SendExpress(p *sim.Proc, dest int, payload []byte) {
	if len(payload) > MaxExpressPayload {
		panic(fmt.Sprintf("core: payload %d exceeds Express limit", len(payload))) //voyager:alloc-ok(panic path)
	}
	defer a.busy("SendExpress")()
	destIdx := uint32(a.n.TransExpressIdx(dest))
	addr := node.ExTxBase + (uint32(node.TxExpress)<<12|destIdx)<<3
	w := a.wordGet()
	w.b = [8]byte{}
	copy(w.b[:], payload)
	a.n.Cache.StoreUncached(p, addr, w.b[:])
	a.wordPut(w)
}

// TryRecvExpress polls the Express receive queue with a single uncached
// load; ok is false when empty.
//
//voyager:noalloc
func (a *API) TryRecvExpress(p *sim.Proc) (src int, payload [MaxExpressPayload]byte, ok bool) {
	defer a.busy("TryRecvExpress")()
	w := a.wordGet()
	addr := node.ExRxBase + uint32(node.RxExpress)*8
	a.n.Cache.LoadUncached(p, addr, w.b[:])
	word := w.b
	a.wordPut(w)
	if word[0]&0x80 == 0 {
		return 0, payload, false
	}
	copy(payload[:], word[3:8])
	return int(binary.BigEndian.Uint16(word[1:])), payload, true
}

// RecvExpress blocks until an Express message arrives.
func (a *API) RecvExpress(p *sim.Proc) (src int, payload [MaxExpressPayload]byte) {
	src, payload, _ = a.recvExpressT(p, noDeadline)
	return src, payload
}

// RecvExpressTimeout is RecvExpress with a bound: after timeout of simulated
// time with no message it returns a *TimeoutError.
func (a *API) RecvExpressTimeout(p *sim.Proc, timeout sim.Time) (src int, payload [MaxExpressPayload]byte, err error) {
	return a.recvExpressT(p, timeout)
}

func (a *API) recvExpressT(p *sim.Proc, timeout sim.Time) (src int, payload [MaxExpressPayload]byte, err error) {
	err = a.pollWait(p, "RecvExpress", timeout, func() bool {
		s, pl, ok := a.TryRecvExpress(p)
		if ok {
			src, payload = s, pl
		}
		return ok
	})
	return src, payload, err
}

// --- DMA ---

// Dma submits a transfer request to the local sP and returns immediately.
// Completion is signaled to the destination node's notification queue.
func (a *API) Dma(p *sim.Proc, req firmware.DmaRequest) {
	if req.NotifyQ == 0 {
		req.NotifyQ = node.LqNotify
	}
	a.SendSvc(p, a.n.ID, firmware.SvcDmaRequest, firmware.EncodeDmaRequest(req))
}

// DmaPush copies [srcAddr, srcAddr+n) of local DRAM into dest's DRAM at
// dstAddr, notifying dest's notification queue with tag.
func (a *API) DmaPush(p *sim.Proc, dest int, srcAddr, dstAddr uint32, n int, tag uint32) {
	a.Dma(p, firmware.DmaRequest{PeerNode: dest, SrcAddr: srcAddr, DstAddr: dstAddr,
		Len: n, Tag: tag})
}

// --- shared memory ---

// ScomaAddr converts an offset in the global S-COMA space to its window
// address.
//
//voyager:noalloc
func (a *API) ScomaAddr(off uint32) uint32 { return node.ScomaBase + off }

// ScomaLoad reads from the S-COMA window through the cache (stalling, via
// bus retry, until the protocol delivers the lines).
//
//voyager:noalloc
func (a *API) ScomaLoad(p *sim.Proc, off uint32, buf []byte) {
	defer a.busy("ScomaLoad")()
	a.n.Cache.Load(p, a.ScomaAddr(off), buf)
}

// ScomaStore writes to the S-COMA window through the cache.
//
//voyager:noalloc
func (a *API) ScomaStore(p *sim.Proc, off uint32, data []byte) {
	defer a.busy("ScomaStore")()
	a.n.Cache.Store(p, a.ScomaAddr(off), data)
}

// NumaLoad reads up to 8 bytes from the NUMA window (uncached remote
// access).
//
//voyager:noalloc
func (a *API) NumaLoad(p *sim.Proc, off uint32, buf []byte) {
	defer a.busy("NumaLoad")()
	a.n.Cache.LoadUncached(p, node.NumaBase+off, buf)
}

// NumaStore writes up to 8 bytes into the NUMA window.
//
//voyager:noalloc
func (a *API) NumaStore(p *sim.Proc, off uint32, data []byte) {
	defer a.busy("NumaStore")()
	a.n.Cache.StoreUncached(p, node.NumaBase+off, data)
}

// --- local memory ---

// MemLoad reads local DRAM through the cache.
//
//voyager:noalloc
func (a *API) MemLoad(p *sim.Proc, addr uint32, buf []byte) {
	defer a.busy("MemLoad")()
	a.n.Cache.Load(p, addr, buf)
}

// MemStore writes local DRAM through the cache.
//
//voyager:noalloc
func (a *API) MemStore(p *sim.Proc, addr uint32, data []byte) {
	defer a.busy("MemStore")()
	a.n.Cache.Store(p, addr, data)
}

// MemFlush writes back and invalidates the cache lines covering
// [addr, addr+n) so the data is visible to the NIU's bus reads.
//
//voyager:noalloc
func (a *API) MemFlush(p *sim.Proc, addr uint32, n int) {
	defer a.busy("MemFlush")()
	first := addr &^ (bus.LineSize - 1)
	for la := first; la < addr+uint32(n); la += bus.LineSize {
		a.n.Cache.Flush(p, la)
	}
}

// StageASram copies data into the aSRAM at off using cached stores plus
// flushes (the TagOn staging path).
//
//voyager:noalloc
func (a *API) StageASram(p *sim.Proc, off uint32, data []byte) {
	defer a.busy("StageASram")()
	addr := node.SramBase + off
	a.n.Cache.Store(p, addr, data)
	for la := addr &^ (bus.LineSize - 1); la < addr+uint32(len(data)); la += bus.LineSize {
		a.n.Cache.Flush(p, la)
	}
}

// Poke writes DRAM directly, without simulated time (test/workload setup).
func (a *API) Poke(addr uint32, data []byte) { a.n.Dram.Poke(addr, data) }

// Peek reads DRAM directly, without simulated time (verification).
func (a *API) Peek(addr uint32, buf []byte) { a.n.Dram.Peek(addr, buf) }

// --- low-level pointer access ---

// wordBuf is a pooled 8-byte bounce buffer for uncached word accesses. The
// cache's pooled transaction record briefly retains the slice while the bus
// operation is in flight, so a stack array would escape on every call.
type wordBuf struct{ b [8]byte }

//voyager:noalloc
func (a *API) wordGet() *wordBuf {
	if n := len(a.wordFree); n > 0 {
		w := a.wordFree[n-1]
		a.wordFree = a.wordFree[:n-1]
		return w
	}
	return &wordBuf{} //voyager:alloc-ok(pool warm-up; recycled thereafter)
}

//voyager:noalloc
func (a *API) wordPut(w *wordBuf) {
	a.wordFree = append(a.wordFree, w) //voyager:alloc-ok(amortized: pool backing array is retained)
}

// ptrLoad reads the (producer, consumer) pair of a queue with one uncached
// load through the aBIU.
//
//voyager:noalloc
func (a *API) ptrLoad(p *sim.Proc, q int, rx bool) (producer, consumer uint32) {
	w := a.wordGet()
	off := uint32(q) * 16
	if rx {
		off += 8
	}
	a.n.Cache.LoadUncached(p, node.PtrBase+off, w.b[:])
	v := binary.BigEndian.Uint64(w.b[:])
	a.wordPut(w)
	return uint32(v >> 32), uint32(v)
}

// ptrStore publishes a pointer value with one uncached store.
//
//voyager:noalloc
func (a *API) ptrStore(p *sim.Proc, q int, rx bool, val uint32) {
	w := a.wordGet()
	binary.BigEndian.PutUint64(w.b[:], uint64(val))
	off := uint32(q) * 16
	if rx {
		off += 8
	}
	a.n.Cache.StoreUncached(p, node.PtrBase+off, w.b[:])
	a.wordPut(w)
}

//voyager:noalloc
func (a *API) slotAddr(bufOff uint32, entryBytes, entries int, ptr uint32) uint32 {
	return node.SramBase + ctrl.SlotOffset(bufOff, entryBytes, entries, ptr)
}
