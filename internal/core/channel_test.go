package core

import (
	"bytes"
	"testing"

	"startvoyager/internal/sim"
)

func TestChannelPingPong(t *testing.T) {
	m := NewMachine(2)
	chA := m.API(0).OpenChannel(1, []int{1})
	chB := m.API(1).OpenChannel(1, []int{0})
	done := false
	m.Go(0, "a", func(p *sim.Proc, _ *API) {
		if err := chA.Send(p, 1, []byte("over")); err != nil {
			t.Errorf("send: %v", err)
		}
		src, pl := chA.Recv(p)
		if src != 1 || !bytes.Equal(pl, []byte("back")) {
			t.Errorf("got %d %q", src, pl)
		}
		done = true
	})
	m.Go(1, "b", func(p *sim.Proc, _ *API) {
		src, pl := chB.Recv(p)
		if src != 0 || !bytes.Equal(pl, []byte("over")) {
			t.Errorf("got %d %q", src, pl)
		}
		if err := chB.Send(p, 0, []byte("back")); err != nil {
			t.Errorf("send back: %v", err)
		}
	})
	m.Run()
	if !done {
		t.Fatal("channel ping-pong incomplete")
	}
}

func TestChannelIsolation(t *testing.T) {
	// Two channels between the same pair of nodes must not cross-deliver.
	m := NewMachine(2)
	a1 := m.API(0).OpenChannel(1, []int{1})
	a2 := m.API(0).OpenChannel(2, []int{1})
	b1 := m.API(1).OpenChannel(1, []int{0})
	b2 := m.API(1).OpenChannel(2, []int{0})
	m.Go(0, "send", func(p *sim.Proc, _ *API) {
		a1.Send(p, 1, []byte("one"))
		a2.Send(p, 1, []byte("two"))
	})
	var got1, got2 []byte
	m.Go(1, "recv", func(p *sim.Proc, _ *API) {
		_, got2 = b2.Recv(p)
		_, got1 = b1.Recv(p)
	})
	m.Run()
	if string(got1) != "one" || string(got2) != "two" {
		t.Fatalf("cross-delivery: %q %q", got1, got2)
	}
}

func TestChannelProtectionViolation(t *testing.T) {
	m := NewMachine(4)
	ch := m.API(0).OpenChannel(1, []int{1}) // node 2 forbidden
	peer := m.API(1).OpenChannel(1, []int{0})
	var errGot error
	m.Go(0, "rogue", func(p *sim.Proc, _ *API) {
		errGot = ch.Send(p, 2, []byte("sneak"))
		// Channel must be shut down; a legitimate send now fails fast too.
		if err := ch.Send(p, 1, []byte("later")); err == nil {
			t.Error("send after shutdown succeeded")
		}
	})
	m.Run()
	if errGot != ErrChannelShutdown {
		t.Fatalf("violation error = %v", errGot)
	}
	if !ch.Shutdown() {
		t.Fatal("channel not shut down")
	}
	if m.Nodes[0].FW.Stats().ProtViols != 1 {
		t.Fatalf("firmware stats %+v", m.Nodes[0].FW.Stats())
	}
	// Other traffic (the default Basic path) is unaffected.
	okc := false
	m.Go(0, "good", func(p *sim.Proc, a *API) { a.SendBasic(p, 1, []byte("fine")) })
	m.Go(1, "peer", func(p *sim.Proc, a *API) {
		_, pl := a.RecvBasic(p)
		okc = bytes.Equal(pl, []byte("fine"))
	})
	m.Run()
	if !okc {
		t.Fatal("protection shutdown leaked into other queues")
	}
	_ = peer
}

func TestChannelReenable(t *testing.T) {
	m := NewMachine(2)
	ch := m.API(0).OpenChannel(1, []int{}) // nothing allowed: first send trips
	peer := m.API(1).OpenChannel(1, []int{0})
	var got []byte
	m.Go(0, "x", func(p *sim.Proc, a *API) {
		if err := ch.Send(p, 1, []byte("m")); err != ErrChannelShutdown {
			t.Errorf("want shutdown, got %v", err)
		}
		// The "OS" grants the permission and re-enables: the message held at
		// the head of the queue launches.
		a.Node().Ctrl.SetTxAllowedDests(2, 1<<1)
		ch.Reenable()
	})
	m.Go(1, "peer", func(p *sim.Proc, _ *API) {
		_, got = peer.Recv(p)
	})
	m.Run()
	if !bytes.Equal(got, []byte("m")) {
		t.Fatalf("after reenable got %q", got)
	}
	if ch.Shutdown() {
		t.Fatal("still shut down")
	}
}

func TestBadArgsPanics(t *testing.T) {
	m := NewMachine(2)
	cases := []struct {
		name string
		fn   func(p *sim.Proc, a *API)
	}{
		{"basic too big", func(p *sim.Proc, a *API) {
			a.SendBasic(p, 1, make([]byte, MaxBasicPayload+1))
		}},
		{"express too big", func(p *sim.Proc, a *API) {
			a.SendExpress(p, 1, make([]byte, MaxExpressPayload+1))
		}},
		{"tagon unaligned", func(p *sim.Proc, a *API) {
			a.SendTagOn(p, 1, []byte("x"), 0x8000, 17)
		}},
		{"tagon too long", func(p *sim.Proc, a *API) {
			a.SendTagOn(p, 1, []byte("x"), 0x8000, 96)
		}},
		{"bad virtual dest", func(p *sim.Proc, a *API) {
			a.MapVirtualDest(10, 1, 5)
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			m.Go(0, "bad", c.fn)
			m.Run()
		})
	}
}

func TestChannelQueueExhaustion(t *testing.T) {
	m := NewMachine(2)
	for i := 0; i < chanLastTxQ-chanFirstTxQ+1; i++ {
		m.API(0).OpenChannel(i, []int{1})
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic when hardware queues run out")
		}
	}()
	m.API(0).OpenChannel(99, []int{1})
}

func TestMaxBasicPayloadExact(t *testing.T) {
	m := NewMachine(2)
	payload := make([]byte, MaxBasicPayload)
	for i := range payload {
		payload[i] = byte(i)
	}
	var got []byte
	m.Go(0, "s", func(p *sim.Proc, a *API) { a.SendBasic(p, 1, payload) })
	m.Go(1, "r", func(p *sim.Proc, a *API) { _, got = a.RecvBasic(p) })
	m.Run()
	if !bytes.Equal(got, payload) {
		t.Fatal("max payload corrupted")
	}
}

func TestComputeMetersAP(t *testing.T) {
	m := NewMachine(1)
	m.Go(0, "c", func(p *sim.Proc, a *API) { a.Compute(p, 12345) })
	m.Run()
	if got := m.Nodes[0].APMeter.BusyTime(); got != 12345 {
		t.Fatalf("aP busy %v, want 12345", got)
	}
}
