package core

import (
	"bytes"
	"testing"

	"startvoyager/internal/cluster"
	"startvoyager/internal/niu/biu"
	"startvoyager/internal/sim"
)

func reflectMachine(t *testing.T, nodes int, mode biu.ReflectMode) *Machine {
	t.Helper()
	cfg := cluster.DefaultConfig(nodes)
	cfg.ReflectSize = 64 << 10
	m := NewMachineConfig(cfg)
	// Node 0 exports the whole window to everyone else.
	subs := []int{}
	for i := 1; i < nodes; i++ {
		subs = append(subs, i)
	}
	m.API(0).ReflectConfigure(mode, []biu.ReflectEntry{{From: 0, To: 64 << 10, Subs: subs}})
	return m
}

func testEagerPropagation(t *testing.T, mode biu.ReflectMode) {
	t.Helper()
	m := reflectMachine(t, 3, mode)
	data := []byte("reflected write!................") // one line
	seen := make([][]byte, 3)
	m.Go(0, "writer", func(p *sim.Proc, a *API) {
		a.ReflectStore(p, 0x100, data)
	})
	for i := 1; i < 3; i++ {
		i := i
		m.Go(i, "reader", func(p *sim.Proc, a *API) {
			buf := make([]byte, len(data))
			for {
				a.ReflectLoadUncached(p, 0x100, buf[:8])
				if buf[0] != 0 {
					break
				}
			}
			p.Delay(2000) // let the full line land
			a.ReflectLoad(p, 0x100, buf)
			seen[i] = buf
		})
	}
	m.Run()
	for i := 1; i < 3; i++ {
		if !bytes.Equal(seen[i], data) {
			t.Fatalf("mode %v: node %d saw %q", mode, i, seen[i])
		}
	}
}

func TestReflectFirmwareMode(t *testing.T) {
	testEagerPropagation(t, biu.ReflectFirmware)
}

func TestReflectHardwareMode(t *testing.T) {
	testEagerPropagation(t, biu.ReflectHardware)
}

func TestReflectHardwareUsesNoSP(t *testing.T) {
	m := reflectMachine(t, 2, biu.ReflectHardware)
	m.Go(0, "writer", func(p *sim.Proc, a *API) {
		for i := 0; i < 20; i++ {
			a.ReflectStore(p, uint32(i*64), make([]byte, 32))
		}
	})
	m.Run()
	if sp := m.Nodes[0].FW.BusyTime(); sp != 0 {
		t.Fatalf("hardware mode consumed %v of sP time", sp)
	}
	got := make([]byte, 1)
	m.Nodes[1].Dram.Peek(0xA000_0000, got) // window alias resolves
	if m.Nodes[0].ABIU.Stats().ReflectHw == 0 {
		t.Fatal("no hardware reflections recorded")
	}
}

func TestReflectFirmwareUsesSP(t *testing.T) {
	m := reflectMachine(t, 2, biu.ReflectFirmware)
	m.Go(0, "writer", func(p *sim.Proc, a *API) {
		a.ReflectStore(p, 0, make([]byte, 32))
	})
	m.Run()
	if sp := m.Nodes[0].FW.BusyTime(); sp == 0 {
		t.Fatal("firmware mode used no sP time")
	}
	if m.Reflects[0].Stats().Propagated != 1 {
		t.Fatalf("stats %+v", m.Reflects[0].Stats())
	}
}

func TestReflectWordStore(t *testing.T) {
	m := reflectMachine(t, 2, biu.ReflectHardware)
	m.Go(0, "writer", func(p *sim.Proc, a *API) {
		a.ReflectStoreWord(p, 0x200, []byte("wordwrt!"))
	})
	var got [8]byte
	m.Go(1, "reader", func(p *sim.Proc, a *API) {
		for got[0] == 0 {
			a.ReflectLoadUncached(p, 0x200, got[:])
		}
	})
	m.Run()
	if !bytes.Equal(got[:], []byte("wordwrt!")) {
		t.Fatalf("got %q", got)
	}
}

func TestReflectDeferredFlush(t *testing.T) {
	m := reflectMachine(t, 2, biu.ReflectDeferred)
	region := make([]byte, 4096)
	for i := range region {
		region[i] = byte(i * 3)
	}
	m.Go(0, "writer", func(p *sim.Proc, a *API) {
		// Dirty only two separated lines, then write the full content of
		// those lines and flush: only 2 lines must travel.
		a.ReflectStore(p, 128, region[128:160])
		a.ReflectStore(p, 2048, region[2048:2080])
		a.ReflectFlush(p, 0, 4096, 0xF1)
		_, pl := a.RecvNotify(p)
		if len(pl) != 8 {
			t.Errorf("bad flush notify %v", pl)
		}
	})
	m.Run()
	if got := m.Reflects[0].Stats().DiffLines; got != 2 {
		t.Fatalf("flushed %d lines, want 2", got)
	}
	chk := make([]byte, 32)
	m.Nodes[1].Dram.Peek(0xA000_0000+128, chk)
	if !bytes.Equal(chk, region[128:160]) {
		t.Fatal("dirty line not propagated")
	}
	// Clean lines must NOT have been sent.
	m.Nodes[1].Dram.Peek(0xA000_0000+256, chk)
	if !bytes.Equal(chk, make([]byte, 32)) {
		t.Fatal("clean line was propagated")
	}
	// A second flush finds nothing dirty.
	m.Go(0, "w2", func(p *sim.Proc, a *API) {
		a.ReflectFlush(p, 0, 4096, 0xF2)
		a.RecvNotify(p)
	})
	m.Run()
	if got := m.Reflects[0].Stats().DiffLines; got != 2 {
		t.Fatalf("second flush re-sent lines: total %d", got)
	}
}

func TestReflectWithoutWindowPanics(t *testing.T) {
	m := NewMachine(2) // no ReflectSize
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.API(0).ReflectConfigure(biu.ReflectHardware, nil)
}

func TestOverflowQueue(t *testing.T) {
	m := NewMachine(2)
	// Virtual destination 230 names node 1's logical queue 555, which is
	// resident nowhere: messages must arrive via the DRAM overflow ring.
	m.API(0).MapVirtualDest(230, 1, 555)
	var src int
	var lq uint16
	var got []byte
	m.Go(0, "sender", func(p *sim.Proc, a *API) {
		a.SendVirtual(p, 230, []byte("nonresident"))
	})
	m.Go(1, "receiver", func(p *sim.Proc, a *API) {
		src, lq, got = a.RecvOverflow(p)
	})
	m.Run()
	if src != 0 || lq != 555 || string(got) != "nonresident" {
		t.Fatalf("overflow: src=%d lq=%d payload=%q", src, lq, got)
	}
	if m.MissRings[1].Stats().Written != 1 {
		t.Fatalf("ring stats %+v", m.MissRings[1].Stats())
	}
	if m.Nodes[1].Ctrl.Stats().RxMisses != 1 {
		t.Fatalf("ctrl stats %+v", m.Nodes[1].Ctrl.Stats())
	}
}

func TestOverflowMany(t *testing.T) {
	m := NewMachine(2)
	m.API(0).MapVirtualDest(240, 1, 900)
	const count = 30
	m.Go(0, "sender", func(p *sim.Proc, a *API) {
		for i := 0; i < count; i++ {
			a.SendVirtual(p, 240, []byte{byte(i)})
		}
	})
	var order []byte
	m.Go(1, "receiver", func(p *sim.Proc, a *API) {
		for i := 0; i < count; i++ {
			_, _, pl := a.RecvOverflow(p)
			order = append(order, pl[0])
		}
	})
	m.Run()
	for i, v := range order {
		if v != byte(i) {
			t.Fatalf("overflow reordered at %d: %d", i, v)
		}
	}
}

func TestScomaMigratoryOptimization(t *testing.T) {
	// Two nodes take turns incrementing a counter line. Without the
	// optimization every turn costs a Get (recall-share) followed by a GetX
	// (invalidate + upgrade); with it the read miss is granted exclusively
	// and the upgrade disappears.
	run := func(migratory bool) (getx uint64, dur sim.Time) {
		cfg := cluster.DefaultConfig(2)
		cfg.ScomaMigratory = migratory
		m := NewMachineConfig(cfg)
		m.Nodes[0].Dram.Poke(8<<20, []byte{0})
		const rounds = 8
		incr := func(p *sim.Proc, a *API) {
			var b [1]byte
			a.ScomaLoad(p, 0, b[:])
			b[0]++
			a.ScomaStore(p, 0, b[:])
		}
		m.Go(0, "w0", func(p *sim.Proc, a *API) {
			for i := 0; i < rounds; i++ {
				incr(p, a)
				a.SendBasic(p, 1, []byte{1})
				a.RecvBasic(p)
			}
		})
		m.Go(1, "w1", func(p *sim.Proc, a *API) {
			for i := 0; i < rounds; i++ {
				a.RecvBasic(p)
				incr(p, a)
				a.SendBasic(p, 0, []byte{1})
			}
		})
		m.Run()
		var v [1]byte
		m.Go(0, "check", func(p *sim.Proc, a *API) { a.ScomaLoad(p, 0, v[:]) })
		dur = m.Eng.Now()
		m.Run()
		if v[0] != 2*rounds {
			t.Fatalf("migratory=%v: counter=%d want %d", migratory, v[0], 2*rounds)
		}
		return m.Scomas[0].Stats().GetXs, dur
	}
	gx0, d0 := run(false)
	gx1, d1 := run(true)
	if gx1 >= gx0 {
		t.Fatalf("migratory did not cut upgrades: %d vs %d", gx1, gx0)
	}
	if d1 >= d0 {
		t.Fatalf("migratory did not cut time: %v vs %v", d1, d0)
	}
	t.Logf("GetX: %d -> %d, time: %v -> %v", gx0, gx1, d0, d1)
}

func TestScomaEvictWritesBackDirtyData(t *testing.T) {
	m := NewMachine(2)
	// Line 0 homed on node 0; node 1 writes it, evicts it, then node 0
	// reads: the dirty data must have survived the round trip through the
	// home backing copy.
	var got [8]byte
	m.Go(1, "writer", func(p *sim.Proc, a *API) {
		a.ScomaStore(p, 0, []byte("dirtyevt"))
		a.ScomaEvict(p, 0, 32)
		// Wait for the eviction to settle, then signal the reader.
		p.Delay(20_000)
		a.SendBasic(p, 0, []byte("go"))
	})
	m.Go(0, "reader", func(p *sim.Proc, a *API) {
		a.RecvBasic(p)
		a.ScomaLoad(p, 0, got[:])
	})
	m.Run()
	if !bytes.Equal(got[:], []byte("dirtyevt")) {
		t.Fatalf("data lost through eviction: %q", got)
	}
	if m.Scomas[0].Stats().Evicts != 1 {
		t.Fatalf("stats %+v", m.Scomas[0].Stats())
	}
	// Node 1's copy must be gone: its cls state is Invalid again.
	if st := m.Nodes[1].ClsSram.Get(0); st.String() != "inv" {
		t.Fatalf("evicted line state %v", st)
	}
	// Home backing must hold the data (node 0's DRAM at the backing base).
	var back [8]byte
	m.Nodes[0].Dram.Peek(8<<20, back[:])
	if !bytes.Equal(back[:], []byte("dirtyevt")) {
		t.Fatalf("backing copy %q", back)
	}
}

func TestScomaEvictCleanSharer(t *testing.T) {
	m := NewMachine(2)
	m.Nodes[0].Dram.Poke(8<<20, []byte("original"))
	m.Go(1, "sharer", func(p *sim.Proc, a *API) {
		var b [8]byte
		a.ScomaLoad(p, 0, b[:]) // become a sharer
		a.ScomaEvict(p, 0, 32)
		p.Delay(20_000)
		// Re-reading after eviction must miss and fetch again, correctly.
		var b2 [8]byte
		a.ScomaLoad(p, 0, b2[:])
		if !bytes.Equal(b2[:], []byte("original")) {
			t.Errorf("refetch after evict got %q", b2)
		}
	})
	m.Run()
	if m.Scomas[0].Stats().Evicts != 1 {
		t.Fatalf("stats %+v", m.Scomas[0].Stats())
	}
}

func TestScomaEvictUntouchedLineIsNoop(t *testing.T) {
	m := NewMachine(2)
	m.Go(1, "e", func(p *sim.Proc, a *API) {
		a.ScomaEvict(p, 64, 32) // line nobody holds
	})
	m.Run()
	if m.Scomas[0].Stats().Evicts != 1 {
		t.Fatalf("evict not processed: %+v", m.Scomas[0].Stats())
	}
}
