package core

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"startvoyager/internal/sim"
)

// TestScomaRandomAccessCoherence drives the directory protocol with random
// reads and writes from every node, synchronized by message barriers into
// phases, and checks the shared state against a reference model. Each phase
// one randomly chosen node writes random lines; then everyone reads random
// lines and verifies.
func TestScomaRandomAccessCoherence(t *testing.T) {
	const (
		nodes  = 4
		lines  = 16
		phases = 6
	)
	rng := rand.New(rand.NewSource(7))
	m := NewMachine(nodes)
	// Reference model of the shared space.
	ref := make([]byte, lines*32)
	// Plan all phases up front so every node agrees without cheating.
	type phase struct {
		writer int
		writes map[int]byte // line -> fill byte
		reads  [][]int      // per node: lines to read
	}
	plan := make([]phase, phases)
	for ph := range plan {
		w := map[int]byte{}
		for i := 0; i < 3; i++ {
			w[rng.Intn(lines)] = byte(rng.Intn(255) + 1)
		}
		reads := make([][]int, nodes)
		for n := range reads {
			for i := 0; i < 4; i++ {
				reads[n] = append(reads[n], rng.Intn(lines))
			}
		}
		plan[ph] = phase{writer: rng.Intn(nodes), writes: w, reads: reads}
	}

	// Coordinator barrier over Basic messages: everyone reports to node 0,
	// node 0 releases everyone. (Counting is safe: a phase-k+1 "arrived"
	// cannot exist until node 0 has released phase k.)
	barrier := func(p *sim.Proc, a *API) {
		if a.NodeID() == 0 {
			for i := 0; i < nodes-1; i++ {
				a.RecvBasic(p)
			}
			for i := 1; i < nodes; i++ {
				a.SendBasic(p, i, []byte{0x60})
			}
			return
		}
		a.SendBasic(p, 0, []byte{0xBB})
		a.RecvBasic(p)
	}

	errs := make(chan string, nodes*phases*8)
	for id := 0; id < nodes; id++ {
		id := id
		m.Go(id, "worker", func(p *sim.Proc, a *API) {
			for ph, phz := range plan {
				if phz.writer == id {
					for line, val := range phz.writes {
						buf := bytes.Repeat([]byte{val}, 32)
						a.ScomaStore(p, uint32(line*32), buf)
					}
				}
				barrier(p, a)
				for _, line := range phz.reads[id] {
					buf := make([]byte, 32)
					a.ScomaLoad(p, uint32(line*32), buf)
					// Compute expectation at read time from the plan.
					want := byte(0)
					for q := 0; q <= ph; q++ {
						if v, ok := plan[q].writes[line]; ok {
							want = v
						}
					}
					for _, b := range buf {
						if b != want {
							errs <- string(rune('0'+id)) + ": stale line"
							break
						}
					}
				}
				barrier(p, a)
			}
		})
	}
	// Maintain the reference (for documentation; the check above recomputes
	// from the plan directly).
	for _, phz := range plan {
		for line, val := range phz.writes {
			copy(ref[line*32:], bytes.Repeat([]byte{val}, 32))
		}
	}
	m.Run()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestExpressOverflowDrops(t *testing.T) {
	// Express receive queues drop on overflow (Drop policy): flooding more
	// messages than the queue holds without draining must lose some, and
	// the drop counter must say so.
	m := NewMachine(2)
	const flood = 64 // queue holds 32
	m.Go(0, "flood", func(p *sim.Proc, a *API) {
		for i := 0; i < flood; i++ {
			a.SendExpress(p, 1, []byte{byte(i), 1, 2, 3, 4})
		}
	})
	m.Run()
	got := 0
	m.Go(1, "drain", func(p *sim.Proc, a *API) {
		for {
			if _, _, ok := a.TryRecvExpress(p); !ok {
				break
			}
			got++
		}
	})
	m.Run()
	if got == 0 || got > 32 {
		t.Fatalf("drained %d", got)
	}
	if m.Nodes[1].Ctrl.Stats().RxDrops == 0 {
		t.Fatal("no drops recorded")
	}
}

func TestManyToOneHotspot(t *testing.T) {
	// 15 senders hammer one receiver on a 16-node fat tree. Everything must
	// arrive (Hold backpressure, no drops on Basic queues) and per-sender
	// FIFO order must hold.
	const nodes = 16
	const per = 12
	m := NewMachine(nodes)
	type rec struct{ src, seq int }
	var got []rec
	m.Go(0, "sink", func(p *sim.Proc, a *API) {
		for len(got) < (nodes-1)*per {
			if src, pl, ok := a.TryRecvBasic(p); ok {
				got = append(got, rec{src, int(binary.BigEndian.Uint32(pl))})
			}
		}
	})
	for i := 1; i < nodes; i++ {
		m.Go(i, "src", func(p *sim.Proc, a *API) {
			for k := 0; k < per; k++ {
				var b [4]byte
				binary.BigEndian.PutUint32(b[:], uint32(k))
				a.SendBasic(p, 0, b[:])
			}
		})
	}
	m.Run()
	lastSeq := map[int]int{}
	for _, r := range got {
		if last, ok := lastSeq[r.src]; ok && r.seq != last+1 {
			t.Fatalf("sender %d out of order: %d after %d", r.src, r.seq, last)
		}
		lastSeq[r.src] = r.seq
	}
	if len(lastSeq) != nodes-1 {
		t.Fatalf("only %d senders heard", len(lastSeq))
	}
	if drops := m.Nodes[0].Ctrl.Stats().RxDrops; drops != 0 {
		t.Fatalf("%d drops under Hold policy", drops)
	}
}

func TestNumaConcurrentClients(t *testing.T) {
	// Several nodes hammer the same home segment with disjoint words; every
	// write must land and every read must see its own writes.
	const nodes = 4
	m := NewMachine(nodes)
	okness := make([]bool, nodes)
	for id := 1; id < nodes; id++ {
		id := id
		m.Go(id, "client", func(p *sim.Proc, a *API) {
			// All offsets homed on node 0 (segment 0), disjoint per client.
			base := uint32(id * 256)
			for k := 0; k < 8; k++ {
				var w [8]byte
				binary.BigEndian.PutUint64(w[:], uint64(id)<<32|uint64(k))
				a.NumaStore(p, base+uint32(k*8), w[:])
			}
			ok := true
			for k := 0; k < 8; k++ {
				var r [8]byte
				a.NumaLoad(p, base+uint32(k*8), r[:])
				if binary.BigEndian.Uint64(r[:]) != uint64(id)<<32|uint64(k) {
					ok = false
				}
			}
			okness[id] = ok
		})
	}
	m.Run()
	for id := 1; id < nodes; id++ {
		if !okness[id] {
			t.Fatalf("client %d saw wrong data", id)
		}
	}
}
