package core

import (
	"fmt"

	"startvoyager/internal/sim"
)

// noDeadline marks a wait with no bound: the legacy blocking calls pass it so
// both variants share one code path. (Negative, and written in units so the
// simtimeunits analyzer stays happy.)
const noDeadline = -sim.Nanosecond

// TimeoutError reports that a bounded wait elapsed without the awaited event.
// A dead or partitioned peer surfaces as this error instead of an unbounded
// spin — the graceful-degradation contract of the *Timeout API variants.
type TimeoutError struct {
	Op      string   // the API operation that timed out
	Timeout sim.Time // the bound that elapsed
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("core: %s timed out after %v of simulated time", e.Op, e.Timeout)
}

// IsTimeout reports whether err is a core timeout.
func IsTimeout(err error) bool {
	_, ok := err.(*TimeoutError)
	return ok
}

// pollWait drives every blocking receive/wait in the package: it retries try
// until it reports success or the timeout elapses (noDeadline = never). Polls
// that consume no simulated time (e.g. fully local checks) are self-paced so
// a spinning aP cannot monopolize the simulation instant. Callers pass
// prebound method values of pooled records, not fresh closures, so try
// itself costs nothing on the hot path.
//
//voyager:noalloc
func (a *API) pollWait(p *sim.Proc, op string, timeout sim.Time, try func() bool) error {
	deadline := p.Now() + timeout
	for {
		before := p.Now()
		if try() {
			return nil
		}
		if timeout >= 0 && p.Now() >= deadline {
			return &TimeoutError{Op: op, Timeout: timeout} //voyager:alloc-ok(timeout error on the cold exit)
		}
		if p.Now() == before {
			p.Delay(100 * sim.Nanosecond)
		}
	}
}
