package core

import (
	"encoding/binary"

	"startvoyager/internal/bus"
	"startvoyager/internal/firmware"
	"startvoyager/internal/niu/biu"
	"startvoyager/internal/node"
	"startvoyager/internal/sim"
)

// Reflective memory (the paper's Shrimp / Memory Channel emulation): writes
// to the reflective window land in local DRAM and are propagated to every
// subscriber node's copy at the same window offset. Three implementation
// modes exist — sP firmware, pure aBIU hardware, and deferred dirty-line
// flushing — selected per node with ReflectConfigure.

// ReflectConfigure programs this node's reflective-memory mode and export
// map (offsets are window-relative). Machine construction must have enabled
// a window (cluster.Config.ReflectSize).
func (a *API) ReflectConfigure(mode biu.ReflectMode, entries []biu.ReflectEntry) {
	a.n.ABIU.ConfigureReflect(mode, entries)
}

// ReflectStore writes data into the reflective window at off: a cached
// store followed by line flushes, so the writes reach the bus where the
// aBIU can observe them (the usual write-through discipline of reflective
// memory systems).
func (a *API) ReflectStore(p *sim.Proc, off uint32, data []byte) {
	defer a.busy("ReflectStore")()
	addr := node.ReflectBase + off
	a.n.Cache.Store(p, addr, data)
	for la := addr &^ (bus.LineSize - 1); la < addr+uint32(len(data)); la += bus.LineSize {
		a.n.Cache.Flush(p, la)
	}
}

// ReflectStoreWord writes up to 8 bytes with a single uncached store (the
// lowest-latency reflective update).
func (a *API) ReflectStoreWord(p *sim.Proc, off uint32, data []byte) {
	defer a.busy("ReflectStoreWord")()
	a.n.Cache.StoreUncached(p, node.ReflectBase+off, data)
}

// ReflectLoad reads the local copy of the reflective window (always local:
// reflective memory reads never cross the network).
func (a *API) ReflectLoad(p *sim.Proc, off uint32, buf []byte) {
	defer a.busy("ReflectLoad")()
	a.n.Cache.Load(p, node.ReflectBase+off, buf)
}

// ReflectLoadUncached reads up to 8 bytes bypassing the cache — the polling
// read for values another node updates (cached copies are invalidated by
// arriving updates, but uncached polls see stores immediately).
func (a *API) ReflectLoadUncached(p *sim.Proc, off uint32, buf []byte) {
	defer a.busy("ReflectLoadUncached")()
	a.n.Cache.LoadUncached(p, node.ReflectBase+off, buf)
}

// ReflectFlush (deferred mode) asks the local sP to propagate the dirty
// lines of [off, off+n); completion arrives on the notification queue with
// the given tag.
func (a *API) ReflectFlush(p *sim.Proc, off uint32, n int, tag uint32) {
	a.SendSvc(p, a.n.ID, firmware.SvcReflectFlush,
		firmware.EncodeFlushRequest(firmware.FlushRequest{Off: off, Len: n, Tag: tag}))
}

// ScomaEvict releases this node's copies of the S-COMA lines covering
// [off, off+n) — the frame-reclaim operation of an attraction-memory cache.
// Dirty lines are written back to their home; the requests are serialized
// through each line's home directory, so eviction cannot race a grant.
func (a *API) ScomaEvict(p *sim.Proc, off uint32, n int) {
	first := off / 32
	last := (off + uint32(n) + 31) / 32
	for line := first; line < last; line++ {
		var body [4]byte
		binary.BigEndian.PutUint32(body[:], line)
		home := firmware.ScomaHome(line, a.NumNodes())
		a.SendSvc(p, home, firmware.SvcScomaEvict, body[:])
	}
}
