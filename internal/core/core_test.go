package core

import (
	"bytes"
	"fmt"
	"testing"

	"startvoyager/internal/cluster"
	"startvoyager/internal/firmware"
	"startvoyager/internal/sim"
)

func newMachine(t *testing.T, nodes int) *Machine {
	t.Helper()
	return NewMachine(nodes)
}

func TestBasicPingPong(t *testing.T) {
	m := newMachine(t, 2)
	var rtt sim.Time
	m.Go(0, "ping", func(p *sim.Proc, a *API) {
		start := p.Now()
		a.SendBasic(p, 1, []byte("ping"))
		src, pl := a.RecvBasic(p)
		rtt = p.Now() - start
		if src != 1 || !bytes.Equal(pl, []byte("pong")) {
			t.Errorf("got %d %q", src, pl)
		}
	})
	m.Go(1, "pong", func(p *sim.Proc, a *API) {
		src, pl := a.RecvBasic(p)
		if src != 0 || !bytes.Equal(pl, []byte("ping")) {
			t.Errorf("got %d %q", src, pl)
		}
		a.SendBasic(p, 0, []byte("pong"))
	})
	m.Run()
	if rtt == 0 {
		t.Fatal("ping-pong did not complete")
	}
	// Sanity: a round trip on this machine should be microseconds, not
	// milliseconds (catching gross timing regressions).
	if rtt > 50*sim.Microsecond {
		t.Fatalf("rtt = %v, implausibly slow", rtt)
	}
	t.Logf("basic rtt = %v", rtt)
}

func TestBasicManyMessagesInOrder(t *testing.T) {
	m := newMachine(t, 2)
	const count = 100 // several times the queue depth
	m.Go(0, "sender", func(p *sim.Proc, a *API) {
		for i := 0; i < count; i++ {
			a.SendBasic(p, 1, []byte(fmt.Sprintf("m%03d", i)))
		}
	})
	var got []string
	m.Go(1, "receiver", func(p *sim.Proc, a *API) {
		for i := 0; i < count; i++ {
			_, pl := a.RecvBasic(p)
			got = append(got, string(pl))
		}
	})
	m.Run()
	if len(got) != count {
		t.Fatalf("received %d of %d", len(got), count)
	}
	for i, s := range got {
		if s != fmt.Sprintf("m%03d", i) {
			t.Fatalf("out of order at %d: %q", i, s)
		}
	}
}

func TestExpressPingPong(t *testing.T) {
	m := newMachine(t, 2)
	done := false
	m.Go(0, "ping", func(p *sim.Proc, a *API) {
		a.SendExpress(p, 1, []byte{1, 2, 3, 4, 5})
		src, pl := a.RecvExpress(p)
		if src != 1 || pl != [5]byte{5, 4, 3, 2, 1} {
			t.Errorf("got %d %v", src, pl)
		}
		done = true
	})
	m.Go(1, "pong", func(p *sim.Proc, a *API) {
		src, pl := a.RecvExpress(p)
		if src != 0 || pl != [5]byte{1, 2, 3, 4, 5} {
			t.Errorf("got %d %v", src, pl)
		}
		a.SendExpress(p, 0, []byte{5, 4, 3, 2, 1})
	})
	m.Run()
	if !done {
		t.Fatal("express ping-pong did not complete")
	}
}

func TestExpressCheaperThanBasic(t *testing.T) {
	// The paper's point of Express: one uncached store versus compose +
	// flush + pointer update. Compare one-way aP send occupancy.
	m := newMachine(t, 2)
	var basicCost, expressCost sim.Time
	m.Go(0, "sender", func(p *sim.Proc, a *API) {
		start := a.Node().APMeter.BusyTime()
		a.SendBasic(p, 1, []byte("12345"))
		basicCost = a.Node().APMeter.BusyTime() - start
		start = a.Node().APMeter.BusyTime()
		a.SendExpress(p, 1, []byte("12345"))
		expressCost = a.Node().APMeter.BusyTime() - start
	})
	m.Run()
	if expressCost >= basicCost {
		t.Fatalf("express send (%v) not cheaper than basic send (%v)", expressCost, basicCost)
	}
	t.Logf("send occupancy: basic=%v express=%v", basicCost, expressCost)
}

func TestTagOn(t *testing.T) {
	m := newMachine(t, 2)
	tag := bytes.Repeat([]byte{0xAB}, 48)
	m.Go(0, "sender", func(p *sim.Proc, a *API) {
		a.StageASram(p, 0x8000, tag)
		a.SendTagOn(p, 1, []byte("hdr"), 0x8000, 48)
	})
	var got []byte
	m.Go(1, "receiver", func(p *sim.Proc, a *API) {
		_, got = a.RecvBasic(p)
	})
	m.Run()
	if len(got) != 3+48 {
		t.Fatalf("payload %d bytes", len(got))
	}
	if !bytes.Equal(got[:3], []byte("hdr")) || !bytes.Equal(got[3:], tag) {
		t.Fatal("tagon payload wrong")
	}
}

func TestDmaPush(t *testing.T) {
	m := newMachine(t, 2)
	const size = 32 << 10 // multiple pages
	src := make([]byte, size)
	for i := range src {
		src[i] = byte(i*13 + 7)
	}
	m.API(0).Poke(0x10_0000, src)
	var notifySrc int
	var notifyPl []byte
	m.Go(0, "sender", func(p *sim.Proc, a *API) {
		a.DmaPush(p, 1, 0x10_0000, 0x20_0000, size, 0xCAFE)
	})
	m.Go(1, "receiver", func(p *sim.Proc, a *API) {
		notifySrc, notifyPl = a.RecvNotify(p)
	})
	m.Run()
	if notifyPl == nil {
		t.Fatal("no completion notification")
	}
	_ = notifySrc
	got := make([]byte, size)
	m.API(1).Peek(0x20_0000, got)
	if !bytes.Equal(got, src) {
		t.Fatal("DMA data corrupted")
	}
	if m.Dmas[0].Stats().Transfers != 1 {
		t.Fatalf("dma stats %+v", m.Dmas[0].Stats())
	}
}

func TestDmaPull(t *testing.T) {
	m := newMachine(t, 2)
	const size = 4096
	src := make([]byte, size)
	for i := range src {
		src[i] = byte(i ^ 0x5A)
	}
	m.API(1).Poke(0x30_0000, src) // data lives on node 1
	m.Go(0, "puller", func(p *sim.Proc, a *API) {
		a.Dma(p, firmware.DmaRequest{Pull: true, PeerNode: 1,
			SrcAddr: 0x30_0000, DstAddr: 0x40_0000, Len: size, Tag: 1})
		a.RecvNotify(p) // we are the destination of the push back
	})
	m.Run()
	got := make([]byte, size)
	m.API(0).Peek(0x40_0000, got)
	if !bytes.Equal(got, src) {
		t.Fatal("DMA pull data corrupted")
	}
}

func TestNumaRemoteAccess(t *testing.T) {
	m := newMachine(t, 2)
	// NUMA segment 1MB per node, homed at NumaLocalBase (4MB) in each DRAM.
	// Offset 1MB+64 is homed on node 1.
	off := uint32(1<<20 + 64)
	m.Nodes[1].Dram.Poke(4<<20+64, []byte("remote64"))
	var got [8]byte
	m.Go(0, "reader", func(p *sim.Proc, a *API) {
		a.NumaLoad(p, off, got[:])
		a.NumaStore(p, off, []byte("written!"))
		// Read back through the window again (fill was consumed).
		a.NumaLoad(p, off, got[:])
	})
	m.Run()
	if !bytes.Equal(got[:], []byte("written!")) {
		t.Fatalf("got %q", got)
	}
	back := make([]byte, 8)
	m.Nodes[1].Dram.Peek(4<<20+64, back)
	if !bytes.Equal(back, []byte("written!")) {
		t.Fatalf("home memory %q", back)
	}
	if m.Numas[0].Stats().Reads != 2 || m.Numas[1].Stats().HomeReads != 2 {
		t.Fatalf("numa stats %+v %+v", m.Numas[0].Stats(), m.Numas[1].Stats())
	}
}

func TestScomaReadSharing(t *testing.T) {
	m := newMachine(t, 4)
	// Global line 0 is homed on node 0; its backing copy lives there.
	m.Nodes[0].Dram.Poke(8<<20, []byte("sharedln"))
	results := make([][]byte, 4)
	for i := 0; i < 4; i++ {
		i := i
		m.Go(i, "reader", func(p *sim.Proc, a *API) {
			buf := make([]byte, 8)
			a.ScomaLoad(p, 0, buf)
			results[i] = buf
		})
	}
	m.Run()
	for i, r := range results {
		if !bytes.Equal(r, []byte("sharedln")) {
			t.Fatalf("node %d read %q", i, r)
		}
	}
}

func TestScomaWriteInvalidatesSharers(t *testing.T) {
	m := newMachine(t, 2)
	m.Nodes[0].Dram.Poke(8<<20, bytes.Repeat([]byte{0}, 32))
	var after []byte
	m.Go(0, "writer", func(p *sim.Proc, a *API) {
		buf := make([]byte, 8)
		a.ScomaLoad(p, 0, buf) // both nodes share the line first
		a.Compute(p, 20000)
		a.ScomaStore(p, 0, []byte("newdata!")) // upgrade: invalidates node 1
		// Publish: a barrier message tells node 1 to re-read.
		a.SendBasic(p, 1, []byte("go"))
	})
	m.Go(1, "reader", func(p *sim.Proc, a *API) {
		buf := make([]byte, 8)
		a.ScomaLoad(p, 0, buf)
		a.RecvBasic(p) // wait for the writer's signal
		fresh := make([]byte, 8)
		a.ScomaLoad(p, 0, fresh)
		after = fresh
	})
	m.Run()
	if !bytes.Equal(after, []byte("newdata!")) {
		t.Fatalf("reader saw %q after invalidation", after)
	}
}

func TestScomaExclusiveMigration(t *testing.T) {
	// The line migrates between two writers; each increments a counter.
	m := newMachine(t, 2)
	m.Nodes[0].Dram.Poke(8<<20, []byte{0})
	const rounds = 6
	incr := func(p *sim.Proc, a *API) {
		var b [1]byte
		a.ScomaLoad(p, 0, b[:])
		b[0]++
		a.ScomaStore(p, 0, b[:])
	}
	m.Go(0, "w0", func(p *sim.Proc, a *API) {
		for i := 0; i < rounds; i++ {
			incr(p, a)
			a.SendBasic(p, 1, []byte("t")) // pass the token
			a.RecvBasic(p)
		}
	})
	m.Go(1, "w1", func(p *sim.Proc, a *API) {
		for i := 0; i < rounds; i++ {
			a.RecvBasic(p)
			incr(p, a)
			a.SendBasic(p, 0, []byte("t"))
		}
	})
	m.Run()
	// Final value must be 2*rounds wherever the line ended up; read it back
	// through either node's window by checking the exclusive owner's frame.
	var v [1]byte
	m.Go(0, "check", func(p *sim.Proc, a *API) { a.ScomaLoad(p, 0, v[:]) })
	m.Run()
	if v[0] != 2*rounds {
		t.Fatalf("counter = %d, want %d", v[0], 2*rounds)
	}
}

func TestOccupancyMetering(t *testing.T) {
	m := newMachine(t, 2)
	m.Go(0, "w", func(p *sim.Proc, a *API) {
		a.Compute(p, 1000)
		a.SendBasic(p, 1, []byte("x"))
	})
	m.Go(1, "r", func(p *sim.Proc, a *API) { a.RecvBasic(p) })
	m.Run()
	ap0 := m.Nodes[0].APMeter.BusyTime()
	if ap0 < 1000 {
		t.Fatalf("aP0 busy %v, below compute time", ap0)
	}
	// The sP never ran application work here, but firmware may have been
	// idle; basic messaging must not consume sP time at all.
	if sp := m.Nodes[0].FW.BusyTime(); sp != 0 {
		t.Fatalf("sP0 busy %v on pure hardware messaging", sp)
	}
}

func TestBigMachine(t *testing.T) {
	// All-to-one on 8 nodes; exercises the fat tree + queue backpressure.
	m := newMachine(t, 8)
	received := 0
	m.Go(0, "sink", func(p *sim.Proc, a *API) {
		for received < 7*10 {
			if _, _, ok := a.TryRecvBasic(p); ok {
				received++
			}
		}
	})
	for i := 1; i < 8; i++ {
		m.Go(i, "src", func(p *sim.Proc, a *API) {
			for k := 0; k < 10; k++ {
				a.SendBasic(p, 0, []byte{byte(a.NodeID()), byte(k)})
			}
		})
	}
	m.Run()
	if received != 70 {
		t.Fatalf("received %d", received)
	}
}

func TestDirectNetVariant(t *testing.T) {
	cfg := cluster.DefaultConfig(2)
	cfg.DirectNet = true
	m := NewMachineConfig(cfg)
	done := false
	m.Go(0, "s", func(p *sim.Proc, a *API) { a.SendBasic(p, 1, []byte("d")) })
	m.Go(1, "r", func(p *sim.Proc, a *API) {
		_, pl := a.RecvBasic(p)
		done = bytes.Equal(pl, []byte("d"))
	})
	m.Run()
	if !done {
		t.Fatal("direct-net machine failed")
	}
}
