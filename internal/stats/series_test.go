package stats

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"startvoyager/internal/sim"
)

func TestSeriesWindowEdges(t *testing.T) {
	s := NewSeries(100)
	s.Observe(0, 5)    // window 0: [0, 100)
	s.Observe(99, 7)   // window 0
	s.Observe(100, 11) // exactly on the edge: window 1, never window 0
	s.Observe(199, 1)  // window 1
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if w := s.At(0); w.Count != 2 || w.Min != 5 || w.Max != 7 || w.Sum != 12 {
		t.Fatalf("window 0 = %+v", w)
	}
	if w := s.At(1); w.Count != 2 || w.Min != 1 || w.Max != 11 || w.Sum != 12 {
		t.Fatalf("window 1 = %+v", w)
	}
}

func TestSeriesEmptyWindows(t *testing.T) {
	s := NewSeries(10)
	s.Observe(5, 1)
	s.Observe(35, 2) // windows 1 and 2 are materialized empty
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	for _, i := range []int{1, 2} {
		if w := s.At(i); w != (Window{}) {
			t.Fatalf("gap window %d = %+v, want empty", i, w)
		}
	}
	if w := s.At(3); w.Count != 1 || w.Sum != 2 {
		t.Fatalf("window 3 = %+v", w)
	}
}

func TestSeriesNegativeValues(t *testing.T) {
	s := NewSeries(10)
	s.Observe(1, -4)
	s.Observe(2, -9)
	if w := s.At(0); w.Min != -9 || w.Max != -4 || w.Sum != -13 || w.Count != 2 {
		t.Fatalf("window 0 = %+v", w)
	}
}

func TestSeriesBackwardsObservePanics(t *testing.T) {
	s := NewSeries(10)
	s.Observe(25, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on backwards observation")
		}
	}()
	s.Observe(5, 1)
}

// sampleMachine builds a registry with one metric of every kind plus an
// event-driven workload that moves them, and a sampler over it.
func sampleMachine(t *testing.T, cfg SamplerConfig) (*sim.Engine, *Sampler) {
	t.Helper()
	eng := sim.NewEngine()
	reg := NewRegistry()
	c := &Counter{}
	reg.Counter("packets", c)
	depth := int64(0)
	reg.Gauge("depth", func() int64 { return depth })
	m := NewMeter(eng, "link")
	reg.Meter("busy", m)
	var acc sim.Time
	reg.Time("elapsed", func() sim.Time { return acc })
	h := NewHistogram(10, 100, 1000)
	reg.Histogram("lat", h)

	for i := sim.Time(1); i <= 40; i++ {
		at := i * 25 // events at 25, 50, ... 1000
		eng.At(at, func() {
			c.Add(8)
			depth++
			acc += 5
			h.Observe(int64(at % 150))
		})
	}
	eng.At(10, func() { m.Start() })
	eng.At(910, func() { m.Stop() })

	s := NewSampler(eng, reg, cfg)
	return eng, s
}

func TestSamplerWindows(t *testing.T) {
	eng, s := sampleMachine(t, SamplerConfig{Window: 200, Scrapes: 4})
	s.Start()
	eng.Run()
	s.Finish()

	if got := s.Windows(); got != 5 {
		t.Fatalf("windows = %d, want 5", got)
	}
	doc := s.Doc(nil)
	pk := doc.Series["packets"]
	// A boundary scrape runs before events scheduled exactly on it, so
	// window k captures exactly the events of [k*200, (k+1)*200): window 0
	// sees 25..175 (7 events), full windows see 8, and the event at 1000 —
	// the first instant of a window the run never enters — is deliberately
	// outside the recorded range.
	want := []int64{7, 8, 8, 8, 8}
	for i, w := range want {
		if pk.Sum[i] != w {
			t.Fatalf("packets sum[%d] = %d, want %d (%v)", i, pk.Sum[i], w, pk.Sum)
		}
	}
	// Gauge: depth rises monotonically; per-window max is the value at the
	// window-closing scrape.
	dp := doc.Series["depth"]
	for i := 1; i < len(dp.Max); i++ {
		if dp.Max[i] < dp.Max[i-1] {
			t.Fatalf("gauge max not monotonic: %v", dp.Max)
		}
	}
	// Meter: busy 10..910 -> full middle windows saturate at 200ns.
	bz := doc.Series["busy"]
	if bz.Sum[1] != 200 || bz.Sum[2] != 200 {
		t.Fatalf("busy sums = %v", bz.Sum)
	}
	// Histogram quantiles exist per window.
	lt := doc.Series["lat"]
	if len(lt.P50) != 5 || len(lt.P99) != 5 || len(lt.P999) != 5 {
		t.Fatalf("quantile lengths %d/%d/%d", len(lt.P50), len(lt.P99), len(lt.P999))
	}
	for i, c := range lt.Count {
		if c > 0 && lt.P50[i] == 0 {
			t.Fatalf("window %d has %d samples but p50 0: %v", i, c, lt.P50)
		}
	}
}

func TestSamplerPartialFinalWindow(t *testing.T) {
	eng, s := sampleMachine(t, SamplerConfig{Window: 300, Scrapes: 3})
	s.Start()
	eng.Run() // run ends at 1000: windows [0,300) [300,600) [600,900) [900,1000 partial)
	s.Finish()
	if got := s.Windows(); got != 4 {
		t.Fatalf("windows = %d, want 4", got)
	}
	doc := s.Doc(nil)
	pk := doc.Series["packets"]
	// Partial final window [900, 1000): the scrape at 1000 runs before the
	// event at 1000 executes, so it captures 900, 925, 950, 975 — 4 events —
	// and the event at 1000 falls in a window the run never enters.
	if pk.Sum[3] != 4 {
		t.Fatalf("partial window sum = %d, want 4 (%v)", pk.Sum[3], pk.Sum)
	}
}

func TestSamplerExportDeterministic(t *testing.T) {
	render := func() []byte {
		eng, s := sampleMachine(t, SamplerConfig{Window: 200})
		s.Start()
		eng.Run()
		s.Finish()
		var buf bytes.Buffer
		if err := s.WriteJSON(&buf, &RunMeta{Tool: "test", Nodes: 1, Seed: 42, SimTimeNs: int64(eng.Now())}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatal("series export differs across identical runs")
	}
	doc, err := ParseSeries(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Run == nil || doc.Run.Seed != 42 {
		t.Fatalf("run meta round-trip: %+v", doc.Run)
	}
	if doc.Windows != 5 || len(doc.Series) != 5 {
		t.Fatalf("doc windows=%d series=%d", doc.Windows, len(doc.Series))
	}
}

func TestSeriesExportGolden(t *testing.T) {
	eng, s := sampleMachine(t, SamplerConfig{Window: 200})
	s.Start()
	eng.Run()
	s.Finish()
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf, &RunMeta{Tool: "series-test", Mechanism: "basic", Nodes: 1, Seed: 7, SimTimeNs: int64(eng.Now())}); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "series.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("series JSON differs from golden (run with -update to refresh):\n%s", buf.String())
	}
}

// TestSamplerScrapeAllocFree pins the scrape path at zero allocations per
// tick once capacity is Reserve'd — the noalloc discipline the
// //voyager:noalloc marks on scrape/closeWindow declare and voyager-vet
// checks statically.
func TestSamplerScrapeAllocFree(t *testing.T) {
	eng := sim.NewEngine()
	reg := NewRegistry()
	c := &Counter{}
	reg.Counter("c", c)
	reg.Gauge("g", func() int64 { return 3 })
	reg.Meter("m", NewMeter(eng, "m"))
	reg.Time("t", func() sim.Time { return 0 })
	h := NewHistogram(ExpBounds(10, 2, 8)...)
	reg.Histogram("h", h)

	s := NewSampler(eng, reg, SamplerConfig{Window: 1000, Scrapes: 4})
	s.Reserve(2048)
	at := sim.Time(0)
	// Warm one tick so the method-value hook and any lazy state exist.
	at += 250
	s.tick(at)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(16)
		h.Observe(int64(at))
		at += 250
		s.tick(at)
	})
	if allocs != 0 {
		t.Fatalf("sampler tick allocates %.1f/op, want 0", allocs)
	}
}

func TestSamplerConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	reg := NewRegistry()
	for _, cfg := range []SamplerConfig{
		{Window: 0},
		{Window: -5},
		{Window: 100, Scrapes: 3}, // 100 % 3 != 0
		{Window: 100, Scrapes: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %+v did not panic", cfg)
				}
			}()
			NewSampler(eng, reg, cfg)
		}()
	}
}
