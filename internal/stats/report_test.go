package stats

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// reportDoc builds a small synthetic series document exercising every report
// section: link busy/stall/queued series, a queue depth gauge, fault
// counters, and a histogram with quantiles.
func reportDoc() *SeriesDoc {
	n := 6
	mk := func(kind string, sums ...int64) *SeriesData {
		d := &SeriesData{
			Kind: kind,
			Min:  make([]int64, n), Max: make([]int64, n),
			Sum: make([]int64, n), Count: make([]uint64, n),
		}
		for i, s := range sums {
			d.Sum[i] = s
			d.Max[i] = s
			d.Min[i] = s
			if s != 0 {
				d.Count[i] = 1
			}
		}
		return d
	}
	hist := mk("histogram", 3, 5, 0, 2, 7, 1)
	hist.P50 = []int64{100, 200, 0, 100, 400, 100}
	hist.P99 = []int64{400, 800, 0, 200, 1600, 100}
	hist.P999 = []int64{400, 800, 0, 200, 3200, 100}
	return &SeriesDoc{
		Schema:   SeriesSchema,
		Run:      &RunMeta{Tool: "report-test", Mechanism: "reliable", Nodes: 4, Seed: 7, FaultPlan: "seed=7,drop=0.05", SimTimeNs: 60000},
		WindowNs: 10000,
		Scrapes:  4,
		Windows:  n,
		Series: map[string]*SeriesData{
			"net/link/inj0/busy":          mk("time", 4000, 9000, 10000, 10000, 2000, 0),
			"net/link/inj0/credit_stalls": mk("counter", 0, 2, 5, 3, 0, 0),
			"net/link/inj0/queued":        mk("gauge", 1, 3, 4, 4, 1, 0),
			"net/link/ej1/busy":           mk("time", 1000, 2000, 3000, 1000, 0, 0),
			"net/link/ej1/credit_stalls":  mk("counter", 0, 0, 0, 0, 0, 0),
			"net/link/ej1/queued":         mk("gauge", 0, 1, 1, 0, 0, 0),
			"node0/ctrl/rxq0_depth":       mk("gauge", 2, 6, 8, 8, 3, 0),
			"node0/bus/waiters":           mk("gauge", 0, 1, 2, 1, 0, 0),
			"node0/fw/sp_busy":            mk("time", 1000, 2000, 3000, 2000, 500, 500),
			"node0/fw/sp_idle":            mk("time", 9000, 8000, 7000, 8000, 9500, 9500),
			"node1/fw/sp_busy":            mk("time", 500, 0, 0, 200, 0, 0),
			"node1/fw/sp_idle":            mk("time", 9500, 10000, 10000, 9800, 10000, 10000),
			"node1/fault/retransmits":     mk("gauge", 0, 1, 3, 6, 7, 7),
			"net/fault/injected_drops":    mk("gauge", 0, 1, 2, 4, 5, 5),
			"net/fault/outage_drops":      mk("gauge", 0, 0, 3, 3, 3, 3),
			"net/fault/death_drops":       mk("gauge", 0, 0, 0, 2, 4, 4),
			"net/delivery_latency_ns":     hist,
		},
	}
}

func TestReportGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReport(&buf, reportDoc(), ReportOpts{TopK: 5, Width: 16, Match: "delivery_latency"}); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("report differs from golden (run with -update to refresh):\n%s", buf.String())
	}
}

func TestReportSections(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReport(&buf, reportDoc(), ReportOpts{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"voyager-stats report",
		"tool=report-test",
		`faults="seed=7,drop=0.05"`,
		"hottest links by busy time",
		"credit-stalled links",
		"link utilization heatmap",
		"credit-stall heatmap",
		"deepest queues",
		"sP occupancy by node",
		"stall attribution by window",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report lacks %q", want)
		}
	}
	// Stall attribution: retransmit gauge deltas, not cumulative values.
	if !strings.Contains(out, "retransmits") {
		t.Error("no retransmit column")
	}
}

// TestReportHeatmapTruncation: with more active links than TopK, the
// heatmap keeps the hottest rows and says exactly how many it left out; at
// or under TopK no such line appears (so small-config reports are unchanged).
func TestReportHeatmapTruncation(t *testing.T) {
	n := 4
	doc := &SeriesDoc{Schema: SeriesSchema, WindowNs: 10000, Scrapes: 4, Windows: n,
		Series: map[string]*SeriesData{}}
	for i := 0; i < 12; i++ {
		d := &SeriesData{Kind: "time",
			Min: make([]int64, n), Max: make([]int64, n),
			Sum: make([]int64, n), Count: make([]uint64, n)}
		for w := 0; w < n; w++ {
			d.Sum[w] = int64(100 * (i + 1))
			d.Count[w] = 1
		}
		doc.Series[fmt.Sprintf("net/link/up-l0-w0-j%d/busy", i)] = d
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, doc, ReportOpts{TopK: 5}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(7 more active links omitted") {
		t.Errorf("truncated heatmap lacks the omitted-links line:\n%s", buf.String())
	}

	buf.Reset()
	if err := WriteReport(&buf, doc, ReportOpts{TopK: 12}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "omitted") {
		t.Errorf("untruncated heatmap claims omissions:\n%s", buf.String())
	}
}

func TestReportDeterministic(t *testing.T) {
	render := func() []byte {
		var buf bytes.Buffer
		if err := WriteReport(&buf, reportDoc(), ReportOpts{Match: "net/"}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Fatal("report differs across identical renders")
	}
}

func TestReportEmptyDoc(t *testing.T) {
	doc := &SeriesDoc{Schema: SeriesSchema, WindowNs: 1000, Scrapes: 4, Windows: 0,
		Series: map[string]*SeriesData{}}
	var buf bytes.Buffer
	if err := WriteReport(&buf, doc, ReportOpts{Match: "zzz"}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"no link busy series", "no credit stalls", "no queue depth", "no series matched"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("empty-doc report lacks %q:\n%s", want, buf.String())
		}
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline([]int64{0, 1, 4, 8}, 8); got[0] != ' ' || got[3] != '@' {
		t.Fatalf("sparkline = %q", got)
	}
	// Downsampling keeps peaks: 100 values with one spike still shows '@'.
	vals := make([]int64, 100)
	vals[37] = 50
	if got := sparkline(vals, 10); !strings.Contains(got, "@") {
		t.Fatalf("peak lost in downsample: %q", got)
	}
	if got := len(sparkline(make([]int64, 500), 64)); got != 64 {
		t.Fatalf("width = %d", got)
	}
}

func TestPctTenths(t *testing.T) {
	for _, c := range []struct {
		num, den int64
		want     string
	}{{125, 1000, "12.5%"}, {1, 3, "33.3%"}, {0, 5, "0.0%"}, {5, 0, "0.0%"}, {2000, 1000, "200.0%"}} {
		if got := pctTenths(c.num, c.den); got != c.want {
			t.Errorf("pctTenths(%d,%d) = %q, want %q", c.num, c.den, got, c.want)
		}
	}
}

func TestGaugeWindowDeltas(t *testing.T) {
	d := &SeriesData{
		Max:   []int64{2, 5, 5, 9},
		Count: []uint64{1, 1, 1, 1},
	}
	got := gaugeWindowDeltas(d)
	want := []int64{2, 3, 0, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("deltas = %v, want %v", got, want)
		}
	}
}
