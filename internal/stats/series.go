package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"startvoyager/internal/sim"
)

// This file is the windowed time-series telemetry layer: Series accumulates
// per-window aggregates over fixed simulated-time windows, and Sampler
// scrapes every metric in a Registry on a fixed cadence — driven by the
// engine's out-of-band timer hook, so sampling provably cannot perturb the
// simulation — into a compact, byte-deterministic voyager-series/v1 export.
// Memory is O(series x windows) regardless of message count, which is what
// keeps multi-million-message scale runs diagnosable after the event-level
// trace ring has long since wrapped.

// Window is one fixed-duration aggregation bucket of a Series: the min, max,
// sum, and count of the observations that landed in it. A window with
// Count == 0 recorded nothing; its other fields are zero and meaningless.
type Window struct {
	Min   int64
	Max   int64
	Sum   int64
	Count uint64
}

// Series accumulates observations into fixed-width windows of simulated
// time. Window k covers the half-open interval [k*width, (k+1)*width): an
// observation stamped exactly on a window edge belongs to the window that
// starts there, never the one that ends there. Windows between observations
// are materialized as empty (Count == 0), so index k always means the same
// simulated interval.
type Series struct {
	width sim.Time
	wins  []Window
}

// NewSeries returns an empty series with the given window width (> 0).
func NewSeries(width sim.Time) *Series {
	if width <= 0 {
		panic(fmt.Sprintf("stats: series window width %d, must be > 0", int64(width)))
	}
	return &Series{width: width}
}

// Width returns the window width.
func (s *Series) Width() sim.Time { return s.width }

// Len returns the number of materialized windows.
func (s *Series) Len() int { return len(s.wins) }

// At returns window i.
func (s *Series) At(i int) Window { return s.wins[i] }

// Index returns the window index covering simulated time at.
//
//voyager:noalloc
func (s *Series) Index(at sim.Time) int { return int(at / s.width) }

// Observe records one observation stamped at simulated time at. Time must
// not move backwards across calls. Growth is amortized; for an allocation-
// free steady state, Reserve capacity up front and use add via a Sampler.
func (s *Series) Observe(at sim.Time, v int64) {
	idx := s.Index(at)
	if len(s.wins) > 0 && idx < len(s.wins)-1 {
		panic(fmt.Sprintf("stats: series observation at %v before current window", at))
	}
	s.ensure(idx)
	s.add(idx, v)
}

// Reserve grows the backing array to hold at least n windows without
// further allocation. The sampler calls this once at attach time so the
// scrape path stays at zero allocations for runs up to the reserved length.
func (s *Series) Reserve(n int) {
	if cap(s.wins) >= n {
		return
	}
	w := make([]Window, len(s.wins), n)
	copy(w, s.wins)
	s.wins = w
}

// ensure materializes windows up through idx (gap windows stay empty).
func (s *Series) ensure(idx int) {
	for len(s.wins) <= idx {
		if n := len(s.wins); n < cap(s.wins) {
			s.wins = s.wins[:n+1]
			s.wins[n] = Window{}
		} else {
			s.wins = append(s.wins, Window{})
		}
	}
}

// add folds one observation into window idx, which must already be
// materialized (see ensure/Reserve).
//
//voyager:noalloc
func (s *Series) add(idx int, v int64) {
	w := &s.wins[idx]
	if w.Count == 0 || v < w.Min {
		w.Min = v
	}
	if w.Count == 0 || v > w.Max {
		w.Max = v
	}
	w.Sum += v
	w.Count++
}

// SamplerConfig configures a Sampler.
type SamplerConfig struct {
	// Window is the aggregation window width in simulated time (required).
	Window sim.Time
	// Scrapes is the number of scrapes per window (default 4). Window must
	// divide evenly by it. More scrapes sharpen the per-window min/max of
	// gauges and rate burstiness of counters at proportional scrape cost.
	Scrapes int
}

// sampSeries is the scrape state for one registry entry: where its
// observations accumulate plus the previous-scrape snapshot that turns
// monotonic totals into per-scrape deltas.
type sampSeries struct {
	path  string
	entry *entry
	out   *Series

	prevU uint64   // counter: Events at last scrape
	prevT sim.Time // meter/time: nanoseconds at last scrape

	// Histogram entries additionally keep per-window quantile snapshots,
	// computed at window close from the bucket-count deltas accumulated
	// since the previous close.
	prevBuckets []uint64 // per-bucket counts at last scrape
	curBuckets  []uint64 // deltas accumulated in the open window
	p50         []int64  // one element per closed window
	p99         []int64
	p999        []int64
}

// Sampler scrapes every metric registered in a Registry on a fixed cadence
// into per-metric Series, driven by the engine's timer hook — out-of-band
// with respect to the event queue, so an attached sampler changes no
// simulated outcome (the observer-zero-impact test in internal/workload
// holds it to that).
//
// A scrape at boundary t runs before any event scheduled exactly at t
// executes (see Engine.SetTimerHook), so window k captures exactly the
// half-open interval [k*Window, (k+1)*Window) of simulated activity —
// matching Series.Observe's edge rule. Per scrape, each metric contributes
// one observation to the window the scrape closes over: gauges their instantaneous value,
// counters their event-count delta, meters their busy-time delta, time
// metrics their nanosecond delta, and histograms their observation-count
// delta. A window's Sum is therefore the metric's total movement across the
// window and Max the burstiest scrape interval within it. Histograms also
// record p50/p99/p999 of the samples that arrived within each window
// (nearest-rank over bucket deltas; values are bucket upper bounds, with the
// histogram's running max standing in for the unbounded overflow bucket).
//
// The scrape path is //voyager:noalloc-marked and allocation-free in steady
// state once Reserve has sized the window arrays.
type Sampler struct {
	eng     *sim.Engine
	window  sim.Time
	step    sim.Time
	scrapes int

	series []*sampSeries
	tickFn func(sim.Time)

	lastScrape sim.Time
	closedTo   int // windows [0, closedTo) have quantile snapshots
	finished   bool
}

// NewSampler snapshots reg's current metric set (sorted by path) and
// returns a sampler scraping it every cfg.Window/cfg.Scrapes of simulated
// time. Metrics registered after NewSampler are not scraped. Call Start to
// arm it, Finish after the run, then Doc/WriteJSON to export.
func NewSampler(eng *sim.Engine, reg *Registry, cfg SamplerConfig) *Sampler {
	if cfg.Window <= 0 {
		panic(fmt.Sprintf("stats: sampler window %d, must be > 0", int64(cfg.Window)))
	}
	if cfg.Scrapes == 0 {
		cfg.Scrapes = 4
	}
	if cfg.Scrapes < 1 || cfg.Window%sim.Time(cfg.Scrapes) != 0 {
		panic(fmt.Sprintf("stats: sampler window %d not divisible by %d scrapes",
			int64(cfg.Window), cfg.Scrapes))
	}
	s := &Sampler{
		eng:     eng,
		window:  cfg.Window,
		step:    cfg.Window / sim.Time(cfg.Scrapes),
		scrapes: cfg.Scrapes,
	}
	paths := reg.Paths()
	s.series = make([]*sampSeries, 0, len(paths))
	for _, p := range paths {
		e := reg.root.entries[p]
		ss := &sampSeries{path: p, entry: e, out: NewSeries(cfg.Window)}
		if e.kind == kindHist {
			n := e.hist.NumBuckets()
			ss.prevBuckets = make([]uint64, n)
			ss.curBuckets = make([]uint64, n)
		}
		s.series = append(s.series, ss)
	}
	s.tickFn = s.tick
	return s
}

// Window returns the configured window width.
func (s *Sampler) Window() sim.Time { return s.window }

// Windows returns the number of materialized windows so far.
func (s *Sampler) Windows() int {
	if len(s.series) == 0 {
		return 0
	}
	return s.series[0].out.Len()
}

// Reserve pre-sizes every per-metric series for n windows so the scrape
// path allocates nothing for runs up to n*Window of simulated time.
func (s *Sampler) Reserve(n int) {
	for _, ss := range s.series {
		ss.out.Reserve(n)
		if ss.entry.kind == kindHist {
			ss.p50 = reserveI64(ss.p50, n)
			ss.p99 = reserveI64(ss.p99, n)
			ss.p999 = reserveI64(ss.p999, n)
		}
	}
}

func reserveI64(s []int64, n int) []int64 {
	if cap(s) >= n {
		return s
	}
	out := make([]int64, len(s), n)
	copy(out, s)
	return out
}

// Start arms the engine timer hook at the next scrape boundary. The sampler
// owns the engine's single hook from Start until Finish.
func (s *Sampler) Start() {
	next := (s.eng.Now()/s.step + 1) * s.step
	s.eng.SetTimerHook(next, s.tickFn)
}

// tick is the timer-hook callback: one scrape, a window close when the
// boundary is a window edge, re-arm. Growth (ensure) happens here, outside
// the //voyager:noalloc-marked scrape itself; with Reserve'd capacity the
// whole tick is allocation-free, which the AllocsPerRun pin in
// series_test.go enforces.
func (s *Sampler) tick(at sim.Time) {
	idx := int((at - 1) / s.window)
	s.ensure(idx)
	s.scrape(at, idx)
	s.lastScrape = at
	if at%s.window == 0 {
		s.closeWindow(idx)
	}
	s.eng.SetTimerHook(at+s.step, s.tickFn)
}

// ensure materializes windows through idx on every per-metric series.
func (s *Sampler) ensure(idx int) {
	for _, ss := range s.series {
		ss.out.ensure(idx)
		if ss.entry.kind == kindHist {
			ss.p50 = ensureI64(ss.p50, idx+1)
			ss.p99 = ensureI64(ss.p99, idx+1)
			ss.p999 = ensureI64(ss.p999, idx+1)
		}
	}
}

func ensureI64(s []int64, n int) []int64 {
	for len(s) < n {
		if l := len(s); l < cap(s) {
			s = s[:l+1]
			s[l] = 0
		} else {
			s = append(s, 0)
		}
	}
	return s
}

// scrape folds one observation per metric into window idx.
//
//voyager:noalloc
func (s *Sampler) scrape(at sim.Time, idx int) {
	for _, ss := range s.series {
		e := ss.entry
		var v int64
		switch e.kind {
		case kindGauge:
			v = e.gauge()
		case kindCounter:
			cur := e.counter.Events
			v = int64(cur - ss.prevU)
			ss.prevU = cur
		case kindMeter:
			cur := e.meter.BusyTime()
			v = int64(cur - ss.prevT)
			ss.prevT = cur
		case kindTime:
			cur := e.timeFn()
			v = int64(cur - ss.prevT)
			ss.prevT = cur
		case kindHist:
			var delta uint64
			for i, c := range e.hist.counts {
				d := c - ss.prevBuckets[i]
				ss.curBuckets[i] += d
				ss.prevBuckets[i] = c
				delta += d
			}
			v = int64(delta)
		}
		ss.out.add(idx, v)
	}
}

// closeWindow snapshots per-window histogram quantiles from the bucket
// deltas accumulated since the previous close, then resets the accumulators.
//
//voyager:noalloc
func (s *Sampler) closeWindow(idx int) {
	for _, ss := range s.series {
		if ss.entry.kind != kindHist {
			continue
		}
		h := ss.entry.hist
		var total uint64
		for _, c := range ss.curBuckets {
			total += c
		}
		ss.p50[idx] = bucketQuantile(h, ss.curBuckets, total, 500)
		ss.p99[idx] = bucketQuantile(h, ss.curBuckets, total, 990)
		ss.p999[idx] = bucketQuantile(h, ss.curBuckets, total, 999)
		for i := range ss.curBuckets {
			ss.curBuckets[i] = 0
		}
	}
	s.closedTo = idx + 1
}

// bucketQuantile returns the nearest-rank q/1000 quantile over one window's
// bucket-count deltas. The reported value is the matched bucket's upper
// bound; the unbounded overflow bucket reports the histogram's running max
// (the tightest deterministic bound available without storing samples).
//
//voyager:noalloc
func bucketQuantile(h *Histogram, deltas []uint64, total uint64, q uint64) int64 {
	if total == 0 {
		return 0
	}
	rank := (total*q + 999) / 1000
	var cum uint64
	for i, c := range deltas {
		cum += c
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// Finish completes the export after the run: if simulated time ended
// strictly past the last scrape boundary, the tail interval is scraped into
// its (partial) window; any window without a quantile snapshot is closed;
// the engine hook is disarmed. Observations stamped exactly on the final
// boundary belong to the next window (which the run never entered) and are
// deliberately not folded back. Finish is idempotent.
func (s *Sampler) Finish() {
	if s.finished {
		return
	}
	s.finished = true
	s.eng.SetTimerHook(0, nil)
	now := s.eng.Now()
	if now > s.lastScrape {
		idx := int((now - 1) / s.window)
		s.ensure(idx)
		s.scrape(now, idx)
		s.lastScrape = now
	}
	for s.closedTo < s.Windows() {
		s.closeWindow(s.closedTo)
	}
}

// SeriesData is one metric's exported time series: columnar per-window
// aggregate arrays, all of length SeriesDoc.Windows, plus per-window
// quantile snapshots for histograms.
type SeriesData struct {
	Kind  string   `json:"kind"`
	Min   []int64  `json:"min"`
	Max   []int64  `json:"max"`
	Sum   []int64  `json:"sum"`
	Count []uint64 `json:"count"`
	P50   []int64  `json:"p50,omitempty"`
	P99   []int64  `json:"p99,omitempty"`
	P999  []int64  `json:"p999,omitempty"`
}

// SeriesDoc is the voyager-series/v1 document: the parsed form read by
// voyager-stats and the exact shape Sampler.WriteJSON marshals.
type SeriesDoc struct {
	Schema   string                 `json:"schema"`
	Run      *RunMeta               `json:"run,omitempty"`
	WindowNs int64                  `json:"window_ns"`
	Scrapes  int                    `json:"scrapes_per_window"`
	Windows  int                    `json:"windows"`
	Series   map[string]*SeriesData `json:"series"`
}

// SeriesSchema is the series export's schema identifier.
const SeriesSchema = "voyager-series/v1"

var kindNames = [...]string{
	kindGauge: "gauge", kindCounter: "counter", kindMeter: "meter",
	kindTime: "time", kindHist: "histogram",
}

// Doc assembles the export document. Call Finish first; meta may be nil.
func (s *Sampler) Doc(meta *RunMeta) *SeriesDoc {
	if !s.finished {
		panic("stats: Sampler.Doc before Finish")
	}
	n := s.Windows()
	doc := &SeriesDoc{
		Schema:   SeriesSchema,
		Run:      meta,
		WindowNs: int64(s.window),
		Scrapes:  s.scrapes,
		Windows:  n,
		Series:   make(map[string]*SeriesData, len(s.series)),
	}
	for _, ss := range s.series {
		d := &SeriesData{
			Kind:  kindNames[ss.entry.kind],
			Min:   make([]int64, n),
			Max:   make([]int64, n),
			Sum:   make([]int64, n),
			Count: make([]uint64, n),
		}
		for i := 0; i < n; i++ {
			w := ss.out.At(i)
			d.Min[i], d.Max[i], d.Sum[i], d.Count[i] = w.Min, w.Max, w.Sum, w.Count
		}
		if ss.entry.kind == kindHist {
			d.P50, d.P99, d.P999 = ss.p50[:n:n], ss.p99[:n:n], ss.p999[:n:n]
		}
		doc.Series[ss.path] = d
	}
	return doc
}

// WriteJSON writes the voyager-series/v1 export: one compact JSON document,
// byte-deterministic for a given sampler state (sorted object keys via
// encoding/json, integer values only). Call Finish first; meta may be nil.
func (s *Sampler) WriteJSON(w io.Writer, meta *RunMeta) error {
	out, err := json.Marshal(s.Doc(meta))
	if err != nil {
		return err
	}
	out = append(out, '\n')
	_, err = w.Write(out)
	return err
}

// ParseSeries reads and validates a voyager-series/v1 document.
func ParseSeries(r io.Reader) (*SeriesDoc, error) {
	var doc SeriesDoc
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("stats: parsing series document: %w", err)
	}
	if doc.Schema != SeriesSchema {
		return nil, fmt.Errorf("stats: schema %q, want %q", doc.Schema, SeriesSchema)
	}
	for _, p := range doc.SortedPaths() {
		d := doc.Series[p]
		for _, l := range [][2]int{
			{len(d.Min), doc.Windows}, {len(d.Max), doc.Windows},
			{len(d.Sum), doc.Windows}, {len(d.Count), doc.Windows},
		} {
			if l[0] != l[1] {
				return nil, fmt.Errorf("stats: series %q has %d windows, document says %d", p, l[0], l[1])
			}
		}
	}
	return &doc, nil
}

// SortedPaths returns the document's series paths in sorted order.
func (d *SeriesDoc) SortedPaths() []string {
	out := make([]string, 0, len(d.Series))
	for p := range d.Series {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
