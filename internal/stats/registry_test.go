package stats

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"startvoyager/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

func buildRegistry(eng *sim.Engine) *Registry {
	reg := NewRegistry()
	n0 := reg.Child("node0")
	c := &Counter{}
	c.Add(64)
	c.Add(96)
	n0.Child("bus").Counter("data", c)
	n0.Child("bus").Gauge("retries", func() int64 { return 7 })
	m := NewMeter(eng, "aP0")
	m.Start()
	n0.Meter("aP", m)
	n0.Time("uptime", func() sim.Time { return eng.Now() })
	h := NewHistogram(8, 16, 32)
	h.Observe(8)
	h.Observe(9)
	h.Observe(40)
	reg.Child("net").Histogram("latency", h)
	return reg
}

func TestRegistryGolden(t *testing.T) {
	eng := sim.NewEngine()
	reg := buildRegistry(eng)
	eng.Schedule(250, func() {})
	eng.Run()

	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf, eng.Now()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("metrics JSON differs from golden (run with -update to refresh):\n%s", buf.String())
	}
}

func TestRegistryPathsSorted(t *testing.T) {
	reg := buildRegistry(sim.NewEngine())
	paths := reg.Paths()
	if len(paths) != 5 {
		t.Fatalf("paths %v", paths)
	}
	for i := 1; i < len(paths); i++ {
		if paths[i-1] >= paths[i] {
			t.Fatalf("paths not sorted: %v", paths)
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil || !strings.Contains(r.(string), "duplicate") {
			t.Fatalf("recover = %v", r)
		}
	}()
	reg := NewRegistry()
	reg.Gauge("x", func() int64 { return 0 })
	reg.Gauge("x", func() int64 { return 1 })
}

func TestRegistryBadNamePanics(t *testing.T) {
	for _, bad := range []string{"", "a/b"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("name %q did not panic", bad)
				}
			}()
			NewRegistry().Child(bad)
		}()
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram(10, 20, 40)
	// A sample exactly on a bound lands in that bucket (le semantics);
	// one past it lands in the next.
	h.Observe(10) // bucket 0 (le 10)
	h.Observe(11) // bucket 1 (le 20)
	h.Observe(20) // bucket 1
	h.Observe(40) // bucket 2 (le 40)
	h.Observe(41) // overflow
	h.Observe(-5) // below first bound: bucket 0
	want := []uint64{2, 2, 1, 1}
	for i, w := range want {
		if _, c, _ := h.Bucket(i); c != w {
			t.Fatalf("bucket %d count %d, want %d", i, c, w)
		}
	}
	if h.Count() != 6 || h.Min() != -5 || h.Max() != 41 || h.Sum() != 10+11+20+40+41-5 {
		t.Fatalf("summary count=%d min=%d max=%d sum=%d", h.Count(), h.Min(), h.Max(), h.Sum())
	}
	if _, _, bounded := h.Bucket(3); bounded {
		t.Fatal("overflow bucket reported a bound")
	}
}

func TestHistogramSingleObservationMinMax(t *testing.T) {
	h := NewHistogram(100)
	h.Observe(42)
	if h.Min() != 42 || h.Max() != 42 {
		t.Fatalf("min=%d max=%d", h.Min(), h.Max())
	}
}

func TestHistogramObserveTime(t *testing.T) {
	h := NewHistogram(int64(sim.Microsecond))
	h.ObserveTime(500 * sim.Nanosecond)
	if _, c, _ := h.Bucket(0); c != 1 {
		t.Fatalf("bucket 0 count %d", c)
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	for _, bounds := range [][]int64{{}, {5, 5}, {5, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bounds %v did not panic", bounds)
				}
			}()
			NewHistogram(bounds...)
		}()
	}
}

func TestExpBounds(t *testing.T) {
	got := ExpBounds(1000, 2, 4)
	want := []int64{1000, 2000, 4000, 8000}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBounds = %v", got)
		}
	}
}

func TestMeterPanicsNameTime(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMeter(eng, "aP3")
	m.Start()
	func() {
		defer func() {
			msg, _ := recover().(string)
			if !strings.Contains(msg, "aP3") || !strings.Contains(msg, "must not nest") {
				t.Fatalf("Start panic %q", msg)
			}
		}()
		m.Start()
	}()
	func() {
		defer func() {
			msg, _ := recover().(string)
			if !strings.Contains(msg, "aP3") || !strings.Contains(msg, "Reset while busy") {
				t.Fatalf("Reset panic %q", msg)
			}
		}()
		m.Reset()
	}()
	m.Stop()
	func() {
		defer func() {
			msg, _ := recover().(string)
			if !strings.Contains(msg, "aP3") || !strings.Contains(msg, "Stop while idle") {
				t.Fatalf("Stop panic %q", msg)
			}
		}()
		m.Stop()
	}()
}
