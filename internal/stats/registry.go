package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"startvoyager/internal/sim"
)

// Registry is a hierarchical metrics registry. Components register their
// counters, meters, gauges, and histograms at construction under a
// slash-separated path ("node0/bus/transactions"); the whole tree dumps as
// one stable machine-readable JSON document. Registration stores references
// (or read closures), so the dump always reflects live values — there is no
// sampling cost during simulation.
//
// Dumps are deterministic: paths are emitted in sorted order and every value
// is an integer (simulated-time nanoseconds, counts, bytes), so two
// identically-seeded runs produce byte-identical files.
type Registry struct {
	prefix string
	root   *registryRoot
}

type registryRoot struct {
	entries map[string]*entry
}

// entryKind discriminates the typed registry entry variants. Entries are
// typed (rather than opaque read closures) so the telemetry Sampler can
// scrape each one without boxing values into interface{} — the precondition
// for an allocation-free scrape path.
type entryKind uint8

const (
	kindGauge entryKind = iota
	kindCounter
	kindMeter
	kindTime
	kindHist
)

// entry is one registered metric. Exactly one source field is set,
// according to kind.
type entry struct {
	kind    entryKind
	gauge   func() int64
	counter *Counter
	meter   *Meter
	timeFn  func() sim.Time
	hist    *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{root: &registryRoot{entries: make(map[string]*entry)}}
}

// Child returns a view of the registry scoped under name.
func (r *Registry) Child(name string) *Registry {
	return &Registry{prefix: r.join(name), root: r.root}
}

// Path returns the registry's scope prefix ("" at the root).
func (r *Registry) Path() string { return r.prefix }

func (r *Registry) join(name string) string {
	if name == "" || strings.Contains(name, "/") {
		panic(fmt.Sprintf("stats: bad registry name %q", name))
	}
	if r.prefix == "" {
		return name
	}
	return r.prefix + "/" + name
}

func (r *Registry) add(name string, e *entry) {
	path := r.join(name)
	if _, dup := r.root.entries[path]; dup {
		panic("stats: duplicate metric " + path)
	}
	r.root.entries[path] = e
}

// Gauge registers an integer read at dump time.
func (r *Registry) Gauge(name string, fn func() int64) {
	r.add(name, &entry{kind: kindGauge, gauge: fn})
}

// Counter registers an event/amount counter.
func (r *Registry) Counter(name string, c *Counter) {
	r.add(name, &entry{kind: kindCounter, counter: c})
}

// Meter registers a busy-time meter; the dump reports accumulated busy
// nanoseconds and completed spans.
func (r *Registry) Meter(name string, m *Meter) {
	r.add(name, &entry{kind: kindMeter, meter: m})
}

// Time registers a simulated-time quantity (resource busy time, latency sum)
// read at dump time, reported in nanoseconds.
func (r *Registry) Time(name string, fn func() sim.Time) {
	r.add(name, &entry{kind: kindTime, timeFn: fn})
}

// Histogram registers a fixed-bucket histogram.
func (r *Registry) Histogram(name string, h *Histogram) {
	r.add(name, &entry{kind: kindHist, hist: h})
}

// ReadGauge reads the current value of the gauge registered at the full
// path (e.g. "net/fault/injected_drops"). The second result is false when
// no gauge lives there. It lets invariant checkers sample individual
// counters point-wise instead of serializing the whole registry.
func (r *Registry) ReadGauge(path string) (int64, bool) {
	e, ok := r.root.entries[path]
	if !ok || e.kind != kindGauge {
		return 0, false
	}
	return e.gauge(), true
}

// Paths returns every registered metric path, sorted.
func (r *Registry) Paths() []string {
	var out []string
	for p := range r.root.entries {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// read renders one entry in the voyager-metrics/v1 value shape.
func (e *entry) read() interface{} {
	switch e.kind {
	case kindGauge:
		return map[string]interface{}{"kind": "gauge", "value": e.gauge()}
	case kindCounter:
		return map[string]interface{}{"kind": "counter", "events": e.counter.Events, "amount": e.counter.Amount}
	case kindMeter:
		return map[string]interface{}{
			"kind": "meter", "busy_ns": int64(e.meter.BusyTime()), "spans": e.meter.Spans(),
		}
	case kindTime:
		return map[string]interface{}{"kind": "time", "ns": int64(e.timeFn())}
	default:
		h := e.hist
		buckets := make([]interface{}, h.NumBuckets())
		for i := range buckets {
			bound, count, bounded := h.Bucket(i)
			le := interface{}("+inf")
			if bounded {
				le = bound
			}
			buckets[i] = map[string]interface{}{"le": le, "count": count}
		}
		return map[string]interface{}{
			"kind": "histogram", "count": h.Count(), "sum": h.Sum(),
			"min": h.Min(), "max": h.Max(), "buckets": buckets,
		}
	}
}

// RunMeta is the self-describing header attached to exported artifacts: who
// produced the run and under what configuration, so a metrics or series file
// found on its own (a CI artifact, an old experiment directory) identifies
// its run without the command line that made it.
type RunMeta struct {
	Tool      string `json:"tool"`
	Mechanism string `json:"mechanism,omitempty"`
	Nodes     int    `json:"nodes"`
	Seed      uint64 `json:"seed"`
	FaultPlan string `json:"fault_plan,omitempty"`
	SimTimeNs int64  `json:"sim_time_ns"`
}

// WriteJSON writes the whole registry as one indented JSON document, with
// now recorded as the dump's simulated timestamp. Output is byte-stable for
// a given registry state (sorted paths, integer values only).
func (r *Registry) WriteJSON(w io.Writer, now sim.Time) error {
	return r.WriteJSONMeta(w, now, nil)
}

// WriteJSONMeta is WriteJSON with an optional run-metadata header; with a
// nil meta the output is identical to WriteJSON.
func (r *Registry) WriteJSONMeta(w io.Writer, now sim.Time, meta *RunMeta) error {
	metrics := make(map[string]interface{}, len(r.root.entries))
	for _, p := range r.Paths() {
		metrics[p] = r.root.entries[p].read()
	}
	doc := map[string]interface{}{
		"schema":      "voyager-metrics/v1",
		"sim_time_ns": int64(now),
		"metrics":     metrics,
	}
	if meta != nil {
		doc["run"] = meta
	}
	// encoding/json sorts map keys, which is exactly the stability we want.
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	_, err = w.Write(out)
	return err
}
