package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"startvoyager/internal/sim"
)

// Registry is a hierarchical metrics registry. Components register their
// counters, meters, gauges, and histograms at construction under a
// slash-separated path ("node0/bus/transactions"); the whole tree dumps as
// one stable machine-readable JSON document. Registration stores references
// (or read closures), so the dump always reflects live values — there is no
// sampling cost during simulation.
//
// Dumps are deterministic: paths are emitted in sorted order and every value
// is an integer (simulated-time nanoseconds, counts, bytes), so two
// identically-seeded runs produce byte-identical files.
type Registry struct {
	prefix string
	root   *registryRoot
}

type registryRoot struct {
	entries map[string]func() interface{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{root: &registryRoot{entries: make(map[string]func() interface{})}}
}

// Child returns a view of the registry scoped under name.
func (r *Registry) Child(name string) *Registry {
	return &Registry{prefix: r.join(name), root: r.root}
}

// Path returns the registry's scope prefix ("" at the root).
func (r *Registry) Path() string { return r.prefix }

func (r *Registry) join(name string) string {
	if name == "" || strings.Contains(name, "/") {
		panic(fmt.Sprintf("stats: bad registry name %q", name))
	}
	if r.prefix == "" {
		return name
	}
	return r.prefix + "/" + name
}

func (r *Registry) add(name string, read func() interface{}) {
	path := r.join(name)
	if _, dup := r.root.entries[path]; dup {
		panic("stats: duplicate metric " + path)
	}
	r.root.entries[path] = read
}

// Gauge registers an integer read at dump time.
func (r *Registry) Gauge(name string, fn func() int64) {
	r.add(name, func() interface{} {
		return map[string]interface{}{"kind": "gauge", "value": fn()}
	})
}

// Counter registers an event/amount counter.
func (r *Registry) Counter(name string, c *Counter) {
	r.add(name, func() interface{} {
		return map[string]interface{}{"kind": "counter", "events": c.Events, "amount": c.Amount}
	})
}

// Meter registers a busy-time meter; the dump reports accumulated busy
// nanoseconds and completed spans.
func (r *Registry) Meter(name string, m *Meter) {
	r.add(name, func() interface{} {
		return map[string]interface{}{
			"kind": "meter", "busy_ns": int64(m.BusyTime()), "spans": m.Spans(),
		}
	})
}

// Time registers a simulated-time quantity (resource busy time, latency sum)
// read at dump time, reported in nanoseconds.
func (r *Registry) Time(name string, fn func() sim.Time) {
	r.add(name, func() interface{} {
		return map[string]interface{}{"kind": "time", "ns": int64(fn())}
	})
}

// Histogram registers a fixed-bucket histogram.
func (r *Registry) Histogram(name string, h *Histogram) {
	r.add(name, func() interface{} {
		buckets := make([]interface{}, h.NumBuckets())
		for i := range buckets {
			bound, count, bounded := h.Bucket(i)
			le := interface{}("+inf")
			if bounded {
				le = bound
			}
			buckets[i] = map[string]interface{}{"le": le, "count": count}
		}
		return map[string]interface{}{
			"kind": "histogram", "count": h.Count(), "sum": h.Sum(),
			"min": h.Min(), "max": h.Max(), "buckets": buckets,
		}
	})
}

// Paths returns every registered metric path, sorted.
func (r *Registry) Paths() []string {
	var out []string
	for p := range r.root.entries {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// WriteJSON writes the whole registry as one indented JSON document, with
// now recorded as the dump's simulated timestamp. Output is byte-stable for
// a given registry state (sorted paths, integer values only).
func (r *Registry) WriteJSON(w io.Writer, now sim.Time) error {
	metrics := make(map[string]interface{}, len(r.root.entries))
	for _, p := range r.Paths() {
		metrics[p] = r.root.entries[p]()
	}
	doc := map[string]interface{}{
		"schema":      "voyager-metrics/v1",
		"sim_time_ns": int64(now),
		"metrics":     metrics,
	}
	// encoding/json sorts map keys, which is exactly the stability we want.
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	_, err = w.Write(out)
	return err
}
