package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"startvoyager/internal/sim"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(10)
	c.Add(20)
	if c.Events != 2 || c.Amount != 30 {
		t.Fatalf("counter = %+v", c)
	}
}

func TestMeterAccrual(t *testing.T) {
	e := sim.NewEngine()
	m := NewMeter(e, "aP")
	e.Schedule(0, func() { m.Start() })
	e.Schedule(10, func() { m.Stop() })
	e.Schedule(20, func() { m.Start() })
	e.Schedule(35, func() { m.Stop() })
	e.Run()
	if m.BusyTime() != 25 {
		t.Fatalf("busy = %v, want 25", m.BusyTime())
	}
	if m.Spans() != 2 {
		t.Fatalf("spans = %d, want 2", m.Spans())
	}
	if u := m.Utilization(0, 50); math.Abs(u-0.5) > 1e-9 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
	m.Reset()
	if m.BusyTime() != 0 || m.Spans() != 0 {
		t.Fatal("reset failed")
	}
}

func TestMeterOpenSpanCounted(t *testing.T) {
	e := sim.NewEngine()
	m := NewMeter(e, "x")
	e.Schedule(5, func() { m.Start() })
	e.Schedule(30, func() {}) // advance time
	e.Run()
	if m.BusyTime() != 25 {
		t.Fatalf("busy = %v, want 25 (open span)", m.BusyTime())
	}
}

func TestMeterDoubleStartPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m := NewMeter(sim.NewEngine(), "x")
	m.Start()
	m.Start()
}

func TestMeterStopIdlePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewMeter(sim.NewEngine(), "x").Stop()
}

func TestSamples(t *testing.T) {
	var s Samples
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Add(v)
	}
	if s.N() != 5 || s.Mean() != 3 || s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("sampler: n=%d mean=%v min=%v max=%v", s.N(), s.Mean(), s.Min(), s.Max())
	}
	if p := s.Percentile(50); p != 3 {
		t.Fatalf("p50 = %v, want 3", p)
	}
	if p := s.Percentile(0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := s.Percentile(100); p != 5 {
		t.Fatalf("p100 = %v", p)
	}
}

func TestSamplerEmpty(t *testing.T) {
	var s Samples
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty sampler should report zeros")
	}
}

// Property: percentile is always within [min, max] and monotone in p.
func TestPercentileProperty(t *testing.T) {
	f := func(vals []float64, a, b uint8) bool {
		var s Samples
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			s.Add(v)
		}
		if s.N() == 0 {
			return true
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		va, vb := s.Percentile(pa), s.Percentile(pb)
		return va >= s.Min() && vb <= s.Max() && va <= vb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "Fig 3", Columns: []string{"size", "lat"}}
	tab.AddRow("64B", "1.2us")
	tab.AddRow("4KB") // short row padded
	out := tab.String()
	if !strings.Contains(out, "Fig 3") || !strings.Contains(out, "64B") {
		t.Fatalf("bad table:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("want 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int]string{64: "64B", 4096: "4KB", 1 << 20: "1MB", 1000: "1000B"}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestMBps(t *testing.T) {
	// 160 bytes in 1000ns = 160 MB/s.
	if got := MBps(160, 1000); math.Abs(got-160) > 1e-9 {
		t.Fatalf("MBps = %v, want 160", got)
	}
	if MBps(100, 0) != 0 {
		t.Fatal("zero duration should yield 0")
	}
}
