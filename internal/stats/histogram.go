package stats

import (
	"fmt"

	"startvoyager/internal/sim"
)

// Histogram counts int64 samples into fixed buckets. Bucket i holds samples
// v with bounds[i-1] < v <= bounds[i]; one extra overflow bucket holds
// everything above the last bound. Fixed boundaries (rather than adaptive
// ones) keep dumps byte-identical across runs and diffable across code
// changes.
type Histogram struct {
	bounds []int64
	counts []uint64 // len(bounds)+1; last is the overflow bucket
	count  uint64
	sum    int64
	min    int64
	max    int64
}

// NewHistogram returns a histogram with the given strictly increasing upper
// bucket bounds.
func NewHistogram(bounds ...int64) *Histogram {
	if len(bounds) == 0 {
		panic("stats: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("stats: histogram bounds not increasing at %d: %d <= %d",
				i, bounds[i], bounds[i-1]))
		}
	}
	return &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// ExpBounds builds n exponentially growing bounds: start, start*factor, ...
func ExpBounds(start, factor int64, n int) []int64 {
	if start <= 0 || factor < 2 || n < 1 {
		panic("stats: bad ExpBounds parameters")
	}
	out := make([]int64, n)
	v := start
	for i := 0; i < n; i++ {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// ObserveTime records a simulated duration in nanoseconds.
func (h *Histogram) ObserveTime(t sim.Time) { h.Observe(int64(t)) }

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Min returns the smallest sample (0 if empty).
func (h *Histogram) Min() int64 { return h.min }

// Max returns the largest sample (0 if empty).
func (h *Histogram) Max() int64 { return h.max }

// NumBuckets returns the bucket count, including the overflow bucket.
func (h *Histogram) NumBuckets() int { return len(h.counts) }

// Bucket returns bucket i's inclusive upper bound and count; the final
// (overflow) bucket reports ok=false for its bound.
func (h *Histogram) Bucket(i int) (bound int64, count uint64, bounded bool) {
	if i < len(h.bounds) {
		return h.bounds[i], h.counts[i], true
	}
	return 0, h.counts[i], false
}
