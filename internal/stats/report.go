package stats

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"startvoyager/internal/sim"
)

// This file renders voyager-series/v1 documents as deterministic text
// reports — the voyager-stats CLI is a thin flag wrapper around WriteReport.
// Every number is integer math over the exported arrays and every list is
// explicitly sorted, so the same document always renders byte-identically.

// ReportOpts configures WriteReport.
type ReportOpts struct {
	// TopK bounds the hottest-links / deepest-queues lists (default 10).
	TopK int
	// Width is the sparkline/heatmap column budget; series longer than this
	// are downsampled by per-bucket max (default 64).
	Width int
	// Match, when non-empty, additionally prints a full per-window table for
	// every series whose path contains the substring.
	Match string
}

func (o *ReportOpts) fill() {
	if o.TopK <= 0 {
		o.TopK = 10
	}
	if o.Width <= 0 {
		o.Width = 64
	}
}

// sparkRamp maps intensity 0..8 to an ASCII glyph; index 0 (a true zero)
// renders as space so quiet windows read as gaps.
const sparkRamp = " .:-=+*#@"

// sparkline renders vals scaled against max(vals), downsampled to at most
// width columns by per-bucket max.
func sparkline(vals []int64, width int) string {
	vals = downsampleMax(vals, width)
	var max int64
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		b.WriteByte(rampChar(v, max))
	}
	return b.String()
}

// rampChar picks the ramp glyph for v against scale max: zero is blank, any
// nonzero value renders at least the faintest glyph.
func rampChar(v, max int64) byte {
	if v <= 0 || max <= 0 {
		return sparkRamp[0]
	}
	idx := 1 + int(v*int64(len(sparkRamp)-2)/max)
	if idx >= len(sparkRamp) {
		idx = len(sparkRamp) - 1
	}
	return sparkRamp[idx]
}

// downsampleMax reduces vals to at most width buckets, each the max of its
// slice of the input (peaks survive; a saturated window cannot average away).
func downsampleMax(vals []int64, width int) []int64 {
	if len(vals) <= width {
		return vals
	}
	out := make([]int64, width)
	for i := 0; i < width; i++ {
		lo, hi := i*len(vals)/width, (i+1)*len(vals)/width
		if hi == lo {
			hi = lo + 1
		}
		m := vals[lo]
		for _, v := range vals[lo+1 : hi] {
			if v > m {
				m = v
			}
		}
		out[i] = m
	}
	return out
}

// pctTenths renders num/den as a percentage with one decimal, in pure
// integer math ("12.5%").
func pctTenths(num, den int64) string {
	if den <= 0 {
		return "0.0%"
	}
	t := num * 1000 / den
	return fmt.Sprintf("%d.%d%%", t/10, t%10)
}

// seriesRef is one selected series plus its precomputed per-window sums.
type seriesRef struct {
	path  string
	short string // path with the selection prefix/suffix stripped
	data  *SeriesData
	sums  []int64
	total int64
	peak  int64 // hottest single-window sum
}

// selectSeries picks the series under prefix ending in "/"+leaf, sorted by
// total sum descending (ties by path), with per-window sums precomputed.
func selectSeries(doc *SeriesDoc, prefix, leaf string) []*seriesRef {
	var out []*seriesRef
	for _, p := range doc.SortedPaths() {
		if !strings.HasPrefix(p, prefix) || !strings.HasSuffix(p, "/"+leaf) {
			continue
		}
		d := doc.Series[p]
		r := &seriesRef{
			path:  p,
			short: strings.TrimSuffix(strings.TrimPrefix(p, prefix), "/"+leaf),
			data:  d,
			sums:  d.Sum,
		}
		for _, v := range d.Sum {
			r.total += v
			if v > r.peak {
				r.peak = v
			}
		}
		out = append(out, r)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].total != out[j].total {
			return out[i].total > out[j].total
		}
		return out[i].path < out[j].path
	})
	return out
}

// gaugeWindowDeltas converts a monotonic cumulative gauge series into
// per-window increments using each window's closing (max) sample.
func gaugeWindowDeltas(d *SeriesData) []int64 {
	out := make([]int64, len(d.Max))
	var prev int64
	for i, v := range d.Max {
		if d.Count[i] == 0 {
			out[i] = 0
			continue
		}
		out[i] = v - prev
		prev = v
	}
	return out
}

// sumMatching adds up, window by window, one derived series per path
// selected by pred; derive maps a series to its per-window contribution.
func sumMatching(doc *SeriesDoc, pred func(string) bool, derive func(*SeriesData) []int64) []int64 {
	out := make([]int64, doc.Windows)
	for _, p := range doc.SortedPaths() {
		if !pred(p) {
			continue
		}
		for i, v := range derive(doc.Series[p]) {
			out[i] += v
		}
	}
	return out
}

// WriteReport renders the deterministic text report voyager-stats prints:
// run header, top-K hottest links and deepest queues, link-utilization and
// credit-stall heatmaps, stall attribution by window, and (with Match) full
// per-window series tables.
func WriteReport(w io.Writer, doc *SeriesDoc, opts ReportOpts) error {
	opts.fill()
	var b strings.Builder

	writeHeader(&b, doc)
	links := selectSeries(doc, "net/link/", "busy")
	stalls := selectSeries(doc, "net/link/", "credit_stalls")
	writeHotLinks(&b, doc, links, opts)
	writeHeatmap(&b, "link utilization heatmap (rows: hottest links, cols: windows, cell: window busy %)",
		links, opts, int64(doc.WindowNs))
	writeStalledLinks(&b, stalls, opts)
	writeHeatmap(&b, "credit-stall heatmap (rows: most-stalled links, cols: windows, cell: stalls vs global peak)",
		stalls, opts, 0)
	writeQueues(&b, doc, opts)
	writeSpOccupancy(&b, doc, opts)
	writeStallAttribution(&b, doc, opts)
	if opts.Match != "" {
		writeMatchTables(&b, doc, opts)
	}

	_, err := io.WriteString(w, b.String())
	return err
}

func writeHeader(b *strings.Builder, doc *SeriesDoc) {
	fmt.Fprintf(b, "== voyager-stats report (%s) ==\n", doc.Schema)
	if r := doc.Run; r != nil {
		fmt.Fprintf(b, "run: tool=%s nodes=%d seed=%d", r.Tool, r.Nodes, r.Seed)
		if r.Mechanism != "" {
			fmt.Fprintf(b, " mech=%s", r.Mechanism)
		}
		if r.FaultPlan != "" {
			fmt.Fprintf(b, " faults=%q", r.FaultPlan)
		}
		fmt.Fprintf(b, " sim_time=%v\n", sim.Time(r.SimTimeNs))
	}
	fmt.Fprintf(b, "window: %v x %d windows (%d scrapes/window), %d series\n\n",
		sim.Time(doc.WindowNs), doc.Windows, doc.Scrapes, len(doc.Series))
}

func writeHotLinks(b *strings.Builder, doc *SeriesDoc, links []*seriesRef, opts ReportOpts) {
	t := Table{
		Title:   fmt.Sprintf("top %d hottest links by busy time", opts.TopK),
		Columns: []string{"link", "busy", "util", "peak-win", "spark"},
	}
	for _, l := range topK(links, opts.TopK) {
		total := int64(doc.WindowNs) * int64(doc.Windows)
		t.AddRow(l.short, sim.Time(l.total).String(),
			pctTenths(l.total, total),
			pctTenths(l.peak, int64(doc.WindowNs)),
			sparkline(l.sums, opts.Width))
	}
	writeTableOrNone(b, &t, "no link busy series in document")
}

func writeStalledLinks(b *strings.Builder, stalls []*seriesRef, opts ReportOpts) {
	t := Table{
		Title:   fmt.Sprintf("top %d credit-stalled links", opts.TopK),
		Columns: []string{"link", "stalls", "peak-win", "spark"},
	}
	for _, l := range topK(stalls, opts.TopK) {
		if l.total == 0 {
			continue
		}
		t.AddRow(l.short, fmt.Sprintf("%d", l.total), fmt.Sprintf("%d", l.peak),
			sparkline(l.sums, opts.Width))
	}
	writeTableOrNone(b, &t, "no credit stalls recorded")
}

// writeHeatmap prints one row per selected series. A nonzero denom scales
// every cell against it (utilization); zero scales against the global peak
// window across the selection.
func writeHeatmap(b *strings.Builder, title string, sel []*seriesRef, opts ReportOpts, denom int64) {
	rows := topK(sel, opts.TopK)
	live := make([]*seriesRef, 0, len(rows))
	scale := denom
	for _, r := range rows {
		if r.total != 0 {
			live = append(live, r)
		}
		if denom == 0 && r.peak > scale {
			scale = r.peak
		}
	}
	// Rows beyond TopK are truncated, not silently: a 1024-node tree holds
	// >10k links, and a heatmap is only legible — and only honest — if it
	// says how much activity it is not showing.
	activeTotal := 0
	for _, r := range sel {
		if r.total != 0 {
			activeTotal++
		}
	}
	omitted := activeTotal - len(live)
	fmt.Fprintf(b, "== %s ==\n", title)
	if len(live) == 0 {
		b.WriteString("(nothing to plot)\n\n")
		return
	}
	wname := 0
	for _, r := range live {
		if len(r.short) > wname {
			wname = len(r.short)
		}
	}
	for _, r := range live {
		cells := downsampleMax(r.sums, opts.Width)
		fmt.Fprintf(b, "%-*s |", wname, r.short)
		for _, v := range cells {
			b.WriteByte(rampChar(v, scale))
		}
		b.WriteString("|\n")
	}
	if omitted > 0 {
		fmt.Fprintf(b, "(%d more active links omitted — raise -top to see them)\n", omitted)
	}
	fmt.Fprintf(b, "scale: blank=0%s\n\n", legend(scale, denom != 0))
}

func legend(scale int64, isUtil bool) string {
	if scale <= 0 {
		return ""
	}
	top := fmt.Sprintf("%d (peak)", scale)
	if isUtil {
		top = "100% of window"
	}
	return fmt.Sprintf(", '%c'=low .. '%c'=%s",
		sparkRamp[1], sparkRamp[len(sparkRamp)-1], top)
}

func writeQueues(b *strings.Builder, doc *SeriesDoc, opts ReportOpts) {
	type qref struct {
		path string
		d    *SeriesData
		peak int64
	}
	var qs []*qref
	for _, p := range doc.SortedPaths() {
		if !strings.HasSuffix(p, "_depth") && !strings.HasSuffix(p, "/queued") &&
			!strings.HasSuffix(p, "/waiters") {
			continue
		}
		q := &qref{path: p, d: doc.Series[p]}
		for _, v := range q.d.Max {
			if v > q.peak {
				q.peak = v
			}
		}
		qs = append(qs, q)
	}
	sort.SliceStable(qs, func(i, j int) bool {
		if qs[i].peak != qs[j].peak {
			return qs[i].peak > qs[j].peak
		}
		return qs[i].path < qs[j].path
	})
	t := Table{
		Title:   fmt.Sprintf("top %d deepest queues (per-window max depth)", opts.TopK),
		Columns: []string{"queue", "peak", "spark"},
	}
	for i, q := range qs {
		if i >= opts.TopK || q.peak == 0 {
			break
		}
		t.AddRow(q.path, fmt.Sprintf("%d", q.peak), sparkline(q.d.Max, opts.Width))
	}
	writeTableOrNone(b, &t, "no queue depth series in document")
}

// writeSpOccupancy charts each node's firmware-processor occupancy: sp_busy
// and its complement sp_idle are "time"-kind series, which the sampler
// scrapes as per-scrape increments — so each window's Sum is the time spent
// in that state during the window, and occupancy is busy over busy+idle.
// The paper singles out sP occupancy as the key quantity when comparing
// mechanism implementations; this makes its time profile visible per node.
func writeSpOccupancy(b *strings.Builder, doc *SeriesDoc, opts ReportOpts) {
	type spRef struct {
		path string // the sp_busy series path
		busy []int64
		idle []int64
	}
	var sps []*spRef
	for _, p := range doc.SortedPaths() {
		if !strings.HasSuffix(p, "/sp_busy") {
			continue
		}
		idlePath := strings.TrimSuffix(p, "/sp_busy") + "/sp_idle"
		idle := doc.Series[idlePath]
		if idle == nil {
			continue
		}
		sps = append(sps, &spRef{
			path: p,
			busy: doc.Series[p].Sum,
			idle: idle.Sum,
		})
	}
	if len(sps) == 0 {
		return
	}
	t := Table{
		Title:   "sP occupancy by node (busy / (busy+idle) per window)",
		Columns: []string{"sp", "occupancy", "busy", "spark"},
	}
	for _, s := range sps {
		var busyTotal, idleTotal int64
		pcts := make([]int64, len(s.busy))
		for i := range s.busy {
			busyTotal += s.busy[i]
			idleTotal += s.idle[i]
			if span := s.busy[i] + s.idle[i]; span > 0 {
				pcts[i] = s.busy[i] * 100 / span
			}
		}
		t.AddRow(strings.TrimSuffix(s.path, "/sp_busy"),
			pctTenths(busyTotal, busyTotal+idleTotal),
			sim.Time(busyTotal).String(),
			sparkline(pcts, opts.Width))
	}
	b.WriteString(t.String())
	b.WriteByte('\n')
}

// writeStallAttribution charts, window by window, where backpressure went:
// link credit stalls, R-Basic retransmits, and fault-injected drops — the
// latter split by cause, since a probabilistic drop (retransmission noise),
// an outage window (transient partition), and a node death (permanent loss)
// call for very different fixes.
func writeStallAttribution(b *strings.Builder, doc *SeriesDoc, opts ReportOpts) {
	isCounterSum := func(d *SeriesData) []int64 { return d.Sum }
	creditStalls := sumMatching(doc,
		func(p string) bool { return strings.HasSuffix(p, "/credit_stalls") },
		isCounterSum)
	// Retransmit and drop counts are cumulative gauges; chart their
	// per-window increments.
	retrans := sumMatching(doc,
		func(p string) bool { return strings.HasSuffix(p, "fault/retransmits") },
		gaugeWindowDeltas)
	dropSuffix := func(leaf string) []int64 {
		return sumMatching(doc,
			func(p string) bool { return strings.HasPrefix(p, "net/fault/") && strings.HasSuffix(p, leaf) },
			gaugeWindowDeltas)
	}
	probDrops := dropSuffix("/injected_drops")
	outageDrops := dropSuffix("/outage_drops")
	deathDrops := dropSuffix("/death_drops")

	t := Table{
		Title:   "stall attribution by window",
		Columns: []string{"window", "t_start", "credit-stalls", "retransmits", "prob-drops", "outage-drops", "death-drops"},
	}
	any := false
	for i := 0; i < doc.Windows; i++ {
		if creditStalls[i] != 0 || retrans[i] != 0 ||
			probDrops[i] != 0 || outageDrops[i] != 0 || deathDrops[i] != 0 {
			any = true
		}
		t.AddRow(fmt.Sprintf("%d", i), sim.Time(int64(i)*doc.WindowNs).String(),
			fmt.Sprintf("%d", creditStalls[i]),
			fmt.Sprintf("%d", retrans[i]),
			fmt.Sprintf("%d", probDrops[i]),
			fmt.Sprintf("%d", outageDrops[i]),
			fmt.Sprintf("%d", deathDrops[i]))
	}
	if !any {
		fmt.Fprintf(b, "== stall attribution by window ==\n(no stalls, retransmits, or drops recorded)\n\n")
		return
	}
	fmt.Fprintf(b, "%s\nspark credit-stalls: |%s|\nspark retransmits:   |%s|\n\n",
		t.String(), sparkline(creditStalls, opts.Width), sparkline(retrans, opts.Width))
}

func writeMatchTables(b *strings.Builder, doc *SeriesDoc, opts ReportOpts) {
	matched := 0
	for _, p := range doc.SortedPaths() {
		if !strings.Contains(p, opts.Match) {
			continue
		}
		matched++
		d := doc.Series[p]
		t := Table{
			Title:   fmt.Sprintf("series %s (%s)", p, d.Kind),
			Columns: []string{"window", "t_start", "min", "max", "sum", "count"},
		}
		hist := d.Kind == "histogram" && len(d.P50) == doc.Windows
		if hist {
			t.Columns = append(t.Columns, "p50", "p99", "p999")
		}
		for i := 0; i < doc.Windows; i++ {
			row := []string{
				fmt.Sprintf("%d", i), sim.Time(int64(i) * doc.WindowNs).String(),
				fmt.Sprintf("%d", d.Min[i]), fmt.Sprintf("%d", d.Max[i]),
				fmt.Sprintf("%d", d.Sum[i]), fmt.Sprintf("%d", d.Count[i]),
			}
			if hist {
				row = append(row, fmt.Sprintf("%d", d.P50[i]),
					fmt.Sprintf("%d", d.P99[i]), fmt.Sprintf("%d", d.P999[i]))
			}
			t.AddRow(row...)
		}
		fmt.Fprintf(b, "%sspark sum: |%s|\n\n", t.String(), sparkline(d.Sum, opts.Width))
	}
	if matched == 0 {
		fmt.Fprintf(b, "== series matching %q ==\n(no series matched)\n\n", opts.Match)
	}
}

func topK(sel []*seriesRef, k int) []*seriesRef {
	if len(sel) > k {
		return sel[:k]
	}
	return sel
}

func writeTableOrNone(b *strings.Builder, t *Table, none string) {
	if len(t.Rows) == 0 {
		fmt.Fprintf(b, "== %s ==\n(%s)\n\n", t.Title, none)
		return
	}
	b.WriteString(t.String())
	b.WriteByte('\n')
}
