// Package stats provides instrumentation primitives for the simulation:
// counters, busy-time (occupancy) meters, latency samplers, and simple
// table/series formatting used by the benchmark harness.
package stats

import (
	"fmt"
	"sort"
	"strings"

	"startvoyager/internal/sim"
)

// Counter is a monotonically increasing event count with an associated
// quantity (e.g. packets and bytes).
type Counter struct {
	Events uint64
	Amount uint64
}

// Add records one event carrying amount units.
func (c *Counter) Add(amount uint64) {
	c.Events++
	c.Amount += amount
}

// Meter accrues busy time for a resource so experiments can report
// occupancy. Busy intervals may not nest.
type Meter struct {
	eng   *sim.Engine
	name  string
	busy  bool
	since sim.Time
	total sim.Time
	spans uint64
}

// NewMeter returns an idle meter.
func NewMeter(e *sim.Engine, name string) *Meter {
	return &Meter{eng: e, name: name}
}

// Start marks the resource busy. Starting a busy meter panics: intervals
// must not nest, since that would double-count occupancy.
func (m *Meter) Start() {
	if m.busy {
		panic(fmt.Sprintf("stats: meter %q: Start while busy (interval open since %v, now %v); busy intervals must not nest",
			m.name, m.since, m.eng.Now()))
	}
	m.busy = true
	m.since = m.eng.Now()
}

// Stop marks the resource idle.
func (m *Meter) Stop() {
	if !m.busy {
		panic(fmt.Sprintf("stats: meter %q: Stop while idle at %v; every Stop needs a matching Start",
			m.name, m.eng.Now()))
	}
	m.total += m.eng.Now() - m.since
	m.busy = false
	m.spans++
}

// BusyTime returns total busy time, including the current span if active.
//
//voyager:noalloc
func (m *Meter) BusyTime() sim.Time {
	t := m.total
	if m.busy {
		t += m.eng.Now() - m.since
	}
	return t
}

// Spans returns the number of completed busy intervals.
func (m *Meter) Spans() uint64 { return m.spans }

// Utilization returns busy time as a fraction of the window [from, to].
func (m *Meter) Utilization(from, to sim.Time) float64 {
	if to <= from {
		return 0
	}
	return float64(m.BusyTime()) / float64(to-from)
}

// Reset zeroes the meter (it must be idle).
func (m *Meter) Reset() {
	if m.busy {
		panic(fmt.Sprintf("stats: meter %q: Reset while busy (interval open since %v, now %v)",
			m.name, m.since, m.eng.Now()))
	}
	m.total = 0
	m.spans = 0
}

// Name returns the meter's name.
func (m *Meter) Name() string { return m.name }

// Samples collects scalar samples (latencies, sizes) and reports summary
// statistics. (The windowed time-series scraper is Sampler, in series.go.)
type Samples struct {
	vals []float64
}

// Add records one sample.
func (s *Samples) Add(v float64) { s.vals = append(s.vals, v) }

// N returns the number of samples.
func (s *Samples) N() int { return len(s.vals) }

// Mean returns the arithmetic mean (0 if empty).
func (s *Samples) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Min returns the smallest sample (0 if empty).
func (s *Samples) Min() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	min := s.vals[0]
	for _, v := range s.vals[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// Max returns the largest sample (0 if empty).
func (s *Samples) Max() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	max := s.vals[0]
	for _, v := range s.vals[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// Percentile returns the p-th percentile (p in [0,100]) by nearest-rank.
func (s *Samples) Percentile(p float64) float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.vals...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Table is a simple fixed-column report used by the benchmark harness to
// print figure series the way the paper presents them.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row; values shorter than Columns are padded.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// FormatBytes renders a byte count compactly (e.g. "64B", "4KB", "1MB").
func FormatBytes(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// MBps converts bytes moved over a simulated duration into MB/s.
func MBps(bytes int, d sim.Time) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / float64(d) * 1e9 / 1e6
}
