package cache

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"startvoyager/internal/bus"
	"startvoyager/internal/mem"
	"startvoyager/internal/sim"
)

type rig struct {
	eng  *sim.Engine
	bus  *bus.Bus
	dram *mem.DRAM
	c    *Cache
	niu  *fakeMaster // a second master to generate foreign traffic
}

type fakeMaster struct{ name string }

func (m *fakeMaster) DeviceName() string                  { return m.name }
func (m *fakeMaster) SnoopBus(*bus.Transaction) bus.Snoop { return bus.Snoop{} }

func newRig(cfg Config) *rig {
	eng := sim.NewEngine()
	b := bus.New(eng, "bus", bus.DefaultConfig())
	d := mem.New(bus.Range{Base: 0, Size: 1 << 20}, 60)
	c := New("l2", b, cfg)
	c.SetWritebackSink(d.Poke)
	niu := &fakeMaster{"niu"}
	b.Attach(d)
	b.Attach(c)
	b.Attach(niu)
	return &rig{eng: eng, bus: b, dram: d, c: c, niu: niu}
}

func TestLoadMissThenHit(t *testing.T) {
	r := newRig(DefaultConfig())
	r.dram.Poke(0x100, []byte{1, 2, 3, 4})
	var missT, hitT sim.Time
	r.eng.Spawn("cpu", func(p *sim.Proc) {
		buf := make([]byte, 4)
		start := p.Now()
		r.c.Load(p, 0x100, buf)
		missT = p.Now() - start
		if !bytes.Equal(buf, []byte{1, 2, 3, 4}) {
			t.Errorf("miss data %v", buf)
		}
		start = p.Now()
		r.c.Load(p, 0x104, buf)
		hitT = p.Now() - start
	})
	r.eng.Run()
	if missT <= hitT || hitT != 6 {
		t.Fatalf("miss=%v hit=%v", missT, hitT)
	}
	st := r.c.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestStoreWritebackOnEviction(t *testing.T) {
	cfg := Config{SizeBytes: 2 * bus.LineSize, Assoc: 1, HitTime: 6} // 2 sets, direct-mapped
	r := newRig(cfg)
	r.eng.Spawn("cpu", func(p *sim.Proc) {
		r.c.Store(p, 0x0, []byte{0xAA})
		// Same set (set stride = 64B here), forces eviction of line 0x0.
		r.c.Store(p, 0x40, []byte{0xBB})
	})
	r.eng.Run()
	got := make([]byte, 1)
	r.dram.Peek(0x0, got)
	if got[0] != 0xAA {
		t.Fatalf("dirty line not written back: %#x", got[0])
	}
	if r.c.Stats().Writebacks != 1 {
		t.Fatalf("stats %+v", r.c.Stats())
	}
}

func TestStoreLoadRoundTrip(t *testing.T) {
	r := newRig(DefaultConfig())
	data := []byte("hello, voyager — crosses a line boundary for sure!")
	r.eng.Spawn("cpu", func(p *sim.Proc) {
		r.c.Store(p, 0x1F0, data) // straddles 32B lines
		buf := make([]byte, len(data))
		r.c.Load(p, 0x1F0, buf)
		if !bytes.Equal(buf, data) {
			t.Errorf("round trip failed: %q", buf)
		}
	})
	r.eng.Run()
}

func TestFlushWritesBack(t *testing.T) {
	r := newRig(DefaultConfig())
	r.eng.Spawn("cpu", func(p *sim.Proc) {
		r.c.Store(p, 0x200, []byte{0x55})
		r.c.Flush(p, 0x200)
	})
	r.eng.Run()
	got := make([]byte, 1)
	r.dram.Peek(0x200, got)
	if got[0] != 0x55 {
		t.Fatal("flush did not write back")
	}
	// Line must now be invalid: snooping a foreign write must not see it.
	if l := r.c.lookup(0x200); l != nil {
		t.Fatal("line still resident after flush")
	}
}

func TestSnoopInvalidateOnForeignWrite(t *testing.T) {
	r := newRig(DefaultConfig())
	done := false
	r.eng.Spawn("cpu", func(p *sim.Proc) {
		buf := make([]byte, 4)
		r.c.Load(p, 0x300, buf) // line now E
		// NIU writes the line (e.g. arriving DMA data).
		wr := make([]byte, bus.LineSize)
		wr[0] = 0x77
		r.bus.IssueP(p, &bus.Transaction{Kind: bus.WriteLine, Addr: 0x300, Data: wr, Master: r.niu})
		// Next load must miss and fetch fresh data.
		r.c.Load(p, 0x300, buf)
		if buf[0] != 0x77 {
			t.Errorf("stale data after DMA: %#x", buf[0])
		}
		done = true
	})
	r.eng.Run()
	if !done {
		t.Fatal("did not finish")
	}
	if r.c.Stats().SnoopInvalidations == 0 {
		t.Fatal("no snoop invalidation recorded")
	}
}

func TestInterventionSuppliesDirtyData(t *testing.T) {
	r := newRig(DefaultConfig())
	r.eng.Spawn("test", func(p *sim.Proc) {
		r.c.Store(p, 0x400, []byte{0x42}) // line M in cache, DRAM stale
		// NIU reads the line: the cache must intervene with fresh data.
		tx := &bus.Transaction{Kind: bus.ReadLine, Addr: 0x400,
			Data: make([]byte, bus.LineSize), Master: r.niu}
		r.bus.IssueP(p, tx)
		if tx.Data[0] != 0x42 {
			t.Errorf("intervention data = %#x", tx.Data[0])
		}
	})
	r.eng.Run()
	// Reflection: memory must have been updated too.
	got := make([]byte, 1)
	r.dram.Peek(0x400, got)
	if got[0] != 0x42 {
		t.Fatal("intervention not reflected to DRAM")
	}
	if r.c.Stats().Interventions != 1 {
		t.Fatalf("stats %+v", r.c.Stats())
	}
}

func TestUncachedOpsBypassCache(t *testing.T) {
	r := newRig(DefaultConfig())
	r.dram.Poke(0x500, []byte{9})
	r.eng.Spawn("cpu", func(p *sim.Proc) {
		buf := make([]byte, 1)
		r.c.LoadUncached(p, 0x500, buf)
		if buf[0] != 9 {
			t.Errorf("uncached load got %d", buf[0])
		}
		r.c.StoreUncached(p, 0x500, []byte{10})
	})
	r.eng.Run()
	got := make([]byte, 1)
	r.dram.Peek(0x500, got)
	if got[0] != 10 {
		t.Fatal("uncached store not applied")
	}
	if st := r.c.Stats(); st.Hits+st.Misses != 0 {
		t.Fatalf("uncached ops touched the cache: %+v", st)
	}
}

func TestUncachedReadSeesDirtyLine(t *testing.T) {
	// An uncached (NIU) read of a line the cache holds Modified must get the
	// cache's data via intervention — this is how the NIU picks up freshly
	// composed message data.
	r := newRig(DefaultConfig())
	r.eng.Spawn("test", func(p *sim.Proc) {
		r.c.Store(p, 0x600, []byte{0x5A})
		tx := &bus.Transaction{Kind: bus.ReadWord, Addr: 0x600,
			Data: make([]byte, 1), Master: r.niu}
		r.bus.IssueP(p, tx)
		if tx.Data[0] != 0x5A {
			t.Errorf("uncached read got %#x", tx.Data[0])
		}
	})
	r.eng.Run()
}

// Property: a random sequence of cached/uncached loads and stores behaves
// like a flat byte array (the cache is transparent), including under
// interleaved foreign whole-line DMA writes.
func TestCacheTransparencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{SizeBytes: 4 * 1024, Assoc: 2, HitTime: 6} // tiny: lots of evictions
		r := newRig(cfg)
		ref := make([]byte, 1<<14)
		okc := true
		r.eng.Spawn("cpu", func(p *sim.Proc) {
			for i := 0; i < 300; i++ {
				addr := uint32(rng.Intn(len(ref) - 64))
				n := 1 + rng.Intn(48)
				switch rng.Intn(4) {
				case 0: // cached store
					data := make([]byte, n)
					rng.Read(data)
					copy(ref[addr:], data)
					r.c.Store(p, addr, data)
				case 1: // cached load
					buf := make([]byte, n)
					r.c.Load(p, addr, buf)
					if !bytes.Equal(buf, ref[addr:addr+uint32(n)]) {
						okc = false
						return
					}
				case 2: // foreign DMA line write
					la := addr &^ (bus.LineSize - 1)
					data := make([]byte, bus.LineSize)
					rng.Read(data)
					copy(ref[la:], data)
					r.bus.IssueP(p, &bus.Transaction{Kind: bus.WriteLine, Addr: la,
						Data: data, Master: r.niu})
				case 3: // flush
					r.c.Flush(p, addr)
				}
			}
		})
		r.eng.Run()
		return okc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestStateString(t *testing.T) {
	if Invalid.String() != "I" || Modified.String() != "M" ||
		Shared.String() != "S" || Exclusive.String() != "E" {
		t.Fatal("state names wrong")
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way, 2-set cache: lines mapping to set 0 are 0x00, 0x80, 0x100...
	cfg := Config{SizeBytes: 4 * bus.LineSize, Assoc: 2, HitTime: 6}
	r := newRig(cfg)
	r.eng.Spawn("cpu", func(p *sim.Proc) {
		buf := make([]byte, 1)
		r.c.Load(p, 0x000, buf) // A
		r.c.Load(p, 0x080, buf) // B (same set)
		r.c.Load(p, 0x000, buf) // touch A: B becomes LRU
		r.c.Load(p, 0x100, buf) // C evicts B
		missesBefore := r.c.Stats().Misses
		r.c.Load(p, 0x000, buf) // A must still be resident
		if r.c.Stats().Misses != missesBefore {
			t.Error("LRU evicted the recently used line")
		}
		r.c.Load(p, 0x080, buf) // B was evicted: must miss
		if r.c.Stats().Misses != missesBefore+1 {
			t.Error("expected a miss on the evicted line")
		}
	})
	r.eng.Run()
}

func TestAssociativityAvoidsConflict(t *testing.T) {
	// Two addresses in the same set must coexist in a 2-way cache but
	// thrash in a direct-mapped one of the same size.
	misses := func(assoc int) uint64 {
		cfg := Config{SizeBytes: 8 * bus.LineSize, Assoc: assoc, HitTime: 6}
		r := newRig(cfg)
		r.eng.Spawn("cpu", func(p *sim.Proc) {
			buf := make([]byte, 1)
			stride := uint32(8 * bus.LineSize / assoc) // same-set stride
			for i := 0; i < 6; i++ {
				r.c.Load(p, 0x0, buf)
				r.c.Load(p, stride, buf)
			}
		})
		r.eng.Run()
		return r.c.Stats().Misses
	}
	direct := misses(1)
	twoWay := misses(2)
	if twoWay >= direct {
		t.Fatalf("associativity did not help: %d vs %d misses", twoWay, direct)
	}
	if twoWay != 2 {
		t.Fatalf("2-way misses = %d, want 2 (cold only)", twoWay)
	}
}

func TestNonPowerOfTwoSetsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	eng := sim.NewEngine()
	b := bus.New(eng, "b", bus.DefaultConfig())
	New("bad", b, Config{SizeBytes: 3 * bus.LineSize, Assoc: 1, HitTime: 1})
}
