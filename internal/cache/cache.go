// Package cache models the application processor's cache hierarchy (the
// 604e's L1 backed by the 512 KB in-line L2) as a single snoopy MESI,
// set-associative, write-back cache on the node's 60X bus.
//
// The cache is both a bus master (misses, upgrades, writebacks issued on
// behalf of the processor) and a snooper (invalidations and interventions
// for NIU-issued traffic). Intervention on modified data is reflected to
// memory through a writeback sink, mirroring the reflection the memory
// controller performs on real 60X systems.
package cache

import (
	"fmt"

	"startvoyager/internal/bus"
	"startvoyager/internal/sim"
	"startvoyager/internal/stats"
)

func rwName(forWrite bool) string {
	if forWrite {
		return "w"
	}
	return "r"
}

// State is a MESI coherence state.
type State int

// MESI states.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String names the state.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Config holds cache shape and timing.
type Config struct {
	SizeBytes int      // total capacity (default 512 KB)
	Assoc     int      // ways per set (default 4)
	HitTime   sim.Time // load/store hit latency (default 6 ns)
}

// DefaultConfig returns a 512 KB 4-way cache with 6 ns hits.
func DefaultConfig() Config {
	return Config{SizeBytes: 512 << 10, Assoc: 4, HitTime: 6 * sim.Nanosecond}
}

func (c *Config) fillDefaults() {
	if c.SizeBytes == 0 {
		c.SizeBytes = 512 << 10
	}
	if c.Assoc == 0 {
		c.Assoc = 4
	}
	if c.HitTime == 0 {
		c.HitTime = 6 * sim.Nanosecond
	}
}

type line struct {
	tag   uint32
	state State
	data  [bus.LineSize]byte
	lru   uint64
}

// Stats counts cache activity.
type Stats struct {
	Hits, Misses, Writebacks, Upgrades uint64
	SnoopInvalidations, Interventions  uint64
}

// Cache is one node's processor-side cache. It serves exactly one processor
// (StarT-Voyager nodes have a single aP; the NIU occupies the second slot),
// so processor operations must not be issued concurrently.
type Cache struct {
	name string
	b    *bus.Bus
	cfg  Config
	sets [][]line
	nset uint32
	tick uint64
	node int // owning node, for trace attribution (SetNode)

	// writebackSink reflects intervention data to memory without a second
	// bus transaction (the controller captures intervention data on real
	// hardware). Set by node assembly to the DRAM backdoor.
	writebackSink func(addr uint32, data []byte)

	stats Stats
}

// New creates a cache attached (by the caller) to b.
func New(name string, b *bus.Bus, cfg Config) *Cache {
	cfg.fillDefaults()
	nset := cfg.SizeBytes / cfg.Assoc / bus.LineSize
	if nset == 0 || nset&(nset-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", nset))
	}
	sets := make([][]line, nset)
	for i := range sets {
		sets[i] = make([]line, cfg.Assoc)
	}
	return &Cache{name: name, b: b, cfg: cfg, sets: sets, nset: uint32(nset)}
}

// SetWritebackSink installs the memory reflection function.
func (c *Cache) SetWritebackSink(fn func(addr uint32, data []byte)) { c.writebackSink = fn }

// SetNode records the owning node's id for trace attribution.
func (c *Cache) SetNode(id int) { c.node = id }

// RegisterMetrics registers the cache's counters under r.
func (c *Cache) RegisterMetrics(r *stats.Registry) {
	r.Gauge("hits", func() int64 { return int64(c.stats.Hits) })
	r.Gauge("misses", func() int64 { return int64(c.stats.Misses) })
	r.Gauge("writebacks", func() int64 { return int64(c.stats.Writebacks) })
	r.Gauge("upgrades", func() int64 { return int64(c.stats.Upgrades) })
	r.Gauge("snoop_invalidations", func() int64 { return int64(c.stats.SnoopInvalidations) })
	r.Gauge("interventions", func() int64 { return int64(c.stats.Interventions) })
}

// DeviceName implements bus.Device.
func (c *Cache) DeviceName() string { return c.name }

// Stats returns a snapshot of counters.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) set(addr uint32) []line { return c.sets[(addr/bus.LineSize)&(c.nset-1)] }
func (c *Cache) tag(addr uint32) uint32 { return addr / bus.LineSize / c.nset }

func (c *Cache) lookup(addr uint32) *line {
	set, tag := c.set(addr), c.tag(addr)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

// victim picks the replacement candidate in addr's set (invalid first, then
// least recently used).
func (c *Cache) victim(addr uint32) *line {
	set := c.set(addr)
	var v *line
	for i := range set {
		if set[i].state == Invalid {
			return &set[i]
		}
		if v == nil || set[i].lru < v.lru {
			v = &set[i]
		}
	}
	return v
}

func (c *Cache) lineAddr(addr uint32) uint32 { return addr &^ (bus.LineSize - 1) }

// addrOf reconstructs the base address of a resident line.
func (c *Cache) addrOf(l *line, anyAddrInSet uint32) uint32 {
	setIdx := (anyAddrInSet / bus.LineSize) & (c.nset - 1)
	return (l.tag*c.nset + setIdx) * bus.LineSize
}

// Load performs a cached read of len(buf) bytes at addr (may span lines).
func (c *Cache) Load(p *sim.Proc, addr uint32, buf []byte) {
	for len(buf) > 0 {
		la := c.lineAddr(addr)
		off := addr - la
		n := bus.LineSize - int(off)
		if n > len(buf) {
			n = len(buf)
		}
		l := c.ensure(p, la, false)
		copy(buf[:n], l.data[off:])
		p.Delay(c.cfg.HitTime)
		addr += uint32(n)
		buf = buf[n:]
	}
}

// Store performs a cached write of data at addr (may span lines).
func (c *Cache) Store(p *sim.Proc, addr uint32, data []byte) {
	for len(data) > 0 {
		la := c.lineAddr(addr)
		off := addr - la
		n := bus.LineSize - int(off)
		if n > len(data) {
			n = len(data)
		}
		l := c.ensure(p, la, true)
		copy(l.data[off:], data[:n])
		l.state = Modified
		p.Delay(c.cfg.HitTime)
		addr += uint32(n)
		data = data[n:]
	}
}

// ensure makes the line at la resident with (exclusive ownership if
// forWrite) and returns it, performing any bus traffic required.
func (c *Cache) ensure(p *sim.Proc, la uint32, forWrite bool) *line {
	for {
		l := c.lookup(la)
		switch {
		case l != nil && (!forWrite || l.state == Modified || l.state == Exclusive):
			c.stats.Hits++
			c.touch(l)
			return l
		case l != nil && forWrite && l.state == Shared:
			// Upgrade: broadcast a Kill; the line may be stolen while the
			// Kill waits for the bus, in which case retry from scratch.
			c.stats.Upgrades++
			c.b.IssueP(p, &bus.Transaction{Kind: bus.Kill, Addr: la, Master: c})
			if l.state == Shared {
				l.state = Exclusive
				c.touch(l)
				c.stats.Hits++
				return l
			}
		default:
			c.stats.Misses++
			if eng := c.b.Engine(); eng.Observed() {
				eng.Instant(c.node, "cache", "miss",
					sim.Hex("addr", uint64(la)), sim.Str("rw", rwName(forWrite)))
			}
			v := c.victim(la)
			if v.state == Modified {
				c.stats.Writebacks++
				wb := &bus.Transaction{Kind: bus.WriteLine, Addr: c.addrOf(v, la),
					Data: append([]byte(nil), v.data[:]...), Master: c}
				v.state = Invalid
				c.b.IssueP(p, wb)
			} else {
				v.state = Invalid
			}
			kind := bus.ReadLine
			if forWrite {
				kind = bus.ReadLineX
			}
			tx := &bus.Transaction{Kind: kind, Addr: la, Data: make([]byte, bus.LineSize), Master: c}
			c.b.IssueP(p, tx)
			// Another fill may have raced in via a different path; reuse the
			// victim slot chosen above (re-pick if it got filled meanwhile).
			if v.state != Invalid {
				v = c.victim(la)
			}
			v.tag = c.tag(la)
			copy(v.data[:], tx.Data)
			switch {
			case forWrite:
				v.state = Modified
			case tx.SharedSeen:
				// Another agent asserted the shared line (a peer cache or
				// the aBIU for read-only S-COMA lines): no silent upgrade.
				v.state = Shared
			default:
				v.state = Exclusive
			}
			c.touch(v)
			return v
		}
	}
}

func (c *Cache) touch(l *line) {
	c.tick++
	l.lru = c.tick
}

// Flush writes back (if dirty) and invalidates the line containing addr.
func (c *Cache) Flush(p *sim.Proc, addr uint32) {
	la := c.lineAddr(addr)
	l := c.lookup(la)
	if l == nil {
		return
	}
	if l.state == Modified {
		wb := &bus.Transaction{Kind: bus.WriteLine, Addr: la,
			Data: append([]byte(nil), l.data[:]...), Master: c}
		l.state = Invalid
		c.b.IssueP(p, wb)
		return
	}
	l.state = Invalid
}

// LoadUncached performs a cache-inhibited read (1..8 bytes).
func (c *Cache) LoadUncached(p *sim.Proc, addr uint32, buf []byte) {
	tx := &bus.Transaction{Kind: bus.ReadWord, Addr: addr, Data: buf, Master: c}
	c.b.IssueP(p, tx)
}

// StoreUncached performs a cache-inhibited write (1..8 bytes).
func (c *Cache) StoreUncached(p *sim.Proc, addr uint32, data []byte) {
	tx := &bus.Transaction{Kind: bus.WriteWord, Addr: addr, Data: data, Master: c}
	c.b.IssueP(p, tx)
}

// SnoopBus implements coherence actions for other masters' transactions.
func (c *Cache) SnoopBus(tx *bus.Transaction) bus.Snoop {
	l := c.lookup(c.lineAddr(tx.Addr))
	if l == nil {
		return bus.Snoop{}
	}
	switch tx.Kind {
	case bus.ReadLine:
		if l.state == Modified {
			// Intervene: supply the dirty line, downgrade, reflect to memory.
			data := append([]byte(nil), l.data[:]...)
			addr := c.lineAddr(tx.Addr)
			l.state = Shared
			c.stats.Interventions++
			if c.writebackSink != nil {
				c.writebackSink(addr, data)
			}
			return bus.Snoop{Action: bus.Claim, Intervene: true, Shared: true,
				Latency: c.cfg.HitTime,
				Serve:   func(tx *bus.Transaction) { copy(tx.Data, data) }}
		}
		if l.state == Exclusive {
			l.state = Shared
		}
		return bus.Snoop{Shared: true}
	case bus.ReadLineX:
		if l.state == Modified {
			data := append([]byte(nil), l.data[:]...)
			l.state = Invalid
			c.stats.Interventions++
			c.stats.SnoopInvalidations++
			return bus.Snoop{Action: bus.Claim, Intervene: true, Latency: c.cfg.HitTime,
				Serve: func(tx *bus.Transaction) { copy(tx.Data, data) }}
		}
		l.state = Invalid
		c.stats.SnoopInvalidations++
	case bus.ReadWord:
		if l.state == Modified {
			// Serve an uncached peek from the dirty line; ownership kept.
			data := append([]byte(nil), l.data[:]...)
			off := tx.Addr - c.lineAddr(tx.Addr)
			c.stats.Interventions++
			return bus.Snoop{Action: bus.Claim, Intervene: true, Latency: c.cfg.HitTime,
				Serve: func(tx *bus.Transaction) { copy(tx.Data, data[off:]) }}
		}
	case bus.WriteLine, bus.WriteWord, bus.Kill:
		// DMA or another writer: our copy is stale.
		l.state = Invalid
		c.stats.SnoopInvalidations++
	}
	return bus.Snoop{}
}
