// Package cache models the application processor's cache hierarchy (the
// 604e's L1 backed by the 512 KB in-line L2) as a single snoopy MESI,
// set-associative, write-back cache on the node's 60X bus.
//
// The cache is both a bus master (misses, upgrades, writebacks issued on
// behalf of the processor) and a snooper (invalidations and interventions
// for NIU-issued traffic). Intervention on modified data is reflected to
// memory through a writeback sink, mirroring the reflection the memory
// controller performs on real 60X systems.
package cache

import (
	"fmt"

	"startvoyager/internal/bus"
	"startvoyager/internal/sim"
	"startvoyager/internal/stats"
)

//voyager:noalloc
func rwName(forWrite bool) string {
	if forWrite {
		return "w"
	}
	return "r"
}

// State is a MESI coherence state.
type State int

// MESI states.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String names the state.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Config holds cache shape and timing.
type Config struct {
	SizeBytes int      // total capacity (default 512 KB)
	Assoc     int      // ways per set (default 4)
	HitTime   sim.Time // load/store hit latency (default 6 ns)
}

// DefaultConfig returns a 512 KB 4-way cache with 6 ns hits.
func DefaultConfig() Config {
	return Config{SizeBytes: 512 << 10, Assoc: 4, HitTime: 6 * sim.Nanosecond}
}

func (c *Config) fillDefaults() {
	if c.SizeBytes == 0 {
		c.SizeBytes = 512 << 10
	}
	if c.Assoc == 0 {
		c.Assoc = 4
	}
	if c.HitTime == 0 {
		c.HitTime = 6 * sim.Nanosecond
	}
}

type line struct {
	tag   uint32
	state State
	data  [bus.LineSize]byte
	lru   uint64
}

// Stats counts cache activity.
type Stats struct {
	Hits, Misses, Writebacks, Upgrades uint64
	SnoopInvalidations, Interventions  uint64
}

// Cache is one node's processor-side cache. Overlapping operations from
// multiple processes time-sharing the aP (multitasking workloads) are safe:
// each in-flight operation carries its own pooled transaction record.
type Cache struct {
	name string
	b    *bus.Bus
	cfg  Config
	sets [][]line
	nset uint32
	tick uint64
	node int // owning node, for trace attribution (SetNode)

	// writebackSink reflects intervention data to memory without a second
	// bus transaction (the controller captures intervention data on real
	// hardware). Set by node assembly to the DRAM backdoor.
	writebackSink func(addr uint32, data []byte)

	// txFree recycles per-operation transaction records (a Transaction plus
	// a line buffer). Each in-flight processor operation takes its own
	// record, so overlapping operations from multitasking processes never
	// share staging state; IssueP blocks until the bus completes the
	// transaction and the bus drops its reference in the same event, so the
	// record can be recycled as soon as IssueP returns.
	txFree []*cacheTx

	// Intervention scratch: the snooped line is snapshotted here at snoop
	// time and served by the prebound ivServeFn during the same bus tenure
	// (the bus serializes transactions, so the snapshot cannot be
	// overwritten before it is served).
	ivData    [bus.LineSize]byte
	ivOff     uint32
	ivServeFn func(*bus.Transaction)

	stats Stats
}

// New creates a cache attached (by the caller) to b.
func New(name string, b *bus.Bus, cfg Config) *Cache {
	cfg.fillDefaults()
	nset := cfg.SizeBytes / cfg.Assoc / bus.LineSize
	if nset == 0 || nset&(nset-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", nset))
	}
	// Sets materialize lazily (see setForFill): an idle node's cache costs
	// one pointer per set rather than Assoc full lines per set.
	c := &Cache{name: name, b: b, cfg: cfg, sets: make([][]line, nset), nset: uint32(nset)}
	c.ivServeFn = c.ivServe
	return c
}

// ivServe supplies intervention data snapshotted by SnoopBus.
//
//voyager:noalloc
func (c *Cache) ivServe(tx *bus.Transaction) {
	copy(tx.Data, c.ivData[c.ivOff:])
}

// cacheTx is one in-flight processor-side bus operation: a transaction and
// the line buffer it may carry, recycled through Cache.txFree.
type cacheTx struct {
	tx   bus.Transaction
	data [bus.LineSize]byte
}

//voyager:noalloc
func (c *Cache) getTx() *cacheTx {
	if n := len(c.txFree); n > 0 {
		t := c.txFree[n-1]
		c.txFree = c.txFree[:n-1]
		return t
	}
	return &cacheTx{} //voyager:alloc-ok(pool warm-up; recycled thereafter)
}

//voyager:noalloc
func (c *Cache) putTx(t *cacheTx) {
	t.tx = bus.Transaction{}
	c.txFree = append(c.txFree, t) //voyager:alloc-ok(amortized: pool backing array is retained)
}

// SetWritebackSink installs the memory reflection function.
func (c *Cache) SetWritebackSink(fn func(addr uint32, data []byte)) { c.writebackSink = fn }

// SetNode records the owning node's id for trace attribution.
func (c *Cache) SetNode(id int) { c.node = id }

// RegisterMetrics registers the cache's counters under r.
func (c *Cache) RegisterMetrics(r *stats.Registry) {
	r.Gauge("hits", func() int64 { return int64(c.stats.Hits) })
	r.Gauge("misses", func() int64 { return int64(c.stats.Misses) })
	r.Gauge("writebacks", func() int64 { return int64(c.stats.Writebacks) })
	r.Gauge("upgrades", func() int64 { return int64(c.stats.Upgrades) })
	r.Gauge("snoop_invalidations", func() int64 { return int64(c.stats.SnoopInvalidations) })
	r.Gauge("interventions", func() int64 { return int64(c.stats.Interventions) })
}

// DeviceName implements bus.Device.
func (c *Cache) DeviceName() string { return c.name }

// Stats returns a snapshot of counters.
func (c *Cache) Stats() Stats { return c.stats }

// set returns addr's set, which is nil until first filled — lookups over a
// nil set simply miss, so the read path never materializes state.
//
//voyager:noalloc
func (c *Cache) set(addr uint32) []line { return c.sets[(addr/bus.LineSize)&(c.nset-1)] }

// setForFill materializes addr's set on its first fill.
//
//voyager:noalloc
func (c *Cache) setForFill(addr uint32) []line {
	idx := (addr / bus.LineSize) & (c.nset - 1)
	if c.sets[idx] == nil {
		c.sets[idx] = make([]line, c.cfg.Assoc) //voyager:alloc-ok(lazy set materialization; once per touched set)
	}
	return c.sets[idx]
}

//voyager:noalloc
func (c *Cache) tag(addr uint32) uint32 { return addr / bus.LineSize / c.nset }

//voyager:noalloc
func (c *Cache) lookup(addr uint32) *line {
	set, tag := c.set(addr), c.tag(addr)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

// victim picks the replacement candidate in addr's set (invalid first, then
// least recently used).
//
//voyager:noalloc
func (c *Cache) victim(addr uint32) *line {
	set := c.setForFill(addr)
	var v *line
	for i := range set {
		if set[i].state == Invalid {
			return &set[i]
		}
		if v == nil || set[i].lru < v.lru {
			v = &set[i]
		}
	}
	return v
}

//voyager:noalloc
func (c *Cache) lineAddr(addr uint32) uint32 { return addr &^ (bus.LineSize - 1) }

// addrOf reconstructs the base address of a resident line.
//
//voyager:noalloc
func (c *Cache) addrOf(l *line, anyAddrInSet uint32) uint32 {
	setIdx := (anyAddrInSet / bus.LineSize) & (c.nset - 1)
	return (l.tag*c.nset + setIdx) * bus.LineSize
}

// Load performs a cached read of len(buf) bytes at addr (may span lines).
//
//voyager:noalloc
func (c *Cache) Load(p *sim.Proc, addr uint32, buf []byte) {
	for len(buf) > 0 {
		la := c.lineAddr(addr)
		off := addr - la
		n := bus.LineSize - int(off)
		if n > len(buf) {
			n = len(buf)
		}
		l := c.ensure(p, la, false)
		copy(buf[:n], l.data[off:])
		p.Delay(c.cfg.HitTime)
		addr += uint32(n)
		buf = buf[n:]
	}
}

// Store performs a cached write of data at addr (may span lines).
//
//voyager:noalloc
func (c *Cache) Store(p *sim.Proc, addr uint32, data []byte) {
	for len(data) > 0 {
		la := c.lineAddr(addr)
		off := addr - la
		n := bus.LineSize - int(off)
		if n > len(data) {
			n = len(data)
		}
		l := c.ensure(p, la, true)
		copy(l.data[off:], data[:n])
		l.state = Modified
		p.Delay(c.cfg.HitTime)
		addr += uint32(n)
		data = data[n:]
	}
}

// ensure makes the line at la resident with (exclusive ownership if
// forWrite) and returns it, performing any bus traffic required.
//
//voyager:noalloc pooled transaction records; IssueP blocks to completion
func (c *Cache) ensure(p *sim.Proc, la uint32, forWrite bool) *line {
	for {
		l := c.lookup(la)
		switch {
		case l != nil && (!forWrite || l.state == Modified || l.state == Exclusive):
			c.stats.Hits++
			c.touch(l)
			return l
		case l != nil && forWrite && l.state == Shared:
			// Upgrade: broadcast a Kill; the line may be stolen while the
			// Kill waits for the bus, in which case retry from scratch.
			c.stats.Upgrades++
			t := c.getTx()
			t.tx = bus.Transaction{Kind: bus.Kill, Addr: la, Master: c}
			c.b.IssueP(p, &t.tx)
			c.putTx(t)
			if l.state == Shared {
				l.state = Exclusive
				c.touch(l)
				c.stats.Hits++
				return l
			}
		default:
			c.stats.Misses++
			if eng := c.b.Engine(); eng.Observed() {
				eng.Instant(c.node, "cache", "miss",
					sim.Hex("addr", uint64(la)), sim.Str("rw", rwName(forWrite)))
			}
			v := c.victim(la)
			if v.state == Modified {
				c.stats.Writebacks++
				wb := c.getTx()
				copy(wb.data[:], v.data[:])
				wb.tx = bus.Transaction{Kind: bus.WriteLine, Addr: c.addrOf(v, la),
					Data: wb.data[:], Master: c}
				v.state = Invalid
				c.b.IssueP(p, &wb.tx)
				c.putTx(wb)
			} else {
				v.state = Invalid
			}
			kind := bus.ReadLine
			if forWrite {
				kind = bus.ReadLineX
			}
			fill := c.getTx()
			fill.tx = bus.Transaction{Kind: kind, Addr: la, Data: fill.data[:], Master: c}
			c.b.IssueP(p, &fill.tx)
			// Another fill may have raced in via a different path; reuse the
			// victim slot chosen above (re-pick if it got filled meanwhile).
			if v.state != Invalid {
				v = c.victim(la)
			}
			v.tag = c.tag(la)
			copy(v.data[:], fill.tx.Data)
			switch {
			case forWrite:
				v.state = Modified
			case fill.tx.SharedSeen:
				// Another agent asserted the shared line (a peer cache or
				// the aBIU for read-only S-COMA lines): no silent upgrade.
				v.state = Shared
			default:
				v.state = Exclusive
			}
			c.putTx(fill)
			c.touch(v)
			return v
		}
	}
}

//voyager:noalloc
func (c *Cache) touch(l *line) {
	c.tick++
	l.lru = c.tick
}

// Flush writes back (if dirty) and invalidates the line containing addr.
//
//voyager:noalloc
func (c *Cache) Flush(p *sim.Proc, addr uint32) {
	la := c.lineAddr(addr)
	l := c.lookup(la)
	if l == nil {
		return
	}
	if l.state == Modified {
		wb := c.getTx()
		copy(wb.data[:], l.data[:])
		wb.tx = bus.Transaction{Kind: bus.WriteLine, Addr: la,
			Data: wb.data[:], Master: c}
		l.state = Invalid
		c.b.IssueP(p, &wb.tx)
		c.putTx(wb)
		return
	}
	l.state = Invalid
}

// LoadUncached performs a cache-inhibited read (1..8 bytes).
//
//voyager:noalloc
func (c *Cache) LoadUncached(p *sim.Proc, addr uint32, buf []byte) {
	t := c.getTx()
	t.tx = bus.Transaction{Kind: bus.ReadWord, Addr: addr, Data: buf, Master: c}
	c.b.IssueP(p, &t.tx)
	c.putTx(t)
}

// StoreUncached performs a cache-inhibited write (1..8 bytes).
//
//voyager:noalloc
func (c *Cache) StoreUncached(p *sim.Proc, addr uint32, data []byte) {
	t := c.getTx()
	t.tx = bus.Transaction{Kind: bus.WriteWord, Addr: addr, Data: data, Master: c}
	c.b.IssueP(p, &t.tx)
	c.putTx(t)
}

// SnoopBus implements coherence actions for other masters' transactions.
//
//voyager:noalloc
func (c *Cache) SnoopBus(tx *bus.Transaction) bus.Snoop {
	l := c.lookup(c.lineAddr(tx.Addr))
	if l == nil {
		return bus.Snoop{}
	}
	switch tx.Kind {
	case bus.ReadLine:
		if l.state == Modified {
			// Intervene: supply the dirty line, downgrade, reflect to memory.
			copy(c.ivData[:], l.data[:])
			c.ivOff = 0
			addr := c.lineAddr(tx.Addr)
			l.state = Shared
			c.stats.Interventions++
			if c.writebackSink != nil {
				c.writebackSink(addr, c.ivData[:])
			}
			return bus.Snoop{Action: bus.Claim, Intervene: true, Shared: true,
				Latency: c.cfg.HitTime, Serve: c.ivServeFn}
		}
		if l.state == Exclusive {
			l.state = Shared
		}
		return bus.Snoop{Shared: true}
	case bus.ReadLineX:
		if l.state == Modified {
			copy(c.ivData[:], l.data[:])
			c.ivOff = 0
			l.state = Invalid
			c.stats.Interventions++
			c.stats.SnoopInvalidations++
			return bus.Snoop{Action: bus.Claim, Intervene: true, Latency: c.cfg.HitTime,
				Serve: c.ivServeFn}
		}
		l.state = Invalid
		c.stats.SnoopInvalidations++
	case bus.ReadWord:
		if l.state == Modified {
			// Serve an uncached peek from the dirty line; ownership kept.
			copy(c.ivData[:], l.data[:])
			c.ivOff = tx.Addr - c.lineAddr(tx.Addr)
			c.stats.Interventions++
			return bus.Snoop{Action: bus.Claim, Intervene: true, Latency: c.cfg.HitTime,
				Serve: c.ivServeFn}
		}
	case bus.WriteLine, bus.WriteWord, bus.Kill:
		// DMA or another writer: our copy is stale.
		l.state = Invalid
		c.stats.SnoopInvalidations++
	}
	return bus.Snoop{}
}
