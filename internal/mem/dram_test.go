package mem

import (
	"bytes"
	"testing"

	"startvoyager/internal/bus"
	"startvoyager/internal/sim"
)

type master struct{ name string }

func (m *master) DeviceName() string                  { return m.name }
func (m *master) SnoopBus(*bus.Transaction) bus.Snoop { return bus.Snoop{} }

func TestDRAMReadWrite(t *testing.T) {
	eng := sim.NewEngine()
	b := bus.New(eng, "bus", bus.DefaultConfig())
	d := New(bus.Range{Base: 0, Size: 1 << 16}, 60)
	m := &master{"cpu"}
	b.Attach(d)
	b.Attach(m)

	want := []byte{0xde, 0xad, 0xbe, 0xef}
	wr := make([]byte, bus.LineSize)
	copy(wr, want)
	b.Issue(&bus.Transaction{Kind: bus.WriteLine, Addr: 96, Data: wr, Master: m}, func() {})
	eng.Run()

	got := make([]byte, bus.LineSize)
	b.Issue(&bus.Transaction{Kind: bus.ReadLine, Addr: 96, Data: got, Master: m}, func() {})
	eng.Run()
	if !bytes.Equal(got[:4], want) {
		t.Fatalf("got %x", got[:4])
	}
	r, w := d.Accesses()
	if r != 1 || w != 1 {
		t.Fatalf("accesses = %d/%d", r, w)
	}
}

func TestDRAMIgnoresOutOfRangeAndKill(t *testing.T) {
	d := New(bus.Range{Base: 0x1000, Size: 0x1000}, 60)
	if s := d.SnoopBus(&bus.Transaction{Kind: bus.ReadLine, Addr: 0}); s.Action != bus.OK {
		t.Fatal("claimed out-of-range address")
	}
	if s := d.SnoopBus(&bus.Transaction{Kind: bus.Kill, Addr: 0x1000}); s.Action != bus.OK {
		t.Fatal("claimed a Kill")
	}
}

func TestPeekPoke(t *testing.T) {
	d := New(bus.Range{Base: 0x8000, Size: 0x1000}, 60)
	d.Poke(0x8100, []byte{1, 2, 3})
	got := make([]byte, 3)
	d.Peek(0x8100, got)
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("got %v", got)
	}
}

func TestPeekOutOfRangePanics(t *testing.T) {
	d := New(bus.Range{Base: 0, Size: 64}, 60)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	d.Peek(60, make([]byte, 8)) // spills past the end
}
