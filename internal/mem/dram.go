// Package mem models a node's DRAM behind the stock memory controller. The
// controller claims bus transactions falling in its range and services them
// with a fixed access latency. A zero-time backdoor lets workload setup and
// test verification touch memory without perturbing simulated timing.
//
// Backing storage is paged and demand-allocated: a page materializes on its
// first write, and reads of never-written pages observe zeros — exactly what
// a dense zero-initialized array would return. This keeps a node's host
// footprint proportional to the memory its software actually touches, so
// thousand-node machines fit in RAM (ROADMAP item 2).
package mem

import (
	"fmt"

	"startvoyager/internal/bus"
	"startvoyager/internal/sim"
	"startvoyager/internal/stats"
)

// Backing-page geometry. 64 KB keeps the page table tiny (8 bytes per page —
// 2 KB for a 16 MB node) while a queue-only workload still touches just a
// handful of pages.
const (
	pageShift = 16
	pageSize  = 1 << pageShift
)

// DRAM is main memory plus its controller, attached to a node bus.
type DRAM struct {
	rng      bus.Range
	pages    [][]byte // demand-allocated; nil pages read as zeros
	resident int      // pages materialized so far
	latency  sim.Time
	aliases  []alias

	reads, writes uint64
}

// alias maps an extra claimed address range onto backing-array offsets
// (StarT-Voyager's S-COMA region is ordinary DRAM pages appearing at a
// second physical window).
type alias struct {
	rng    bus.Range
	toBase uint32
}

// New creates size bytes of DRAM at base with the given first-access latency.
func New(rng bus.Range, latency sim.Time) *DRAM {
	numPages := (uint64(rng.Size) + pageSize - 1) >> pageShift
	return &DRAM{rng: rng, pages: make([][]byte, numPages), latency: latency}
}

// DeviceName implements bus.Device.
func (d *DRAM) DeviceName() string { return "dram" }

// Range returns the address range this controller claims.
func (d *DRAM) Range() bus.Range { return d.rng }

// ResidentBytes returns the host bytes materialized for backing storage —
// the demand-paged footprint, as opposed to the modeled capacity Range().Size.
func (d *DRAM) ResidentBytes() int { return d.resident * pageSize }

// AddAlias makes the controller also claim rng, serving it from the backing
// array starting at offset toBase. Used to back the S-COMA window with DRAM
// frames.
func (d *DRAM) AddAlias(rng bus.Range, toBase uint32) {
	if uint64(toBase)+uint64(rng.Size) > uint64(d.rng.Size) {
		panic(fmt.Sprintf("mem: alias %#x+%#x exceeds DRAM size %#x", toBase, rng.Size, d.rng.Size))
	}
	d.aliases = append(d.aliases, alias{rng: rng, toBase: toBase})
}

// resolve maps a claimed bus address to a backing-array offset.
func (d *DRAM) resolve(addr uint32) (uint32, bool) {
	if d.rng.Contains(addr) {
		return d.rng.Offset(addr), true
	}
	for _, a := range d.aliases {
		if a.rng.Contains(addr) {
			return a.toBase + a.rng.Offset(addr), true
		}
	}
	return 0, false
}

// readAt copies backing bytes at off into buf, clamped to the modeled size;
// unmaterialized pages read as zeros.
func (d *DRAM) readAt(off uint32, buf []byte) {
	if rem := uint64(d.rng.Size) - uint64(off); uint64(len(buf)) > rem {
		buf = buf[:rem]
	}
	for len(buf) > 0 {
		po := off & (pageSize - 1)
		n := pageSize - int(po)
		if n > len(buf) {
			n = len(buf)
		}
		if pg := d.pages[off>>pageShift]; pg != nil {
			copy(buf[:n], pg[po:])
		} else {
			for i := range buf[:n] {
				buf[i] = 0
			}
		}
		off += uint32(n)
		buf = buf[n:]
	}
}

// writeAt copies buf into backing storage at off, clamped to the modeled
// size, materializing pages as needed.
func (d *DRAM) writeAt(off uint32, data []byte) {
	if rem := uint64(d.rng.Size) - uint64(off); uint64(len(data)) > rem {
		data = data[:rem]
	}
	for len(data) > 0 {
		po := off & (pageSize - 1)
		n := pageSize - int(po)
		if n > len(data) {
			n = len(data)
		}
		pg := d.pages[off>>pageShift]
		if pg == nil {
			pg = make([]byte, pageSize)
			d.pages[off>>pageShift] = pg
			d.resident++
		}
		copy(pg[po:], data[:n])
		off += uint32(n)
		data = data[n:]
	}
}

// SnoopBus claims transactions in range and services them from the array.
func (d *DRAM) SnoopBus(tx *bus.Transaction) bus.Snoop {
	if tx.Kind == bus.Kill {
		return bus.Snoop{}
	}
	offset, ok := d.resolve(tx.Addr)
	if !ok {
		return bus.Snoop{}
	}
	return bus.Snoop{
		Action:  bus.Claim,
		Latency: d.latency,
		Serve: func(tx *bus.Transaction) {
			off := offset
			switch tx.Kind {
			case bus.ReadLine, bus.ReadLineX, bus.ReadWord:
				d.readAt(off, tx.Data)
				d.reads++
			case bus.WriteLine, bus.WriteWord:
				d.writeAt(off, tx.Data)
				d.writes++
			}
		},
	}
}

// Accesses returns the number of read and write transactions served.
func (d *DRAM) Accesses() (reads, writes uint64) { return d.reads, d.writes }

// RegisterMetrics registers the controller's access counters under r.
func (d *DRAM) RegisterMetrics(r *stats.Registry) {
	r.Gauge("reads", func() int64 { return int64(d.reads) })
	r.Gauge("writes", func() int64 { return int64(d.writes) })
}

// Peek copies memory at addr into buf without consuming simulated time.
func (d *DRAM) Peek(addr uint32, buf []byte) {
	off := d.mustOffset(addr, len(buf))
	d.readAt(off, buf)
}

// Poke writes buf at addr without consuming simulated time.
func (d *DRAM) Poke(addr uint32, buf []byte) {
	off := d.mustOffset(addr, len(buf))
	d.writeAt(off, buf)
}

func (d *DRAM) mustOffset(addr uint32, n int) uint32 {
	off, ok := d.resolve(addr)
	if !ok || uint64(off)+uint64(n) > uint64(d.rng.Size) {
		panic(fmt.Sprintf("mem: access %#x+%d outside DRAM %#x..%#x and aliases",
			addr, n, d.rng.Base, d.rng.End()))
	}
	return off
}
