package sim

import "testing"

// TestTimerHookFiresBeforeBoundaryEvents: a hook armed at t fires before any
// event scheduled exactly at t executes — boundary observations precede the
// boundary's own events, so those events' effects land in the next window.
func TestTimerHookFiresBeforeBoundaryEvents(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Schedule(50, func() { order = append(order, "ev@50") })
	e.Schedule(100, func() { order = append(order, "ev@100") })
	e.SetTimerHook(100, func(at Time) {
		if at != 100 {
			t.Fatalf("hook at %v, want 100", at)
		}
		if e.Now() != 100 {
			t.Fatalf("hook ran with now=%v, want 100", e.Now())
		}
		order = append(order, "hook@100")
	})
	e.Run()
	want := []string{"ev@50", "hook@100", "ev@100"}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

// TestTimerHookRearmsAcrossGaps: a self-rearming hook fires once per
// boundary, including boundaries in event-free gaps, all before the next
// event executes.
func TestTimerHookRearmsAcrossGaps(t *testing.T) {
	e := NewEngine()
	var fired []Time
	var tick func(Time)
	tick = func(at Time) {
		fired = append(fired, at)
		e.SetTimerHook(at+10, tick)
	}
	e.SetTimerHook(10, tick)
	e.Schedule(5, func() {})
	e.Schedule(45, func() {}) // boundaries 10,20,30,40 fall in the gap
	e.Run()
	want := []Time{10, 20, 30, 40}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

// TestTimerHookRunUntil: boundaries past the last event but within
// RunUntil's horizon still fire, so a sampler sees every full window of a
// fixed-length run.
func TestTimerHookRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	var tick func(Time)
	tick = func(at Time) {
		fired = append(fired, at)
		e.SetTimerHook(at+25, tick)
	}
	e.SetTimerHook(25, tick)
	e.Schedule(30, func() {})
	e.RunUntil(100)
	want := []Time{25, 50, 75, 100}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	if e.Now() != 100 {
		t.Fatalf("now = %v, want 100", e.Now())
	}
}

// TestTimerHookInert: arming a hook changes nothing the simulation can
// observe — the executed-event count and final time match a hook-free run.
func TestTimerHookInert(t *testing.T) {
	run := func(hook bool) (uint64, Time) {
		e := NewEngine()
		for i := Time(1); i <= 10; i++ {
			d := i * 7
			e.Schedule(d, func() {})
		}
		if hook {
			var tick func(Time)
			tick = func(at Time) { e.SetTimerHook(at+5, tick) }
			e.SetTimerHook(5, tick)
		}
		e.Run()
		return e.Executed(), e.Now()
	}
	bn, bt := run(false)
	hn, ht := run(true)
	if bn != hn || bt != ht {
		t.Fatalf("hooked run diverged: events %d vs %d, now %v vs %v", bn, hn, bt, ht)
	}
}

// TestTimerHookDisarm: a nil fn disarms the hook.
func TestTimerHookDisarm(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.SetTimerHook(10, func(Time) { fired++ })
	e.SetTimerHook(0, nil)
	e.Schedule(20, func() {})
	e.Run()
	if fired != 0 {
		t.Fatalf("disarmed hook fired %d times", fired)
	}
}

// TestTimerHookPastPanics: arming a hook in the past is a bug.
func TestTimerHookPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(50, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic arming a hook before now")
		}
	}()
	e.SetTimerHook(10, func(Time) {})
}
