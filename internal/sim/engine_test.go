package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("wrong order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("now = %v, want 30", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of insertion order at %d: %v", i, v)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var trace []Time
	e.Schedule(10, func() {
		trace = append(trace, e.Now())
		e.Schedule(5, func() { trace = append(trace, e.Now()) })
		e.Schedule(0, func() { trace = append(trace, e.Now()) })
	})
	e.Run()
	want := []Time{10, 10, 15}
	if len(trace) != len(want) {
		t.Fatalf("trace %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace %v, want %v", trace, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(10, func() { fired++ })
	e.Schedule(20, func() { fired++ })
	e.Schedule(30, func() { fired++ })
	e.RunUntil(20)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("now = %v, want 20", e.Now())
	}
	e.Run()
	if fired != 3 {
		t.Fatalf("fired = %d, want 3", fired)
	}
}

func TestRunLimit(t *testing.T) {
	e := NewEngine()
	// Self-perpetuating event stream: RunLimit must stop it.
	var loop func()
	n := 0
	loop = func() { n++; e.Schedule(1, loop) }
	e.Schedule(0, loop)
	if e.RunLimit(100) {
		t.Fatal("RunLimit reported drained on an infinite stream")
	}
	if n != 100 {
		t.Fatalf("executed %d events, want 100", n)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative delay")
		}
	}()
	NewEngine().Schedule(-1, func() {})
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic scheduling in the past")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

// Property: events fire in nondecreasing time order and ties preserve
// insertion order, for arbitrary insertion sequences.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		type rec struct {
			at  Time
			idx int
		}
		var fired []rec
		for i, d := range delays {
			i, at := i, Time(d)
			e.Schedule(at, func() { fired = append(fired, rec{e.Now(), i}) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		// Must match a stable sort of the insertion sequence by time.
		want := make([]rec, len(delays))
		for i, d := range delays {
			want[i] = rec{Time(d), i}
		}
		sort.SliceStable(want, func(a, b int) bool { return want[a].at < want[b].at })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		e := NewEngine()
		rng := rand.New(rand.NewSource(seed))
		var log []Time
		var gen func()
		n := 0
		gen = func() {
			log = append(log, e.Now())
			n++
			if n < 500 {
				e.Schedule(Time(rng.Intn(50)), gen)
			}
		}
		e.Schedule(0, gen)
		e.Run()
		return log
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500us"},
		{2500000, "2.500ms"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}
