package sim

import (
	"strings"
	"testing"
)

// A run that completes within budget with every Proc finished is clean.
func TestRunBudgetClean(t *testing.T) {
	e := NewEngine()
	done := false
	e.Spawn("worker", func(p *Proc) {
		p.Delay(50 * Microsecond)
		done = true
	})
	if err := e.RunBudget(1*Millisecond, 0); err != nil {
		t.Fatalf("clean run stalled: %v", err)
	}
	if !done {
		t.Fatal("worker did not run to completion")
	}
}

// Procs blocked on conditions nobody signals: the queue drains and the
// watchdog reports a deadlock naming each blocked Proc, where it waits, and
// since when — instead of the run silently "finishing" wedged.
func TestRunBudgetDeadlock(t *testing.T) {
	e := NewEngine()
	never := NewCond(e)
	never.SetName("niu/rx-slots")
	e.Spawn("consumer-a", func(p *Proc) {
		p.Delay(10 * Microsecond)
		never.Wait(p)
	})
	e.Spawn("consumer-b", func(p *Proc) {
		p.Delay(20 * Microsecond)
		never.Wait(p)
	})
	err := e.RunBudget(1*Millisecond, 0)
	if err == nil {
		t.Fatal("deadlocked run reported clean")
	}
	if err.Kind != StallDeadlock {
		t.Fatalf("kind = %v, want deadlock", err.Kind)
	}
	if err.LiveProcs != 2 || err.CondBlocked != 2 || len(err.Blocked) != 2 {
		t.Fatalf("dump = live %d, blocked %d, records %d; want 2/2/2",
			err.LiveProcs, err.CondBlocked, len(err.Blocked))
	}
	// FIFO within the cond: consumer-a blocked first.
	if err.Blocked[0].Proc != "consumer-a" || err.Blocked[1].Proc != "consumer-b" {
		t.Fatalf("blocked order = %q, %q", err.Blocked[0].Proc, err.Blocked[1].Proc)
	}
	if err.Blocked[0].Where != "niu/rx-slots" {
		t.Fatalf("where = %q, want the cond label", err.Blocked[0].Where)
	}
	if err.Blocked[0].Since != 10*Microsecond || err.Blocked[1].Since != 20*Microsecond {
		t.Fatalf("since = %v, %v", err.Blocked[0].Since, err.Blocked[1].Since)
	}
	msg := err.Error()
	for _, want := range []string{"deadlock", "consumer-a", "consumer-b", "niu/rx-slots"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("diagnostic %q missing %q", msg, want)
		}
	}
}

// A poll loop that reschedules itself forever: simulated time advances past
// any budget, so the watchdog classifies it as budget-exceeded with the next
// pending event in the dump — and returns, rather than hanging the host.
func TestRunBudgetLivelock(t *testing.T) {
	e := NewEngine()
	e.Spawn("poller", func(p *Proc) {
		for {
			p.Delay(100 * Nanosecond)
		}
	})
	err := e.RunBudget(200*Microsecond, 0)
	if err == nil {
		t.Fatal("livelocked run reported clean")
	}
	if err.Kind != StallBudget {
		t.Fatalf("kind = %v, want budget-exceeded", err.Kind)
	}
	if err.PendingEvents == 0 {
		t.Fatal("budget stall with no pending events in dump")
	}
	if err.NextEventAt <= err.Now {
		t.Fatalf("next event at %v is not beyond the run window ending %v", err.NextEventAt, err.Now)
	}
	if !strings.Contains(err.Error(), "budget-exceeded") {
		t.Fatalf("diagnostic %q does not name the kind", err.Error())
	}
}

// Legitimately ever-blocked service Procs (firmware loops) are excluded by
// the caller's expected count.
func TestRunBudgetExpectedServices(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e)
	q.Observe(0, "fw", "svc")
	e.Spawn("service", func(p *Proc) {
		for {
			q.Pop(p)
		}
	})
	e.Spawn("worker", func(p *Proc) { p.Delay(5 * Microsecond) })
	if err := e.RunBudget(1*Millisecond, 1); err != nil {
		t.Fatalf("service loop misreported as stall: %v", err)
	}
	// The same state with expectation 0 is a deadlock naming the service.
	err := e.BudgetCheck(1*Millisecond, 0)
	if err == nil || err.Kind != StallDeadlock {
		t.Fatalf("err = %v, want deadlock", err)
	}
	if len(err.Blocked) != 1 || err.Blocked[0].Where != "fw/svc" {
		t.Fatalf("blocked = %+v, want the service at fw/svc", err.Blocked)
	}
}

// The dump is a snapshot: running further after a budget stall still works.
func TestStalledIsObservationOnly(t *testing.T) {
	e := NewEngine()
	ticks := 0
	e.Spawn("poller", func(p *Proc) {
		for ticks < 100 {
			p.Delay(1 * Microsecond)
			ticks++
		}
	})
	if err := e.RunBudget(10*Microsecond, 0); err == nil || err.Kind != StallBudget {
		t.Fatalf("err = %v, want budget stall", err)
	}
	if err := e.RunBudget(1*Millisecond, 0); err != nil {
		t.Fatalf("resumed run stalled: %v", err)
	}
	if ticks != 100 {
		t.Fatalf("ticks = %d, want 100", ticks)
	}
}
