// Package sim provides the deterministic discrete-event simulation engine
// underlying the StarT-Voyager model.
//
// The engine is single-threaded: events are executed strictly in (time,
// sequence) order. Concurrency in the modeled system (processors, firmware,
// routers) is expressed either as callback-style components that schedule
// events, or as Procs — goroutines driven in strict handoff so that exactly
// one of them runs at any instant. Both styles are deterministic and can be
// mixed freely.
package sim

import "fmt"

// Time is simulated time in nanoseconds since the start of the run.
type Time int64

// Common time units.
const (
	//lint:allow simtimeunits the unit definitions are the base literals
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats a Time with a human-friendly unit.
func (t Time) String() string {
	switch {
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

type event struct {
	at  Time
	seq uint64
	fn  func()
}

// before reports whether a orders ahead of b. (at, seq) is a strict total
// order — seq is unique and monotonic — so the pop sequence of any correct
// min-heap over it is identical, which is what keeps this rewrite
// bit-compatible with the old container/heap implementation.
//
//voyager:noalloc
func (a *event) before(b *event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// eventHeap is a value-based 4-ary min-heap ordered by (at, seq). Events are
// stored inline (no per-push pointer allocation, no interface{} boxing), the
// backing array is retained across pops, and the 4-ary layout halves tree
// height versus a binary heap — sift-downs touch fewer cache lines on the
// deep queues the full-machine models build.
type eventHeap []event

// push appends ev and sifts it up to its heap position. The new event is
// held aside while ancestors shift down, so each level costs one event copy
// rather than a swap's three.
//
//voyager:noalloc
func (h *eventHeap) push(ev event) {
	s := append(*h, ev) //voyager:alloc-ok(amortized: heap backing array is retained across pops)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !ev.before(&s[parent]) {
			break
		}
		s[i] = s[parent]
		i = parent
	}
	s[i] = ev
	*h = s
}

// pop removes and returns the minimum event. The displaced last element is
// held aside while the smallest children shift up, then placed once.
//
//voyager:noalloc
func (h *eventHeap) pop() event {
	s := *h
	root := s[0]
	n := len(s) - 1
	moved := s[n]
	s[n] = event{} // release the closure so the GC can collect it
	s = s[:n]
	*h = s
	if n == 0 {
		return root
	}
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		last := first + 4
		if last > n {
			last = n
		}
		min := first
		for c := first + 1; c < last; c++ {
			if s[c].before(&s[min]) {
				min = c
			}
		}
		if !s[min].before(&moved) {
			break
		}
		s[i] = s[min]
		i = min
	}
	s[i] = moved
	return root
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	nEvents uint64 // total events executed

	procs   int // live Procs
	blocked int // Procs blocked on a Cond (not on a scheduled event)

	panicVal interface{} // pending panic propagated from a Proc

	obs     Observer // instrumentation sink (nil: all hooks are no-ops)
	spanSeq uint64   // deterministic span id allocator
	msgSeq  uint64   // deterministic message trace id allocator

	// Simulated-time profiler hooks (see profiler.go). prof is the attached
	// ProcProfiler (nil: every hook site is a nil-check no-op); curProc is
	// the Proc currently executing between baton handoffs, giving ProfPush/
	// ProfPop their implicit subject. Neither touches events or sequence
	// numbers, so attaching a profiler cannot perturb simulated outcomes.
	prof    ProcProfiler
	curProc *Proc

	// waiterFree recycles condWaiter records (see cond.go) so steady-state
	// blocking — every Queue.Pop, every Cond.Wait — is allocation-free.
	waiterFree []*condWaiter

	// conds registers every condition variable created on this engine, in
	// construction order, so the stall watchdog (watchdog.go) can enumerate
	// blocked Procs with where and since-when they block. Registration is a
	// construction-time append; the steady-state wait/signal path never
	// touches it.
	conds []*Cond

	// Timer hook: an out-of-band callback fired when simulated time reaches
	// hookAt. Unlike a scheduled event it lives outside the event queue — it
	// consumes no sequence number and does not count toward nEvents — so
	// arming it cannot perturb the simulated outcome in any observable way.
	// The telemetry sampler (internal/stats) uses it to scrape metrics on
	// fixed window boundaries.
	hookAt Time
	hookFn func(Time)
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
//
//voyager:noalloc
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events executed so far.
func (e *Engine) Executed() uint64 { return e.nEvents }

// Schedule runs fn after delay d (d may be zero; negative delays panic).
//
//voyager:noalloc
func (e *Engine) Schedule(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d)) //voyager:alloc-ok(panic path)
	}
	e.At(e.now+d, fn)
}

// At runs fn at absolute time t, which must not be in the past.
//
//voyager:noalloc
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now)) //voyager:alloc-ok(panic path)
	}
	e.seq++
	e.events.push(event{at: t, seq: e.seq, fn: fn})
}

// SetTimerHook arms the engine's single out-of-band timer: fn is invoked
// with the boundary time once simulated time reaches at. The hook fires
// before any event with timestamp >= at executes, so an observation at a
// window boundary always precedes the events that land exactly on it. The
// hook is one-shot — fn re-arms by calling SetTimerHook again — and passing
// a nil fn disarms it. Hooks are observation-only: they run between events,
// must not schedule events or otherwise touch modeled state, and leave the
// event sequence, the executed-event count, and every trace/span id
// allocator untouched.
//
//voyager:noalloc
func (e *Engine) SetTimerHook(at Time, fn func(Time)) {
	if fn != nil && at < e.now {
		panic(fmt.Sprintf("sim: timer hook at %v before now %v", at, e.now)) //voyager:alloc-ok(panic path)
	}
	e.hookAt = at
	e.hookFn = fn
}

// fireHooks invokes the timer hook for every armed boundary <= t, in order.
// now is advanced to each boundary before its callback runs so time reads
// (Meter.BusyTime, Engine.Now) see the boundary instant, never a stale
// earlier time.
//
//voyager:noalloc
func (e *Engine) fireHooks(t Time) {
	for e.hookFn != nil && e.hookAt <= t {
		at, fn := e.hookAt, e.hookFn
		e.hookFn = nil
		if at > e.now {
			e.now = at
		}
		fn(at)
	}
}

// Step executes the next event. It reports false when no events remain.
//
//voyager:noalloc
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	if e.hookFn != nil && e.events[0].at >= e.hookAt {
		e.fireHooks(e.events[0].at)
	}
	ev := e.events.pop()
	e.now = ev.at
	e.nEvents++
	ev.fn()
	if e.panicVal != nil {
		v := e.panicVal
		e.panicVal = nil
		panic(v)
	}
	return true
}

// Run executes events until none remain.
//
//voyager:noalloc
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then sets now to t.
//
//voyager:noalloc
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if e.hookFn != nil && e.hookAt <= t {
		e.fireHooks(t)
	}
	if t > e.now {
		e.now = t
	}
}

// RunLimit executes at most n further events; it reports whether the event
// queue drained within the limit. Useful as a livelock guard in tests.
func (e *Engine) RunLimit(n uint64) bool {
	for i := uint64(0); i < n; i++ {
		if !e.Step() {
			return true
		}
	}
	return len(e.events) == 0
}

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// BlockedProcs returns the number of live Procs currently blocked on a Cond
// with no scheduled wakeup. If Run returns while this is nonzero the modeled
// system has deadlocked.
func (e *Engine) BlockedProcs() int { return e.blocked }

// LiveProcs returns the number of spawned Procs that have not finished.
func (e *Engine) LiveProcs() int { return e.procs }
