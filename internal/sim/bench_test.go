package sim_test

import (
	"testing"

	"startvoyager/internal/sim"
)

// Microbenchmarks for the kernel hot paths (run with `go test -bench . ./internal/sim/`)
// plus AllocsPerRun regression tests pinning the fast-path guarantees: the
// value-based event heap makes steady-state Schedule/Step allocation-free,
// and the prebound completion callback makes an immediately-completing
// Proc.Call allocation-free.

// fan seeds n self-rescheduling event chains so the heap holds a realistic
// pending population; deltas follow a fixed multiplicative walk.
func fan(e *sim.Engine, n int) {
	for j := 0; j < n; j++ {
		k := uint64(j)
		var fn func()
		fn = func() {
			k += 2654435761
			e.Schedule(sim.Time(k%4096)*sim.Nanosecond, fn)
		}
		e.Schedule(sim.Time(j)*sim.Nanosecond, fn)
	}
}

func BenchmarkScheduleStep(b *testing.B) {
	e := sim.NewEngine()
	fan(e, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func BenchmarkProcDelay(b *testing.B) {
	e := sim.NewEngine()
	n := b.N
	e.Spawn("p", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			p.Delay(10 * sim.Nanosecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}

func BenchmarkProcCallImmediate(b *testing.B) {
	e := sim.NewEngine()
	n := b.N
	immediate := func(done func()) { done() }
	e.Spawn("p", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			p.Call(immediate)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}

func BenchmarkQueuePushPop(b *testing.B) {
	e := sim.NewEngine()
	q := sim.NewQueue[int](e)
	n := b.N
	e.Spawn("consumer", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			q.Pop(p)
		}
	})
	e.Spawn("producer", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			q.Push(i)
			p.Delay(10 * sim.Nanosecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}

// TestScheduleStepZeroAllocs: once the heap's backing array has grown to the
// working-set size, Schedule+Step cycles must not allocate at all.
func TestScheduleStepZeroAllocs(t *testing.T) {
	e := sim.NewEngine()
	fan(e, 64)
	for i := 0; i < 256; i++ { // settle heap capacity
		e.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() { e.Step() })
	if allocs != 0 {
		t.Fatalf("steady-state Schedule/Step allocates %v per op, want 0", allocs)
	}
}

// TestCallImmediateZeroAllocs: the immediate-completion Call path must not
// allocate — the completion callback is prebound at Spawn, not a per-Call
// closure.
func TestCallImmediateZeroAllocs(t *testing.T) {
	e := sim.NewEngine()
	immediate := func(done func()) { done() }
	var allocs float64
	e.Spawn("p", func(p *sim.Proc) {
		for i := 0; i < 8; i++ { // warm up
			p.Call(immediate)
		}
		allocs = testing.AllocsPerRun(1000, func() { p.Call(immediate) })
	})
	e.Run()
	if allocs != 0 {
		t.Fatalf("immediate-completion Call allocates %v per op, want 0", allocs)
	}
}

// TestQueueSteadyStateZeroAllocs: once the ring buffer has grown to the
// working-set size, a push/pop cycle must not allocate.
func TestQueueSteadyStateZeroAllocs(t *testing.T) {
	e := sim.NewEngine()
	q := sim.NewQueue[int](e)
	var allocs float64
	e.Spawn("consumer", func(p *sim.Proc) {
		for i := 0; i < 8; i++ { // warm up free list and ring
			q.Pop(p)
		}
		allocs = testing.AllocsPerRun(500, func() {
			q.Push(1)
			q.Pop(p)
		})
	})
	e.Spawn("producer", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			q.Push(i)
			p.Delay(10 * sim.Nanosecond)
		}
	})
	e.Run()
	if allocs != 0 {
		t.Fatalf("steady-state Queue push/pop allocates %v per op, want 0", allocs)
	}
}
