package sim

// This file defines the engine side of the simulated-time profiler: a
// ProcProfiler receives lifecycle callbacks for every Proc so it can account
// each one's lifetime into busy / blocked-on-cond / queued-wait buckets and
// attribute the time to an explicit frame stack.
//
// The hooks obey the same zero-timing-impact discipline as the Observer and
// the out-of-band timer hook (PR 2 / PR 7): they schedule no events, consume
// no sequence numbers, allocate no span or message ids, and never touch
// modeled state. With no profiler attached every hook site is a nil-check
// no-op, and attaching one cannot change any simulated outcome — a property
// the inertness tests in internal/bench pin byte-for-byte.

// BlockKind classifies why a Proc yielded control back to the engine.
type BlockKind uint8

const (
	// BlockBusy is a scheduled wakeup: modeled computation or a
	// fixed-latency hardware operation (Delay, Call — bus issues, resource
	// grants, command completions). Time spent here is the proc doing or
	// awaiting modeled work, so it accrues as self time on the current
	// attribution frame.
	BlockBusy BlockKind = iota
	// BlockCond is a wait on a plain condition variable (Cond.Wait): the
	// proc is idle until some other party signals it.
	BlockCond
	// BlockQueue is a wait on an empty Queue (Pop with no items): classic
	// producer starvation, reported separately from plain condition waits so
	// queue-coupling bottlenecks stand out.
	BlockQueue
)

// ProcProfiler receives Proc lifecycle callbacks from the engine. All
// callbacks run synchronously inside the strict engine/proc baton handoff,
// so implementations need no locking; they must not schedule events or touch
// modeled state. The hot callbacks (ProcResume, ProcBlock, FramePush,
// FramePop) are called from //voyager:noalloc engine paths and must be
// allocation-free in steady state.
type ProcProfiler interface {
	// ProcStart reports a Proc spawned at time at.
	ProcStart(at Time, p *Proc)
	// ProcResume reports the proc regaining control at time at; the profiler
	// closes the wait interval opened by the preceding ProcBlock (or by
	// ProcStart, for the first resume).
	ProcResume(at Time, p *Proc)
	// ProcBlock reports the proc yielding at time at. label is the blocking
	// condition's name for BlockCond/BlockQueue and empty for BlockBusy.
	ProcBlock(at Time, p *Proc, kind BlockKind, label string)
	// ProcEnd reports the proc's body returning at time at.
	ProcEnd(at Time, p *Proc)
	// FramePush descends the proc's attribution stack into a named frame
	// (an API operation, a firmware service handler).
	FramePush(p *Proc, name string)
	// FramePop returns to the parent frame.
	FramePop(p *Proc)
}

// SetProfiler attaches a profiler to the engine. Attach before spawning any
// Procs (i.e. before machine construction) so every proc's full lifetime is
// covered; procs already live at attach time are adopted on their next
// resume with their history up to that point unaccounted. A nil profiler
// detaches. Profiling is inert: it changes no simulated outcome.
func (e *Engine) SetProfiler(pr ProcProfiler) { e.prof = pr }

// ProfPush descends the current proc's attribution stack into frame name.
// It must be paired with a ProfPop on the same proc. Outside proc context,
// or with no profiler attached, it is a no-op.
//
//voyager:noalloc
func (e *Engine) ProfPush(name string) {
	if e.prof != nil && e.curProc != nil {
		e.prof.FramePush(e.curProc, name)
	}
}

// ProfPop undoes the matching ProfPush.
//
//voyager:noalloc
func (e *Engine) ProfPop() {
	if e.prof != nil && e.curProc != nil {
		e.prof.FramePop(e.curProc)
	}
}
