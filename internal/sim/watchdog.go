package sim

import (
	"fmt"
	"strings"
)

// The progress watchdog: instead of letting a protocol bug hang a run —
// either as a true deadlock (the event queue drains with Procs still blocked
// on conditions nobody will signal) or as a livelock that burns simulated
// time forever (poll loops rescheduling themselves past any horizon) — a
// caller drives the engine with RunBudget and gets a typed StallError
// carrying a structured diagnostic dump: every blocked Proc with where and
// since-when it waits, live-Proc and pending-event counts, and the next
// event's timestamp. The dump is deterministic (conds enumerate in
// construction order, waiters in FIFO order), so a stall reproduces byte for
// byte like every other simulated outcome.

// StallKind classifies how a budgeted run failed to complete.
type StallKind uint8

// Stall kinds.
const (
	// StallBudget: the sim-time budget elapsed with events still pending —
	// the run is livelocked or simply not done (budget too small).
	StallBudget StallKind = iota
	// StallDeadlock: the event queue drained with more live Procs than the
	// caller expected — somebody waits on a wakeup that can never come.
	StallDeadlock
)

// String names the stall kind.
func (k StallKind) String() string {
	if k == StallDeadlock {
		return "deadlock"
	}
	return "budget-exceeded"
}

// BlockedProcInfo describes one Proc blocked on a condition variable.
type BlockedProcInfo struct {
	Proc  string // the Proc's Spawn name
	Where string // the blocking Cond's label ("cond" if unnamed)
	Since Time   // when the wait began
}

// StallError is the watchdog's structured diagnostic: the reason a budgeted
// run did not complete, plus a dump of the engine's blocked state at the
// moment it gave up.
type StallError struct {
	Kind   StallKind
	Now    Time // sim time when the watchdog fired
	Budget Time // the budget the caller allowed

	PendingEvents int    // scheduled events remaining
	NextEventAt   Time   // timestamp of the earliest pending event (if any)
	Executed      uint64 // total events executed so far

	LiveProcs     int // spawned Procs that have not finished
	CondBlocked   int // Procs blocked on condition variables
	ExpectedProcs int // the live-Proc count the caller said is legitimate

	// Blocked lists every Proc found waiting on a Cond, in deterministic
	// order (cond construction order, then FIFO within a cond). Procs blocked
	// inside Call (resource grants) are counted in LiveProcs but carry no
	// Cond record.
	Blocked []BlockedProcInfo

	// Notes carries machine-level context appended by higher layers (queue
	// depths, in-flight frame counts); the sim engine itself leaves it empty.
	Notes []string
}

// Error renders the structured dump as a multi-line report.
func (e *StallError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: %s at %v (budget %v): %d events pending, %d events executed, %d live procs (%d expected), %d blocked on conds",
		e.Kind, e.Now, e.Budget, e.PendingEvents, e.Executed, e.LiveProcs, e.ExpectedProcs, e.CondBlocked)
	if e.PendingEvents > 0 {
		fmt.Fprintf(&b, ", next event at %v", e.NextEventAt)
	}
	for _, bp := range e.Blocked {
		fmt.Fprintf(&b, "\n  blocked proc %q at %s since %v", bp.Proc, bp.Where, bp.Since)
	}
	for _, n := range e.Notes {
		fmt.Fprintf(&b, "\n  note: %s", n)
	}
	return b.String()
}

// Stalled snapshots the engine's blocked state into a StallError of the
// given kind. It is observation-only: no engine state changes.
func (e *Engine) Stalled(kind StallKind, budget Time, expectedLive int) *StallError {
	se := &StallError{
		Kind:          kind,
		Now:           e.now,
		Budget:        budget,
		PendingEvents: len(e.events),
		Executed:      e.nEvents,
		LiveProcs:     e.procs,
		CondBlocked:   e.blocked,
		ExpectedProcs: expectedLive,
	}
	if len(e.events) > 0 {
		se.NextEventAt = e.events[0].at
	}
	for _, c := range e.conds {
		name := c.name
		if name == "" {
			name = "cond"
		}
		for _, w := range c.waiters {
			se.Blocked = append(se.Blocked, BlockedProcInfo{
				Proc: w.p.name, Where: name, Since: w.since,
			})
		}
	}
	return se
}

// RunBudget drives the simulation for at most budget of simulated time and
// reports how it ended: nil when the event queue drained with no more than
// expectedLive Procs still alive (services legitimately block forever —
// firmware loops — and the caller knows how many), a StallBudget error when
// the budget elapsed with events still pending, and a StallDeadlock error
// when the queue drained but extra Procs remain blocked with no wakeup
// scheduled. RunBudget always terminates in wall-clock time provided each
// individual event handler does.
func (e *Engine) RunBudget(budget Time, expectedLive int) *StallError {
	e.RunUntil(e.now + budget)
	return e.BudgetCheck(budget, expectedLive)
}

// BudgetCheck classifies the engine's state after a budgeted run (see
// RunBudget); callers that drive RunUntil in slices — scraping metrics at
// each boundary — invoke it once the final slice lands.
func (e *Engine) BudgetCheck(budget Time, expectedLive int) *StallError {
	if len(e.events) > 0 {
		return e.Stalled(StallBudget, budget, expectedLive)
	}
	if e.procs > expectedLive {
		return e.Stalled(StallDeadlock, budget, expectedLive)
	}
	return nil
}
