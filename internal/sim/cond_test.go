package sim

import "testing"

// Bounded-wait variants: the degradation story depends on WaitTimeout and
// PopTimeout firing at exactly the requested sim time and on the
// signal-vs-timeout race resolving to "signaled" when both land in the same
// instant.

func TestCondWaitTimeoutExpires(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	var woke Time
	var ok bool
	e.Spawn("waiter", func(p *Proc) {
		ok = c.WaitTimeout(p, 5*Microsecond)
		woke = p.Now()
	})
	e.Run()
	if ok {
		t.Fatal("WaitTimeout reported a signal that never came")
	}
	if woke != 5*Microsecond {
		t.Fatalf("woke at %v, want exactly 5us", woke)
	}
	if e.BlockedProcs() != 0 {
		t.Fatalf("%d procs still blocked after timeout", e.BlockedProcs())
	}
}

func TestCondWaitTimeoutSignaled(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	var woke Time
	var ok bool
	e.Spawn("waiter", func(p *Proc) {
		ok = c.WaitTimeout(p, 5*Microsecond)
		woke = p.Now()
	})
	e.At(2*Microsecond, c.Signal)
	e.Run()
	if !ok {
		t.Fatal("WaitTimeout missed the signal")
	}
	if woke != 2*Microsecond {
		t.Fatalf("woke at %v, want 2us", woke)
	}
}

func TestCondWaitTimeoutNegativeIsUnbounded(t *testing.T) {
	e := NewEngine()
	c := NewCond(e)
	var ok bool
	e.Spawn("waiter", func(p *Proc) { ok = c.WaitTimeout(p, -Nanosecond) })
	e.At(50*Microsecond, c.Signal)
	e.Run()
	if !ok {
		t.Fatal("unbounded WaitTimeout gave up")
	}
}

func TestCondSignalAndTimeoutSameInstant(t *testing.T) {
	// A signal scheduled for the same instant as the timeout must win: the
	// waiter observes the event, and no proc is resumed twice.
	e := NewEngine()
	c := NewCond(e)
	var ok bool
	e.Spawn("waiter", func(p *Proc) { ok = c.WaitTimeout(p, 3*Microsecond) })
	e.At(3*Microsecond, c.Signal)
	e.Run()
	if !ok {
		t.Fatal("same-instant signal lost to the timeout")
	}
	if e.BlockedProcs() != 0 {
		t.Fatalf("%d procs blocked after same-instant race", e.BlockedProcs())
	}
}

func TestCondTimeoutDoesNotStealSignal(t *testing.T) {
	// Two waiters, one times out, then a signal arrives: the signal must wake
	// the remaining waiter, not be absorbed by the departed one.
	e := NewEngine()
	c := NewCond(e)
	var short, long bool
	e.Spawn("short", func(p *Proc) { short = c.WaitTimeout(p, 1*Microsecond) })
	e.Spawn("long", func(p *Proc) { long = c.WaitTimeout(p, 100*Microsecond) })
	e.At(10*Microsecond, c.Signal)
	e.Run()
	if short {
		t.Fatal("short waiter claims it was signaled")
	}
	if !long {
		t.Fatal("long waiter missed the signal after the short one timed out")
	}
}

func TestGateWaitTimeout(t *testing.T) {
	e := NewEngine()
	g := NewGate(e)
	var closedResult, openResult bool
	e.Spawn("bounded", func(p *Proc) { closedResult = g.WaitTimeout(p, 5*Microsecond) })
	e.Spawn("late", func(p *Proc) {
		p.Delay(10 * Microsecond)
		openResult = g.WaitTimeout(p, 5*Microsecond)
	})
	e.At(8*Microsecond, g.Open)
	e.Run()
	if closedResult {
		t.Fatal("gate reported open before Open()")
	}
	if !openResult {
		t.Fatal("open gate failed a bounded wait")
	}
}

func TestQueuePopTimeoutEmpty(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e)
	var ok bool
	var woke Time
	e.Spawn("popper", func(p *Proc) {
		_, ok = q.PopTimeout(p, 7*Microsecond)
		woke = p.Now()
	})
	e.Run()
	if ok {
		t.Fatal("PopTimeout invented an item")
	}
	if woke != 7*Microsecond {
		t.Fatalf("woke at %v, want 7us", woke)
	}
}

func TestQueuePopTimeoutDelivers(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e)
	var got int
	var ok bool
	e.Spawn("popper", func(p *Proc) { got, ok = q.PopTimeout(p, 100*Microsecond) })
	e.At(4*Microsecond, func() { q.Push(41) })
	e.Run()
	if !ok || got != 41 {
		t.Fatalf("PopTimeout = (%d, %v), want (41, true)", got, ok)
	}
}
